package tcpls

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"tcpls/internal/telemetry"
)

// waitTicket polls for the server-issued resumption ticket.
func waitTicket(t *testing.T, sess *Session) *ClientTicket {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if tk := sess.ResumptionTicket(); tk != nil {
			return tk
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no resumption ticket arrived")
	return nil
}

func TestSessionResumption(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)

	// First session: full handshake, collect the ticket.
	sess1, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	ticket := waitTicket(t, sess1)
	if len(ticket.Ticket) == 0 || len(ticket.PSK) != pskLen {
		t.Fatalf("malformed ticket: %d ticket bytes, %d psk bytes", len(ticket.Ticket), len(ticket.PSK))
	}
	sess1.Close()

	// Second session: abbreviated handshake via the ticket. The server
	// skips Certificate/CertificateVerify; the session must still carry
	// data and keep all TCPLS services.
	sess2, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Ticket:     ticket,
	})
	if err != nil {
		t.Fatalf("resumed dial: %v", err)
	}
	defer sess2.Close()

	st, err := sess2.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("resumed session data")
	st.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo over resumed session corrupted")
	}
	// Multipath still works after resumption.
	if _, err := sess2.JoinPath("tcp", ln.Addr().String()); err != nil {
		t.Fatalf("join on resumed session: %v", err)
	}
}

func TestResumptionWithBogusTicketFallsBack(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	// A garbage ticket must not break the connection: the server
	// declines it and the handshake completes as a full handshake.
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Ticket: &ClientTicket{
			Ticket: bytes.Repeat([]byte{0x5a}, 60),
			PSK:    bytes.Repeat([]byte{1}, pskLen),
		},
	})
	if err != nil {
		t.Fatalf("dial with bogus ticket: %v", err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("ok"))
	got := make([]byte, 2)
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
}

func TestTicketsDisabledByConfig(t *testing.T) {
	ln := startServer(t, &Config{DisableTickets: true}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Exercise the session, then confirm no ticket ever shows up.
	st, _ := sess.OpenStream()
	st.Write([]byte("x"))
	io.ReadFull(st, make([]byte, 1))
	time.Sleep(100 * time.Millisecond)
	if sess.ResumptionTicket() != nil {
		t.Fatal("ticket issued despite DisableTickets")
	}
}

func TestTicketKeyStoreRoundTrip(t *testing.T) {
	ks, err := NewTicketKeyStore()
	if err != nil {
		t.Fatal(err)
	}
	psk := bytes.Repeat([]byte{7}, pskLen)
	ticket, err := ks.ks.Seal(psk)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := ks.ks.OpenTicket(ticket)
	if err != nil || !bytes.Equal(got, psk) {
		t.Fatal("key store round trip failed")
	}
	// Tampering is rejected.
	ticket[len(ticket)-1] ^= 1
	if _, _, _, err := ks.ks.OpenTicket(ticket); err == nil {
		t.Fatal("tampered ticket accepted")
	}
	// A different store (different key) cannot open it.
	other, _ := NewTicketKeyStore()
	ticket[len(ticket)-1] ^= 1
	if _, _, _, err := other.ks.OpenTicket(ticket); err == nil {
		t.Fatal("foreign key store opened the ticket")
	}
	if _, _, _, err := ks.ks.OpenTicket([]byte{1, 2}); err == nil {
		t.Fatal("short ticket accepted")
	}
}

func TestTraceJSON(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var buf syncBuffer
	sess.TraceJSON(&buf)
	st, _ := sess.OpenStream()
	st.Write([]byte("traced"))
	io.ReadFull(st, make([]byte, 6))
	sess.TraceJSON(nil)

	out := buf.String()
	if !strings.Contains(out, `"type":"record_received"`) {
		t.Fatalf("trace missing record events: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != telemetry.QlogHeader {
		t.Fatalf("first line = %q, want qlog header", lines[0])
	}
	for _, line := range lines[1:] {
		var ev struct {
			TimeUs   int64  `json:"time_us"`
			Category string `json:"category"`
			Type     string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("invalid trace line %q: %v", line, err)
		}
		if ev.Type == "" || ev.Category == "" {
			t.Fatalf("unframed event: %q", line)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for trace output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
