package tcpls

import (
	"bytes"
	"crypto/rand"
	"io"
	"sync"
	"testing"
	"time"
)

// Regression tests for the write-path races fixed alongside the writev
// datapath (meaningful under -race, which CI uses for this package):
//
//  1. writeLoop's failure bookkeeping used to happen in two critical
//     sections — the drop stamp and recycle in one, the failed flag and
//     ReportConnFailed in another. A flush racing into the gap could
//     drain a conn the engine did not yet know was dead and mis-stamp
//     its spans. TestRaceFailoverDuringConcurrentFlush hammers that
//     window: bulk traffic, concurrent flushers, and a mid-transfer
//     path kill.
//
//  2. collectOutgoingLocked dropped drained failed-conn chunks on the
//     floor (chunk-pool leak) and stamped a drop even when the drain
//     was empty (popping some other chunk's span batch), and writeAll's
//     shutdown abort left already-enqueued chunks unresolved.
//     TestWriteAccountingClosure asserts the books now close: chunk
//     gets == puts, payload gets == puts, and zero pending span batches
//     once the session is down.

func TestRaceFailoverDuringConcurrentFlush(t *testing.T) {
	ln := startServer(t, &Config{EnableFailover: true}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 1<<20)
	rand.Read(data)

	var wg sync.WaitGroup
	wg.Add(2)
	// Writer: keeps the engine flushing from this goroutine while the
	// path dies underneath it. Writes retry: between the kill and the
	// failover replay a write can bounce off the dying conn.
	go func() {
		defer wg.Done()
		defer st.Close()
		deadline := time.Now().Add(10 * time.Second)
		for off := 0; off < len(data); {
			n, werr := st.Write(data[off : off+min(16<<10, len(data)-off)])
			off += n
			if werr != nil {
				if time.Now().After(deadline) {
					t.Errorf("write never recovered: %v", werr)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	// Concurrent flusher: Ping runs collectOutgoing + writeAll from a
	// third goroutine, racing the writer's flushes against the failure
	// bookkeeping in writeBatch and readLoop.
	stopPing := make(chan struct{})
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopPing:
				return
			default:
				sess.Ping(1, 50*time.Millisecond)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	// Mid-transfer, hard-kill the initial connection.
	time.Sleep(20 * time.Millisecond)
	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	got := make([]byte, len(data))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatalf("echo read after failover: %v", err)
	}
	close(stopPing)
	wg.Wait()
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted across failover under concurrent flush")
	}
}

func TestWriteAccountingClosure(t *testing.T) {
	ln := startServer(t, &Config{EnableFailover: true}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256<<10)
	rand.Read(payload)
	if _, err := st.Write(payload); err != nil {
		t.Fatal(err)
	}

	// Kill one path mid-session so the failed-conn drain path in
	// collectOutgoingLocked and writeBatch's discard path both run, then
	// finish the echo on the survivor and close.
	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := st.Write(payload); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never recovered onto the joined path")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st.Close()
	if _, err := io.Copy(io.Discard, st); err != nil {
		t.Fatalf("drain echo: %v", err)
	}
	sess.Close()

	sess.mu.Lock()
	ps := sess.engine.PoolStats()
	pending := sess.engine.PendingWriteBatches()
	sess.mu.Unlock()
	if ps.ChunkGets != ps.ChunkPuts {
		t.Errorf("chunk pool unbalanced after close: %d gets, %d puts", ps.ChunkGets, ps.ChunkPuts)
	}
	if ps.PayloadGets != ps.PayloadPuts {
		t.Errorf("payload pool unbalanced after close: %d gets, %d puts", ps.PayloadGets, ps.PayloadPuts)
	}
	if pending != 0 {
		t.Errorf("%d Outgoing chunks never resolved to written/dropped", pending)
	}
}
