package tcpls

import (
	"net/http"
	"time"

	"tcpls/internal/telemetry"
)

// DebugConn is one connection's live state on /debug/tcpls.
type DebugConn struct {
	ID           uint32   `json:"id"`
	Failed       bool     `json:"failed,omitempty"`
	Closed       bool     `json:"closed,omitempty"`
	Streams      []uint32 `json:"streams,omitempty"`
	QueuedBytes  int      `json:"queued_bytes,omitempty"`
	SRTTUS       int64    `json:"srtt_us,omitempty"`
	RTTVarUS     int64    `json:"rttvar_us,omitempty"`
	DeliveryRate float64  `json:"delivery_rate_bps,omitempty"`
	InFlight     uint64   `json:"in_flight_bytes,omitempty"`
	Losses       uint64   `json:"losses,omitempty"`
	LastRecvUS   int64    `json:"last_recv_us,omitempty"`
	RecvPaused   bool     `json:"recv_paused,omitempty"` // reads parked on backpressure
}

// DebugStream is one stream's live state on /debug/tcpls.
type DebugStream struct {
	ID            uint32 `json:"id"`
	Conn          uint32 `json:"conn"`
	Coupled       bool   `json:"coupled,omitempty"`
	Parked        bool   `json:"parked,omitempty"` // homed on a failed connection
	FinQueued     bool   `json:"fin_queued,omitempty"`
	FinSent       bool   `json:"fin_sent,omitempty"`
	PeerFin       bool   `json:"peer_fin,omitempty"`
	PendingBytes  int    `json:"pending_bytes,omitempty"`
	RetransmitQ   int    `json:"retransmit_queue,omitempty"`
	UnackedBytes  int    `json:"unacked_bytes,omitempty"`
	RecvBuffered  int    `json:"recv_buffered,omitempty"`
	RecvBlocked   bool   `json:"recv_blocked,omitempty"`  // receive buffer at its cap
	AckSolicited  bool   `json:"ack_solicited,omitempty"` // AckRequest outstanding
	NextSendSeq   uint64 `json:"next_send_seq"`
	PeerAckedSeq  uint64 `json:"peer_acked_seq"`
	BytesSent     uint64 `json:"bytes_sent,omitempty"`
	BytesReceived uint64 `json:"bytes_received,omitempty"`
}

// DebugSession is one session's live state on /debug/tcpls.
type DebugSession struct {
	Role         string `json:"role"`
	Closed       bool   `json:"closed,omitempty"`
	Recovering   bool   `json:"recovering,omitempty"`
	Scheduler    string `json:"scheduler"`
	ReorderDepth int    `json:"reorder_depth"`
	// Flow-control gauges (Config.MaxReorder*/MaxRetransmitBytes) with
	// their session high-watermarks.
	ReorderBytes        int `json:"reorder_bytes"`
	ReorderBytesPeak    int `json:"reorder_bytes_peak"`
	RetransmitBytes     int `json:"retransmit_bytes"`
	RetransmitBytesPeak int `json:"retransmit_bytes_peak"`
	// MemoryBytes is the full buffered-memory rollup (reorder heap +
	// retransmit buffers + receive buffers + pending sends) — the same
	// figure the server runtime charges against its process budget.
	MemoryBytes  int           `json:"memory_bytes"`
	CookiesLeft  int           `json:"cookies_left"`
	FlightEvents int           `json:"flight_events"`
	FlightTotal  uint64        `json:"flight_total"`
	Conns        []DebugConn   `json:"conns"`
	Streams      []DebugStream `json:"streams"`
}

// debugState snapshots the session for /debug/tcpls. Runs on the HTTP
// handler's goroutine; takes the session lock briefly.
func (s *Session) debugState() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	role := "server"
	if s.isClient {
		role = "client"
	}
	ds := DebugSession{
		Role:                role,
		Closed:              s.closed,
		Recovering:          s.recovering,
		Scheduler:           s.engine.SchedulerName(),
		ReorderDepth:        s.engine.ReorderDepth(),
		ReorderBytes:        s.engine.ReorderBytes(),
		ReorderBytesPeak:    s.engine.ReorderPeakBytes(),
		RetransmitBytes:     s.engine.RetransmitBytes(),
		RetransmitBytesPeak: s.engine.RetransmitPeakBytes(),
		MemoryBytes:         s.engine.BufferedBytes(),
		CookiesLeft:         len(s.cookies),
	}
	if s.flight != nil {
		ds.FlightEvents = s.flight.Len()
		ds.FlightTotal = s.flight.Total()
	}
	failed := make(map[uint32]bool)
	for _, ci := range s.engine.ConnInfos() {
		if ci.Failed {
			failed[ci.ID] = true
		}
		dc := DebugConn{
			ID:           ci.ID,
			Failed:       ci.Failed,
			Closed:       ci.Closed,
			Streams:      ci.Streams,
			QueuedBytes:  ci.QueuedBytes,
			SRTTUS:       int64(ci.SRTT / time.Microsecond),
			RTTVarUS:     int64(ci.RTTVar / time.Microsecond),
			DeliveryRate: ci.DeliveryRate,
			InFlight:     ci.InFlight,
			Losses:       ci.Losses,
			RecvPaused:   ci.RecvPaused,
		}
		if !ci.LastRecv.IsZero() {
			dc.LastRecvUS = ci.LastRecv.UnixMicro()
		}
		ds.Conns = append(ds.Conns, dc)
	}
	for _, si := range s.engine.StreamInfos() {
		ds.Streams = append(ds.Streams, DebugStream{
			ID:            si.ID,
			Conn:          si.Conn,
			Coupled:       si.Coupled,
			Parked:        failed[si.Conn],
			FinQueued:     si.FinQueued,
			FinSent:       si.FinSent,
			PeerFin:       si.PeerFin,
			PendingBytes:  si.PendingBytes,
			RetransmitQ:   si.RetransmitQ,
			UnackedBytes:  si.UnackedBytes,
			RecvBuffered:  si.RecvBuffered,
			RecvBlocked:   si.RecvBlocked,
			AckSolicited:  si.AckSolicited,
			NextSendSeq:   si.NextSendSeq,
			PeerAckedSeq:  si.PeerAckedSeq,
			BytesSent:     si.BytesSent,
			BytesReceived: si.BytesReceived,
		})
	}
	return ds
}

// DebugHandler returns the /debug/tcpls handler — live per-session
// conn/stream/path state as JSON — for applications embedding telemetry
// in their own mux (the Config.Telemetry.Addr server serves it already).
func DebugHandler() http.Handler {
	return telemetry.DebugHandler()
}
