package tcpls

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tcpls/internal/netem"
	"tcpls/internal/qlog"
	"tcpls/internal/testutil"
)

// failoverSession dials a two-path failover session against srv, runs an
// echo round trip, kills path 0, waits for the failover event, and runs
// a second round trip over the survivor.
func failoverSession(t *testing.T, srv *chaosServer, cfg *Config) *Session {
	t.Helper()
	sess, err := Dial("tcp", srv.ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.JoinPath("tcp", srv.ln.Addr().String()); err != nil {
		sess.Close()
		t.Fatal(err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		sess.Close()
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := st.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		ev, err := sess.WaitEvent(ctx)
		if err != nil {
			t.Fatalf("waiting for failover: %v", err)
		}
		if ev.Kind == EventFailover {
			break
		}
	}
	if _, err := st.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	return sess
}

// quiesce polls until two Metrics snapshots 100ms apart agree on the
// per-conn counters and the flight total — no trace events in flight.
func quiesce(t *testing.T, sess *Session) MetricsSnapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev := sess.Metrics()
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		cur := sess.Metrics()
		if reflect.DeepEqual(prev.Conns, cur.Conns) && prev.FlightTotal == cur.FlightTotal {
			return cur
		}
		prev = cur
	}
	t.Fatal("session never quiesced")
	return prev
}

// TestFlightDumpMatchesMetricsAcrossFailover is the acceptance test:
// the analyzer run over a flight-recorder dump must reconstruct the
// failover gap and per-path record counts that agree exactly with
// Session.Metrics().
func TestFlightDumpMatchesMetricsAcrossFailover(t *testing.T) {
	// The per-conn counters live in the process-wide registry keyed by
	// session label, which both endpoint halves share — disable the
	// server half so Metrics() reflects exactly the client's traffic,
	// the same traffic the client's flight recorder saw. AckPeriod 1
	// acks every record, completing the lifecycle spans.
	scfg := &Config{EnableFailover: true, AckPeriod: 1, NumCookies: 4,
		Telemetry: TelemetryConfig{Disabled: true}}
	srv := startChaosServer(t, scfg, echoHandler)
	sess := failoverSession(t, srv, &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 1,
	})
	defer sess.Close()

	snap := quiesce(t, sess)
	var buf bytes.Buffer
	if err := sess.DumpFlight(&buf); err != nil {
		t.Fatal(err)
	}
	if after := sess.Metrics(); !reflect.DeepEqual(after.Conns, snap.Conns) {
		t.Skip("traffic raced the dump; counters moved")
	}
	if snap.FlightTotal != uint64(snap.FlightEvents) {
		t.Fatalf("flight wrapped (%d total, %d held); test traffic should fit the ring",
			snap.FlightTotal, snap.FlightEvents)
	}

	events, err := qlog.Parse(&buf)
	if err != nil {
		t.Fatalf("flight dump unparseable: %v", err)
	}
	rep := qlog.Analyze(events, qlog.Options{})
	if len(rep.Violations) != 0 {
		t.Fatalf("trace violations: %v", rep.Violations)
	}

	// Per-path record counts must match the telemetry counters exactly.
	if len(rep.Paths) != len(snap.Conns) {
		t.Fatalf("analyzer saw %d paths, metrics %d", len(rep.Paths), len(snap.Conns))
	}
	for _, p := range rep.Paths {
		cm, ok := snap.Conns[p.Conn]
		if !ok {
			t.Fatalf("analyzer path %d missing from metrics", p.Conn)
		}
		if p.RecordsSent != cm.RecordsSent {
			t.Errorf("conn %d records sent: trace %d, metrics %d", p.Conn, p.RecordsSent, cm.RecordsSent)
		}
		if p.RecordsRecv != cm.RecordsReceived {
			t.Errorf("conn %d records received: trace %d, metrics %d", p.Conn, p.RecordsRecv, cm.RecordsReceived)
		}
		if p.Retransmits != cm.Retransmits {
			t.Errorf("conn %d retransmits: trace %d, metrics %d", p.Conn, p.Retransmits, cm.Retransmits)
		}
		if p.AcksSent != cm.AcksSent {
			t.Errorf("conn %d acks sent: trace %d, metrics %d", p.Conn, p.AcksSent, cm.AcksSent)
		}
		if p.AcksReceived != cm.AcksReceived {
			t.Errorf("conn %d acks received: trace %d, metrics %d", p.Conn, p.AcksReceived, cm.AcksReceived)
		}
		if p.DupDropped != cm.DupRecords {
			t.Errorf("conn %d dups: trace %d, metrics %d", p.Conn, p.DupDropped, cm.DupRecords)
		}
		if p.BytesSent != cm.BytesSent {
			t.Errorf("conn %d bytes sent: trace %d, metrics %d", p.Conn, p.BytesSent, cm.BytesSent)
		}
		if p.BytesReceived != cm.BytesReceived {
			t.Errorf("conn %d bytes received: trace %d, metrics %d", p.Conn, p.BytesReceived, cm.BytesReceived)
		}
	}

	// The failover gap must be reconstructed: conn 0 died, conn 1 took
	// over, and records flowed again.
	if len(rep.Failovers) != 1 {
		t.Fatalf("analyzer saw %d failover gaps, want 1", len(rep.Failovers))
	}
	g := rep.Failovers[0]
	if !g.Closed || g.FailedConn != 0 || g.TargetConn != 1 {
		t.Fatalf("failover gap: %+v", g)
	}
	if g.DurationUS < 0 {
		t.Fatalf("negative gap duration: %+v", g)
	}

	// Lifecycle spans cover the acknowledged records, with sane legs.
	if rep.Spans.Count == 0 {
		t.Fatal("no record_span events in flight dump")
	}
	if rep.Spans.TotalP50US <= 0 {
		t.Fatalf("span total p50 = %dus, want > 0", rep.Spans.TotalP50US)
	}
}

// TestMetricsAndDumpFlightConcurrentWithClose hammers Session.Metrics
// and Session.DumpFlight from racing goroutines through a failover and
// a concurrent Close. Run under -race; nothing may panic or deadlock,
// and DumpFlight must keep working after Close (postmortem use).
func TestMetricsAndDumpFlightConcurrentWithClose(t *testing.T) {
	scfg := &Config{EnableFailover: true, AckPeriod: 4, NumCookies: 4}
	srv := startChaosServer(t, scfg, echoHandler)
	sess := failoverSession(t, srv, &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := sess.Metrics()
				_ = snap.Conns
				_ = sess.DumpFlight(io.Discard)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	sess.Close()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Postmortem dump after Close still yields a parseable trace.
	var buf bytes.Buffer
	if err := sess.DumpFlight(&buf); err != nil {
		t.Fatalf("DumpFlight after Close: %v", err)
	}
	if _, err := qlog.Parse(&buf); err != nil {
		t.Fatalf("postmortem dump unparseable: %v", err)
	}
}

// TestTraceInstallSwapRace races TraceJSON installs/uninstalls against
// Trace callback swaps while records flow: the two installers share one
// fan-out, so neither may displace the other's sink or leak goroutines.
func TestTraceInstallSwapRace(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}

	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // traffic
		defer wg.Done()
		buf := make([]byte, 4)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.Write([]byte("spin")); err != nil {
				return
			}
			if _, err := io.ReadFull(st, buf); err != nil {
				return
			}
		}
	}()
	go func() { // sink installer
		defer wg.Done()
		var sink syncBuffer
		for i := 0; i < 50; i++ {
			sess.TraceJSON(&sink)
			sess.TraceJSON(nil)
		}
	}()
	go func() { // callback installer
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sess.Trace(func(TraceEvent) {})
			sess.Trace(nil)
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// After the dust settles a fresh sink still receives events: the
	// racing installers must not have wedged the tracer fan-out.
	var sink syncBuffer
	sess.TraceJSON(&sink)
	buf := make([]byte, 4)
	if _, err := st.Write([]byte("last")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	sess.TraceJSON(nil)
	if !strings.Contains(sink.String(), `"type":"record_sent"`) {
		t.Fatalf("re-installed sink saw no records: %q", sink.String())
	}

	sess.Close()
	testutil.CheckGoroutines(t, baseGoroutines)
}

// TestDebugTCPLSEndpoint checks the telemetry server's /debug/tcpls:
// per-session conn and stream state as JSON.
func TestDebugTCPLSEndpoint(t *testing.T) {
	const telAddr = "127.0.0.1:0"
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Telemetry:  TelemetryConfig{Addr: telAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("dbg")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(st, make([]byte, 3)); err != nil {
		t.Fatal(err)
	}

	telServersMu.Lock()
	addr := telServers[telAddr].srv.Addr()
	telServersMu.Unlock()
	resp, err := http.Get("http://" + addr + "/debug/tcpls")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/tcpls status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"sessions"`, `"role": "client"`, `"scheduler"`, `"conns"`, `"streams"`, `"flight_events"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/debug/tcpls missing %s:\n%s", want, body)
		}
	}

	// Unregistration: after Close the session disappears from the page.
	// A second holder keeps the refcounted server alive across the Close.
	holder, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Telemetry:  TelemetryConfig{Addr: telAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	key := sess.debugKey
	sess.Close()
	if key == "" {
		t.Fatal("session never registered a debug key")
	}
	resp2, err := http.Get("http://" + addr + "/debug/tcpls")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(body2), key) {
		t.Fatalf("closed session %q still on /debug/tcpls", key)
	}
}

// TestChaosTraceArtifact produces the CI trace-analysis artifact: a
// two-path transfer through netem relays with one path RST mid-flight,
// traced live via TraceJSON with the flight dump appended — then
// `tcpls-trace -check` validates the file in the workflow. Skipped
// unless TCPLS_TRACE_OUT names the output path.
func TestChaosTraceArtifact(t *testing.T) {
	out := os.Getenv("TCPLS_TRACE_OUT")
	if out == "" {
		t.Skip("set TCPLS_TRACE_OUT to produce the trace artifact")
	}
	scfg := &Config{EnableFailover: true, AckPeriod: 4, NumCookies: 8,
		UserTimeout: 400 * time.Millisecond,
		Telemetry:   TelemetryConfig{Disabled: true}}
	srv := startChaosServer(t, scfg, echoHandler)

	prof := netem.Profile{RateBps: 60e6, Delay: 2 * time.Millisecond}
	relays := make([]*netem.Relay, 2)
	for i := range relays {
		r, err := netem.NewRelay(srv.ln.Addr().String(), prof, prof)
		if err != nil {
			t.Fatal(err)
		}
		relays[i] = r
		defer r.Close()
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	sess, err := Dial("tcp", relays[0].Addr(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
		UserTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.TraceJSON(f)
	if _, err := sess.JoinPath("tcp", relays[1].Addr()); err != nil {
		t.Fatal(err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}

	// Paced echo traffic across the fault: enough records on both sides
	// of the RST for per-path goodput to show the gap.
	chunk := make([]byte, 8<<10)
	buf := make([]byte, len(chunk))
	echo := func(rounds int) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			if _, err := st.Write(chunk); err != nil {
				t.Fatalf("write: %v", err)
			}
			if _, err := io.ReadFull(st, buf); err != nil {
				t.Fatalf("read: %v", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	echo(20)
	relays[0].RST()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		ev, err := sess.WaitEvent(ctx)
		if err != nil {
			t.Fatalf("waiting for failover: %v", err)
		}
		if ev.Kind == EventFailover {
			break
		}
	}
	echo(20)

	// Stop the live trace (flushes the sink), then append the flight
	// dump — the analyzer accepts the concatenation and CI checks both
	// framings in one file.
	sess.TraceJSON(nil)
	if err := sess.DumpFlight(f); err != nil {
		t.Fatal(err)
	}

	// The artifact must satisfy the same -check gate CI runs.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	events, perr := qlog.Parse(bytes.NewReader(data))
	if perr != nil {
		t.Fatalf("artifact unparseable: %v", perr)
	}
	rep := qlog.Analyze(events, qlog.Options{MaxGap: 5 * time.Second})
	if len(rep.Violations) != 0 {
		t.Fatalf("artifact violations: %v", rep.Violations)
	}
	if len(rep.Failovers) == 0 {
		t.Fatal("artifact records no failover gap")
	}
}

// TestFlightDisabledAndAutoDump: a negative FlightCapacity disables the
// recorder; a session dying with an error auto-dumps to the configured
// FlightDump writer.
func TestFlightDisabledAndAutoDump(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)

	off, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Telemetry:  TelemetryConfig{FlightCapacity: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := off.DumpFlight(io.Discard); err == nil {
		t.Fatal("DumpFlight succeeded with the recorder disabled")
	}
	if snap := off.Metrics(); snap.FlightTotal != 0 || snap.FlightEvents != 0 {
		t.Fatalf("disabled recorder reports events: %+v", snap)
	}
	off.Close()

	var dump syncBuffer
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Telemetry:  TelemetryConfig{FlightDump: &dump},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, _ := sess.OpenStream()
	st.Write([]byte("doomed"))
	io.ReadFull(st, make([]byte, 6))

	sess.failSession(errors.New("injected death"))
	deadline := time.Now().Add(3 * time.Second)
	for {
		if events, err := qlog.Parse(strings.NewReader(dump.String())); err == nil && len(events) > 0 {
			rep := qlog.Analyze(events, qlog.Options{})
			if rep.Paths[0].RecordsSent == 0 {
				t.Fatalf("auto-dump reconstructs no sent records: %+v", rep.Paths)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no parseable auto-dump; got %q", dump.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
