package tcpls

import (
	"bytes"
	"context"
	"crypto/rand"
	"io"
	"sync"
	"testing"
	"time"
)

// startServer spins a listener with a handler invoked per session.
func startServer(t *testing.T, cfg *Config, handler func(*Session)) *Listener {
	t.Helper()
	if cfg.Certificate == nil {
		cert, err := NewCertificate("test.server")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Certificate = cert
	}
	ln, err := Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(sess)
		}
	}()
	return ln
}

func echoHandler(sess *Session) {
	for {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		go func() {
			io.Copy(st, st)
			st.Close()
		}()
	}
}

func TestDialEchoRoundTrip(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ping over tcpls")
	if _, err := st.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo mismatch: %q", buf)
	}
}

func TestBulkTransfer(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	st, _ := sess.OpenStream()
	data := make([]byte, 4<<20) // 4 MiB
	rand.Read(data)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		st.Write(data)
		st.Close()
	}()
	got := make([]byte, len(data))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, data) {
		t.Fatal("bulk data corrupted")
	}
}

func TestMultipleStreamsConcurrently(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := sess.OpenStream()
			if err != nil {
				t.Error(err)
				return
			}
			msg := bytes.Repeat([]byte{byte('a' + i)}, 10000+i*1000)
			st.Write(msg)
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(st, got); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("stream %d corrupted", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestStreamEOFAfterClose(t *testing.T) {
	ln := startServer(t, &Config{}, func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		st.Write([]byte("done"))
		st.Close()
	})
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, _ := sess.OpenStream()
	st.Write([]byte("x")) // ensure server accepts the stream
	data, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "done" {
		t.Fatalf("got %q", data)
	}
}

func TestPlainTLSFallback(t *testing.T) {
	// Server with TCPLS disabled: client falls back, streams unavailable
	// beyond the implicit session, JoinPath refuses.
	ln := startServer(t, &Config{DisableTCPLS: true}, func(sess *Session) {})
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err != ErrNotTCPLS {
		t.Fatalf("JoinPath err=%v, want ErrNotTCPLS", err)
	}
}

func TestJoinPathAndSteering(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if sess.Cookies() != 2 {
		t.Fatalf("cookies = %d, want 2", sess.Cookies())
	}
	conn2, err := sess.JoinPath("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if sess.Cookies() != 1 {
		t.Errorf("cookies after join = %d", sess.Cookies())
	}
	if got := len(sess.Connections()); got != 2 {
		t.Fatalf("connections = %d", got)
	}

	// Steer a stream onto the joined connection and verify data flows.
	st, err := sess.OpenStreamOn(conn2)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := st.Conn(); c != conn2 {
		t.Errorf("stream on conn %d, want %d", c, conn2)
	}
	msg := []byte("steered onto path 2")
	st.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("steered stream corrupted")
	}
}

func TestJoinBudgetExhaustionAndReplenish(t *testing.T) {
	serverCh := make(chan *Session, 1)
	ln := startServer(t, &Config{NumCookies: 1}, func(sess *Session) {
		serverCh <- sess
		echoHandler(sess)
	})
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := <-serverCh

	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err != ErrNoCookies {
		t.Fatalf("err=%v, want ErrNoCookies", err)
	}

	// Server replenishes; client can join again.
	if err := srv.IssueCookies(0, 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sess.Cookies() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if sess.Cookies() == 0 {
		t.Fatal("replenished cookies never arrived")
	}
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err != nil {
		t.Fatalf("join after replenish: %v", err)
	}
}

func TestCoupledAggregationOverTwoPaths(t *testing.T) {
	recvCh := make(chan []byte, 1)
	ln := startServer(t, &Config{}, func(sess *Session) {
		// Accept both streams, then read the coupled aggregate.
		sess.AcceptStream(context.Background())
		sess.AcceptStream(context.Background())
		var data []byte
		buf := make([]byte, 64<<10)
		for len(data) < 1<<20 {
			n, err := sess.ReadCoupled(buf)
			if err != nil {
				return
			}
			data = append(data, buf[:n]...)
		}
		recvCh <- data
	})
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	conn2, err := sess.JoinPath("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := sess.OpenStream()
	st2, err := sess.OpenStreamOn(conn2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Couple(st1, st2); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1<<20)
	rand.Read(data)
	if _, err := sess.WriteCoupled(data); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recvCh:
		if !bytes.Equal(got, data) {
			t.Fatal("coupled aggregate corrupted or out of order")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coupled receive timed out")
	}
}

func TestEncryptedTCPOption(t *testing.T) {
	serverCh := make(chan *Session, 1)
	ln := startServer(t, &Config{}, func(sess *Session) {
		serverCh <- sess
	})
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := <-serverCh
	if err := sess.SendTCPOption(0, OptUserTimeout, []byte{0, 0, 0, 250}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if opts := srv.TCPOptions(); len(opts) > 0 {
			if opts[0].Kind != OptUserTimeout || !bytes.Equal(opts[0].Value, []byte{0, 0, 0, 250}) {
				t.Fatalf("option %+v", opts[0])
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("TCP option never arrived")
}

func TestPingMeasuresRTT(t *testing.T) {
	ln := startServer(t, &Config{}, func(sess *Session) {})
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rtt, err := sess.Ping(0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > time.Second {
		t.Fatalf("implausible loopback rtt %v", rtt)
	}
}

func TestBPFProgramDelivery(t *testing.T) {
	serverCh := make(chan *Session, 1)
	ln := startServer(t, &Config{}, func(sess *Session) { serverCh <- sess })
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := <-serverCh

	prog := make([]byte, 100000) // forces multi-record chunking
	rand.Read(prog)
	if err := srv.SendBPFCC(0, prog); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := sess.ReceiveBPFCC(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, prog) {
		t.Fatal("bpf program corrupted in transit")
	}
}

func TestFailoverAcrossRealConnections(t *testing.T) {
	cfg := &Config{EnableFailover: true, AckPeriod: 4}
	recvCh := make(chan []byte, 1)
	ln := startServer(t, cfg, func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		data, err := io.ReadAll(st)
		if err != nil {
			return
		}
		recvCh <- data
	})
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Two paths up front; kill the one carrying the stream mid-transfer.
	conn2, err := sess.JoinPath("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_ = conn2
	st, _ := sess.OpenStream()
	phase1 := bytes.Repeat([]byte{1}, 200000)
	if _, err := st.Write(phase1); err != nil {
		t.Fatal(err)
	}

	// Hard-kill the initial TCP connection: readLoop reports failure,
	// auto-failover replays unacked records onto conn2.
	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	phase2 := bytes.Repeat([]byte{2}, 200000)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := st.Write(phase2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never recovered onto the joined path")
		}
		time.Sleep(20 * time.Millisecond)
	}
	st.Close()

	select {
	case got := <-recvCh:
		want := append(append([]byte(nil), phase1...), phase2...)
		if !bytes.Equal(got, want) {
			t.Fatalf("failover transfer corrupted: got %d bytes want %d", len(got), len(want))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never finished reading after failover")
	}
}
