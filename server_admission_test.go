// Accept-edge tests: the server handshake deadline, listener close
// behavior for in-flight handshakes, and the Config.Admission hooks
// the production server runtime (internal/server) plugs into.
package tcpls

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tcpls/internal/testutil"
)

// startAdmissionServer starts a listener with a draining Accept loop,
// closing accepted sessions at cleanup.
func startAdmissionServer(t *testing.T, cfg *Config) *Listener {
	t.Helper()
	if cfg.Certificate == nil {
		cert, err := NewCertificate("test.server")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Certificate = cert
	}
	ln, err := Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			t.Cleanup(func() { sess.Close() })
		}
	}()
	return ln
}

// TestHandshakeTimeoutStalledClient connects and then sends nothing.
// The server must cut the connection at Config.HandshakeTimeout — not
// pin a handshake goroutine until the client gives up — and the
// goroutine count must return to baseline.
func TestHandshakeTimeoutStalledClient(t *testing.T) {
	base := runtime.NumGoroutine()
	ln := startAdmissionServer(t, &Config{HandshakeTimeout: 200 * time.Millisecond})

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	start := time.Now()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled handshake connection was not closed by the server")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled handshake lingered %v, want ~200ms deadline", elapsed)
	}
	nc.Close()
	ln.Close()
	testutil.CheckGoroutines(t, base)
}

// TestListenerCloseUnblocksHandshakes parks several connections
// mid-handshake (no bytes sent, 10s default deadline still far away)
// and closes the listener. The handshake goroutines must exit
// immediately rather than leak until their deadlines.
func TestListenerCloseUnblocksHandshakes(t *testing.T) {
	base := runtime.NumGoroutine()
	ln := startAdmissionServer(t, &Config{})

	var conns []net.Conn
	for i := 0; i < 4; i++ {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		conns = append(conns, nc)
	}
	// Let the per-connection handshake goroutines start and block in
	// the first read.
	time.Sleep(100 * time.Millisecond)
	ln.Close()
	testutil.CheckGoroutines(t, base)
	for _, nc := range conns {
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := nc.Read(make([]byte, 1)); err == nil {
			t.Fatal("mid-handshake connection still open after listener close")
		}
	}
}

// stubAdmission scripts the three AdmissionControl hooks and counts
// their invocations.
type stubAdmission struct {
	connErr    error
	allowJoin  bool
	sessionErr error

	conns, releases, joins, sessions atomic.Int32
}

func (a *stubAdmission) AdmitConn(remote net.Addr) (func(), error) {
	if a.connErr != nil {
		return nil, a.connErr
	}
	a.conns.Add(1)
	return func() { a.releases.Add(1) }, nil
}

func (a *stubAdmission) AdmitJoin(remote net.Addr) bool {
	a.joins.Add(1)
	return a.allowJoin
}

func (a *stubAdmission) AdmitSession(remote net.Addr) error {
	a.sessions.Add(1)
	return a.sessionErr
}

// TestAdmissionRejectsConn wires an AdmitConn that rejects everything:
// clients must fail cleanly (no silent hang) and no handshake may run.
func TestAdmissionRejectsConn(t *testing.T) {
	base := runtime.NumGoroutine()
	adm := &stubAdmission{connErr: errors.New("rejected"), allowJoin: true}
	ln := startAdmissionServer(t, &Config{Admission: adm})

	_, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err == nil {
		t.Fatal("Dial succeeded past a rejecting AdmitConn")
	}
	ln.Close()
	testutil.CheckGoroutines(t, base)
}

// TestAdmissionReleaseCalled checks the AdmitConn release hook fires
// exactly once per admitted connection, on both the success path and
// the join path.
func TestAdmissionReleaseCalled(t *testing.T) {
	adm := &stubAdmission{allowJoin: true}
	ln := startAdmissionServer(t, &Config{Admission: adm})

	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for adm.releases.Load() != adm.conns.Load() || adm.conns.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admits %d, releases %d; want equal and >= 2",
				adm.conns.Load(), adm.releases.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if adm.joins.Load() != 1 {
		t.Fatalf("AdmitJoin called %d times, want 1", adm.joins.Load())
	}
}

// TestAdmissionShedsSession has AdmitSession reject after a successful
// handshake: the session must never surface from Accept, its cookie
// state must be dropped (no joining back in), and the client must see
// its session die rather than hang.
func TestAdmissionShedsSession(t *testing.T) {
	adm := &stubAdmission{allowJoin: true, sessionErr: errors.New("shed")}
	cert, err := NewCertificate("test.server")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Listen("tcp", "127.0.0.1:0", &Config{Certificate: cert, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepted atomic.Int32
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			sess.Close()
		}
	}()

	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Reconnect:  ReconnectConfig{Disabled: true, Deadline: 200 * time.Millisecond},
	})
	if err == nil {
		// The handshake may complete client-side before the server
		// sheds; the session must then die promptly.
		defer sess.Close()
		select {
		case <-sess.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("client session survived a server-side shed")
		}
	}
	if n := accepted.Load(); n != 0 {
		t.Fatalf("%d sessions surfaced from Accept despite AdmitSession rejection", n)
	}
	ln.mu.Lock()
	n := len(ln.sessions)
	ln.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d session entries (cookie state) retained after shed", n)
	}
}

// TestAdmissionRejectsJoin lets the initial handshake through but
// rejects the join attempt: JoinPath must fail and the server-side
// cookie must NOT be consumed (admission burns rate budget, not
// cookies).
func TestAdmissionRejectsJoin(t *testing.T) {
	adm := &stubAdmission{allowJoin: false}
	ln := startAdmissionServer(t, &Config{Admission: adm})

	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err == nil {
		t.Fatal("JoinPath succeeded past a rejecting AdmitJoin")
	}
	if adm.joins.Load() != 1 {
		t.Fatalf("AdmitJoin called %d times, want 1", adm.joins.Load())
	}
	ln.mu.Lock()
	ss := ln.sessions[sess.ID()]
	var unspent int
	if ss != nil {
		for _, ok := range ss.cookies {
			if ok {
				unspent++
			}
		}
	}
	ln.mu.Unlock()
	if unspent == 0 {
		t.Fatal("server cookie consumed by an admission-rejected join")
	}
}

// TestJoinRejectedTraced checks an admission-rejected join is stamped
// onto the target session's timeline: join_rejected must be observable
// in the server session's flight recorder, not just as a closed socket.
func TestJoinRejectedTraced(t *testing.T) {
	adm := &stubAdmission{allowJoin: false}
	cert, err := NewCertificate("test.server")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Listen("tcp", "127.0.0.1:0", &Config{Certificate: cert, Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan *Session, 1)
	go func() {
		sess, err := ln.Accept()
		if err == nil {
			accepted <- sess
		}
	}()

	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var srvSess *Session
	select {
	case srvSess = <-accepted:
		defer srvSess.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("server session never surfaced")
	}
	if _, err := sess.JoinPath("tcp", ln.Addr().String()); err == nil {
		t.Fatal("JoinPath succeeded past a rejecting AdmitJoin")
	}
	var buf bytes.Buffer
	if err := srvSess.DumpFlight(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "join_rejected") {
		t.Fatalf("flight recorder missing join_rejected:\n%s", buf.String())
	}
}
