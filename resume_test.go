package tcpls

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"testing"
	"time"
)

// TestTicketsSurviveListenerRestart is the key-file contract at the API
// level: a ticket issued by one listener resumes against a different
// listener process-equivalent (fresh Listener, same key file).
func TestTicketsSurviveListenerRestart(t *testing.T) {
	keyPath := filepath.Join(t.TempDir(), "ticket.keys")
	ks1, err := OpenTicketKeyStore(keyPath, []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	ln1 := startServer(t, &Config{TicketKeys: ks1}, echoHandler)

	sess1, err := Dial("tcp", ln1.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	ticket := waitTicket(t, sess1)
	sess1.Close()
	ln1.Close()

	// "Restart": a brand-new listener opens the same key file.
	ks2, err := OpenTicketKeyStore(keyPath, []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	ln2 := startServer(t, &Config{TicketKeys: ks2}, echoHandler)
	sess2, err := Dial("tcp", ln2.Addr().String(), &Config{
		ServerName: "test.server",
		Ticket:     ticket,
	})
	if err != nil {
		t.Fatalf("resumed dial after restart: %v", err)
	}
	defer sess2.Close()
	st, err := sess2.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("resumed across restart")
	st.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo corrupted after restart resumption")
	}
}

// TestEarlyDataEndToEnd drives 0-RTT through the public API: the early
// bytes surface on the server as the first accepted stream, and the
// echoed reply reads back on the client's early stream.
func TestEarlyDataEndToEnd(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess1, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	ticket := waitTicket(t, sess1)
	sess1.Close()

	early := []byte("0-rtt request bytes")
	sess2, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Ticket:     ticket,
		EarlyData:  early,
	})
	if err != nil {
		t.Fatalf("0-RTT dial: %v", err)
	}
	defer sess2.Close()
	if !sess2.EarlyDataAccepted() {
		t.Fatal("first-use early data not accepted")
	}
	st, ok := sess2.EarlyStream()
	if !ok {
		t.Fatal("no early stream on the client")
	}
	got := make([]byte, len(early))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, early) {
		t.Fatalf("echo of early data = %q, want %q", got, early)
	}
}

// TestEarlyDataReplayRejected replays the same ticket (and therefore the
// same ticket nonce) twice: the second 0-RTT flight must be rejected by
// the strike register and fall back to 1-RTT — same bytes, one RTT later.
func TestEarlyDataReplayRejected(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess1, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	ticket := waitTicket(t, sess1)
	sess1.Close()

	early := []byte("replayable bytes")
	dial := func() *Session {
		t.Helper()
		s, err := Dial("tcp", ln.Addr().String(), &Config{
			ServerName: "test.server",
			Ticket:     ticket,
			EarlyData:  early,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	first := dial()
	defer first.Close()
	if !first.EarlyDataAccepted() {
		t.Fatal("first use rejected")
	}

	replay := dial()
	defer replay.Close()
	if replay.EarlyDataAccepted() {
		t.Fatal("replayed early data accepted — strike register failed")
	}
	// Lossless fallback: the bytes still arrive, via the 1-RTT resend.
	st, ok := replay.EarlyStream()
	if !ok {
		t.Fatal("no fallback stream")
	}
	got := make([]byte, len(early))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, early) {
		t.Fatal("fallback bytes corrupted")
	}
}

// TestEarlyDataRefusedByBudget: a server with MaxEarlyData < 0 refuses
// all 0-RTT; the client must still resume and deliver at 1-RTT.
func TestEarlyDataRefusedByBudget(t *testing.T) {
	ln := startServer(t, &Config{MaxEarlyData: -1}, echoHandler)
	sess1, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	ticket := waitTicket(t, sess1)
	sess1.Close()

	early := []byte("refused flight")
	sess2, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Ticket:     ticket,
		EarlyData:  early,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	if sess2.EarlyDataAccepted() {
		t.Fatal("early data accepted despite negative budget")
	}
	st, ok := sess2.EarlyStream()
	if !ok {
		t.Fatal("no fallback stream")
	}
	got := make([]byte, len(early))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, early) {
		t.Fatal("fallback bytes corrupted")
	}
}

// TestJoinPathFastCarriesData: the single-flight join delivers its
// piggybacked bytes and the new connection carries the stream.
func TestJoinPathFastCarriesData(t *testing.T) {
	ln := startServer(t, &Config{EnableFailover: true}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName:     "test.server",
		EnableFailover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	payload := []byte("first-flight join payload")
	connID, st, err := sess.JoinPathFast("tcp", ln.Addr().String(), payload)
	if err != nil {
		t.Fatalf("fast join: %v", err)
	}
	if connID == 0 {
		t.Fatal("fast join reused the initial connection ID")
	}
	if st == nil {
		t.Fatal("fast join returned no stream for its payload")
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("fast-join echo = %q, want %q", got, payload)
	}
	// The stream rides the joined connection.
	if c, err := st.Conn(); err != nil || c != connID {
		t.Fatalf("stream on conn %d (err=%v), want %d", c, err, connID)
	}
}

// TestJoinPathFastWithoutFailoverFallsBack: with failover off and a
// payload at stake, JoinPathFast must take the lossless two-flight path.
func TestJoinPathFastWithoutFailoverFallsBack(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	payload := []byte("two-flight fallback payload")
	connID, st, err := sess.JoinPathFast("tcp", ln.Addr().String(), payload)
	if err != nil {
		t.Fatalf("fallback join: %v", err)
	}
	if st == nil {
		t.Fatal("no stream from fallback join")
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fallback join payload corrupted")
	}
	_ = connID
}

// TestTicketRotationReissuesOnUse: a ticket sealed under generation N
// still resumes after one rotation, and the session's fresh ticket is
// sealed under the new generation.
func TestTicketRotationReissuesOnUse(t *testing.T) {
	ks, err := NewTicketKeyStore()
	if err != nil {
		t.Fatal(err)
	}
	ln := startServer(t, &Config{TicketKeys: ks}, echoHandler)

	sess1, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	oldTicket := waitTicket(t, sess1)
	sess1.Close()

	if err := ks.Rotate(); err != nil {
		t.Fatal(err)
	}

	sess2, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Ticket:     oldTicket,
	})
	if err != nil {
		t.Fatalf("resume with N-1 ticket: %v", err)
	}
	defer sess2.Close()
	// The resumed session gets a fresh ticket under the new generation.
	newTicket := waitTicket(t, sess2)
	if bytes.Equal(newTicket.Ticket, oldTicket.Ticket) {
		t.Fatal("ticket not reissued on use")
	}
	// Prove it actually resumed (no cert exchange) by round-tripping data.
	st, err := sess2.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("ok"))
	if _, err := io.ReadFull(st, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}

	// Two more rotations age the original generation out entirely: the
	// old ticket now falls back to a full handshake, not an error.
	ks.Rotate()
	ks.Rotate()
	sess3, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Ticket:     oldTicket,
	})
	if err != nil {
		t.Fatalf("aged-out ticket must fall back, got: %v", err)
	}
	sess3.Close()
}

// TestEarlyStreamAcceptOrder: the injected early stream is also the
// first stream AcceptStream delivers, before any 1-RTT stream.
func TestEarlyStreamAcceptOrder(t *testing.T) {
	type firstStream struct {
		data []byte
		err  error
	}
	firstCh := make(chan firstStream, 4)
	handler := func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			firstCh <- firstStream{nil, err}
			return
		}
		buf := make([]byte, 64)
		n, _ := st.Read(buf)
		firstCh <- firstStream{buf[:n], nil}
		go echoHandler(sess)
		io.Copy(st, st)
	}
	ln := startServer(t, &Config{}, handler)
	sess1, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	ticket := waitTicket(t, sess1)
	sess1.Close()
	<-firstCh // drain the first session's handler slot

	early := []byte("early wins the race")
	sess2, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Ticket:     ticket,
		EarlyData:  early,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	select {
	case fs := <-firstCh:
		if fs.err != nil {
			t.Fatal(fs.err)
		}
		if !bytes.Equal(fs.data, early) {
			t.Fatalf("first accepted stream carried %q, want %q", fs.data, early)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server never saw the early stream")
	}
}
