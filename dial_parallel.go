package tcpls

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"time"
)

// DialParallel implements the Happy-Eyeballs-style connection racing of
// the paper's §4.6 (Fig. 5): it starts TCP connections to every address
// concurrently, completes the TCPLS handshake on the first one to
// succeed, and abandons the rest. Use it with a dual-stack server's IPv4
// and IPv6 addresses to always get the lower-latency family.
//
// timeout bounds the whole race (zero means 30 seconds). The losing
// connections are closed; their sockets never complete a handshake.
func DialParallel(network string, addrs []string, timeout time.Duration, cfg *Config) (*Session, error) {
	if len(addrs) == 0 {
		return nil, errors.New("tcpls: DialParallel needs at least one address")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	type result struct {
		sess *Session
		addr string
		err  error
	}
	results := make(chan result, len(addrs))
	for _, addr := range addrs {
		go func(addr string) {
			nc, err := net.DialTimeout(network, addr, timeout)
			if err != nil {
				results <- result{nil, addr, err}
				return
			}
			sess, err := Client(nc, cfg)
			results <- result{sess, addr, err}
		}(addr)
	}

	deadline := time.After(timeout)
	var errs []string
	for range addrs {
		select {
		case r := <-results:
			if r.err == nil {
				// Winner: drain the losers in the background so their
				// sessions close cleanly.
				go func(skip int) {
					for i := 0; i < skip; i++ {
						if lose := <-results; lose.sess != nil {
							lose.sess.Close()
						}
					}
				}(cap(results) - len(errs) - 1)
				return r.sess, nil
			}
			errs = append(errs, fmt.Sprintf("%s: %v", r.addr, r.err))
		case <-deadline:
			return nil, fmt.Errorf("tcpls: DialParallel timed out after %v (failures: %s)",
				timeout, strings.Join(errs, "; "))
		}
	}
	return nil, fmt.Errorf("tcpls: all addresses failed: %s", strings.Join(errs, "; "))
}
