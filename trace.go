package tcpls

import (
	"io"

	"tcpls/internal/core"
	"tcpls/internal/telemetry"
)

// TraceEvent re-exports the engine's trace event.
type TraceEvent = core.TraceEvent

// TraceJSON streams the session's protocol events to w as JSON lines in
// a qlog-flavoured schema — the paper artifact ships QLOG/QVIS support
// for exactly this kind of offline analysis. Call before traffic flows;
// pass nil to stop tracing.
//
// Events are serialized with encoding/json and routed through a bounded
// ring buffer drained by a dedicated writer goroutine, so a slow or
// stalled w never backpressures the engine's send/recv path: when the
// ring fills, events are dropped and counted (tcpls_trace_dropped_total
// on /metrics, TraceDropped in Session.Metrics). Config.Telemetry.Sample
// thins the stream for high-rate transfers.
//
// Each line:
//
//	{"time_us":..., "name":"record_sent", "conn":0, "stream":2, "seq":41, "bytes":16368}
func (s *Session) TraceJSON(w io.Writer) {
	s.mu.Lock()
	prev := s.traceSink
	s.traceSink = nil
	if w == nil {
		s.engine.SetTracer(nil)
	} else {
		var events, dropped *telemetry.Counter
		if s.tel != nil {
			events = s.tel.TraceEvents
			dropped = s.tel.TraceDropped
		}
		sink := telemetry.NewSink(w, telemetry.SinkOptions{
			Sample:  s.cfg.Telemetry.Sample,
			Events:  events,
			Dropped: dropped,
		})
		s.traceSink = sink
		s.engine.SetTracer(func(ev TraceEvent) {
			sink.Emit(telemetry.Event{
				Time:   ev.Time,
				Name:   ev.Name,
				Conn:   ev.Conn,
				Stream: ev.Stream,
				Seq:    ev.Seq,
				Bytes:  ev.Bytes,
			})
		})
	}
	s.mu.Unlock()
	// Flush the displaced sink outside the session lock: Close drains a
	// healthy writer completely (so callers swapping the trace target see
	// every event) and its wait is bounded when the writer is stalled.
	if prev != nil {
		prev.Close()
	}
}

// Trace installs a raw trace callback (for programmatic consumers).
func (s *Session) Trace(fn func(TraceEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine.SetTracer(fn)
}
