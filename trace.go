package tcpls

import (
	"fmt"
	"io"
	"sync"

	"tcpls/internal/core"
)

// TraceEvent re-exports the engine's trace event.
type TraceEvent = core.TraceEvent

// TraceJSON streams the session's protocol events to w as JSON lines in
// a qlog-flavoured schema — the paper artifact ships QLOG/QVIS support
// for exactly this kind of offline analysis. Call before traffic flows;
// pass nil to stop tracing.
//
// Each line:
//
//	{"time_us":..., "name":"record_sent", "conn":0, "stream":2, "seq":41, "bytes":16368}
func (s *Session) TraceJSON(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w == nil {
		s.engine.SetTracer(nil)
		return
	}
	var wmu sync.Mutex
	s.engine.SetTracer(func(ev TraceEvent) {
		wmu.Lock()
		defer wmu.Unlock()
		fmt.Fprintf(w, `{"time_us":%d,"name":%q,"conn":%d,"stream":%d,"seq":%d,"bytes":%d}`+"\n",
			ev.Time.UnixMicro(), ev.Name, ev.Conn, ev.Stream, ev.Seq, ev.Bytes)
	})
}

// Trace installs a raw trace callback (for programmatic consumers).
func (s *Session) Trace(fn func(TraceEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine.SetTracer(fn)
}
