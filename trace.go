package tcpls

import (
	"errors"
	"io"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/telemetry"
)

// TraceEvent re-exports the engine's trace event.
type TraceEvent = core.TraceEvent

// TraceJSON streams the session's protocol events to w as qlog lines —
// the paper artifact ships QLOG/QVIS support for exactly this kind of
// offline analysis. Call before traffic flows; pass nil to stop tracing.
//
// Events are serialized with encoding/json and routed through a bounded
// ring buffer drained by a dedicated writer goroutine, so a slow or
// stalled w never backpressures the engine's send/recv path: when the
// ring fills, events are dropped and counted (tcpls_trace_dropped_total
// on /metrics, TraceDropped in Session.Metrics). Config.Telemetry.Sample
// thins the stream for high-rate transfers.
//
// The first line is the qlog header, then one event per line:
//
//	{"qlog_version":"0.3","qlog_format":"NDJSON","title":"tcpls"}
//	{"time_us":..., "category":"transport", "type":"record_sent", "data":{"conn":0,"stream":2,"seq":41,"bytes":16368}}
//
// Config.Telemetry.FlatTrace restores the legacy flat schema
// ({"time_us":...,"name":...,...}, no header).
func (s *Session) TraceJSON(w io.Writer) {
	var sink *telemetry.Sink
	if w != nil {
		var events, dropped *telemetry.Counter
		s.mu.Lock()
		if s.tel != nil {
			events = s.tel.TraceEvents
			dropped = s.tel.TraceDropped
		}
		s.mu.Unlock()
		// The sink spawns its writer goroutine; build it off the lock.
		sink = telemetry.NewSink(w, telemetry.SinkOptions{
			Sample:  s.cfg.Telemetry.Sample,
			Flat:    s.cfg.Telemetry.FlatTrace,
			Events:  events,
			Dropped: dropped,
		})
	}
	s.mu.Lock()
	prev := s.traceSink
	s.traceSink = sink
	s.refreshTracerLocked()
	s.mu.Unlock()
	// Flush the displaced sink outside the session lock: Close drains a
	// healthy writer completely (so callers swapping the trace target see
	// every event) and its wait is bounded when the writer is stalled.
	if prev != nil {
		prev.Close()
	}
}

// Trace installs a raw trace callback (for programmatic consumers). The
// callback runs on the engine's protocol path under the session lock:
// keep it cheap and never call back into the session. It composes with
// (does not displace) an active TraceJSON sink and the flight recorder;
// nil removes a previously installed callback.
func (s *Session) Trace(fn func(TraceEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traceFn = fn
	s.refreshTracerLocked()
}

// refreshTracerLocked is the single point that installs the engine
// tracer, fanning each event out to the flight recorder, the TraceJSON
// sink, and the Trace callback — whichever are active. Every installer
// (initTelemetry, TraceJSON, Trace) routes through here so none can
// displace another's consumer and strand its bookkeeping (the sink's
// writer goroutine in particular).
func (s *Session) refreshTracerLocked() {
	flight, sink, fn := s.flight, s.traceSink, s.traceFn
	if flight == nil && sink == nil && fn == nil {
		s.engine.SetTracer(nil)
		return
	}
	s.engine.SetTracer(func(ev TraceEvent) {
		if flight != nil {
			flight.Append(toFlightEvent(&ev))
		}
		if sink != nil {
			sink.Emit(toSinkEvent(&ev))
		}
		if fn != nil {
			fn(ev)
		}
	})
}

// usOrZero converts a span leg to Unix microseconds, keeping the zero
// time (leg not stamped) at 0.
func usOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMicro()
}

// toFlightEvent flattens an engine event for the flight ring: all
// timestamps pre-converted so Append copies plain values and allocates
// nothing.
func toFlightEvent(ev *TraceEvent) telemetry.FlightEvent {
	return telemetry.FlightEvent{
		TimeUS:    ev.Time.UnixMicro(),
		Name:      ev.Name,
		Conn:      ev.Conn,
		Stream:    ev.Stream,
		Seq:       ev.Seq,
		Bytes:     ev.Bytes,
		EnqUS:     usOrZero(ev.EnqueuedAt),
		SealedUS:  usOrZero(ev.SealedAt),
		WrittenUS: usOrZero(ev.WrittenAt),
		AckedUS:   usOrZero(ev.AckedAt),
		OrigConn:  ev.OrigConn,
		Retx:      int32(ev.Retx),
	}
}

// toSinkEvent mirrors an engine event into the sink's schema.
func toSinkEvent(ev *TraceEvent) telemetry.Event {
	return telemetry.Event{
		Time:       ev.Time,
		Name:       ev.Name,
		Conn:       ev.Conn,
		Stream:     ev.Stream,
		Seq:        ev.Seq,
		Bytes:      ev.Bytes,
		EnqueuedAt: ev.EnqueuedAt,
		SealedAt:   ev.SealedAt,
		WrittenAt:  ev.WrittenAt,
		AckedAt:    ev.AckedAt,
		OrigConn:   ev.OrigConn,
		Retx:       ev.Retx,
	}
}

// errNoFlight reports a dump request on a session whose flight recorder
// is off (Telemetry.Disabled or FlightCapacity < 0).
var errNoFlight = errors.New("tcpls: flight recorder disabled")

// DumpFlight writes the flight recorder's contents — the most recent
// trace events, spans included — to w in the same qlog-lines framing as
// TraceJSON, so tcpls-trace reads dumps and live traces identically.
// Safe to call at any time, including concurrently with Close and from
// a signal handler; the dump is a point-in-time snapshot.
func (s *Session) DumpFlight(w io.Writer) error {
	s.mu.Lock()
	flight := s.flight
	s.mu.Unlock()
	if flight == nil {
		return errNoFlight
	}
	return flight.Dump(w)
}
