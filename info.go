package tcpls

import (
	"fmt"
	"time"
)

// ConnInfo is per-TCP-connection state exposed to the application — the
// paper's §3.3.3 use of tcp_info for application-level path decisions
// (stream steering, migration policies, scheduler input).
//
// On Linux with real TCP connections the kernel's TCP_INFO fills the
// congestion fields; elsewhere (or over non-TCP transports such as the
// test pipes) only the TCPLS-level fields are populated and Kernel is
// false.
type ConnInfo struct {
	ConnID uint32
	// Kernel reports whether the congestion fields below came from the
	// kernel's TCP_INFO.
	Kernel bool
	// RTT / RTTVar are the kernel's smoothed estimates.
	RTT    time.Duration
	RTTVar time.Duration
	// SndCwnd is the congestion window in segments; SndMSS the segment
	// size; PMTU the path MTU; Retrans the total retransmissions.
	SndCwnd uint32
	SndMSS  uint32
	PMTU    uint32
	Retrans uint32
	// LocalAddr / RemoteAddr identify the path.
	LocalAddr  string
	RemoteAddr string
}

// ConnInfo returns statistics for one of the session's connections.
func (s *Session) ConnInfo(connID uint32) (*ConnInfo, error) {
	s.mu.Lock()
	pc, ok := s.conns[connID]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpls: unknown connection %d", connID)
	}
	info := &ConnInfo{
		ConnID:     connID,
		LocalAddr:  pc.nc.LocalAddr().String(),
		RemoteAddr: pc.nc.RemoteAddr().String(),
	}
	fillKernelInfo(pc.nc, info)
	return info, nil
}
