package tcpls

import (
	"sync"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/health"
	"tcpls/internal/telemetry"
)

// HealthConfig is the Config.Health knob: the continuous self-diagnosis
// sampler layered over telemetry. The zero value enables it at the
// production defaults — a shared 1s tick, one minute of ring history —
// whenever telemetry itself is on. The sampler snapshots the session's
// counters each tick into fixed time-series rings (zero steady-state
// allocations), derives goodput, retransmit ratio, reorder slope, and
// ACK-RTT drift, and runs a hysteresis rule table whose verdicts
// (stall_suspected, retransmit_storm, memory_growth, path_asymmetry)
// flow to the flight recorder, the qlog trace under the "health"
// category, tcpls_health_* Prometheus families, and the
// /debug/tcpls/health JSON endpoint.
type HealthConfig struct {
	// Disabled turns continuous diagnosis off. It is also implicitly
	// off when Telemetry.Disabled is set — the sampler reads the
	// telemetry handles.
	Disabled bool
	// Interval is the sampling tick (default 1s). Sessions sharing an
	// interval share one polling goroutine; the rule hysteresis is
	// counted in ticks, so shorter intervals diagnose proportionally
	// faster.
	Interval time.Duration
	// Window is the ring capacity in ticks (default 60).
	Window int
}

func (hc *HealthConfig) interval() time.Duration {
	if hc.Interval <= 0 {
		return time.Second
	}
	return hc.Interval
}

func (hc *HealthConfig) window() int {
	if hc.Window <= 0 {
		return 60
	}
	return hc.Window
}

// sessionHealthSource adapts a Session to health.Source: one locked
// pass over the engine per tick, reusing the session's ConnHealth
// buffer so steady-state sampling allocates nothing.
type sessionHealthSource struct{ s *Session }

func (src sessionHealthSource) HealthSample(hs *health.Sample) {
	s := src.s
	s.mu.Lock()
	defer s.mu.Unlock()
	var cs core.HealthStats
	s.healthConns = s.engine.HealthSnapshot(&cs, s.healthConns[:0])
	hs.BytesSent = cs.Stats.BytesSent
	hs.BytesReceived = cs.Stats.BytesReceived
	hs.RecordsSent = cs.Stats.RecordsSent
	hs.RecordsReceived = cs.Stats.RecordsReceived
	hs.AcksReceived = cs.Stats.AcksReceived
	hs.Retransmits = cs.Stats.Retransmits
	hs.OutstandingBytes = cs.OutstandingBytes
	hs.MemoryBytes = cs.BufferedBytes
	hs.ReorderDepth = cs.ReorderDepth
	hs.ConnsLive = cs.ConnsLive
	hs.StreamsOpen = cs.StreamsOpen
	if tel := s.tel; tel != nil {
		hs.AckRTTCount = tel.AckRTT.Count()
		hs.AckRTTSumSec = tel.AckRTT.Sum()
	}
	for i := range s.healthConns {
		c := &s.healthConns[i]
		hs.Paths = append(hs.Paths, health.PathSample{
			Conn:          c.ID,
			Failed:        c.Failed,
			BytesSent:     c.BytesSent,
			BytesReceived: c.BytesReceived,
			Retransmits:   c.Retransmits,
			SRTTUS:        c.SRTTUS,
			DeliveryRate:  c.DeliveryRate,
		})
	}
}

// onHealthVerdict is the session's verdict sink: every raise/clear is
// stamped onto the trace timeline (flight recorder + qlog sink + user
// Trace callback) as a "health"-category event whose type is the
// verdict name, Seq 1 for raises and 0 for clears, Bytes the headline
// evidence scalar. Runs on the health engine's goroutine.
func (s *Session) onHealthVerdict(v health.Verdict) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := uint64(0)
	if v.Raised {
		seq = 1
	}
	s.engine.Note(v.Name, v.Conn, 0, seq, int(v.Value))
}

// initHealth wires the session's monitor: rings + rules over the
// telemetry handles, registered on the shared wall-clock engine for
// its interval and on /debug/tcpls/health under the session's debug
// key. Called from initTelemetry before the engine sees traffic.
func (s *Session) initHealth() {
	hc := &s.cfg.Health
	if hc.Disabled || s.tel == nil || s.debugKey == "" {
		return
	}
	iv := hc.interval()
	fams := health.NewFamilies(telemetry.Default())
	mon := health.NewMonitor(sessionHealthSource{s}, health.Options{
		Key:       s.debugKey,
		Interval:  iv,
		Window:    hc.window(),
		OnVerdict: s.onHealthVerdict,
		Metrics:   fams.Entity(sessLabel(s.sessID)),
	})
	s.healthMon = mon
	s.healthKey = s.debugKey
	s.healthIv = iv
	telemetry.RegisterHealth(s.healthKey, func() any { return mon.Status() })
	acquireHealthEngine(iv).Register(s.healthKey, mon)
	acquireProcessHealth(iv, hc.window())
}

// closeHealthLocked tears the monitor down. Idempotent; called under
// s.mu from closeTelemetryLocked. The engine never blocks on an
// in-flight poll, so this cannot deadlock against a sampler holding
// nothing and wanting s.mu.
func (s *Session) closeHealthLocked() {
	if s.healthMon == nil {
		return
	}
	telemetry.UnregisterHealth(s.healthKey)
	if eng := lookupHealthEngine(s.healthIv); eng != nil {
		eng.Unregister(s.healthKey)
	}
	releaseHealthEngine(s.healthIv)
	releaseProcessHealth()
	s.healthMon = nil
	s.healthKey = ""
}

// Shared wall-clock health engines, refcounted per interval: sessions
// with the same tick share one polling goroutine, which exits when the
// last session closes.
var (
	healthEngMu   sync.Mutex
	healthEngines = make(map[time.Duration]*healthEngineEntry)
)

type healthEngineEntry struct {
	eng  *health.Engine
	refs int
}

func acquireHealthEngine(iv time.Duration) *health.Engine {
	healthEngMu.Lock()
	defer healthEngMu.Unlock()
	e, ok := healthEngines[iv]
	if !ok {
		e = &healthEngineEntry{eng: health.NewEngine(iv)}
		healthEngines[iv] = e
	}
	e.refs++
	return e.eng
}

func lookupHealthEngine(iv time.Duration) *health.Engine {
	healthEngMu.Lock()
	defer healthEngMu.Unlock()
	if e, ok := healthEngines[iv]; ok {
		return e.eng
	}
	return nil
}

func releaseHealthEngine(iv time.Duration) {
	healthEngMu.Lock()
	defer healthEngMu.Unlock()
	e, ok := healthEngines[iv]
	if !ok {
		return
	}
	if e.refs--; e.refs <= 0 {
		delete(healthEngines, iv)
	}
}

// The process-level monitor diagnoses what no single session can see:
// resumption acceptance, admission pressure, and the server memory
// rollup, sampled from the shared registry. It exists while any
// session-level monitor does (refcounted) and serves the "process" key
// on /debug/tcpls/health.
var (
	procHealthMu   sync.Mutex
	procHealth     *health.Monitor
	procHealthRefs int
	procHealthIv   time.Duration
)

// processHealthSource samples the process-wide registry families.
type processHealthSource struct{}

func (processHealthSource) HealthSample(hs *health.Sample) {
	reg := telemetry.Default()
	sum := func(name string) uint64 {
		v, _ := reg.SumValues(name)
		if v < 0 {
			return 0
		}
		return uint64(v)
	}
	hs.ResumeAccepted = sum("tcpls_resume_accepted_total")
	hs.ResumeRejected = sum("tcpls_resume_rejected_total")
	hs.AdmissionRejected = sum("tcpls_server_rejected_total")
	mem, _ := reg.SumValues("tcpls_server_memory_bytes")
	hs.MemoryBytes = int(mem)
}

// HealthRollup surfaces the operator counters the /debug/tcpls/health
// endpoint and tcpls-top promise to agree with Prometheus on: the
// PR-8 resumption families and ticket-rotation failures, plus the
// admission edge.
func (processHealthSource) HealthRollup() map[string]float64 {
	reg := telemetry.Default()
	out := make(map[string]float64, 12)
	for _, name := range []string{
		"tcpls_resume_accepted_total",
		"tcpls_resume_rejected_total",
		"tcpls_early_data_accepted_total",
		"tcpls_early_data_rejected_total",
		"tcpls_early_data_bytes_total",
		"tcpls_join_fastpath_total",
		"tcpls_replay_entries",
		"tcpls_ticket_rotate_failures_total",
		"tcpls_server_accepted_total",
		"tcpls_server_rejected_total",
		"tcpls_server_sessions",
		"tcpls_server_memory_bytes",
	} {
		if v, ok := reg.SumValues(name); ok {
			out[name] = v
		}
	}
	return out
}

func acquireProcessHealth(iv time.Duration, window int) {
	procHealthMu.Lock()
	defer procHealthMu.Unlock()
	procHealthRefs++
	if procHealth != nil {
		return
	}
	fams := health.NewFamilies(telemetry.Default())
	mon := health.NewMonitor(processHealthSource{}, health.Options{
		Key:      "process",
		Interval: iv,
		Window:   window,
		Process:  true,
		Metrics:  fams.Entity("process"),
	})
	procHealth = mon
	procHealthIv = iv
	telemetry.RegisterHealth("process", func() any { return mon.Status() })
	acquireHealthEngine(iv).Register("process", mon)
}

func releaseProcessHealth() {
	procHealthMu.Lock()
	defer procHealthMu.Unlock()
	if procHealthRefs--; procHealthRefs > 0 || procHealth == nil {
		return
	}
	telemetry.UnregisterHealth("process")
	if eng := lookupHealthEngine(procHealthIv); eng != nil {
		eng.Unregister("process")
	}
	releaseHealthEngine(procHealthIv)
	procHealth = nil
}
