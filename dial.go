package tcpls

import (
	"errors"
	"fmt"
	"net"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/handshake"
)

// Dial establishes a TCPLS session to addr: TCP connect, TLS 1.3-shaped
// handshake with the TCPLS Hello extension, then the session is ready
// for streams. With cfg.DisableTCPLS the result is plain TLS over TCP
// carrying a single implicit byte stream.
//
// Explicit fallback (paper §5.2): when the handshake dies on the wire —
// an overly strict firewall answering the TCPLS ClientHello with a RST,
// or a legacy server aborting on unknown extensions — Dial retries once
// as plain TLS, unless the failure was a protocol-level rejection (bad
// certificate, bad Finished), which a retry cannot fix.
func Dial(network, addr string, cfg *Config) (*Session, error) {
	if cfg != nil {
		if err := cfg.validateScheduler(); err != nil {
			return nil, err
		}
	}
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	sess, err := Client(nc, cfg)
	if err == nil || cfg != nil && cfg.DisableTCPLS || !isWireFailure(err) {
		return sess, err
	}
	// Retry without the TCPLS Hello extension.
	nc, err2 := net.Dial(network, addr)
	if err2 != nil {
		return nil, err
	}
	fcfg := cfg.clone()
	fcfg.DisableTCPLS = true
	return Client(nc, fcfg)
}

// isWireFailure distinguishes transport-level aborts (retryable as plain
// TLS) from authenticated protocol rejections (not retryable).
func isWireFailure(err error) bool {
	switch {
	case errors.Is(err, handshake.ErrBadFinished),
		errors.Is(err, handshake.ErrBadSignature),
		errors.Is(err, handshake.ErrUntrustedKey),
		errors.Is(err, handshake.ErrJoinRejected):
		return false
	}
	return true
}

// Client runs the client side of a TCPLS session over an established
// connection (Happy-Eyeballs-style callers dial their own sockets,
// §4.6).
func Client(nc net.Conn, cfg *Config) (*Session, error) {
	cfg = cfg.clone()
	if err := cfg.validateScheduler(); err != nil {
		nc.Close()
		return nil, err
	}
	hcfg := &handshake.Config{
		Suites:      cfg.Suites,
		ServerName:  cfg.ServerName,
		RootKeys:    cfg.RootKeys,
		EnableTCPLS: !cfg.DisableTCPLS,
	}
	offerEarly := false
	wantEarly := false
	if cfg.Ticket != nil {
		hcfg.PSK = cfg.Ticket.PSK
		hcfg.PSKTicket = cfg.Ticket.Ticket
		if len(cfg.EarlyData) > 0 && !cfg.DisableTCPLS {
			// 0-RTT: the flight rides behind the ClientHello, clamped to
			// the budget the ticket advertised — an oversized offer would
			// only be drained and retracted server-side, so it goes out at
			// 1-RTT directly. On rejection the same bytes are resent at
			// 1-RTT below — the application sees an identical stream
			// either way.
			wantEarly = true
			if len(cfg.EarlyData) <= int(cfg.Ticket.MaxEarlyData) {
				hcfg.EarlyData = cfg.EarlyData
				offerEarly = true
			}
		}
	}
	tr := handshake.NewTransport(nc)
	res, err := handshake.Client(tr, hcfg)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if !cfg.DisableTCPLS && !res.TCPLSEnabled {
		// Implicit fallback (paper §5.2): the server is plain TLS. The
		// session still works, without TCPLS transport services.
		cfg.DisableTCPLS = true
	}
	sess := newSession(true, cfg, res, nc, tr.Leftover())
	if wantEarly {
		// The first client stream gets the same ID (2) the server's
		// injection used, so on acceptance the bytes are already home and
		// only the STREAM_ATTACH goes out; on rejection (or an offer
		// clamped away entirely) this stream carries the lossless 1-RTT
		// resend. A failure to open it is a failure to deliver
		// cfg.EarlyData at all — surface it rather than drop the bytes.
		st, serr := sess.OpenStream()
		if serr != nil {
			sess.Close()
			return nil, fmt.Errorf("tcpls: early-data stream: %w", serr)
		}
		sess.mu.Lock()
		sess.earlyStreamID = st.id
		sess.hasEarlyStream = true
		sess.mu.Unlock()
		if !res.EarlyDataAccepted {
			if offerEarly {
				sess.noteTrace("early_data_rejected", 0, 0, len(cfg.EarlyData))
			}
			if _, werr := st.Write(cfg.EarlyData); werr != nil {
				sess.Close()
				return nil, werr
			}
		}
	}
	return sess, nil
}

// JoinPath opens an additional TCP connection to addr and joins it to
// the session using one of the server's single-use cookies (Fig. 3).
// It returns the new connection's engine ID, usable with OpenStreamOn,
// Failover, and the scheduler.
func (s *Session) JoinPath(network, addr string) (uint32, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrSessionClosed
	}
	if s.cfg.DisableTCPLS {
		s.mu.Unlock()
		return 0, ErrNotTCPLS
	}
	if len(s.cookies) == 0 {
		s.mu.Unlock()
		return 0, ErrNoCookies
	}
	cookie := s.cookies[0]
	s.cookies = s.cookies[1:]
	connID := s.nextConnID
	s.nextConnID++
	sessID := s.sessID
	sname := s.cfg.ServerName
	suites := s.cfg.Suites
	s.engine.Note("cookie_consumed", connID, 0, 0, len(s.cookies))
	s.mu.Unlock()

	nc, err := net.Dial(network, addr)
	if err != nil {
		return 0, fmt.Errorf("tcpls: join dial: %w", err)
	}
	hcfg := &handshake.Config{
		Suites:     suites,
		ServerName: sname,
		Join:       &handshake.JoinTicket{SessID: sessID, Cookie: cookie, ConnID: connID},
	}
	tr := handshake.NewTransport(nc)
	if _, err := handshake.Client(tr, hcfg); err != nil {
		nc.Close()
		return 0, fmt.Errorf("tcpls: join handshake: %w", err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return 0, ErrSessionClosed
	}
	if err := s.engine.AddConnection(connID, time.Now()); err != nil {
		s.mu.Unlock()
		nc.Close()
		return 0, err
	}
	s.addConnLocked(connID, nc)
	s.engine.Note("join_accepted", connID, 0, 0, 0)
	if s.dialNetwork == "" {
		s.dialNetwork = network
	}
	s.rememberAddrLocked(addr)
	var pending []outChunk
	if leftover := tr.Leftover(); len(leftover) > 0 {
		s.engine.Receive(connID, leftover, time.Now())
		s.processEventsLocked()
		pending = s.collectOutgoingLocked()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.writeAll(pending)
	return connID, nil
}

// JoinPathFast opens an additional TCP connection and joins it to the
// session in a single flight: the join ClientHello, a STREAM_ATTACH for
// a fresh stream, and early (the stream's first bytes) all ride the
// client's first flight, protected by the session's established keys.
// The connection is productive one round trip sooner than JoinPath — the
// server can deliver early to the application before its own first byte
// reaches the client.
//
// The optimistic flight is a bet on the cookie being accepted. With
// EnableFailover a rejection is lossless: the stream's records replay
// onto a surviving connection. Without failover, a non-empty early falls
// back internally to the ordinary two-flight join so no bytes can be
// lost. The returned stream is nil when early is empty.
func (s *Session) JoinPathFast(network, addr string, early []byte) (uint32, *Stream, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, nil, ErrSessionClosed
	}
	if s.cfg.DisableTCPLS {
		s.mu.Unlock()
		return 0, nil, ErrNotTCPLS
	}
	if len(s.cookies) == 0 {
		s.mu.Unlock()
		return 0, nil, ErrNoCookies
	}
	if len(early) > 0 && !s.cfg.EnableFailover {
		s.mu.Unlock()
		connID, err := s.JoinPath(network, addr)
		if err != nil {
			return 0, nil, err
		}
		st, err := s.OpenStreamOn(connID)
		if err != nil {
			return connID, nil, err
		}
		if _, err := st.Write(early); err != nil {
			return connID, st, err
		}
		return connID, st, nil
	}
	cookie := s.cookies[0]
	s.cookies = s.cookies[1:]
	connID := s.nextConnID
	s.nextConnID++
	sessID := s.sessID
	suites := s.cfg.Suites
	s.engine.Note("cookie_consumed", connID, 0, 0, len(s.cookies))
	s.mu.Unlock()

	nc, err := net.Dial(network, addr)
	if err != nil {
		return 0, nil, fmt.Errorf("tcpls: join dial: %w", err)
	}
	tr := handshake.NewTransport(nc)
	hcfg := &handshake.Config{
		Suites: suites,
		Join:   &handshake.JoinTicket{SessID: sessID, Cookie: cookie, ConnID: connID},
	}
	if err := handshake.StartFastJoin(tr, hcfg); err != nil {
		nc.Close()
		return 0, nil, fmt.Errorf("tcpls: fast join: %w", err)
	}

	// Build the optimistic flight. The connection is registered with the
	// engine but not yet with the session (no reader/writer loops, not in
	// s.conns), so concurrent flushes cannot race us for its outgoing
	// queue and nothing consumes the server's plaintext ack early.
	var st *Stream
	var flight []byte
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return 0, nil, ErrSessionClosed
	}
	if err := s.engine.AddConnection(connID, time.Now()); err != nil {
		s.mu.Unlock()
		nc.Close()
		return 0, nil, err
	}
	s.engine.Note("join_fastpath", connID, 0, 0, len(early))
	if len(early) > 0 {
		sid, serr := s.engine.CreateStream(connID)
		if serr == nil {
			st = &Stream{sess: s, id: sid}
			s.streams[sid] = st
			_, serr = s.engine.Write(sid, early)
		}
		if serr == nil {
			if ferr := s.engine.Flush(); ferr != nil && ferr != core.ErrNotCoupled {
				serr = ferr
			}
		}
		if serr == nil {
			flight, serr = s.engine.Outgoing(connID)
		}
		if serr != nil {
			s.mu.Unlock()
			nc.Close()
			return 0, st, serr
		}
	}
	s.mu.Unlock()

	if len(flight) > 0 {
		_, werr := nc.Write(flight)
		now := time.Now()
		s.mu.Lock()
		if werr == nil {
			s.engine.NoteWritten(connID, now)
		} else {
			s.engine.NoteWriteDropped(connID)
		}
		s.engine.RecycleOutgoing(flight)
		s.mu.Unlock()
		if werr != nil {
			nc.Close()
			s.reportFastJoinFailed(connID)
			return 0, st, fmt.Errorf("tcpls: fast join write: %w", werr)
		}
	}

	if err := handshake.FinishFastJoin(tr); err != nil {
		// Cookie spent for nothing. Declare the embryonic connection
		// failed so failover replays the optimistic records onto a
		// surviving path — the stream's bytes are not lost.
		nc.Close()
		s.reportFastJoinFailed(connID)
		return 0, st, fmt.Errorf("tcpls: fast join: %w", err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return 0, st, ErrSessionClosed
	}
	s.addConnLocked(connID, nc)
	s.engine.Note("join_accepted", connID, 0, 0, 0)
	if s.dialNetwork == "" {
		s.dialNetwork = network
	}
	s.rememberAddrLocked(addr)
	var pending []outChunk
	if leftover := tr.Leftover(); len(leftover) > 0 {
		s.engine.Receive(connID, leftover, time.Now())
		s.processEventsLocked()
		pending = s.collectOutgoingLocked()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.writeAll(pending)
	return connID, st, nil
}

// reportFastJoinFailed marks an embryonic fast-join connection failed so
// its optimistic records replay through the normal failover machinery.
func (s *Session) reportFastJoinFailed(connID uint32) {
	s.mu.Lock()
	s.engine.ReportConnFailed(connID)
	s.processEventsLocked()
	out := s.collectOutgoingLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.writeAll(out)
}

// JoinConn joins an already-established TCP connection (dialed by the
// application, e.g. from a specific source address) to the session.
func (s *Session) JoinConn(nc net.Conn) (uint32, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrSessionClosed
	}
	if s.cfg.DisableTCPLS {
		s.mu.Unlock()
		return 0, ErrNotTCPLS
	}
	if len(s.cookies) == 0 {
		s.mu.Unlock()
		return 0, ErrNoCookies
	}
	cookie := s.cookies[0]
	s.cookies = s.cookies[1:]
	connID := s.nextConnID
	s.nextConnID++
	sessID := s.sessID
	sname := s.cfg.ServerName
	suites := s.cfg.Suites
	s.engine.Note("cookie_consumed", connID, 0, 0, len(s.cookies))
	s.mu.Unlock()

	hcfg := &handshake.Config{
		Suites:     suites,
		ServerName: sname,
		Join:       &handshake.JoinTicket{SessID: sessID, Cookie: cookie, ConnID: connID},
	}
	tr := handshake.NewTransport(nc)
	if _, err := handshake.Client(tr, hcfg); err != nil {
		nc.Close()
		return 0, fmt.Errorf("tcpls: join handshake: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		nc.Close()
		return 0, ErrSessionClosed
	}
	if err := s.engine.AddConnection(connID, time.Now()); err != nil {
		nc.Close()
		return 0, err
	}
	s.addConnLocked(connID, nc)
	s.engine.Note("join_accepted", connID, 0, 0, 0)
	if leftover := tr.Leftover(); len(leftover) > 0 {
		s.engine.Receive(connID, leftover, time.Now())
		s.processEventsLocked()
		pending := s.collectOutgoingLocked()
		defer s.writeAll(pending)
	}
	s.cond.Broadcast()
	return connID, nil
}
