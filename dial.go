package tcpls

import (
	"errors"
	"fmt"
	"net"
	"time"

	"tcpls/internal/handshake"
)

// Dial establishes a TCPLS session to addr: TCP connect, TLS 1.3-shaped
// handshake with the TCPLS Hello extension, then the session is ready
// for streams. With cfg.DisableTCPLS the result is plain TLS over TCP
// carrying a single implicit byte stream.
//
// Explicit fallback (paper §5.2): when the handshake dies on the wire —
// an overly strict firewall answering the TCPLS ClientHello with a RST,
// or a legacy server aborting on unknown extensions — Dial retries once
// as plain TLS, unless the failure was a protocol-level rejection (bad
// certificate, bad Finished), which a retry cannot fix.
func Dial(network, addr string, cfg *Config) (*Session, error) {
	if cfg != nil {
		if err := cfg.validateScheduler(); err != nil {
			return nil, err
		}
	}
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	sess, err := Client(nc, cfg)
	if err == nil || cfg != nil && cfg.DisableTCPLS || !isWireFailure(err) {
		return sess, err
	}
	// Retry without the TCPLS Hello extension.
	nc, err2 := net.Dial(network, addr)
	if err2 != nil {
		return nil, err
	}
	fcfg := cfg.clone()
	fcfg.DisableTCPLS = true
	return Client(nc, fcfg)
}

// isWireFailure distinguishes transport-level aborts (retryable as plain
// TLS) from authenticated protocol rejections (not retryable).
func isWireFailure(err error) bool {
	switch {
	case errors.Is(err, handshake.ErrBadFinished),
		errors.Is(err, handshake.ErrBadSignature),
		errors.Is(err, handshake.ErrUntrustedKey),
		errors.Is(err, handshake.ErrJoinRejected):
		return false
	}
	return true
}

// Client runs the client side of a TCPLS session over an established
// connection (Happy-Eyeballs-style callers dial their own sockets,
// §4.6).
func Client(nc net.Conn, cfg *Config) (*Session, error) {
	cfg = cfg.clone()
	if err := cfg.validateScheduler(); err != nil {
		nc.Close()
		return nil, err
	}
	hcfg := &handshake.Config{
		Suites:      cfg.Suites,
		ServerName:  cfg.ServerName,
		RootKeys:    cfg.RootKeys,
		EnableTCPLS: !cfg.DisableTCPLS,
	}
	if cfg.Ticket != nil {
		hcfg.PSK = cfg.Ticket.PSK
		hcfg.PSKTicket = cfg.Ticket.Ticket
	}
	tr := handshake.NewTransport(nc)
	res, err := handshake.Client(tr, hcfg)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if !cfg.DisableTCPLS && !res.TCPLSEnabled {
		// Implicit fallback (paper §5.2): the server is plain TLS. The
		// session still works, without TCPLS transport services.
		cfg.DisableTCPLS = true
	}
	return newSession(true, cfg, res, nc, tr.Leftover()), nil
}

// JoinPath opens an additional TCP connection to addr and joins it to
// the session using one of the server's single-use cookies (Fig. 3).
// It returns the new connection's engine ID, usable with OpenStreamOn,
// Failover, and the scheduler.
func (s *Session) JoinPath(network, addr string) (uint32, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrSessionClosed
	}
	if s.cfg.DisableTCPLS {
		s.mu.Unlock()
		return 0, ErrNotTCPLS
	}
	if len(s.cookies) == 0 {
		s.mu.Unlock()
		return 0, ErrNoCookies
	}
	cookie := s.cookies[0]
	s.cookies = s.cookies[1:]
	connID := s.nextConnID
	s.nextConnID++
	sessID := s.sessID
	sname := s.cfg.ServerName
	suites := s.cfg.Suites
	s.engine.Note("cookie_consumed", connID, 0, 0, len(s.cookies))
	s.mu.Unlock()

	nc, err := net.Dial(network, addr)
	if err != nil {
		return 0, fmt.Errorf("tcpls: join dial: %w", err)
	}
	hcfg := &handshake.Config{
		Suites:     suites,
		ServerName: sname,
		Join:       &handshake.JoinTicket{SessID: sessID, Cookie: cookie, ConnID: connID},
	}
	tr := handshake.NewTransport(nc)
	if _, err := handshake.Client(tr, hcfg); err != nil {
		nc.Close()
		return 0, fmt.Errorf("tcpls: join handshake: %w", err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return 0, ErrSessionClosed
	}
	if err := s.engine.AddConnection(connID, time.Now()); err != nil {
		s.mu.Unlock()
		nc.Close()
		return 0, err
	}
	s.addConnLocked(connID, nc)
	s.engine.Note("join_accepted", connID, 0, 0, 0)
	if s.dialNetwork == "" {
		s.dialNetwork = network
	}
	s.rememberAddrLocked(addr)
	var pending []outChunk
	if leftover := tr.Leftover(); len(leftover) > 0 {
		s.engine.Receive(connID, leftover, time.Now())
		s.processEventsLocked()
		pending = s.collectOutgoingLocked()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.writeAll(pending)
	return connID, nil
}

// JoinConn joins an already-established TCP connection (dialed by the
// application, e.g. from a specific source address) to the session.
func (s *Session) JoinConn(nc net.Conn) (uint32, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrSessionClosed
	}
	if s.cfg.DisableTCPLS {
		s.mu.Unlock()
		return 0, ErrNotTCPLS
	}
	if len(s.cookies) == 0 {
		s.mu.Unlock()
		return 0, ErrNoCookies
	}
	cookie := s.cookies[0]
	s.cookies = s.cookies[1:]
	connID := s.nextConnID
	s.nextConnID++
	sessID := s.sessID
	sname := s.cfg.ServerName
	suites := s.cfg.Suites
	s.engine.Note("cookie_consumed", connID, 0, 0, len(s.cookies))
	s.mu.Unlock()

	hcfg := &handshake.Config{
		Suites:     suites,
		ServerName: sname,
		Join:       &handshake.JoinTicket{SessID: sessID, Cookie: cookie, ConnID: connID},
	}
	tr := handshake.NewTransport(nc)
	if _, err := handshake.Client(tr, hcfg); err != nil {
		nc.Close()
		return 0, fmt.Errorf("tcpls: join handshake: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		nc.Close()
		return 0, ErrSessionClosed
	}
	if err := s.engine.AddConnection(connID, time.Now()); err != nil {
		nc.Close()
		return 0, err
	}
	s.addConnLocked(connID, nc)
	s.engine.Note("join_accepted", connID, 0, 0, 0)
	if leftover := tr.Leftover(); len(leftover) > 0 {
		s.engine.Receive(connID, leftover, time.Now())
		s.processEventsLocked()
		pending := s.collectOutgoingLocked()
		defer s.writeAll(pending)
	}
	s.cond.Broadcast()
	return connID, nil
}
