package tcpls

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/handshake"
	"tcpls/internal/health"
	"tcpls/internal/record"
	"tcpls/internal/sched"
	"tcpls/internal/telemetry"
)

// Session is one TCPLS session: one or more TCP connections carrying
// multiplexed encrypted streams. All methods are safe for concurrent use.
type Session struct {
	mu     sync.Mutex
	cond   *sync.Cond // broadcast on readable data / events / close
	engine *core.Session
	cfg    *Config

	isClient  bool
	sessID    SessID
	cookies   []Cookie
	peerAddrs []net.Addr

	conns      map[uint32]*pathConn
	nextConnID uint32

	streams  map[uint32]*Stream
	acceptQ  []*Stream
	tcpOpts  []TCPOption
	bpfProgs [][]byte
	echoCh   map[uint64]chan struct{}

	closed             bool
	closeErr           error
	doneCh             chan struct{} // closed when the session closes
	onNewServerCookies func([]Cookie)

	// Recovery supervisor state (reconnect.go): remembered redial
	// targets, the lifecycle event queue, and the conns that have
	// absorbed a failover (so a later death of one is traced as a
	// cascade).
	dialNetwork     string
	remoteAddrs     []string
	recovering      bool
	sessEvents      []SessionEvent
	eventCh         chan SessionEvent
	failoverTargets map[uint32]bool

	// Resumption state (§4.5).
	suite      *record.Suite
	resumption []byte
	ticket     *ClientTicket
	sealTicket func(psk []byte) ([]byte, error)
	// maxEarlyAdvert is the 0-RTT budget advertised in tickets this
	// session issues (server side; matches what the listener enforces).
	maxEarlyAdvert uint32
	// resumed records whether this session's handshake used a PSK ticket.
	resumed bool
	// 0-RTT state: whether this session's early-data offer was accepted
	// and, when a stream carries (client) or carried (server) the early
	// bytes, its ID.
	earlyAccepted  bool
	earlyStreamID  uint32
	hasEarlyStream bool
	wg             sync.WaitGroup
	timerStop      chan struct{}

	// onConnFailed, when set, is invoked (without the lock) after a
	// connection is declared failed; the default handler performs
	// automatic failover to another live connection if one exists.
	onConnFailed func(connID uint32)

	// metrics is the path-metrics engine shared with the protocol
	// engine; metricsLoopOn guards the kernel TCP_INFO refresher.
	metrics       *sched.Metrics
	metricsLoopOn bool

	// Telemetry state (telemetry.go): the session's metric handles on
	// the shared registry, the address whose HTTP endpoint this session
	// holds a reference on, and the buffered qlog trace sink installed
	// by TraceJSON.
	tel       *telemetry.SessionMetrics
	telAddr   string
	traceSink *telemetry.Sink

	// Diagnosis state (trace.go): the always-on flight recorder, the
	// user's Trace callback, and this session's /debug/tcpls registry
	// key. All tracer installs go through refreshTracerLocked.
	flight   *telemetry.Flight
	traceFn  func(core.TraceEvent)
	debugKey string

	// Continuous self-diagnosis (health.go): the session's monitor on
	// the shared health engine, its registry key, the engine interval
	// it holds a reference on, and the reused per-tick sampling buffer.
	healthMon   *health.Monitor
	healthKey   string
	healthIv    time.Duration
	healthConns []core.ConnHealth
}

// TCPOption is an encrypted TCP option received from the peer (§3.1).
type TCPOption struct {
	Conn  uint32
	Kind  uint8
	Value []byte
}

// OptUserTimeout is the TCP User Timeout option kind (RFC 5482).
const OptUserTimeout = core.OptUserTimeout

// Session errors.
var (
	ErrSessionClosed = errors.New("tcpls: session closed")
	ErrNoCookies     = errors.New("tcpls: no join cookies left")
	ErrNotTCPLS      = errors.New("tcpls: peer did not negotiate TCPLS")
	// ErrRecvBufferFull: a receive buffer reached twice its
	// Config.MaxRecvBufferBytes cap (only possible when the session's
	// own backpressure is bypassed, e.g. by a peer feeding a paused
	// connection through another path).
	ErrRecvBufferFull = core.ErrRecvBufferFull
	// ErrRetransmitBudget: Write would queue more than a full extra
	// Config.MaxRetransmitBytes behind a stream parked at its
	// retransmit budget.
	ErrRetransmitBudget = core.ErrRetransmitBudget
)

// pathConn binds a TCP connection to its engine connection ID. Each
// connection has its own writer goroutine so multipath sessions push
// bytes onto all paths concurrently — serializing socket writes would
// cap aggregation at a single path's rate.
type pathConn struct {
	id      uint32
	nc      net.Conn
	writeCh chan []byte
	// pending counts chunks enqueued on writeCh but not yet written to
	// the socket. Close drains on this rather than len(writeCh): a chunk
	// the writer has dequeued but is still pushing into a backpressured
	// socket is in flight too, and closing the socket under it would
	// drop a record and leave the receiver's reorder heap with a
	// permanent gap.
	pending atomic.Int64
	// failed flips once, possibly from a reader or writer goroutine
	// while others look at it outside the session lock.
	failed atomic.Bool
	// peerClosed marks a graceful CONN_CLOSE from the peer (under s.mu):
	// the later TCP EOF on this conn is an orderly goodbye, not an outage.
	peerClosed bool
}

func newSession(isClient bool, cfg *Config, res *handshake.Result, nc net.Conn, leftover []byte) *Session {
	role := core.RoleServer
	if isClient {
		role = core.RoleClient
	}
	s := &Session{
		engine:     core.NewSession(role, res.Secrets, cfg.coreConfig()),
		cfg:        cfg,
		isClient:   isClient,
		sessID:     res.SessID,
		cookies:    res.Cookies,
		conns:      make(map[uint32]*pathConn),
		streams:    make(map[uint32]*Stream),
		echoCh:     make(map[uint64]chan struct{}),
		nextConnID: 1,
		timerStop:  make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.suite = res.Secrets.Suite
	s.resumption = res.Secrets.Resumption
	s.resumed = res.Resumed
	s.metrics = sched.NewMetrics()
	s.engine.SetMetrics(s.metrics)
	s.initTelemetry()
	for _, a := range res.PeerAddrs {
		s.peerAddrs = append(s.peerAddrs, &net.TCPAddr{IP: a.AsSlice()})
	}
	s.engine.AddConnection(0, time.Now())
	var pending []outChunk
	s.mu.Lock()
	if isClient {
		if ra := nc.RemoteAddr(); ra != nil {
			s.dialNetwork = ra.Network()
			s.rememberAddrLocked(ra.String())
		}
	}
	pc := s.addConnLocked(0, nc)
	if isClient {
		s.earlyAccepted = res.EarlyDataAccepted
	}
	if !isClient && res.EarlyDataAccepted {
		// Deliver the accepted 0-RTT flight before any leftover engine
		// records: the early bytes are, by definition, the first thing
		// the client sent, and the leftover may already carry the
		// STREAM_ATTACH re-homing the same stream.
		if id, err := s.engine.InjectEarlyData(res.EarlyData); err == nil {
			s.earlyAccepted = true
			s.earlyStreamID = id
			s.hasEarlyStream = true
			s.processEventsLocked()
		}
	}
	if len(leftover) > 0 {
		s.engine.Receive(0, leftover, time.Now())
		s.processEventsLocked()
		pending = s.collectOutgoingLocked()
	}
	_ = pc
	if cfg.Scheduler != "" {
		// Validated by Dial/Client/Listen; ByName cannot fail here.
		if ps, ok := sched.ByName(cfg.Scheduler); ok {
			s.engine.SetPathScheduler(ps)
			s.startPathMetricsLoopLocked()
		}
	}
	s.mu.Unlock()
	s.writeAll(pending)
	if cfg.UserTimeout > 0 {
		s.wg.Add(1)
		go s.timerLoop()
	}
	if cfg.OnEvent != nil {
		s.eventCh = make(chan SessionEvent, sessionEventCap)
		s.wg.Add(1)
		go s.eventLoop()
	}
	return s
}

// addConnLocked registers nc under id and starts its reader and writer.
func (s *Session) addConnLocked(id uint32, nc net.Conn) *pathConn {
	pc := &pathConn{id: id, nc: nc, writeCh: make(chan []byte, 8)}
	s.conns[id] = pc
	s.wg.Add(2)
	go s.readLoop(pc)
	go s.writeLoop(pc)
	return pc
}

// writeBatchMax bounds how many queued chunks one vectored write gathers.
// It matches Linux's UIO_FASTIOV (the iovec count writev handles without
// an extra kernel allocation) and comfortably exceeds writeCh's capacity.
const writeBatchMax = 16

// writeGatherBytes stops the gather once a batch holds one good write's
// worth of data. Gathering frees writeCh slots, which deepens the
// per-connection pipeline beyond the channel's capacity — and writeAll
// blocking on a full writeCh is the only backpressure that paces the
// scheduler to each path's real rate. Unbounded gathering let a slow
// path hoard a multi-megabyte backlog that drained in a long tail after
// the fast path went idle. A byte cap keeps the batching win where it
// matters (many small ack/control chunks → one syscall) without
// meaningfully deepening the pipeline for bulk data.
const writeGatherBytes = 64 << 10

// writeLoop drains one connection's outgoing queue onto its socket.
// Queued chunks are gathered and pushed with a single vectored write
// (writev via net.Buffers) so a burst of engine flushes costs one
// syscall, not one per chunk.
func (s *Session) writeLoop(pc *pathConn) {
	defer s.wg.Done()
	chunks := make([][]byte, 0, writeBatchMax)
	var iov net.Buffers
	for {
		select {
		case data := <-pc.writeCh:
			chunks = append(chunks[:0], data)
		gather:
			for total := len(data); len(chunks) < writeBatchMax && total < writeGatherBytes; {
				select {
				case more := <-pc.writeCh:
					chunks = append(chunks, more)
					total += len(more)
				default:
					break gather
				}
			}
			s.writeBatch(pc, chunks, &iov)
		case <-s.timerStop:
			// Session shutdown: return queued-but-unwritten chunks so the
			// chunk pool's books close and their records' spans record the
			// drop instead of dangling unstamped.
			for {
				select {
				case data := <-pc.writeCh:
					pc.pending.Add(-1)
					s.mu.Lock()
					s.engine.NoteWriteDropped(pc.id)
					s.engine.RecycleOutgoing(data)
					s.mu.Unlock()
				default:
					return
				}
			}
		}
	}
}

// writeBatch pushes one gathered batch onto the socket and settles its
// bookkeeping. All failure-path state transitions — per-chunk
// written/dropped stamps, the failed flag, ReportConnFailed, and the
// resulting events — happen inside ONE s.mu critical section, so no
// concurrent flush can observe the conn failed but the engine not yet
// told (the old split sections let collectOutgoingLocked drain a conn
// whose drop hadn't been stamped yet, corrupting span reconstruction).
func (s *Session) writeBatch(pc *pathConn, chunks [][]byte, iov *net.Buffers) {
	if pc.failed.Load() {
		// Drain and discard, but still recycle: the engine handed these
		// chunks out and counts them against the pool.
		pc.pending.Add(int64(-len(chunks)))
		s.mu.Lock()
		for _, c := range chunks {
			s.engine.NoteWriteDropped(pc.id)
			s.engine.RecycleOutgoing(c)
		}
		s.mu.Unlock()
		return
	}
	// net.Buffers.WriteTo consumes the slice it is called on (that is how
	// it tracks writev progress), so build the iovec from a reused scratch
	// and keep chunks for the accounting below.
	*iov = append((*iov)[:0], chunks...)
	n, err := iov.WriteTo(pc.nc)
	now := time.Now()
	pc.pending.Add(int64(-len(chunks)))
	if err == nil {
		s.mu.Lock()
		for _, c := range chunks {
			// Stamp the socket-write leg of the records each chunk
			// carried (lifecycle spans), one batch per chunk in FIFO
			// order, then return the buffer to the chunk pool.
			s.engine.NoteWritten(pc.id, now)
			s.engine.RecycleOutgoing(c)
		}
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	rem := n
	for _, c := range chunks {
		if rem >= int64(len(c)) {
			// This chunk was fully flushed before the error hit.
			rem -= int64(len(c))
			s.engine.NoteWritten(pc.id, now)
		} else {
			// Partially written or never reached: the conn is dead either
			// way, so the records count as dropped and failover replays
			// them byte-identically on the new path.
			rem = 0
			s.engine.NoteWriteDropped(pc.id)
		}
		s.engine.RecycleOutgoing(c)
	}
	pc.failed.Store(true)
	s.engine.ReportConnFailed(pc.id)
	s.processEventsLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// ID returns the server-assigned TCPLS session identifier.
func (s *Session) ID() SessID { return s.sessID }

// Resumed reports whether this session's handshake was abbreviated by a
// PSK resumption ticket (client: the server accepted the offered ticket;
// server: the ticket opened). False for full handshakes.
func (s *Session) Resumed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resumed
}

// EarlyDataAccepted reports whether this session's 0-RTT offer was
// accepted: on the client, the server's echo; on the server, that the
// early flight was delivered. False also when no early data was offered.
func (s *Session) EarlyDataAccepted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.earlyAccepted
}

// EarlyStream returns the stream carrying the 0-RTT bytes: on the
// client, the stream Dial/Client opened for Config.EarlyData (whether it
// went out at 0-RTT or fell back to 1-RTT); on the server, the injected
// first client stream (also delivered through AcceptStream). ok is false
// when no early data was configured.
func (s *Session) EarlyStream() (*Stream, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasEarlyStream {
		return nil, false
	}
	st, ok := s.streams[s.earlyStreamID]
	return st, ok
}

// Cookies returns the remaining join-cookie budget (client side).
func (s *Session) Cookies() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cookies)
}

// PeerAddrs returns the addresses the server advertised for joining.
func (s *Session) PeerAddrs() []net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]net.Addr(nil), s.peerAddrs...)
}

// Connections returns the engine IDs of live connections.
func (s *Session) Connections() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Connections()
}

// readBufLen sizes each connection's read buffer. 256 KiB holds a full
// batch of ~16 max-size TLS records, so one kernel read feeds the engine
// a writev-sized burst that is deframed and decrypted in place.
const readBufLen = 256 << 10

// readLoop pumps bytes from one TCP connection into the engine.
func (s *Session) readLoop(pc *pathConn) {
	defer s.wg.Done()
	buf := make([]byte, readBufLen)
	for {
		n, err := pc.nc.Read(buf)
		if n > 0 {
			s.mu.Lock()
			rerr := s.engine.Receive(pc.id, buf[:n], time.Now())
			s.processEventsLocked()
			out := s.collectOutgoingLocked()
			s.cond.Broadcast()
			// Receive-buffer backpressure: while the engine reports a
			// full buffer fed by this connection, park instead of
			// reading more — the kernel buffer fills, TCP's receive
			// window closes, and the peer stalls. Stream.Read drains the
			// buffer and broadcasts to resume.
			for rerr == nil && !s.closed && !pc.failed.Load() && s.engine.RecvPaused(pc.id) {
				s.cond.Wait()
			}
			s.mu.Unlock()
			s.writeAll(out)
			if rerr != nil {
				s.failSession(rerr)
				return
			}
		}
		if err != nil {
			// TCP-level failure or close: report to the engine. An
			// orderly session close swallows this.
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			pc.failed.Store(true)
			s.engine.ReportConnFailed(pc.id)
			s.processEventsLocked()
			out := s.collectOutgoingLocked()
			s.cond.Broadcast()
			s.mu.Unlock()
			s.writeAll(out)
			return
		}
	}
}

// timerLoop drives UserTimeout-based failure detection.
func (s *Session) timerLoop() {
	defer s.wg.Done()
	period := s.cfg.UserTimeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.timerStop:
			return
		case <-t.C:
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.engine.Advance(time.Now())
			s.processEventsLocked()
			out := s.collectOutgoingLocked()
			s.mu.Unlock()
			s.writeAll(out)
		}
	}
}

// outChunk is bytes destined for one connection.
type outChunk struct {
	pc   *pathConn
	data []byte
}

// collectOutgoingLocked flushes the engine and gathers all pending bytes.
func (s *Session) collectOutgoingLocked() []outChunk {
	if err := s.engine.Flush(); err != nil && err != core.ErrNotCoupled {
		s.closeErr = err
	}
	var out []outChunk
	for id, pc := range s.conns {
		if pc.failed.Load() {
			// Drain and drop: the engine may still frame onto a conn it
			// does not know has failed yet. The dropped chunk's records
			// keep a zero write stamp until failover replays them. The
			// drained buffer goes back to the chunk pool — dropping it on
			// the floor leaked one warm buffer per failover — and an empty
			// drain must NOT stamp a drop: no chunk was handed out, so a
			// drop stamp here would close some *other* chunk's span batch.
			data, err := s.engine.Outgoing(id)
			if err == nil && len(data) > 0 {
				s.engine.NoteWriteDropped(id)
				s.engine.RecycleOutgoing(data)
			}
			continue
		}
		data, err := s.engine.Outgoing(id)
		if err != nil || len(data) == 0 {
			continue
		}
		out = append(out, outChunk{pc, data})
	}
	return out
}

// writeAll hands chunks to the per-connection writer goroutines outside
// the session lock. Order per connection is preserved (one queue per
// connection); distinct connections transmit concurrently. A full queue
// blocks the caller — that is the send-side backpressure that paces
// application writes to the aggregate network rate.
func (s *Session) writeAll(chunks []outChunk) {
	for i, ch := range chunks {
		ch.pc.pending.Add(1)
		select {
		case ch.pc.writeCh <- ch.data:
		case <-s.timerStop:
			ch.pc.pending.Add(-1)
			// Session shutting down: the remaining chunks (this one
			// included) will never reach a writer. Stamp them dropped so
			// span reconstruction stays exact — every handed-out chunk
			// must resolve to written or dropped — and recycle them.
			s.mu.Lock()
			for _, rest := range chunks[i:] {
				s.engine.NoteWriteDropped(rest.pc.id)
				s.engine.RecycleOutgoing(rest.data)
			}
			s.mu.Unlock()
			return
		}
	}
}

// flushAndWrite is the common send path for API calls.
func (s *Session) flushAndWrite() {
	s.mu.Lock()
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	s.writeAll(out)
}

// processEventsLocked turns engine events into API state.
func (s *Session) processEventsLocked() {
	var failovers []uint32
	for _, ev := range s.engine.Events() {
		switch ev.Kind {
		case core.EventStreamOpen:
			st := &Stream{sess: s, id: ev.Stream}
			s.streams[ev.Stream] = st
			s.acceptQ = append(s.acceptQ, st)
		case core.EventStreamData, core.EventCoupledData, core.EventStreamFin:
			// Readable state changed; cond broadcast happens at the
			// call sites.
		case core.EventConnFailed:
			failovers = append(failovers, ev.Conn)
		case core.EventNewCookies:
			for _, c := range ev.Cookies {
				s.cookies = append(s.cookies, Cookie(c))
			}
			s.engine.Note("cookie_received", ev.Conn, 0, 0, len(ev.Cookies))
		case core.EventTCPOption:
			s.tcpOpts = append(s.tcpOpts, TCPOption{Conn: ev.Conn, Kind: ev.OptKind, Value: ev.OptVal})
		case core.EventBPFCC:
			s.bpfProgs = append(s.bpfProgs, ev.Data)
		case core.EventEchoReply:
			if ch, ok := s.echoCh[ev.Token]; ok {
				close(ch)
				delete(s.echoCh, ev.Token)
			}
		case core.EventSessionTicket:
			s.engine.Note("ticket_received", ev.Conn, 0, 0, len(ev.Data))
			if len(s.resumption) > 0 {
				s.ticket = &ClientTicket{
					ServerName:   s.cfg.ServerName,
					Ticket:       ev.Data,
					PSK:          derivePSK(s.suite, s.resumption, ev.Nonce),
					MaxEarlyData: ev.MaxEarly,
				}
			}
		case core.EventAddAddr:
			s.peerAddrs = append(s.peerAddrs, &net.TCPAddr{IP: ev.Addr})
		case core.EventConnClosed:
			if pc, ok := s.conns[ev.Conn]; ok {
				pc.peerClosed = true
			}
		case core.EventRemoveAddr, core.EventFailoverDone:
			// informational
		}
	}
	for _, id := range failovers {
		if pc, ok := s.conns[id]; ok {
			pc.failed.Store(true)
		}
		s.autoFailoverLocked(id)
	}
}

// autoFailoverLocked resynchronizes streams of a failed connection onto
// the best live connection (§4.2's default behaviour): lowest fused SRTT
// wins, and if a chosen target has raced into failure the next-best one
// is tried (the cascade). When no live connection is left the streams
// park and the recovery supervisor (reconnect.go) takes over.
func (s *Session) autoFailoverLocked(failedID uint32) {
	s.emitSessionEventLocked(SessionEvent{Kind: EventConnDown, Conn: failedID})
	if !s.cfg.EnableFailover {
		// No failover machinery: nothing to move, but a session with no
		// path left must still resolve rather than park silently.
		s.maybeEnterRecoveryLocked()
		return
	}
	if s.failoverTargets[failedID] {
		// A connection that previously absorbed a failover died itself;
		// its replayed streams move again.
		s.engine.Note("failover_cascade", failedID, 0, 0, 0)
		if s.tel != nil {
			s.tel.FailoverCascades.Inc()
		}
		delete(s.failoverTargets, failedID)
	}
	if !s.isClient {
		// Failover target selection is the client's (§4.2): a server
		// picking its own target races the client's pick, and crossed
		// STREAM_ATTACHes re-home the same stream onto different
		// connections — each side then sends where the other no longer
		// listens. Propagate the failure and park; the client's ATTACH +
		// SYNC re-homes the streams and replays our send side.
		// The notice rides the outgoing batch every caller of
		// processEventsLocked collects.
		s.engine.NotifyConnFailed(failedID)
		s.maybeEnterRecoveryLocked()
		return
	}
	if len(s.engine.StreamsOnConn(failedID)) > 0 {
		tried := map[uint32]bool{failedID: true}
		for {
			target, ok := s.pickFailoverTargetLocked(tried)
			if !ok {
				break
			}
			tried[target] = true
			if err := s.engine.FailoverTo(failedID, target); err != nil {
				// The target raced into failure between the pick and the
				// replay; try the next-best path.
				s.engine.Note("failover_error", failedID, 0, 0, 0)
				continue
			}
			if s.failoverTargets == nil {
				s.failoverTargets = make(map[uint32]bool)
			}
			s.failoverTargets[target] = true
			if pc, ok := s.conns[failedID]; ok {
				pc.nc.Close()
			}
			s.emitSessionEventLocked(SessionEvent{Kind: EventFailover, Conn: target})
			return
		}
	}
	// Nothing to move, or nowhere left to move it. If the session has no
	// path at all, arm the recovery supervisor.
	s.maybeEnterRecoveryLocked()
}

// pickFailoverTargetLocked chooses the failover target among live
// connections not yet tried: lowest smoothed RTT from the path-metrics
// engine; paths without an RTT sample rank after measured ones and tie-
// break on the lowest ID (deterministic).
func (s *Session) pickFailoverTargetLocked(tried map[uint32]bool) (uint32, bool) {
	var best uint32
	var bestRTT time.Duration
	bestHas, found := false, false
	for _, id := range s.engine.Connections() {
		if tried[id] {
			continue
		}
		if pc, ok := s.conns[id]; ok && pc.failed.Load() {
			continue
		}
		ps, ok := s.metrics.Snapshot(id)
		has := ok && ps.HasRTT
		better := false
		switch {
		case !found:
			better = true
		case has && !bestHas:
			better = true
		case has && bestHas && ps.SRTT < bestRTT:
			better = true
		case !has && !bestHas && id < best:
			better = true
		}
		if better {
			best, bestRTT, bestHas, found = id, ps.SRTT, has, true
		}
	}
	return best, found
}

// Failover explicitly moves the streams of failedConn onto targetConn.
func (s *Session) Failover(failedConn, targetConn uint32) error {
	s.mu.Lock()
	err := s.engine.FailoverTo(failedConn, targetConn)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.writeAll(out)
	return nil
}

// SendTCPOption ships an encrypted TCP option to the peer.
func (s *Session) SendTCPOption(conn uint32, kind uint8, value []byte) error {
	s.mu.Lock()
	err := s.engine.SendTCPOption(conn, kind, value)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.writeAll(out)
	return nil
}

// TCPOptions drains received encrypted TCP options.
func (s *Session) TCPOptions() []TCPOption {
	s.mu.Lock()
	defer s.mu.Unlock()
	opts := s.tcpOpts
	s.tcpOpts = nil
	return opts
}

// SendBPFCC ships an eBPF congestion-controller program to the peer
// (§4.4). The receiver retrieves it with ReceiveBPFCC.
func (s *Session) SendBPFCC(conn uint32, program []byte) error {
	s.mu.Lock()
	err := s.engine.SendBPFCC(conn, program)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.writeAll(out)
	return nil
}

// ReceiveBPFCC blocks until a complete eBPF program arrives.
func (s *Session) ReceiveBPFCC(ctx context.Context) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.bpfProgs) == 0 && !s.closed {
		if err := s.waitLocked(ctx); err != nil {
			return nil, err
		}
	}
	if len(s.bpfProgs) == 0 {
		return nil, ErrSessionClosed
	}
	prog := s.bpfProgs[0]
	s.bpfProgs = s.bpfProgs[1:]
	return prog, nil
}

// Ping measures the round-trip time of one connection using an encrypted
// echo record (§3.3.3's active probing).
func (s *Session) Ping(conn uint32, timeout time.Duration) (time.Duration, error) {
	token := uint64(time.Now().UnixNano())
	ch := make(chan struct{})
	s.mu.Lock()
	s.echoCh[token] = ch
	err := s.engine.SendEcho(conn, token)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	s.writeAll(out)
	start := time.Now()
	select {
	case <-ch:
		return time.Since(start), nil
	case <-time.After(timeout):
		s.mu.Lock()
		delete(s.echoCh, token)
		s.mu.Unlock()
		return 0, fmt.Errorf("tcpls: ping on conn %d timed out", conn)
	}
}

// waitLocked blocks on the session condition variable, honouring ctx.
// The caller holds s.mu.
func (s *Session) waitLocked(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.cond.Broadcast()
		case <-done:
		}
	}()
	s.cond.Wait()
	close(done)
	return ctx.Err()
}

// failSession tears the session down with an error.
func (s *Session) failSession(err error) {
	s.mu.Lock()
	s.failSessionLocked(err)
	s.mu.Unlock()
}

// failSessionLocked is failSession for callers already holding s.mu. A
// nil err closes the session as if by Close (blocked calls report
// ErrSessionClosed).
func (s *Session) failSessionLocked(err error) {
	if !s.closed {
		s.closed = true
		s.closeErr = err
		close(s.doneCh)
		// Postmortem: a session dying with an error (SessionDeadError,
		// protocol failure) dumps its flight recorder automatically when
		// a destination is configured. Off the lock path — the ring has
		// its own lock and the writer may be slow.
		if err != nil && s.flight != nil && s.cfg.Telemetry.FlightDump != nil {
			go s.flight.Dump(s.cfg.Telemetry.FlightDump)
		}
		s.closeTelemetryLocked()
		close(s.timerStop)
		for _, pc := range s.conns {
			pc.nc.Close()
		}
		// No failover replay can happen after this: return the pooled
		// retransmit payloads.
		s.engine.ReleaseBuffers()
	}
	s.cond.Broadcast()
}

// Close shuts the session down: remaining output (including the close
// notification) is flushed, the per-connection writers drain, and the
// TCP connections close.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.doneCh)
	s.closeTelemetryLocked()
	for id := range s.conns {
		s.engine.CloseConnection(id)
	}
	out := s.collectOutgoingLocked()
	conns := make([]*pathConn, 0, len(s.conns))
	for _, pc := range s.conns {
		conns = append(conns, pc)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	s.writeAll(out)
	// Drain the writer queues so queued records reach the kernel before
	// the sockets close (bounded: a dead peer cannot stall Close
	// forever).
	deadline := time.Now().Add(10 * time.Second)
	for _, pc := range conns {
		for pc.pending.Load() > 0 && time.Now().Before(deadline) && !pc.failed.Load() {
			time.Sleep(time.Millisecond)
		}
	}
	close(s.timerStop)
	for _, pc := range conns {
		pc.nc.Close()
	}
	// The writers have drained (or timed out); no failover replay can
	// happen on a closed session, so the pooled retransmit payloads held
	// for it go back to the arena.
	s.mu.Lock()
	s.engine.ReleaseBuffers()
	s.mu.Unlock()
	return nil
}

// Stats returns engine counters.
func (s *Session) Stats() core.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Stats()
}

// Done returns a channel closed once the session has closed — by
// Close, by the peer's orderly goodbye, or by a terminal failure. Err
// reports which, after Done is closed. The server runtime's drain
// sequence waits on this.
func (s *Session) Done() <-chan struct{} { return s.doneCh }

// Err returns the session's terminal error: nil while the session is
// live or after an orderly close, or the failure (e.g. a
// *SessionDeadError) that killed it.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeErr
}

// RemoteAddr returns the peer address of the session's lowest-numbered
// connection, or nil when none remains — the address admission control
// and the server registry key per-IP state on.
func (s *Session) RemoteAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *pathConn
	for _, pc := range s.conns {
		if best == nil || pc.id < best.id {
			best = pc
		}
	}
	if best == nil {
		return nil
	}
	return best.nc.RemoteAddr()
}

// MemoryFootprint reports the session's current buffered memory in
// bytes: the reorder heap, retransmit buffers, stream receive buffers,
// and unsent pending data. The caps of PR 5 (Config.MaxReorderBytes,
// MaxRecvBufferBytes, MaxRetransmitBytes) bound it per session; the
// server runtime (internal/server) rolls it up across the registry
// into the process-wide memory budget.
func (s *Session) MemoryFootprint() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.BufferedBytes()
}
