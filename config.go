package tcpls

import (
	"crypto/ed25519"
	"fmt"
	"net"
	"net/netip"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/handshake"
	"tcpls/internal/record"
	"tcpls/internal/sched"
)

// Certificate is a server identity (Ed25519 key pair plus name).
type Certificate = handshake.Certificate

// NewCertificate generates a fresh server identity.
func NewCertificate(name string) (*Certificate, error) {
	return handshake.NewCertificate(name)
}

// SessID identifies a TCPLS session on the server.
type SessID = handshake.SessID

// Cookie is a single-use token authorizing one connection join.
type Cookie = handshake.Cookie

// Cipher suite identifiers re-exported for configuration.
const (
	TLSAES128GCMSHA256        = record.TLSAES128GCMSHA256
	TLSCHACHA20POLY1305SHA256 = record.TLSCHACHA20POLY1305SHA256
)

// Config configures both clients (Dial) and servers (Listen).
type Config struct {
	// ServerName is the expected server identity (client side).
	ServerName string
	// RootKeys pins acceptable server public keys (client side). Empty
	// accepts any key — use only in tests.
	RootKeys []ed25519.PublicKey
	// Certificate is the server identity (server side).
	Certificate *Certificate
	// AdvertiseAddrs is announced to clients in the encrypted ADDR
	// extension so they can join additional paths.
	AdvertiseAddrs []netip.Addr
	// NumCookies bounds the client's join budget (default 2).
	NumCookies int

	// DisableTCPLS turns the session into plain TLS-over-TCP: no TCPLS
	// Hello is offered/echoed and no transport services are available.
	// Used by the TLS/TCP baseline in the paper's Fig. 7.
	DisableTCPLS bool

	// HandshakeTimeout bounds the server-side handshake on each accepted
	// TCP connection: a client that connects and then stalls (or
	// trickles bytes) is cut off at the deadline instead of pinning a
	// handshake goroutine and its admission slot forever. The deadline
	// covers the whole handshake, including a join's wait for its
	// session's initial handshake to finish. Zero means the default
	// (10s); negative disables the deadline. Client handshakes bound
	// themselves with dial timeouts instead.
	HandshakeTimeout time.Duration

	// Admission, when set, gates the server accept path — the hook the
	// production server runtime (internal/server) uses for token-bucket
	// accept rate limiting, per-IP caps, and memory-budget shedding.
	// AdmitConn runs after the TCP accept and before any handshake
	// work; AdmitJoin gates each cookie/join attempt; AdmitSession
	// gates creation of a new session after a successful handshake.
	// Rejections close the connection; a join rejected by admission is
	// traced as join_rejected on the target session's timeline.
	Admission AdmissionControl

	// EnableFailover turns on record acknowledgments, retransmission
	// buffering, and automatic failover (paper §4.2).
	EnableFailover bool
	// AckPeriod acknowledges every n received records (default 16).
	AckPeriod int
	// MaxRecordPayload caps stream bytes per record (default ~16 KiB;
	// the paper's Appendix A uses 1500 to smooth aggregation).
	MaxRecordPayload int
	// UserTimeout is the encrypted TCP User Timeout: silence on an
	// active connection beyond this declares it failed. Zero disables
	// timer-based failure detection (RST/FIN detection still works).
	UserTimeout time.Duration
	// PadRecordsTo pads every record to a fixed inner-plaintext size so
	// record lengths leak nothing (bandwidth trade-off). Zero disables.
	PadRecordsTo int

	// MaxReorderBytes and MaxReorderRecords cap the coupled-stream
	// reorder heap (payload bytes / parked records). Past either cap the
	// engine declares the quietest other coupled path suspect and fails
	// it over (EnableFailover required for the failover; the cap itself
	// always bounds telemetry), rather than buffering a stalled path's
	// gap forever. Zero means the defaults (16 MiB / 8192 records);
	// negative disables that cap.
	MaxReorderBytes   int
	MaxReorderRecords int
	// MaxRecvBufferBytes caps each stream's (and the coupled group's)
	// receive buffer. At the cap the session stops reading the
	// offending connection's socket until the application drains Read —
	// TCP's receive window then pushes back on the peer. Zero means the
	// default (16 MiB); negative disables the cap.
	MaxRecvBufferBytes int
	// MaxRetransmitBytes budgets each stream's failover retransmit
	// buffer. At half the budget the session solicits a fresh
	// acknowledgment from the peer; at the budget further sealing for
	// the stream parks until ACKs trim the buffer, and Write returns
	// ErrRetransmitBudget once a further budget's worth of bytes queues
	// behind the stall. Zero means the default (16 MiB); negative
	// disables the budget.
	MaxRetransmitBytes int

	// Scheduler names the multipath record scheduler for coupled
	// streams: "roundrobin" (the default), "lowrtt" (lowest fused
	// SRTT), "rate" (delivery-rate-weighted — the bandwidth-aggregation
	// workhorse), or "redundant" (every record on every path). An
	// unknown name fails Dial/Client/Listen. Custom schedulers install
	// at runtime via Session.SetPathScheduler. The rate and RTT signals
	// sharpen considerably with EnableFailover, whose record-level
	// acknowledgments feed the path-metrics engine.
	Scheduler string
	// PathMetricsInterval is the period of the kernel TCP_INFO refresh
	// feeding the path-metrics engine on Linux (default 100ms). The
	// refresher runs only while a path scheduler is active.
	PathMetricsInterval time.Duration

	// Reconnect tunes the recovery supervisor: when every TCP connection
	// of a session has failed, the client side automatically re-dials the
	// remembered peer addresses (original dial target, joined paths, and
	// ADD_ADDR advertisements) using the session-join path, then resumes
	// parked streams via failover replay. The zero value enables
	// reconnection with the defaults documented on ReconnectConfig;
	// set Disabled to park streams until the deadline and then declare
	// the session dead with ErrSessionDead.
	Reconnect ReconnectConfig

	// Telemetry configures the observability layer: an aggregated
	// lock-free metrics registry (on by default), an optional HTTP
	// endpoint serving Prometheus /metrics plus /debug/pprof, and the
	// sampling rate of the buffered qlog trace sink. See TelemetryConfig.
	Telemetry TelemetryConfig

	// Health configures the continuous self-diagnosis sampler built on
	// the telemetry layer: time-series rings over the session's
	// counters and a rule table emitting live verdicts (stalls,
	// retransmit storms, memory growth, path asymmetry) to the flight
	// recorder, qlog, Prometheus, and /debug/tcpls/health. On by
	// default whenever telemetry is. See HealthConfig.
	Health HealthConfig

	// OnEvent, when set, receives session lifecycle events
	// (EventConnDown, EventFailover, EventReconnecting, EventReconnected,
	// EventRecoveryFailed) on a dedicated goroutine, in order. Events are
	// also available by polling Session.Events or blocking in
	// Session.WaitEvent regardless of OnEvent.
	OnEvent func(SessionEvent)

	// Suites restricts cipher suites (default AES-128-GCM-SHA256).
	Suites []record.SuiteID

	// Ticket resumes a previous session with an abbreviated handshake
	// (paper §4.5): no certificate exchange, PSK-seeded key schedule.
	// Obtain one from Session.ResumptionTicket.
	Ticket *ClientTicket
	// DisableTickets stops the server from issuing resumption tickets.
	DisableTickets bool

	// TicketKeys is the server's resumption ticket key store. A store
	// opened from a key file (OpenTicketKeyStore) makes tickets survive
	// server restarts; nil falls back to a fresh in-memory key, matching
	// the pre-keystore behaviour (tickets die with the process).
	TicketKeys *TicketKeyStore

	// EarlyData, sent alongside Ticket, rides the client's first flight
	// as 0-RTT application records (§4.5): the server reads it before its
	// own first byte crosses the wire. Replayable by design — put only
	// idempotent data here. On acceptance it surfaces as the first bytes
	// of the session's first client stream (Session.EarlyStream); on
	// rejection Dial/Client transparently resend it at 1-RTT, so the
	// application sees identical bytes either way.
	EarlyData []byte
	// MaxEarlyData budgets a client's 0-RTT flight in plaintext bytes
	// (server side). Zero means the default (16 KiB); negative refuses
	// all early data while still completing the resumption handshake.
	MaxEarlyData int
}

// AdmissionControl gates the server accept edge. Implementations must
// be safe for concurrent use; every method runs on a per-connection
// handshake goroutine. internal/server provides the production
// implementation (token bucket, per-IP caps, process memory budget);
// the interface lives here so the Listener needs no knowledge of it.
type AdmissionControl interface {
	// AdmitConn is consulted once per accepted TCP connection, before
	// any handshake work. A non-nil error rejects the connection (it is
	// closed without a handshake byte being read). On success the
	// returned release func, if non-nil, is called exactly once when
	// the handshake finishes (either way) — the hook for concurrent-
	// handshake accounting. AdmitConn may block (bounded) to wait for
	// an accept token; that wait is the admission-control backpressure.
	AdmitConn(remote net.Addr) (release func(), err error)
	// AdmitJoin gates one cookie/join attempt from remote. Returning
	// false rejects the join: the cookie is NOT consumed and the
	// handshake fails with a join rejection.
	AdmitJoin(remote net.Addr) bool
	// AdmitSession gates registration of a new session (initial
	// handshakes only, not joins) right after the handshake succeeds.
	// A non-nil error sheds the session: its connection is closed and
	// its cookie state dropped before Accept ever sees it.
	AdmitSession(remote net.Addr) error
}

// defaultHandshakeTimeout bounds the server-side handshake when
// Config.HandshakeTimeout is zero.
const defaultHandshakeTimeout = 10 * time.Second

// handshakeTimeout resolves the configured server handshake deadline:
// zero means the default, negative disables.
func (c *Config) handshakeTimeout() time.Duration {
	switch {
	case c.HandshakeTimeout < 0:
		return 0
	case c.HandshakeTimeout == 0:
		return defaultHandshakeTimeout
	}
	return c.HandshakeTimeout
}

func (c *Config) clone() *Config {
	if c == nil {
		return &Config{}
	}
	out := *c
	return &out
}

// validateScheduler rejects unknown Scheduler names before any
// handshake work happens.
func (c *Config) validateScheduler() error {
	if c.Scheduler == "" {
		return nil
	}
	if _, ok := sched.ByName(c.Scheduler); !ok {
		return fmt.Errorf("tcpls: unknown scheduler %q", c.Scheduler)
	}
	return nil
}

func (c *Config) coreConfig() core.Config {
	return core.Config{
		EnableFailover:     c.EnableFailover,
		AckPeriod:          c.AckPeriod,
		MaxRecordPayload:   c.MaxRecordPayload,
		UserTimeout:        c.UserTimeout,
		PadRecordsTo:       c.PadRecordsTo,
		MaxReorderBytes:    c.MaxReorderBytes,
		MaxReorderRecords:  c.MaxReorderRecords,
		MaxRecvBufferBytes: c.MaxRecvBufferBytes,
		MaxRetransmitBytes: c.MaxRetransmitBytes,
	}
}
