package tcpls

import (
	"crypto/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"tcpls/internal/handshake"
	"tcpls/internal/resume"
	"tcpls/internal/telemetry"
)

// Listener accepts TCPLS sessions. Additional TCP connections that join
// existing sessions (Fig. 3) are absorbed into their Session rather than
// surfacing from Accept.
type Listener struct {
	ln  net.Listener
	cfg *Config
	// keys seals resumption tickets; Config.TicketKeys (persistent,
	// restart-surviving) or a fresh in-memory store. replay aliases the
	// key store's anti-replay strike register: listeners sharing ticket
	// keys accept each other's tickets, so they share strikes too —
	// otherwise a captured 0-RTT flight would replay once per listener.
	keys   *TicketKeyStore
	replay *resume.Replay
	rtel   *telemetry.ResumeMetrics

	mu       sync.Mutex
	sessions map[SessID]*serverSession
	// hsConns tracks connections whose handshake is still in flight, so
	// Close can unblock their goroutines instead of leaking them until
	// the peer gives up.
	hsConns  map[net.Conn]struct{}
	acceptCh chan acceptResult
	done     chan struct{}
	closed   bool
}

type acceptResult struct {
	sess *Session
	err  error
}

// serverSession is the listener's per-session bookkeeping: the live
// Session plus the outstanding cookie set. ready is closed once sess is
// populated, so joins racing the initial handshake's tail can wait.
type serverSession struct {
	sess    *Session
	cookies map[Cookie]bool
	ready   chan struct{}
}

// Listen starts a TCPLS server on the given TCP address.
func Listen(network, addr string, cfg *Config) (*Listener, error) {
	if cfg != nil {
		if err := cfg.validateScheduler(); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return NewListener(ln, cfg), nil
}

// NewListener wraps an existing net.Listener.
func NewListener(ln net.Listener, cfg *Config) *Listener {
	l := &Listener{
		ln:       ln,
		cfg:      cfg.clone(),
		sessions: make(map[SessID]*serverSession),
		hsConns:  make(map[net.Conn]struct{}),
		acceptCh: make(chan acceptResult, 16),
		done:     make(chan struct{}),
	}
	l.keys = l.cfg.TicketKeys
	if l.keys == nil {
		if ks, err := NewTicketKeyStore(); err == nil {
			l.keys = ks
		}
	}
	if l.keys != nil {
		l.replay = l.keys.replay
	}
	if !l.cfg.Telemetry.Disabled {
		fams := telemetry.ResumeFamiliesOn(telemetry.Default())
		l.rtel = fams.Listener(ln.Addr().String())
	}
	go l.acceptLoop()
	return l
}

// Addr returns the listener's address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Accept blocks for the next new TCPLS session. Sessions whose
// handshake completed before the listener closed are still returned —
// a draining server serves them rather than dropping a client that
// finished its handshake in good faith.
func (l *Listener) Accept() (*Session, error) {
	select {
	case res := <-l.acceptCh:
		return res.sess, res.err
	default:
	}
	select {
	case res := <-l.acceptCh:
		return res.sess, res.err
	case <-l.done:
		// One more non-blocking drain: a handshake that finished just
		// as Close ran may have parked its result in the buffer.
		select {
		case res := <-l.acceptCh:
			return res.sess, res.err
		default:
		}
		return nil, net.ErrClosed
	}
}

// Close stops the listener. Established sessions keep running;
// connections still mid-handshake are closed so their goroutines exit
// rather than leak until the peer gives up.
func (l *Listener) Close() error {
	l.mu.Lock()
	closed := l.closed
	l.closed = true
	hs := make([]net.Conn, 0, len(l.hsConns))
	for nc := range l.hsConns {
		hs = append(hs, nc)
	}
	l.mu.Unlock()
	if closed {
		return nil
	}
	close(l.done)
	for _, nc := range hs {
		nc.Close()
	}
	return l.ln.Close()
}

// trackHandshake registers an in-flight handshake connection; false
// means the listener already closed and the conn should be dropped.
func (l *Listener) trackHandshake(nc net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.hsConns[nc] = struct{}{}
	return true
}

// untrackHandshake removes a connection from the in-flight set and
// reports whether the listener closed while the handshake ran (in which
// case the conn must be dropped, not adopted).
func (l *Listener) untrackHandshake(nc net.Conn) (listenerClosed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.hsConns, nc)
	return l.closed
}

func (l *Listener) acceptLoop() {
	for {
		nc, err := l.ln.Accept()
		if err != nil {
			select {
			case l.acceptCh <- acceptResult{nil, err}:
			case <-l.done:
			}
			return
		}
		go l.handleConn(nc)
	}
}

// ValidateJoin implements handshake.JoinValidator: check and consume a
// single-use cookie.
func (l *Listener) ValidateJoin(id SessID, cookie Cookie) bool {
	l.mu.Lock()
	ss, ok := l.sessions[id]
	valid := ok && ss.cookies[cookie]
	if valid {
		ss.cookies[cookie] = false
	}
	l.mu.Unlock()
	// Trace the join decision onto the session's timeline when the
	// session object already exists (the initial handshake may still be
	// completing on its own connection).
	name := "cookie_consumed"
	if !valid {
		name = "join_rejected"
	}
	l.noteSessionTrace(id, name)
	return valid
}

// noteSessionTrace stamps a listener-level mark (cookie_consumed,
// join_rejected) onto a session's trace timeline, when the session
// object already exists.
func (l *Listener) noteSessionTrace(id SessID, name string) {
	l.mu.Lock()
	var sess *Session
	if ss, ok := l.sessions[id]; ok {
		select {
		case <-ss.ready:
			sess = ss.sess
		default:
		}
	}
	l.mu.Unlock()
	if sess != nil {
		sess.noteTrace(name, 0, 0, 0)
	}
}

// joinGate is the per-connection join validator: it applies admission
// control for the connection's remote address before consulting the
// listener's cookie table, so a join flood from one IP burns admission
// budget, not cookies.
type joinGate struct {
	l      *Listener
	remote net.Addr
}

func (g *joinGate) ValidateJoin(id SessID, cookie Cookie) bool {
	if adm := g.l.cfg.Admission; adm != nil && !adm.AdmitJoin(g.remote) {
		g.l.noteSessionTrace(id, "join_rejected")
		return false
	}
	return g.l.ValidateJoin(id, cookie)
}

// noteTrace stamps a wrapper-level mark onto the session's trace
// timeline from outside the usual locked paths.
func (s *Session) noteTrace(name string, conn uint32, seq uint64, bytes int) {
	s.mu.Lock()
	s.engine.Note(name, conn, 0, seq, bytes)
	s.mu.Unlock()
}

// handleConn runs the server handshake on one TCP connection and either
// creates a session or joins an existing one. The whole handshake runs
// under Config.HandshakeTimeout and admission control: a stalled or
// unwelcome client is cut off here, before it can pin resources.
func (l *Listener) handleConn(nc net.Conn) {
	if !l.trackHandshake(nc) {
		nc.Close()
		return
	}
	var release func()
	if adm := l.cfg.Admission; adm != nil {
		rel, err := adm.AdmitConn(nc.RemoteAddr())
		if err != nil {
			l.untrackHandshake(nc)
			nc.Close()
			return
		}
		release = rel
	}
	hsTimeout := l.cfg.handshakeTimeout()
	if hsTimeout > 0 {
		nc.SetDeadline(time.Now().Add(hsTimeout))
	}
	var advertise []netip.Addr
	advertise = append(advertise, l.cfg.AdvertiseAddrs...)
	// Per-connection resumption disposition, captured by the handshake
	// hooks: whether a ticket was offered, whether it opened under an
	// old key generation, when it was issued (sealed inside the ticket;
	// gates 0-RTT freshness), and whether the anti-replay gate was
	// consulted.
	var ticketOffered, ticketReissue, earlyGated bool
	var ticketIssued time.Time
	hcfg := &handshake.Config{
		Suites:         l.cfg.Suites,
		Certificate:    l.cfg.Certificate,
		TCPLSServer:    !l.cfg.DisableTCPLS,
		AdvertiseAddrs: advertise,
		NumCookies:     l.cfg.NumCookies,
		MaxEarlyData:   l.cfg.MaxEarlyData,
		Sessions:       &joinGate{l: l, remote: nc.RemoteAddr()},
		DecryptTicket: func(ticket []byte) ([]byte, bool) {
			ticketOffered = true
			if l.keys == nil {
				return nil, false
			}
			psk, issued, reissue, err := l.keys.ks.OpenTicket(ticket)
			if err != nil {
				return nil, false
			}
			ticketReissue = reissue
			ticketIssued = issued
			return psk, true
		},
		AcceptEarlyData: func(ticket []byte) bool {
			// One strike per ticket nonce, bounded by the ticket's sealed
			// issuance stamp: a replayed 0-RTT flight (same ticket, same
			// nonce) is decrypted and discarded, never delivered twice —
			// the freshness gate keeps that true across register turnover
			// and server restarts.
			earlyGated = true
			nonce, ok := resume.TicketNonce(ticket)
			if !ok || l.replay == nil {
				return false
			}
			return l.replay.ObserveFresh(nonce, ticketIssued, time.Now())
		},
		OnSessionIssued: func(id SessID, cookies []Cookie) {
			ss := &serverSession{cookies: make(map[Cookie]bool), ready: make(chan struct{})}
			for _, c := range cookies {
				ss.cookies[c] = true
			}
			l.mu.Lock()
			l.sessions[id] = ss
			l.mu.Unlock()
		},
	}
	tr := handshake.NewTransport(nc)
	res, err := handshake.Server(tr, hcfg)
	if release != nil {
		release()
	}
	if closed := l.untrackHandshake(nc); err != nil || closed {
		nc.Close()
		return
	}
	nc.SetDeadline(time.Time{})

	if res.JoinAccepted {
		if res.FastJoin {
			if l.rtel != nil {
				l.rtel.JoinFastpath.Inc()
			}
			l.noteSessionTrace(res.SessID, "join_fastpath")
		}
		l.mu.Lock()
		ss, ok := l.sessions[res.SessID]
		l.mu.Unlock()
		if !ok {
			nc.Close()
			return
		}
		// The initial handshake may still be finishing on its own
		// connection; wait for the session object — bounded by the
		// handshake deadline, and unblocked by listener close.
		wait := hsTimeout
		if wait <= 0 {
			wait = defaultHandshakeTimeout
		}
		select {
		case <-ss.ready:
		case <-time.After(wait):
			nc.Close()
			return
		case <-l.done:
			nc.Close()
			return
		}
		ss.sess.adoptJoinedConn(res.JoinConnID, nc, tr.Leftover())
		return
	}

	if adm := l.cfg.Admission; adm != nil {
		if err := adm.AdmitSession(nc.RemoteAddr()); err != nil {
			// Shed: drop the cookie state minted during the handshake so
			// the rejected client cannot join its way back in.
			if res.TCPLSEnabled {
				l.mu.Lock()
				delete(l.sessions, res.SessID)
				l.mu.Unlock()
			}
			nc.Close()
			return
		}
	}

	sess := newSession(false, l.cfg, res, nc, tr.Leftover())

	// Resumption disposition: metrics plus trace marks on the session's
	// own timeline.
	switch {
	case res.Resumed:
		if l.rtel != nil {
			l.rtel.Accepted.Inc()
		}
		sess.noteTrace("resume_accepted", 0, 0, 0)
		if ticketReissue {
			// The ticket opened under an old key generation; the fresh
			// ticket issued below re-seals under the current one.
			sess.noteTrace("ticket_reissued", 0, 0, 0)
		}
	case ticketOffered:
		if l.rtel != nil {
			l.rtel.Rejected.Inc()
		}
		sess.noteTrace("resume_rejected", 0, 0, 0)
	}
	switch {
	case res.EarlyDataAccepted:
		if l.rtel != nil {
			l.rtel.EarlyAccepted.Inc()
			l.rtel.EarlyBytes.Add(uint64(len(res.EarlyData)))
		}
	case earlyGated:
		if l.rtel != nil {
			l.rtel.EarlyRejected.Inc()
		}
		sess.noteTrace("early_data_rejected", 0, 0, 0)
	}
	if l.rtel != nil && l.replay != nil {
		l.rtel.ReplayEntries.Set(int64(l.replay.Entries()))
	}

	if l.keys != nil && !l.cfg.DisableTickets && !l.cfg.DisableTCPLS {
		sess.sealTicket = l.keys.ks.Seal
		// Advertise the 0-RTT budget this server will actually enforce,
		// so resuming clients clamp their offers instead of overflowing.
		sess.maxEarlyAdvert = uint32(handshake.EarlyDataBudget(l.cfg.MaxEarlyData))
		// Issue a resumption ticket over the fresh session (TLS 1.3
		// servers send NewSessionTicket right after the handshake).
		// Resumed sessions get one too — that is what reissues old-
		// generation tickets on use.
		go sess.issueTicket(0)
	}
	if res.TCPLSEnabled {
		l.mu.Lock()
		ss := l.sessions[res.SessID]
		if ss == nil {
			ss = &serverSession{cookies: make(map[Cookie]bool), ready: make(chan struct{})}
			l.sessions[res.SessID] = ss
		}
		ss.sess = sess
		close(ss.ready)
		l.mu.Unlock()
		// Replenish trigger: when the session mints more cookies later
		// (IssueCookies), the listener learns the new cookie set.
		sess.onNewServerCookies = func(cookies []Cookie) {
			l.mu.Lock()
			defer l.mu.Unlock()
			for _, c := range cookies {
				ss.cookies[c] = true
			}
		}
	}
	// Prefer delivery: a session whose handshake beat the listener's
	// close should reach Accept, not be torn down. Only when the accept
	// buffer is full does the close win.
	select {
	case l.acceptCh <- acceptResult{sess, nil}:
		return
	default:
	}
	select {
	case l.acceptCh <- acceptResult{sess, nil}:
	case <-l.done:
		sess.Close()
	}
}

// IssueCookies mints n fresh join cookies for a session, registers them
// with the listener, and sends them to the client over the encrypted
// channel (§3.3.2's replenishment).
func (s *Session) IssueCookies(conn uint32, n int) error {
	cookies := make([][16]byte, n)
	plain := make([]Cookie, n)
	for i := range cookies {
		if _, err := rand.Read(cookies[i][:]); err != nil {
			return err
		}
		plain[i] = Cookie(cookies[i])
	}
	s.mu.Lock()
	cb := s.onNewServerCookies
	s.engine.Note("cookie_issued", conn, 0, 0, n)
	err := s.engine.SendNewCookies(conn, cookies)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if cb != nil {
		cb(plain)
	}
	s.writeAll(out)
	return nil
}

// adoptJoinedConn attaches a joined TCP connection to a live session.
func (s *Session) adoptJoinedConn(connID uint32, nc net.Conn, leftover []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	if err := s.engine.AddConnection(connID, time.Now()); err != nil {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.addConnLocked(connID, nc)
	s.engine.Note("join_accepted", connID, 0, 0, 0)
	var pending []outChunk
	if len(leftover) > 0 {
		s.engine.Receive(connID, leftover, time.Now())
		s.processEventsLocked()
		pending = s.collectOutgoingLocked()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.writeAll(pending)
}
