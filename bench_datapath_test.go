// Loopback datapath benchmark (DESIGN.md §16): goodput of a real TCPLS
// session over 127.0.0.1, the headline MB/s number of BENCH_datapath.json.
// One op pushes 8 MiB through Stream.Write → seal → writev → kernel →
// batched read → in-place open → Stream.Read discard.
//
//	go test -bench=DatapathLoopback -benchmem
package tcpls_test

import (
	"context"
	"io"
	"testing"

	"tcpls"
)

const datapathLoopbackBytes = 8 << 20

func benchDatapathLoopback(b *testing.B, cfg func(*tcpls.Config)) {
	cert, err := tcpls.NewCertificate("bench.tcpls")
	if err != nil {
		b.Fatal(err)
	}
	scfg := &tcpls.Config{Certificate: cert, Telemetry: tcpls.TelemetryConfig{Disabled: true}}
	ccfg := &tcpls.Config{ServerName: "bench.tcpls", Telemetry: tcpls.TelemetryConfig{Disabled: true}}
	cfg(scfg)
	cfg(ccfg)
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", scfg)
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer sess.Close()
				for {
					st, err := sess.AcceptStream(context.Background())
					if err != nil {
						return
					}
					go io.Copy(io.Discard, st)
				}
			}()
		}
	}()

	sess, err := tcpls.Dial("tcp", ln.Addr().String(), ccfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 1<<20)

	b.SetBytes(datapathLoopbackBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for sent := 0; sent < datapathLoopbackBytes; sent += len(chunk) {
			if _, err := st.Write(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if records := sess.Stats().RecordsSent; b.Elapsed().Seconds() > 0 {
		b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/s")
	}
}

func BenchmarkDatapathLoopback(b *testing.B) {
	b.Run("plain", func(b *testing.B) {
		benchDatapathLoopback(b, func(c *tcpls.Config) {})
	})
	b.Run("failover", func(b *testing.B) {
		benchDatapathLoopback(b, func(c *tcpls.Config) {
			c.EnableFailover = true
			// Unbounded retransmit budget: this measures raw goodput, and a
			// pipelined writer outruns the ack-paced trim at the default cap.
			c.MaxRetransmitBytes = -1
		})
	})
}
