package tcpls

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"

	"tcpls/internal/hkdf"
	"tcpls/internal/record"
)

// ClientTicket is a stored resumption credential (paper §4.5): the
// server's opaque ticket plus the PSK both sides derived from the
// session's resumption secret. Present it via Config.Ticket to resume
// with an abbreviated handshake (no certificate exchange); combined with
// kernel TCP Fast Open this is the paper's low-latency establishment.
type ClientTicket struct {
	ServerName string
	Ticket     []byte
	PSK        []byte
}

// pskLen is the resumption PSK size.
const pskLen = 32

// derivePSK computes the resumption PSK from the session's resumption
// master secret and the ticket nonce (RFC 8446 §4.6.1's derivation).
func derivePSK(suite *record.Suite, resumptionSecret []byte, nonce [16]byte) []byte {
	return hkdf.ExpandLabel(suite.NewHash, resumptionSecret, "resumption", nonce[:], pskLen)
}

// ticketSealer encrypts PSKs into opaque tickets under a server-held
// key, so the server recovers the PSK statelessly at resumption time.
type ticketSealer struct {
	aead cipher.AEAD
}

func newTicketSealer() (*ticketSealer, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &ticketSealer{aead: aead}, nil
}

// seal produces an opaque ticket carrying psk.
func (t *ticketSealer) seal(psk []byte) ([]byte, error) {
	nonce := make([]byte, t.aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return t.aead.Seal(nonce, nonce, psk, nil), nil
}

// open recovers the PSK from a ticket.
func (t *ticketSealer) open(ticket []byte) ([]byte, bool) {
	n := t.aead.NonceSize()
	if len(ticket) < n {
		return nil, false
	}
	psk, err := t.aead.Open(nil, ticket[:n], ticket[n:], nil)
	if err != nil || len(psk) != pskLen {
		return nil, false
	}
	return psk, true
}

// errNoTicket is returned when resumption state is unavailable.
var errNoTicket = errors.New("tcpls: no resumption ticket available yet")

// ResumptionTicket returns the most recent resumption credential the
// server issued on this session, or nil if none has arrived yet. Store
// it and pass it as Config.Ticket on a later Dial to the same server.
func (s *Session) ResumptionTicket() *ClientTicket {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticket
}

// issueTicket mints and sends a resumption ticket (server side); the
// listener's sealer makes the ticket opaque and stateless.
func (s *Session) issueTicket(conn uint32) error {
	if s.sealTicket == nil || len(s.resumption) == 0 {
		return errNoTicket
	}
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return err
	}
	psk := derivePSK(s.suite, s.resumption, nonce)
	ticket, err := s.sealTicket(psk)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.engine.Note("ticket_issued", conn, 0, 0, len(ticket))
	err = s.engine.SendSessionTicket(conn, nonce, ticket)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.writeAll(out)
	return nil
}
