package tcpls

import (
	"crypto/rand"
	"errors"
	"time"

	"tcpls/internal/hkdf"
	"tcpls/internal/record"
	"tcpls/internal/resume"
)

// ClientTicket is a stored resumption credential (paper §4.5): the
// server's opaque ticket plus the PSK both sides derived from the
// session's resumption secret. Present it via Config.Ticket to resume
// with an abbreviated handshake (no certificate exchange); combined with
// kernel TCP Fast Open this is the paper's low-latency establishment.
type ClientTicket struct {
	ServerName string
	Ticket     []byte
	PSK        []byte
	// MaxEarlyData is the server's advertised 0-RTT budget in plaintext
	// bytes (TLS 1.3's max_early_data_size). Dial clamps its offer to it:
	// early data larger than the budget is sent at 1-RTT instead of
	// tripping the server's overflow guard. Zero means the server
	// advertised no 0-RTT budget (old ticket or 0-RTT disabled).
	MaxEarlyData uint32
}

// pskLen is the resumption PSK size.
const pskLen = 32

// derivePSK computes the resumption PSK from the session's resumption
// master secret and the ticket nonce (RFC 8446 §4.6.1's derivation).
func derivePSK(suite *record.Suite, resumptionSecret []byte, nonce [16]byte) []byte {
	return hkdf.ExpandLabel(suite.NewHash, resumptionSecret, "resumption", nonce[:], pskLen)
}

// TicketKeyStore seals resumption PSKs into opaque tickets under
// generation-tagged server keys (internal/resume). Unlike the per-process
// random key it replaced, a store opened from a key file survives server
// restarts: tickets issued before the restart still resume afterwards.
// Rotation mints a new generation while the previous one stays accepted;
// tickets opened under an old generation are transparently reissued.
// Safe for concurrent use and shareable across listeners.
//
// The 0-RTT anti-replay strike register lives here rather than on the
// Listener: listeners sharing one key store accept each other's tickets,
// so they must also share strikes — otherwise a captured 0-RTT flight
// would be accepted once per listener.
type TicketKeyStore struct {
	ks     *resume.KeyStore
	replay *resume.Replay
}

// OpenTicketKeyStore loads (or atomically creates) an encrypted ticket
// key file. The passphrase derives the file-encryption key; an empty
// passphrase still authenticates the file against corruption.
func OpenTicketKeyStore(path string, passphrase []byte) (*TicketKeyStore, error) {
	ks, err := resume.Open(path, passphrase)
	if err != nil {
		return nil, err
	}
	return &TicketKeyStore{
		ks:     ks,
		replay: resume.NewReplay(resume.DefaultReplayWindow, resume.DefaultReplayCap, time.Now()),
	}, nil
}

// NewTicketKeyStore returns an in-memory store (no persistence) — the
// behaviour of servers that configure no key file.
func NewTicketKeyStore() (*TicketKeyStore, error) {
	ks, err := resume.NewMemory()
	if err != nil {
		return nil, err
	}
	return &TicketKeyStore{
		ks:     ks,
		replay: resume.NewReplay(resume.DefaultReplayWindow, resume.DefaultReplayCap, time.Now()),
	}, nil
}

// Rotate mints a new key generation and persists it; the previous
// generation remains accepted until the next rotation.
func (t *TicketKeyStore) Rotate() error { return t.ks.Rotate() }

// Generation reports the current (sealing) key generation.
func (t *TicketKeyStore) Generation() uint32 { return t.ks.Generation() }

// errNoTicket is returned when resumption state is unavailable.
var errNoTicket = errors.New("tcpls: no resumption ticket available yet")

// ResumptionTicket returns the most recent resumption credential the
// server issued on this session, or nil if none has arrived yet. Store
// it and pass it as Config.Ticket on a later Dial to the same server.
func (s *Session) ResumptionTicket() *ClientTicket {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticket
}

// issueTicket mints and sends a resumption ticket (server side); the
// listener's key store makes the ticket opaque and stateless.
func (s *Session) issueTicket(conn uint32) error {
	if s.sealTicket == nil || len(s.resumption) == 0 {
		return errNoTicket
	}
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return err
	}
	psk := derivePSK(s.suite, s.resumption, nonce)
	ticket, err := s.sealTicket(psk)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.engine.Note("ticket_issued", conn, 0, 0, len(ticket))
	err = s.engine.SendSessionTicket(conn, nonce, ticket, s.maxEarlyAdvert)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.writeAll(out)
	return nil
}
