package tcpls

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"tcpls/internal/netem"
	"tcpls/internal/testutil"
)

// chaosMiB is the checksummed transfer size for the chaos test.
const chaosMiB = 4

// chaosServer is startServer plus session tracking, so the test can close
// every server-side session before the goroutine-leak check (their
// recovery supervisors otherwise outlive the test by the grace deadline).
type chaosServer struct {
	ln *Listener
	mu sync.Mutex
	ss []*Session
}

func startChaosServer(t *testing.T, cfg *Config, handler func(*Session)) *chaosServer {
	t.Helper()
	if cfg.Certificate == nil {
		cert, err := NewCertificate("test.server")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Certificate = cert
	}
	ln, err := Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := &chaosServer{ln: ln}
	t.Cleanup(cs.Close)
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			cs.mu.Lock()
			cs.ss = append(cs.ss, sess)
			cs.mu.Unlock()
			go handler(sess)
		}
	}()
	return cs
}

func (cs *chaosServer) Close() {
	cs.ln.Close()
	cs.mu.Lock()
	ss := append([]*Session(nil), cs.ss...)
	cs.mu.Unlock()
	for _, s := range ss {
		s.Close()
	}
}

// checkGoroutines is the zero-leak gate for the fault-injection tests
// (shared with reconnect and telemetry tests via internal/testutil).
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	testutil.CheckGoroutines(t, base)
}

// TestChaosTransferSurvivesCascadeAndTotalLoss is the tentpole test: a
// 4 MiB checksummed transfer over three shaped relay paths while a fault
// schedule kills every path in turn — an RST, then a mid-record stall
// only the user timeout can detect, then a total-loss window that forces
// the recovery supervisor to re-dial through the join path. The transfer
// must be byte-exact and nothing may leak.
func TestChaosTransferSurvivesCascadeAndTotalLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real time")
	}
	baseGoroutines := runtime.NumGoroutine()

	scfg := &Config{
		EnableFailover: true,
		AckPeriod:      4,
		UserTimeout:    400 * time.Millisecond,
		NumCookies:     64,
	}
	srv := startChaosServer(t, scfg, func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		h := sha256.New()
		if _, err := io.Copy(h, st); err != nil {
			return
		}
		st.Write(h.Sum(nil))
		st.Close()
	})

	// Three lossy shaped paths in front of the one real server.
	prof := netem.Profile{RateBps: 60e6, Delay: 2 * time.Millisecond}
	relays := make([]*netem.Relay, 3)
	for i := range relays {
		r, err := netem.NewRelay(srv.ln.Addr().String(), prof, prof)
		if err != nil {
			t.Fatal(err)
		}
		relays[i] = r
		defer r.Close()
	}

	ccfg := &Config{
		ServerName:     "test.server",
		EnableFailover: true,
		AckPeriod:      4,
		UserTimeout:    400 * time.Millisecond,
		Reconnect: ReconnectConfig{
			MaxAttempts: 100,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    150 * time.Millisecond,
			Deadline:    20 * time.Second,
		},
	}
	sess, err := Dial("tcp", relays[0].Addr(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", relays[1].Addr()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.JoinPath("tcp", relays[2].Addr()); err != nil {
		t.Fatal(err)
	}
	// Engine conn ID -> relay index, for fault targeting. Conns born
	// after recovery are redials; their relay no longer matters.
	connRelay := map[uint32]int{0: 0, 1: 1, 2: 2}

	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}

	// Writer: 4 MiB in paced chunks so the transfer spans every fault
	// phase; hash computed on the way out. started closes once the first
	// chunk is accepted — the condition the fault schedule waits on
	// instead of a wall-clock sleep.
	wantHash := make(chan [32]byte, 1)
	writeErr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		h := sha256.New()
		chunk := make([]byte, 128<<10)
		total := 0
		for i := 0; total < chaosMiB<<20; i++ {
			for j := range chunk {
				chunk[j] = byte(i + j)
			}
			h.Write(chunk)
			if _, err := st.Write(chunk); err != nil {
				writeErr <- fmt.Errorf("write at %d bytes: %w", total, err)
				return
			}
			if i == 0 {
				close(started)
			}
			total += len(chunk)
			time.Sleep(5 * time.Millisecond)
		}
		if err := st.Close(); err != nil {
			writeErr <- fmt.Errorf("stream close: %w", err)
			return
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		wantHash <- sum
		writeErr <- nil
	}()

	streamConn := func() uint32 {
		cid, err := st.Conn()
		if err != nil {
			t.Fatalf("stream lost its conn: %v", err)
		}
		return cid
	}
	// waitConnChange blocks on session lifecycle events (conn_down,
	// failover, ...) and rechecks the stream's home after each — no
	// polling loop, no sleep calibration: every path that moves a stream
	// also emits an event, so a wake-up always follows the move.
	waitConnChange := func(from uint32) uint32 {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		for {
			if cid := streamConn(); cid != from {
				return cid
			}
			if _, err := sess.WaitEvent(ctx); err != nil {
				t.Fatalf("stream never left conn %d: %v", from, err)
			}
		}
	}

	// Phase A — RST the path the stream is on once the transfer is
	// actually in flight; failover must move it.
	select {
	case <-started:
	case err := <-writeErr:
		t.Fatalf("writer died before first chunk: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("writer never produced its first chunk")
	}
	connA := streamConn()
	relays[connRelay[connA]].Blackhole() // refuse re-dials too
	relays[connRelay[connA]].RST()
	connB := waitConnChange(connA)
	if connB == connA || connRelay[connB] == connRelay[connA] {
		t.Fatalf("failover went nowhere: conn %d -> %d", connA, connB)
	}
	t.Logf("phase A: RST relay %d, stream moved conn %d -> %d", connRelay[connA], connA, connB)

	// Phase B — stall the new path mid-record: sockets stay open, bytes
	// stop. Only the user timeout can detect this; the failover cascades.
	relays[connRelay[connB]].Stall()
	connC := waitConnChange(connB)
	relays[connRelay[connB]].Unstall()
	relays[connRelay[connB]].Blackhole()
	if connRelay[connC] == connRelay[connB] || connRelay[connC] == connRelay[connA] {
		t.Fatalf("cascade landed on a dead relay: conn %d (relay %d)", connC, connRelay[connC])
	}
	t.Logf("phase B: stalled relay %d, cascade moved conn %d -> %d", connRelay[connB], connB, connC)

	// Phase C — total loss: a schedule RSTs the last live path, leaving
	// the session with nothing, then restores relay 0 so the recovery
	// supervisor's re-dial can land.
	lastRelay := relays[connRelay[connC]]
	<-lastRelay.RunSchedule([]netem.Fault{
		{At: 0, Kind: netem.FaultBlackhole},
		{At: 0, Kind: netem.FaultRST},
	})
	relay0Restore := relays[0].RunSchedule([]netem.Fault{
		{At: 600 * time.Millisecond, Kind: netem.FaultRestore},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	sawReconnecting := false
	for {
		ev, err := sess.WaitEvent(ctx)
		if err != nil {
			cancel()
			t.Fatalf("waiting for recovery (reconnecting seen: %v): %v", sawReconnecting, err)
		}
		if ev.Kind == EventReconnecting {
			sawReconnecting = true
		}
		if ev.Kind == EventReconnected {
			t.Logf("phase C: reconnected on conn %d after %d redial rounds", ev.Conn, ev.Attempt)
			break
		}
	}
	cancel()
	<-relay0Restore
	if !sawReconnecting {
		t.Fatal("EventReconnected without EventReconnecting")
	}

	// Phase D — drain the writer, then read the server's hash of what it
	// received over all the replays and re-dials.
	select {
	case err := <-writeErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("writer stuck")
	}
	want := <-wantHash
	got := make([]byte, sha256.Size)
	readDone := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(st, got)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("reading server hash: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server hash never arrived")
	}
	if [32]byte(got) != want {
		t.Fatalf("transfer corrupted: server hash %x, want %x", got, want)
	}
	t.Logf("phase D: %d MiB byte-exact across cascade + reconnect", chaosMiB)

	// Phase E — everything down, nothing left behind.
	sess.Close()
	srv.Close()
	for _, r := range relays {
		r.Close()
	}
	checkGoroutines(t, baseGoroutines)
}

// TestChaosTotalLossWithoutReconnectDies: same total-loss outage, but
// with the supervisor disabled the session must die with ErrSessionDead
// within its configured deadline — no hang, no leak.
func TestChaosTotalLossWithoutReconnectDies(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real time")
	}
	baseGoroutines := runtime.NumGoroutine()

	scfg := &Config{
		EnableFailover: true,
		AckPeriod:      4,
		UserTimeout:    400 * time.Millisecond,
		NumCookies:     8,
	}
	srv := startChaosServer(t, scfg, echoHandler)

	prof := netem.Profile{RateBps: 60e6, Delay: 2 * time.Millisecond}
	relays := make([]*netem.Relay, 3)
	for i := range relays {
		r, err := netem.NewRelay(srv.ln.Addr().String(), prof, prof)
		if err != nil {
			t.Fatal(err)
		}
		relays[i] = r
		defer r.Close()
	}

	sess, err := Dial("tcp", relays[0].Addr(), &Config{
		ServerName:     "test.server",
		EnableFailover: true,
		AckPeriod:      4,
		UserTimeout:    400 * time.Millisecond,
		Reconnect:      ReconnectConfig{Disabled: true, Deadline: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, r := range relays[1:] {
		if _, err := sess.JoinPath("tcp", r.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	for _, r := range relays {
		r.Blackhole()
		r.RST()
	}
	_, rerr := st.Read(buf)
	if !errors.Is(rerr, ErrSessionDead) {
		t.Fatalf("blocked Read after total loss = %v, want ErrSessionDead", rerr)
	}
	if elapsed := time.Since(start); elapsed > 6*time.Second {
		t.Fatalf("death took %v, deadline was 1s", elapsed)
	}

	sess.Close()
	srv.Close()
	for _, r := range relays {
		r.Close()
	}
	checkGoroutines(t, baseGoroutines)
}
