// Telemetry overhead benchmarks (DESIGN.md §9): the observability layer
// claims ≤5% throughput cost when enabled and a single nil-check when
// disabled. BenchmarkTelemetryOverhead runs the same loopback transfer
// both ways so the two numbers sit side by side in one run:
//
//	go test -bench=Telemetry -benchmem
package tcpls_test

import (
	"context"
	"io"
	"testing"

	"tcpls"
)

const telemetryBenchBytes = 8 << 20

// benchTelemetryTransfer pushes telemetryBenchBytes per iteration
// through a real loopback session and reports records/s alongside the
// usual MB/s.
func benchTelemetryTransfer(b *testing.B, tcfg tcpls.TelemetryConfig) {
	cert, err := tcpls.NewCertificate("bench.tcpls")
	if err != nil {
		b.Fatal(err)
	}
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{
		Certificate: cert,
		Telemetry:   tcfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer sess.Close()
				for {
					st, err := sess.AcceptStream(context.Background())
					if err != nil {
						return
					}
					go io.Copy(io.Discard, st)
				}
			}()
		}
	}()

	sess, err := tcpls.Dial("tcp", ln.Addr().String(), &tcpls.Config{
		ServerName: "bench.tcpls",
		Telemetry:  tcfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 1<<20)

	b.SetBytes(telemetryBenchBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for sent := 0; sent < telemetryBenchBytes; sent += len(chunk) {
			if _, err := st.Write(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if records := sess.Stats().RecordsSent; b.Elapsed().Seconds() > 0 {
		b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/s")
	}
}

func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchTelemetryTransfer(b, tcpls.TelemetryConfig{Disabled: true})
	})
	b.Run("enabled", func(b *testing.B) {
		benchTelemetryTransfer(b, tcpls.TelemetryConfig{})
	})
	b.Run("no-flight", func(b *testing.B) {
		benchTelemetryTransfer(b, tcpls.TelemetryConfig{FlightCapacity: -1})
	})
}
