package tcpls

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tcpls/internal/health"
	"tcpls/internal/netem"
	"tcpls/internal/qlog"
	"tcpls/internal/telemetry"
)

// healthPage mirrors the /debug/tcpls/health wire shape.
type healthPage struct {
	Health map[string]health.Status `json:"health"`
}

func fetchJSON(addr, path string, into any) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// waitHealth polls the live endpoint until pred accepts a snapshot.
func waitHealth(t *testing.T, addr string, deadline time.Duration,
	what string, pred func(map[string]health.Status) bool) map[string]health.Status {
	t.Helper()
	end := time.Now().Add(deadline)
	var last map[string]health.Status
	for time.Now().Before(end) {
		var page healthPage
		if err := fetchJSON(addr, "/debug/tcpls/health", &page); err == nil {
			last = page.Health
			if pred(page.Health) {
				return page.Health
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("health endpoint never showed %s; last snapshot: %+v", what, last)
	return nil
}

// TestHealthStallLiveDiagnosis is the acceptance test: a real transfer
// through a netem relay, a mid-stream stall, and the diagnosis observed
// LIVE over HTTP — StallSuspected raised with its zero-progress
// evidence window while the stall is in force, Healthy again after the
// relay resumes — then the same verdict timeline recovered from the
// flight recorder's qlog dump (the tcpls-trace -health path).
func TestHealthStallLiveDiagnosis(t *testing.T) {
	if testing.Short() {
		t.Skip("stall diagnosis needs real time")
	}
	base := runtime.NumGoroutine()

	ts, err := telemetry.Serve("127.0.0.1:0", telemetry.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	// The stall must stay below the user timeout: a failed connection is
	// a different diagnosis (and a different test).
	scfg := &Config{
		EnableFailover: true,
		AckPeriod:      4,
		UserTimeout:    10 * time.Second,
		Health:         HealthConfig{Interval: 25 * time.Millisecond},
	}
	srv := startChaosServer(t, scfg, func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, st)
	})

	relay, err := netem.NewRelay(srv.ln.Addr().String(), netem.Profile{}, netem.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	ccfg := &Config{
		ServerName:     "test.server",
		EnableFailover: true,
		AckPeriod:      4,
		UserTimeout:    10 * time.Second,
		Health:         HealthConfig{Interval: 25 * time.Millisecond},
	}
	sess, err := Dial("tcp", relay.Addr(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}

	// Paced writer: enough offered load that a stall leaves data
	// outstanding, little enough that buffered memory stays far under
	// the MemoryGrowth floor for the stall's duration.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := make([]byte, 8<<10)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.Write(chunk); err != nil {
				return
			}
			time.Sleep(4 * time.Millisecond)
		}
	}()

	// Find the client session's health key once it is sampling traffic.
	var key string
	waitHealth(t, ts.Addr(), 10*time.Second, "a ticking client monitor",
		func(h map[string]health.Status) bool {
			for k, st := range h {
				if strings.Contains(k, "-client-") && st.Ticks > 5 && st.GoodputTxBps > 0 {
					key = k
					return true
				}
			}
			return false
		})

	relay.Stall()
	snap := waitHealth(t, ts.Addr(), 10*time.Second, "an active stall_suspected verdict",
		func(h map[string]health.Status) bool {
			st, ok := h[key]
			if !ok {
				return false
			}
			for _, v := range st.Active {
				if v.Name == "stall_suspected" {
					return true
				}
			}
			return false
		})

	// The raise transition carries the evidence window: exactly
	// StallTicks points of the progress series, all zero — the ticks
	// that tripped the rule, not a post-hoc reconstruction.
	var raise *health.Verdict
	for i := range snap[key].Recent {
		v := &snap[key].Recent[i]
		if v.Name == "stall_suspected" && v.Raised {
			raise = v
		}
	}
	if raise == nil {
		t.Fatal("stall_suspected active but no raise transition in Recent")
	}
	if len(raise.Evidence) != 3 {
		t.Fatalf("evidence window has %d points, want 3 (StallTicks)", len(raise.Evidence))
	}
	for i, p := range raise.Evidence {
		if p.V != 0 {
			t.Fatalf("evidence point %d shows progress %v during a full stall", i, p.V)
		}
	}
	if raise.Value <= 0 {
		t.Fatalf("raise carries no outstanding-bytes scalar: %v", raise.Value)
	}

	relay.Unstall()
	waitHealth(t, ts.Addr(), 10*time.Second, "recovery to healthy",
		func(h map[string]health.Status) bool {
			st, ok := h[key]
			return ok && st.Healthy && len(st.Active) == 0
		})

	close(stop)
	wg.Wait()

	// The same timeline must be recoverable offline: dump the flight
	// recorder and run it through the qlog analyzer (tcpls-trace's
	// engine). TCPLS_HEALTH_QLOG keeps the artifact for CI upload.
	var buf bytes.Buffer
	if err := sess.DumpFlight(&buf); err != nil {
		t.Fatal(err)
	}
	if path := os.Getenv("TCPLS_HEALTH_QLOG"); path != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write health qlog artifact: %v", err)
		}
	}
	events, perr := qlog.Parse(bytes.NewReader(buf.Bytes()))
	if perr != nil {
		t.Fatalf("flight dump does not parse: %v", perr)
	}
	rep := qlog.Analyze(events, qlog.Options{})
	if rep.Health.Events < 2 {
		t.Fatalf("qlog timeline has %d health transitions, want raise+clear at least", rep.Health.Events)
	}
	var sawRaise, sawClear bool
	for _, mk := range rep.Health.Timeline {
		if mk.Kind == "stall_suspected" {
			if mk.Raised {
				sawRaise = true
			} else {
				sawClear = true
			}
		}
	}
	if !sawRaise || !sawClear {
		t.Fatalf("qlog timeline missing stall transitions (raise=%v clear=%v): %+v",
			sawRaise, sawClear, rep.Health.Timeline)
	}
	if len(rep.Health.Open) != 0 {
		t.Fatalf("verdicts still open at dump end: %v", rep.Health.Open)
	}

	sess.Close()
	srv.Close()
	relay.Close()
	ts.Close()
	checkGoroutines(t, base)
}

// TestHealthScrapeRaces hammers both debug endpoints from concurrent
// scrapers while sessions with a 2ms diagnosis tick are created, used,
// flight-dumped, and closed underneath them — the register/unregister
// and monitor-teardown races a production scrape loop would hit. Gated
// on zero goroutine leaks.
func TestHealthScrapeRaces(t *testing.T) {
	if testing.Short() {
		t.Skip("needs real sockets")
	}
	base := runtime.NumGoroutine()

	ts, err := telemetry.Serve("127.0.0.1:0", telemetry.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	scfg := &Config{
		EnableFailover: true,
		Health:         HealthConfig{Interval: 2 * time.Millisecond},
	}
	srv := startChaosServer(t, scfg, func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		_, _ = io.Copy(st, st) // echo
	})

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, path := range []string{"/debug/tcpls", "/debug/tcpls/health"} {
		path := path
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get("http://" + ts.Addr() + path)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	for i := 0; i < 6; i++ {
		ccfg := &Config{
			ServerName:     "test.server",
			EnableFailover: true,
			Health:         HealthConfig{Interval: 2 * time.Millisecond},
		}
		sess, err := Dial("tcp", srv.ln.Addr().String(), ccfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sess.OpenStream()
		if err != nil {
			t.Fatal(err)
		}
		msg := bytes.Repeat([]byte{byte(i)}, 32<<10)
		if _, err := st.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(st, got); err != nil {
			t.Fatal(err)
		}
		// Dump the flight recorder while the session is being closed —
		// the postmortem race closeTelemetryLocked must survive.
		var dumps sync.WaitGroup
		dumps.Add(1)
		go func() {
			defer dumps.Done()
			_ = sess.DumpFlight(io.Discard)
		}()
		sess.Close()
		dumps.Wait()
	}

	close(stop)
	scrapers.Wait()
	srv.Close()
	ts.Close()
	checkGoroutines(t, base)
}

// TestHealthMidFailoverSampling runs the 2ms sampler straight through a
// connection failure and failover: two relay paths, an RST on one
// mid-transfer, the byte stream verified end to end, the health
// endpoint decoding cleanly throughout. The sampler walks the conn
// table under the session lock while the failover machinery rewrites it
// — this is the interleaving the test pins down.
func TestHealthMidFailoverSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("failover needs real time")
	}
	base := runtime.NumGoroutine()

	ts, err := telemetry.Serve("127.0.0.1:0", telemetry.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	scfg := &Config{
		EnableFailover: true,
		AckPeriod:      4,
		UserTimeout:    400 * time.Millisecond,
		NumCookies:     16,
		Health:         HealthConfig{Interval: 2 * time.Millisecond},
	}
	srv := startChaosServer(t, scfg, func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		buf := make([]byte, 32<<10)
		var total uint64
		for {
			n, err := st.Read(buf)
			total += uint64(n)
			if err != nil {
				return
			}
		}
	})

	prof := netem.Profile{RateBps: 60e6, Delay: time.Millisecond}
	var relays [2]*netem.Relay
	for i := range relays {
		r, err := netem.NewRelay(srv.ln.Addr().String(), prof, prof)
		if err != nil {
			t.Fatal(err)
		}
		relays[i] = r
		defer r.Close()
	}

	ccfg := &Config{
		ServerName:     "test.server",
		EnableFailover: true,
		AckPeriod:      4,
		UserTimeout:    400 * time.Millisecond,
		Health:         HealthConfig{Interval: 2 * time.Millisecond},
	}
	sess, err := Dial("tcp", relays[0].Addr(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", relays[1].Addr()); err != nil {
		t.Fatal(err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}

	// Write through the fault: RST the first path a few chunks in; the
	// stream must fail over and every remaining write succeed.
	chunk := make([]byte, 16<<10)
	for i := 0; i < 64; i++ {
		if _, err := st.Write(chunk); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i == 8 {
			relays[0].RST()
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("stream close: %v", err)
	}

	// The endpoint must still decode, and the client monitor must have
	// sampled across the failure (hundreds of 2ms ticks).
	waitHealth(t, ts.Addr(), 5*time.Second, "a client monitor that sampled through failover",
		func(h map[string]health.Status) bool {
			for k, st := range h {
				if strings.Contains(k, "-client-") && st.Ticks > 50 {
					return true
				}
			}
			return false
		})

	sess.Close()
	srv.Close()
	for _, r := range relays {
		r.Close()
	}
	ts.Close()
	checkGoroutines(t, base)
}

// TestHealthSessionPollAllocFree is the root-level zero-alloc gate: one
// diagnosis tick over a REAL session — engine HealthSnapshot into the
// reused conn buffer, ring pushes, rule table — allocates nothing in
// steady state. The internal/health test proves the monitor core; this
// proves the session source feeding it.
func TestHealthSessionPollAllocFree(t *testing.T) {
	scfg := &Config{
		EnableFailover: true,
		// Park the shared engine far away: the test drives Poll by hand.
		Health: HealthConfig{Interval: time.Hour},
	}
	srv := startChaosServer(t, scfg, func(sess *Session) {
		st, err := sess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		_, _ = io.Copy(st, st)
	})
	ccfg := &Config{
		ServerName:     "test.server",
		EnableFailover: true,
		Health:         HealthConfig{Interval: time.Hour},
	}
	sess, err := Dial("tcp", srv.ln.Addr().String(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 64<<10)
	if _, err := st.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(st, msg); err != nil {
		t.Fatal(err)
	}
	// Let the ack tail drain so no rule transitions mid-measurement.
	deadline := time.Now().Add(2 * time.Second)
	for sess.Metrics().RetransmitBytes > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	sess.mu.Lock()
	mon := sess.healthMon
	sess.mu.Unlock()
	if mon == nil {
		t.Fatal("session has no health monitor")
	}
	for i := 0; i < 8; i++ {
		mon.Poll(time.Now())
	}
	if n := testing.AllocsPerRun(100, func() { mon.Poll(time.Now()) }); n != 0 {
		t.Fatalf("session health poll allocates %v per tick in steady state", n)
	}
}
