// Health-engine overhead benchmark (DESIGN.md §15): the continuous
// self-diagnosis claims <1% goodput cost at the default 1s sampling
// tick. BenchmarkHealthOverhead runs the same loopback transfer with
// diagnosis off, at the production tick, and at a 20ms tick (50× the
// default rate) so the scaling is visible in one run:
//
//	go test -bench=HealthOverhead -benchmem
package tcpls_test

import (
	"context"
	"io"
	"testing"
	"time"

	"tcpls"
)

// benchHealthTransfer is benchTelemetryTransfer with telemetry pinned
// on (the diagnosis engine samples through it) and the health config
// under test.
func benchHealthTransfer(b *testing.B, hc tcpls.HealthConfig) {
	cert, err := tcpls.NewCertificate("bench.tcpls")
	if err != nil {
		b.Fatal(err)
	}
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{
		Certificate: cert,
		Health:      hc,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer sess.Close()
				for {
					st, err := sess.AcceptStream(context.Background())
					if err != nil {
						return
					}
					go io.Copy(io.Discard, st)
				}
			}()
		}
	}()

	sess, err := tcpls.Dial("tcp", ln.Addr().String(), &tcpls.Config{
		ServerName: "bench.tcpls",
		Health:     hc,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 1<<20)

	b.SetBytes(telemetryBenchBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for sent := 0; sent < telemetryBenchBytes; sent += len(chunk) {
			if _, err := st.Write(chunk); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkHealthOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchHealthTransfer(b, tcpls.HealthConfig{Disabled: true})
	})
	b.Run("on-1s", func(b *testing.B) {
		benchHealthTransfer(b, tcpls.HealthConfig{Interval: time.Second})
	})
	b.Run("on-20ms", func(b *testing.B) {
		benchHealthTransfer(b, tcpls.HealthConfig{Interval: 20 * time.Millisecond})
	})
}
