// Command quickstart is the smallest complete TCPLS program: a server
// and a client in one process, a TLS 1.3-shaped handshake with the
// TCPLS extension, one multiplexed stream, and an encrypted TCP option
// exchanged over the secure channel.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"tcpls"
)

func main() {
	// --- Server ---
	cert, err := tcpls.NewCertificate("quickstart.example")
	if err != nil {
		log.Fatal(err)
	}
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{Certificate: cert})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				// Log encrypted TCP options sent by the client.
				for _, opt := range sess.TCPOptions() {
					fmt.Printf("server: TCP option kind=%d value=%v\n", opt.Kind, opt.Value)
				}
				for {
					st, err := sess.AcceptStream(context.Background())
					if err != nil {
						return
					}
					go func() {
						io.Copy(st, st) // echo
						st.Close()
					}()
				}
			}()
		}
	}()

	// --- Client ---
	sess, err := tcpls.Dial("tcp", ln.Addr().String(), &tcpls.Config{
		ServerName: "quickstart.example",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	id := sess.ID()
	fmt.Printf("client: session %x established, %d join cookies\n", id[:4], sess.Cookies())

	// Ship the TCP User Timeout option over the encrypted channel
	// (paper §3.1: reliable, unlimited, middlebox-proof TCP options).
	if err := sess.SendTCPOption(0, tcpls.OptUserTimeout, []byte{0, 0, 0, 250}); err != nil {
		log.Fatal(err)
	}

	st, err := sess.OpenStream()
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("hello over TCPLS")
	if _, err := st.Write(msg); err != nil {
		log.Fatal(err)
	}
	reply := make([]byte, len(msg))
	if _, err := io.ReadFull(st, reply); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: echo reply %q\n", reply)

	rtt, err := sess.Ping(0, 2*time.Second)
	if err == nil {
		fmt.Printf("client: encrypted echo probe RTT %v\n", rtt)
	}

	// Every session carries a lock-free telemetry registry; the same
	// numbers are scrapable in Prometheus format when
	// Config.Telemetry.Addr is set.
	m := sess.Metrics()
	fmt.Printf("client: metrics — records sent=%d received=%d bytes sent=%d conns=%d streams=%d\n",
		m.Stats.RecordsSent, m.Stats.RecordsReceived, m.Stats.BytesSent, m.ConnsOpen, m.StreamsOpen)
}
