// Command migration demonstrates application-triggered connection
// migration (paper §3.3.2 / Fig. 10) on one machine: two emulated
// network paths (a fast "Wi-Fi" and a slower "LTE") front the same
// server; mid-download the client decides its current path is
// underperforming and migrates the transfer to the other path without
// interrupting the byte stream.
//
// The hand-over uses coupled streams: the old connection drains its
// queued records while the new one carries the rest, so goodput is
// sustained (and briefly boosted) through the migration window.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tcpls"
	"tcpls/internal/netem"
)

const fileSize = 8 << 20

func main() {
	// --- Server: streams fileSize bytes over whatever coupled streams
	// the client sets up.
	cert, err := tcpls.NewCertificate("migration.example")
	if err != nil {
		log.Fatal(err)
	}
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{Certificate: cert})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go serve(ln)

	// --- Two emulated paths to the same server.
	wifi, err := netem.NewRelay(ln.Addr().String(),
		netem.Profile{RateBps: 40_000_000, Delay: 5 * time.Millisecond},
		netem.Profile{RateBps: 40_000_000, Delay: 5 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer wifi.Close()
	lte, err := netem.NewRelay(ln.Addr().String(),
		netem.Profile{RateBps: 20_000_000, Delay: 25 * time.Millisecond},
		netem.Profile{RateBps: 20_000_000, Delay: 25 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer lte.Close()

	// --- Client: start on "LTE", measure, migrate to "Wi-Fi".
	sess, err := tcpls.Dial("tcp", lte.Addr(), &tcpls.Config{ServerName: "migration.example"})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	st, err := sess.OpenStream()
	if err != nil {
		log.Fatal(err)
	}
	st.Write([]byte("GO")) // request the download (plain stream write)

	received := 0
	buf := make([]byte, 256<<10)
	start := time.Now()
	migrated := false
	for received < fileSize {
		n, err := sess.ReadCoupled(buf)
		if err != nil {
			log.Fatal(err)
		}
		received += n

		// Application policy: after a quarter of the file, check the
		// path RTT; if it looks like the slow path, migrate (§3.3.2's
		// application-level decision).
		if !migrated && received > fileSize/4 {
			migrated = true
			rtt, err := sess.Ping(0, time.Second)
			if err == nil {
				fmt.Printf("t=%v: %d/%d bytes, current path RTT %v -> migrating to the fast path\n",
					time.Since(start).Round(time.Millisecond), received, fileSize, rtt.Round(time.Millisecond))
			}
			conn2, err := sess.JoinPath("tcp", wifi.Addr())
			if err != nil {
				log.Fatalf("join: %v", err)
			}
			st2, err := sess.OpenStreamOn(conn2)
			if err != nil {
				log.Fatal(err)
			}
			// Tell the server to finish the old stream and continue on
			// the new one (application protocol: one control byte).
			st2.Write([]byte("M"))
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("downloaded %d bytes in %v (%.1f Mbps), migrated mid-transfer without a gap\n",
		received, elapsed.Round(time.Millisecond), float64(received)*8/elapsed.Seconds()/1e6)
}

func serve(ln *tcpls.Listener) {
	for {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer sess.Close()
			first, err := sess.AcceptStream(context.Background())
			if err != nil {
				return
			}
			cmd := make([]byte, 2)
			if _, err := first.Read(cmd); err != nil {
				return
			}
			sess.Couple(first)

			// Watch for the migration stream in the background: when it
			// appears, couple it and finish the old one so records steer
			// to the new connection.
			go func() {
				second, err := sess.AcceptStream(context.Background())
				if err != nil {
					return
				}
				one := make([]byte, 1)
				second.Read(one)
				sess.Couple(second)
				first.Close()
			}()

			chunk := make([]byte, 256<<10)
			sent := 0
			for sent < fileSize {
				n := len(chunk)
				if sent+n > fileSize {
					n = fileSize - sent
				}
				if _, err := sess.WriteCoupled(chunk[:n]); err != nil {
					return
				}
				sent += n
			}
		}()
	}
}
