// Command steering demonstrates stream steering (paper §3.3.3): an
// application with two classes of traffic — small latency-critical
// messages and a bulk transfer — joins two paths with different
// characteristics and pins each stream to the appropriate one: the
// interactive stream to the low-latency path, the bulk stream to the
// high-bandwidth path. Neither blocks the other (no cross-stream
// head-of-line blocking across connections).
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"tcpls"
	"tcpls/internal/netem"
)

const bulkSize = 12 << 20

func main() {
	cert, err := tcpls.NewCertificate("steering.example")
	if err != nil {
		log.Fatal(err)
	}
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{Certificate: cert})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go serve(ln)

	// A low-latency path (small pipe) and a fat high-latency path.
	lowLat, err := netem.NewRelay(ln.Addr().String(),
		netem.Profile{RateBps: 5_000_000, Delay: 2 * time.Millisecond},
		netem.Profile{RateBps: 5_000_000, Delay: 2 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer lowLat.Close()
	fat, err := netem.NewRelay(ln.Addr().String(),
		netem.Profile{RateBps: 50_000_000, Delay: 40 * time.Millisecond},
		netem.Profile{RateBps: 50_000_000, Delay: 40 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer fat.Close()

	// Session over the low-latency path; join the fat path.
	sess, err := tcpls.Dial("tcp", lowLat.Addr(), &tcpls.Config{ServerName: "steering.example"})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fatConn, err := sess.JoinPath("tcp", fat.Addr())
	if err != nil {
		log.Fatal(err)
	}

	// Measure both paths with encrypted echo probes, as the paper's API
	// discussion suggests, then steer accordingly.
	rtt0, _ := sess.Ping(0, time.Second)
	rtt1, _ := sess.Ping(fatConn, time.Second)
	fmt.Printf("path RTTs: conn0=%v conn%d=%v\n", rtt0.Round(time.Millisecond), fatConn, rtt1.Round(time.Millisecond))

	// Interactive stream on conn 0 (low latency), bulk on the fat path.
	chat, err := sess.OpenStreamOn(0)
	if err != nil {
		log.Fatal(err)
	}
	bulk, err := sess.OpenStreamOn(fatConn)
	if err != nil {
		log.Fatal(err)
	}
	bulk.Write([]byte("B")) // ask for the bulk download

	// Bulk download in the background.
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		n, err := io.Copy(io.Discard, io.LimitReader(bulk, bulkSize))
		if err != nil || n != bulkSize {
			log.Fatalf("bulk: %d bytes, %v", n, err)
		}
		done <- time.Since(start)
	}()

	// Interactive pings on the chat stream keep their latency while the
	// bulk transfer saturates the other path.
	var worst time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		chat.Write([]byte("ping"))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(chat, buf); err != nil {
			log.Fatal(err)
		}
		rtt := time.Since(start)
		if rtt > worst {
			worst = rtt
		}
		time.Sleep(50 * time.Millisecond)
	}
	bulkTime := <-done
	fmt.Printf("bulk: %d MiB in %v (%.1f Mbps) on the fat path\n",
		bulkSize>>20, bulkTime.Round(time.Millisecond), float64(bulkSize)*8/bulkTime.Seconds()/1e6)
	fmt.Printf("chat: worst round trip %v on the low-latency path, unaffected by the bulk transfer\n",
		worst.Round(time.Millisecond))
}

func serve(ln *tcpls.Listener) {
	for {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer sess.Close()
			for {
				st, err := sess.AcceptStream(context.Background())
				if err != nil {
					return
				}
				go func() {
					one := make([]byte, 1)
					if _, err := st.Read(one); err != nil {
						return
					}
					if one[0] == 'B' {
						// Bulk: stream the payload.
						chunk := make([]byte, 256<<10)
						for sent := 0; sent < bulkSize; sent += len(chunk) {
							if _, err := st.Write(chunk); err != nil {
								return
							}
						}
						return
					}
					// Chat: echo the rest of each ping (first byte
					// already consumed: echo it plus the remainder).
					st.Write(one)
					io.Copy(st, st)
				}()
			}
		}()
	}
}
