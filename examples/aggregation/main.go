// Command aggregation demonstrates bandwidth aggregation over two
// asymmetric network paths (paper §3.3.3 / Fig. 11) on one machine: a
// download starts on a single emulated 20 Mbps path, and five seconds
// in, the client joins a second 5 Mbps path and couples a stream on it.
// The server schedules records with the rate-weighted path scheduler
// (Config{Scheduler: "rate"}): failover-mode acknowledgments feed
// per-path delivery-rate estimates, so the fast path carries ~4x the
// records and the aggregate approaches the 25 Mbps sum instead of
// collapsing to twice the slow path's rate as round-robin would.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"tcpls"
	"tcpls/internal/netem"
)

const fileSize = 24 << 20

// smallBufListener caps the kernel send buffer of accepted connections.
// Left to autotune, the kernel absorbs megabytes per path before TCP
// backpressure reaches the scheduler — the slow path then hoards a deep
// backlog that drains at 5 Mbps after the fast path goes idle, and the
// ACK-fed delivery-rate estimates lag far behind what was scheduled.
type smallBufListener struct {
	net.Listener
}

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(32 << 10)
		}
	}
	return c, err
}

func main() {
	cert, err := tcpls.NewCertificate("aggregation.example")
	if err != nil {
		log.Fatal(err)
	}
	rawLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ln := tcpls.NewListener(smallBufListener{rawLn}, &tcpls.Config{
		Certificate:      cert,
		EnableFailover:   true, // record ACKs feed the path-metrics engine
		Scheduler:        "rate",
		AckPeriod:        2,    // frequent ACKs: fresh delivery-rate samples
		MaxRecordPayload: 4096, // small records: fine-grained path choice
	})
	defer ln.Close()
	go serve(ln)

	mk := func(rateBps int64) *netem.Relay {
		p := netem.Profile{RateBps: rateBps, Delay: 10 * time.Millisecond, QueueLen: 2}
		r, err := netem.NewRelay(ln.Addr().String(), p, p)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	path1, path2 := mk(20_000_000), mk(5_000_000)
	defer path1.Close()
	defer path2.Close()

	sess, err := tcpls.Dial("tcp", path1.Addr(), &tcpls.Config{
		ServerName:     "aggregation.example",
		EnableFailover: true, // send the record ACKs the server's scheduler learns from
		AckPeriod:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	st, err := sess.OpenStream()
	if err != nil {
		log.Fatal(err)
	}
	st.Write([]byte("GO")) // request the download (plain stream write)

	received := 0
	buf := make([]byte, 256<<10)
	start := time.Now()
	joined := false
	lastReport := 0
	for received < fileSize {
		// Enable the second path after 5 s (the Fig. 11 scenario).
		if !joined && time.Since(start) > 5*time.Second {
			joined = true
			conn2, err := sess.JoinPath("tcp", path2.Addr())
			if err != nil {
				log.Fatalf("join: %v", err)
			}
			st2, err := sess.OpenStreamOn(conn2)
			if err != nil {
				log.Fatal(err)
			}
			st2.Write([]byte("A")) // tell the server to couple this stream
			fmt.Printf("t=%v: second (5 Mbps) path joined, rate scheduler aggregating\n", time.Since(start).Round(time.Millisecond))
		}
		n, err := sess.ReadCoupled(buf)
		if err != nil {
			log.Fatal(err)
		}
		received += n
		if received-lastReport >= 4<<20 {
			lastReport = received
			fmt.Printf("t=%v: %d MiB received\n", time.Since(start).Round(time.Millisecond), received>>20)
		}
	}
	elapsed := time.Since(start)
	// Tell the server the download arrived before either side closes:
	// with failover enabled a torn-down connection is survivable, so a
	// server that closed with records still queued would leave the
	// client waiting on a replay that never comes.
	if done, err := sess.OpenStream(); err == nil {
		done.Write([]byte("K"))
	}
	fmt.Printf("downloaded %d MiB in %v (%.1f Mbps average; paths alone give 20 and 5 Mbps)\n",
		received>>20, elapsed.Round(time.Millisecond), float64(received)*8/elapsed.Seconds()/1e6)
}

func serve(ln *tcpls.Listener) {
	for {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer sess.Close()
			first, err := sess.AcceptStream(context.Background())
			if err != nil {
				return
			}
			cmd := make([]byte, 2)
			if _, err := first.Read(cmd); err != nil {
				return
			}
			sess.Couple(first)
			go func() {
				// Couple the second stream whenever the client adds it.
				second, err := sess.AcceptStream(context.Background())
				if err != nil {
					return
				}
				one := make([]byte, 1)
				second.Read(one)
				sess.Couple(second)
			}()
			chunk := make([]byte, 256<<10)
			sent := 0
			for sent < fileSize {
				n := len(chunk)
				if sent+n > fileSize {
					n = fileSize - sent
				}
				if _, err := sess.WriteCoupled(chunk[:n]); err != nil {
					return
				}
				sent += n
			}
			// Wait for the client's completion signal (a byte on a third
			// stream) before the deferred Close tears the paths down.
			if done, err := sess.AcceptStream(context.Background()); err == nil {
				done.Read(make([]byte, 1))
			}
		}()
	}
}
