// Command aggregation demonstrates bandwidth aggregation over two
// network paths (paper §3.3.3 / Fig. 11) on one machine: a download
// starts on a single emulated 20 Mbps path, and five seconds in, the
// client joins a second 20 Mbps path and couples a stream on it — the
// remaining bytes arrive at close to the combined rate, reassembled in
// order by the receiver's reordering heap.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tcpls"
	"tcpls/internal/netem"
)

const fileSize = 24 << 20

func main() {
	cert, err := tcpls.NewCertificate("aggregation.example")
	if err != nil {
		log.Fatal(err)
	}
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{Certificate: cert})
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go serve(ln)

	mk := func() *netem.Relay {
		r, err := netem.NewRelay(ln.Addr().String(),
			netem.Profile{RateBps: 20_000_000, Delay: 10 * time.Millisecond},
			netem.Profile{RateBps: 20_000_000, Delay: 10 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	path1, path2 := mk(), mk()
	defer path1.Close()
	defer path2.Close()

	sess, err := tcpls.Dial("tcp", path1.Addr(), &tcpls.Config{ServerName: "aggregation.example"})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	st, err := sess.OpenStream()
	if err != nil {
		log.Fatal(err)
	}
	st.Write([]byte("GO")) // request the download (plain stream write)

	received := 0
	buf := make([]byte, 256<<10)
	start := time.Now()
	joined := false
	lastReport := 0
	for received < fileSize {
		// Enable the second path after 5 s (the Fig. 11 scenario).
		if !joined && time.Since(start) > 5*time.Second {
			joined = true
			conn2, err := sess.JoinPath("tcp", path2.Addr())
			if err != nil {
				log.Fatalf("join: %v", err)
			}
			st2, err := sess.OpenStreamOn(conn2)
			if err != nil {
				log.Fatal(err)
			}
			st2.Write([]byte("A")) // tell the server to couple this stream
			fmt.Printf("t=%v: second path joined, aggregating\n", time.Since(start).Round(time.Millisecond))
		}
		n, err := sess.ReadCoupled(buf)
		if err != nil {
			log.Fatal(err)
		}
		received += n
		if received-lastReport >= 4<<20 {
			lastReport = received
			fmt.Printf("t=%v: %d MiB received\n", time.Since(start).Round(time.Millisecond), received>>20)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("downloaded %d MiB in %v (%.1f Mbps average; single path tops out at ~20 Mbps)\n",
		received>>20, elapsed.Round(time.Millisecond), float64(received)*8/elapsed.Seconds()/1e6)
}

func serve(ln *tcpls.Listener) {
	for {
		sess, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer sess.Close()
			first, err := sess.AcceptStream(context.Background())
			if err != nil {
				return
			}
			cmd := make([]byte, 2)
			if _, err := first.Read(cmd); err != nil {
				return
			}
			sess.Couple(first)
			go func() {
				// Couple the second stream whenever the client adds it.
				second, err := sess.AcceptStream(context.Background())
				if err != nil {
					return
				}
				one := make([]byte, 1)
				second.Read(one)
				sess.Couple(second)
			}()
			chunk := make([]byte, 256<<10)
			sent := 0
			for sent < fileSize {
				n := len(chunk)
				if sent+n > fileSize {
					n = fileSize - sent
				}
				if _, err := sess.WriteCoupled(chunk[:n]); err != nil {
					return
				}
				sent += n
			}
		}()
	}
}
