// Package tcpls is a Go implementation of TCPLS — the close coupling of
// TCP and TLS 1.3 presented in "TCPLS: Modern Transport Services with TCP
// and TLS" (Rochet et al., CoNEXT 2021).
//
// TCPLS runs over ordinary TCP connections and a TLS 1.3-shaped
// handshake, then extends the encrypted TLS record layer with control
// records to provide modern transport services without touching the TCP
// wire format:
//
//   - stream multiplexing with per-stream cryptographic contexts,
//   - joining several TCP connections to one session (session ID +
//     single-use cookies),
//   - failover with record-level acknowledgments and replay,
//   - application-triggered connection migration,
//   - bandwidth aggregation over coupled streams,
//   - encrypted TCP options and in-band eBPF congestion-controller
//     exchange.
//
// # Quick start
//
// Server:
//
//	cert, _ := tcpls.NewCertificate("example.org")
//	ln, _ := tcpls.Listen("tcp", ":4443", &tcpls.Config{Certificate: cert})
//	for {
//		sess, _ := ln.Accept()
//		go func() {
//			st, _ := sess.AcceptStream(context.Background())
//			io.Copy(st, st) // echo
//		}()
//	}
//
// Client:
//
//	sess, _ := tcpls.Dial("tcp", "example.org:4443", &tcpls.Config{ServerName: "example.org"})
//	st, _ := sess.OpenStream()
//	st.Write([]byte("hello"))
//
// Multipath:
//
//	conn2, _ := sess.JoinPath("tcp", "[2001:db8::1]:4443") // second TCP connection
//	st2, _ := sess.OpenStreamOn(conn2)
//	sess.Couple(st, st2)                                   // aggregate bandwidth
//
// The protocol engine itself (internal/core) is sans-IO and also drives
// the discrete-event simulator used to reproduce the paper's evaluation;
// see DESIGN.md and EXPERIMENTS.md.
package tcpls
