package tcpls

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"tcpls/internal/telemetry"
	"tcpls/internal/testutil"
)

// scrapeMetrics fetches the Prometheus exposition from the shared
// telemetry server registered under cfgAddr (the Config.Telemetry.Addr
// key, which may be ":0" — the bound port is looked up internally).
func scrapeMetrics(t *testing.T, cfgAddr string) string {
	t.Helper()
	telServersMu.Lock()
	ts, ok := telServers[cfgAddr]
	telServersMu.Unlock()
	if !ok {
		t.Fatalf("no shared telemetry server for %q", cfgAddr)
	}
	resp, err := http.Get("http://" + ts.srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample line ("name{labels} value") from an
// exposition body; missing series read as 0 (Prometheus counters are
// born lazily on first touch).
func metricValue(body, series string) uint64 {
	for _, line := range strings.Split(body, "\n") {
		var v uint64
		if n, _ := fmt.Sscanf(line, series+" %d", &v); n == 1 && strings.HasPrefix(line, series+" ") {
			return v
		}
	}
	return 0
}

// TestTelemetryMetricsMatchEventsDuringFailover drives the acceptance
// scenario: a two-path session loses one path, fails over, and the
// /metrics endpoint must agree with the SessionEvents the wrapper
// emitted — while /debug/pprof stays responsive on the same port.
func TestTelemetryMetricsMatchEventsDuringFailover(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	const telAddr = "127.0.0.1:0"

	scfg := &Config{EnableFailover: true, AckPeriod: 4, NumCookies: 4}
	srv := startChaosServer(t, scfg, echoHandler)
	sess, err := Dial("tcp", srv.ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
		Telemetry: TelemetryConfig{Addr: telAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", srv.ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	// Kill path 0; the sibling absorbs the streams.
	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	// WaitEvent drains the queue, so tally kinds as they stream past.
	var downs, failovers int
	tally := func(ev SessionEvent) {
		switch ev.Kind {
		case EventConnDown:
			downs++
		case EventFailover:
			failovers++
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for failovers == 0 {
		ev, err := sess.WaitEvent(ctx)
		if err != nil {
			t.Fatalf("waiting for failover: %v", err)
		}
		tally(ev)
	}
	if _, err := st.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	for _, ev := range sess.Events() {
		tally(ev)
	}

	// The snapshot and the scrape must tell the same story as the
	// event stream.
	snap := sess.Metrics()
	if snap.Failovers != uint64(failovers) || snap.Failovers == 0 {
		t.Fatalf("snapshot failovers = %d, events saw %d", snap.Failovers, failovers)
	}
	if snap.ConnFailures < uint64(downs) || snap.ConnFailures == 0 {
		t.Fatalf("snapshot conn failures = %d, events saw %d", snap.ConnFailures, downs)
	}
	if snap.Stats.RecordsSent == 0 || snap.ConnsOpen != 1 {
		t.Fatalf("snapshot stats=%+v conns=%d", snap.Stats, snap.ConnsOpen)
	}

	label := sessLabel(sess.ID())
	body := scrapeMetrics(t, telAddr)
	if got := metricValue(body, fmt.Sprintf("tcpls_failovers_total{sess=%q}", label)); got != snap.Failovers {
		t.Fatalf("/metrics failovers = %d, snapshot %d\n%s", got, snap.Failovers, body)
	}
	if got := metricValue(body, fmt.Sprintf("tcpls_conn_failures_total{sess=%q}", label)); got != snap.ConnFailures {
		t.Fatalf("/metrics conn failures = %d, snapshot %d", got, snap.ConnFailures)
	}
	if got := metricValue(body, fmt.Sprintf("tcpls_retransmits_total{sess=%q,conn=\"1\"}", label)); got == 0 {
		t.Fatal("/metrics shows no retransmits on the failover target")
	}
	if !strings.Contains(body, fmt.Sprintf("tcpls_records_sent_total{sess=%q,conn=\"0\"}", label)) {
		t.Fatalf("/metrics missing per-conn records counter:\n%s", body)
	}

	// pprof rides on the same endpoint.
	telServersMu.Lock()
	telHTTPAddr := telServers[telAddr].srv.Addr()
	telServersMu.Unlock()
	resp, err := http.Get("http://" + telHTTPAddr + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine status %d", resp.StatusCode)
	}

	// Closing the last holder must stop the shared server and leak no
	// goroutines.
	sess.Close()
	srv.Close()
	telServersMu.Lock()
	_, alive := telServers[telAddr]
	telServersMu.Unlock()
	if alive {
		t.Fatal("shared telemetry server survived its last reference")
	}
	testutil.CheckGoroutines(t, baseGoroutines)
}

// TestTelemetryReconnectCountersMatchEvents asserts the recovery
// supervisor's attempt/success counters line up with the emitted
// EventReconnecting/EventReconnected sequence after total path loss.
func TestTelemetryReconnectCountersMatchEvents(t *testing.T) {
	scfg := &Config{EnableFailover: true, AckPeriod: 4, NumCookies: 8}
	srv := startChaosServer(t, scfg, echoHandler)
	sess, err := Dial("tcp", srv.ln.Addr().String(), &Config{
		ServerName: "test.server", EnableFailover: true, AckPeriod: 4,
		Reconnect: ReconnectConfig{
			MaxAttempts: 20,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Deadline:    10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	sess.mu.Lock()
	pc0 := sess.conns[0]
	sess.mu.Unlock()
	pc0.nc.Close()

	// WaitEvent drains the queue, so tally kinds as they stream past.
	var attempts, reconnects int
	tally := func(ev SessionEvent) {
		switch ev.Kind {
		case EventReconnecting:
			attempts++
		case EventReconnected:
			reconnects++
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	for reconnects == 0 {
		ev, err := sess.WaitEvent(ctx)
		if err != nil {
			t.Fatalf("waiting for reconnection: %v", err)
		}
		tally(ev)
	}
	for _, ev := range sess.Events() {
		tally(ev)
	}
	snap := sess.Metrics()
	if snap.ReconnectAttempts != uint64(attempts) || attempts == 0 {
		t.Fatalf("snapshot attempts = %d, events saw %d", snap.ReconnectAttempts, attempts)
	}
	if snap.Reconnects != uint64(reconnects) || reconnects != 1 {
		t.Fatalf("snapshot reconnects = %d, events saw %d", snap.Reconnects, reconnects)
	}
}

// TestTelemetryDisabled: with the layer off, Metrics still reports the
// engine's raw Stats but nothing else, and no registry handles exist.
func TestTelemetryDisabled(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{
		ServerName: "test.server",
		Telemetry:  TelemetryConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}
	if sess.tel != nil {
		t.Fatal("Disabled session still resolved telemetry handles")
	}
	snap := sess.Metrics()
	if snap.Stats.RecordsSent == 0 {
		t.Fatal("Stats block missing with telemetry disabled")
	}
	if snap.Failovers != 0 || snap.SchedPicks != nil || snap.ConnsOpen != 0 {
		t.Fatalf("disabled snapshot carries registry data: %+v", snap)
	}
}

// TestTraceJSONThroughSink: TraceJSON output is valid JSON lines and the
// per-session trace counters account for every emitted event.
func TestTraceJSONThroughSink(t *testing.T) {
	ln := startServer(t, &Config{}, echoHandler)
	sess, err := Dial("tcp", ln.Addr().String(), &Config{ServerName: "test.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	pr, pw := io.Pipe()
	lines := make(chan string, 256)
	go func() {
		defer close(lines)
		buf := make([]byte, 64<<10)
		var pending strings.Builder
		for {
			n, err := pr.Read(buf)
			pending.Write(buf[:n])
			for {
				s := pending.String()
				i := strings.IndexByte(s, '\n')
				if i < 0 {
					break
				}
				lines <- s[:i]
				pending.Reset()
				pending.WriteString(s[i+1:])
			}
			if err != nil {
				return
			}
		}
	}()
	sess.TraceJSON(pw)

	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("traced")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := io.ReadFull(st, buf); err != nil {
		t.Fatal(err)
	}

	// Stop tracing; the old sink flushes asynchronously into the pipe.
	sess.TraceJSON(nil)
	var first string
	select {
	case first = <-lines:
	case <-time.After(3 * time.Second):
		t.Fatal("no trace lines flushed")
	}
	if first != telemetry.QlogHeader {
		t.Fatalf("first trace line = %q, want qlog header", first)
	}
	var second string
	select {
	case second = <-lines:
	case <-time.After(3 * time.Second):
		t.Fatal("no event lines after qlog header")
	}
	if !strings.HasPrefix(second, `{"time_us":`) || !strings.Contains(second, `"type":`) {
		t.Fatalf("trace line not in qlog NDJSON schema: %q", second)
	}
	snap := sess.Metrics()
	if snap.TraceEvents == 0 {
		t.Fatal("tcpls_trace_events_total not fed by TraceJSON")
	}
	if snap.TraceDropped != 0 {
		t.Fatalf("healthy sink dropped %d events", snap.TraceDropped)
	}
	pw.Close()
}
