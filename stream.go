package tcpls

import (
	"context"
	"errors"
	"io"
)

// Stream is one multiplexed TCPLS byte stream. Reads and writes are safe
// for concurrent use; a stream implements io.ReadWriteCloser.
type Stream struct {
	sess *Session
	id   uint32
}

// ID returns the stream's TCPLS stream identifier.
func (st *Stream) ID() uint32 { return st.id }

// Conn returns the engine ID of the TCP connection the stream is
// attached to.
func (st *Stream) Conn() (uint32, error) {
	st.sess.mu.Lock()
	defer st.sess.mu.Unlock()
	return st.sess.engine.StreamConn(st.id)
}

// Write queues p on the stream and transmits it. It blocks only on TCP
// backpressure, never on the peer's application.
func (st *Stream) Write(p []byte) (int, error) {
	s := st.sess
	s.mu.Lock()
	if s.closed {
		err := s.closedErrLocked()
		s.mu.Unlock()
		return 0, err
	}
	n, err := s.engine.Write(st.id, p)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	s.writeAll(out)
	return n, nil
}

// Read blocks until stream data is available, the peer finishes the
// stream (io.EOF after the data drains), or the session closes.
func (st *Stream) Read(p []byte) (int, error) {
	s := st.sess
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if n := s.engine.Readable(st.id); n > 0 {
			rn, err := s.engine.Read(st.id, p)
			// Draining may clear receive backpressure; wake any readLoop
			// parked on RecvPaused.
			s.cond.Broadcast()
			return rn, err
		}
		if s.engine.PeerFinished(st.id) {
			return 0, io.EOF
		}
		if s.closed {
			return 0, s.closedErrLocked()
		}
		s.cond.Wait()
	}
}

// Close finishes the local send side of the stream (the peer sees EOF
// after draining). The receive side keeps working.
func (st *Stream) Close() error {
	s := st.sess
	s.mu.Lock()
	err := s.engine.FinishStream(st.id)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.writeAll(out)
	return nil
}

// OpenStream opens a stream on the initial connection.
func (s *Session) OpenStream() (*Stream, error) { return s.OpenStreamOn(0) }

// OpenStreamOn opens a stream attached to a specific connection —
// stream steering at creation time (§3.3.3).
func (s *Session) OpenStreamOn(conn uint32) (*Stream, error) {
	s.mu.Lock()
	if s.closed {
		err := s.closedErrLocked()
		s.mu.Unlock()
		return nil, err
	}
	id, err := s.engine.CreateStream(conn)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	st := &Stream{sess: s, id: id}
	s.streams[id] = st
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	s.writeAll(out)
	return st, nil
}

// AcceptStream blocks until the peer opens a stream.
func (s *Session) AcceptStream(ctx context.Context) (*Stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.acceptQ) == 0 {
		if s.closed {
			return nil, s.closedErrLocked()
		}
		if err := s.waitLocked(ctx); err != nil {
			return nil, err
		}
	}
	st := s.acceptQ[0]
	s.acceptQ = s.acceptQ[1:]
	return st, nil
}

// Couple flags streams as members of the session's coupled group: their
// records carry aggregation sequence numbers, WriteCoupled spreads data
// across them (and so across their connections), and ReadCoupled
// delivers the aggregate in order (§3.3.3).
func (s *Session) Couple(streams ...*Stream) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range streams {
		if err := s.engine.SetCoupled(st.id, true); err != nil {
			return err
		}
	}
	return nil
}

// WriteCoupled queues p on the coupled group, spreading records across
// the coupled streams via the session's scheduler.
func (s *Session) WriteCoupled(p []byte) (int, error) {
	s.mu.Lock()
	if s.closed {
		err := s.closedErrLocked()
		s.mu.Unlock()
		return 0, err
	}
	n, err := s.engine.WriteCoupled(p)
	out := s.collectOutgoingLocked()
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	s.writeAll(out)
	return n, nil
}

// ReadCoupled blocks until coupled-group data is deliverable in order.
func (s *Session) ReadCoupled(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.engine.CoupledReadable() > 0 {
			n := s.engine.ReadCoupled(p)
			// Draining may clear receive backpressure; wake any readLoop
			// parked on RecvPaused.
			s.cond.Broadcast()
			return n, nil
		}
		if s.closed {
			return 0, s.closedErrLocked()
		}
		s.cond.Wait()
	}
}

// CoupledInUse reports whether the peer (or this side) has coupled
// streams active on the session — receivers switch to ReadCoupled.
func (s *Session) CoupledInUse() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.CoupledActive() || s.engine.CoupledReadable() > 0
}

// SetScheduler installs an application-defined coupled-stream record
// scheduler (§3.3.3): called once per record with the coupled stream IDs,
// it returns the index of the stream to carry that record.
//
// Contract: the returned index must be in [0, len(streams)). An
// out-of-range index is not honoured — the engine emits a sched_invalid
// trace event and falls back to the first coupled stream, so a buggy
// scheduler degrades to pinned scheduling rather than dropping data.
// For metrics-aware policies (lowest-RTT, rate-weighted, redundant) use
// SetPathScheduler instead; passing nil here restores the default
// round-robin.
func (s *Session) SetScheduler(fn func(recordIdx uint64, streams []uint32) int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engine.SetScheduler(fn)
}

// errReadClosed mirrors net.ErrClosed semantics for finished streams.
var errReadClosed = errors.New("tcpls: stream closed")
