//go:build linux

package tcpls

import (
	"net"
	"syscall"
	"time"
	"unsafe"
)

// tcpInfoLen covers the fields this package reads; the kernel truncates
// or zero-fills as its struct version dictates.
const tcpInfoLen = 104

// Offsets into the kernel's struct tcp_info (linux/tcp.h): 8 leading
// u8/bitfield bytes, then consecutive u32s.
const (
	offRetrans = 36 // tcpi_retrans (current retransmitted segments)
	offPMTU    = 60 // tcpi_pmtu
	offRTT     = 68 // tcpi_rtt (microseconds)
	offRTTVar  = 72 // tcpi_rttvar (microseconds)
	offSndCwnd = 80 // tcpi_snd_cwnd (segments)
	offSndMSS  = 16 // tcpi_snd_mss
	offTotalRe = 96 // tcpi_total_retrans
)

// fillKernelInfo populates info from TCP_INFO when nc is a real TCP
// connection; otherwise it leaves the TCPLS-level fields only.
func fillKernelInfo(nc net.Conn, info *ConnInfo) {
	tc, ok := nc.(*net.TCPConn)
	if !ok {
		return
	}
	rc, err := tc.SyscallConn()
	if err != nil {
		return
	}
	var buf [tcpInfoLen]byte
	var gotLen uint32
	ctrlErr := rc.Control(func(fd uintptr) {
		l := uint32(len(buf))
		_, _, errno := syscall.Syscall6(syscall.SYS_GETSOCKOPT, fd,
			uintptr(syscall.IPPROTO_TCP), uintptr(syscall.TCP_INFO),
			uintptr(unsafe.Pointer(&buf[0])), uintptr(unsafe.Pointer(&l)), 0)
		if errno == 0 {
			gotLen = l
		}
	})
	if ctrlErr != nil {
		return
	}
	parseTCPInfo(buf[:], gotLen, info)
}

// parseTCPInfo decodes the first gotLen valid bytes of a little-endian
// struct tcp_info into info, mirroring the kernel's truncation
// semantics: too short a buffer leaves info untouched (Kernel stays
// false), and a mid-length buffer falls back from tcpi_total_retrans to
// tcpi_retrans. Split from the getsockopt call so the offset arithmetic
// is testable against hand-built buffers.
func parseTCPInfo(buf []byte, gotLen uint32, info *ConnInfo) {
	if int(gotLen) > len(buf) {
		gotLen = uint32(len(buf))
	}
	if gotLen < offSndCwnd+4 {
		return
	}
	// tcp_info is native-endian (little-endian on supported platforms).
	le32 := func(off int) uint32 {
		return uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24
	}
	info.Kernel = true
	info.RTT = microseconds(le32(offRTT))
	info.RTTVar = microseconds(le32(offRTTVar))
	info.SndCwnd = le32(offSndCwnd)
	info.SndMSS = le32(offSndMSS)
	info.PMTU = le32(offPMTU)
	if gotLen >= offTotalRe+4 {
		info.Retrans = le32(offTotalRe)
	} else {
		info.Retrans = le32(offRetrans)
	}
}

func microseconds(us uint32) time.Duration {
	return time.Duration(us) * time.Microsecond
}
