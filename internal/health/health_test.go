package health

import (
	"runtime"
	"testing"
	"time"
)

// fakeSource fills samples from a mutable template, preserving the
// monitor-owned AtUS stamp and Paths backing array.
type fakeSource struct {
	s     Sample
	paths []PathSample
}

func (f *fakeSource) HealthSample(hs *Sample) {
	at := hs.AtUS
	paths := hs.Paths
	*hs = f.s
	hs.AtUS = at
	hs.Paths = append(paths, f.paths...)
}

func tick(m *Monitor, atUS *int64, ivUS int64) {
	*atUS += ivUS
	m.Poll(time.UnixMicro(*atUS))
}

func TestSeriesRing(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 6; i++ {
		s.Push(int64(i)*1e6, float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if got := s.At(0).V; got != 2 {
		t.Fatalf("oldest = %v, want 2", got)
	}
	if last, _ := s.Last(); last.V != 5 {
		t.Fatalf("last = %v, want 5", last.V)
	}
	// y = x over seconds: slope 1/s.
	if slope := s.Slope(4); slope < 0.99 || slope > 1.01 {
		t.Fatalf("slope = %v, want ~1", slope)
	}
	if mean := s.Mean(2); mean != 4.5 {
		t.Fatalf("mean(2) = %v, want 4.5", mean)
	}
	w := s.AppendWindow(nil, 3)
	if len(w) != 3 || w[0].V != 3 || w[2].V != 5 {
		t.Fatalf("window = %+v", w)
	}
}

func TestSeriesMonotoneGrowth(t *testing.T) {
	s := NewSeries(8)
	for i := 1; i <= 8; i++ {
		s.Push(int64(i), float64(i)*100)
	}
	if !s.monotoneGrowth(8, 2.0) {
		t.Fatal("steady ramp x8 not detected")
	}
	if s.monotoneGrowth(8, 10.0) {
		t.Fatal("x8 ramp should not satisfy factor 10")
	}
	s.Push(9, 50) // dip breaks monotonicity
	if s.monotoneGrowth(8, 1.0) {
		t.Fatal("dip should break monotone growth")
	}
}

func collectVerdicts(dst *[]Verdict) func(Verdict) {
	return func(v Verdict) { *dst = append(*dst, v) }
}

func TestStallRuleHysteresis(t *testing.T) {
	src := &fakeSource{}
	var got []Verdict
	m := NewMonitor(src, Options{
		Key: "t", Interval: time.Second, Window: 16,
		OnVerdict: collectVerdicts(&got),
	})
	var at int64
	iv := int64(1e6)
	src.s.ConnsLive = 1
	// Healthy traffic: progress every tick.
	for i := 0; i < 5; i++ {
		src.s.BytesSent += 1000
		src.s.AcksReceived += 10
		src.s.BytesReceived += 1000
		tick(m, &at, iv)
	}
	if len(got) != 0 {
		t.Fatalf("verdicts during healthy traffic: %+v", got)
	}
	// Stall: outstanding data, zero progress. Default trip is 3 ticks.
	src.s.OutstandingBytes = 4096
	for i := 0; i < 2; i++ {
		tick(m, &at, iv)
	}
	if len(got) != 0 {
		t.Fatalf("tripped before hysteresis window: %+v", got)
	}
	tick(m, &at, iv)
	if len(got) != 1 || got[0].Kind != StallSuspected || !got[0].Raised {
		t.Fatalf("want stall raise, got %+v", got)
	}
	v := got[0]
	if v.Value != 4096 {
		t.Fatalf("stall value = %v, want 4096 outstanding", v.Value)
	}
	if v.Metric != "progress_bps" || len(v.Evidence) != 3 {
		t.Fatalf("evidence = %s x%d, want progress_bps x3", v.Metric, len(v.Evidence))
	}
	for _, p := range v.Evidence {
		if p.V != 0 {
			t.Fatalf("stall evidence window has progress: %+v", v.Evidence)
		}
	}
	// Recovery: progress resumes; default clear is 2 ticks, plus the
	// all-clear Healthy transition.
	src.s.OutstandingBytes = 0
	src.s.AcksReceived += 10
	tick(m, &at, iv)
	if len(got) != 1 {
		t.Fatalf("cleared after one good tick: %+v", got[1:])
	}
	src.s.AcksReceived += 10
	tick(m, &at, iv)
	if len(got) != 3 {
		t.Fatalf("want clear + healthy, got %+v", got[1:])
	}
	if got[1].Kind != StallSuspected || got[1].Raised {
		t.Fatalf("want stall clear, got %+v", got[1])
	}
	if got[1].AtUS-got[1].SinceUS <= 0 {
		t.Fatalf("clear carries no active duration: %+v", got[1])
	}
	if got[2].Kind != Healthy || !got[2].Raised {
		t.Fatalf("want healthy transition, got %+v", got[2])
	}
	if kinds := m.ActiveVerdicts(nil); len(kinds) != 0 {
		t.Fatalf("active after clear: %v", kinds)
	}
}

func TestRetransmitStorm(t *testing.T) {
	src := &fakeSource{}
	var got []Verdict
	m := NewMonitor(src, Options{
		Key: "t", Interval: time.Second, Window: 16,
		OnVerdict: collectVerdicts(&got),
	})
	var at int64
	iv := int64(1e6)
	src.s.ConnsLive = 1
	for i := 0; i < 3; i++ {
		src.s.RecordsSent += 100
		src.s.AcksReceived += 10
		tick(m, &at, iv)
	}
	// Storm: half of everything sent is a retransmit, two ticks.
	for i := 0; i < 2; i++ {
		src.s.RecordsSent += 100
		src.s.Retransmits += 50
		src.s.AcksReceived += 10
		tick(m, &at, iv)
	}
	if len(got) != 1 || got[0].Kind != RetransmitStorm || !got[0].Raised {
		t.Fatalf("want storm raise, got %+v", got)
	}
	if got[0].Value < 0.4 || got[0].Value > 0.6 {
		t.Fatalf("storm ratio = %v, want ~0.5", got[0].Value)
	}
	// A dribble of retransmits below the per-tick floor is not a storm.
	got = got[:0]
	for i := 0; i < 4; i++ {
		src.s.RecordsSent += 4
		src.s.Retransmits += 2
		src.s.AcksReceived += 1
		tick(m, &at, iv)
	}
	for _, v := range got {
		if v.Kind == RetransmitStorm && v.Raised {
			t.Fatalf("storm re-raised on sub-floor retransmits: %+v", v)
		}
	}
}

func TestMemoryGrowthRule(t *testing.T) {
	src := &fakeSource{}
	var got []Verdict
	m := NewMonitor(src, Options{
		Key: "t", Interval: time.Second, Window: 32,
		Rules:     RuleConfig{MemGrowthTicks: 5},
		OnVerdict: collectVerdicts(&got),
	})
	var at int64
	iv := int64(1e6)
	src.s.ConnsLive = 1
	// A big but flat allocation is not growth.
	src.s.MemoryBytes = 16 << 20
	for i := 0; i < 8; i++ {
		src.s.AcksReceived++
		tick(m, &at, iv)
	}
	if len(got) != 0 {
		t.Fatalf("flat memory diagnosed as growth: %+v", got)
	}
	// Monotone doubling above the floor trips.
	for i := 0; i < 6; i++ {
		src.s.MemoryBytes += 8 << 20
		src.s.AcksReceived++
		tick(m, &at, iv)
	}
	if len(got) == 0 || got[0].Kind != MemoryGrowth || !got[0].Raised {
		t.Fatalf("want memory_growth raise, got %+v", got)
	}
}

func TestPathAsymmetry(t *testing.T) {
	src := &fakeSource{}
	var got []Verdict
	m := NewMonitor(src, Options{
		Key: "t", Interval: time.Second, Window: 16,
		OnVerdict: collectVerdicts(&got),
	})
	var at int64
	iv := int64(1e6)
	src.s.ConnsLive = 2
	src.paths = []PathSample{{Conn: 1}, {Conn: 2}}
	// Both paths carry: no verdict.
	for i := 0; i < 4; i++ {
		src.paths[0].BytesSent += 1 << 20
		src.paths[1].BytesSent += 1 << 20
		src.s.BytesSent += 2 << 20
		src.s.AcksReceived += 10
		tick(m, &at, iv)
	}
	if len(got) != 0 {
		t.Fatalf("balanced paths diagnosed: %+v", got)
	}
	// Path 2 starves while path 1 keeps pushing.
	for i := 0; i < 3; i++ {
		src.paths[0].BytesSent += 1 << 20
		src.s.BytesSent += 1 << 20
		src.s.AcksReceived += 10
		tick(m, &at, iv)
	}
	if len(got) != 1 || got[0].Kind != PathAsymmetry || !got[0].Raised {
		t.Fatalf("want path_asymmetry raise, got %+v", got)
	}
	if got[0].Conn != 2 {
		t.Fatalf("implicated conn = %d, want 2 (the starved path)", got[0].Conn)
	}
	// A path that never carried data (pure control/ack path) does not
	// count: reset with a fresh monitor.
	src2 := &fakeSource{}
	var got2 []Verdict
	m2 := NewMonitor(src2, Options{
		Key: "t2", Interval: time.Second, Window: 16,
		OnVerdict: collectVerdicts(&got2),
	})
	at = 0
	src2.s.ConnsLive = 2
	src2.paths = []PathSample{{Conn: 1}, {Conn: 2}}
	for i := 0; i < 6; i++ {
		src2.paths[0].BytesSent += 1 << 20
		src2.s.BytesSent += 1 << 20
		src2.s.AcksReceived += 10
		tick(m2, &at, iv)
	}
	for _, v := range got2 {
		if v.Kind == PathAsymmetry {
			t.Fatalf("idle-from-birth path diagnosed as asymmetry: %+v", v)
		}
	}
}

func TestProcessRules(t *testing.T) {
	src := &fakeSource{}
	var got []Verdict
	m := NewMonitor(src, Options{
		Key: "process", Interval: time.Second, Window: 16, Process: true,
		OnVerdict: collectVerdicts(&got),
	})
	var at int64
	iv := int64(1e6)
	for i := 0; i < 3; i++ {
		src.s.ResumeAccepted += 10
		tick(m, &at, iv)
	}
	if len(got) != 0 {
		t.Fatalf("healthy resumption diagnosed: %+v", got)
	}
	// Spike: most attempts rejected, two ticks.
	for i := 0; i < 2; i++ {
		src.s.ResumeRejected += 8
		src.s.ResumeAccepted += 2
		tick(m, &at, iv)
	}
	if len(got) != 1 || got[0].Kind != ResumeFailureSpike || !got[0].Raised {
		t.Fatalf("want resume_failure_spike, got %+v", got)
	}
	// Admission pressure: rejects on three consecutive ticks.
	got = got[:0]
	for i := 0; i < 3; i++ {
		src.s.AdmissionRejected += 5
		tick(m, &at, iv)
	}
	found := false
	for _, v := range got {
		if v.Kind == AdmissionPressure && v.Raised {
			found = true
		}
	}
	if !found {
		t.Fatalf("want admission_pressure, got %+v", got)
	}
	// Stall/storm rules must not fire on a process monitor.
	for _, v := range got {
		if v.Kind == StallSuspected || v.Kind == RetransmitStorm {
			t.Fatalf("session rule on process monitor: %+v", v)
		}
	}
}

// TestPollAllocFree is the sampler's zero-alloc gate: after warmup, a
// steady-state poll (no new paths, no verdict transitions) performs no
// heap allocation — the PR-3 counter-gate discipline applied to the
// diagnosis layer.
func TestPollAllocFree(t *testing.T) {
	src := &fakeSource{}
	src.s.ConnsLive = 2
	src.paths = []PathSample{{Conn: 1, BytesSent: 1 << 20}, {Conn: 2, BytesSent: 1 << 20}}
	m := NewMonitor(src, Options{Key: "t", Interval: time.Second, Window: 32})
	var at int64
	for i := 0; i < 8; i++ {
		src.s.BytesSent += 4096
		src.s.AcksReceived += 4
		src.paths[0].BytesSent += 2048
		src.paths[1].BytesSent += 2048
		tick(m, &at, int64(1e6))
	}
	allocs := testing.AllocsPerRun(200, func() {
		src.s.BytesSent += 4096
		src.s.AcksReceived += 4
		src.paths[0].BytesSent += 2048
		src.paths[1].BytesSent += 2048
		tick(m, &at, int64(1e6))
	})
	if allocs != 0 {
		t.Fatalf("steady-state Poll allocates %.1f objects/op, want 0", allocs)
	}
}

func TestStatusSnapshot(t *testing.T) {
	src := &fakeSource{}
	src.s.ConnsLive = 1
	src.paths = []PathSample{{Conn: 1, SRTTUS: 1500}}
	m := NewMonitor(src, Options{Key: "k", Interval: time.Second, Window: 8})
	var at int64
	for i := 0; i < 4; i++ {
		src.s.BytesSent += 1 << 20
		src.s.AcksReceived += 10
		src.paths[0].BytesSent += 1 << 20
		tick(m, &at, int64(1e6))
	}
	st := m.Status()
	if st.Key != "k" || !st.Healthy || st.Ticks != 4 {
		t.Fatalf("status header: %+v", st)
	}
	if st.GoodputTxBps < 0.9*float64(1<<20) || st.GoodputTxBps > 1.1*float64(1<<20) {
		t.Fatalf("goodput = %v, want ~1 MiB/s", st.GoodputTxBps)
	}
	if len(st.Paths) != 1 || st.Paths[0].Conn != 1 || st.Paths[0].SRTTUS != 1500 {
		t.Fatalf("paths: %+v", st.Paths)
	}
}

// TestEngineLifecycle: the shared goroutine starts with the first
// monitor, polls it, and exits when the registry empties.
func TestEngineLifecycle(t *testing.T) {
	base := runtime.NumGoroutine()
	eng := NewEngine(5 * time.Millisecond)
	src := &fakeSource{}
	m := NewMonitor(src, Options{Key: "a", Interval: 5 * time.Millisecond})
	eng.Register("a", m)
	deadline := time.Now().Add(2 * time.Second)
	for m.Ticks() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Ticks() < 3 {
		t.Fatal("engine never polled the monitor")
	}
	eng.Unregister("a")
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("engine goroutine leaked: %d > base %d", runtime.NumGoroutine(), base)
}
