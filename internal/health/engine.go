package health

import (
	"sync"
	"time"
)

// Engine polls registered Monitors on a fixed wall-clock interval from
// one shared goroutine. The goroutine starts lazily with the first
// Register and exits as soon as the registry empties — between
// sessions the process runs no health goroutine at all, which keeps
// the test suite's goroutine-leak gates clean.
type Engine struct {
	interval time.Duration

	mu      sync.Mutex
	mons    map[string]*Monitor
	running bool
	wake    chan struct{}

	// scratch is the tick's monitor list, reused across ticks.
	scratch []*Monitor
}

// NewEngine returns an engine ticking every interval (min 1ms).
func NewEngine(interval time.Duration) *Engine {
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	return &Engine{
		interval: interval,
		mons:     make(map[string]*Monitor),
		wake:     make(chan struct{}, 1),
	}
}

// Interval reports the tick period.
func (e *Engine) Interval() time.Duration { return e.interval }

// Register adds m under key (replacing any previous holder) and starts
// the polling goroutine if it is not running.
func (e *Engine) Register(key string, m *Monitor) {
	e.mu.Lock()
	e.mons[key] = m
	if !e.running {
		e.running = true
		go e.loop()
	}
	e.mu.Unlock()
}

// Unregister removes key. It never blocks on an in-flight poll — a
// monitor may be polled once more after Unregister returns, so sources
// must stay safe to sample until they are garbage. When the registry
// empties the polling goroutine is woken to exit promptly.
func (e *Engine) Unregister(key string) {
	e.mu.Lock()
	delete(e.mons, key)
	empty := len(e.mons) == 0
	e.mu.Unlock()
	if empty {
		select {
		case e.wake <- struct{}{}:
		default:
		}
	}
}

func (e *Engine) loop() {
	ticker := time.NewTicker(e.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
		case <-e.wake:
		}
		e.mu.Lock()
		if len(e.mons) == 0 {
			e.running = false
			e.mu.Unlock()
			return
		}
		e.scratch = e.scratch[:0]
		for _, m := range e.mons {
			e.scratch = append(e.scratch, m)
		}
		list := e.scratch
		e.mu.Unlock()
		now := time.Now()
		for _, m := range list {
			m.Poll(now)
		}
	}
}
