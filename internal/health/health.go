// Package health is the continuous self-diagnosis engine: a
// low-overhead sampler that snapshots a session's (or the process's)
// telemetry on a fixed tick into bounded time-series rings, derives the
// rates and trends raw counters cannot express (goodput per path,
// retransmit ratio, reorder-depth slope, ACK-RTT drift, resumption
// acceptance, admission pressure), and runs a rule table with
// trip/clear hysteresis over the rings to emit typed Verdicts while the
// session is still alive — the in-situ half of the paper's
// observability story, complementing the post-mortem qlog analyzer.
//
// The design splits three ways:
//
//   - Monitor: one diagnosed entity (a session, or the process rollup).
//     Poll(now) pulls one Sample from the entity's Source, pushes the
//     derived series, and evaluates the rules. Steady-state polls are
//     zero-alloc; allocation is permitted only on verdict transitions,
//     which are rare by construction (hysteresis).
//   - Engine: one process-wide goroutine ticking every registered
//     Monitor on a fixed interval. It starts lazily with the first
//     Register and exits when the last Monitor unregisters, so
//     goroutine-leak gates see nothing between sessions.
//   - Verdict sinks are the caller's: the OnVerdict callback fires on
//     every raise/clear transition with the evidence window attached,
//     and the optional Metrics handle mirrors verdict state into
//     tcpls_health_* Prometheus families.
//
// Deterministic harnesses (internal/fleet) construct Monitors directly
// and Poll them from a virtual clock; the Engine is only for wall-time
// processes.
package health

import "fmt"

// Kind enumerates the diagnosis verdicts.
type Kind uint8

const (
	// Healthy is emitted on the transition back to no active verdicts.
	Healthy Kind = iota
	// StallSuspected: the session holds unacknowledged send data on a
	// live connection but neither acknowledgments nor inbound bytes
	// have progressed for the trip window — the path is moving nothing
	// in either direction.
	StallSuspected
	// RetransmitStorm: the retransmit-to-send ratio has exceeded the
	// configured fraction for consecutive ticks.
	RetransmitStorm
	// MemoryGrowth: buffered memory has grown monotonically across the
	// observation window, is above the absolute floor, and has at
	// least doubled — the signature of a leak or an unbounded queue,
	// as opposed to a workload burst.
	MemoryGrowth
	// PathAsymmetry: two live paths that have both carried data differ
	// in instantaneous goodput by more than the configured ratio —
	// one path of the aggregate is effectively dead weight.
	PathAsymmetry
	// ResumeFailureSpike: the process is rejecting more than the
	// configured fraction of resumption attempts (process monitor).
	ResumeFailureSpike
	// AdmissionPressure: the process has shed connections at the
	// admission edge for consecutive ticks (process monitor).
	AdmissionPressure

	numKinds
)

// String returns the snake_case verdict name; it doubles as the qlog
// event type under the "health" category.
func (k Kind) String() string {
	switch k {
	case Healthy:
		return "healthy"
	case StallSuspected:
		return "stall_suspected"
	case RetransmitStorm:
		return "retransmit_storm"
	case MemoryGrowth:
		return "memory_growth"
	case PathAsymmetry:
		return "path_asymmetry"
	case ResumeFailureSpike:
		return "resume_failure_spike"
	case AdmissionPressure:
		return "admission_pressure"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindNames lists every verdict name, Healthy first — the label set the
// Prometheus families pre-resolve.
func KindNames() []string {
	out := make([]string, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out[k] = k.String()
	}
	return out
}

// KindFromString is the inverse of Kind.String; ok reports whether name
// is a verdict name (qlog analyzers use it to pick health events out of
// a mixed stream).
func KindFromString(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Verdict is one diagnosis transition: a rule tripping (Raised) or
// clearing after its hysteresis window. Transitions are rare, so a
// Verdict may carry allocated evidence.
type Verdict struct {
	Kind Kind `json:"-"`
	// Name is Kind.String(), duplicated for JSON consumers.
	Name string `json:"kind"`
	// Key identifies the monitored entity (session debug key, or
	// "process").
	Key string `json:"key"`
	// Raised is true when the rule trips, false when it clears.
	Raised bool `json:"raised"`
	// Conn is the implicated connection for path-scoped verdicts
	// (PathAsymmetry names the starved path); 0 otherwise.
	Conn uint32 `json:"conn,omitempty"`
	// AtUS is the transition time, SinceUS the time the rule first
	// tripped (for clears, AtUS-SinceUS is how long it was active).
	AtUS    int64 `json:"at_us"`
	SinceUS int64 `json:"since_us"`
	// Value is the headline evidence scalar: outstanding bytes for a
	// stall, the ratio for a storm or asymmetry, bytes for memory
	// growth, the rejected fraction for a resume spike.
	Value float64 `json:"value"`
	// Metric names the series Evidence was copied from.
	Metric string `json:"metric,omitempty"`
	// Evidence is the observation window that tripped the rule
	// (raises only), oldest first.
	Evidence []Point `json:"evidence,omitempty"`
	// Detail is a one-line human-readable summary.
	Detail string `json:"detail"`
}
