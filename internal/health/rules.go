package health

// RuleConfig sets the diagnosis thresholds and hysteresis windows. The
// zero value means every default; fields are counted in ticks of the
// monitor's sampling interval, so wall-clock sensitivity scales with
// the tick. Defaults are chosen for the 1s production tick: a stall
// verdict after 3s of zero progress, cleared after 2s of recovery.
type RuleConfig struct {
	// StallTicks consecutive ticks with unacknowledged data on a live
	// connection and zero ack/receive progress raise StallSuspected;
	// StallClearTicks ticks of progress (or drained data) clear it.
	StallTicks      int
	StallClearTicks int
	// StallMinOutstanding is the minimum unacknowledged byte count for
	// a stall to be suspected (sub-record dribbles don't count).
	StallMinOutstanding int

	// StormRatio is the retransmit-to-sent record fraction that counts
	// a tick as storming, once at least StormMinRetx retransmits
	// happened in the tick. StormTicks/StormClearTicks hysteresis.
	StormRatio      float64
	StormMinRetx    uint64
	StormTicks      int
	StormClearTicks int

	// MemGrowthTicks is the monotone-growth observation window;
	// MemGrowthFactor the minimum growth over it; MemGrowthFloor the
	// absolute byte level below which growth is never diagnosed.
	MemGrowthTicks      int
	MemGrowthFactor     float64
	MemGrowthFloor      int64
	MemGrowthClearTicks int

	// AsymRatio is the goodput ratio between the busiest and quietest
	// live data-carrying paths that counts a tick as asymmetric; the
	// busiest path must also move at least AsymMinBps.
	AsymRatio      float64
	AsymMinBps     float64
	AsymTicks      int
	AsymClearTicks int

	// ResumeFailFrac is the rejected fraction of resumption attempts
	// (per tick, given at least ResumeMinAttempts) that counts as a
	// spike. Process monitors only.
	ResumeFailFrac   float64
	ResumeMinAttempts uint64
	ResumeTicks      int
	ResumeClearTicks int

	// AdmitTicks consecutive ticks with admission rejections raise
	// AdmissionPressure. Process monitors only.
	AdmitTicks      int
	AdmitClearTicks int
}

// withDefaults returns c with zero fields replaced by the defaults.
func (c RuleConfig) withDefaults() RuleConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.StallTicks, 3)
	def(&c.StallClearTicks, 2)
	def(&c.StallMinOutstanding, 1)
	if c.StormRatio == 0 {
		c.StormRatio = 0.3
	}
	if c.StormMinRetx == 0 {
		c.StormMinRetx = 8
	}
	def(&c.StormTicks, 2)
	def(&c.StormClearTicks, 2)
	def(&c.MemGrowthTicks, 10)
	if c.MemGrowthFactor == 0 {
		c.MemGrowthFactor = 2.0
	}
	if c.MemGrowthFloor == 0 {
		c.MemGrowthFloor = 4 << 20
	}
	def(&c.MemGrowthClearTicks, 2)
	if c.AsymRatio == 0 {
		c.AsymRatio = 20
	}
	if c.AsymMinBps == 0 {
		c.AsymMinBps = 64 << 10
	}
	def(&c.AsymTicks, 3)
	def(&c.AsymClearTicks, 3)
	if c.ResumeFailFrac == 0 {
		c.ResumeFailFrac = 0.5
	}
	if c.ResumeMinAttempts == 0 {
		c.ResumeMinAttempts = 4
	}
	def(&c.ResumeTicks, 2)
	def(&c.ResumeClearTicks, 2)
	def(&c.AdmitTicks, 3)
	def(&c.AdmitClearTicks, 2)
	return c
}

// trip is one rule's hysteresis state machine: `need` consecutive bad
// ticks raise, `clear` consecutive good ticks clear. update returns
// which transition (if either) happened this tick.
type trip struct {
	active bool
	bad    int
	good   int
	// sinceUS stamps the raise time while active.
	sinceUS int64
	// conn/value freeze the implicated connection and headline scalar
	// at raise time.
	conn  uint32
	value float64
}

func (t *trip) update(bad bool, atUS int64, need, clear int) (raised, cleared bool) {
	if bad {
		t.good = 0
		t.bad++
		if !t.active && t.bad >= need {
			t.active = true
			t.sinceUS = atUS
			return true, false
		}
		return false, false
	}
	t.bad = 0
	if !t.active {
		return false, false
	}
	t.good++
	if t.good >= clear {
		t.active = false
		t.good = 0
		return false, true
	}
	return false, false
}
