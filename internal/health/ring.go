package health

// Point is one time-series observation.
type Point struct {
	AtUS int64   `json:"at_us"`
	V    float64 `json:"v"`
}

// Series is a fixed-capacity time-series ring. Push never allocates
// after construction; when full, the oldest point is overwritten. All
// methods are unsynchronized — the owning Monitor serializes access.
type Series struct {
	buf  []Point
	head int // index of the oldest point
	n    int
}

// NewSeries returns a ring holding the last capacity points.
func NewSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{buf: make([]Point, capacity)}
}

// Push appends an observation, evicting the oldest at capacity.
func (s *Series) Push(atUS int64, v float64) {
	if s.n < len(s.buf) {
		s.buf[(s.head+s.n)%len(s.buf)] = Point{AtUS: atUS, V: v}
		s.n++
		return
	}
	s.buf[s.head] = Point{AtUS: atUS, V: v}
	s.head = (s.head + 1) % len(s.buf)
}

// Len reports the number of held points.
func (s *Series) Len() int { return s.n }

// Cap reports the ring capacity.
func (s *Series) Cap() int { return len(s.buf) }

// At returns the i-th point, 0 = oldest. Panics out of range.
func (s *Series) At(i int) Point {
	if i < 0 || i >= s.n {
		panic("health: series index out of range")
	}
	return s.buf[(s.head+i)%len(s.buf)]
}

// Last returns the newest point; ok is false on an empty ring.
func (s *Series) Last() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	return s.At(s.n - 1), true
}

// AppendWindow appends the newest window points (all, if fewer) to dst,
// oldest first. Allocation-free when dst has capacity — callers reuse
// scratch or accept the copy on verdict transitions.
func (s *Series) AppendWindow(dst []Point, window int) []Point {
	if window > s.n {
		window = s.n
	}
	for i := s.n - window; i < s.n; i++ {
		dst = append(dst, s.At(i))
	}
	return dst
}

// Slope fits a least-squares line over the newest window points and
// returns its slope in units per second. Zero when the window spans no
// time or fewer than two points.
func (s *Series) Slope(window int) float64 {
	if window > s.n {
		window = s.n
	}
	if window < 2 {
		return 0
	}
	start := s.n - window
	t0 := s.At(start).AtUS
	var sumX, sumY, sumXX, sumXY float64
	for i := start; i < s.n; i++ {
		p := s.At(i)
		x := float64(p.AtUS-t0) / 1e6
		sumX += x
		sumY += p.V
		sumXX += x * x
		sumXY += x * p.V
	}
	n := float64(window)
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / den
}

// Mean averages the newest window points (0 on an empty ring).
func (s *Series) Mean(window int) float64 {
	if window > s.n {
		window = s.n
	}
	if window == 0 {
		return 0
	}
	var sum float64
	for i := s.n - window; i < s.n; i++ {
		sum += s.At(i).V
	}
	return sum / float64(window)
}

// monotoneGrowth reports whether the newest window points never
// decrease and end at least factor times where they started. Used by
// the MemoryGrowth rule: a sustained ramp, not a burst.
func (s *Series) monotoneGrowth(window int, factor float64) bool {
	if window > s.n || window < 2 {
		return false
	}
	start := s.n - window
	first := s.At(start).V
	prev := first
	for i := start + 1; i < s.n; i++ {
		v := s.At(i).V
		if v < prev {
			return false
		}
		prev = v
	}
	return prev >= first*factor
}
