package health

// Status is the JSON shape served on /debug/tcpls/health: the latest
// derived rates, active and recent verdicts, and per-path breakdown.
// Built on the HTTP path, so it allocates freely.
type Status struct {
	Key        string `json:"key"`
	Process    bool   `json:"process,omitempty"`
	IntervalUS int64  `json:"interval_us"`
	Ticks      uint64 `json:"ticks"`
	AtUS       int64  `json:"at_us"`

	Healthy bool `json:"healthy"`

	GoodputTxBps    float64 `json:"goodput_tx_bps"`
	GoodputRxBps    float64 `json:"goodput_rx_bps"`
	RetransmitRatio float64 `json:"retransmit_ratio"`
	ReorderDepth    float64 `json:"reorder_depth"`
	ReorderSlope    float64 `json:"reorder_slope_per_s"`
	AckRTTUS        float64 `json:"ack_rtt_us"`
	MemoryBytes     int64   `json:"memory_bytes"`
	ConnsLive       int     `json:"conns_live"`
	StreamsOpen     int     `json:"streams_open"`

	Active []Verdict `json:"active"`
	Recent []Verdict `json:"recent,omitempty"`

	Paths []PathStatus `json:"paths,omitempty"`

	// Rollup carries entity-specific operator counters (the process
	// monitor surfaces resumption, early-data, ticket-rotation, and
	// admission families here).
	Rollup map[string]float64 `json:"rollup,omitempty"`
}

// PathStatus is one connection's row in a Status.
type PathStatus struct {
	Conn         uint32  `json:"conn"`
	Failed       bool    `json:"failed,omitempty"`
	GoodputTxBps float64 `json:"goodput_tx_bps"`
	SRTTUS       float64 `json:"srtt_us"`
	DeliveryRate float64 `json:"delivery_rate_bps,omitempty"`
	BytesSent    uint64  `json:"bytes_sent"`
}

// Status snapshots the monitor for the JSON endpoint.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Key:        m.opt.Key,
		Process:    m.opt.Process,
		IntervalUS: m.opt.Interval.Microseconds(),
		Ticks:      m.ticks,
		Healthy:    m.activeCount == 0,
	}
	if m.havePrev {
		st.AtUS = m.prev.AtUS
		st.ConnsLive = m.prev.ConnsLive
		st.StreamsOpen = m.prev.StreamsOpen
		st.MemoryBytes = int64(m.prev.MemoryBytes)
	}
	if v, ok := m.goodTx.Last(); ok {
		st.GoodputTxBps = v.V
	}
	if v, ok := m.goodRx.Last(); ok {
		st.GoodputRxBps = v.V
	}
	if v, ok := m.retxRatio.Last(); ok {
		st.RetransmitRatio = v.V
	}
	if v, ok := m.reorder.Last(); ok {
		st.ReorderDepth = v.V
	}
	st.ReorderSlope = m.reorder.Slope(m.reorder.Len())
	if v, ok := m.ackRTT.Last(); ok {
		st.AckRTTUS = v.V
	}
	st.Active = make([]Verdict, 0, int(numKinds))
	for k := Kind(1); k < numKinds; k++ {
		t := &m.trips[k]
		if !t.active {
			continue
		}
		st.Active = append(st.Active, Verdict{
			Kind:    k,
			Name:    k.String(),
			Key:     m.opt.Key,
			Raised:  true,
			Conn:    t.conn,
			AtUS:    st.AtUS,
			SinceUS: t.sinceUS,
			Value:   t.value,
			Metric:  seriesName(k),
			Detail:  detail(k, t.conn, t.value),
		})
	}
	st.Recent = append([]Verdict(nil), m.recent...)
	for _, ps := range m.paths {
		row := PathStatus{
			Conn:         ps.conn,
			Failed:       ps.last.Failed,
			SRTTUS:       float64(ps.last.SRTTUS),
			DeliveryRate: ps.last.DeliveryRate,
			BytesSent:    ps.last.BytesSent,
		}
		if v, ok := ps.goodTx.Last(); ok {
			row.GoodputTxBps = v.V
		}
		st.Paths = append(st.Paths, row)
	}
	sortPaths(st.Paths)
	if rs, ok := m.src.(RollupSource); ok {
		// Release the lock around the rollup call: the source may take
		// registry locks of its own and needs nothing of ours.
		m.mu.Unlock()
		rollup := rs.HealthRollup()
		m.mu.Lock()
		st.Rollup = rollup
	}
	return st
}

func sortPaths(p []PathStatus) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j-1].Conn > p[j].Conn; j-- {
			p[j-1], p[j] = p[j], p[j-1]
		}
	}
}
