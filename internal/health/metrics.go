package health

import "tcpls/internal/telemetry"

// Families bundles the tcpls_health_* metric families. Like the
// transport families, handles are pre-resolved per monitored entity so
// the sampler's hot path is a few atomic stores.
type Families struct {
	ticks    *telemetry.CounterVec
	verdicts *telemetry.CounterVec
	active   *telemetry.GaugeVec
	goodput  *telemetry.GaugeVec
	retx     *telemetry.GaugeVec
	ackRTT   *telemetry.GaugeVec
	memory   *telemetry.GaugeVec
}

// NewFamilies registers (or re-resolves) the health families on r.
func NewFamilies(r *telemetry.Registry) *Families {
	return &Families{
		ticks: r.CounterVec("tcpls_health_ticks_total",
			"Health sampler ticks completed.", "key"),
		verdicts: r.CounterVec("tcpls_health_verdicts_total",
			"Health verdict raises by kind.", "key", "kind"),
		active: r.GaugeVec("tcpls_health_active",
			"1 while the verdict kind is currently raised.", "key", "kind"),
		goodput: r.GaugeVec("tcpls_health_goodput_bps",
			"Derived goodput over the last sampler tick, bytes/s.", "key", "dir"),
		retx: r.GaugeVec("tcpls_health_retransmit_permille",
			"Retransmits per thousand sent records over the last tick.", "key"),
		ackRTT: r.GaugeVec("tcpls_health_ack_rtt_us",
			"Windowed mean record-acknowledgment RTT, microseconds.", "key"),
		memory: r.GaugeVec("tcpls_health_memory_bytes",
			"Buffered memory as sampled by the health monitor.", "key"),
	}
}

// Metrics is one entity's pre-resolved handle block.
type Metrics struct {
	Ticks             *telemetry.Counter
	GoodputTx         *telemetry.Gauge
	GoodputRx         *telemetry.Gauge
	RetxRatioPermille *telemetry.Gauge
	AckRTTUS          *telemetry.Gauge
	MemoryBytes       *telemetry.Gauge
	Verdicts          [numKinds]*telemetry.Counter
	Active            [numKinds]*telemetry.Gauge
}

// Entity resolves the handle block for key.
func (f *Families) Entity(key string) *Metrics {
	m := &Metrics{
		Ticks:             f.ticks.With(key),
		GoodputTx:         f.goodput.With(key, "tx"),
		GoodputRx:         f.goodput.With(key, "rx"),
		RetxRatioPermille: f.retx.With(key),
		AckRTTUS:          f.ackRTT.With(key),
		MemoryBytes:       f.memory.With(key),
	}
	for k := Kind(0); k < numKinds; k++ {
		m.Verdicts[k] = f.verdicts.With(key, k.String())
		m.Active[k] = f.active.With(key, k.String())
	}
	return m
}
