package health

import (
	"fmt"
	"sync"
	"time"
)

// Sample is one raw observation of the monitored entity. Sources fill
// the struct in place (counters cumulative, gauges instantaneous) and
// append per-path rows into Paths, reusing its backing array — the
// whole pull is allocation-free in steady state.
type Sample struct {
	AtUS int64

	// Cumulative transport counters.
	BytesSent       uint64
	BytesReceived   uint64
	RecordsSent     uint64
	RecordsReceived uint64
	AcksReceived    uint64
	Retransmits     uint64

	// Cumulative ACK-RTT histogram aggregate (count + sum in seconds),
	// for windowed-mean drift tracking.
	AckRTTCount  uint64
	AckRTTSumSec float64

	// Instantaneous gauges.
	OutstandingBytes int // unacknowledged send data (retransmit buffer)
	MemoryBytes      int // total buffered memory
	ReorderDepth     int
	ConnsLive        int
	StreamsOpen      int

	// Process-monitor counters (cumulative; zero for sessions).
	ResumeAccepted    uint64
	ResumeRejected    uint64
	AdmissionRejected uint64

	// Paths holds one row per live connection.
	Paths []PathSample
}

// PathSample is one connection's slice of a Sample.
type PathSample struct {
	Conn          uint32
	Failed        bool
	BytesSent     uint64
	BytesReceived uint64
	Retransmits   uint64
	SRTTUS        int64
	DeliveryRate  float64 // bytes/s, scheduler's estimate (0 if none)
}

// reset clears s for refilling, keeping the Paths backing array.
func (s *Sample) reset() {
	paths := s.Paths[:0]
	*s = Sample{Paths: paths}
}

// Source supplies Samples. HealthSample must fill s completely (it is
// reused between polls) and may take the entity's own locks; it is
// called from the monitor's polling goroutine only.
type Source interface {
	HealthSample(s *Sample)
}

// RollupSource is an optional Source extension: entities with
// operator-facing counters beyond the Sample schema (resumption and
// ticket-rotation families on the process monitor) expose them for the
// /debug/tcpls/health rollup. Called on the HTTP path, so it may
// allocate.
type RollupSource interface {
	HealthRollup() map[string]float64
}

// Options configures a Monitor.
type Options struct {
	// Key names the entity in verdicts and metrics ("process", or the
	// session's debug key).
	Key string
	// Interval is the expected polling period (informational: it sizes
	// rate math fallbacks and the Status report; the caller drives the
	// actual polling).
	Interval time.Duration
	// Window is the ring capacity in ticks (default 60: one minute of
	// history at the 1s production tick).
	Window int
	// Rules overrides diagnosis thresholds; zero fields take defaults.
	Rules RuleConfig
	// Process enables the process-level rules (ResumeFailureSpike,
	// AdmissionPressure) and disables the per-session ones.
	Process bool
	// OnVerdict, when set, receives every verdict transition, called
	// from Poll with the monitor lock held — keep it bounded. The
	// session wiring uses it to stamp qlog/flight events.
	OnVerdict func(Verdict)
	// Metrics, when set, mirrors ticks, derived gauges, and verdict
	// state into the tcpls_health_* Prometheus families.
	Metrics *Metrics
}

// pathSeries is the per-connection ring set.
type pathSeries struct {
	conn     uint32
	goodTx   *Series
	srtt     *Series
	last     PathSample
	lastSeen uint64 // tick counter stamp, for staleness sweep
	everSent bool
}

// Monitor diagnoses one entity. Construct with NewMonitor, then drive
// with Poll — from the shared Engine in production, or directly from a
// virtual clock in deterministic harnesses.
type Monitor struct {
	mu  sync.Mutex
	src Source
	opt Options

	cur, prev Sample
	havePrev  bool
	ticks     uint64

	// Derived rings.
	goodTx    *Series // bytes/s sent
	goodRx    *Series // bytes/s received
	progress  *Series // bytes/s of ack+receive progress (stall evidence)
	retxRatio *Series // retransmits per sent record, per tick
	reorder   *Series // reorder heap depth
	mem       *Series // buffered bytes
	ackRTT    *Series // windowed ACK-RTT mean, µs
	resumeRej *Series // rejected fraction of resumption attempts
	admitRej  *Series // admission rejections/s

	paths map[uint32]*pathSeries

	trips [numKinds]trip
	// activeCount tracks raised verdicts for the Healthy transition.
	activeCount int
	everRaised  bool

	// recent keeps the last verdict transitions for Status.
	recent    []Verdict
	recentCap int
}

// NewMonitor builds a Monitor over src.
func NewMonitor(src Source, opt Options) *Monitor {
	if opt.Window <= 0 {
		opt.Window = 60
	}
	if opt.Interval <= 0 {
		opt.Interval = time.Second
	}
	opt.Rules = opt.Rules.withDefaults()
	m := &Monitor{
		src:       src,
		opt:       opt,
		goodTx:    NewSeries(opt.Window),
		goodRx:    NewSeries(opt.Window),
		progress:  NewSeries(opt.Window),
		retxRatio: NewSeries(opt.Window),
		reorder:   NewSeries(opt.Window),
		mem:       NewSeries(opt.Window),
		ackRTT:    NewSeries(opt.Window),
		resumeRej: NewSeries(opt.Window),
		admitRej:  NewSeries(opt.Window),
		paths:     make(map[uint32]*pathSeries, 4),
		recentCap: 32,
	}
	return m
}

// Key returns the monitor's entity key.
func (m *Monitor) Key() string { return m.opt.Key }

// Poll pulls one sample and runs the diagnosis pass. Zero-alloc in
// steady state (no new paths, no verdict transitions).
func (m *Monitor) Poll(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur.reset()
	m.cur.AtUS = now.UnixNano() / 1000
	m.src.HealthSample(&m.cur)
	m.ingestLocked()
	m.diagnoseLocked()
	m.stashPrevLocked()
	m.ticks++
	if mt := m.opt.Metrics; mt != nil {
		mt.Ticks.Inc()
	}
}

// ingestLocked pushes the derived series for the current sample.
func (m *Monitor) ingestLocked() {
	at := m.cur.AtUS
	m.reorder.Push(at, float64(m.cur.ReorderDepth))
	m.mem.Push(at, float64(m.cur.MemoryBytes))
	if !m.havePrev {
		return
	}
	dt := float64(at-m.prev.AtUS) / 1e6
	if dt <= 0 {
		dt = m.opt.Interval.Seconds()
	}
	dTx := float64(m.cur.BytesSent - m.prev.BytesSent)
	dRx := float64(m.cur.BytesReceived - m.prev.BytesReceived)
	dAcks := float64(m.cur.AcksReceived - m.prev.AcksReceived)
	m.goodTx.Push(at, dTx/dt)
	m.goodRx.Push(at, dRx/dt)
	m.progress.Push(at, (dRx+dAcks)/dt)
	dSent := m.cur.RecordsSent - m.prev.RecordsSent
	dRetx := m.cur.Retransmits - m.prev.Retransmits
	ratio := 0.0
	if dSent > 0 || dRetx > 0 {
		ratio = float64(dRetx) / float64(max64(dSent, 1))
	}
	m.retxRatio.Push(at, ratio)
	if dc := m.cur.AckRTTCount - m.prev.AckRTTCount; dc > 0 {
		meanUS := (m.cur.AckRTTSumSec - m.prev.AckRTTSumSec) / float64(dc) * 1e6
		m.ackRTT.Push(at, meanUS)
	} else if last, ok := m.ackRTT.Last(); ok {
		// Carry the last mean so the ring stays time-aligned across
		// quiet ticks.
		m.ackRTT.Push(at, last.V)
	}
	if m.opt.Process {
		att := (m.cur.ResumeAccepted + m.cur.ResumeRejected) -
			(m.prev.ResumeAccepted + m.prev.ResumeRejected)
		frac := 0.0
		if att > 0 {
			frac = float64(m.cur.ResumeRejected-m.prev.ResumeRejected) / float64(att)
		}
		m.resumeRej.Push(at, frac)
		m.admitRej.Push(at, float64(m.cur.AdmissionRejected-m.prev.AdmissionRejected)/dt)
	}
	// Per-path rings: find the previous row for each current path by
	// connection ID (paths map), push the tick's goodput and SRTT.
	for i := range m.cur.Paths {
		p := &m.cur.Paths[i]
		ps := m.paths[p.Conn]
		if ps == nil {
			ps = &pathSeries{
				conn:     p.Conn,
				goodTx:   NewSeries(m.opt.Window),
				srtt:     NewSeries(m.opt.Window),
				lastSeen: ^uint64(0), // fresh: no delta on first sight
			}
			m.paths[p.Conn] = ps
		}
		if ps.lastSeen == m.ticks-1 || ps.lastSeen == m.ticks {
			ps.goodTx.Push(at, float64(p.BytesSent-ps.last.BytesSent)/dt)
		} else {
			// First sight (or re-sight after absence): no delta yet.
			ps.goodTx.Push(at, 0)
		}
		ps.srtt.Push(at, float64(p.SRTTUS))
		ps.last = *p
		ps.lastSeen = m.ticks
		if p.BytesSent > 0 {
			ps.everSent = true
		}
	}
	// Sweep paths gone from the sample (connection closed).
	if len(m.paths) > len(m.cur.Paths) {
		for id, ps := range m.paths {
			if ps.lastSeen != m.ticks {
				delete(m.paths, id)
			}
		}
	}
	if mt := m.opt.Metrics; mt != nil {
		if v, ok := m.goodTx.Last(); ok {
			mt.GoodputTx.Set(int64(v.V))
		}
		if v, ok := m.goodRx.Last(); ok {
			mt.GoodputRx.Set(int64(v.V))
		}
		mt.RetxRatioPermille.Set(int64(ratio * 1000))
		mt.MemoryBytes.Set(int64(m.cur.MemoryBytes))
		if v, ok := m.ackRTT.Last(); ok {
			mt.AckRTTUS.Set(int64(v.V))
		}
	}
}

// stashPrevLocked copies the current sample (including paths) into
// prev, reusing prev's backing array.
func (m *Monitor) stashPrevLocked() {
	paths := m.prev.Paths[:0]
	m.prev = m.cur
	m.prev.Paths = append(paths, m.cur.Paths...)
	m.havePrev = true
}

// diagnoseLocked runs the rule table over the rings and emits verdict
// transitions.
func (m *Monitor) diagnoseLocked() {
	if !m.havePrev {
		return
	}
	at := m.cur.AtUS
	r := &m.opt.Rules
	if !m.opt.Process {
		// StallSuspected: outstanding data on a live connection, zero
		// ack/receive progress this tick.
		dAcks := m.cur.AcksReceived - m.prev.AcksReceived
		dRx := m.cur.BytesReceived - m.prev.BytesReceived
		stall := m.cur.ConnsLive > 0 &&
			m.cur.OutstandingBytes >= r.StallMinOutstanding &&
			dAcks == 0 && dRx == 0
		m.runRule(StallSuspected, stall, at, r.StallTicks, r.StallClearTicks,
			0, float64(m.cur.OutstandingBytes), m.progress, r.StallTicks)

		// RetransmitStorm: sustained retransmit-heavy ticks.
		dRetx := m.cur.Retransmits - m.prev.Retransmits
		dSent := m.cur.RecordsSent - m.prev.RecordsSent
		ratio := float64(dRetx) / float64(max64(dSent, 1))
		storm := dRetx >= r.StormMinRetx && ratio > r.StormRatio
		m.runRule(RetransmitStorm, storm, at, r.StormTicks, r.StormClearTicks,
			0, ratio, m.retxRatio, r.StormTicks)

		// PathAsymmetry: among live paths that have ever carried data,
		// the busiest outruns the quietest by the configured ratio.
		if len(m.paths) >= 2 {
			var maxRate, minRate float64
			var minConn uint32
			count := 0
			for _, ps := range m.paths {
				if ps.last.Failed || !ps.everSent {
					continue
				}
				v, ok := ps.goodTx.Last()
				if !ok {
					continue
				}
				if count == 0 || v.V > maxRate {
					maxRate = v.V
				}
				if count == 0 || v.V < minRate {
					minRate = v.V
					minConn = ps.conn
				}
				count++
			}
			asym := count >= 2 && maxRate >= r.AsymMinBps &&
				maxRate >= r.AsymRatio*(minRate+1)
			ratio := 0.0
			if asym {
				ratio = maxRate / (minRate + 1)
			}
			m.runRule(PathAsymmetry, asym, at, r.AsymTicks, r.AsymClearTicks,
				minConn, ratio, m.goodTx, r.AsymTicks)
		} else {
			m.runRule(PathAsymmetry, false, at, r.AsymTicks, r.AsymClearTicks,
				0, 0, m.goodTx, r.AsymTicks)
		}
	}

	// MemoryGrowth applies to sessions and the process alike.
	last, _ := m.mem.Last()
	growth := last.V >= float64(r.MemGrowthFloor) &&
		m.mem.monotoneGrowth(r.MemGrowthTicks, r.MemGrowthFactor)
	m.runRule(MemoryGrowth, growth, at, 1, r.MemGrowthClearTicks,
		0, last.V, m.mem, r.MemGrowthTicks)

	if m.opt.Process {
		att := (m.cur.ResumeAccepted + m.cur.ResumeRejected) -
			(m.prev.ResumeAccepted + m.prev.ResumeRejected)
		dRej := m.cur.ResumeRejected - m.prev.ResumeRejected
		spike := att >= r.ResumeMinAttempts && float64(dRej) >= r.ResumeFailFrac*float64(att)
		frac := 0.0
		if att > 0 {
			frac = float64(dRej) / float64(att)
		}
		m.runRule(ResumeFailureSpike, spike, at, r.ResumeTicks, r.ResumeClearTicks,
			0, frac, m.resumeRej, r.ResumeTicks)

		pressure := m.cur.AdmissionRejected > m.prev.AdmissionRejected
		rate, _ := m.admitRej.Last()
		m.runRule(AdmissionPressure, pressure, at, r.AdmitTicks, r.AdmitClearTicks,
			0, rate.V, m.admitRej, r.AdmitTicks)
	}
}

// runRule advances one rule's hysteresis and emits on transitions.
func (m *Monitor) runRule(kind Kind, bad bool, atUS int64, need, clear int,
	conn uint32, value float64, evidence *Series, window int) {
	t := &m.trips[kind]
	raised, cleared := t.update(bad, atUS, need, clear)
	if raised {
		t.conn = conn
		t.value = value
		m.activeCount++
		m.everRaised = true
		v := Verdict{
			Kind:    kind,
			Name:    kind.String(),
			Key:     m.opt.Key,
			Raised:  true,
			Conn:    conn,
			AtUS:    atUS,
			SinceUS: t.sinceUS,
			Value:   value,
			Metric:  seriesName(kind),
			Detail:  detail(kind, conn, value),
		}
		if evidence != nil {
			v.Evidence = evidence.AppendWindow(make([]Point, 0, window), window)
		}
		m.emitLocked(v)
		return
	}
	if t.active {
		// Refresh the headline scalar while active so Status shows the
		// latest evidence, not the raise-time value.
		if bad {
			t.value = value
			if conn != 0 {
				t.conn = conn
			}
		}
	}
	if cleared {
		m.activeCount--
		m.emitLocked(Verdict{
			Kind:    kind,
			Name:    kind.String(),
			Key:     m.opt.Key,
			Raised:  false,
			Conn:    t.conn,
			AtUS:    atUS,
			SinceUS: t.sinceUS,
			Value:   t.value,
			Detail:  detail(kind, t.conn, t.value) + " (cleared)",
		})
		if m.activeCount == 0 && m.everRaised {
			m.emitLocked(Verdict{
				Kind:    Healthy,
				Name:    Healthy.String(),
				Key:     m.opt.Key,
				Raised:  true,
				AtUS:    atUS,
				SinceUS: atUS,
				Detail:  "all verdicts cleared",
			})
		}
	}
}

// emitLocked records a transition and fans it to the configured sinks.
func (m *Monitor) emitLocked(v Verdict) {
	if len(m.recent) >= m.recentCap {
		copy(m.recent, m.recent[1:])
		m.recent = m.recent[:len(m.recent)-1]
	}
	m.recent = append(m.recent, v)
	if mt := m.opt.Metrics; mt != nil && v.Kind < numKinds {
		if v.Raised {
			mt.Verdicts[v.Kind].Inc()
		}
		if v.Kind != Healthy {
			if v.Raised {
				mt.Active[v.Kind].Set(1)
			} else {
				mt.Active[v.Kind].Set(0)
			}
		}
	}
	if m.opt.OnVerdict != nil {
		m.opt.OnVerdict(v)
	}
}

// ActiveVerdicts appends the currently-raised verdict kinds to dst.
func (m *Monitor) ActiveVerdicts(dst []Kind) []Kind {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := Kind(1); k < numKinds; k++ {
		if m.trips[k].active {
			dst = append(dst, k)
		}
	}
	return dst
}

// Ticks reports completed polls.
func (m *Monitor) Ticks() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}

func detail(kind Kind, conn uint32, value float64) string {
	switch kind {
	case StallSuspected:
		return fmt.Sprintf("no ack/receive progress with %d bytes outstanding", int64(value))
	case RetransmitStorm:
		return fmt.Sprintf("retransmit ratio %.2f", value)
	case MemoryGrowth:
		return fmt.Sprintf("buffered memory ramping, now %d bytes", int64(value))
	case PathAsymmetry:
		return fmt.Sprintf("conn %d starved, goodput ratio %.0fx", conn, value)
	case ResumeFailureSpike:
		return fmt.Sprintf("resumption rejected fraction %.2f", value)
	case AdmissionPressure:
		return fmt.Sprintf("admission rejecting %.1f conns/s", value)
	}
	return kind.String()
}

// seriesName maps a verdict kind to its evidence series name.
func seriesName(kind Kind) string {
	switch kind {
	case StallSuspected:
		return "progress_bps"
	case RetransmitStorm:
		return "retransmit_ratio"
	case MemoryGrowth:
		return "memory_bytes"
	case PathAsymmetry:
		return "goodput_tx_bps"
	case ResumeFailureSpike:
		return "resume_rejected_frac"
	case AdmissionPressure:
		return "admission_rejects_per_s"
	}
	return ""
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
