package handshake

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"tcpls/internal/record"
)

// MessageRW transports whole handshake messages. The record-layer
// transport (transport.go) implements it over a byte stream; tests and
// the simulator implement it in memory. SetHandshakeKeys is called once
// the ECDHE secrets exist so implementations can start protecting
// messages with the handshake traffic keys (a no-op for in-memory
// transports).
type MessageRW interface {
	WriteMessage(msg []byte) error
	ReadMessage() ([]byte, error)
	SetHandshakeKeys(suite *record.Suite, sendSecret, recvSecret []byte) error
}

// Certificate is the server identity: an Ed25519 key pair plus a name.
type Certificate struct {
	Name    string
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// NewCertificate generates a fresh identity for name.
func NewCertificate(name string) (*Certificate, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Certificate{Name: name, Public: pub, Private: priv}, nil
}

// Config controls one handshake.
type Config struct {
	// Suites to offer (client) or accept (server); default AES-128-GCM.
	Suites []record.SuiteID
	// Rand sources all randomness; defaults to crypto/rand.
	Rand io.Reader

	// --- client side ---
	ServerName string
	// RootKeys are the trusted server public keys. Empty means "accept
	// any" (tests); production callers must pin keys.
	RootKeys []ed25519.PublicKey
	// EnableTCPLS sends the TCPLS Hello extension (paper §3.2). When the
	// server does not echo it the client falls back to plain TLS.
	EnableTCPLS bool
	// Join, when set, asks to join an existing session (Fig. 3) instead
	// of opening a new one.
	Join *JoinTicket
	// PSK + PSKTicket resume a previous session (§4.5): the opaque
	// ticket rides the ClientHello; the PSK seeds the key schedule when
	// the server accepts. The certificate exchange is skipped (the PSK
	// authenticates continuity, as in TLS 1.3 resumption).
	PSK       []byte
	PSKTicket []byte
	// EarlyData, with a PSK ticket, is sent as 0-RTT application records
	// in the first flight (§4.5): the server receives it before its own
	// first byte crosses the wire. One-shot and replayable by design —
	// callers gate what goes here; the server side gates acceptance
	// through its anti-replay register. Requires a transport that
	// supports early records (Transport does; in-memory tests may not).
	EarlyData []byte

	// --- server side ---
	Certificate *Certificate
	// TCPLSServer enables TCPLS on the server side.
	TCPLSServer bool
	// AdvertiseAddrs is the server address list for ADDR extensions.
	AdvertiseAddrs []netip.Addr
	// NumCookies bounds how many extra connections the client may join
	// (resource-exhaustion defence, §3.3.2). Default 2 when TCPLS is on.
	NumCookies int
	// Sessions validates join attempts against the server session table.
	Sessions JoinValidator
	// DecryptTicket recovers the PSK from a resumption ticket (server
	// side); returning ok=false falls back to a full handshake.
	DecryptTicket func(ticket []byte) (psk []byte, ok bool)
	// AcceptEarlyData gates one 0-RTT offer after the PSK was recovered:
	// the listener consults its anti-replay strike register (and the
	// ticket's sealed freshness stamp) with the ticket bytes. Returning
	// false (or a nil hook with MaxEarlyData < 0) makes the server
	// decrypt-and-discard the early flight; the client falls back to
	// 1-RTT. Never called when the PSK was not recovered.
	AcceptEarlyData func(ticket []byte) bool
	// MaxEarlyData budgets the 0-RTT flight in plaintext bytes. Zero
	// means the default (16 KiB); negative refuses all early data.
	MaxEarlyData int
	// OnSessionIssued fires on the server as soon as the session ID and
	// cookies are sent in EncryptedExtensions — before the handshake
	// finishes — so the session table can accept joins that race the
	// tail of the initial handshake.
	OnSessionIssued func(id SessID, cookies []Cookie)
}

// JoinTicket is what a client must present to join a session. ConnID is
// the client-chosen identifier for the new connection within the session.
type JoinTicket struct {
	SessID SessID
	Cookie Cookie
	ConnID uint32
}

// JoinValidator is the server-side hook into the session table. Validate
// must atomically check and consume the single-use cookie.
type JoinValidator interface {
	ValidateJoin(id SessID, cookie Cookie) bool
}

// Result is the outcome of a completed handshake.
type Result struct {
	Secrets Secrets
	// TCPLSEnabled reports whether both sides negotiated TCPLS.
	TCPLSEnabled bool
	// JoinAccepted reports whether this connection joined an existing
	// session (in which case SessID names it).
	JoinAccepted bool
	// JoinConnID is the client-chosen connection ID of a joined
	// connection.
	JoinConnID uint32
	// Resumed reports whether the handshake used a PSK ticket.
	Resumed bool
	// EarlyDataAccepted reports that the 0-RTT offer was accepted: the
	// client's early bytes were (server) or will be (client) delivered
	// without waiting for the handshake to finish.
	EarlyDataAccepted bool
	// EarlyData is the received 0-RTT payload (server side only).
	EarlyData []byte
	// FastJoin reports a single-flight join: the connection carried
	// engine records right behind its ClientHello.
	FastJoin bool
	// SessID is the server-assigned session identifier (new sessions)
	// or the joined session's identifier.
	SessID SessID
	// Cookies are the join cookies issued by the server (client view) or
	// generated (server view).
	Cookies []Cookie
	// PeerAddrs is the address list the server advertised.
	PeerAddrs []netip.Addr
	// PeerName is the authenticated server name (client side).
	PeerName string
}

// Handshake errors.
var (
	ErrNoCertificate     = errors.New("handshake: server has no certificate configured")
	ErrBadFinished       = errors.New("handshake: peer Finished verification failed")
	ErrBadSignature      = errors.New("handshake: certificate signature verification failed")
	ErrUntrustedKey      = errors.New("handshake: server key not in trust roots")
	ErrNoCommonSuite     = errors.New("handshake: no common cipher suite")
	ErrJoinRejected      = errors.New("handshake: server rejected session join")
	ErrUnexpectedMessage = errors.New("handshake: unexpected message")
	// ErrEarlyDataOverflow: the peer's 0-RTT flight exceeded the
	// MaxEarlyData budget (hostile or misconfigured client).
	ErrEarlyDataOverflow = errors.New("handshake: early data exceeds budget")
)

// defaultMaxEarlyData bounds a 0-RTT flight when Config.MaxEarlyData is
// zero. Kept modest: the whole flight must fit in flight-one socket
// buffers on both sides to avoid a handshake deadlock.
const defaultMaxEarlyData = 16384

func (c *Config) maxEarlyData() int { return EarlyDataBudget(c.MaxEarlyData) }

// EarlyDataBudget resolves a Config.MaxEarlyData value to the effective
// 0-RTT budget in bytes: zero selects the default, negative disables
// early data entirely. Exported so the ticket issuer can advertise the
// same number the server will enforce.
func EarlyDataBudget(v int) int {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return defaultMaxEarlyData
	}
	return v
}

// earlyDataRW is the optional transport extension behind 0-RTT: sealing
// and consuming records under the early traffic key, and skipping
// records the server cannot decrypt at all (early data whose PSK it did
// not recover). Transport implements it; in-memory message pipes used in
// tests need not.
type earlyDataRW interface {
	WriteEarlyData(suite *record.Suite, secret, data []byte) error
	ReadEarlyData(suite *record.Suite, secret []byte, max int, discard bool) (data []byte, overflow bool, err error)
	SkipUndecryptable(budget int)
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.Reader
}

func (c *Config) suites() []record.SuiteID {
	if len(c.Suites) != 0 {
		return c.Suites
	}
	return []record.SuiteID{record.TLSAES128GCMSHA256}
}

func (c *Config) numCookies() int {
	if c.NumCookies > 0 {
		return c.NumCookies
	}
	return 2
}

// signatureContext is mixed into the CertificateVerify signature input so
// the signature cannot be confused with other uses of the key
// (RFC 8446 §4.4.3 uses a similar context string).
const signatureContext = "TCPLS, server CertificateVerify"

func ed25519Sign(cert *Certificate, msg []byte) []byte {
	return ed25519.Sign(cert.Private, msg)
}

func signatureInput(transcriptHash []byte) []byte {
	b := make([]byte, 0, 64+len(signatureContext)+1+len(transcriptHash))
	for i := 0; i < 64; i++ {
		b = append(b, 0x20)
	}
	b = append(b, signatureContext...)
	b = append(b, 0)
	b = append(b, transcriptHash...)
	return b
}

// generateKeyShare creates an X25519 key pair.
func generateKeyShare(rng io.Reader) (*ecdh.PrivateKey, error) {
	return ecdh.X25519().GenerateKey(rng)
}

func sharedSecret(priv *ecdh.PrivateKey, peerPub []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("handshake: bad peer key share: %w", err)
	}
	return priv.ECDH(pub)
}

func pickSuite(offered []record.SuiteID, accepted []record.SuiteID) (*record.Suite, error) {
	for _, a := range accepted {
		for _, o := range offered {
			if a == o {
				return record.SuiteByID(a)
			}
		}
	}
	return nil, ErrNoCommonSuite
}

// deriveAppSecrets finishes the key schedule after the server Finished:
// master secret, application traffic secrets, exporter.
func deriveAppSecrets(ks *keySchedule) Secrets {
	ks.advance(nil) // master secret
	return Secrets{
		Suite:     ks.suite,
		ClientApp: ks.trafficSecret("c ap traffic"),
		ServerApp: ks.trafficSecret("s ap traffic"),
		Exporter:  ks.trafficSecret("exp master"),
	}
}
