package handshake

import (
	"bytes"
	"crypto/ed25519"
	"io"
	"net"
	"net/netip"
	"sync"
	"testing"

	"tcpls/internal/record"
)

// memRW is an in-memory MessageRW connecting two handshake peers over
// channels, bypassing the record layer. CloseWrite signals the peer that
// this side is done (successfully or not) so a blocked ReadMessage fails
// instead of deadlocking the test.
type memRW struct {
	in   <-chan []byte
	out  chan<- []byte
	once sync.Once
}

func (m *memRW) WriteMessage(msg []byte) error {
	m.out <- append([]byte(nil), msg...)
	return nil
}

func (m *memRW) ReadMessage() ([]byte, error) {
	msg, ok := <-m.in
	if !ok {
		return nil, io.EOF
	}
	return msg, nil
}

func (m *memRW) SetHandshakeKeys(*record.Suite, []byte, []byte) error {
	return nil
}

func (m *memRW) CloseWrite() { m.once.Do(func() { close(m.out) }) }

type closableRW interface {
	MessageRW
	CloseWrite()
}

func memPair() (client, server closableRW) {
	a := make(chan []byte, 16)
	b := make(chan []byte, 16)
	return &memRW{in: b, out: a}, &memRW{in: a, out: b}
}

func testCert(t testing.TB) *Certificate {
	t.Helper()
	cert, err := NewCertificate("server.example")
	if err != nil {
		t.Fatal(err)
	}
	return cert
}

// run executes a client/server handshake pair concurrently.
func run(t testing.TB, crw, srw closableRW, ccfg, scfg *Config) (*Result, *Result, error, error) {
	t.Helper()
	type out struct {
		res *Result
		err error
	}
	sc := make(chan out, 1)
	go func() {
		res, err := Server(srw, scfg)
		srw.CloseWrite()
		sc <- out{res, err}
	}()
	cres, cerr := Client(crw, ccfg)
	crw.CloseWrite()
	s := <-sc
	return cres, s.res, cerr, s.err
}

type sessionTable struct {
	id      SessID
	cookies map[Cookie]bool // true = still valid
}

func (st *sessionTable) ValidateJoin(id SessID, cookie Cookie) bool {
	if id != st.id {
		return false
	}
	if !st.cookies[cookie] {
		return false
	}
	st.cookies[cookie] = false // single use
	return true
}

func TestFullHandshakeTCPLS(t *testing.T) {
	cert := testCert(t)
	crw, srw := memPair()
	cres, sres, cerr, serr := run(t, crw, srw,
		&Config{ServerName: "server.example", EnableTCPLS: true, RootKeys: []ed25519.PublicKey{cert.Public}},
		&Config{Certificate: cert, TCPLSServer: true,
			AdvertiseAddrs: []netip.Addr{netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("2001:db8::1")}},
	)
	if cerr != nil || serr != nil {
		t.Fatalf("client err=%v server err=%v", cerr, serr)
	}
	if !cres.TCPLSEnabled || !sres.TCPLSEnabled {
		t.Fatal("TCPLS not negotiated")
	}
	if !bytes.Equal(cres.Secrets.ClientApp, sres.Secrets.ClientApp) {
		t.Error("client app secrets differ")
	}
	if !bytes.Equal(cres.Secrets.ServerApp, sres.Secrets.ServerApp) {
		t.Error("server app secrets differ")
	}
	if bytes.Equal(cres.Secrets.ClientApp, cres.Secrets.ServerApp) {
		t.Error("directional secrets must differ")
	}
	if !bytes.Equal(cres.Secrets.Resumption, sres.Secrets.Resumption) {
		t.Error("resumption secrets differ")
	}
	if cres.SessID != sres.SessID {
		t.Error("session IDs differ")
	}
	if len(cres.Cookies) != 2 || len(sres.Cookies) != 2 {
		t.Errorf("cookies: client %d server %d, want 2", len(cres.Cookies), len(sres.Cookies))
	}
	if len(cres.PeerAddrs) != 2 {
		t.Errorf("client saw %d advertised addrs, want 2", len(cres.PeerAddrs))
	}
	if cres.PeerName != "server.example" {
		t.Errorf("peer name %q", cres.PeerName)
	}
}

func TestFallbackToPlainTLS(t *testing.T) {
	cert := testCert(t)
	crw, srw := memPair()
	// Server does not enable TCPLS: the client must complete the
	// handshake anyway and observe TCPLSEnabled=false (paper §5.2:
	// implicit fallback when the server omits the TCPLS Hello echo).
	cres, sres, cerr, serr := run(t, crw, srw,
		&Config{EnableTCPLS: true},
		&Config{Certificate: cert},
	)
	if cerr != nil || serr != nil {
		t.Fatalf("client err=%v server err=%v", cerr, serr)
	}
	if cres.TCPLSEnabled || sres.TCPLSEnabled {
		t.Fatal("TCPLS negotiated unilaterally")
	}
	if !bytes.Equal(cres.Secrets.ClientApp, sres.Secrets.ClientApp) {
		t.Error("secrets differ after fallback")
	}
}

func TestPlainClientAgainstTCPLSServer(t *testing.T) {
	cert := testCert(t)
	crw, srw := memPair()
	cres, sres, cerr, serr := run(t, crw, srw,
		&Config{},
		&Config{Certificate: cert, TCPLSServer: true},
	)
	if cerr != nil || serr != nil {
		t.Fatalf("client err=%v server err=%v", cerr, serr)
	}
	if cres.TCPLSEnabled || sres.TCPLSEnabled {
		t.Fatal("server enabled TCPLS for a non-TCPLS client")
	}
}

func TestJoinHandshake(t *testing.T) {
	cert := testCert(t)

	// First, a regular TCPLS handshake to mint session state.
	crw, srw := memPair()
	cres, sres, cerr, serr := run(t, crw, srw,
		&Config{EnableTCPLS: true},
		&Config{Certificate: cert, TCPLSServer: true},
	)
	if cerr != nil || serr != nil {
		t.Fatal(cerr, serr)
	}

	table := &sessionTable{id: sres.SessID, cookies: map[Cookie]bool{}}
	for _, c := range sres.Cookies {
		table.cookies[c] = true
	}

	// Join with a valid cookie.
	crw2, srw2 := memPair()
	jres, sjres, cerr, serr := run(t, crw2, srw2,
		&Config{Join: &JoinTicket{SessID: cres.SessID, Cookie: cres.Cookies[0]}},
		&Config{Certificate: cert, TCPLSServer: true, Sessions: table},
	)
	if cerr != nil || serr != nil {
		t.Fatalf("join failed: client=%v server=%v", cerr, serr)
	}
	if !jres.JoinAccepted || !sjres.JoinAccepted {
		t.Fatal("join not accepted")
	}
	if jres.SessID != cres.SessID {
		t.Error("joined session ID mismatch")
	}
	if !bytes.Equal(jres.Secrets.ClientApp, sjres.Secrets.ClientApp) {
		t.Error("join secrets differ")
	}

	// Reusing the same cookie must fail (single use).
	crw3, srw3 := memPair()
	_, _, cerr, serr = run(t, crw3, srw3,
		&Config{Join: &JoinTicket{SessID: cres.SessID, Cookie: cres.Cookies[0]}},
		&Config{Certificate: cert, TCPLSServer: true, Sessions: table},
	)
	if serr != ErrJoinRejected {
		t.Fatalf("cookie reuse: server err=%v, want ErrJoinRejected", serr)
	}
	if cerr == nil {
		t.Fatal("client completed a rejected join")
	}

	// A wrong session ID must fail.
	crw4, srw4 := memPair()
	_, _, _, serr = run(t, crw4, srw4,
		&Config{Join: &JoinTicket{SessID: SessID{9, 9}, Cookie: cres.Cookies[1]}},
		&Config{Certificate: cert, TCPLSServer: true, Sessions: table},
	)
	if serr != ErrJoinRejected {
		t.Fatalf("bad sessid: server err=%v", serr)
	}
}

func TestUntrustedServerKeyRejected(t *testing.T) {
	cert := testCert(t)
	other := testCert(t)
	crw, srw := memPair()
	_, _, cerr, _ := run(t, crw, srw,
		&Config{RootKeys: []ed25519.PublicKey{other.Public}, EnableTCPLS: true},
		&Config{Certificate: cert, TCPLSServer: true},
	)
	if cerr != ErrUntrustedKey {
		t.Fatalf("client err=%v, want ErrUntrustedKey", cerr)
	}
}

func TestServerNameMismatchRejected(t *testing.T) {
	cert := testCert(t)
	crw, srw := memPair()
	_, _, cerr, _ := run(t, crw, srw,
		&Config{ServerName: "other.example"},
		&Config{Certificate: cert},
	)
	if cerr == nil {
		t.Fatal("client accepted mismatched server name")
	}
}

func TestTamperedFinishedRejected(t *testing.T) {
	cert := testCert(t)
	a := make(chan []byte, 16)
	b := make(chan []byte, 16)
	crw := &memRW{in: b, out: a}
	// A tampering server-side wrapper flips a byte in its Finished.
	srw := &tamperRW{memRW: memRW{in: a, out: b}}
	_, _, cerr, _ := run(t, crw, srw, &Config{}, &Config{Certificate: cert})
	if cerr != ErrBadFinished {
		t.Fatalf("client err=%v, want ErrBadFinished", cerr)
	}
}

type tamperRW struct{ memRW }

func (tr *tamperRW) WriteMessage(msg []byte) error {
	if msg[0] == typeFinished {
		msg = append([]byte(nil), msg...)
		msg[len(msg)-1] ^= 1
	}
	return tr.memRW.WriteMessage(msg)
}

func TestHandshakeOverPipe(t *testing.T) {
	// Full handshake over a real byte stream through the record-layer
	// transport, exercising plaintext + encrypted phases and framing.
	cert := testCert(t)
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	defer sconn.Close()

	type out struct {
		res *Result
		err error
	}
	sc := make(chan out, 1)
	go func() {
		res, err := Server(NewTransport(sconn), &Config{
			Certificate: cert, TCPLSServer: true,
		})
		sc <- out{res, err}
	}()
	cres, cerr := Client(NewTransport(cconn), &Config{EnableTCPLS: true})
	s := <-sc
	if cerr != nil || s.err != nil {
		t.Fatalf("client=%v server=%v", cerr, s.err)
	}
	if !cres.TCPLSEnabled {
		t.Fatal("TCPLS not negotiated over pipe")
	}
	if !bytes.Equal(cres.Secrets.ClientApp, s.res.Secrets.ClientApp) {
		t.Fatal("secrets differ over pipe")
	}
}

func TestClientHelloOnWireIsPlainTLS(t *testing.T) {
	// The ClientHello record must look like standard TLS so middleboxes
	// accept it: content type 22, legacy version 0x0303.
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	defer sconn.Close()
	go func() {
		Client(NewTransport(cconn), &Config{EnableTCPLS: true})
	}()
	hdr := make([]byte, 5)
	if _, err := readFull(sconn, hdr); err != nil {
		t.Fatal(err)
	}
	if hdr[0] != record.ContentTypeHandshake {
		t.Errorf("record type %d, want 22", hdr[0])
	}
	if hdr[1] != 3 || hdr[2] != 3 {
		t.Errorf("legacy version %x%x", hdr[1], hdr[2])
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func TestMessageRoundTrips(t *testing.T) {
	ch := &clientHello{
		suites:     []record.SuiteID{record.TLSAES128GCMSHA256, record.TLSCHACHA20POLY1305SHA256},
		serverName: "example.org",
		keyShare:   bytes.Repeat([]byte{7}, 32),
		tcplsHello: true,
		join:       &joinRequest{SessID: SessID{1, 2, 3}, Cookie: Cookie{4, 5, 6}},
	}
	copy(ch.random[:], bytes.Repeat([]byte{9}, 32))
	typ, body, err := splitMessage(ch.marshal())
	if err != nil || typ != typeClientHello {
		t.Fatal(err)
	}
	got, err := parseClientHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.serverName != ch.serverName || !got.tcplsHello ||
		got.join == nil || got.join.SessID != ch.join.SessID ||
		got.join.Cookie != ch.join.Cookie ||
		!bytes.Equal(got.keyShare, ch.keyShare) ||
		len(got.suites) != 2 {
		t.Fatalf("client hello round trip mismatch: %+v", got)
	}

	id := SessID{0xaa}
	ee := &encryptedExtensions{
		tcplsHello:  true,
		sessID:      &id,
		cookies:     []Cookie{{1}, {2}, {3}},
		addrs:       []netip.Addr{netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("fe80::1")},
		userTimeout: 250,
	}
	typ, body, err = splitMessage(ee.marshal())
	if err != nil || typ != typeEncryptedExtensions {
		t.Fatal(err)
	}
	gotEE, err := parseEncryptedExtensions(body)
	if err != nil {
		t.Fatal(err)
	}
	if !gotEE.tcplsHello || gotEE.sessID == nil || *gotEE.sessID != id ||
		len(gotEE.cookies) != 3 || len(gotEE.addrs) != 2 || gotEE.userTimeout != 250 {
		t.Fatalf("encrypted extensions round trip mismatch: %+v", gotEE)
	}

	tk := &newSessionTicket{lifetime: 3600, ticket: []byte("opaque ticket")}
	typ, body, err = splitMessage(tk.marshal())
	if err != nil || typ != typeNewSessionTicket {
		t.Fatal(err)
	}
	gotTK, err := parseNewSessionTicket(body)
	if err != nil || gotTK.lifetime != 3600 || string(gotTK.ticket) != "opaque ticket" {
		t.Fatalf("ticket round trip: %+v err=%v", gotTK, err)
	}
}

func TestMalformedMessagesRejected(t *testing.T) {
	if _, _, err := splitMessage([]byte{1, 0, 0}); err == nil {
		t.Error("short header accepted")
	}
	if _, _, err := splitMessage([]byte{1, 0, 0, 5, 1, 2}); err == nil {
		t.Error("truncated body accepted")
	}
	if _, err := parseClientHello([]byte{3, 3}); err == nil {
		t.Error("truncated client hello accepted")
	}
	if _, err := parseJoinRequest(make([]byte, 5)); err == nil {
		t.Error("short join request accepted")
	}
	if _, err := parseEncryptedExtensions([]byte{0, 4, 0xfa, 3, 0, 9}); err == nil {
		t.Error("bad sessid length accepted")
	}
}

func TestPSKResumptionSkipsCertificate(t *testing.T) {
	cert := testCert(t)
	psk := bytes.Repeat([]byte{0x42}, 32)
	ticket := []byte("opaque-server-ticket")
	decrypt := func(tk []byte) ([]byte, bool) {
		if bytes.Equal(tk, ticket) {
			return psk, true
		}
		return nil, false
	}

	// countingRW counts messages the client receives to prove the
	// certificate flight is absent.
	crw, srw := memPair()
	var serverMsgs int
	crwCounted := &countingRW{closableRW: crw, n: &serverMsgs}

	cres, sres, cerr, serr := run(t, crwCounted, srw,
		&Config{PSK: psk, PSKTicket: ticket},
		&Config{Certificate: cert, TCPLSServer: true, DecryptTicket: decrypt},
	)
	if cerr != nil || serr != nil {
		t.Fatalf("client=%v server=%v", cerr, serr)
	}
	if !cres.Resumed || !sres.Resumed {
		t.Fatal("handshake not resumed")
	}
	if !bytes.Equal(cres.Secrets.ClientApp, sres.Secrets.ClientApp) {
		t.Fatal("resumed secrets differ")
	}
	// Resumed server flight: ServerHello, EncryptedExtensions, Finished
	// = 3 messages (full handshake has 5 with Certificate+Verify).
	if serverMsgs != 3 {
		t.Fatalf("client received %d server messages, want 3 (no certificate flight)", serverMsgs)
	}

	// PSK and full-handshake secrets must differ (PSK is mixed in).
	crw2, srw2 := memPair()
	fullC, _, cerr, serr := run(t, crw2, srw2,
		&Config{}, &Config{Certificate: cert, TCPLSServer: true})
	if cerr != nil || serr != nil {
		t.Fatal(cerr, serr)
	}
	if bytes.Equal(fullC.Secrets.ClientApp, cres.Secrets.ClientApp) {
		t.Fatal("PSK did not affect the key schedule")
	}
}

func TestPSKRejectedFallsBackToFullHandshake(t *testing.T) {
	cert := testCert(t)
	crw, srw := memPair()
	cres, sres, cerr, serr := run(t, crw, srw,
		&Config{PSK: bytes.Repeat([]byte{1}, 32), PSKTicket: []byte("garbage")},
		&Config{Certificate: cert, TCPLSServer: true,
			DecryptTicket: func([]byte) ([]byte, bool) { return nil, false }},
	)
	if cerr != nil || serr != nil {
		t.Fatalf("client=%v server=%v", cerr, serr)
	}
	if cres.Resumed || sres.Resumed {
		t.Fatal("resumed despite rejected ticket")
	}
	if !bytes.Equal(cres.Secrets.ClientApp, sres.Secrets.ClientApp) {
		t.Fatal("fallback secrets differ")
	}
}

// countingRW counts delivered messages.
type countingRW struct {
	closableRW
	n *int
}

func (c *countingRW) ReadMessage() ([]byte, error) {
	m, err := c.closableRW.ReadMessage()
	if err == nil {
		*c.n++
	}
	return m, err
}
