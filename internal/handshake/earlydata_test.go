package handshake

import (
	"bytes"
	"errors"
	"net"
	"testing"
)

// tcpPair returns two ends of a real loopback TCP connection. 0-RTT
// tests need kernel socket buffers: the client writes its whole first
// flight before the server says anything, which deadlocks on the
// unbuffered net.Pipe.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ac := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ac <- accepted{c, err}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ac
	if a.err != nil {
		cc.Close()
		t.Fatal(a.err)
	}
	t.Cleanup(func() { cc.Close(); a.c.Close() })
	return cc, a.c
}

// runTCP executes a client/server handshake pair over loopback TCP.
func runTCP(t *testing.T, ccfg, scfg *Config) (cres, sres *Result, cerr, serr error) {
	t.Helper()
	cconn, sconn := tcpPair(t)
	type out struct {
		res *Result
		err error
	}
	sc := make(chan out, 1)
	go func() {
		res, err := Server(NewTransport(sconn), scfg)
		sc <- out{res, err}
	}()
	cres, cerr = Client(NewTransport(cconn), ccfg)
	s := <-sc
	return cres, s.res, cerr, s.err
}

func resumptionConfigs(t *testing.T, psk []byte) (ccfg, scfg *Config) {
	t.Helper()
	cert := testCert(t)
	ticket := []byte("opaque-ticket")
	ccfg = &Config{
		EnableTCPLS: true,
		PSK:         psk,
		PSKTicket:   ticket,
	}
	scfg = &Config{
		Certificate: cert,
		TCPLSServer: true,
		DecryptTicket: func(tk []byte) ([]byte, bool) {
			if bytes.Equal(tk, ticket) {
				return psk, true
			}
			return nil, false
		},
	}
	return ccfg, scfg
}

func TestEarlyDataAccepted(t *testing.T) {
	psk := bytes.Repeat([]byte{0x42}, 32)
	ccfg, scfg := resumptionConfigs(t, psk)
	early := []byte("GET /index.html\r\n\r\n")
	ccfg.EarlyData = early

	cres, sres, cerr, serr := runTCP(t, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("client=%v server=%v", cerr, serr)
	}
	if !cres.Resumed || !sres.Resumed {
		t.Fatal("handshake did not resume")
	}
	if !cres.EarlyDataAccepted {
		t.Fatal("client: early data not accepted")
	}
	if !sres.EarlyDataAccepted {
		t.Fatal("server: early data not accepted")
	}
	if !bytes.Equal(sres.EarlyData, early) {
		t.Fatalf("server early data = %q, want %q", sres.EarlyData, early)
	}
	if !bytes.Equal(cres.Secrets.ClientApp, sres.Secrets.ClientApp) {
		t.Fatal("secrets diverged")
	}
}

func TestEarlyDataRejectedFallsBackTo1RTT(t *testing.T) {
	psk := bytes.Repeat([]byte{0x43}, 32)
	ccfg, scfg := resumptionConfigs(t, psk)
	ccfg.EarlyData = []byte("replayable request")
	scfg.AcceptEarlyData = func([]byte) bool { return false } // replay gate says no

	cres, sres, cerr, serr := runTCP(t, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("client=%v server=%v", cerr, serr)
	}
	if !cres.Resumed || !sres.Resumed {
		t.Fatal("handshake did not resume")
	}
	if cres.EarlyDataAccepted || sres.EarlyDataAccepted {
		t.Fatal("rejected early data reported as accepted")
	}
	if sres.EarlyData != nil {
		t.Fatal("discarded early data surfaced to the server")
	}
	if !bytes.Equal(cres.Secrets.ClientApp, sres.Secrets.ClientApp) {
		t.Fatal("secrets diverged after early-data rejection")
	}
}

func TestEarlyDataSkippedWhenPSKUnknown(t *testing.T) {
	// The server lost its ticket keys (restart without a key file): it
	// cannot even decrypt the early flight, and must skip it byte-bounded
	// while falling back to a full handshake.
	psk := bytes.Repeat([]byte{0x44}, 32)
	ccfg, scfg := resumptionConfigs(t, psk)
	ccfg.EarlyData = []byte("lost to the void")
	scfg.DecryptTicket = func([]byte) ([]byte, bool) { return nil, false }

	cres, sres, cerr, serr := runTCP(t, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("client=%v server=%v", cerr, serr)
	}
	if cres.Resumed || sres.Resumed {
		t.Fatal("resumed without a recovered PSK")
	}
	if cres.EarlyDataAccepted || sres.EarlyDataAccepted {
		t.Fatal("early data accepted without a PSK")
	}
	if !bytes.Equal(cres.Secrets.ClientApp, sres.Secrets.ClientApp) {
		t.Fatal("secrets diverged after trial skip")
	}
}

func TestEarlyDataOverflowFallsBack(t *testing.T) {
	// A flight that exceeds the server's budget (misconfigured client, or
	// one holding a pre-reconfiguration ticket) must not fail the
	// handshake: the server drains and drops the flight, retracts its
	// acceptance in EncryptedExtensions, and the client falls back to
	// 1-RTT.
	psk := bytes.Repeat([]byte{0x45}, 32)
	ccfg, scfg := resumptionConfigs(t, psk)
	ccfg.EarlyData = bytes.Repeat([]byte{0xee}, 2048)
	scfg.MaxEarlyData = 1024

	cres, sres, cerr, serr := runTCP(t, ccfg, scfg)
	if cerr != nil || serr != nil {
		t.Fatalf("client=%v server=%v", cerr, serr)
	}
	if !cres.Resumed || !sres.Resumed {
		t.Fatal("handshake did not resume")
	}
	if cres.EarlyDataAccepted || sres.EarlyDataAccepted {
		t.Fatal("over-budget early data reported as accepted")
	}
	if sres.EarlyData != nil {
		t.Fatal("over-budget early data surfaced to the server")
	}
	if !bytes.Equal(cres.Secrets.ClientApp, sres.Secrets.ClientApp) {
		t.Fatal("secrets diverged after overflow fallback")
	}
}

func TestEarlyDataOverflowHardCap(t *testing.T) {
	// Past the tolerance slack the drain stops and the handshake fails:
	// an attacker cannot pin the server in an unbounded discard loop.
	// The server aborts mid-flight, so the client may still be writing —
	// run it on its own goroutine and unblock it by closing the server
	// side once the verdict is in (runTCP would deadlock here).
	psk := bytes.Repeat([]byte{0x46}, 32)
	ccfg, scfg := resumptionConfigs(t, psk)
	scfg.MaxEarlyData = 1024
	ccfg.EarlyData = bytes.Repeat([]byte{0xee}, 1024+earlyOverflowSlack+4096)

	cconn, sconn := tcpPair(t)
	cc := make(chan struct{})
	go func() {
		defer close(cc)
		Client(NewTransport(cconn), ccfg)
	}()
	_, serr := Server(NewTransport(sconn), scfg)
	if !errors.Is(serr, ErrEarlyDataOverflow) {
		t.Fatalf("server error = %v, want ErrEarlyDataOverflow", serr)
	}
	sconn.Close()
	<-cc
}

func TestFastJoinSingleFlight(t *testing.T) {
	cconn, sconn := tcpPair(t)
	var cookie Cookie
	cookie[0] = 7
	var sid SessID
	sid[0] = 9
	table := &sessionTable{id: sid, cookies: map[Cookie]bool{cookie: true}}

	type out struct {
		res *Result
		err error
	}
	sc := make(chan out, 1)
	go func() {
		res, err := Server(NewTransport(sconn), &Config{TCPLSServer: true, Sessions: table})
		sc <- out{res, err}
	}()

	ct := NewTransport(cconn)
	cfg := &Config{Join: &JoinTicket{SessID: sid, Cookie: cookie, ConnID: 3}}
	if err := StartFastJoin(ct, cfg); err != nil {
		t.Fatal(err)
	}
	// The optimistic payload would ride here, before the ack arrives.
	if err := FinishFastJoin(ct); err != nil {
		t.Fatal(err)
	}
	s := <-sc
	if s.err != nil {
		t.Fatal(s.err)
	}
	if !s.res.FastJoin || !s.res.JoinAccepted {
		t.Fatal("server did not record a fast join")
	}
	if s.res.SessID != sid || s.res.JoinConnID != 3 {
		t.Fatal("fast join carried wrong session/conn identifiers")
	}
	// The cookie was consumed atomically.
	if table.cookies[cookie] {
		t.Fatal("cookie not consumed")
	}
}

func TestFastJoinBadCookieRejected(t *testing.T) {
	cconn, sconn := tcpPair(t)
	var sid SessID
	table := &sessionTable{id: sid, cookies: map[Cookie]bool{}}

	serrc := make(chan error, 1)
	go func() {
		_, err := Server(NewTransport(sconn), &Config{TCPLSServer: true, Sessions: table})
		serrc <- err
	}()

	ct := NewTransport(cconn)
	var cookie Cookie
	cookie[0] = 0xbad % 0x100
	cfg := &Config{Join: &JoinTicket{SessID: sid, Cookie: cookie, ConnID: 3}}
	if err := StartFastJoin(ct, cfg); err != nil {
		t.Fatal(err)
	}
	if err := FinishFastJoin(ct); !errors.Is(err, ErrJoinRejected) {
		t.Fatalf("client error = %v, want ErrJoinRejected", err)
	}
	if err := <-serrc; !errors.Is(err, ErrJoinRejected) {
		t.Fatalf("server error = %v, want ErrJoinRejected", err)
	}
}
