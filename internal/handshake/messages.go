package handshake

import (
	"errors"
	"fmt"
	"net/netip"

	"tcpls/internal/record"
	"tcpls/internal/wire"
)

// Handshake message types (RFC 8446 §4).
const (
	typeClientHello         = 1
	typeServerHello         = 2
	typeNewSessionTicket    = 4
	typeEndOfEarlyData      = 5
	typeEncryptedExtensions = 8
	typeCertificate         = 11
	typeCertificateVerify   = 15
	typeFinished            = 20
	// typeTCPLSJoinAck is the private-use single-flight join answer: it
	// travels in plaintext (like the join request it answers) so the
	// joining connection needs no key exchange of its own — its record
	// protection comes from the session's application secrets.
	typeTCPLSJoinAck = 250
)

// Extension codepoints. The TCPLS extensions use the private-use range;
// their numbers match this repository only (the paper's prototype likewise
// picked experimental codepoints).
const (
	extServerName        = 0
	extSupportedVersions = 43
	extKeyShare          = 51
	extTCPLSHello        = 0xfa00
	extTCPLSJoin         = 0xfa01
	extTCPLSAddr         = 0xfa02
	extTCPLSSessID       = 0xfa03
	extTCPLSCookie       = 0xfa04
	extTCPLSUserTimeout  = 0xfa05
	extTCPLSPSK          = 0xfa06
	extTCPLSEarlyData    = 0xfa07
	extTCPLSJoinFast     = 0xfa08
)

// Sizes of TCPLS session identifiers and join cookies.
const (
	SessIDLen = 16
	CookieLen = 16
)

// ErrDecode is returned for any malformed handshake message.
var ErrDecode = errors.New("handshake: malformed message")

// SessID identifies a TCPLS session on the server (paper Fig. 3's α).
type SessID [SessIDLen]byte

// Cookie is a single-use token authorizing one connection join (β_i).
type Cookie [CookieLen]byte

// extension is a raw TLS extension.
type extension struct {
	typ  uint16
	data []byte
}

func appendExtensions(b []byte, exts []extension) []byte {
	lenPos := len(b)
	b = wire.AppendUint16(b, 0)
	for _, e := range exts {
		b = wire.AppendUint16(b, e.typ)
		b = wire.AppendVector16(b, e.data)
	}
	total := len(b) - lenPos - 2
	b[lenPos] = byte(total >> 8)
	b[lenPos+1] = byte(total)
	return b
}

func parseExtensions(r *wire.Reader) ([]extension, error) {
	block := r.Vector16()
	if r.Err() != nil {
		return nil, ErrDecode
	}
	er := wire.NewReader(block)
	var exts []extension
	for er.Len() > 0 {
		typ := er.Uint16()
		data := er.Vector16()
		if er.Err() != nil {
			return nil, ErrDecode
		}
		exts = append(exts, extension{typ, data})
	}
	return exts, nil
}

func findExtension(exts []extension, typ uint16) ([]byte, bool) {
	for _, e := range exts {
		if e.typ == typ {
			return e.data, true
		}
	}
	return nil, false
}

// wrap prepends the 4-byte handshake message header (type + 24-bit len).
func wrap(msgType uint8, body []byte) []byte {
	out := make([]byte, 0, 4+len(body))
	out = wire.AppendUint8(out, msgType)
	out = wire.AppendVector24(out, body)
	return out
}

// splitMessage validates the handshake header and returns type and body.
func splitMessage(msg []byte) (uint8, []byte, error) {
	r := wire.NewReader(msg)
	typ := r.Uint8()
	body := r.Vector24()
	if r.Err() != nil || !r.Empty() {
		return 0, nil, ErrDecode
	}
	return typ, body, nil
}

// joinRequest is the TCPLS JOIN extension payload (Fig. 3): the session
// identifier, one unused cookie, and the client-chosen connection ID so
// both endpoints number the joined connection identically.
type joinRequest struct {
	SessID SessID
	Cookie Cookie
	ConnID uint32
}

func (j *joinRequest) marshal() []byte {
	b := make([]byte, 0, SessIDLen+CookieLen+4)
	b = append(b, j.SessID[:]...)
	b = append(b, j.Cookie[:]...)
	return wire.AppendUint32(b, j.ConnID)
}

func parseJoinRequest(data []byte) (*joinRequest, error) {
	if len(data) != SessIDLen+CookieLen+4 {
		return nil, ErrDecode
	}
	var j joinRequest
	copy(j.SessID[:], data[:SessIDLen])
	copy(j.Cookie[:], data[SessIDLen:SessIDLen+CookieLen])
	j.ConnID = wire.Uint32(data[SessIDLen+CookieLen:])
	return &j, nil
}

// clientHello mirrors the TLS 1.3 ClientHello with the fields this
// implementation uses.
type clientHello struct {
	random     [32]byte
	sessionID  []byte // legacy, echoed
	suites     []record.SuiteID
	serverName string
	keyShare   []byte // X25519 public key
	tcplsHello bool
	join       *joinRequest
	joinFast   bool   // single-flight join: data follows this CH immediately
	pskTicket  []byte // resumption ticket (PSK mode, §4.5)
	earlyData  bool   // 0-RTT offer: early records follow this CH
}

func (m *clientHello) marshal() []byte {
	var b []byte
	b = wire.AppendUint16(b, 0x0303) // legacy_version
	b = append(b, m.random[:]...)
	b = wire.AppendVector8(b, m.sessionID)
	// cipher_suites
	suites := make([]byte, 0, 2*len(m.suites))
	for _, s := range m.suites {
		suites = wire.AppendUint16(suites, uint16(s))
	}
	b = wire.AppendVector16(b, suites)
	b = wire.AppendVector8(b, []byte{0}) // legacy_compression_methods: null

	exts := []extension{
		{extSupportedVersions, []byte{2, 0x03, 0x04}},
		{extKeyShare, m.keyShare},
	}
	if m.serverName != "" {
		exts = append(exts, extension{extServerName, []byte(m.serverName)})
	}
	if m.tcplsHello {
		exts = append(exts, extension{extTCPLSHello, nil})
	}
	if m.join != nil {
		exts = append(exts, extension{extTCPLSJoin, m.join.marshal()})
	}
	if m.joinFast {
		exts = append(exts, extension{extTCPLSJoinFast, nil})
	}
	if len(m.pskTicket) > 0 {
		exts = append(exts, extension{extTCPLSPSK, m.pskTicket})
	}
	if m.earlyData {
		exts = append(exts, extension{extTCPLSEarlyData, nil})
	}
	b = appendExtensions(b, exts)
	return wrap(typeClientHello, b)
}

func parseClientHello(body []byte) (*clientHello, error) {
	m := &clientHello{}
	r := wire.NewReader(body)
	if v := r.Uint16(); v != 0x0303 {
		return nil, fmt.Errorf("handshake: bad legacy version %#x", v)
	}
	copy(m.random[:], r.Bytes(32))
	m.sessionID = r.Vector8()
	suiteBytes := r.Vector16()
	r.Vector8() // compression methods
	if r.Err() != nil {
		return nil, ErrDecode
	}
	sr := wire.NewReader(suiteBytes)
	for sr.Len() >= 2 {
		m.suites = append(m.suites, record.SuiteID(sr.Uint16()))
	}
	exts, err := parseExtensions(r)
	if err != nil || !r.Empty() {
		return nil, ErrDecode
	}
	if data, ok := findExtension(exts, extKeyShare); ok {
		m.keyShare = data
	}
	if data, ok := findExtension(exts, extServerName); ok {
		m.serverName = string(data)
	}
	_, m.tcplsHello = findExtension(exts, extTCPLSHello)
	if data, ok := findExtension(exts, extTCPLSJoin); ok {
		if m.join, err = parseJoinRequest(data); err != nil {
			return nil, err
		}
	}
	_, m.joinFast = findExtension(exts, extTCPLSJoinFast)
	if data, ok := findExtension(exts, extTCPLSPSK); ok {
		m.pskTicket = data
	}
	_, m.earlyData = findExtension(exts, extTCPLSEarlyData)
	return m, nil
}

// serverHello mirrors the TLS 1.3 ServerHello. pskAccepted echoes the
// client's PSK offer when the server resumed the session — it must be in
// the ServerHello (not EncryptedExtensions) because the key schedule
// diverges immediately after it.
type serverHello struct {
	random      [32]byte
	sessionID   []byte // echo of the client's
	suite       record.SuiteID
	keyShare    []byte
	pskAccepted bool
}

func (m *serverHello) marshal() []byte {
	var b []byte
	b = wire.AppendUint16(b, 0x0303)
	b = append(b, m.random[:]...)
	b = wire.AppendVector8(b, m.sessionID)
	b = wire.AppendUint16(b, uint16(m.suite))
	b = wire.AppendUint8(b, 0) // compression
	exts := []extension{
		{extSupportedVersions, []byte{0x03, 0x04}},
		{extKeyShare, m.keyShare},
	}
	if m.pskAccepted {
		exts = append(exts, extension{extTCPLSPSK, nil})
	}
	b = appendExtensions(b, exts)
	return wrap(typeServerHello, b)
}

func parseServerHello(body []byte) (*serverHello, error) {
	m := &serverHello{}
	r := wire.NewReader(body)
	if v := r.Uint16(); v != 0x0303 {
		return nil, ErrDecode
	}
	copy(m.random[:], r.Bytes(32))
	m.sessionID = r.Vector8()
	m.suite = record.SuiteID(r.Uint16())
	r.Uint8()
	if r.Err() != nil {
		return nil, ErrDecode
	}
	exts, err := parseExtensions(r)
	if err != nil || !r.Empty() {
		return nil, ErrDecode
	}
	if data, ok := findExtension(exts, extKeyShare); ok {
		m.keyShare = data
	}
	_, m.pskAccepted = findExtension(exts, extTCPLSPSK)
	return m, nil
}

// encryptedExtensions carries the server's TCPLS announcements, protected
// under the handshake keys so middleboxes never see them (paper §3.2).
type encryptedExtensions struct {
	tcplsHello    bool
	joinAck       bool
	earlyAccepted bool // echo of the 0-RTT offer: early data will be read
	sessID        *SessID
	cookies       []Cookie
	addrs         []netip.Addr
	userTimeout   uint32 // milliseconds, 0 = absent
}

func (m *encryptedExtensions) marshal() []byte {
	var exts []extension
	if m.tcplsHello {
		exts = append(exts, extension{extTCPLSHello, nil})
	}
	if m.earlyAccepted {
		exts = append(exts, extension{extTCPLSEarlyData, nil})
	}
	if m.joinAck {
		exts = append(exts, extension{extTCPLSJoin, []byte{1}})
	}
	if m.sessID != nil {
		exts = append(exts, extension{extTCPLSSessID, m.sessID[:]})
	}
	if len(m.cookies) > 0 {
		data := make([]byte, 0, len(m.cookies)*CookieLen)
		for _, c := range m.cookies {
			data = append(data, c[:]...)
		}
		exts = append(exts, extension{extTCPLSCookie, data})
	}
	if len(m.addrs) > 0 {
		var data []byte
		for _, a := range m.addrs {
			raw := a.AsSlice()
			data = wire.AppendVector8(data, raw)
		}
		exts = append(exts, extension{extTCPLSAddr, data})
	}
	if m.userTimeout != 0 {
		exts = append(exts, extension{extTCPLSUserTimeout, wire.AppendUint32(nil, m.userTimeout)})
	}
	b := appendExtensions(nil, exts)
	return wrap(typeEncryptedExtensions, b)
}

func parseEncryptedExtensions(body []byte) (*encryptedExtensions, error) {
	m := &encryptedExtensions{}
	r := wire.NewReader(body)
	exts, err := parseExtensions(r)
	if err != nil || !r.Empty() {
		return nil, ErrDecode
	}
	_, m.tcplsHello = findExtension(exts, extTCPLSHello)
	_, m.earlyAccepted = findExtension(exts, extTCPLSEarlyData)
	if data, ok := findExtension(exts, extTCPLSJoin); ok {
		m.joinAck = len(data) == 1 && data[0] == 1
	}
	if data, ok := findExtension(exts, extTCPLSSessID); ok {
		if len(data) != SessIDLen {
			return nil, ErrDecode
		}
		var id SessID
		copy(id[:], data)
		m.sessID = &id
	}
	if data, ok := findExtension(exts, extTCPLSCookie); ok {
		if len(data)%CookieLen != 0 {
			return nil, ErrDecode
		}
		for i := 0; i < len(data); i += CookieLen {
			var c Cookie
			copy(c[:], data[i:])
			m.cookies = append(m.cookies, c)
		}
	}
	if data, ok := findExtension(exts, extTCPLSAddr); ok {
		ar := wire.NewReader(data)
		for ar.Len() > 0 {
			raw := ar.Vector8()
			if ar.Err() != nil {
				return nil, ErrDecode
			}
			addr, ok := netip.AddrFromSlice(raw)
			if !ok {
				return nil, ErrDecode
			}
			m.addrs = append(m.addrs, addr)
		}
	}
	if data, ok := findExtension(exts, extTCPLSUserTimeout); ok {
		if len(data) != 4 {
			return nil, ErrDecode
		}
		m.userTimeout = wire.Uint32(data)
	}
	return m, nil
}

// certificateMsg carries the server's Ed25519 public key and name. A real
// deployment would carry an X.509 chain; the trust decision exercised by
// the protocol (signature over the transcript, name check) is identical.
type certificateMsg struct {
	name   string
	pubKey []byte
}

func (m *certificateMsg) marshal() []byte {
	var b []byte
	b = wire.AppendVector8(b, []byte(m.name))
	b = wire.AppendVector16(b, m.pubKey)
	return wrap(typeCertificate, b)
}

func parseCertificate(body []byte) (*certificateMsg, error) {
	r := wire.NewReader(body)
	m := &certificateMsg{}
	m.name = string(r.Vector8())
	m.pubKey = r.Vector16()
	if r.Err() != nil || !r.Empty() {
		return nil, ErrDecode
	}
	return m, nil
}

// certificateVerify carries the transcript signature.
type certificateVerify struct {
	signature []byte
}

func (m *certificateVerify) marshal() []byte {
	return wrap(typeCertificateVerify, wire.AppendVector16(nil, m.signature))
}

func parseCertificateVerify(body []byte) (*certificateVerify, error) {
	r := wire.NewReader(body)
	m := &certificateVerify{signature: r.Vector16()}
	if r.Err() != nil || !r.Empty() {
		return nil, ErrDecode
	}
	return m, nil
}

// finishedMsg carries the HMAC binding the transcript to the traffic
// secrets.
type finishedMsg struct {
	verifyData []byte
}

func (m *finishedMsg) marshal() []byte {
	return wrap(typeFinished, m.verifyData)
}

func parseFinished(body []byte) (*finishedMsg, error) {
	if len(body) == 0 {
		return nil, ErrDecode
	}
	return &finishedMsg{verifyData: body}, nil
}

// endOfEarlyData terminates the client's 0-RTT flight (RFC 8446 §4.5's
// message, sent here in the first flight itself so the server's early
// read loop has a deterministic end without waiting a round trip). It is
// protected under the early traffic key and excluded from the handshake
// transcript: a server that never recovered the PSK cannot read it, so
// it cannot be part of the hash both sides must agree on.
type endOfEarlyData struct{}

func (endOfEarlyData) marshal() []byte { return wrap(typeEndOfEarlyData, nil) }

// joinAckMsg answers a single-flight join request. One byte: accepted.
type joinAckMsg struct {
	accepted bool
}

func (m *joinAckMsg) marshal() []byte {
	b := []byte{0}
	if m.accepted {
		b[0] = 1
	}
	return wrap(typeTCPLSJoinAck, b)
}

func parseJoinAck(body []byte) (*joinAckMsg, error) {
	if len(body) != 1 || body[0] > 1 {
		return nil, ErrDecode
	}
	return &joinAckMsg{accepted: body[0] == 1}, nil
}

// newSessionTicket lets the server hand the client a resumption ticket
// after the handshake (used with TFO for low-latency reconnects, §4.5).
type newSessionTicket struct {
	lifetime uint32 // seconds
	ticket   []byte
}

func (m *newSessionTicket) marshal() []byte {
	b := wire.AppendUint32(nil, m.lifetime)
	b = wire.AppendVector16(b, m.ticket)
	return wrap(typeNewSessionTicket, b)
}

func parseNewSessionTicket(body []byte) (*newSessionTicket, error) {
	r := wire.NewReader(body)
	m := &newSessionTicket{lifetime: r.Uint32(), ticket: r.Vector16()}
	if r.Err() != nil || !r.Empty() {
		return nil, ErrDecode
	}
	return m, nil
}
