package handshake

import (
	"io"

	"tcpls/internal/record"
)

// Server runs the server side of the TCPLS handshake over rw.
// See Client for the message flow.
func Server(rw MessageRW, cfg *Config) (*Result, error) {
	chBytes, err := rw.ReadMessage()
	if err != nil {
		return nil, err
	}
	typ, body, err := splitMessage(chBytes)
	if err != nil {
		return nil, err
	}
	if typ != typeClientHello {
		return nil, ErrUnexpectedMessage
	}
	ch, err := parseClientHello(body)
	if err != nil {
		return nil, err
	}

	// Single-flight join: validate the cookie and answer with a plaintext
	// ack — no key exchange, no suite negotiation. The client's engine
	// records ride directly behind its ClientHello (they surface via
	// Leftover) and are protected by the session's existing application
	// secrets, so the connection is productive one round trip sooner.
	if ch.join != nil && ch.joinFast {
		accepted := cfg.Sessions != nil && cfg.Sessions.ValidateJoin(ch.join.SessID, ch.join.Cookie)
		ack := &joinAckMsg{accepted: accepted}
		if err := rw.WriteMessage(ack.marshal()); err != nil {
			return nil, err
		}
		if !accepted {
			return nil, ErrJoinRejected
		}
		return &Result{
			TCPLSEnabled: true,
			JoinAccepted: true,
			FastJoin:     true,
			SessID:       ch.join.SessID,
			JoinConnID:   ch.join.ConnID,
		}, nil
	}

	suite, err := pickSuite(ch.suites, cfg.suites())
	if err != nil {
		return nil, err
	}

	// Evaluate a join request before committing to the handshake shape.
	// An invalid cookie rejects the connection outright: a client that
	// guessed a session ID learns nothing but "handshake failed".
	isJoin := false
	var joinID SessID
	var joinConnID uint32
	if ch.join != nil {
		if cfg.Sessions == nil || !cfg.Sessions.ValidateJoin(ch.join.SessID, ch.join.Cookie) {
			return nil, ErrJoinRejected
		}
		isJoin = true
		joinID = ch.join.SessID
		joinConnID = ch.join.ConnID
	}

	// PSK resumption: recover the PSK from the ticket; failure falls
	// back to a full handshake (the client notices via the missing echo).
	var psk []byte
	if len(ch.pskTicket) > 0 && cfg.DecryptTicket != nil && !isJoin {
		if p, ok := cfg.DecryptTicket(ch.pskTicket); ok {
			psk = p
		}
	}

	priv, err := generateKeyShare(cfg.rand())
	if err != nil {
		return nil, err
	}
	sh := &serverHello{
		sessionID:   ch.sessionID,
		suite:       suite.ID,
		keyShare:    priv.PublicKey().Bytes(),
		pskAccepted: psk != nil,
	}
	if _, err := io.ReadFull(cfg.rand(), sh.random[:]); err != nil {
		return nil, err
	}
	shBytes := sh.marshal()
	if err := rw.WriteMessage(shBytes); err != nil {
		return nil, err
	}

	ks := newKeySchedulePSK(suite, psk)
	ks.addTranscript(chBytes)
	ks.addTranscript(shBytes)

	shared, err := sharedSecret(priv, ch.keyShare)
	if err != nil {
		return nil, err
	}
	ks.advance(shared)
	clientHS := ks.trafficSecret("c hs traffic")
	serverHS := ks.trafficSecret("s hs traffic")
	if err := rw.SetHandshakeKeys(suite, serverHS, clientHS); err != nil {
		return nil, err
	}

	tcpls := cfg.TCPLSServer && ch.tcplsHello
	res := &Result{TCPLSEnabled: tcpls, JoinAccepted: isJoin, Resumed: psk != nil}

	// 0-RTT disposition. The early flight is sealed under the client's
	// first-offered suite (negotiation has not happened when it is sent),
	// so we can read it only when we recovered the PSK, support that
	// suite, and the transport exposes early-record access. Acceptance is
	// stricter still: a positive budget and a green light from the
	// anti-replay hook. Readable-but-rejected flights are decrypted and
	// discarded; unreadable ones are skipped byte-bounded.
	edRW, edOK := rw.(earlyDataRW)
	var earlySuite *record.Suite
	if ch.earlyData && len(ch.suites) > 0 {
		if s, err := record.SuiteByID(ch.suites[0]); err == nil {
			earlySuite = s
		}
	}
	canReadEarly := ch.earlyData && psk != nil && edOK && earlySuite != nil
	acceptEarly := canReadEarly && tcpls && cfg.maxEarlyData() > 0 &&
		(cfg.AcceptEarlyData == nil || cfg.AcceptEarlyData(ch.pskTicket))

	// Drain the early flight BEFORE EncryptedExtensions so the verdict in
	// EE is truthful: a flight that overflows the budget retracts
	// acceptance here, the client sees earlyAccepted=false and resends at
	// 1-RTT — a config mismatch degrades to a slower round trip, never a
	// failed connection. Safe to read now: the client wrote its whole
	// first flight (ClientHello, early records, EndOfEarlyData) before
	// reading a single server byte.
	var earlyData []byte
	switch {
	case canReadEarly:
		budget := cfg.maxEarlyData()
		if budget == 0 {
			budget = defaultMaxEarlyData // discard path with MaxEarlyData < 0
		}
		earlySecret := earlyTrafficSecret(earlySuite, psk, chBytes)
		data, overflow, err := edRW.ReadEarlyData(earlySuite, earlySecret, budget, !acceptEarly)
		if err != nil {
			return nil, err
		}
		if overflow {
			acceptEarly = false
		}
		if acceptEarly {
			earlyData = data
		}
	case ch.earlyData && edOK:
		// PSK not recovered (or suite unsupported): the early records are
		// noise we cannot decrypt. Skip them within a bounded budget —
		// sealing overhead rides on top of the plaintext cap.
		budget := cfg.maxEarlyData()
		if budget < defaultMaxEarlyData {
			budget = defaultMaxEarlyData
		}
		edRW.SkipUndecryptable(budget + 4096)
	}
	if acceptEarly {
		res.EarlyDataAccepted = true
		res.EarlyData = earlyData
	}

	ee := &encryptedExtensions{tcplsHello: tcpls, earlyAccepted: acceptEarly}
	switch {
	case isJoin:
		ee.joinAck = true
		res.SessID = joinID
		res.JoinConnID = joinConnID
	case tcpls:
		// New TCPLS session: mint the session identifier and the initial
		// cookie budget (Fig. 3's α and β_1..β_n).
		var id SessID
		if _, err := io.ReadFull(cfg.rand(), id[:]); err != nil {
			return nil, err
		}
		ee.sessID = &id
		res.SessID = id
		for i := 0; i < cfg.numCookies(); i++ {
			var c Cookie
			if _, err := io.ReadFull(cfg.rand(), c[:]); err != nil {
				return nil, err
			}
			ee.cookies = append(ee.cookies, c)
		}
		res.Cookies = ee.cookies
		ee.addrs = cfg.AdvertiseAddrs
		res.PeerAddrs = cfg.AdvertiseAddrs
		if cfg.OnSessionIssued != nil {
			cfg.OnSessionIssued(id, ee.cookies)
		}
	}
	eeBytes := ee.marshal()
	if err := rw.WriteMessage(eeBytes); err != nil {
		return nil, err
	}
	ks.addTranscript(eeBytes)

	if !isJoin && psk == nil {
		if cfg.Certificate == nil {
			return nil, ErrNoCertificate
		}
		cert := &certificateMsg{name: cfg.Certificate.Name, pubKey: cfg.Certificate.Public}
		certBytes := cert.marshal()
		if err := rw.WriteMessage(certBytes); err != nil {
			return nil, err
		}
		ks.addTranscript(certBytes)

		sig := signCertificateVerify(cfg.Certificate, ks.transcriptHash())
		cvBytes := (&certificateVerify{signature: sig}).marshal()
		if err := rw.WriteMessage(cvBytes); err != nil {
			return nil, err
		}
		ks.addTranscript(cvBytes)
	}

	fin := &finishedMsg{verifyData: ks.finishedMAC(serverHS)}
	finBytes := fin.marshal()
	if err := rw.WriteMessage(finBytes); err != nil {
		return nil, err
	}
	ks.addTranscript(finBytes)

	res.Secrets = deriveAppSecrets(ks)

	// Client Finished.
	cfinBytes, err := rw.ReadMessage()
	if err != nil {
		return nil, err
	}
	typ, body, err = splitMessage(cfinBytes)
	if err != nil {
		return nil, err
	}
	if typ != typeFinished {
		return nil, ErrUnexpectedMessage
	}
	cfin, err := parseFinished(body)
	if err != nil {
		return nil, err
	}
	if !ks.verifyFinished(clientHS, cfin.verifyData) {
		return nil, ErrBadFinished
	}
	ks.addTranscript(cfinBytes)
	res.Secrets.Resumption = ks.trafficSecret("res master")
	return res, nil
}

func signCertificateVerify(cert *Certificate, transcriptHash []byte) []byte {
	return ed25519Sign(cert, signatureInput(transcriptHash))
}
