// Package handshake implements the TLS 1.3-shaped handshake that TCPLS
// extends (paper §3.2, Fig. 3): X25519 ECDHE key exchange, the RFC 8446
// key schedule, Ed25519 server authentication, transcript-bound Finished
// messages, and the TCPLS extensions — TCPLS Hello in the ClientHello,
// and the server's encrypted ADDR / SESSID / COOKIE extensions that
// enable joining additional TCP connections to a session.
//
// The handshake is sans-IO at the message level: the client and server
// state machines exchange handshake messages through a MessageRW, which
// tests drive in memory and the transport layer drives over TLS records.
//
// This is a from-scratch implementation (see DESIGN.md): crypto/tls
// cannot be extended with new record types or handshake extensions, and
// TCPLS's contribution lives exactly there.
package handshake

import (
	"crypto/hmac"
	"hash"

	"tcpls/internal/hkdf"
	"tcpls/internal/record"
)

// keySchedule tracks the RFC 8446 §7.1 secret cascade alongside the
// running transcript hash.
type keySchedule struct {
	suite      *record.Suite
	transcript hash.Hash
	secret     []byte // current secret in the cascade
}

func newKeySchedule(suite *record.Suite) *keySchedule {
	return newKeySchedulePSK(suite, nil)
}

// newKeySchedulePSK seeds the early secret with a resumption PSK
// (RFC 8446 §7.1's PSK input); nil means no PSK.
func newKeySchedulePSK(suite *record.Suite, psk []byte) *keySchedule {
	ks := &keySchedule{suite: suite, transcript: suite.NewHash()}
	if psk == nil {
		psk = make([]byte, suite.NewHash().Size())
	}
	ks.secret = hkdf.Extract(suite.NewHash, psk, nil)
	return ks
}

// addTranscript absorbs a serialized handshake message.
func (ks *keySchedule) addTranscript(msg []byte) { ks.transcript.Write(msg) }

// transcriptHash returns the hash of all messages absorbed so far.
func (ks *keySchedule) transcriptHash() []byte { return ks.transcript.Sum(nil) }

// advance moves the cascade down one level: Derive-Secret(secret,
// "derived", "") then HKDF-Extract with the new input keying material
// (the ECDHE shared secret, or zeros for the master secret).
func (ks *keySchedule) advance(ikm []byte) {
	emptyHash := ks.suite.NewHash().Sum(nil)
	derived := hkdf.DeriveSecret(ks.suite.NewHash, ks.secret, "derived", emptyHash)
	if ikm == nil {
		ikm = make([]byte, ks.suite.NewHash().Size())
	}
	ks.secret = hkdf.Extract(ks.suite.NewHash, ikm, derived)
}

// earlyTrafficSecret derives the client_early_traffic_secret protecting
// 0-RTT records (RFC 8446 §7.1): the early secret is HKDF-Extract(PSK)
// — the top of the cascade, before any ECDHE input exists — and the
// traffic secret binds it to the ClientHello alone, the only handshake
// message on the wire when early records are sealed. Both sides can
// therefore derive it with nothing but the PSK and the CH bytes.
func earlyTrafficSecret(suite *record.Suite, psk, chBytes []byte) []byte {
	early := hkdf.Extract(suite.NewHash, psk, nil)
	h := suite.NewHash()
	h.Write(chBytes)
	return hkdf.DeriveSecret(suite.NewHash, early, "c e traffic", h.Sum(nil))
}

// trafficSecret derives a traffic secret at the current cascade level,
// bound to the current transcript.
func (ks *keySchedule) trafficSecret(label string) []byte {
	return hkdf.DeriveSecret(ks.suite.NewHash, ks.secret, label, ks.transcriptHash())
}

// finishedMAC computes the Finished verify_data for a traffic secret over
// the current transcript (RFC 8446 §4.4.4).
func (ks *keySchedule) finishedMAC(trafficSecret []byte) []byte {
	finishedKey := hkdf.ExpandLabel(ks.suite.NewHash, trafficSecret, "finished", nil, ks.suite.NewHash().Size())
	mac := hmac.New(ks.suite.NewHash, finishedKey)
	mac.Write(ks.transcriptHash())
	return mac.Sum(nil)
}

// verifyFinished checks a peer's Finished verify_data in constant time.
func (ks *keySchedule) verifyFinished(trafficSecret, verifyData []byte) bool {
	return hmac.Equal(ks.finishedMAC(trafficSecret), verifyData)
}

// Secrets is the output of a completed handshake: everything the record
// layer and session need.
type Secrets struct {
	Suite *record.Suite
	// ClientApp and ServerApp protect application data in each
	// direction; every TCPLS stream context is derived from these.
	ClientApp []byte
	ServerApp []byte
	// Resumption seeds session tickets (TFO + 0-RTT resumption, §4.5).
	Resumption []byte
	// Exporter is available for application bindings.
	Exporter []byte
}
