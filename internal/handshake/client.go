package handshake

import (
	"crypto/ed25519"
	"fmt"
	"io"

	"tcpls/internal/record"
)

// Client runs the client side of the TCPLS handshake over rw and returns
// the negotiated secrets and TCPLS parameters.
//
// Message flow (paper Fig. 3):
//
//	C -> S  ClientHello{key_share, TCPLS Hello | TCPLS Join}
//	S -> C  ServerHello{key_share}
//	        ... handshake keys installed ...
//	S -> C  EncryptedExtensions{TCPLS Hello, ADDR, SESSID, COOKIE | Join ack}
//	S -> C  Certificate, CertificateVerify          (new sessions only)
//	S -> C  Finished
//	C -> S  Finished
func Client(rw MessageRW, cfg *Config) (*Result, error) {
	priv, err := generateKeyShare(cfg.rand())
	if err != nil {
		return nil, err
	}

	ch := &clientHello{
		suites:     cfg.suites(),
		serverName: cfg.ServerName,
		keyShare:   priv.PublicKey().Bytes(),
		tcplsHello: cfg.EnableTCPLS || cfg.Join != nil,
	}
	if _, err := io.ReadFull(cfg.rand(), ch.random[:]); err != nil {
		return nil, err
	}
	if cfg.Join != nil {
		ch.join = &joinRequest{SessID: cfg.Join.SessID, Cookie: cfg.Join.Cookie, ConnID: cfg.Join.ConnID}
	}
	if len(cfg.PSK) > 0 && len(cfg.PSKTicket) > 0 {
		ch.pskTicket = cfg.PSKTicket
	}
	// 0-RTT: offer early data only when resuming and the transport can
	// seal early records. The flight goes out right behind the CH —
	// before the server has said anything — so the offer is a bet that
	// the server still holds the ticket key.
	edRW, edOK := rw.(earlyDataRW)
	offerEarly := len(cfg.EarlyData) > 0 && len(ch.pskTicket) > 0 && edOK
	ch.earlyData = offerEarly
	chBytes := ch.marshal()
	if err := rw.WriteMessage(chBytes); err != nil {
		return nil, err
	}
	if offerEarly {
		// The early suite is pinned to the client's first offer: the
		// server derives the same key before suite negotiation completes.
		earlySuite, err := record.SuiteByID(cfg.suites()[0])
		if err != nil {
			return nil, err
		}
		earlySecret := earlyTrafficSecret(earlySuite, cfg.PSK, chBytes)
		if err := edRW.WriteEarlyData(earlySuite, earlySecret, cfg.EarlyData); err != nil {
			return nil, err
		}
	}

	shBytes, err := rw.ReadMessage()
	if err != nil {
		return nil, err
	}
	typ, body, err := splitMessage(shBytes)
	if err != nil {
		return nil, err
	}
	if typ != typeServerHello {
		return nil, ErrUnexpectedMessage
	}
	sh, err := parseServerHello(body)
	if err != nil {
		return nil, err
	}
	suite, err := pickSuite([]record.SuiteID{sh.suite}, cfg.suites())
	if err != nil {
		return nil, err
	}

	// The server's PSK echo decides the key-schedule seed: both sides
	// must agree before deriving handshake secrets.
	resumed := sh.pskAccepted && len(cfg.PSK) > 0
	var ks *keySchedule
	if resumed {
		ks = newKeySchedulePSK(suite, cfg.PSK)
	} else {
		ks = newKeySchedule(suite)
	}
	ks.addTranscript(chBytes)
	ks.addTranscript(shBytes)

	shared, err := sharedSecret(priv, sh.keyShare)
	if err != nil {
		return nil, err
	}
	ks.advance(shared) // handshake secret
	clientHS := ks.trafficSecret("c hs traffic")
	serverHS := ks.trafficSecret("s hs traffic")
	if err := rw.SetHandshakeKeys(suite, clientHS, serverHS); err != nil {
		return nil, err
	}

	// EncryptedExtensions.
	eeBytes, err := rw.ReadMessage()
	if err != nil {
		return nil, err
	}
	typ, body, err = splitMessage(eeBytes)
	if err != nil {
		return nil, err
	}
	if typ != typeEncryptedExtensions {
		return nil, ErrUnexpectedMessage
	}
	ee, err := parseEncryptedExtensions(body)
	if err != nil {
		return nil, err
	}
	ks.addTranscript(eeBytes)

	res := &Result{
		TCPLSEnabled: ee.tcplsHello,
		JoinAccepted: ee.joinAck,
		Cookies:      ee.cookies,
		PeerAddrs:    ee.addrs,
	}
	if ee.sessID != nil {
		res.SessID = *ee.sessID
	}
	if cfg.Join != nil {
		if !ee.joinAck {
			return nil, ErrJoinRejected
		}
		res.SessID = cfg.Join.SessID
		res.JoinConnID = cfg.Join.ConnID
	}

	res.Resumed = resumed
	// Early data survives only if the server echoed acceptance AND the
	// PSK actually seeded the key schedule; any other combination means
	// the flight was discarded and the caller must resend at 1-RTT.
	res.EarlyDataAccepted = offerEarly && resumed && ee.earlyAccepted

	// Certificate + CertificateVerify, skipped on joins (possession of
	// the single-use encrypted cookie authenticates the session binding)
	// and on PSK resumption (the PSK authenticates continuity).
	if cfg.Join == nil && !resumed {
		certBytes, err := rw.ReadMessage()
		if err != nil {
			return nil, err
		}
		typ, body, err = splitMessage(certBytes)
		if err != nil {
			return nil, err
		}
		if typ != typeCertificate {
			return nil, ErrUnexpectedMessage
		}
		cert, err := parseCertificate(body)
		if err != nil {
			return nil, err
		}
		ks.addTranscript(certBytes)

		cvBytes, err := rw.ReadMessage()
		if err != nil {
			return nil, err
		}
		typ, body, err = splitMessage(cvBytes)
		if err != nil {
			return nil, err
		}
		if typ != typeCertificateVerify {
			return nil, ErrUnexpectedMessage
		}
		cv, err := parseCertificateVerify(body)
		if err != nil {
			return nil, err
		}
		// The signature covers the transcript up to (and including) the
		// Certificate message.
		pub := ed25519.PublicKey(cert.pubKey)
		if len(pub) != ed25519.PublicKeySize {
			return nil, ErrBadSignature
		}
		if !ed25519.Verify(pub, signatureInput(ks.transcriptHash()), cv.signature) {
			return nil, ErrBadSignature
		}
		if len(cfg.RootKeys) > 0 {
			trusted := false
			for _, k := range cfg.RootKeys {
				if k.Equal(pub) {
					trusted = true
					break
				}
			}
			if !trusted {
				return nil, ErrUntrustedKey
			}
		}
		if cfg.ServerName != "" && cert.name != cfg.ServerName {
			return nil, fmt.Errorf("handshake: server name %q does not match %q", cert.name, cfg.ServerName)
		}
		res.PeerName = cert.name
		ks.addTranscript(cvBytes)
	}

	// Server Finished.
	finBytes, err := rw.ReadMessage()
	if err != nil {
		return nil, err
	}
	typ, body, err = splitMessage(finBytes)
	if err != nil {
		return nil, err
	}
	if typ != typeFinished {
		return nil, ErrUnexpectedMessage
	}
	fin, err := parseFinished(body)
	if err != nil {
		return nil, err
	}
	if !ks.verifyFinished(serverHS, fin.verifyData) {
		return nil, ErrBadFinished
	}
	ks.addTranscript(finBytes)

	// Application secrets are bound to the transcript through the server
	// Finished.
	res.Secrets = deriveAppSecrets(ks)

	// Client Finished.
	cfin := &finishedMsg{verifyData: ks.finishedMAC(clientHS)}
	cfinBytes := cfin.marshal()
	if err := rw.WriteMessage(cfinBytes); err != nil {
		return nil, err
	}
	ks.addTranscript(cfinBytes)
	res.Secrets.Resumption = ks.trafficSecret("res master")
	return res, nil
}

// StartFastJoin writes a single-flight join ClientHello: the caller may
// immediately follow it with engine records protected by the session's
// existing application secrets, making the joining connection productive
// one round trip sooner than Client with cfg.Join. No key exchange
// happens — possession of the single-use cookie authenticates the
// binding, and record protection comes from the already-established
// session keys, so there is nothing for a handshake to derive.
func StartFastJoin(rw MessageRW, cfg *Config) error {
	if cfg.Join == nil {
		return ErrJoinRejected
	}
	ch := &clientHello{
		suites:     cfg.suites(),
		tcplsHello: true,
		joinFast:   true,
		join: &joinRequest{
			SessID: cfg.Join.SessID,
			Cookie: cfg.Join.Cookie,
			ConnID: cfg.Join.ConnID,
		},
	}
	if _, err := io.ReadFull(cfg.rand(), ch.random[:]); err != nil {
		return err
	}
	return rw.WriteMessage(ch.marshal())
}

// FinishFastJoin reads the server's plaintext join ack. Call after the
// optimistic first flight is on the wire; a rejection means the cookie
// was spent for nothing and the piggybacked records were dropped.
func FinishFastJoin(rw MessageRW) error {
	msg, err := rw.ReadMessage()
	if err != nil {
		return err
	}
	typ, body, err := splitMessage(msg)
	if err != nil {
		return err
	}
	if typ != typeTCPLSJoinAck {
		return ErrUnexpectedMessage
	}
	ack, err := parseJoinAck(body)
	if err != nil {
		return err
	}
	if !ack.accepted {
		return ErrJoinRejected
	}
	return nil
}
