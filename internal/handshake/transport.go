package handshake

import (
	"errors"
	"fmt"
	"io"

	"tcpls/internal/record"
	"tcpls/internal/wire"
)

// Transport carries handshake messages over a byte stream using TLS
// records: ClientHello and ServerHello travel in plaintext handshake
// records (content type 22, as on a real TLS wire — this is what
// middleboxes inspect, Sec. 5.2), and everything after the key exchange
// travels in encrypted records indistinguishable from application data.
type Transport struct {
	rw io.ReadWriter

	deframer record.Deframer
	readBuf  []byte // raw bytes staging area
	pending  []byte // accumulated handshake payload awaiting full messages

	send *record.StreamContext // nil until handshake keys installed
	recv *record.StreamContext
}

// NewTransport wraps a byte stream (usually a TCP connection).
func NewTransport(rw io.ReadWriter) *Transport {
	return &Transport{rw: rw, readBuf: make([]byte, 16*1024)}
}

// ErrPlaintextTooLarge guards the plaintext handshake phase.
var ErrPlaintextTooLarge = errors.New("handshake: message exceeds record size")

// WriteMessage sends one handshake message.
func (t *Transport) WriteMessage(msg []byte) error {
	if t.send == nil {
		if len(msg) > record.MaxPlaintextLen {
			return ErrPlaintextTooLarge
		}
		hdr := []byte{
			record.ContentTypeHandshake, 0x03, 0x03,
			byte(len(msg) >> 8), byte(len(msg)),
		}
		if _, err := t.rw.Write(append(hdr, msg...)); err != nil {
			return err
		}
		return nil
	}
	// Encrypted phase: chunk long messages across records.
	for len(msg) > 0 {
		n := len(msg)
		if n > record.MaxPlaintextLen {
			n = record.MaxPlaintextLen
		}
		rec, err := t.send.Seal(nil, record.ContentTypeHandshake, msg[:n], 0)
		if err != nil {
			return err
		}
		if _, err := t.rw.Write(rec); err != nil {
			return err
		}
		msg = msg[n:]
	}
	return nil
}

// ReadMessage returns the next complete handshake message.
func (t *Transport) ReadMessage() ([]byte, error) {
	for {
		if msg, ok, err := t.nextFromPending(); err != nil || ok {
			return msg, err
		}
		rec, ok, err := t.deframer.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			t.deframer.Compact() // about to reuse readBuf
			n, err := t.rw.Read(t.readBuf)
			if n > 0 {
				t.deframer.Feed(t.readBuf[:n])
				continue
			}
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := t.consumeRecord(rec); err != nil {
			return nil, err
		}
	}
}

func (t *Transport) consumeRecord(rec []byte) error {
	if t.recv == nil {
		if rec[0] != record.ContentTypeHandshake {
			return fmt.Errorf("handshake: unexpected record type %d during plaintext phase", rec[0])
		}
		t.pending = append(t.pending, rec[record.HeaderLen:]...)
		return nil
	}
	ct, content, err := t.recv.Open(rec)
	if err != nil {
		return err
	}
	if ct != record.ContentTypeHandshake {
		return fmt.Errorf("handshake: unexpected inner type %d", ct)
	}
	t.pending = append(t.pending, content...)
	return nil
}

// nextFromPending extracts one complete handshake message if buffered.
func (t *Transport) nextFromPending() ([]byte, bool, error) {
	if len(t.pending) < 4 {
		return nil, false, nil
	}
	bodyLen := int(wire.Uint24(t.pending[1:4]))
	total := 4 + bodyLen
	if len(t.pending) < total {
		return nil, false, nil
	}
	msg := append([]byte(nil), t.pending[:total]...)
	t.pending = t.pending[total:]
	return msg, true, nil
}

// SetHandshakeKeys switches the transport to encrypted handshake records.
// Stream ID 0 matches the context TLS 1.3 itself would use.
func (t *Transport) SetHandshakeKeys(suite *record.Suite, sendSecret, recvSecret []byte) error {
	sendKey, sendIV := record.DeriveTrafficKeys(suite, sendSecret)
	recvKey, recvIV := record.DeriveTrafficKeys(suite, recvSecret)
	var err error
	if t.send, err = record.NewStreamContext(suite, sendKey, sendIV, 0); err != nil {
		return err
	}
	t.recv, err = record.NewStreamContext(suite, recvKey, recvIV, 0)
	return err
}

// Leftover returns raw application-phase bytes that arrived coalesced
// behind the final handshake record (including partial records), so the
// session layer does not lose them.
func (t *Transport) Leftover() []byte { return t.deframer.Drain() }
