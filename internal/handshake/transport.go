package handshake

import (
	"errors"
	"fmt"
	"io"

	"tcpls/internal/record"
	"tcpls/internal/wire"
)

// Transport carries handshake messages over a byte stream using TLS
// records: ClientHello and ServerHello travel in plaintext handshake
// records (content type 22, as on a real TLS wire — this is what
// middleboxes inspect, Sec. 5.2), and everything after the key exchange
// travels in encrypted records indistinguishable from application data.
type Transport struct {
	rw io.ReadWriter

	deframer record.Deframer
	readBuf  []byte // raw bytes staging area
	pending  []byte // accumulated handshake payload awaiting full messages

	send *record.StreamContext // nil until handshake keys installed
	recv *record.StreamContext

	// skipBudget, when positive, tolerates records that fail decryption
	// during the encrypted phase: a server that could not recover a
	// 0-RTT client's PSK drops the undecryptable early flight (bounded)
	// instead of failing the handshake. Decrements by wire bytes.
	skipBudget int
}

// NewTransport wraps a byte stream (usually a TCP connection).
func NewTransport(rw io.ReadWriter) *Transport {
	return &Transport{rw: rw, readBuf: make([]byte, 16*1024)}
}

// ErrPlaintextTooLarge guards the plaintext handshake phase.
var ErrPlaintextTooLarge = errors.New("handshake: message exceeds record size")

// WriteMessage sends one handshake message.
func (t *Transport) WriteMessage(msg []byte) error {
	if t.send == nil {
		if len(msg) > record.MaxPlaintextLen {
			return ErrPlaintextTooLarge
		}
		hdr := []byte{
			record.ContentTypeHandshake, 0x03, 0x03,
			byte(len(msg) >> 8), byte(len(msg)),
		}
		if _, err := t.rw.Write(append(hdr, msg...)); err != nil {
			return err
		}
		return nil
	}
	// Encrypted phase: chunk long messages across records.
	for len(msg) > 0 {
		n := len(msg)
		if n > record.MaxPlaintextLen {
			n = record.MaxPlaintextLen
		}
		rec, err := t.send.Seal(nil, record.ContentTypeHandshake, msg[:n], 0)
		if err != nil {
			return err
		}
		if _, err := t.rw.Write(rec); err != nil {
			return err
		}
		msg = msg[n:]
	}
	return nil
}

// ReadMessage returns the next complete handshake message.
func (t *Transport) ReadMessage() ([]byte, error) {
	for {
		if msg, ok, err := t.nextFromPending(); err != nil || ok {
			return msg, err
		}
		rec, err := t.nextRecord()
		if err != nil {
			return nil, err
		}
		if err := t.consumeRecord(rec); err != nil {
			return nil, err
		}
	}
}

// nextRecord blocks for the next full wire record.
func (t *Transport) nextRecord() ([]byte, error) {
	for {
		rec, ok, err := t.deframer.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			return rec, nil
		}
		t.deframer.Compact() // about to reuse readBuf
		n, err := t.rw.Read(t.readBuf)
		if n > 0 {
			t.deframer.Feed(t.readBuf[:n])
			continue
		}
		if err != nil {
			return nil, err
		}
	}
}

func (t *Transport) consumeRecord(rec []byte) error {
	if t.recv == nil {
		if rec[0] != record.ContentTypeHandshake {
			return fmt.Errorf("handshake: unexpected record type %d during plaintext phase", rec[0])
		}
		t.pending = append(t.pending, rec[record.HeaderLen:]...)
		return nil
	}
	ct, content, err := t.recv.Open(rec)
	if err != nil {
		// Trial skip (0-RTT reject without the PSK): drop records the
		// handshake keys do not authenticate, within the armed budget. A
		// failed Open does not advance the receive sequence, so the
		// client Finished that eventually follows still decrypts.
		if errors.Is(err, record.ErrDecrypt) && t.skipBudget >= len(rec) {
			t.skipBudget -= len(rec)
			return nil
		}
		return err
	}
	if ct != record.ContentTypeHandshake {
		return fmt.Errorf("handshake: unexpected inner type %d", ct)
	}
	t.pending = append(t.pending, content...)
	return nil
}

// SkipUndecryptable arms the trial-skip budget (wire bytes) for rejected
// 0-RTT flights the transport cannot decrypt.
func (t *Transport) SkipUndecryptable(budget int) { t.skipBudget = budget }

// earlyContext builds the stream-0 record context for the 0-RTT key.
func earlyContext(suite *record.Suite, secret []byte) (*record.StreamContext, error) {
	key, iv := record.DeriveTrafficKeys(suite, secret)
	return record.NewStreamContext(suite, key, iv, 0)
}

// WriteEarlyData seals the client's 0-RTT flight: application records
// under the early traffic key, terminated by EndOfEarlyData under the
// same key. Sent immediately after the ClientHello, before any server
// byte arrives.
func (t *Transport) WriteEarlyData(suite *record.Suite, secret, data []byte) error {
	ctx, err := earlyContext(suite, secret)
	if err != nil {
		return err
	}
	for len(data) > 0 {
		n := len(data)
		if n > record.MaxPlaintextLen {
			n = record.MaxPlaintextLen
		}
		rec, err := ctx.Seal(nil, record.ContentTypeApplicationData, data[:n], 0)
		if err != nil {
			return err
		}
		if _, err := t.rw.Write(rec); err != nil {
			return err
		}
		data = data[n:]
	}
	rec, err := ctx.Seal(nil, record.ContentTypeHandshake, endOfEarlyData{}.marshal(), 0)
	if err != nil {
		return err
	}
	_, err = t.rw.Write(rec)
	return err
}

// earlyOverflowSlack bounds how much a flight may exceed the budget
// before the handshake hard-fails anyway: past the budget the payload is
// only authenticated and dropped, so the slack costs no memory, but an
// unbounded discard loop would let a hostile client pin the connection
// forever.
const earlyOverflowSlack = 1 << 20

// ReadEarlyData consumes the client's 0-RTT flight under the early key,
// up to max plaintext bytes, returning at EndOfEarlyData. With discard
// the payload is authenticated, counted against the same budget, and
// dropped — the decrypt-and-discard path of a rejected-but-readable
// offer. A flight that exceeds the budget does not fail the handshake:
// delivery stops, the rest of the flight (within a hard slack) is
// drained and dropped, and overflow=true tells the server to retract its
// acceptance so the client resends at 1-RTT. Must run after the
// ClientHello and before the next ReadMessage.
func (t *Transport) ReadEarlyData(suite *record.Suite, secret []byte, max int, discard bool) (data []byte, overflow bool, err error) {
	ctx, err := earlyContext(suite, secret)
	if err != nil {
		return nil, false, err
	}
	var out []byte
	budget := max
	for {
		rec, err := t.nextRecord()
		if err != nil {
			return nil, false, err
		}
		ct, content, err := ctx.Open(rec)
		if err != nil {
			return nil, false, err
		}
		switch ct {
		case record.ContentTypeApplicationData:
			budget -= len(content)
			if budget < -earlyOverflowSlack {
				return nil, true, ErrEarlyDataOverflow
			}
			if budget < 0 {
				// Over budget: retract delivery entirely (the client will
				// resend the whole payload at 1-RTT) and keep draining to
				// EndOfEarlyData so the handshake stays in sync.
				overflow = true
				out = nil
			}
			if !discard && !overflow {
				out = append(out, content...)
			}
		case record.ContentTypeHandshake:
			typ, _, err := splitMessage(content)
			if err != nil {
				return nil, false, err
			}
			if typ != typeEndOfEarlyData {
				return nil, overflow, ErrUnexpectedMessage
			}
			return out, overflow, nil
		default:
			return nil, overflow, fmt.Errorf("handshake: unexpected inner type %d in early data", ct)
		}
	}
}

// nextFromPending extracts one complete handshake message if buffered.
func (t *Transport) nextFromPending() ([]byte, bool, error) {
	if len(t.pending) < 4 {
		return nil, false, nil
	}
	bodyLen := int(wire.Uint24(t.pending[1:4]))
	total := 4 + bodyLen
	if len(t.pending) < total {
		return nil, false, nil
	}
	msg := append([]byte(nil), t.pending[:total]...)
	t.pending = t.pending[total:]
	return msg, true, nil
}

// SetHandshakeKeys switches the transport to encrypted handshake records.
// Stream ID 0 matches the context TLS 1.3 itself would use.
func (t *Transport) SetHandshakeKeys(suite *record.Suite, sendSecret, recvSecret []byte) error {
	sendKey, sendIV := record.DeriveTrafficKeys(suite, sendSecret)
	recvKey, recvIV := record.DeriveTrafficKeys(suite, recvSecret)
	var err error
	if t.send, err = record.NewStreamContext(suite, sendKey, sendIV, 0); err != nil {
		return err
	}
	t.recv, err = record.NewStreamContext(suite, recvKey, recvIV, 0)
	return err
}

// Leftover returns raw application-phase bytes that arrived coalesced
// behind the final handshake record (including partial records), so the
// session layer does not lose them.
func (t *Transport) Leftover() []byte { return t.deframer.Drain() }
