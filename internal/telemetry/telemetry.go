// Package telemetry is the production-observability layer: a lock-free
// metrics registry (atomic counters, gauges, and fixed-bucket
// histograms) with Prometheus text-format exposition, a bounded
// ring-buffer trace sink that turns the engine's QLOG-style events into
// JSON lines without ever blocking the protocol path, and an HTTP
// server wiring /metrics together with net/http/pprof.
//
// The package is deliberately dependency-free (internal/core imports it,
// not the other way around). Hot-path updates are single atomic
// operations on pre-resolved handles: label resolution — the only
// allocating step — happens once, when a session, connection, or stream
// is created, never per record.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is safe to update (no-op), so callers
// can keep telemetry optional with a single nil-check — or none at all.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are a programming error; they wrap).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Like Counter, nil receivers
// are safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram with atomic bucket counts and a
// CAS-maintained float64 sum — Observe is lock-free and allocation-free.
// Bucket bounds are upper bounds in ascending order; an implicit +Inf
// bucket catches the tail. nil receivers are safe no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, cumulative at exposition time
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a standalone histogram (registry-less use, e.g.
// tests). bounds must be ascending.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤16) and the branch
	// predictor eats this; a binary search buys nothing at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Default histogram bucket sets for the TCPLS metric families.
var (
	// RTTBuckets spans 100µs..10s in roughly 3x steps (seconds).
	RTTBuckets = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}
	// SizeBuckets spans 64B..the 16 KiB TLS record ceiling (bytes).
	SizeBuckets = []float64{64, 256, 1024, 4096, 8192, 16384}
)
