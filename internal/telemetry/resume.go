package telemetry

// ResumeFamilies is the session-resumption metric family set: ticket
// resumption outcomes, 0-RTT early-data dispositions, single-flight
// joins, and the anti-replay register's memory gauge. Like the other
// family sets, creation is idempotent and multiple listeners aggregate
// under the listener label.
type ResumeFamilies struct {
	accepted      *CounterVec // listener
	rejected      *CounterVec // listener
	earlyAccepted *CounterVec // listener
	earlyRejected *CounterVec // listener
	earlyBytes    *CounterVec // listener
	joinFastpath  *CounterVec // listener
	replayEntries *GaugeVec   // listener
}

// ResumeFamiliesOn registers (or resolves) the resumption metric set on r.
func ResumeFamiliesOn(r *Registry) *ResumeFamilies {
	return &ResumeFamilies{
		accepted:      r.CounterVec("tcpls_resume_accepted_total", "Handshakes resumed from a ticket PSK.", "listener"),
		rejected:      r.CounterVec("tcpls_resume_rejected_total", "Offered tickets that fell back to a full handshake (unknown key, aged out, forged).", "listener"),
		earlyAccepted: r.CounterVec("tcpls_early_data_accepted_total", "0-RTT early-data flights accepted and delivered.", "listener"),
		earlyRejected: r.CounterVec("tcpls_early_data_rejected_total", "0-RTT early-data flights rejected (replay, budget, policy) and discarded.", "listener"),
		earlyBytes:    r.CounterVec("tcpls_early_data_bytes_total", "Plaintext bytes delivered from accepted 0-RTT flights.", "listener"),
		joinFastpath:  r.CounterVec("tcpls_join_fastpath_total", "Connections joined via the single-flight fast path.", "listener"),
		replayEntries: r.GaugeVec("tcpls_replay_entries", "Ticket nonces currently held by the anti-replay strike register.", "listener"),
	}
}

// ResumeMetrics is one listener's pre-resolved handle set; nil-safe
// throughout (a nil receiver disables everything via the metric types'
// nil receivers).
type ResumeMetrics struct {
	Accepted      *Counter
	Rejected      *Counter
	EarlyAccepted *Counter
	EarlyRejected *Counter
	EarlyBytes    *Counter
	JoinFastpath  *Counter
	ReplayEntries *Gauge
}

// Listener resolves the per-listener handles for label value listener.
func (f *ResumeFamilies) Listener(listener string) *ResumeMetrics {
	return &ResumeMetrics{
		Accepted:      f.accepted.With(listener),
		Rejected:      f.rejected.With(listener),
		EarlyAccepted: f.earlyAccepted.With(listener),
		EarlyRejected: f.earlyRejected.With(listener),
		EarlyBytes:    f.earlyBytes.With(listener),
		JoinFastpath:  f.joinFastpath.With(listener),
		ReplayEntries: f.replayEntries.With(listener),
	}
}
