package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates family types in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label schema and any number of
// labelled children. Child resolution takes the family lock; the
// returned handles are updated lock-free afterwards.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	order    []string // child keys in first-seen order, for stable exposition
	children map[string]any
}

// labelKey joins label values into the child map key. Values are joined
// with \xff, which cannot appear in a valid label value.
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

// child returns (creating if needed) the child for the given label
// values; mk builds a fresh metric value.
func (f *family) child(values []string, mk func() any) any {
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Family registration is idempotent: asking for an
// already-registered name with the same kind and label schema returns
// the existing family, so several sessions can share one registry.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that sessions aggregate into
// unless configured otherwise.
func Default() *Registry { return defaultRegistry }

// register resolves or creates a family, enforcing schema consistency.
func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: %s re-registered with labels %v, was %v",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]any),
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or resolves) a counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (one per label, in
// schema order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or resolves) a gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a labelled histogram family with shared bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers (or resolves) a histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.child(values, func() any { return NewHistogram(f.bounds) }).(*Histogram)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatLabels renders {k="v",...}; extra appends additional pairs (the
// histogram "le" label).
func formatLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(val))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format.
// Families appear in registration order, children in first-seen order —
// stable output that diffing and tests can rely on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]any, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for i, key := range keys {
			values := strings.Split(key, "\xff")
			if key == "" {
				values = nil
			}
			switch c := children[i].(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(f.labels, values, "", ""), c.Load()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(f.labels, values, "", ""), c.Load()); err != nil {
					return err
				}
			case *Histogram:
				var cum uint64
				for bi := range c.counts {
					cum += c.counts[bi].Load()
					le := "+Inf"
					if bi < len(c.bounds) {
						le = formatFloat(c.bounds[bi])
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(f.labels, values, "le", le), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(f.labels, values, "", ""), formatFloat(c.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(f.labels, values, "", ""), c.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Gather returns a flat snapshot of every counter and gauge child as
// name{labels} -> value, for tests and the Session.Metrics API.
// Histograms contribute name_count and name_sum entries.
func (r *Registry) Gather() map[string]float64 {
	out := make(map[string]float64)
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		for key, child := range f.children {
			values := strings.Split(key, "\xff")
			if key == "" {
				values = nil
			}
			id := f.name + formatLabels(f.labels, values, "", "")
			switch c := child.(type) {
			case *Counter:
				out[id] = float64(c.Load())
			case *Gauge:
				out[id] = float64(c.Load())
			case *Histogram:
				out[id+"_count"] = float64(c.Count())
				out[id+"_sum"] = c.Sum()
			}
		}
		f.mu.Unlock()
	}
	return out
}

// SumValues sums the current values of every child of the named family
// without copying the registry: counters and gauges add their value,
// histograms their observation sum. ok is false for an unregistered
// name. Allocation-free — the health sampler calls this each tick for
// the process-level families (resumption acceptance, admission
// rejects, rotate failures).
func (r *Registry) SumValues(name string) (sum float64, ok bool) {
	r.mu.Lock()
	f := r.byName[name]
	r.mu.Unlock()
	if f == nil {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, child := range f.children {
		switch c := child.(type) {
		case *Counter:
			sum += float64(c.Load())
		case *Gauge:
			sum += float64(c.Load())
		case *Histogram:
			sum += c.Sum()
		}
	}
	return sum, true
}

// Families lists registered family names (sorted), mostly for tests.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
