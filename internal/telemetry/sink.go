package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one qlog-flavoured trace occurrence, mirroring the engine's
// TraceEvent (telemetry cannot import internal/core — core imports
// telemetry). The default wire format is qlog-lines: one JSON header
// line followed by one JSON event per line,
//
//	{"qlog_version":"0.3","qlog_format":"NDJSON","title":"tcpls"}
//	{"time_us":..., "category":"transport", "type":"record_sent", "data":{"conn":0,"stream":2,"seq":41,"bytes":16368}}
//
// SinkOptions.Flat selects the legacy flat schema instead (no header):
//
//	{"time_us":..., "name":"record_sent", "conn":0, "stream":2, "seq":41, "bytes":16368}
type Event struct {
	Time   time.Time `json:"-"`
	TimeUS int64     `json:"time_us"`
	Name   string    `json:"name"`
	Conn   uint32    `json:"conn"`
	Stream uint32    `json:"stream"`
	Seq    uint64    `json:"seq"`
	Bytes  int       `json:"bytes"`

	// Record-lifecycle span legs (record_span events only); zero time
	// legs serialize as 0 and mean "leg not stamped" (e.g. a record
	// whose socket write was never reported).
	EnqueuedAt time.Time `json:"-"`
	SealedAt   time.Time `json:"-"`
	WrittenAt  time.Time `json:"-"`
	AckedAt    time.Time `json:"-"`
	EnqUS      int64     `json:"enq_us,omitempty"`
	SealedUS   int64     `json:"sealed_us,omitempty"`
	WrittenUS  int64     `json:"written_us,omitempty"`
	AckedUS    int64     `json:"acked_us,omitempty"`
	OrigConn   uint32    `json:"orig_conn,omitempty"`
	Retx       int       `json:"retx,omitempty"`
}

// stampUS converts the time.Time fields into their serialized
// microsecond counterparts. Zero times stay 0, not a huge negative
// UnixMicro.
func (ev *Event) stampUS() {
	ev.TimeUS = ev.Time.UnixMicro()
	us := func(t time.Time) int64 {
		if t.IsZero() {
			return 0
		}
		return t.UnixMicro()
	}
	ev.EnqUS = us(ev.EnqueuedAt)
	ev.SealedUS = us(ev.SealedAt)
	ev.WrittenUS = us(ev.WrittenAt)
	ev.AckedUS = us(ev.AckedAt)
}

// QlogHeader is the first line of qlog-framed trace output.
const QlogHeader = `{"qlog_version":"0.3","qlog_format":"NDJSON","title":"tcpls"}`

// qlogEvent is the qlog-framed serialization of an Event: category/type
// at the top level (so qvis-style tooling can route on them) and the
// TCPLS identifiers under data.
type qlogEvent struct {
	TimeUS   int64    `json:"time_us"`
	Category string   `json:"category"`
	Type     string   `json:"type"`
	Data     qlogData `json:"data"`
}

type qlogData struct {
	Conn      uint32 `json:"conn"`
	Stream    uint32 `json:"stream"`
	Seq       uint64 `json:"seq"`
	Bytes     int    `json:"bytes"`
	EnqUS     int64  `json:"enq_us,omitempty"`
	SealedUS  int64  `json:"sealed_us,omitempty"`
	WrittenUS int64  `json:"written_us,omitempty"`
	AckedUS   int64  `json:"acked_us,omitempty"`
	OrigConn  uint32 `json:"orig_conn,omitempty"`
	Retx      int    `json:"retx,omitempty"`
}

// Category buckets one event type for qlog framing. Unknown types
// (future events, wrapper Notes) land in "session".
func Category(name string) string {
	switch name {
	case "record_sent", "record_received", "ack_sent", "ack_received",
		"dup_dropped", "ctl_sent", "ctl_received":
		return "transport"
	case "record_span":
		return "span"
	case "conn_failed", "failover_started", "failover_cascade", "sync_sent",
		"sync_received", "retransmit", "reconnect_attempt", "reconnect_ok":
		return "recovery"
	case "sched_pick", "sched_invalid", "path_metrics", "reorder_depth":
		return "scheduling"
	case "conn_added", "stream_attached", "stream_fin", "cookie_issued",
		"cookie_consumed", "cookie_received", "join_accepted",
		"join_rejected", "ticket_issued", "ticket_received":
		return "connectivity"
	case "healthy", "stall_suspected", "retransmit_storm", "memory_growth",
		"path_asymmetry", "resume_failure_spike", "admission_pressure":
		return "health"
	default:
		return "session"
	}
}

// encodeQlog writes one event in qlog framing through enc.
func encodeQlog(enc *json.Encoder, ev *Event) error {
	return enc.Encode(&qlogEvent{
		TimeUS:   ev.TimeUS,
		Category: Category(ev.Name),
		Type:     ev.Name,
		Data: qlogData{
			Conn:      ev.Conn,
			Stream:    ev.Stream,
			Seq:       ev.Seq,
			Bytes:     ev.Bytes,
			EnqUS:     ev.EnqUS,
			SealedUS:  ev.SealedUS,
			WrittenUS: ev.WrittenUS,
			AckedUS:   ev.AckedUS,
			OrigConn:  ev.OrigConn,
			Retx:      ev.Retx,
		},
	})
}

// SinkOptions tunes a Sink.
type SinkOptions struct {
	// Capacity bounds the ring buffer (default 4096 events). When the
	// writer cannot keep up, Emit drops instead of blocking.
	Capacity int
	// Sample keeps one event in Sample (0 and 1 mean every event). The
	// skipped events are neither written nor counted as drops.
	Sample int
	// Flat selects the legacy flat JSON schema (one object per line, no
	// qlog header). Default is qlog framing.
	Flat bool
	// Events / Dropped, when set, mirror the sink's internal counters
	// into registry metrics (tcpls_trace_events_total /
	// tcpls_trace_dropped_total). Nil is fine.
	Events  *Counter
	Dropped *Counter
}

// Sink is a bounded, non-blocking trace writer: producers enqueue with
// a lock-free channel send and never wait on I/O; a dedicated goroutine
// drains the ring and writes JSON lines through a buffered writer,
// flushing whenever the ring goes idle. A stalled writer (full pipe,
// dead disk) fills the ring and subsequent events are dropped and
// counted — the engine's send/recv path is never backpressured by
// tracing.
type Sink struct {
	ch      chan Event
	sample  int
	flat    bool
	seq     atomic.Uint64
	dropped atomic.Uint64
	emitted atomic.Uint64
	events  *Counter
	dropCtr *Counter

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewSink starts a sink writing to w. Call Close to flush and stop.
func NewSink(w io.Writer, opts SinkOptions) *Sink {
	cap := opts.Capacity
	if cap <= 0 {
		cap = 4096
	}
	s := &Sink{
		ch:      make(chan Event, cap),
		sample:  opts.Sample,
		flat:    opts.Flat,
		events:  opts.Events,
		dropCtr: opts.Dropped,
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.writeLoop(w)
	return s
}

// Emit enqueues one event. It never blocks: with the ring full the
// event is dropped and the drop counters increment.
func (s *Sink) Emit(ev Event) {
	if s.sample > 1 && s.seq.Add(1)%uint64(s.sample) != 0 {
		return
	}
	select {
	case s.ch <- ev:
		s.emitted.Add(1)
		s.events.Inc()
	default:
		s.dropped.Add(1)
		s.dropCtr.Inc()
	}
}

// Dropped returns the number of events lost to a full ring.
func (s *Sink) Dropped() uint64 { return s.dropped.Load() }

// Emitted returns the number of events accepted into the ring.
func (s *Sink) Emitted() uint64 { return s.emitted.Load() }

// writeLoop drains the ring onto w. json.Encoder appends the newline
// separating JSON lines; bufio batches the tiny writes and is flushed
// whenever the ring goes idle, so a tail -f on the trace file stays
// live without paying one syscall per event.
func (s *Sink) writeLoop(w io.Writer) {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(w, 32<<10)
	enc := json.NewEncoder(bw)
	if !s.flat {
		_, _ = io.WriteString(bw, QlogHeader+"\n")
	}
	write := func(ev Event) {
		ev.stampUS()
		var err error
		if s.flat {
			err = enc.Encode(&ev)
		} else {
			err = encodeQlog(enc, &ev)
		}
		if err != nil {
			// Unwritable sink: keep draining so producers keep their
			// non-blocking fast path; bytes go nowhere.
			_ = bw.Flush()
		}
	}
	for {
		select {
		case ev := <-s.ch:
			write(ev)
		case <-s.done:
			for {
				select {
				case ev := <-s.ch:
					write(ev)
				default:
					bw.Flush()
					return
				}
			}
		default:
			// Ring idle: flush buffered lines, then block until the next
			// event or close.
			bw.Flush()
			select {
			case ev := <-s.ch:
				write(ev)
			case <-s.done:
				continue // drain-and-exit branch above
			}
		}
	}
}

// Close stops the sink after flushing everything still in the ring.
// Note the writer goroutine may be mid-Write on a stalled io.Writer;
// Close does not wait forever for it — it signals shutdown and waits
// only for the drain of an unstalled writer.
func (s *Sink) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	// Bounded wait: a healthy writer drains in microseconds; a stalled
	// one must not turn Close into the very stall the sink exists to
	// prevent.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	return nil
}
