package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one qlog-flavoured trace occurrence, mirroring the engine's
// TraceEvent (telemetry cannot import internal/core — core imports
// telemetry). The JSON schema is the documented wire format:
//
//	{"time_us":..., "name":"record_sent", "conn":0, "stream":2, "seq":41, "bytes":16368}
type Event struct {
	Time   time.Time `json:"-"`
	TimeUS int64     `json:"time_us"`
	Name   string    `json:"name"`
	Conn   uint32    `json:"conn"`
	Stream uint32    `json:"stream"`
	Seq    uint64    `json:"seq"`
	Bytes  int       `json:"bytes"`
}

// SinkOptions tunes a Sink.
type SinkOptions struct {
	// Capacity bounds the ring buffer (default 4096 events). When the
	// writer cannot keep up, Emit drops instead of blocking.
	Capacity int
	// Sample keeps one event in Sample (0 and 1 mean every event). The
	// skipped events are neither written nor counted as drops.
	Sample int
	// Events / Dropped, when set, mirror the sink's internal counters
	// into registry metrics (tcpls_trace_events_total /
	// tcpls_trace_dropped_total). Nil is fine.
	Events  *Counter
	Dropped *Counter
}

// Sink is a bounded, non-blocking trace writer: producers enqueue with
// a lock-free channel send and never wait on I/O; a dedicated goroutine
// drains the ring and writes JSON lines through a buffered writer,
// flushing whenever the ring goes idle. A stalled writer (full pipe,
// dead disk) fills the ring and subsequent events are dropped and
// counted — the engine's send/recv path is never backpressured by
// tracing.
type Sink struct {
	ch      chan Event
	sample  int
	seq     atomic.Uint64
	dropped atomic.Uint64
	emitted atomic.Uint64
	events  *Counter
	dropCtr *Counter

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewSink starts a sink writing to w. Call Close to flush and stop.
func NewSink(w io.Writer, opts SinkOptions) *Sink {
	cap := opts.Capacity
	if cap <= 0 {
		cap = 4096
	}
	s := &Sink{
		ch:      make(chan Event, cap),
		sample:  opts.Sample,
		events:  opts.Events,
		dropCtr: opts.Dropped,
		done:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.writeLoop(w)
	return s
}

// Emit enqueues one event. It never blocks: with the ring full the
// event is dropped and the drop counters increment.
func (s *Sink) Emit(ev Event) {
	if s.sample > 1 && s.seq.Add(1)%uint64(s.sample) != 0 {
		return
	}
	select {
	case s.ch <- ev:
		s.emitted.Add(1)
		s.events.Inc()
	default:
		s.dropped.Add(1)
		s.dropCtr.Inc()
	}
}

// Dropped returns the number of events lost to a full ring.
func (s *Sink) Dropped() uint64 { return s.dropped.Load() }

// Emitted returns the number of events accepted into the ring.
func (s *Sink) Emitted() uint64 { return s.emitted.Load() }

// writeLoop drains the ring onto w. json.Encoder appends the newline
// separating JSON lines; bufio batches the tiny writes and is flushed
// whenever the ring goes idle, so a tail -f on the trace file stays
// live without paying one syscall per event.
func (s *Sink) writeLoop(w io.Writer) {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(w, 32<<10)
	enc := json.NewEncoder(bw)
	write := func(ev Event) {
		ev.TimeUS = ev.Time.UnixMicro()
		if enc.Encode(&ev) != nil {
			// Unwritable sink: keep draining so producers keep their
			// non-blocking fast path; bytes go nowhere.
			_ = bw.Flush()
		}
	}
	for {
		select {
		case ev := <-s.ch:
			write(ev)
		case <-s.done:
			for {
				select {
				case ev := <-s.ch:
					write(ev)
				default:
					bw.Flush()
					return
				}
			}
		default:
			// Ring idle: flush buffered lines, then block until the next
			// event or close.
			bw.Flush()
			select {
			case ev := <-s.ch:
				write(ev)
			case <-s.done:
				continue // drain-and-exit branch above
			}
		}
	}
}

// Close stops the sink after flushing everything still in the ring.
// Note the writer goroutine may be mid-Write on a stalled io.Writer;
// Close does not wait forever for it — it signals shutdown and waits
// only for the drain of an unstalled writer.
func (s *Sink) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	// Bounded wait: a healthy writer drains in microseconds; a stalled
	// one must not turn Close into the very stall the sink exists to
	// prevent.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	return nil
}
