package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Server exposes a registry over HTTP: /metrics in Prometheus text
// format plus the full net/http/pprof surface under /debug/pprof/ —
// enough to watch a chaos run live and grab a goroutine or CPU profile
// from the same port.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and starts serving reg. The returned server owns the
// listener; Close releases it.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	// Explicit pprof routes: importing net/http/pprof for its side
	// effect would pollute http.DefaultServeMux for the whole process.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Handler returns the /metrics exposition handler for reg, for callers
// embedding it in their own mux.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all live connections.
func (s *Server) Close() error { return s.srv.Close() }
