package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Server exposes a registry over HTTP: /metrics in Prometheus text
// format plus the full net/http/pprof surface under /debug/pprof/ —
// enough to watch a chaos run live and grab a goroutine or CPU profile
// from the same port.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and starts serving reg. The returned server owns the
// listener; Close releases it.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	// Explicit pprof routes: importing net/http/pprof for its side
	// effect would pollute http.DefaultServeMux for the whole process.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/tcpls", DebugHandler())
	mux.Handle("/debug/tcpls/health", HealthHandler())
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Handler returns the /metrics exposition handler for reg, for callers
// embedding it in their own mux.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// Debug sources: live per-session state providers rendered as JSON on
// /debug/tcpls. The provider runs on the HTTP handler's goroutine and
// must return a json.Marshal-able snapshot; it is responsible for its
// own locking. Process-wide, like the metrics registry, so every shared
// telemetry server sees every registered session.
var (
	debugMu      sync.Mutex
	debugSources = make(map[string]func() any)
)

// RegisterDebug installs (or replaces) the live-state provider under
// key. Keys must be unique per live session; the caller unregisters on
// teardown.
func RegisterDebug(key string, fn func() any) {
	debugMu.Lock()
	debugSources[key] = fn
	debugMu.Unlock()
}

// UnregisterDebug removes a provider.
func UnregisterDebug(key string) {
	debugMu.Lock()
	delete(debugSources, key)
	debugMu.Unlock()
}

// DebugHandler returns the /debug/tcpls handler: a JSON object mapping
// each registered session key to its live state snapshot.
func DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		debugMu.Lock()
		keys := make([]string, 0, len(debugSources))
		fns := make(map[string]func() any, len(debugSources))
		for k, fn := range debugSources {
			keys = append(keys, k)
			fns[k] = fn
		}
		debugMu.Unlock()
		sort.Strings(keys)
		// Snapshot outside debugMu: providers take their own session
		// locks and must not hold up concurrent register/unregister.
		out := struct {
			Sessions map[string]any `json:"sessions"`
		}{Sessions: make(map[string]any, len(keys))}
		for _, k := range keys {
			out.Sessions[k] = fns[k]()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&out)
	})
}

// Health sources: live diagnosis providers rendered as JSON on
// /debug/tcpls/health, same contract and lifecycle as debug sources —
// process-wide, provider does its own locking, caller unregisters on
// teardown.
var (
	healthMu      sync.Mutex
	healthSources = make(map[string]func() any)
)

// RegisterHealth installs (or replaces) the health-status provider
// under key.
func RegisterHealth(key string, fn func() any) {
	healthMu.Lock()
	healthSources[key] = fn
	healthMu.Unlock()
}

// UnregisterHealth removes a provider.
func UnregisterHealth(key string) {
	healthMu.Lock()
	delete(healthSources, key)
	healthMu.Unlock()
}

// HealthHandler returns the /debug/tcpls/health handler: a JSON object
// mapping each registered entity key to its diagnosis snapshot.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		healthMu.Lock()
		keys := make([]string, 0, len(healthSources))
		fns := make(map[string]func() any, len(healthSources))
		for k, fn := range healthSources {
			keys = append(keys, k)
			fns[k] = fn
		}
		healthMu.Unlock()
		sort.Strings(keys)
		out := struct {
			Health map[string]any `json:"health"`
		}{Health: make(map[string]any, len(keys))}
		for _, k := range keys {
			out.Health[k] = fns[k]()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(&out)
	})
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and closes all live connections.
func (s *Server) Close() error { return s.srv.Close() }
