package telemetry

import "sync"

// ServerFamilies is the server-runtime metric family set: the accept
// edge (admissions, rejections, drains) and the process-wide session
// and memory rollups maintained by internal/server. Creating it is
// idempotent, like TCPLSFamilies; multiple listeners against a shared
// registry aggregate under the listener label.
type ServerFamilies struct {
	sessions    *GaugeVec     // listener
	memoryBytes *GaugeVec     // listener
	handshakes  *GaugeVec     // listener
	accepted    *CounterVec   // listener
	rejected    *CounterVec   // listener, reason
	drained     *CounterVec   // listener
	admitWait   *HistogramVec // listener
	rotateFail  *CounterVec   // listener
}

// ServerFamiliesOn registers (or resolves) the server metric set on r.
func ServerFamiliesOn(r *Registry) *ServerFamilies {
	return &ServerFamilies{
		sessions:    r.GaugeVec("tcpls_server_sessions", "Live TCPLS sessions in the server registry.", "listener"),
		memoryBytes: r.GaugeVec("tcpls_server_memory_bytes", "Buffered session memory charged against the process budget (registry rollup).", "listener"),
		handshakes:  r.GaugeVec("tcpls_server_handshakes_inflight", "TCP connections currently inside the server handshake.", "listener"),
		accepted:    r.CounterVec("tcpls_server_accepted_total", "Sessions admitted past the accept edge.", "listener"),
		rejected:    r.CounterVec("tcpls_server_rejected_total", "Connections, joins, and sessions rejected at the accept edge, by reason.", "listener", "reason"),
		drained:     r.CounterVec("tcpls_server_drained_total", "Sessions retired by the server (handler return or shutdown).", "listener"),
		admitWait:   r.HistogramVec("tcpls_server_admission_wait_seconds", "Time spent waiting for an accept token before admission.", RTTBuckets, "listener"),
		rotateFail:  r.CounterVec("tcpls_ticket_rotate_failures_total", "Ticket-key rotations that failed to persist: the on-disk key file is falling behind the in-memory generations and a restart will strand recently issued tickets.", "listener"),
	}
}

// ServerMetrics is one listener's pre-resolved handle set. All fields
// are nil-safe through the underlying metric types' nil receivers; a
// nil *ServerMetrics also disables everything.
type ServerMetrics struct {
	fams     *ServerFamilies
	listener string

	Sessions            *Gauge
	MemoryBytes         *Gauge
	Handshakes          *Gauge
	Accepted            *Counter
	Drained             *Counter
	AdmissionWait       *Histogram
	TicketRotateFailure *Counter

	mu      sync.Mutex
	rejects map[string]*Counter
}

// Server resolves the per-listener handles for label value listener.
func (f *ServerFamilies) Server(listener string) *ServerMetrics {
	return &ServerMetrics{
		fams:                f,
		listener:            listener,
		Sessions:            f.sessions.With(listener),
		MemoryBytes:         f.memoryBytes.With(listener),
		Handshakes:          f.handshakes.With(listener),
		Accepted:            f.accepted.With(listener),
		Drained:             f.drained.With(listener),
		AdmissionWait:       f.admitWait.With(listener),
		TicketRotateFailure: f.rotateFail.With(listener),
		rejects:             make(map[string]*Counter),
	}
}

// Rejected resolves (once) the rejection counter for a reason. Safe on
// a nil receiver.
func (sm *ServerMetrics) Rejected(reason string) *Counter {
	if sm == nil {
		return nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if c, ok := sm.rejects[reason]; ok {
		return c
	}
	c := sm.fams.rejected.With(sm.listener, reason)
	sm.rejects[reason] = c
	return c
}
