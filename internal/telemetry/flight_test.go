package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 6; i++ {
		f.Append(FlightEvent{TimeUS: int64(i), Name: "record_sent", Seq: uint64(i)})
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	if f.Total() != 6 {
		t.Fatalf("Total = %d, want 6", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d, want 4", len(snap))
	}
	// Oldest-first: events 2..5 survive the wrap.
	for i, ev := range snap {
		if ev.Seq != uint64(i+2) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest-first)", i, ev.Seq, i+2)
		}
	}
}

func TestFlightDefaultCapacity(t *testing.T) {
	f := NewFlight(0)
	if got := cap(f.buf); got != DefaultFlightCapacity {
		t.Fatalf("default capacity %d, want %d", got, DefaultFlightCapacity)
	}
}

// TestFlightAppendZeroAlloc is the hot-path gate: the always-on
// recorder must not allocate per event.
func TestFlightAppendZeroAlloc(t *testing.T) {
	f := NewFlight(64)
	ev := FlightEvent{TimeUS: 1, Name: "record_sent", Conn: 1, Stream: 2, Seq: 3, Bytes: 100}
	if n := testing.AllocsPerRun(1000, func() { f.Append(ev) }); n != 0 {
		t.Fatalf("Append allocates %v per op, want 0", n)
	}
}

func TestFlightDumpQlogFraming(t *testing.T) {
	f := NewFlight(8)
	f.Append(FlightEvent{TimeUS: 1000, Name: "record_sent", Conn: 1, Seq: 7, Bytes: 42})
	f.Append(FlightEvent{TimeUS: 2000, Name: "record_span", Conn: 1, Seq: 7,
		EnqUS: 900, SealedUS: 950, WrittenUS: 980, AckedUS: 1999, Retx: 1})
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump wrote %d lines, want header + 2: %q", len(lines), lines)
	}
	if lines[0] != QlogHeader {
		t.Fatalf("dump header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"type":"record_sent"`) ||
		!strings.Contains(lines[1], `"category":"transport"`) {
		t.Fatalf("event line unframed: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"acked_us":1999`) || !strings.Contains(lines[2], `"retx":1`) {
		t.Fatalf("span legs missing from dump: %q", lines[2])
	}
}

func BenchmarkFlightAppend(b *testing.B) {
	f := NewFlight(DefaultFlightCapacity)
	ev := FlightEvent{TimeUS: 1, Name: "record_sent", Conn: 1, Stream: 2, Seq: 3, Bytes: 16368}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i)
		f.Append(ev)
	}
}
