package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// FlightEvent is one entry in the flight recorder's ring: a flattened
// trace event with every timestamp pre-converted to Unix microseconds.
// The struct is plain value data — Name points at the engine's constant
// event-name strings — so appending one copies ~100 bytes and allocates
// nothing.
type FlightEvent struct {
	TimeUS int64
	Name   string
	Conn   uint32
	Stream uint32
	Seq    uint64
	Bytes  int

	// Span legs (record_span only); 0 = leg not stamped.
	EnqUS     int64
	SealedUS  int64
	WrittenUS int64
	AckedUS   int64
	OrigConn  uint32
	Retx      int32
}

// DefaultFlightCapacity bounds the ring at ~1 MiB: 8192 entries of the
// ~112-byte FlightEvent plus the slice header.
const DefaultFlightCapacity = 8192

// Flight is the always-on flight recorder: a fixed-size in-memory ring
// of the most recent trace events for one session. Append is mutex-
// guarded, allocation-free, and cheap enough to leave enabled on the
// hot path; when something dies, Dump (or the session's auto-dump on
// SessionDeadError) reconstructs the last seconds of protocol history.
type Flight struct {
	mu      sync.Mutex
	buf     []FlightEvent // len == cap, preallocated once
	next    int           // ring cursor: index of the oldest entry once wrapped
	total   uint64        // events ever appended (so Dump can report loss)
	wrapped bool
}

// NewFlight builds a recorder holding the last capacity events
// (DefaultFlightCapacity when capacity <= 0).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Flight{buf: make([]FlightEvent, capacity)}
}

// Append records one event, overwriting the oldest once the ring is
// full. 0 allocs/op (benchmark-asserted).
func (f *Flight) Append(ev FlightEvent) {
	f.mu.Lock()
	f.buf[f.next] = ev
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.wrapped = true
	}
	f.total++
	f.mu.Unlock()
}

// Len returns the number of events currently held.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wrapped {
		return len(f.buf)
	}
	return f.next
}

// Total returns the number of events ever appended; Total() - Len() is
// how many the ring has forgotten.
func (f *Flight) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot copies the held events out in append order (oldest first).
func (f *Flight) Snapshot() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.wrapped {
		return append([]FlightEvent(nil), f.buf[:f.next]...)
	}
	out := make([]FlightEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Dump writes the held events to w in the same qlog-lines framing the
// live Sink produces (header line first), so tcpls-trace and qvis-style
// tooling read flight dumps and live traces identically. The snapshot
// is taken up front; appends during the write are not included.
func (f *Flight) Dump(w io.Writer) error {
	events := f.Snapshot()
	bw := bufio.NewWriterSize(w, 32<<10)
	if _, err := io.WriteString(bw, QlogHeader+"\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i := range events {
		fe := &events[i]
		ev := Event{
			TimeUS:    fe.TimeUS,
			Name:      fe.Name,
			Conn:      fe.Conn,
			Stream:    fe.Stream,
			Seq:       fe.Seq,
			Bytes:     fe.Bytes,
			EnqUS:     fe.EnqUS,
			SealedUS:  fe.SealedUS,
			WrittenUS: fe.WrittenUS,
			AckedUS:   fe.AckedUS,
			OrigConn:  fe.OrigConn,
			Retx:      int(fe.Retx),
		}
		if err := encodeQlog(enc, &ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
