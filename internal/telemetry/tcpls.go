package telemetry

import (
	"strconv"
	"sync"
)

// Families is the TCPLS metric family set over one registry. Creating
// it is idempotent (the registry deduplicates by name), so every
// session against a shared registry sees the same families and
// exposition aggregates across sessions, separated by the sess label.
type Families struct {
	recordsSent     *CounterVec // sess, conn
	recordsReceived *CounterVec // sess, conn
	bytesSent       *CounterVec // sess, conn
	bytesReceived   *CounterVec // sess, conn
	retransmits     *CounterVec // sess, conn
	acksSent        *CounterVec // sess, conn
	acksReceived    *CounterVec // sess, conn
	dupRecords      *CounterVec // sess, conn
	failedDecrypts  *CounterVec // sess, conn

	streamBytesSent     *CounterVec // sess, stream
	streamBytesReceived *CounterVec // sess, stream

	schedPicks   *CounterVec // sess, policy
	schedInvalid *CounterVec // sess

	connFailures     *CounterVec // sess
	failovers        *CounterVec // sess
	failoverCascades *CounterVec // sess
	reconnAttempts   *CounterVec // sess
	reconnects       *CounterVec // sess
	recoveryFailures *CounterVec // sess

	traceEvents  *CounterVec // sess
	traceDropped *CounterVec // sess

	flowctlLimits *CounterVec // sess
	ackSolicits   *CounterVec // sess

	ackRTT     *HistogramVec // sess
	recordSize *HistogramVec // sess

	reorderDepth    *GaugeVec // sess
	reorderBytes    *GaugeVec // sess
	retransmitBytes *GaugeVec // sess
	connsOpen       *GaugeVec // sess
	streamsOpen     *GaugeVec // sess
}

// TCPLSFamilies registers (or resolves) the TCPLS metric set on r.
func TCPLSFamilies(r *Registry) *Families {
	return &Families{
		recordsSent:     r.CounterVec("tcpls_records_sent_total", "TLS records sealed onto a connection (data and control).", "sess", "conn"),
		recordsReceived: r.CounterVec("tcpls_records_received_total", "TLS records successfully opened from a connection.", "sess", "conn"),
		bytesSent:       r.CounterVec("tcpls_bytes_sent_total", "Stream payload bytes sealed onto a connection.", "sess", "conn"),
		bytesReceived:   r.CounterVec("tcpls_bytes_received_total", "Stream payload bytes received on a connection.", "sess", "conn"),
		retransmits:     r.CounterVec("tcpls_retransmits_total", "Records replayed onto a connection during failover.", "sess", "conn"),
		acksSent:        r.CounterVec("tcpls_acks_sent_total", "Record-level acknowledgments sent on a connection.", "sess", "conn"),
		acksReceived:    r.CounterVec("tcpls_acks_received_total", "Record-level acknowledgments received for streams homed on a connection.", "sess", "conn"),
		dupRecords:      r.CounterVec("tcpls_dup_records_dropped_total", "Failover-replay duplicates dropped by the receive filter.", "sess", "conn"),
		failedDecrypts:  r.CounterVec("tcpls_failed_decrypts_total", "Records that matched no stream context (forgery budget).", "sess", "conn"),

		streamBytesSent:     r.CounterVec("tcpls_stream_bytes_sent_total", "Payload bytes sealed per stream.", "sess", "stream"),
		streamBytesReceived: r.CounterVec("tcpls_stream_bytes_received_total", "Payload bytes received per stream.", "sess", "stream"),

		schedPicks:   r.CounterVec("tcpls_sched_picks_total", "Coupled records routed by the path scheduler, per policy.", "sess", "policy"),
		schedInvalid: r.CounterVec("tcpls_sched_invalid_total", "Out-of-range scheduler picks that fell back to path 0.", "sess"),

		connFailures:     r.CounterVec("tcpls_conn_failures_total", "TCP connections declared failed (RST, timeout, or peer notice).", "sess"),
		failovers:        r.CounterVec("tcpls_failovers_total", "Failover resynchronizations performed.", "sess"),
		failoverCascades: r.CounterVec("tcpls_failover_cascades_total", "Failovers whose target had absorbed an earlier failover.", "sess"),
		reconnAttempts:   r.CounterVec("tcpls_reconnect_attempts_total", "Recovery-supervisor redial rounds started.", "sess"),
		reconnects:       r.CounterVec("tcpls_reconnects_total", "Successful session revivals through the join path.", "sess"),
		recoveryFailures: r.CounterVec("tcpls_recovery_failures_total", "Sessions declared dead after exhausting the recovery budget.", "sess"),

		traceEvents:  r.CounterVec("tcpls_trace_events_total", "Trace events enqueued on the qlog sink.", "sess"),
		traceDropped: r.CounterVec("tcpls_trace_dropped_total", "Trace events dropped because the sink ring was full.", "sess"),

		flowctlLimits: r.CounterVec("tcpls_flowctl_limit_total", "Configured memory bounds tripped (reorder cap, receive buffer, retransmit budget).", "sess"),
		ackSolicits:   r.CounterVec("tcpls_ack_solicited_total", "ACK solicitations sent under retransmit-budget pressure.", "sess"),

		ackRTT:     r.HistogramVec("tcpls_ack_rtt_seconds", "Record-level acknowledgment round-trip samples (Karn-filtered).", RTTBuckets, "sess"),
		recordSize: r.HistogramVec("tcpls_record_payload_bytes", "Stream payload size per sealed record.", SizeBuckets, "sess"),

		reorderDepth:    r.GaugeVec("tcpls_reorder_heap_depth", "Out-of-order records held by the coupled reorder heap.", "sess"),
		reorderBytes:    r.GaugeVec("tcpls_reorder_bytes", "Payload bytes parked in the coupled reorder heap.", "sess"),
		retransmitBytes: r.GaugeVec("tcpls_retransmit_bytes", "Payload bytes held across all streams' retransmit buffers.", "sess"),
		connsOpen:       r.GaugeVec("tcpls_conns_open", "Live TCP connections in the session.", "sess"),
		streamsOpen:     r.GaugeVec("tcpls_streams_open", "Open streams in the session.", "sess"),
	}
}

// SessionMetrics is one session's pre-resolved handle set. The engine
// updates these with single atomic operations; a nil *SessionMetrics
// disables everything at the cost of one nil-check per emission point.
type SessionMetrics struct {
	fams *Families
	sess string

	ConnFailures      *Counter
	Failovers         *Counter
	FailoverCascades  *Counter
	ReconnectAttempts *Counter
	Reconnects        *Counter
	RecoveryFailures  *Counter
	SchedInvalid      *Counter
	TraceEvents       *Counter
	TraceDropped      *Counter
	FlowctlLimits     *Counter
	AckSolicits       *Counter

	AckRTT     *Histogram
	RecordSize *Histogram

	ReorderDepth    *Gauge
	ReorderBytes    *Gauge
	RetransmitBytes *Gauge
	ConnsOpen       *Gauge
	StreamsOpen     *Gauge

	mu      sync.Mutex
	conns   map[uint32]*ConnMetrics
	streams map[uint32]*StreamMetrics
	picks   map[string]*Counter
}

// Session resolves the per-session handles for label value sess.
func (f *Families) Session(sess string) *SessionMetrics {
	return &SessionMetrics{
		fams:              f,
		sess:              sess,
		ConnFailures:      f.connFailures.With(sess),
		Failovers:         f.failovers.With(sess),
		FailoverCascades:  f.failoverCascades.With(sess),
		ReconnectAttempts: f.reconnAttempts.With(sess),
		Reconnects:        f.reconnects.With(sess),
		RecoveryFailures:  f.recoveryFailures.With(sess),
		SchedInvalid:      f.schedInvalid.With(sess),
		TraceEvents:       f.traceEvents.With(sess),
		TraceDropped:      f.traceDropped.With(sess),
		FlowctlLimits:     f.flowctlLimits.With(sess),
		AckSolicits:       f.ackSolicits.With(sess),
		AckRTT:            f.ackRTT.With(sess),
		RecordSize:        f.recordSize.With(sess),
		ReorderDepth:      f.reorderDepth.With(sess),
		ReorderBytes:      f.reorderBytes.With(sess),
		RetransmitBytes:   f.retransmitBytes.With(sess),
		ConnsOpen:         f.connsOpen.With(sess),
		StreamsOpen:       f.streamsOpen.With(sess),
		conns:             make(map[uint32]*ConnMetrics),
		streams:           make(map[uint32]*StreamMetrics),
		picks:             make(map[string]*Counter),
	}
}

// ConnMetrics is one connection's pre-resolved counter set.
type ConnMetrics struct {
	RecordsSent     *Counter
	RecordsReceived *Counter
	BytesSent       *Counter
	BytesReceived   *Counter
	Retransmits     *Counter
	AcksSent        *Counter
	AcksReceived    *Counter
	DupRecords      *Counter
	FailedDecrypts  *Counter
}

// Conn resolves (once) the per-connection counters for connID. Safe on
// a nil receiver (returns nil, and all ConnMetrics methods on nil
// fields are no-ops).
func (sm *SessionMetrics) Conn(connID uint32) *ConnMetrics {
	if sm == nil {
		return nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if cm, ok := sm.conns[connID]; ok {
		return cm
	}
	id := strconv.FormatUint(uint64(connID), 10)
	cm := &ConnMetrics{
		RecordsSent:     sm.fams.recordsSent.With(sm.sess, id),
		RecordsReceived: sm.fams.recordsReceived.With(sm.sess, id),
		BytesSent:       sm.fams.bytesSent.With(sm.sess, id),
		BytesReceived:   sm.fams.bytesReceived.With(sm.sess, id),
		Retransmits:     sm.fams.retransmits.With(sm.sess, id),
		AcksSent:        sm.fams.acksSent.With(sm.sess, id),
		AcksReceived:    sm.fams.acksReceived.With(sm.sess, id),
		DupRecords:      sm.fams.dupRecords.With(sm.sess, id),
		FailedDecrypts:  sm.fams.failedDecrypts.With(sm.sess, id),
	}
	sm.conns[connID] = cm
	return cm
}

// StreamMetrics is one stream's pre-resolved counter set.
type StreamMetrics struct {
	BytesSent     *Counter
	BytesReceived *Counter
}

// Stream resolves (once) the per-stream counters for streamID.
func (sm *SessionMetrics) Stream(streamID uint32) *StreamMetrics {
	if sm == nil {
		return nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if stm, ok := sm.streams[streamID]; ok {
		return stm
	}
	id := strconv.FormatUint(uint64(streamID), 10)
	stm := &StreamMetrics{
		BytesSent:     sm.fams.streamBytesSent.With(sm.sess, id),
		BytesReceived: sm.fams.streamBytesReceived.With(sm.sess, id),
	}
	sm.streams[streamID] = stm
	return stm
}

// SchedPicks resolves (once) the pick counter for a scheduler policy.
func (sm *SessionMetrics) SchedPicks(policy string) *Counter {
	if sm == nil {
		return nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if c, ok := sm.picks[policy]; ok {
		return c
	}
	c := sm.fams.schedPicks.With(sm.sess, policy)
	sm.picks[policy] = c
	return c
}

// PickCounts snapshots the per-policy pick counters.
func (sm *SessionMetrics) PickCounts() map[string]uint64 {
	if sm == nil {
		return nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make(map[string]uint64, len(sm.picks))
	for policy, c := range sm.picks {
		out[policy] = c.Load()
	}
	return out
}

// ConnIDs returns the connection IDs with resolved counters, for
// snapshot assembly.
func (sm *SessionMetrics) ConnIDs() []uint32 {
	if sm == nil {
		return nil
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]uint32, 0, len(sm.conns))
	for id := range sm.conns {
		out = append(out, id)
	}
	return out
}
