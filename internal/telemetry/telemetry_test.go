package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Load() != 0 {
		t.Fatal("nil counter loaded non-zero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Load() != 0 {
		t.Fatal("nil gauge loaded non-zero")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram recorded a sample")
	}

	real := new(Counter)
	real.Inc()
	real.Add(2)
	if got := real.Load(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	rg := new(Gauge)
	rg.Set(5)
	rg.Add(-2)
	if got := rg.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	// 0.5 and 1 land in le=1; 5 in le=10; 50 in le=100; 500 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %g, want 556.5", h.Sum())
	}
	if h.Mean() != 556.5/5 {
		t.Fatalf("mean = %g", h.Mean())
	}
}

func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_records_total", "Records.", "sess", "conn").With("ab", "0").Add(5)
	r.GaugeVec("test_open", "Open things.", "sess").With("ab").Set(2)
	h := r.HistogramVec("test_rtt_seconds", "RTT.", []float64{0.01, 0.1}, "sess").With("ab")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_records_total Records.
# TYPE test_records_total counter
test_records_total{sess="ab",conn="0"} 5
# HELP test_open Open things.
# TYPE test_open gauge
test_open{sess="ab"} 2
# HELP test_rtt_seconds RTT.
# TYPE test_rtt_seconds histogram
test_rtt_seconds_bucket{sess="ab",le="0.01"} 1
test_rtt_seconds_bucket{sess="ab",le="0.1"} 2
test_rtt_seconds_bucket{sess="ab",le="+Inf"} 3
test_rtt_seconds_sum{sess="ab"} 5.055
test_rtt_seconds_count{sess="ab"} 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "Escapes.", "v").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("test_dup_total", "One.", "sess")
	b := r.CounterVec("test_dup_total", "Two.", "sess")
	a.With("x").Inc()
	b.With("x").Inc()
	if got := a.With("x").Load(); got != 2 {
		t.Fatalf("re-registered family not shared: %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("schema mismatch did not panic")
		}
	}()
	r.GaugeVec("test_dup_total", "Wrong kind.", "sess")
}

func TestFamiliesSharedAcrossSessions(t *testing.T) {
	r := NewRegistry()
	f1 := TCPLSFamilies(r)
	f2 := TCPLSFamilies(r)
	f1.Session("s1").Conn(0).RecordsSent.Add(3)
	f2.Session("s2").Conn(0).RecordsSent.Add(4)
	got := r.Gather()
	if got[`tcpls_records_sent_total{sess="s1",conn="0"}`] != 3 {
		t.Fatalf("s1 counter missing: %v", got)
	}
	if got[`tcpls_records_sent_total{sess="s2",conn="0"}`] != 4 {
		t.Fatalf("s2 counter missing: %v", got)
	}
	// Handle resolution is cached per session.
	sm := f1.Session("s3")
	if sm.Conn(7) != sm.Conn(7) {
		t.Fatal("Conn handles not cached")
	}
	if sm.Stream(2) != sm.Stream(2) {
		t.Fatal("Stream handles not cached")
	}
	if sm.SchedPicks("lowrtt") != sm.SchedPicks("lowrtt") {
		t.Fatal("SchedPicks handles not cached")
	}
}

func TestCounterHotPathAllocs(t *testing.T) {
	c := new(Counter)
	g := new(Gauge)
	h := NewHistogram(RTTBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(4096)
		g.Set(3)
		h.Observe(0.01)
	}); n != 0 {
		t.Fatalf("hot path allocates %v per op, want 0", n)
	}
}

func TestSinkWritesJSONLines(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := NewSink(w, SinkOptions{Flat: true})
	ts := time.Unix(12, 345678000)
	s.Emit(Event{Time: ts, Name: "record_sent", Conn: 1, Stream: 2, Seq: 41, Bytes: 100})
	s.Emit(Event{Time: ts, Name: "ack_received", Seq: 41})
	s.Close()

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2: %q", len(lines), lines)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if ev.Name != "record_sent" || ev.Conn != 1 || ev.Stream != 2 || ev.Seq != 41 || ev.Bytes != 100 {
		t.Fatalf("round-trip mismatch: %+v", ev)
	}
	if ev.TimeUS != ts.UnixMicro() {
		t.Fatalf("time_us = %d, want %d", ev.TimeUS, ts.UnixMicro())
	}
	if s.Emitted() != 2 || s.Dropped() != 0 {
		t.Fatalf("emitted=%d dropped=%d", s.Emitted(), s.Dropped())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestSinkQlogFraming: the default (non-flat) sink writes the qlog
// NDJSON header first, then category/type-framed events with the event
// fields nested under data.
func TestSinkQlogFraming(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := NewSink(w, SinkOptions{})
	ts := time.Unix(12, 345678000)
	s.Emit(Event{Time: ts, Name: "record_sent", Conn: 1, Stream: 2, Seq: 41, Bytes: 100})
	s.Emit(Event{Time: ts, Name: "conn_failed", Conn: 1})
	s.Close()

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want header + 2 events: %q", len(lines), lines)
	}
	if lines[0] != QlogHeader {
		t.Fatalf("first line = %q, want qlog header %q", lines[0], QlogHeader)
	}
	var ev struct {
		TimeUS   int64  `json:"time_us"`
		Category string `json:"category"`
		Type     string `json:"type"`
		Data     struct {
			Conn   uint32 `json:"conn"`
			Stream uint32 `json:"stream"`
			Seq    uint64 `json:"seq"`
			Bytes  int    `json:"bytes"`
		} `json:"data"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("event line is not JSON: %v", err)
	}
	if ev.Category != "transport" || ev.Type != "record_sent" {
		t.Fatalf("framing mismatch: category=%q type=%q", ev.Category, ev.Type)
	}
	if ev.TimeUS != ts.UnixMicro() || ev.Data.Conn != 1 || ev.Data.Stream != 2 || ev.Data.Seq != 41 || ev.Data.Bytes != 100 {
		t.Fatalf("data mismatch: %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[2]), &ev); err != nil {
		t.Fatalf("second event line is not JSON: %v", err)
	}
	if ev.Category != "recovery" || ev.Type != "conn_failed" {
		t.Fatalf("conn_failed framed as %s:%s, want recovery:conn_failed", ev.Category, ev.Type)
	}
}

func TestSinkSampling(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := NewSink(w, SinkOptions{Sample: 10, Flat: true})
	for i := 0; i < 100; i++ {
		s.Emit(Event{Name: "e"})
	}
	s.Close()
	mu.Lock()
	n := strings.Count(buf.String(), "\n")
	mu.Unlock()
	if n != 10 {
		t.Fatalf("sample=10 wrote %d of 100 events, want 10", n)
	}
}

// TestSinkStalledWriterDrops is the backpressure acceptance test: with
// the writer goroutine wedged on a blocking io.Writer, Emit must return
// immediately, drop events once the ring fills, and count the drops in
// the mirrored tcpls_trace_dropped_total counter — the engine path is
// never stalled by tracing.
func TestSinkStalledWriterDrops(t *testing.T) {
	r := NewRegistry()
	fams := TCPLSFamilies(r)
	sm := fams.Session("de")

	release := make(chan struct{})
	stalled := writerFunc(func(p []byte) (int, error) {
		<-release // wedge until the test ends
		return len(p), nil
	})
	s := NewSink(stalled, SinkOptions{
		Capacity: 8,
		Events:   sm.TraceEvents,
		Dropped:  sm.TraceDropped,
	})
	defer close(release)

	const emits = 1000
	done := make(chan struct{})
	go func() {
		for i := 0; i < emits; i++ {
			s.Emit(Event{Name: "stalled"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a stalled writer")
	}

	if s.Dropped() == 0 {
		t.Fatal("stalled writer produced no drops")
	}
	if s.Emitted()+s.Dropped() != emits {
		t.Fatalf("emitted %d + dropped %d != %d", s.Emitted(), s.Dropped(), emits)
	}
	if got := sm.TraceDropped.Load(); got != s.Dropped() {
		t.Fatalf("tcpls_trace_dropped_total = %d, sink dropped %d", got, s.Dropped())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `tcpls_trace_dropped_total{sess="de"} `+
		fmt.Sprint(s.Dropped())) {
		t.Fatalf("exposition missing drop counter:\n%s", buf.String())
	}

	// Close must come back promptly even though the writer is wedged.
	start := time.Now()
	s.Close()
	if d := time.Since(start); d > 4*time.Second {
		t.Fatalf("Close took %v on a stalled writer", d)
	}
}

func TestSinkEmitAllocFree(t *testing.T) {
	s := NewSink(io.Discard, SinkOptions{Capacity: 1 << 16})
	defer s.Close()
	ev := Event{Name: "record_sent", Conn: 1, Seq: 9, Bytes: 512}
	if n := testing.AllocsPerRun(1000, func() { s.Emit(ev) }); n != 0 {
		t.Fatalf("Emit allocates %v per op, want 0", n)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_http_total", "HTTP test.", "sess").With("x").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, `test_http_total{sess="x"} 9`) {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/goroutine unexpected body:\n%s", body)
	}
}

func BenchmarkTraceSink(b *testing.B) {
	// Writer that consumes without stalling: the benchmark measures the
	// producer-side Emit cost, buffered encode included.
	s := NewSink(bufio.NewWriterSize(io.Discard, 1<<20), SinkOptions{Capacity: 1 << 14})
	defer s.Close()
	ev := Event{Name: "record_sent", Conn: 1, Stream: 2, Seq: 41, Bytes: 16368}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(ev)
	}
}
