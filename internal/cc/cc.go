// Package cc implements the congestion-control algorithms the paper's
// evaluation depends on: NewReno (the classic baseline), CUBIC (RFC 8312,
// the Linux default used in §5.1's comparisons), and Vegas (the
// delay-based controller of Fig. 12's fairness experiment).
//
// Algorithms are expressed against a small event interface so the same
// implementations drive the simulated TCP stack (internal/simtcp) and the
// eBPF VM bridge (internal/ebpfvm): on ACK, on loss, on RTO. All state is
// in segments scaled by the MSS, as in the kernel.
package cc

import "time"

// Algorithm is the congestion-controller interface, modeled on the Linux
// tcp_congestion_ops hooks the paper's eBPF mechanism targets (§4.4).
type Algorithm interface {
	// Name identifies the algorithm ("newreno", "cubic", "vegas").
	Name() string
	// OnAck processes acked bytes with the latest RTT sample and
	// current time; it may grow the congestion window.
	OnAck(ackedBytes int, rtt time.Duration, now time.Duration)
	// OnLoss reacts to a fast-retransmit loss signal (duplicate acks).
	OnLoss(now time.Duration)
	// OnRTO reacts to a retransmission timeout (window collapse).
	OnRTO(now time.Duration)
	// Window returns the current congestion window in bytes.
	Window() int
	// SlowStart reports whether the controller is in slow start.
	SlowStart() bool
}

// Common constants (bytes).
const (
	// DefaultMSS matches the 1460-byte TCP payload of a 1500-byte MTU.
	DefaultMSS = 1460
	// InitialWindow is 10 segments (RFC 6928).
	InitialWindowSegments = 10
	// MinWindowSegments floors the window after collapse.
	MinWindowSegments = 2
)

// New constructs an algorithm by name with the given MSS.
func New(name string, mss int) Algorithm {
	switch name {
	case "cubic":
		return NewCubic(mss)
	case "vegas":
		return NewVegas(mss)
	default:
		return NewNewReno(mss)
	}
}

// hystart implements the delay-increase half of HyStart (Ha & Rhee):
// slow start ends when RTT samples rise measurably above the path
// minimum, before the window overshoots into a burst-loss catastrophe.
// Linux enables this by default for CUBIC; the simulation needs it for
// the same reason kernels do.
type hystart struct {
	minRTT time.Duration
}

// exitSlowStart reports whether the latest RTT sample indicates queue
// buildup during slow start.
func (h *hystart) exitSlowStart(rtt time.Duration) bool {
	if rtt <= 0 {
		return false
	}
	if h.minRTT == 0 || rtt < h.minRTT {
		h.minRTT = rtt
		return false
	}
	thresh := h.minRTT / 8
	if thresh < 4*time.Millisecond {
		thresh = 4 * time.Millisecond
	}
	if thresh > 16*time.Millisecond {
		thresh = 16 * time.Millisecond
	}
	return rtt > h.minRTT+thresh
}

// NewReno is the RFC 5681 AIMD controller with slow start.
type NewReno struct {
	mss      int
	cwnd     int // bytes
	ssthresh int // bytes
	acked    int // byte accumulator for congestion avoidance
	hs       hystart
}

// NewNewReno returns a NewReno controller.
func NewNewReno(mss int) *NewReno {
	return &NewReno{
		mss:      mss,
		cwnd:     InitialWindowSegments * mss,
		ssthresh: 1 << 30,
	}
}

// Name implements Algorithm.
func (r *NewReno) Name() string { return "newreno" }

// Window implements Algorithm.
func (r *NewReno) Window() int { return r.cwnd }

// SlowStart implements Algorithm.
func (r *NewReno) SlowStart() bool { return r.cwnd < r.ssthresh }

// ssIncrement bounds the slow-start growth per ack to 2*MSS (RFC 3465
// Appropriate Byte Counting): a huge cumulative ack — e.g. after a
// go-back-N retransmission fills a hole in front of buffered data —
// must not inflate the window by the whole acked range at once.
func ssIncrement(ackedBytes, mss int) int {
	if ackedBytes > 2*mss {
		return 2 * mss
	}
	return ackedBytes
}

// OnAck implements Algorithm.
func (r *NewReno) OnAck(ackedBytes int, rtt time.Duration, now time.Duration) {
	if r.SlowStart() {
		if r.hs.exitSlowStart(rtt) {
			r.ssthresh = r.cwnd
		} else {
			r.cwnd += ssIncrement(ackedBytes, r.mss)
			return
		}
	}
	// Congestion avoidance: one MSS per window of data acked.
	r.acked += ackedBytes
	if r.acked >= r.cwnd {
		r.acked -= r.cwnd
		r.cwnd += r.mss
	}
}

// OnLoss implements Algorithm.
func (r *NewReno) OnLoss(now time.Duration) {
	r.ssthresh = max(r.cwnd/2, MinWindowSegments*r.mss)
	r.cwnd = r.ssthresh
	r.acked = 0
}

// OnRTO implements Algorithm.
func (r *NewReno) OnRTO(now time.Duration) {
	r.ssthresh = max(r.cwnd/2, MinWindowSegments*r.mss)
	r.cwnd = r.mss
	r.acked = 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
