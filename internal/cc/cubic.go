package cc

import (
	"math"
	"time"
)

// Cubic implements RFC 8312 CUBIC with fast convergence and the TCP-
// friendly (Reno-estimate) region. CUBIC is the default controller in the
// paper's testbed kernels and the program shipped over the wire in the
// Fig. 12 experiment.
type Cubic struct {
	mss      int
	cwnd     int // bytes
	ssthresh int

	wMax       float64       // window before the last reduction (segments)
	epochStart time.Duration // start of the current congestion-avoidance epoch
	k          float64       // time to regrow to wMax (seconds)
	ackCount   float64       // acked segments in this epoch (for Reno estimate)
	wTCP       float64       // Reno-friendly window estimate (segments)
	hs         hystart
}

// CUBIC constants per RFC 8312.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// NewCubic returns a CUBIC controller.
func NewCubic(mss int) *Cubic {
	return &Cubic{
		mss:        mss,
		cwnd:       InitialWindowSegments * mss,
		ssthresh:   1 << 30,
		epochStart: -1,
	}
}

// Name implements Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// Window implements Algorithm.
func (c *Cubic) Window() int { return c.cwnd }

// SlowStart implements Algorithm.
func (c *Cubic) SlowStart() bool { return c.cwnd < c.ssthresh }

// OnAck implements Algorithm.
func (c *Cubic) OnAck(ackedBytes int, rtt time.Duration, now time.Duration) {
	if c.SlowStart() {
		if c.hs.exitSlowStart(rtt) {
			c.ssthresh = c.cwnd
			c.wMax = float64(c.cwnd) / float64(c.mss)
		} else {
			c.cwnd += ssIncrement(ackedBytes, c.mss)
			return
		}
	}
	if c.epochStart < 0 {
		c.epochStart = now
		seg := float64(c.cwnd) / float64(c.mss)
		if seg < c.wMax {
			c.k = math.Cbrt((c.wMax - seg) / cubicC)
		} else {
			c.k = 0
			c.wMax = seg
		}
		c.ackCount = 0
		c.wTCP = seg
	}
	t := (now - c.epochStart).Seconds()
	// W_cubic(t + RTT): target window one RTT ahead.
	target := cubicC*math.Pow(t+rtt.Seconds()-c.k, 3) + c.wMax

	// TCP-friendly region (RFC 8312 §4.2).
	c.ackCount += float64(ackedBytes) / float64(c.mss)
	seg := float64(c.cwnd) / float64(c.mss)
	c.wTCP += 3 * cubicBeta / (2 - cubicBeta) * (c.ackCount / seg)
	c.ackCount = 0
	if c.wTCP > target {
		target = c.wTCP
	}

	if target > seg {
		// Grow toward the target: (target - cwnd)/cwnd per acked
		// window, applied proportionally to this ack.
		inc := (target - seg) / seg * float64(ackedBytes)
		c.cwnd += int(inc)
	} else {
		// Max-probing plateau: tiny growth.
		c.cwnd += int(float64(ackedBytes) / (100 * seg))
	}
}

// OnLoss implements Algorithm.
func (c *Cubic) OnLoss(now time.Duration) {
	seg := float64(c.cwnd) / float64(c.mss)
	// Fast convergence: release bandwidth faster when the window is
	// shrinking across epochs.
	if seg < c.wMax {
		c.wMax = seg * (1 + cubicBeta) / 2
	} else {
		c.wMax = seg
	}
	c.cwnd = max(int(seg*cubicBeta)*c.mss, MinWindowSegments*c.mss)
	c.ssthresh = c.cwnd
	c.epochStart = -1
}

// OnRTO implements Algorithm.
func (c *Cubic) OnRTO(now time.Duration) {
	seg := float64(c.cwnd) / float64(c.mss)
	c.wMax = seg
	c.ssthresh = max(c.cwnd/2, MinWindowSegments*c.mss)
	c.cwnd = c.mss
	c.epochStart = -1
}
