package cc

import "time"

// Vegas implements TCP Vegas (Brakmo et al., 1994): a delay-based
// controller that backs off as soon as queues build, which is why a
// Vegas flow starves when it shares a bottleneck with CUBIC — the
// unfairness the Fig. 12 experiment repairs by shipping a CUBIC program
// over the TCPLS session.
type Vegas struct {
	mss      int
	cwnd     int
	ssthresh int

	baseRTT time.Duration // minimum observed RTT
	minRTT  time.Duration // minimum in the current window
	cntRTT  int           // samples this window
	acked   int           // byte accumulator
}

// Vegas alpha/beta thresholds in segments of queued data. Gamma (the
// slow-start exit threshold) is set well above Linux's default of 1 so
// Vegas reaches link capacity on high-BDP paths before switching to its
// one-segment-per-RTT additive mode — matching the paper's Fig. 12,
// where the Vegas session "rapidly reaches the full capacity".
const (
	vegasAlpha = 2
	vegasBeta  = 4
	vegasGamma = 8
)

// NewVegas returns a Vegas controller.
func NewVegas(mss int) *Vegas {
	return &Vegas{
		mss:      mss,
		cwnd:     InitialWindowSegments * mss,
		ssthresh: 1 << 30,
	}
}

// Name implements Algorithm.
func (v *Vegas) Name() string { return "vegas" }

// Window implements Algorithm.
func (v *Vegas) Window() int { return v.cwnd }

// SlowStart implements Algorithm.
func (v *Vegas) SlowStart() bool { return v.cwnd < v.ssthresh }

// OnAck implements Algorithm.
func (v *Vegas) OnAck(ackedBytes int, rtt time.Duration, now time.Duration) {
	if rtt > 0 {
		if v.baseRTT == 0 || rtt < v.baseRTT {
			v.baseRTT = rtt
		}
		if v.minRTT == 0 || rtt < v.minRTT {
			v.minRTT = rtt
		}
		v.cntRTT++
	}
	v.acked += ackedBytes
	if v.acked < v.cwnd {
		return
	}
	// One window's worth of data acked: run the Vegas estimator.
	v.acked -= v.cwnd
	if v.cntRTT == 0 || v.minRTT == 0 || v.baseRTT == 0 {
		v.cwnd += v.mss // no samples: behave like Reno
		return
	}
	segs := float64(v.cwnd) / float64(v.mss)
	// diff = cwnd * (1 - baseRTT/observedRTT): segments parked in queues.
	diff := segs * (1 - v.baseRTT.Seconds()/v.minRTT.Seconds())
	switch {
	case v.SlowStart():
		if diff > vegasGamma {
			// Queues forming: leave slow start near the current point.
			v.ssthresh = v.cwnd
			v.cwnd = max(v.cwnd-(v.cwnd-int(diff)*v.mss)/8, MinWindowSegments*v.mss)
		} else {
			v.cwnd += ssIncrement(v.cwnd, v.mss) // double per window
		}
	case diff < vegasAlpha:
		v.cwnd += v.mss
	case diff > vegasBeta:
		v.cwnd = max(v.cwnd-v.mss, MinWindowSegments*v.mss)
	}
	v.minRTT = 0
	v.cntRTT = 0
}

// OnLoss implements Algorithm.
func (v *Vegas) OnLoss(now time.Duration) {
	v.ssthresh = max(v.cwnd/2, MinWindowSegments*v.mss)
	v.cwnd = v.ssthresh
	v.acked = 0
}

// OnRTO implements Algorithm.
func (v *Vegas) OnRTO(now time.Duration) {
	v.ssthresh = max(v.cwnd/2, MinWindowSegments*v.mss)
	v.cwnd = v.mss
	v.acked = 0
	v.baseRTT = 0 // path may have changed
}
