package cc

import (
	"testing"
	"time"
)

const mss = DefaultMSS

// ackWindow feeds one full window of acks at the given RTT.
func ackWindow(a Algorithm, rtt time.Duration, now time.Duration) time.Duration {
	w := a.Window()
	for got := 0; got < w; got += mss {
		a.OnAck(mss, rtt, now)
		now += rtt / time.Duration(w/mss+1)
	}
	return now
}

func TestNewRenoSlowStartDoubles(t *testing.T) {
	r := NewNewReno(mss)
	w0 := r.Window()
	ackWindow(r, 10*time.Millisecond, 0)
	if r.Window() < 2*w0-mss {
		t.Errorf("slow start grew %d -> %d, want ~2x", w0, r.Window())
	}
	if !r.SlowStart() {
		t.Error("should still be in slow start")
	}
}

func TestNewRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewNewReno(mss)
	r.OnLoss(0) // forces ssthresh = cwnd/2, exits slow start
	w0 := r.Window()
	ackWindow(r, 10*time.Millisecond, 0)
	if got := r.Window() - w0; got != mss {
		t.Errorf("CA growth per window = %d bytes, want 1 MSS (%d)", got, mss)
	}
}

func TestNewRenoLossHalvesAndRTOCollapses(t *testing.T) {
	r := NewNewReno(mss)
	for i := 0; i < 100; i++ {
		r.OnAck(mss, 10*time.Millisecond, 0)
	}
	w := r.Window()
	r.OnLoss(0)
	if r.Window() != w/2 {
		t.Errorf("after loss window = %d, want %d", r.Window(), w/2)
	}
	r.OnRTO(0)
	if r.Window() != mss {
		t.Errorf("after RTO window = %d, want 1 MSS", r.Window())
	}
}

func TestCubicRecoversTowardWMax(t *testing.T) {
	c := NewCubic(mss)
	// Grow, lose, then verify the window regrows toward wMax over time.
	now := time.Duration(0)
	rtt := 20 * time.Millisecond
	for i := 0; i < 200; i++ {
		c.OnAck(mss, rtt, now)
		now += time.Millisecond
	}
	c.OnLoss(now)
	wAfterLoss := c.Window()
	for i := 0; i < 3000; i++ {
		c.OnAck(mss, rtt, now)
		now += time.Millisecond
	}
	if c.Window() <= wAfterLoss {
		t.Errorf("cubic did not regrow: %d -> %d", wAfterLoss, c.Window())
	}
}

func TestCubicBetaReduction(t *testing.T) {
	c := NewCubic(mss)
	for i := 0; i < 500; i++ {
		c.OnAck(mss, 20*time.Millisecond, time.Duration(i)*time.Millisecond)
	}
	w := c.Window()
	c.OnLoss(time.Second)
	want := int(float64(w/mss)*cubicBeta) * mss
	if c.Window() != want {
		t.Errorf("after loss %d, want %d (beta=0.7)", c.Window(), want)
	}
}

func TestVegasBacksOffOnQueueing(t *testing.T) {
	v := NewVegas(mss)
	v.ssthresh = v.cwnd // exit slow start immediately
	base := 20 * time.Millisecond

	// With RTT at base (empty queues) the window grows.
	now := time.Duration(0)
	w0 := v.Window()
	for i := 0; i < 3; i++ {
		now = ackWindow(v, base, now)
	}
	if v.Window() <= w0 {
		t.Errorf("vegas did not grow on empty queue: %d -> %d", w0, v.Window())
	}

	// With strongly inflated RTTs (queueing) the window shrinks.
	w1 := v.Window()
	for i := 0; i < 5; i++ {
		now = ackWindow(v, 3*base, now)
	}
	if v.Window() >= w1 {
		t.Errorf("vegas did not back off under queueing: %d -> %d", w1, v.Window())
	}
}

func TestVegasMoreConservativeThanCubicUnderQueueing(t *testing.T) {
	// The Fig. 12 premise: share a queue-building path and CUBIC ends up
	// with a much larger window than Vegas.
	v := NewVegas(mss)
	c := NewCubic(mss)
	v.ssthresh = v.cwnd
	base := 20 * time.Millisecond
	now := time.Duration(0)
	for i := 0; i < 30; i++ {
		rtt := base + time.Duration(i)*time.Millisecond // growing queue
		now = ackWindow(v, rtt, now)
		ackWindow(c, rtt, now)
	}
	if v.Window() >= c.Window() {
		t.Errorf("vegas window %d >= cubic window %d under queueing", v.Window(), c.Window())
	}
}

func TestFactory(t *testing.T) {
	for _, name := range []string{"newreno", "cubic", "vegas"} {
		a := New(name, mss)
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
		if a.Window() != InitialWindowSegments*mss {
			t.Errorf("%s initial window %d", name, a.Window())
		}
	}
	if a := New("unknown", mss); a.Name() != "newreno" {
		t.Error("unknown name should fall back to newreno")
	}
}

func TestWindowsNeverCollapseBelowFloor(t *testing.T) {
	for _, name := range []string{"newreno", "cubic", "vegas"} {
		a := New(name, mss)
		for i := 0; i < 50; i++ {
			a.OnLoss(0)
		}
		if a.Window() < MinWindowSegments*mss {
			t.Errorf("%s window %d below floor", name, a.Window())
		}
	}
}

func TestHyStartExitsSlowStartOnDelayRise(t *testing.T) {
	// CUBIC with HyStart must leave slow start when RTT inflates, long
	// before loss — the overshoot guard real kernels rely on.
	c := NewCubic(mss)
	base := 20 * time.Millisecond
	now := time.Duration(0)
	// Establish the minimum RTT.
	for i := 0; i < 20; i++ {
		c.OnAck(mss, base, now)
		now += time.Millisecond
	}
	if !c.SlowStart() {
		t.Fatal("left slow start with flat RTTs")
	}
	// Queue builds: RTT inflates well past min + max(4ms, min/8).
	for i := 0; i < 10 && c.SlowStart(); i++ {
		c.OnAck(mss, base+10*time.Millisecond, now)
		now += time.Millisecond
	}
	if c.SlowStart() {
		t.Fatal("HyStart did not exit slow start under queueing")
	}
}

func TestSSIncrementCapped(t *testing.T) {
	// RFC 3465: a giant cumulative ack must not inflate the window by
	// the whole acked range in slow start.
	r := NewNewReno(mss)
	w0 := r.Window()
	r.OnAck(1<<20, 10*time.Millisecond, 0) // 1 MiB acked at once
	if r.Window() > w0+2*mss {
		t.Fatalf("slow start grew by %d on one ack, cap is 2*MSS", r.Window()-w0)
	}
}
