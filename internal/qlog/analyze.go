package qlog

import (
	"fmt"
	"sort"
	"time"

	"tcpls/internal/health"
)

// PathCounts are per-connection record counters reconstructed from the
// trace. Sent/Received match the per-conn telemetry counters
// (tcpls_records_sent_total{conn=...}) exactly: Sent counts data
// records, failover retransmits, and control records; Received counts
// delivered records plus duplicates dropped by failover dedup.
type PathCounts struct {
	Conn         uint32 `json:"conn"`
	RecordsSent  uint64 `json:"records_sent"`
	RecordsRecv  uint64 `json:"records_received"`
	DataSent     uint64 `json:"data_sent"`
	CtlSent      uint64 `json:"ctl_sent"`
	CtlRecv      uint64 `json:"ctl_received"`
	Retransmits  uint64 `json:"retransmits"`
	DupDropped   uint64 `json:"dup_dropped"`
	AcksSent     uint64 `json:"acks_sent"`
	AcksReceived uint64 `json:"acks_received"`
	// BytesSent/BytesReceived count stream-data payload only, matching
	// tcpls_bytes_sent_total / tcpls_bytes_received_total.
	BytesSent     uint64 `json:"bytes_sent"`
	BytesReceived uint64 `json:"bytes_received"`
}

// Bucket is one timeseries sample for a path.
type Bucket struct {
	StartUS int64   `json:"start_us"`
	Value   float64 `json:"value"`
}

// PathSeries is a per-path timeseries (goodput in bytes/sec, or RTT in
// microseconds).
type PathSeries struct {
	Conn    uint32   `json:"conn"`
	Buckets []Bucket `json:"buckets"`
}

// FailoverGap is one reconstructed failover outage: from the engine
// declaring a connection failed to the first record flowing on another
// connection.
type FailoverGap struct {
	FailedConn  uint32 `json:"failed_conn"`
	TargetConn  uint32 `json:"target_conn,omitempty"`
	StartUS     int64  `json:"start_us"`
	EndUS       int64  `json:"end_us,omitempty"`
	DurationUS  int64  `json:"duration_us,omitempty"`
	Closed      bool   `json:"closed"`
	Retransmits int    `json:"retransmits"`
}

// SpanStats aggregates record-lifecycle spans.
type SpanStats struct {
	Count      int   `json:"count"`
	RetxSpans  int   `json:"retx_spans"`
	QueueP50US int64 `json:"queue_p50_us"` // enqueue -> sealed
	QueueP99US int64 `json:"queue_p99_us"`
	WireP50US  int64 `json:"wire_p50_us"` // written -> acked
	WireP99US  int64 `json:"wire_p99_us"`
	TotalP50US int64 `json:"total_p50_us"` // enqueue -> acked
	TotalP99US int64 `json:"total_p99_us"`
	TotalMaxUS int64 `json:"total_max_us"`
}

// JoinGap is the time from a join landing on a session (the
// join_accepted / join_fastpath mark on its new connection) to the
// first record flowing on that connection — the user-visible cost of
// bringing a path up. Fast-path joins should close their gap roughly
// one RTT sooner than two-flight joins.
type JoinGap struct {
	Conn       uint32 `json:"conn"`
	Fastpath   bool   `json:"fastpath"`
	StartUS    int64  `json:"start_us"`
	EndUS      int64  `json:"end_us,omitempty"`
	DurationUS int64  `json:"duration_us,omitempty"`
	Closed     bool   `json:"closed"`
}

// ResumptionStats counts the session-establishment marks on the trace:
// ticket lifecycle, resume and 0-RTT dispositions, and join fast-path
// usage. Counts are zero (and the section omitted from summaries) on
// traces that never touch resumption.
type ResumptionStats struct {
	TicketsIssued   int `json:"tickets_issued,omitempty"`
	TicketsReceived int `json:"tickets_received,omitempty"`
	TicketsReissued int `json:"tickets_reissued,omitempty"`
	ResumeAccepted  int `json:"resume_accepted,omitempty"`
	ResumeRejected  int `json:"resume_rejected,omitempty"`
	// ResumptionRate is accepted / (accepted + rejected), 0 when no
	// resumption was attempted.
	ResumptionRate float64   `json:"resumption_rate,omitempty"`
	EarlyAccepted  int       `json:"early_data_accepted,omitempty"`
	EarlyRejected  int       `json:"early_data_rejected,omitempty"`
	EarlyBytes     int       `json:"early_data_bytes,omitempty"`
	JoinFastpath   int       `json:"join_fastpath,omitempty"`
	JoinGaps       []JoinGap `json:"join_gaps,omitempty"`
}

// HealthMark is one continuous-diagnosis verdict transition on the
// trace timeline: a "health"-category event whose type is the verdict
// kind, Seq 1 for raises and 0 for clears, Bytes the headline evidence
// scalar the monitor attached.
type HealthMark struct {
	TimeUS int64  `json:"time_us"`
	Kind   string `json:"kind"`
	Raised bool   `json:"raised"`
	Conn   uint32 `json:"conn,omitempty"`
	Value  int    `json:"value,omitempty"`
}

// HealthStats is the health-category rollup: the verdict timeline plus
// which kinds were still raised when the trace ended. Open verdicts
// are informational, not violations — a session may legitimately die
// (or a flight ring wrap) mid-diagnosis.
type HealthStats struct {
	Events   int          `json:"events,omitempty"`
	Timeline []HealthMark `json:"timeline,omitempty"`
	Open     []string     `json:"open,omitempty"`
}

// ReorderStats summarizes reorder-buffer depth over the trace.
type ReorderStats struct {
	Samples int `json:"samples"`
	P50     int `json:"p50"`
	P90     int `json:"p90"`
	P99     int `json:"p99"`
	Max     int `json:"max"`
}

// Report is the full analysis of one trace.
type Report struct {
	Events     int             `json:"events"`
	StartUS    int64           `json:"start_us"`
	EndUS      int64           `json:"end_us"`
	Paths      []PathCounts    `json:"paths"`
	Goodput    []PathSeries    `json:"goodput,omitempty"`
	RTT        []PathSeries    `json:"rtt,omitempty"`
	Failovers  []FailoverGap   `json:"failovers,omitempty"`
	Resumption ResumptionStats `json:"resumption"`
	Health     HealthStats     `json:"health"`
	Spans      SpanStats       `json:"spans"`
	Reorder    ReorderStats    `json:"reorder"`
	Violations []string        `json:"violations,omitempty"`
}

// Options tunes Analyze.
type Options struct {
	// Interval is the timeseries bucket width (default 100ms).
	Interval time.Duration
	// MaxGap, when nonzero, flags failover gaps longer than it as
	// violations (the chaos-test assertion).
	MaxGap time.Duration
}

// Analyze reconstructs the Report from a parsed event stream. Events
// are expected in emission order (the sink and flight ring both
// preserve it).
func Analyze(events []Event, opts Options) *Report {
	interval := opts.Interval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ivUS := interval.Microseconds()

	rep := &Report{Events: len(events)}
	counts := map[uint32]*PathCounts{}
	path := func(conn uint32) *PathCounts {
		pc := counts[conn]
		if pc == nil {
			pc = &PathCounts{Conn: conn}
			counts[conn] = pc
		}
		return pc
	}
	goodput := map[uint32]map[int64]float64{} // conn -> bucket start -> bytes
	rtts := map[uint32][]Bucket{}             // conn -> (time, rtt_us) samples
	var reorderDepths []int
	var queueDs, wireDs, totalDs []int64
	var gaps []FailoverGap
	open := -1 // index into gaps of the unclosed one, or -1

	// Join gaps: conn -> index into rep.Resumption.JoinGaps of the gap
	// still waiting for its first record.
	openJoins := map[uint32]int{}
	markJoin := func(ev *Event, fastpath bool) {
		if ev.Conn == 0 {
			// Listener-level marks (noteSessionTrace) carry conn 0; the
			// client-side mark on the actual connection opens the gap.
			return
		}
		if _, dup := openJoins[ev.Conn]; dup {
			// A fastpath join notes join_fastpath then join_accepted on
			// the same conn — keep the earliest mark.
			return
		}
		rep.Resumption.JoinGaps = append(rep.Resumption.JoinGaps,
			JoinGap{Conn: ev.Conn, Fastpath: fastpath, StartUS: ev.TimeUS})
		openJoins[ev.Conn] = len(rep.Resumption.JoinGaps) - 1
	}
	closeJoin := func(ev *Event) {
		idx, ok := openJoins[ev.Conn]
		if !ok {
			return
		}
		g := &rep.Resumption.JoinGaps[idx]
		g.EndUS = ev.TimeUS
		g.DurationUS = ev.TimeUS - g.StartUS
		g.Closed = true
		delete(openJoins, ev.Conn)
	}

	for i := range events {
		ev := &events[i]
		if ev.TimeUS != 0 {
			if rep.StartUS == 0 || ev.TimeUS < rep.StartUS {
				rep.StartUS = ev.TimeUS
			}
			if ev.TimeUS > rep.EndUS {
				rep.EndUS = ev.TimeUS
			}
		}
		switch ev.Type {
		case "record_sent":
			pc := path(ev.Conn)
			pc.RecordsSent++
			pc.DataSent++
			pc.BytesSent += uint64(ev.Bytes)
			bump(goodput, ev.Conn, ev.TimeUS, ivUS, float64(ev.Bytes))
			closeGap(gaps, &open, ev, rep)
			closeJoin(ev)
		case "ctl_sent":
			pc := path(ev.Conn)
			pc.RecordsSent++
			pc.CtlSent++
			closeJoin(ev)
		case "ctl_received":
			pc := path(ev.Conn)
			pc.RecordsRecv++
			pc.CtlRecv++
			closeJoin(ev)
		case "retransmit":
			pc := path(ev.Conn)
			pc.RecordsSent++
			pc.Retransmits++
			if open >= 0 {
				gaps[open].Retransmits++
			}
			closeGap(gaps, &open, ev, rep)
			closeJoin(ev)
		case "record_received":
			pc := path(ev.Conn)
			pc.RecordsRecv++
			pc.BytesReceived += uint64(ev.Bytes)
			closeJoin(ev)
		case "dup_dropped":
			pc := path(ev.Conn)
			pc.RecordsRecv++
			pc.DupDropped++
			pc.BytesReceived += uint64(ev.Bytes)
			closeJoin(ev)
		case "ticket_issued":
			rep.Resumption.TicketsIssued++
		case "ticket_received":
			rep.Resumption.TicketsReceived++
		case "ticket_reissued":
			rep.Resumption.TicketsReissued++
		case "resume_accepted":
			rep.Resumption.ResumeAccepted++
		case "resume_rejected":
			rep.Resumption.ResumeRejected++
		case "early_data_accepted":
			rep.Resumption.EarlyAccepted++
			rep.Resumption.EarlyBytes += ev.Bytes
		case "early_data_rejected":
			rep.Resumption.EarlyRejected++
		case "join_fastpath":
			rep.Resumption.JoinFastpath++
			markJoin(ev, true)
		case "join_accepted":
			markJoin(ev, false)
		case "ack_sent":
			path(ev.Conn).AcksSent++
		case "ack_received":
			path(ev.Conn).AcksReceived++
		case "conn_failed":
			if open >= 0 {
				// Cascading failure before recovery: keep the earliest
				// start, note the newest failed conn.
				gaps[open].FailedConn = ev.Conn
			} else {
				gaps = append(gaps, FailoverGap{FailedConn: ev.Conn, StartUS: ev.TimeUS})
				open = len(gaps) - 1
			}
		case "record_span":
			rep.Spans.Count++
			if ev.Retx > 0 {
				rep.Spans.RetxSpans++
			}
			if d, ok := legDelta(ev.EnqUS, ev.SealedUS); ok {
				queueDs = append(queueDs, d)
			} else if !ok && ev.EnqUS > 0 && ev.SealedUS > 0 {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"line %d: span enq_us %d after sealed_us %d", ev.Line, ev.EnqUS, ev.SealedUS))
			}
			if d, ok := legDelta(ev.WrittenUS, ev.AckedUS); ok {
				wireDs = append(wireDs, d)
				if ev.Retx == 0 {
					rtts[ev.Conn] = append(rtts[ev.Conn],
						Bucket{StartUS: ev.AckedUS, Value: float64(d)})
				}
			} else if ev.WrittenUS > 0 && ev.AckedUS > 0 {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"line %d: span written_us %d after acked_us %d", ev.Line, ev.WrittenUS, ev.AckedUS))
			}
			if d, ok := legDelta(ev.EnqUS, ev.AckedUS); ok {
				totalDs = append(totalDs, d)
			}
		case "reorder_depth":
			reorderDepths = append(reorderDepths, int(ev.Seq))
		default:
			// Health verdict transitions ride the same stream under
			// their kind name; they touch no path counters, so -check
			// reconciliation stays exact with them interleaved.
			if _, ok := health.KindFromString(ev.Type); ok {
				rep.Health.Events++
				rep.Health.Timeline = append(rep.Health.Timeline, HealthMark{
					TimeUS: ev.TimeUS,
					Kind:   ev.Type,
					Raised: ev.Seq == 1,
					Conn:   ev.Conn,
					Value:  ev.Bytes,
				})
			}
		}
	}

	// Which verdicts were still raised at trace end? "healthy" is the
	// all-clear transition, never an open condition.
	openVerdicts := map[string]bool{}
	for _, mk := range rep.Health.Timeline {
		if mk.Kind == "healthy" {
			continue
		}
		openVerdicts[mk.Kind] = mk.Raised
	}
	for kind, open := range openVerdicts {
		if open {
			rep.Health.Open = append(rep.Health.Open, kind)
		}
	}
	sort.Strings(rep.Health.Open)

	for conn, pc := range counts {
		_ = conn
		rep.Paths = append(rep.Paths, *pc)
	}
	sort.Slice(rep.Paths, func(i, j int) bool { return rep.Paths[i].Conn < rep.Paths[j].Conn })

	rep.Goodput = seriesFromBuckets(goodput, ivUS)
	rep.RTT = seriesFromSamples(rtts)
	rep.Failovers = gaps
	for i := range rep.Failovers {
		g := &rep.Failovers[i]
		if !g.Closed {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"failover gap on conn %d opened at %dus never closed", g.FailedConn, g.StartUS))
		} else if g.DurationUS < 0 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"failover gap on conn %d has negative duration %dus", g.FailedConn, g.DurationUS))
		} else if opts.MaxGap > 0 && g.DurationUS > opts.MaxGap.Microseconds() {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"failover gap on conn %d lasted %v, budget %v", g.FailedConn,
				time.Duration(g.DurationUS)*time.Microsecond, opts.MaxGap))
		}
	}

	if att := rep.Resumption.ResumeAccepted + rep.Resumption.ResumeRejected; att > 0 {
		rep.Resumption.ResumptionRate = float64(rep.Resumption.ResumeAccepted) / float64(att)
	}

	rep.Spans.QueueP50US = pctInt64(queueDs, 50)
	rep.Spans.QueueP99US = pctInt64(queueDs, 99)
	rep.Spans.WireP50US = pctInt64(wireDs, 50)
	rep.Spans.WireP99US = pctInt64(wireDs, 99)
	rep.Spans.TotalP50US = pctInt64(totalDs, 50)
	rep.Spans.TotalP99US = pctInt64(totalDs, 99)
	rep.Spans.TotalMaxUS = pctInt64(totalDs, 100)

	rep.Reorder.Samples = len(reorderDepths)
	sort.Ints(reorderDepths)
	rep.Reorder.P50 = pctInt(reorderDepths, 50)
	rep.Reorder.P90 = pctInt(reorderDepths, 90)
	rep.Reorder.P99 = pctInt(reorderDepths, 99)
	rep.Reorder.Max = pctInt(reorderDepths, 100)
	return rep
}

// closeGap ends the open failover gap when a record flows on a
// connection other than the failed one.
func closeGap(gaps []FailoverGap, open *int, ev *Event, rep *Report) {
	if *open < 0 {
		return
	}
	g := &gaps[*open]
	if ev.Conn == g.FailedConn {
		return
	}
	g.TargetConn = ev.Conn
	g.EndUS = ev.TimeUS
	g.DurationUS = ev.TimeUS - g.StartUS
	g.Closed = true
	*open = -1
}

// legDelta returns the duration between two stamped span legs; ok is
// false when either leg is unstamped or the order is inverted.
func legDelta(from, to int64) (int64, bool) {
	if from <= 0 || to <= 0 || to < from {
		return 0, false
	}
	return to - from, true
}

// bump adds v into conn's bucket containing t.
func bump(m map[uint32]map[int64]float64, conn uint32, t, ivUS int64, v float64) {
	b := m[conn]
	if b == nil {
		b = map[int64]float64{}
		m[conn] = b
	}
	b[(t/ivUS)*ivUS] += v
}

// seriesFromBuckets converts bucketed byte counts to bytes/sec series.
func seriesFromBuckets(m map[uint32]map[int64]float64, ivUS int64) []PathSeries {
	var out []PathSeries
	for conn, b := range m {
		ps := PathSeries{Conn: conn}
		for start, bytes := range b {
			ps.Buckets = append(ps.Buckets,
				Bucket{StartUS: start, Value: bytes * 1e6 / float64(ivUS)})
		}
		sort.Slice(ps.Buckets, func(i, j int) bool { return ps.Buckets[i].StartUS < ps.Buckets[j].StartUS })
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Conn < out[j].Conn })
	return out
}

func seriesFromSamples(m map[uint32][]Bucket) []PathSeries {
	var out []PathSeries
	for conn, samples := range m {
		out = append(out, PathSeries{Conn: conn, Buckets: samples})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Conn < out[j].Conn })
	return out
}

// pctInt64 returns the p-th percentile (nearest-rank) of sorted-or-not
// values; 0 when empty. p=100 is the max.
func pctInt64(vals []int64, p int) int64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[rankIdx(len(sorted), p)]
}

// pctInt expects vals already sorted.
func pctInt(vals []int, p int) int {
	if len(vals) == 0 {
		return 0
	}
	return vals[rankIdx(len(vals), p)]
}

func rankIdx(n, p int) int {
	idx := n*p/100 - 1
	if n*p%100 != 0 {
		idx++
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
