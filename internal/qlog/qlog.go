// Package qlog parses and analyzes TCPLS trace output: the qlog-lines
// NDJSON written by Session.TraceJSON, the legacy flat schema
// (SinkOptions.Flat), and flight-recorder dumps (Session.DumpFlight),
// which share the qlog framing. The analyzer reconstructs per-path
// goodput and RTT timeseries, failover gap durations, and reorder-depth
// percentiles from the event stream — the offline half of the paper's
// observability story.
package qlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Event is one parsed trace event, normalized across the qlog-framed
// and flat schemas.
type Event struct {
	TimeUS   int64
	Category string // derived for flat input
	Type     string
	Conn     uint32
	Stream   uint32
	Seq      uint64
	Bytes    int

	// Record-lifecycle span legs (record_span only); 0 = not stamped.
	EnqUS     int64
	SealedUS  int64
	WrittenUS int64
	AckedUS   int64
	OrigConn  uint32
	Retx      int

	Line int // 1-based source line, for diagnostics
}

// header mirrors the qlog NDJSON header line.
type header struct {
	QlogVersion string `json:"qlog_version"`
	QlogFormat  string `json:"qlog_format"`
	Title       string `json:"title"`
}

// wireEvent is the union of both serialized schemas. Qlog framing puts
// identifiers under "data"; the flat schema puts them at the top level
// with "name" instead of "type".
type wireEvent struct {
	TimeUS   int64  `json:"time_us"`
	Category string `json:"category"`
	Type     string `json:"type"`
	Name     string `json:"name"`
	Data     *wireData
	wireData // flat schema: fields inline
}

type wireData struct {
	Conn      uint32 `json:"conn"`
	Stream    uint32 `json:"stream"`
	Seq       uint64 `json:"seq"`
	Bytes     int    `json:"bytes"`
	EnqUS     int64  `json:"enq_us"`
	SealedUS  int64  `json:"sealed_us"`
	WrittenUS int64  `json:"written_us"`
	AckedUS   int64  `json:"acked_us"`
	OrigConn  uint32 `json:"orig_conn"`
	Retx      int    `json:"retx"`
}

// UnmarshalJSON decodes either schema: a first pass for the shared
// top-level fields, a second for the nested data object when present.
func (w *wireEvent) UnmarshalJSON(b []byte) error {
	var top struct {
		TimeUS   int64           `json:"time_us"`
		Category string          `json:"category"`
		Type     string          `json:"type"`
		Name     string          `json:"name"`
		Data     json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(b, &top); err != nil {
		return err
	}
	w.TimeUS = top.TimeUS
	w.Category = top.Category
	w.Type = top.Type
	w.Name = top.Name
	if len(top.Data) > 0 {
		w.Data = new(wireData)
		if err := json.Unmarshal(top.Data, w.Data); err != nil {
			return err
		}
		return nil
	}
	return json.Unmarshal(b, &w.wireData)
}

// ParseError reports an unparseable or structurally invalid line.
type ParseError struct {
	Line int
	Text string
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("line %d: %v", e.Line, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Parse reads a full trace from r. Header lines (qlog framing) are
// recognized and skipped wherever they appear — concatenating a live
// trace and a flight dump is legal input. Blank lines are ignored.
// Malformed lines abort with a *ParseError carrying the line number.
func Parse(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.Contains(line, `"qlog_version"`) {
			var h header
			if err := json.Unmarshal([]byte(line), &h); err == nil && h.QlogVersion != "" {
				continue
			}
		}
		var w wireEvent
		if err := json.Unmarshal([]byte(line), &w); err != nil {
			return events, &ParseError{Line: lineNo, Text: line, Err: err}
		}
		typ := w.Type
		if typ == "" {
			typ = w.Name
		}
		if typ == "" {
			return events, &ParseError{Line: lineNo, Text: line,
				Err: fmt.Errorf("event has neither type nor name")}
		}
		d := w.Data
		if d == nil {
			d = &w.wireData
		}
		events = append(events, Event{
			TimeUS:    w.TimeUS,
			Category:  w.Category,
			Type:      typ,
			Conn:      d.Conn,
			Stream:    d.Stream,
			Seq:       d.Seq,
			Bytes:     d.Bytes,
			EnqUS:     d.EnqUS,
			SealedUS:  d.SealedUS,
			WrittenUS: d.WrittenUS,
			AckedUS:   d.AckedUS,
			OrigConn:  d.OrigConn,
			Retx:      d.Retx,
			Line:      lineNo,
		})
	}
	if err := sc.Err(); err != nil {
		// Scanner-level failures (a line past the 16 MiB cap, a reader
		// error) are rejects like any other: typed, with the position.
		return events, &ParseError{Line: lineNo + 1, Err: err}
	}
	return events, nil
}
