package qlog

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzParse drives the trace parser with arbitrary bytes — the qlog
// files it reads come from disk and CI artifacts, so hostile or
// truncated input is expected, not exceptional. The contract mirrors
// the PR-6 frame-parser fuzzer: never panic, every reject is a typed
// *ParseError, and every accepted trace round-trips — re-encoding the
// parsed events with AppendEvent and reparsing yields the identical
// normalized event list (the oracle that catches silent field loss in
// either the parser or the encoder).
func FuzzParse(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(Header + "\n"))
	f.Add([]byte(Header + "\n" +
		`{"time_us":12,"category":"transport","type":"record_sent","data":{"conn":0,"stream":2,"seq":41,"bytes":16368}}` + "\n"))
	f.Add([]byte(`{"time_us":99,"name":"record_received","conn":3,"stream":2,"seq":7,"bytes":512}` + "\n")) // flat schema
	f.Add([]byte(`{"time_us":5,"category":"span","type":"record_span","data":{"conn":1,"enq_us":1,"sealed_us":2,"written_us":3,"acked_us":4,"orig_conn":2,"retx":1}}`))
	f.Add([]byte(`{"time_us":1,"type":"conn_failed","data":{"conn":2}}` + "\n" +
		`{"time_us":2,"type":"retransmit","data":{"conn":0,"stream":1,"seq":9,"bytes":4096}}`))
	f.Add([]byte("{not json}\n"))
	f.Add([]byte(`{"time_us":1}`))                     // neither type nor name
	f.Add([]byte(`{"type":"x","data":{"conn":-1}}`))   // field out of range
	f.Add([]byte(`{"type":"x","data":{"bytes":1.5}}`)) // non-integer
	f.Add([]byte("\n\n" + Header + "\n\n"))            // blanks everywhere
	f.Add([]byte(`{"qlog_version":""}` + "\n"))        // header-ish but empty version
	f.Add(bytes.Repeat([]byte("a"), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Parse(bytes.NewReader(data))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse error is not a *ParseError: %T %v", err, err)
			}
			if pe.Line <= 0 {
				t.Fatalf("ParseError without a line number: %+v", pe)
			}
			return
		}
		// Accepted trace: re-encode and reparse. The second parse must
		// accept, and normalization must be idempotent.
		var buf bytes.Buffer
		if werr := WriteTrace(&buf, events); werr != nil {
			t.Fatalf("WriteTrace of parsed events: %v", werr)
		}
		again, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("reparse of encoded trace: %v\ntrace:\n%s", err, buf.String())
		}
		if len(again) != len(events) {
			t.Fatalf("reparse event count %d, want %d", len(again), len(events))
		}
		for i := range events {
			a, b := events[i], again[i]
			a.Line, b.Line = 0, 0
			if a != b {
				t.Fatalf("event %d changed across encode/parse:\n first: %+v\n again: %+v", i, events[i], again[i])
			}
		}
	})
}
