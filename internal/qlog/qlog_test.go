package qlog

import (
	"strings"
	"testing"
	"time"
)

const qlogSample = `{"qlog_version":"0.3","qlog_format":"NDJSON","title":"tcpls"}
{"time_us":1000,"category":"transport","type":"record_sent","data":{"conn":0,"stream":2,"seq":0,"bytes":100}}
{"time_us":2000,"category":"transport","type":"ack_received","data":{"conn":0,"stream":2,"seq":1,"bytes":0}}
`

const flatSample = `{"time_us":1000,"name":"record_sent","conn":0,"stream":2,"seq":0,"bytes":100}
{"time_us":2000,"name":"ack_received","conn":0,"stream":2,"seq":1,"bytes":0}
`

func TestParseBothSchemas(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"qlog", qlogSample},
		{"flat", flatSample},
	} {
		events, err := Parse(strings.NewReader(tc.in))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(events) != 2 {
			t.Fatalf("%s: parsed %d events, want 2", tc.name, len(events))
		}
		if events[0].Type != "record_sent" || events[0].Conn != 0 ||
			events[0].Stream != 2 || events[0].Bytes != 100 || events[0].TimeUS != 1000 {
			t.Fatalf("%s: event 0 mismatch: %+v", tc.name, events[0])
		}
		if events[1].Type != "ack_received" || events[1].Seq != 1 {
			t.Fatalf("%s: event 1 mismatch: %+v", tc.name, events[1])
		}
	}
}

func TestParseConcatenatedDumps(t *testing.T) {
	// A live trace followed by a flight dump: two headers, both skipped.
	events, err := Parse(strings.NewReader(qlogSample + qlogSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(events))
	}
}

func TestParseMalformedLine(t *testing.T) {
	_, err := Parse(strings.NewReader(qlogSample + "{oops\n"))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("got %v, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Fatalf("error on line %d, want 4", pe.Line)
	}
}

func TestAnalyzeCounts(t *testing.T) {
	events := []Event{
		{TimeUS: 1000, Type: "record_sent", Conn: 0, Bytes: 100},
		{TimeUS: 1100, Type: "ctl_sent", Conn: 0, Bytes: 10},
		{TimeUS: 1200, Type: "record_sent", Conn: 1, Bytes: 200},
		{TimeUS: 1300, Type: "retransmit", Conn: 1, Bytes: 100},
		{TimeUS: 1400, Type: "record_received", Conn: 0, Bytes: 50},
		{TimeUS: 1500, Type: "dup_dropped", Conn: 0, Bytes: 50},
		{TimeUS: 1600, Type: "ack_sent", Conn: 0},
		{TimeUS: 1700, Type: "ack_received", Conn: 1},
		{TimeUS: 1800, Type: "ctl_received", Conn: 0, Seq: 4, Bytes: 9},
	}
	rep := Analyze(events, Options{})
	if len(rep.Paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(rep.Paths))
	}
	p0, p1 := rep.Paths[0], rep.Paths[1]
	if p0.RecordsSent != 2 || p0.DataSent != 1 || p0.CtlSent != 1 {
		t.Fatalf("conn 0 sent counts: %+v", p0)
	}
	if p0.RecordsRecv != 3 || p0.DupDropped != 1 || p0.CtlRecv != 1 || p0.AcksSent != 1 {
		t.Fatalf("conn 0 recv counts: %+v", p0)
	}
	if p0.BytesReceived != 100 { // ctl payloads don't count as stream bytes
		t.Fatalf("conn 0 bytes received %d, want 100", p0.BytesReceived)
	}
	if p1.RecordsSent != 2 || p1.Retransmits != 1 || p1.AcksReceived != 1 {
		t.Fatalf("conn 1 counts: %+v", p1)
	}
}

func TestAnalyzeFailoverGap(t *testing.T) {
	events := []Event{
		{TimeUS: 1000, Type: "record_sent", Conn: 0, Bytes: 100},
		{TimeUS: 2000, Type: "conn_failed", Conn: 0},
		{TimeUS: 2500, Type: "failover_started", Conn: 0},
		{TimeUS: 3500, Type: "retransmit", Conn: 1, Bytes: 100},
		{TimeUS: 4000, Type: "record_sent", Conn: 1, Bytes: 100},
	}
	rep := Analyze(events, Options{})
	if len(rep.Failovers) != 1 {
		t.Fatalf("got %d gaps, want 1", len(rep.Failovers))
	}
	g := rep.Failovers[0]
	if !g.Closed || g.FailedConn != 0 || g.TargetConn != 1 {
		t.Fatalf("gap: %+v", g)
	}
	if g.DurationUS != 1500 {
		t.Fatalf("gap duration %dus, want 1500", g.DurationUS)
	}
	if g.Retransmits != 1 {
		t.Fatalf("gap retransmits %d, want 1", g.Retransmits)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", rep.Violations)
	}

	// Budget assertion: 1.5ms gap fails a 1ms budget.
	rep = Analyze(events, Options{MaxGap: time.Millisecond})
	if len(rep.Violations) != 1 {
		t.Fatalf("budget violation not flagged: %v", rep.Violations)
	}
}

func TestAnalyzeUnclosedGap(t *testing.T) {
	events := []Event{
		{TimeUS: 1000, Type: "conn_failed", Conn: 0},
		{TimeUS: 2000, Type: "record_sent", Conn: 0, Bytes: 1}, // same conn: not recovery
	}
	rep := Analyze(events, Options{})
	if len(rep.Failovers) != 1 || rep.Failovers[0].Closed {
		t.Fatalf("gap should stay open: %+v", rep.Failovers)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("unclosed gap not flagged as violation")
	}
}

func TestAnalyzeSpans(t *testing.T) {
	events := []Event{
		{TimeUS: 5000, Type: "record_span", Conn: 0,
			EnqUS: 1000, SealedUS: 1100, WrittenUS: 1200, AckedUS: 2200},
		{TimeUS: 6000, Type: "record_span", Conn: 0, Retx: 1,
			EnqUS: 1000, SealedUS: 1100, WrittenUS: 1500, AckedUS: 3500},
	}
	rep := Analyze(events, Options{})
	if rep.Spans.Count != 2 || rep.Spans.RetxSpans != 1 {
		t.Fatalf("span counts: %+v", rep.Spans)
	}
	if rep.Spans.WireP99US != 2000 {
		t.Fatalf("wire p99 %dus, want 2000", rep.Spans.WireP99US)
	}
	// Only the clean (retx=0) span feeds the RTT series.
	if len(rep.RTT) != 1 || len(rep.RTT[0].Buckets) != 1 || rep.RTT[0].Buckets[0].Value != 1000 {
		t.Fatalf("rtt series: %+v", rep.RTT)
	}
}

func TestAnalyzeInvertedSpanViolation(t *testing.T) {
	events := []Event{
		{TimeUS: 5000, Type: "record_span", Conn: 0, Line: 7,
			EnqUS: 1000, SealedUS: 1100, WrittenUS: 2200, AckedUS: 1200},
	}
	rep := Analyze(events, Options{})
	if len(rep.Violations) != 1 {
		t.Fatalf("inverted span not flagged: %v", rep.Violations)
	}
}

func TestAnalyzeReorderPercentiles(t *testing.T) {
	var events []Event
	for i := 1; i <= 100; i++ {
		events = append(events, Event{TimeUS: int64(i * 1000), Type: "reorder_depth", Seq: uint64(i)})
	}
	rep := Analyze(events, Options{})
	if rep.Reorder.Samples != 100 {
		t.Fatalf("samples %d", rep.Reorder.Samples)
	}
	if rep.Reorder.P50 != 50 || rep.Reorder.P90 != 90 || rep.Reorder.P99 != 99 || rep.Reorder.Max != 100 {
		t.Fatalf("percentiles: %+v", rep.Reorder)
	}
}

func TestAnalyzeGoodputSeries(t *testing.T) {
	events := []Event{
		{TimeUS: 0, Type: "record_sent", Conn: 0, Bytes: 1000},
		{TimeUS: 50_000, Type: "record_sent", Conn: 0, Bytes: 1000},
		{TimeUS: 150_000, Type: "record_sent", Conn: 0, Bytes: 500},
	}
	rep := Analyze(events, Options{Interval: 100 * time.Millisecond})
	if len(rep.Goodput) != 1 {
		t.Fatalf("series: %+v", rep.Goodput)
	}
	b := rep.Goodput[0].Buckets
	if len(b) != 2 {
		t.Fatalf("buckets: %+v", b)
	}
	// 2000 bytes in a 100ms bucket = 20000 B/s.
	if b[0].Value != 20000 || b[1].Value != 5000 {
		t.Fatalf("goodput values: %+v", b)
	}
}

const resumeSample = `{"qlog_version":"0.3","qlog_format":"NDJSON","title":"tcpls"}
{"time_us":1000,"category":"transport","type":"ticket_issued","data":{"conn":0,"bytes":64}}
{"time_us":1100,"category":"transport","type":"resume_accepted","data":{"conn":0}}
{"time_us":1200,"category":"transport","type":"ticket_reissued","data":{"conn":0}}
{"time_us":1300,"category":"transport","type":"resume_rejected","data":{"conn":0}}
{"time_us":1400,"category":"transport","type":"early_data_accepted","data":{"conn":0,"stream":2,"bytes":512}}
{"time_us":1500,"category":"transport","type":"early_data_rejected","data":{"conn":0}}
{"time_us":2000,"category":"transport","type":"join_fastpath","data":{"conn":3,"bytes":100}}
{"time_us":2250,"category":"transport","type":"record_sent","data":{"conn":3,"stream":2,"seq":0,"bytes":100}}
{"time_us":3000,"category":"transport","type":"join_accepted","data":{"conn":5}}
{"time_us":3600,"category":"transport","type":"record_sent","data":{"conn":5,"stream":4,"seq":0,"bytes":80}}
{"time_us":4000,"category":"transport","type":"join_fastpath","data":{"conn":0}}
`

func TestAnalyzeResumption(t *testing.T) {
	events, err := Parse(strings.NewReader(resumeSample))
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(events, Options{})
	r := rep.Resumption
	if r.TicketsIssued != 1 || r.TicketsReissued != 1 {
		t.Fatalf("ticket counts: %+v", r)
	}
	if r.ResumeAccepted != 1 || r.ResumeRejected != 1 || r.ResumptionRate != 0.5 {
		t.Fatalf("resume counts: %+v", r)
	}
	if r.EarlyAccepted != 1 || r.EarlyRejected != 1 || r.EarlyBytes != 512 {
		t.Fatalf("early-data counts: %+v", r)
	}
	// Two join fastpath marks: one on a real conn, one listener-level
	// (conn 0) that must not open a gap.
	if r.JoinFastpath != 2 {
		t.Fatalf("join_fastpath = %d, want 2", r.JoinFastpath)
	}
	if len(r.JoinGaps) != 2 {
		t.Fatalf("join gaps = %d, want 2", len(r.JoinGaps))
	}
	fast, slow := r.JoinGaps[0], r.JoinGaps[1]
	if !fast.Fastpath || !fast.Closed || fast.DurationUS != 250 {
		t.Fatalf("fastpath gap: %+v", fast)
	}
	if slow.Fastpath || !slow.Closed || slow.DurationUS != 600 {
		t.Fatalf("two-flight gap: %+v", slow)
	}
	// Resumption marks are informational: -check must stay exact, so no
	// violations from this trace.
	if len(rep.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", rep.Violations)
	}
}
