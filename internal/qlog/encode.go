package qlog

import (
	"encoding/json"
	"io"
)

// Header is the qlog NDJSON header line (mirrors telemetry.QlogHeader;
// duplicated so the parser package stays dependency-free).
const Header = `{"qlog_version":"0.3","qlog_format":"NDJSON","title":"tcpls"}`

// encEvent serializes an Event back into the qlog-framed wire schema
// the Sink writes: category/type at the top level, identifiers under
// data. Span legs are omitempty, matching the writer.
type encEvent struct {
	TimeUS   int64   `json:"time_us"`
	Category string  `json:"category"`
	Type     string  `json:"type"`
	Data     encData `json:"data"`
}

type encData struct {
	Conn      uint32 `json:"conn"`
	Stream    uint32 `json:"stream"`
	Seq       uint64 `json:"seq"`
	Bytes     int    `json:"bytes"`
	EnqUS     int64  `json:"enq_us,omitempty"`
	SealedUS  int64  `json:"sealed_us,omitempty"`
	WrittenUS int64  `json:"written_us,omitempty"`
	AckedUS   int64  `json:"acked_us,omitempty"`
	OrigConn  uint32 `json:"orig_conn,omitempty"`
	Retx      int    `json:"retx,omitempty"`
}

// AppendEvent appends ev as one qlog-framed NDJSON line (with trailing
// newline) to dst. The encoding round-trips through Parse: every field
// except Line survives exactly — the oracle FuzzParse leans on, and the
// writer the fleet harness uses for failing-seed artifacts.
func AppendEvent(dst []byte, ev *Event) []byte {
	b, err := json.Marshal(&encEvent{
		TimeUS:   ev.TimeUS,
		Category: ev.Category,
		Type:     ev.Type,
		Data: encData{
			Conn:      ev.Conn,
			Stream:    ev.Stream,
			Seq:       ev.Seq,
			Bytes:     ev.Bytes,
			EnqUS:     ev.EnqUS,
			SealedUS:  ev.SealedUS,
			WrittenUS: ev.WrittenUS,
			AckedUS:   ev.AckedUS,
			OrigConn:  ev.OrigConn,
			Retx:      ev.Retx,
		},
	})
	if err != nil {
		// Only unmarshalable types reach json errors; encEvent has none.
		panic("qlog: marshal event: " + err.Error())
	}
	dst = append(dst, b...)
	return append(dst, '\n')
}

// WriteTrace writes a complete parseable trace: header line, then one
// line per event.
func WriteTrace(w io.Writer, events []Event) error {
	buf := make([]byte, 0, 256)
	buf = append(buf, Header...)
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i := range events {
		buf = AppendEvent(buf[:0], &events[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
