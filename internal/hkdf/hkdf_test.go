package hkdf

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// RFC 5869 Appendix A, Test Case 1 (SHA-256).
func TestRFC5869Vector1(t *testing.T) {
	ikm := mustHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt := mustHex(t, "000102030405060708090a0b0c")
	info := mustHex(t, "f0f1f2f3f4f5f6f7f8f9")
	wantPRK := mustHex(t, "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM := mustHex(t, "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := Extract(sha256.New, ikm, salt)
	if !bytes.Equal(prk, wantPRK) {
		t.Fatalf("PRK mismatch:\n got %x\nwant %x", prk, wantPRK)
	}
	okm := Expand(sha256.New, prk, info, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM mismatch:\n got %x\nwant %x", okm, wantOKM)
	}
}

// RFC 5869 Appendix A, Test Case 2 (longer inputs/outputs).
func TestRFC5869Vector2(t *testing.T) {
	ikm := mustHex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f404142434445464748494a4b4c4d4e4f")
	salt := mustHex(t, "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9fa0a1a2a3a4a5a6a7a8a9aaabacadaeaf")
	info := mustHex(t, "b0b1b2b3b4b5b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecfd0d1d2d3d4d5d6d7d8d9dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeeff0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
	wantOKM := mustHex(t, "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71cc30c58179ec3e87c14c01d5c1f3434f1d87")

	prk := Extract(sha256.New, ikm, salt)
	okm := Expand(sha256.New, prk, info, 82)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM mismatch:\n got %x\nwant %x", okm, wantOKM)
	}
}

// RFC 5869 Appendix A, Test Case 3 (zero-length salt and info).
func TestRFC5869Vector3(t *testing.T) {
	ikm := mustHex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM := mustHex(t, "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")

	prk := Extract(sha256.New, ikm, nil)
	okm := Expand(sha256.New, prk, nil, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM mismatch:\n got %x\nwant %x", okm, wantOKM)
	}
}

// TLS 1.3 key schedule vector from RFC 8448 §3 (simple 1-RTT handshake):
// the early secret with no PSK and the derived secret feeding the
// handshake secret.
func TestRFC8448EarlySecret(t *testing.T) {
	zeros := make([]byte, 32)
	earlySecret := Extract(sha256.New, zeros, nil)
	want := mustHex(t, "33ad0a1c607ec03b09e6cd9893680ce210adf300aa1f2660e1b22e10f170f92a")
	if !bytes.Equal(earlySecret, want) {
		t.Fatalf("early secret mismatch:\n got %x\nwant %x", earlySecret, want)
	}
	// Derive-Secret(early, "derived", "") with empty transcript hash.
	emptyHash := sha256.Sum256(nil)
	derived := DeriveSecret(sha256.New, earlySecret, "derived", emptyHash[:])
	wantDerived := mustHex(t, "6f2615a108c702c5678f54fc9dbab69716c076189c48250cebeac3576c3611ba")
	if !bytes.Equal(derived, wantDerived) {
		t.Fatalf("derived secret mismatch:\n got %x\nwant %x", derived, wantDerived)
	}
}

func TestExpandLengths(t *testing.T) {
	prk := Extract(sha256.New, []byte("key"), nil)
	for _, n := range []int{0, 1, 31, 32, 33, 64, 255, 8160} {
		out := Expand(sha256.New, prk, []byte("info"), n)
		if len(out) != n {
			t.Errorf("Expand(%d) returned %d bytes", n, len(out))
		}
	}
}

func TestExpandTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for > 255*HashLen output")
		}
	}()
	Expand(sha256.New, make([]byte, 32), nil, 255*32+1)
}

func TestExpandLabelDeterministicAndDistinct(t *testing.T) {
	secret := Extract(sha256.New, []byte("secret"), nil)
	a := ExpandLabel(sha256.New, secret, "key", nil, 16)
	b := ExpandLabel(sha256.New, secret, "key", nil, 16)
	c := ExpandLabel(sha256.New, secret, "iv", nil, 16)
	if !bytes.Equal(a, b) {
		t.Error("ExpandLabel not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Error("different labels must produce different output")
	}
}

func TestQuickExpandPrefixProperty(t *testing.T) {
	// HKDF output is a stream: a shorter expansion must be a prefix of a
	// longer one with the same inputs.
	f := func(seed []byte, short, long uint8) bool {
		s, l := int(short)%64, int(long)%64
		if s > l {
			s, l = l, s
		}
		prk := Extract(sha256.New, seed, nil)
		a := Expand(sha256.New, prk, []byte("x"), s)
		b := Expand(sha256.New, prk, []byte("x"), l)
		return bytes.Equal(a, b[:s])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtractDiffersWithSalt(t *testing.T) {
	f := func(ikm []byte) bool {
		if len(ikm) == 0 {
			return true
		}
		a := Extract(sha256.New, ikm, nil)
		b := Extract(sha256.New, ikm, []byte{1})
		return !bytes.Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
