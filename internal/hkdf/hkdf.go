// Package hkdf implements HKDF (RFC 5869) together with the TLS 1.3
// HKDF-Expand-Label and Derive-Secret constructions (RFC 8446 §7.1).
//
// TCPLS derives all of its per-stream cryptographic material from the TLS
// application traffic secret, so the exact TLS 1.3 labeled-expansion wire
// format matters: it keeps our records byte-compatible with what a TLS 1.3
// middlebox expects to see negotiated.
package hkdf

import (
	"crypto/hmac"
	"fmt"
	"hash"
)

// Extract performs HKDF-Extract: PRK = HMAC-Hash(salt, ikm).
// A nil salt is replaced by a string of HashLen zero bytes, per RFC 5869.
func Extract(newHash func() hash.Hash, secret, salt []byte) []byte {
	if salt == nil {
		salt = make([]byte, newHash().Size())
	}
	mac := hmac.New(newHash, salt)
	mac.Write(secret)
	return mac.Sum(nil)
}

// Expand performs HKDF-Expand, producing length bytes of output keying
// material from prk and info.
func Expand(newHash func() hash.Hash, prk, info []byte, length int) []byte {
	hashLen := newHash().Size()
	if length > 255*hashLen {
		panic(fmt.Sprintf("hkdf: requested %d bytes, max %d", length, 255*hashLen))
	}
	var (
		out  = make([]byte, 0, length)
		prev []byte
	)
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(newHash, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// tls13LabelPrefix is prepended to every label per RFC 8446 §7.1.
const tls13LabelPrefix = "tls13 "

// ExpandLabel implements TLS 1.3 HKDF-Expand-Label:
//
//	HKDF-Expand(secret, HkdfLabel{length, "tls13 "+label, context}, length)
func ExpandLabel(newHash func() hash.Hash, secret []byte, label string, context []byte, length int) []byte {
	if len(tls13LabelPrefix)+len(label) > 255 || len(context) > 255 {
		panic("hkdf: label or context too long")
	}
	info := make([]byte, 0, 4+len(tls13LabelPrefix)+len(label)+len(context))
	info = append(info, byte(length>>8), byte(length))
	info = append(info, byte(len(tls13LabelPrefix)+len(label)))
	info = append(info, tls13LabelPrefix...)
	info = append(info, label...)
	info = append(info, byte(len(context)))
	info = append(info, context...)
	return Expand(newHash, secret, info, length)
}

// DeriveSecret implements TLS 1.3 Derive-Secret: ExpandLabel with the
// transcript hash as context and the hash length as output length.
func DeriveSecret(newHash func() hash.Hash, secret []byte, label string, transcriptHash []byte) []byte {
	return ExpandLabel(newHash, secret, label, transcriptHash, newHash().Size())
}
