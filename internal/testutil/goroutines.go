// Package testutil holds helpers shared across test packages.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines polls until the goroutine count returns near base —
// the zero-leak gate for the fault-injection and telemetry tests.
// Sessions wind their goroutines down asynchronously after Close, so
// the check tolerates a short settling window before failing with a
// full stack dump.
func CheckGoroutines(t testing.TB, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
