package fleet

import (
	"io"

	"tcpls/internal/core"
	"tcpls/internal/qlog"
	"tcpls/internal/telemetry"
)

// RunTraced re-runs sc with full protocol tracing armed on one
// session's writer engine and streams the capture to w as a qlog NDJSON
// trace — the artifact a failing campaign leaves behind for
// `tcpls-trace -check`. Campaigns are deterministic, so the re-run
// reproduces the original failure exactly; tracing only the implicated
// session keeps the artifact one-vantage (a single conn-ID namespace)
// and small.
func RunTraced(sc Scenario, session int, w io.Writer) (*Result, error) {
	sc = sc.WithDefaults()
	if session < 0 || session >= sc.Sessions {
		session = 0
	}
	res, raw := run(sc, session)
	events := make([]qlog.Event, 0, len(raw))
	for i := range raw {
		events = append(events, toQlogEvent(&raw[i]))
	}
	if err := qlog.WriteTrace(w, events); err != nil {
		return res, err
	}
	return res, nil
}

// toQlogEvent converts one engine trace event to the qlog schema the
// telemetry sink writes: virtual time (anchored at the Unix epoch)
// becomes time_us, the event name maps to its sink category.
func toQlogEvent(ev *core.TraceEvent) qlog.Event {
	out := qlog.Event{
		TimeUS:   ev.Time.UnixMicro(),
		Category: telemetry.Category(ev.Name),
		Type:     ev.Name,
		Conn:     ev.Conn,
		Stream:   ev.Stream,
		Seq:      ev.Seq,
		Bytes:    ev.Bytes,
	}
	if ev.Name == "record_span" {
		out.EnqUS = ev.EnqueuedAt.UnixMicro()
		out.SealedUS = ev.SealedAt.UnixMicro()
		out.WrittenUS = ev.WrittenAt.UnixMicro()
		out.AckedUS = ev.AckedAt.UnixMicro()
		out.OrigConn = ev.OrigConn
		out.Retx = ev.Retx
	}
	return out
}
