package fleet

// Shrink minimizes a failing scenario's fault schedule: delta debugging
// (ddmin) over the materialized schedule, replaying candidate subsets
// through Run with an explicit Schedule. Soundness rests on two campaign
// properties: runs are deterministic, and the workload derives from Seed
// independently of the schedule — so removing fault events changes
// nothing except the faults themselves.
//
// Shrink returns the minimized scenario (still failing, Schedule
// explicit), its result, and the number of trial campaigns spent. If sc
// does not fail at all, it returns sc's materialized form, the passing
// result, and 1.
func Shrink(sc Scenario) (Scenario, *Result, int) {
	sc = sc.WithDefaults()
	sc.Schedule = GenSchedule(sc)
	trials := 0
	fails := func(schedule []FaultEvent) (*Result, bool) {
		trial := sc
		trial.Schedule = schedule
		if trial.Schedule == nil {
			trial.Schedule = []FaultEvent{} // non-nil: empty means "no faults", not "generate"
		}
		trials++
		res := Run(trial)
		return res, res.Failed()
	}

	res, bad := fails(sc.Schedule)
	if !bad {
		return sc, res, trials
	}
	best := sc.Schedule
	bestRes := res

	const maxTrials = 64
	chunks := 2
	for len(best) > 1 && trials < maxTrials {
		size := (len(best) + chunks - 1) / chunks
		reduced := false
		for lo := 0; lo < len(best) && trials < maxTrials; lo += size {
			hi := lo + size
			if hi > len(best) {
				hi = len(best)
			}
			// Try the complement: schedule without best[lo:hi].
			cand := make([]FaultEvent, 0, len(best)-(hi-lo))
			cand = append(cand, best[:lo]...)
			cand = append(cand, best[hi:]...)
			if r, stillBad := fails(cand); stillBad {
				best, bestRes = cand, r
				chunks = 2
				if chunks > len(best) {
					chunks = len(best)
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if chunks >= len(best) {
				break
			}
			chunks *= 2
			if chunks > len(best) {
				chunks = len(best)
			}
		}
	}

	out := sc
	out.Schedule = best
	return out, bestRes, trials
}
