package fleet

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"tcpls/internal/qlog"
)

// Campaign knobs. -fleet.seed reruns one exact campaign — the repro
// line a failing run prints. TCPLS_FLEET_SESSIONS / TCPLS_FLEET_SEEDS
// scale CI runs without editing code; TCPLS_FLEET_QLOG_DIR keeps
// failure artifacts somewhere the CI job can upload from.
var (
	fleetSeed     = flag.Int64("fleet.seed", 0, "run the fleet campaign with exactly this seed")
	fleetSessions = flag.Int("fleet.sessions", 0, "override the fleet campaign session count")
)

func campaignSessions(t *testing.T) int {
	if *fleetSessions > 0 {
		return *fleetSessions
	}
	if v := os.Getenv("TCPLS_FLEET_SESSIONS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad TCPLS_FLEET_SESSIONS %q: %v", v, err)
		}
		return n
	}
	return 1000
}

func campaignSeeds(t *testing.T) []int64 {
	if *fleetSeed != 0 {
		return []int64{*fleetSeed}
	}
	if v := os.Getenv("TCPLS_FLEET_SEEDS"); v != "" {
		var seeds []int64
		for _, f := range strings.Split(v, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				t.Fatalf("bad TCPLS_FLEET_SEEDS %q: %v", v, err)
			}
			seeds = append(seeds, n)
		}
		return seeds
	}
	return []int64{1}
}

// artifactDir is where failing campaigns drop their qlog traces.
func artifactDir(t *testing.T) string {
	if d := os.Getenv("TCPLS_FLEET_QLOG_DIR"); d != "" {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatalf("artifact dir: %v", err)
		}
		return d
	}
	return t.TempDir()
}

// TestFleetCampaign is the headline invariant run: a full fleet under
// the default fault mix, all four invariants checked. On failure it
// emits the one-line repro, writes the implicated session's qlog
// artifact, and verifies the artifact is analyzable.
func TestFleetCampaign(t *testing.T) {
	sessions := campaignSessions(t)
	for _, seed := range campaignSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sc := Scenario{Seed: seed, Sessions: sessions}
			res := Run(sc)
			t.Logf("seed %d: %d sessions, %d faults, virtual end %v, quiesced=%v, fingerprint %s",
				seed, sessions, len(res.Scenario.Schedule), res.EndVirtual, res.Quiesced, res.Fingerprint())
			if !res.Failed() {
				return
			}
			for i, v := range res.Violations {
				if i >= 20 {
					t.Errorf("... and %d more violations", len(res.Violations)-i)
					break
				}
				t.Errorf("%s", v)
			}
			t.Errorf("repro: %s", res.ReproLine())

			// Leave a qlog artifact behind for the implicated session.
			target := res.Violations[0].Session
			if target < 0 {
				target = 0
			}
			path := filepath.Join(artifactDir(t), fmt.Sprintf("fleet-seed%d-session%d.qlog", seed, target))
			f, err := os.Create(path)
			if err != nil {
				t.Fatalf("create artifact: %v", err)
			}
			defer f.Close()
			if _, err := RunTraced(sc, target, f); err != nil {
				t.Fatalf("write artifact: %v", err)
			}
			t.Errorf("qlog artifact: %s (analyze with: go run ./cmd/tcpls-trace -check %s)", path, path)
		})
	}
}

// TestFleetSeedReproducible runs the same scenario twice and demands
// bit-identical fault schedules and invariant metrics — the determinism
// contract every repro line depends on.
func TestFleetSeedReproducible(t *testing.T) {
	sc := Scenario{Seed: 7, Sessions: 120}
	a := Run(sc)
	b := Run(sc)
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same scenario, different campaigns: %s vs %s", fa, fb)
	}
	if len(a.Scenario.Schedule) == 0 {
		t.Fatal("no faults generated")
	}
	for i := range a.Scenario.Schedule {
		if a.Scenario.Schedule[i] != b.Scenario.Schedule[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a.Scenario.Schedule[i], b.Scenario.Schedule[i])
		}
	}
	// Different seed must actually change the campaign.
	c := Run(Scenario{Seed: 8, Sessions: 120})
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds produced identical campaigns")
	}
}

// TestFleetCatchesInjectedReorderBug is the harness self-test demanded
// by the acceptance criteria: disable the reorder cap (the PR-5
// regression), confirm the memory invariant catches it, shrink the
// fault schedule to a minimal failing subset, and confirm the shrunk
// scenario still reproduces from its repro line inputs.
func TestFleetCatchesInjectedReorderBug(t *testing.T) {
	sc := Scenario{
		Seed:             21,
		Sessions:         120,
		Faults:           60,
		FaultMix:         FaultMix{Stall: 6, Blackhole: 3, RST: 1},
		InjectReorderBug: true,
	}
	res := Run(sc)
	if !res.Failed() {
		t.Fatalf("campaign with reorder cap disabled passed — harness is blind to the injected bug (fingerprint %s)", res.Fingerprint())
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == VMemReorder {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("campaign failed but not via the memory invariant; violations: %v", res.Violations)
	}
	if !strings.Contains(res.ReproLine(), "-fleet.seed=21") {
		t.Fatalf("repro line does not carry the seed: %s", res.ReproLine())
	}

	min, minRes, trials := Shrink(sc)
	t.Logf("shrunk %d-fault schedule to %d events in %d trials: %+v",
		len(res.Scenario.Schedule), len(min.Schedule), trials, min.Schedule)
	if len(min.Schedule) > 5 {
		t.Fatalf("shrinker left %d events, want <= 5", len(min.Schedule))
	}
	if !minRes.Failed() {
		t.Fatal("shrunk scenario no longer fails")
	}
	// The minimal schedule must replay deterministically too.
	again := Run(min)
	if again.Fingerprint() != minRes.Fingerprint() {
		t.Fatal("shrunk scenario is not reproducible")
	}

	// Control: the identical scenario with the cap enabled must pass —
	// the detector fires on the bug, not on the fault schedule.
	control := sc
	control.InjectReorderBug = false
	if cres := Run(control); cres.Failed() {
		t.Fatalf("control campaign (cap enabled) failed: %v", cres.Violations[0])
	}
}

// TestFleetRestartResume drives a restart-heavy campaign with two
// mid-campaign ticket-key rotations: every FaultRestart resumes the
// session's ticket against the shared key store before killing all its
// connections at once. The campaign's built-in oracle demands byte-exact
// PSK recovery inside the accept window, reissue under old generations,
// clean age-out past the window, single-use 0-RTT admission, and a
// bounded strike register — plus the usual four invariants across the
// mass restarts.
func TestFleetRestartResume(t *testing.T) {
	sc := Scenario{
		Seed:         77,
		Sessions:     96,
		Faults:       96,
		FaultMix:     FaultMix{RST: 1, Restart: 6},
		KeyRotations: 2,
	}
	res := Run(sc)
	t.Logf("resume outcomes: %+v (fingerprint %s)", res.Resume, res.Fingerprint())
	if res.Failed() {
		for i, v := range res.Violations {
			if i >= 20 {
				t.Errorf("... and %d more violations", len(res.Violations)-i)
				break
			}
			t.Errorf("%s", v)
		}
		t.Fatalf("restart/resume campaign failed; repro: %s", res.ReproLine())
	}
	r := res.Resume
	if r.Accepted == 0 {
		t.Fatal("no ticket resumed across any restart")
	}
	if r.Reissued == 0 {
		t.Fatal("no restart landed after a rotation — reissue path unexercised")
	}
	if r.ZeroRTT == 0 {
		t.Fatal("strike register admitted no first-use ticket")
	}
	if r.Replayed == 0 {
		t.Fatal("no session restarted twice on one ticket — replay refusal unexercised")
	}
	if r.ReplayPeak == 0 || r.ReplayPeak > r.ZeroRTT {
		t.Fatalf("strike register peak %d outside (0, %d]", r.ReplayPeak, r.ZeroRTT)
	}

	// The resume outcomes are part of the determinism contract.
	if again := Run(sc); again.Fingerprint() != res.Fingerprint() {
		t.Fatalf("same restart scenario, different campaigns: %s vs %s",
			res.Fingerprint(), again.Fingerprint())
	}
}

// TestFleetHealthOracle proves invariant 5 is armed, not inert: a
// stall-heavy campaign must actually raise StallSuspected on faulted
// sessions (the campaign still passes — those verdicts are correct and
// transient), every raise must land on a touched session (a spurious
// one fails the run), and the verdict counts must be part of the
// determinism contract.
func TestFleetHealthOracle(t *testing.T) {
	sc := Scenario{
		Seed:     11,
		Sessions: 120,
		Faults:   40,
		FaultMix: FaultMix{Stall: 3, Blackhole: 1},
	}
	res := Run(sc)
	if res.Failed() {
		for i, v := range res.Violations {
			if i >= 20 {
				break
			}
			t.Errorf("%s", v)
		}
		t.Fatalf("stall-heavy campaign failed; repro: %s", res.ReproLine())
	}
	stalls, total := 0, 0
	for i := range res.Sessions {
		for kind, n := range res.Sessions[i].Verdicts {
			total += n
			if kind == "stall_suspected" {
				stalls += n
			}
		}
	}
	t.Logf("health oracle: %d verdict raises (%d stall_suspected) across %d sessions",
		total, stalls, sc.Sessions)
	if stalls == 0 {
		t.Fatal("no StallSuspected raised under a stall-heavy fault mix — the health oracle is blind")
	}
	// Verdict raises ride the fingerprint: same scenario, same diagnosis.
	if again := Run(sc); again.Fingerprint() != res.Fingerprint() {
		t.Fatalf("same scenario, different diagnoses: %s vs %s",
			res.Fingerprint(), again.Fingerprint())
	}
}

// TestFleetArtifactAnalyzable checks the failure-artifact path end to
// end: RunTraced produces a qlog NDJSON trace that internal/qlog (the
// engine behind tcpls-trace -check) parses and analyzes cleanly.
func TestFleetArtifactAnalyzable(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTraced(Scenario{Seed: 3, Sessions: 24}, 0, &buf)
	if err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	if res == nil || buf.Len() == 0 {
		t.Fatal("no artifact produced")
	}
	events, err := qlog.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("artifact has no events")
	}
	rep := qlog.Analyze(events, qlog.Options{})
	if rep == nil {
		t.Fatal("analyzer returned nothing")
	}
	sent := 0
	for _, ev := range events {
		if ev.Type == "record_sent" {
			sent++
		}
	}
	if sent == 0 {
		t.Fatal("artifact carries no record_sent events — wrong endpoint captured?")
	}
}
