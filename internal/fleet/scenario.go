// Package fleet is the campaign engine behind the repo's fleet-scale
// robustness story: it drives thousands of concurrent TCPLS sessions —
// real protocol engines (internal/core) over simulated TCP
// (internal/simtcp) over the DES (internal/sim) — through randomized
// but seed-reproducible fault schedules, then asserts five fleet-wide
// invariants:
//
//  1. byte-exactness: every stream delivers exactly the bytes written;
//  2. bounded memory: reorder and retransmit peaks stay under budgets
//     derived from the PR-5 caps;
//  3. zero goroutine leaks: the whole fleet runs on the caller's
//     goroutine, and nothing may outlive the campaign;
//  4. telemetry count-closure: per connection, records sent equals
//     records delivered (received + dup-dropped + ctl) plus records
//     attributably dropped with a failed connection — no silent loss;
//  5. diagnosis fidelity: internal/health monitors run over every
//     endpoint on the virtual clock and may never raise a verdict on a
//     session no fault touched (spurious diagnosis) nor leave one
//     active after the fleet drains and cools down (stuck diagnosis).
//
// A failing seed is a complete bug report: Result.ReproLine() is a
// one-line `go test` invocation, RunTraced writes a qlog artifact
// `tcpls-trace -check` can analyze, and Shrink bisects the fault
// schedule to a minimal failing subset. Determinism is load-bearing:
// the same Scenario produces the identical fault schedule, packet
// schedule, and invariant metrics every run (see Result.Fingerprint).
package fleet

import (
	"math/rand"
	"sort"
	"time"

	"tcpls/internal/sim"
)

// FaultKind enumerates the fault vocabulary, ported from the
// netem/middlebox relay primitives onto the DES virtual clock.
type FaultKind int

const (
	// FaultRST resets the target session's lowest live connection — the
	// middlebox-injected RST of Sec. 5.5.
	FaultRST FaultKind = iota + 1
	// FaultBlackhole takes the target path down in both directions for
	// Dur (the Sec. 5.3 outage: packets vanish, no error signal).
	FaultBlackhole
	// FaultStall kills only the data-carrying direction of the target
	// path for Dur: ACKs keep flowing, bytes stop — detectable only by
	// the user timeout, and the fault that grows reorder heaps.
	FaultStall
	// FaultDegrade drops the data direction's line rate to 1/8 for Dur —
	// asymmetric-path degradation.
	FaultDegrade
	// FaultRSTStorm resets one connection on every Stride-th session
	// starting at Session — the correlated burst a middlebox reboot or
	// conntrack flush produces.
	FaultRSTStorm
	// FaultRackOutage blackholes every path attached to Rack for Dur —
	// the top-of-rack switch dying under a whole group of sessions.
	FaultRackOutage
	// FaultRestart is a server-process restart under the target session:
	// every live connection dies at once, and the session's resumption
	// ticket is opened against the campaign's shared key store first —
	// the store the "restarted process" recovered from its key file. The
	// campaign verifies the recovered PSK byte-exact, honors
	// reissue-on-rotation, runs the 0-RTT strike register, and treats an
	// aged-out ticket as a clean full-handshake fallback.
	FaultRestart
)

func (k FaultKind) String() string {
	switch k {
	case FaultRST:
		return "rst"
	case FaultBlackhole:
		return "blackhole"
	case FaultStall:
		return "stall"
	case FaultDegrade:
		return "degrade"
	case FaultRSTStorm:
		return "rst_storm"
	case FaultRackOutage:
		return "rack_outage"
	case FaultRestart:
		return "restart"
	default:
		return "fault(?)"
	}
}

// FaultEvent is one scheduled fault. Which fields matter depends on
// Kind: Session/Path target single-session faults, Rack targets
// correlated outages, Stride spaces storm victims, Dur bounds restoring
// faults.
type FaultEvent struct {
	At      sim.Time
	Kind    FaultKind
	Session int
	Path    int
	Rack    int
	Stride  int
	Dur     sim.Time
}

// FaultMix weights the fault kinds in a generated schedule. Zero-value
// mixes get DefaultFaultMix.
type FaultMix struct {
	RST, Blackhole, Stall, Degrade, RSTStorm, RackOutage, Restart int
}

// DefaultFaultMix skews toward the single-session faults the paper's
// experiments use, with a steady minority of correlated ones.
var DefaultFaultMix = FaultMix{RST: 4, Blackhole: 3, Stall: 3, Degrade: 2, RSTStorm: 1, RackOutage: 1}

func (m FaultMix) total() int {
	return m.RST + m.Blackhole + m.Stall + m.Degrade + m.RSTStorm + m.RackOutage + m.Restart
}

// Scenario specifies one campaign. The zero value of every field except
// Seed/Sessions gets a sensible default (see WithDefaults).
type Scenario struct {
	// Seed determines everything: workload shapes, fault schedule,
	// timings. Same seed, same campaign, same metrics.
	Seed int64
	// Sessions is the fleet size.
	Sessions int
	// Duration is the fault-injection window; transfers start inside it
	// and the campaign runs past it until the fleet quiesces.
	Duration sim.Time
	// FaultMix weights the generated schedule's fault kinds.
	FaultMix FaultMix
	// Faults is the number of fault events to generate
	// (default max(8, Sessions/8)).
	Faults int
	// PathsPerSession is the multipath width (default 2).
	PathsPerSession int
	// Racks is the number of correlated failure domains sessions are
	// striped across (default 8).
	Racks int
	// TransferBytes is the per-session payload for plain-stream
	// sessions (default 64 KiB); coupled sessions move coupledMultiplier
	// times as much to exercise the aggregation reorder heap.
	TransferBytes int
	// InjectReorderBug disables the PR-5 buffer caps (reorder heap and
	// retransmit budget) — the intentional regression the harness must
	// catch via its memory invariant (the self-test of the acceptance
	// criteria).
	InjectReorderBug bool
	// KeyRotations schedules this many evenly spaced ticket-key
	// rotations inside Duration, so FaultRestart resumptions land
	// against current, previous, and aged-out key generations. Zero
	// rotates never; the key store is still created (and tickets
	// sealed) whenever the schedule contains a restart fault.
	KeyRotations int
	// Schedule, when non-nil, overrides generation entirely (the
	// shrinker replays subsets through this). The workload side still
	// derives from Seed.
	Schedule []FaultEvent
}

// Campaign-wide protocol constants. Deliberately fixed rather than
// knobs: the invariant budgets below are calibrated against them.
const (
	linkRateBps = 16_000_000 // 2 MB/s per path direction
	linkDelay   = time.Millisecond
	// linkQueue bounds each link's drop-tail queue. Kept small on
	// purpose: the queue is exactly how many bytes a restored path can
	// dump into the reorder heap before the gap-filling replay lands, so
	// it sets the legitimate overshoot above reorderCap. 32 KiB keeps
	// that overshoot well under reorderBudget while the cap-disabled bug
	// blows through it.
	linkQueue = 32 << 10
	// userTimeout is also what separates the memory-invariant regimes:
	// the cap-disabled runaway (InjectReorderBug) grows the reorder heap
	// at ~half the writer rate for one full user timeout before failover
	// fills the gap — ~200 KB at this setting, far over reorderBudget —
	// while the legitimate peak is bounded by the caps regardless of how
	// long a connection takes to die.
	userTimeout = time.Second
	pumpEvery   = 10 * time.Millisecond // writer cadence: 4 KiB / 10 ms = 400 KB/s
	chunkBytes  = 4096
	maxPayload  = 4096 // one record per chunk
	reorderCap  = 16 << 10
	reorderRecs = 64
	// retransmitCap is the per-stream retransmit budget, and it is what
	// makes the memory invariant provable rather than empirical: a
	// coupled stream is pinned to its connection, so no connection can
	// ever hold more than retransmitCap unacknowledged bytes — which is
	// exactly the most a surviving connection can dump into the peer's
	// reorder heap behind a gap (correlated outages queue the
	// gap-filling replay behind that same backlog, where the reorder
	// cap's suspect-failover cannot shortcut it).
	retransmitCap = 96 << 10

	// reorderBudget is invariant #2's bound on the coupled reorder
	// heap's byte peak. With the caps enabled the heap is hard-bounded
	// by retransmitCap + reorderCap + one record (~116 KiB): parked
	// records were unacknowledged at send time, so one connection's
	// backlog cannot exceed its stream's retransmit budget. With the
	// caps disabled (InjectReorderBug), nothing parks the writer during
	// a stall and the live path's deliveries pile up for a full user
	// timeout — writer_rate/2 x UserTimeout and beyond, empirically
	// 190-270 KiB. 128 KiB separates the regimes: above the hard bound,
	// well below the runaway.
	reorderBudget = 128 << 10
	// coupledMultiplier scales coupled sessions' transfers relative to
	// plain ones: the transfer must comfortably exceed reorderBudget for
	// the cap-disabled runaway to be visible (see reorderBudget).
	coupledMultiplier = 6
	// retransmitBudget bounds the per-engine retransmit-buffer peak: two
	// coupled streams at retransmitCap each, plus seal-in-progress slop.
	// Exceeding it means the per-stream budget enforcement broke.
	retransmitBudget = 2*retransmitCap + (32 << 10)
)

// WithDefaults resolves zero-valued knobs.
func (sc Scenario) WithDefaults() Scenario {
	if sc.Sessions <= 0 {
		sc.Sessions = 1000
	}
	if sc.Duration <= 0 {
		sc.Duration = 900 * time.Millisecond
	}
	if sc.FaultMix.total() == 0 {
		sc.FaultMix = DefaultFaultMix
	}
	if sc.Faults <= 0 {
		sc.Faults = sc.Sessions / 8
		if sc.Faults < 8 {
			sc.Faults = 8
		}
	}
	if sc.PathsPerSession <= 0 {
		sc.PathsPerSession = 2
	}
	if sc.Racks <= 0 {
		sc.Racks = 8
		if sc.Racks > sc.Sessions {
			sc.Racks = sc.Sessions
		}
	}
	if sc.TransferBytes <= 0 {
		sc.TransferBytes = 64 << 10
	}
	return sc
}

// GenSchedule materializes the fault schedule for sc: an explicit
// Schedule is returned as-is (sorted), otherwise one is generated from
// Seed. The generator draws from its own rand stream — workload shaping
// uses per-session streams derived separately — so replaying a shrunk
// explicit schedule leaves the workload byte-identical.
func GenSchedule(sc Scenario) []FaultEvent {
	sc = sc.WithDefaults()
	if sc.Schedule != nil {
		out := append([]FaultEvent(nil), sc.Schedule...)
		sortSchedule(out)
		return out
	}
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x5DEECE66D))
	mix := sc.FaultMix
	total := mix.total()
	window := int64(sc.Duration - 50*time.Millisecond)
	if window <= 0 {
		window = int64(sc.Duration)
	}
	out := make([]FaultEvent, 0, sc.Faults)
	for i := 0; i < sc.Faults; i++ {
		ev := FaultEvent{
			At:      50*time.Millisecond + sim.Time(rng.Int63n(window)),
			Session: rng.Intn(sc.Sessions),
			Path:    rng.Intn(sc.PathsPerSession),
			Rack:    rng.Intn(sc.Racks),
		}
		switch pick := rng.Intn(total); {
		case pick < mix.RST:
			ev.Kind = FaultRST
		case pick < mix.RST+mix.Blackhole:
			ev.Kind = FaultBlackhole
			ev.Dur = 150*time.Millisecond + sim.Time(rng.Int63n(int64(350*time.Millisecond)))
		case pick < mix.RST+mix.Blackhole+mix.Stall:
			ev.Kind = FaultStall
			// Long enough that only the user timeout resolves it.
			ev.Dur = userTimeout + 100*time.Millisecond + sim.Time(rng.Int63n(int64(400*time.Millisecond)))
		case pick < mix.RST+mix.Blackhole+mix.Stall+mix.Degrade:
			ev.Kind = FaultDegrade
			ev.Dur = 200*time.Millisecond + sim.Time(rng.Int63n(int64(400*time.Millisecond)))
		case pick < mix.RST+mix.Blackhole+mix.Stall+mix.Degrade+mix.RSTStorm:
			ev.Kind = FaultRSTStorm
			ev.Stride = 2 + rng.Intn(6)
		case pick < mix.RST+mix.Blackhole+mix.Stall+mix.Degrade+mix.RSTStorm+mix.Restart:
			ev.Kind = FaultRestart
		default:
			ev.Kind = FaultRackOutage
			ev.Dur = 150*time.Millisecond + sim.Time(rng.Int63n(int64(250*time.Millisecond)))
		}
		out = append(out, ev)
	}
	sortSchedule(out)
	return out
}

// sortSchedule orders events by time, stably, so generation order
// breaks ties deterministically.
func sortSchedule(evs []FaultEvent) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}

// sessionRand derives session i's private rand stream from the scenario
// seed: a splitmix64 step keeps neighboring sessions decorrelated
// without any shared sequential draw (which would couple workload
// shapes to fleet size).
func sessionRand(seed int64, i int) *rand.Rand {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return rand.New(rand.NewSource(int64(z ^ (z >> 31))))
}
