package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/health"
	"tcpls/internal/resume"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
	"tcpls/internal/simtcpls"
)

// epoch anchors virtual time onto the wall-clock type the engine uses
// (the same anchor simtcpls uses internally).
var epoch = time.Unix(0, 0)

// Violation is one invariant breach found at campaign snapshot time.
type Violation struct {
	Session int // -1 for campaign-wide violations
	Kind    string
	Detail  string
}

func (v Violation) String() string {
	return fmt.Sprintf("session %d: %s: %s", v.Session, v.Kind, v.Detail)
}

// Violation kinds.
const (
	VByteExact  = "byte-exact"
	VStuck      = "stuck"
	VMemReorder = "memory-reorder"
	VMemRetx    = "memory-retransmit"
	VGoroutine  = "goroutine-leak"
	VClosure    = "count-closure"
	VWriteError = "write-error"
	VResume     = "resume"
	VMemReplay  = "memory-replay"
	VHealth     = "health"
)

// Health-oracle constants: the self-diagnosis monitors (internal/health)
// run fleet-wide on a fast virtual tick — campaigns last seconds, not
// minutes, so the production 1s cadence would never accumulate enough
// ticks to trip a rule. At 100ms, a generated stall (userTimeout+100ms
// minimum) spans the 3-tick raise threshold with room to spare, and the
// post-quiesce cooldown gives every rule's clear hysteresis time to run
// before the active-verdict check.
const (
	healthTick     = 100 * time.Millisecond
	healthWindow   = 16 // ring ticks; evidence windows need at most 10
	healthCooldown = 2 * time.Second
)

// flowCount is one connection's record counters at one endpoint,
// reconstructed from the engine's trace stream (not its Stats): the
// count-closure invariant deliberately uses the observability channel a
// production operator would, and cross-checks it against Stats.
type flowCount struct {
	Sent uint64 // record_sent + ctl_sent + retransmit
	Recv uint64 // record_received + dup_dropped + ctl_received
}

// SessionResult is one session's deterministic outcome metrics.
type SessionResult struct {
	Index        int
	Coupled      bool
	Up           bool // true: client writes, server reads
	Total        int  // bytes the writer must move
	Written      int
	Got          int
	MismatchAt   int64 // first wrong delivered byte offset, -1 if none
	Quiesced     bool
	DoneAtUS     int64 // virtual µs when the last byte was delivered
	ConnFailures int   // client-observed EventConnFailed count
	ReorderPeak  [2]int
	RetxPeak     [2]int
	Flows        [2]map[uint32]flowCount // per-conn counters: [client, server]
	WriteErr     string
	// Verdicts counts health-verdict raises on this session by kind name
	// (both endpoint monitors merged) — part of the determinism contract.
	Verdicts map[string]int
}

// ResumeStats are the campaign-wide resumption outcomes of FaultRestart
// events. Every field is deterministic: accept/reissue/age-out depends
// only on generation arithmetic against the rotation schedule, and the
// strike register runs on the virtual clock.
type ResumeStats struct {
	Accepted   int // tickets opened successfully on restart
	Reissued   int // of those, resealed because an old generation opened them
	AgedOut    int // tickets past the accept window: clean full-handshake fallback
	ZeroRTT    int // first-use tickets the strike register admitted for 0-RTT
	Replayed   int // repeat-use tickets the register refused (1-RTT fallback)
	ReplayPeak int // max strike-register entries observed (bounded-memory invariant)
}

// Result is a completed campaign.
type Result struct {
	Scenario   Scenario // Schedule materialized
	Sessions   []SessionResult
	Violations []Violation
	Resume     ResumeStats
	Quiesced   bool     // the whole fleet drained before the hard cap
	EndVirtual sim.Time // virtual time at snapshot
	Goroutines [2]int   // before / after
}

// Failed reports whether any invariant broke.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// ReproLine is the one-line reproduction command for this campaign.
func (r *Result) ReproLine() string {
	return fmt.Sprintf("go test -run TestFleetCampaign -fleet.seed=%d -fleet.sessions=%d ./internal/fleet",
		r.Scenario.Seed, r.Scenario.Sessions)
}

// Fingerprint hashes the fault schedule and every deterministic
// per-session metric. Two runs of the same Scenario must produce equal
// fingerprints; the seed-reproducibility test enforces exactly that.
// Wall-clock-dependent values (goroutine counts) are excluded.
func (r *Result) Fingerprint() string {
	h := sha256.New()
	w := func(format string, args ...interface{}) { fmt.Fprintf(h, format, args...) }
	w("seed=%d sessions=%d quiesced=%v end=%d\n", r.Scenario.Seed, r.Scenario.Sessions, r.Quiesced, r.EndVirtual)
	for _, ev := range r.Scenario.Schedule {
		w("fault %d %d %d %d %d %d %d\n", ev.At, ev.Kind, ev.Session, ev.Path, ev.Rack, ev.Stride, ev.Dur)
	}
	w("resume acc=%d re=%d aged=%d 0rtt=%d replay=%d peak=%d\n",
		r.Resume.Accepted, r.Resume.Reissued, r.Resume.AgedOut,
		r.Resume.ZeroRTT, r.Resume.Replayed, r.Resume.ReplayPeak)
	for i := range r.Sessions {
		sr := &r.Sessions[i]
		w("s%d c=%v u=%v tot=%d wr=%d got=%d mm=%d q=%v done=%d cf=%d rp=%d,%d xp=%d,%d we=%q\n",
			sr.Index, sr.Coupled, sr.Up, sr.Total, sr.Written, sr.Got, sr.MismatchAt,
			sr.Quiesced, sr.DoneAtUS, sr.ConnFailures,
			sr.ReorderPeak[0], sr.ReorderPeak[1], sr.RetxPeak[0], sr.RetxPeak[1], sr.WriteErr)
		for side := 0; side < 2; side++ {
			ids := make([]uint32, 0, len(sr.Flows[side]))
			for id := range sr.Flows[side] {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			for _, id := range ids {
				fl := sr.Flows[side][id]
				w("  f%d/%d sent=%d recv=%d\n", side, id, fl.Sent, fl.Recv)
			}
		}
		if len(sr.Verdicts) > 0 {
			kinds := make([]string, 0, len(sr.Verdicts))
			for k := range sr.Verdicts {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			for _, k := range kinds {
				w("  h %s=%d\n", k, sr.Verdicts[k])
			}
		}
	}
	for _, v := range r.Violations {
		w("v %d %s %s\n", v.Session, v.Kind, v.Detail)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// slot tracks one path's connection lifecycle within a session.
type slot struct {
	path     *sim.Path
	pathIdx  int
	connID   uint32
	live     bool
	pending  bool // TryPath in flight
	attempts int
}

// fleetSession is one TCPLS session under campaign control: a
// client/server endpoint pair, its paths, the path keeper that rejoins
// after failures, the paced writer, and the inline delivery verifier.
type fleetSession struct {
	idx     int
	c       *campaign
	coupled bool
	up      bool

	cl, sv *simtcpls.Endpoint
	paths  []*sim.Path
	slots  []*slot

	nextConn uint32
	streams  []uint32 // writer-created data streams (same IDs both sides)

	total      int
	written    int
	got        int
	mismatchAt int64
	salt       uint32
	pumpGap    sim.Time
	pumping    bool
	finished   bool // writer sent its FINs
	quiesced   bool
	doneAt     sim.Time

	connFailures int
	writeErr     string

	// Resumption state for FaultRestart: the session's PSK, its current
	// sealed ticket, and the key generation the ticket was sealed under
	// (the oracle for expected open/age-out outcomes).
	psk       []byte
	ticket    []byte
	ticketGen uint32

	counts [2]map[uint32]*flowCount
}

func (fs *fleetSession) writerEP() *simtcpls.Endpoint {
	if fs.up {
		return fs.cl
	}
	return fs.sv
}

func (fs *fleetSession) readerEP() *simtcpls.Endpoint {
	if fs.up {
		return fs.sv
	}
	return fs.cl
}

// patternByte is the deterministic payload at absolute offset off: the
// verifier recomputes it on delivery, so byte-exactness needs no
// reference copy of the transfer in memory.
func (fs *fleetSession) patternByte(off int) byte {
	return byte((uint32(off)*2654435761)>>24) ^ byte(fs.salt)
}

// campaign is one Run in progress.
type campaign struct {
	sc       Scenario
	s        *sim.Sim
	topo     *sim.Topology
	sessions []*fleetSession
	schedule []FaultEvent

	// Resumption exercise (FaultRestart): the shared ticket-key store a
	// restarted process would recover from its key file, the 0-RTT
	// strike register, and the deterministic outcome counters. keys is
	// nil when the schedule has no restarts and no rotations are asked.
	keys       *resume.KeyStore
	replay     *resume.Replay
	resume     ResumeStats
	resumeVios []Violation

	// Health oracle (invariant 5): two self-diagnosis monitors per
	// session (one per endpoint), polled from the virtual clock. touched
	// marks sessions any fault ever perturbed — a verdict raised on an
	// untouched session is a spurious diagnosis and fails the campaign.
	healthMons   []*health.Monitor
	touched      []bool
	healthRaised []map[string]int
	healthVios   []Violation

	// traceCount monotonically counts engine trace events fleet-wide;
	// the quiesce detector polls it for "no protocol activity".
	traceCount int64

	// traceSession >= 0 arms raw trace capture of that session's writer
	// engine (for qlog artifact generation).
	traceSession int
	traceBuf     []core.TraceEvent
}

// Run executes one campaign and checks all five invariants.
func Run(sc Scenario) *Result {
	res, _ := run(sc, -1)
	return res
}

// run executes the campaign; traceSession >= 0 additionally captures
// that session's writer-engine trace (returned raw for the artifact
// writer).
func run(sc Scenario, traceSession int) (*Result, []core.TraceEvent) {
	sc = sc.WithDefaults()
	goroutinesStart := runtime.NumGoroutine()

	c := &campaign{
		sc:           sc,
		s:            sim.New(),
		traceSession: traceSession,
	}
	c.topo = sim.NewTopology(c.s)
	c.schedule = GenSchedule(sc)
	sc.Schedule = c.schedule

	// Resumption exercise: stand up the shared key store and strike
	// register when the campaign restarts anything (or rotates keys),
	// and schedule the mid-campaign rotations before any fault fires.
	wantResume := sc.KeyRotations > 0
	for _, ev := range c.schedule {
		if ev.Kind == FaultRestart {
			wantResume = true
			break
		}
	}
	if wantResume {
		ks, err := resume.NewMemory()
		if err != nil {
			c.resumeVios = append(c.resumeVios, Violation{
				Session: -1, Kind: VResume, Detail: fmt.Sprintf("key store init: %v", err),
			})
		} else {
			c.keys = ks
			c.replay = resume.NewReplay(0, 0, epoch)
			for k := 1; k <= sc.KeyRotations; k++ {
				at := sc.Duration * sim.Time(k) / sim.Time(sc.KeyRotations+1)
				c.s.At(at, func() {
					if err := c.keys.Rotate(); err != nil {
						c.resumeVios = append(c.resumeVios, Violation{
							Session: -1, Kind: VResume, Detail: fmt.Sprintf("rotate: %v", err),
						})
					}
				})
			}
		}
	}

	c.touched = make([]bool, sc.Sessions)
	c.healthRaised = make([]map[string]int, sc.Sessions)
	for i := 0; i < sc.Sessions; i++ {
		c.sessions = append(c.sessions, c.buildSession(i))
	}
	for _, ev := range c.schedule {
		ev := ev
		c.s.At(ev.At, func() { c.applyFault(ev) })
	}

	// Invariant 5: the health oracle. Every monitor polls on the same
	// self-rescheduling virtual tick — fully deterministic, no Engine
	// goroutine — and keeps ticking through the post-quiesce cooldown so
	// clear hysteresis can run.
	var pollHealth func()
	pollHealth = func() {
		now := epoch.Add(c.s.Now())
		for _, m := range c.healthMons {
			m.Poll(now)
		}
		c.s.After(healthTick, pollHealth)
	}
	c.s.After(healthTick, pollHealth)

	// Drive the fleet until it drains. The endpoint keepalive ticks never
	// let the event queue empty, so completion is detected, not awaited:
	// every session quiesced, no trace activity for two consecutive
	// probes, and no TCP bytes in flight or buffered on live connections
	// (a restored blackhole can hold a retransmission in RTO backoff well
	// past the last trace event; snapshotting before it lands would turn
	// an in-flight record into a phantom closure violation).
	const step = 100 * time.Millisecond
	hardCap := sc.Duration + 12*time.Second
	quiesced := false
	var lastCount int64 = -1
	stable := 0
	for t := step; t <= hardCap; t += step {
		c.s.RunUntil(t)
		if !c.allQuiesced() {
			stable, lastCount = 0, -1
			continue
		}
		if c.traceCount == lastCount && c.netIdle() {
			stable++
			if stable >= 2 {
				quiesced = true
				break
			}
		} else {
			lastCount, stable = c.traceCount, 0
		}
	}

	// Post-quiesce cooldown: keep the virtual clock (and the health
	// ticks riding it) running long enough for every raised verdict's
	// clear hysteresis to observe the drained fleet. A verdict still
	// active after this window is non-transient — invariant 5 fails.
	if quiesced {
		c.s.RunUntil(c.s.Now() + healthCooldown)
	}

	res := &Result{
		Scenario:   sc,
		Quiesced:   quiesced,
		EndVirtual: c.s.Now(),
	}
	c.snapshot(res)

	// Invariant 3: zero goroutine leaks. The whole fleet runs on this
	// goroutine; anything extant beyond the starting count escaped.
	end := runtime.NumGoroutine()
	for i := 0; i < 20 && end > goroutinesStart; i++ {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
		end = runtime.NumGoroutine()
	}
	res.Goroutines = [2]int{goroutinesStart, end}
	if end > goroutinesStart {
		res.Violations = append(res.Violations, Violation{
			Session: -1, Kind: VGoroutine,
			Detail: fmt.Sprintf("%d goroutines before campaign, %d after", goroutinesStart, end),
		})
	}
	return res, c.traceBuf
}

// buildSession constructs session i: endpoints, paths, keeper, writer.
func (c *campaign) buildSession(i int) *fleetSession {
	rng := sessionRand(c.sc.Seed, i)
	fs := &fleetSession{
		idx:        i,
		c:          c,
		coupled:    i%3 == 0,
		up:         i%2 == 0,
		mismatchAt: -1,
		salt:       uint32(rng.Intn(256)),
		pumpGap:    pumpEvery - 2*time.Millisecond + sim.Time(rng.Int63n(int64(4*time.Millisecond))),
		counts:     [2]map[uint32]*flowCount{{}, {}},
	}
	fs.total = c.sc.TransferBytes
	if fs.coupled {
		fs.total *= coupledMultiplier
	}

	cfg := core.Config{
		EnableFailover:     true,
		AckPeriod:          4,
		UserTimeout:        userTimeout,
		MaxRecordPayload:   maxPayload,
		MaxReorderBytes:    reorderCap,
		MaxReorderRecords:  reorderRecs,
		MaxRetransmitBytes: retransmitCap,
	}
	if c.sc.InjectReorderBug {
		cfg.MaxReorderBytes = -1
		cfg.MaxReorderRecords = -1
		cfg.MaxRetransmitBytes = -1
	}
	fs.cl, fs.sv = simtcpls.Pair(c.s, cfg)
	clock := func() time.Time { return epoch.Add(c.s.Now()) }
	fs.cl.Sess.SetClock(clock)
	fs.sv.Sess.SetClock(clock)
	// Failover policy: both endpoints resynchronize automatically (the
	// fig8/fig9 configuration). The server must too — for server-pushed
	// streams whose very first records died with their connection, the
	// client never learned the stream exists, so the client-driven ATTACH
	// the server would otherwise park for never comes (a wedge this
	// harness found). Both sides pick the lowest live connection, so
	// their re-homes converge on the same target.
	fs.cl.AutoFailover = true
	fs.sv.AutoFailover = true
	fs.cl.OnEvent = func(ev core.Event) {
		if ev.Kind == core.EventConnFailed {
			fs.connFailures++
			fs.onConnFailed(ev.Conn)
		}
	}
	fs.sv.OnEvent = func(ev core.Event) {
		switch ev.Kind {
		case core.EventConnFailed:
			if fs.sv.Sess.NotifyConnFailed(ev.Conn) == nil {
				fs.sv.Flush()
			}
		case core.EventStreamOpen:
			if fs.coupled && fs.up {
				fs.sv.Sess.SetCoupled(ev.Stream, true)
			}
		}
	}
	if !fs.up {
		// Down-direction sessions: the client is the reader; fold the
		// coupled-marking into its handler too.
		onFailed := fs.cl.OnEvent
		fs.cl.OnEvent = func(ev core.Event) {
			onFailed(ev)
			if ev.Kind == core.EventStreamOpen && fs.coupled {
				fs.cl.Sess.SetCoupled(ev.Stream, true)
			}
		}
	}

	c.installCounters(fs)
	c.installHealth(fs)

	// Zero-copy delivery with inline verification: invariant 1 holds no
	// transfer-sized buffers, so invariant 2's memory story extends to
	// the harness itself.
	rsess := fs.readerEP().Sess
	deliver := func(p []byte) { fs.onDeliver(p) }
	rsess.DeliverData = func(streamID uint32, p []byte) { deliver(p) }
	rsess.DeliverCoupled = deliver

	for p := 0; p < c.sc.PathsPerSession; p++ {
		path := sim.NewPath(c.s, linkRateBps, linkDelay)
		path.AtoB.QueueBytes = linkQueue
		path.BtoA.QueueBytes = linkQueue
		c.topo.Attach(i%c.sc.Racks, path)
		fs.paths = append(fs.paths, path)
		fs.slots = append(fs.slots, &slot{path: path, pathIdx: p})
	}

	if c.keys != nil {
		// Session i's resumption identity. Derived outside the session
		// rng so enabling the resume exercise never perturbs workload
		// shapes or timings.
		fs.psk = sessionPSK(c.sc.Seed, i)
		fs.sealTicket()
	}

	startAt := sim.Time(rng.Int63n(int64(100 * time.Millisecond)))
	c.s.At(startAt, func() {
		for _, sl := range fs.slots {
			fs.connectSlot(sl)
		}
	})
	return fs
}

// installCounters taps both engines' trace streams for the closure
// counters (and the artifact capture when armed).
func (c *campaign) installCounters(fs *fleetSession) {
	tap := func(side int, capture bool) func(core.TraceEvent) {
		return func(ev core.TraceEvent) {
			c.traceCount++
			fl := fs.counts[side][ev.Conn]
			if fl == nil {
				fl = &flowCount{}
				fs.counts[side][ev.Conn] = fl
			}
			switch ev.Name {
			case "record_sent", "ctl_sent", "retransmit":
				fl.Sent++
			case "record_received", "dup_dropped", "ctl_received":
				fl.Recv++
			}
			if capture {
				c.traceBuf = append(c.traceBuf, ev)
			}
		}
	}
	capture := c.traceSession == fs.idx
	fs.cl.Sess.SetTracer(tap(0, capture && fs.up))
	fs.sv.Sess.SetTracer(tap(1, capture && !fs.up))
}

// fleetHealthSource adapts one endpoint's core engine to the health
// sampler. The campaign is single-goroutine on the DES, so the engine
// needs no locking; the snapshot buffers are reused across polls.
type fleetHealthSource struct {
	sess  *core.Session
	hs    core.HealthStats
	conns []core.ConnHealth
}

func (f *fleetHealthSource) HealthSample(s *health.Sample) {
	f.conns = f.sess.HealthSnapshot(&f.hs, f.conns[:0])
	st := f.hs.Stats
	s.BytesSent = st.BytesSent
	s.BytesReceived = st.BytesReceived
	s.RecordsSent = st.RecordsSent
	s.RecordsReceived = st.RecordsReceived
	s.AcksReceived = st.AcksReceived
	s.Retransmits = st.Retransmits
	s.OutstandingBytes = f.hs.OutstandingBytes
	s.MemoryBytes = f.hs.BufferedBytes
	s.ReorderDepth = f.hs.ReorderDepth
	s.ConnsLive = f.hs.ConnsLive
	s.StreamsOpen = f.hs.StreamsOpen
	for i := range f.conns {
		ch := &f.conns[i]
		s.Paths = append(s.Paths, health.PathSample{
			Conn:          ch.ID,
			Failed:        ch.Failed,
			BytesSent:     ch.BytesSent,
			BytesReceived: ch.BytesReceived,
			Retransmits:   ch.Retransmits,
			SRTTUS:        ch.SRTTUS,
			DeliveryRate:  ch.DeliveryRate,
		})
	}
}

// installHealth attaches the session's two diagnosis monitors and the
// spurious-verdict detector. A raise on a session no fault ever touched
// is recorded as a violation the moment it happens (the fault may land
// later — by then the diagnosis was already wrong).
func (c *campaign) installHealth(fs *fleetSession) {
	c.healthRaised[fs.idx] = map[string]int{}
	mk := func(side string, sess *core.Session) *health.Monitor {
		return health.NewMonitor(&fleetHealthSource{sess: sess}, health.Options{
			Key:      fmt.Sprintf("s%d/%s", fs.idx, side),
			Interval: healthTick,
			Window:   healthWindow,
			OnVerdict: func(v health.Verdict) {
				if !v.Raised || v.Kind == health.Healthy {
					return
				}
				c.healthRaised[fs.idx][v.Name]++
				if !c.touched[fs.idx] {
					c.healthVios = append(c.healthVios, Violation{
						Session: fs.idx, Kind: VHealth,
						Detail: fmt.Sprintf("spurious %s on %s at virtual %v: %s (no fault ever touched this session)",
							v.Name, v.Key, time.Duration(v.AtUS)*time.Microsecond, v.Detail),
					})
				}
			},
		})
	}
	c.healthMons = append(c.healthMons, mk("client", fs.cl.Sess), mk("server", fs.sv.Sess))
}

// connectSlot launches a (re)join attempt on the slot's path. The client
// always initiates — as in production, where only the client holds join
// cookies.
func (fs *fleetSession) connectSlot(sl *slot) {
	if sl.pending || sl.live || fs.quiesced || fs.nextConn > 60 {
		return
	}
	sl.pending = true
	id := fs.nextConn
	fs.nextConn++
	fs.cl.TryPath(sl.path, id, simtcp.Options{}, func() {
		sl.pending = false
		sl.live = true
		sl.connID = id
		sl.attempts = 0
		fs.onSlotReady(id)
	}, func() {
		sl.pending = false
		fs.retrySlot(sl)
	})
}

// retrySlot backs off and tries the slot's path again.
func (fs *fleetSession) retrySlot(sl *slot) {
	backoff := sim.Time(100*time.Millisecond) << uint(sl.attempts)
	if backoff > 800*time.Millisecond {
		backoff = 800 * time.Millisecond
	}
	sl.attempts++
	fs.c.s.After(backoff, func() { fs.connectSlot(sl) })
}

// onConnFailed marks the failed connection's slot dead and schedules the
// rejoin — the path keeper loop.
func (fs *fleetSession) onConnFailed(connID uint32) {
	for _, sl := range fs.slots {
		if sl.live && sl.connID == connID {
			sl.live = false
			fs.retrySlot(sl)
			return
		}
	}
}

// onSlotReady starts the writer on the first usable connection and
// widens coupled sessions to a second stream once a second connection
// is up.
func (fs *fleetSession) onSlotReady(connID uint32) {
	w := fs.writerEP()
	if len(fs.streams) == 0 {
		id, err := w.Sess.CreateStream(connID)
		if err != nil {
			return // conn died in the activation window; keeper retries
		}
		fs.streams = append(fs.streams, id)
		if fs.coupled {
			w.Sess.SetCoupled(id, true)
		}
		w.Flush()
		if !fs.pumping {
			fs.pumping = true
			fs.c.s.After(fs.pumpGap, fs.pump)
		}
		return
	}
	if fs.coupled && len(fs.streams) == 1 {
		if cur, err := w.Sess.StreamConn(fs.streams[0]); err == nil && cur != connID {
			if id, err := w.Sess.CreateStream(connID); err == nil {
				w.Sess.SetCoupled(id, true)
				fs.streams = append(fs.streams, id)
				w.Flush()
			}
		}
	}
}

// pump writes one paced chunk; a failed write is retried next tick
// rather than skipped, so the byte stream never gaps.
func (fs *fleetSession) pump() {
	if fs.quiesced || fs.written >= fs.total {
		return
	}
	n := chunkBytes
	if rem := fs.total - fs.written; n > rem {
		n = rem
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = fs.patternByte(fs.written + i)
	}
	var err error
	if fs.coupled {
		err = fs.writerEP().WriteCoupled(buf)
	} else {
		err = fs.writerEP().Write(fs.streams[0], buf)
	}
	if err == nil {
		fs.written += n
	} else if !errors.Is(err, core.ErrRetransmitBudget) {
		// ErrRetransmitBudget is designed backpressure — the budget parks
		// the writer until ACKs trim the buffer — so it is retried, not
		// recorded. Anything else is a genuine writer failure.
		fs.writeErr = err.Error()
	}
	if fs.written < fs.total {
		fs.c.s.After(fs.pumpGap, fs.pump)
		return
	}
	// Transfer fully queued: half-close our side so the FIN rides the
	// tail of the data.
	fs.finishWriter()
}

func (fs *fleetSession) finishWriter() {
	if fs.finished {
		return
	}
	fs.finished = true
	w := fs.writerEP()
	for _, id := range fs.streams {
		_ = w.Sess.FinishStream(id)
	}
	w.Flush()
}

// onDeliver verifies delivered bytes against the pattern in O(1) memory.
func (fs *fleetSession) onDeliver(p []byte) {
	for _, b := range p {
		if fs.mismatchAt < 0 && b != fs.patternByte(fs.got) {
			fs.mismatchAt = int64(fs.got)
		}
		fs.got++
	}
	if fs.got >= fs.total && !fs.quiesced {
		fs.doneAt = fs.c.s.Now()
		// Quiesce outside the engine's receive path.
		fs.c.s.After(0, fs.quiesce)
	}
}

// quiesce winds the session down after the last byte lands: both sides
// half-close and flush acknowledgments, then flush again after the FINs
// have crossed so no retransmit buffer is left waiting on an ack — a
// session left "active" here would trip spurious user timeouts and
// never let the fleet drain.
func (fs *fleetSession) quiesce() {
	if fs.quiesced {
		return
	}
	fs.quiesced = true
	fs.finishWriter()
	r := fs.readerEP()
	for _, id := range fs.streams {
		_ = r.Sess.FinishStream(id)
	}
	r.Flush()
	r.Sess.FlushAcks()
	r.Flush()
	both := func() {
		fs.cl.Sess.FlushAcks()
		fs.cl.Flush()
		fs.sv.Sess.FlushAcks()
		fs.sv.Flush()
	}
	fs.c.s.After(20*time.Millisecond, both)
	fs.c.s.After(120*time.Millisecond, both)
}

func (c *campaign) allQuiesced() bool {
	for _, fs := range c.sessions {
		if !fs.quiesced {
			return false
		}
	}
	return true
}

// netIdle reports no unacknowledged or unsent TCP bytes on any healthy
// connection fleet-wide. A connection counts as healthy only when BOTH
// TCP endpoints are alive and NEITHER engine declared it failed: a lost
// RST leaves one TCP side retransmitting into the void forever, and
// waiting on those bytes would mean never going quiet (they are
// attributable conn-failed drops, not pending deliveries).
func (c *campaign) netIdle() bool {
	for _, fs := range c.sessions {
		for _, ep := range []*simtcpls.Endpoint{fs.cl, fs.sv} {
			for _, id := range ep.Sess.Connections() {
				clTc, svTc := fs.cl.Conn(id), fs.sv.Conn(id)
				if clTc == nil || svTc == nil || clTc.Failed() || svTc.Failed() {
					continue
				}
				if fs.cl.Sess.ConnFailed(id) || fs.sv.Sess.ConnFailed(id) {
					continue
				}
				tc := ep.Conn(id)
				if tc.InFlight() > 0 || tc.Buffered() > 0 {
					return false
				}
			}
		}
	}
	return true
}

// applyFault executes one scheduled fault against the live fleet.
func (c *campaign) applyFault(ev FaultEvent) {
	n := len(c.sessions)
	if n == 0 {
		return
	}
	fs := c.sessions[ev.Session%n]
	switch ev.Kind {
	case FaultRST, FaultBlackhole, FaultStall, FaultDegrade, FaultRestart:
		c.touched[fs.idx] = true
	case FaultRSTStorm:
		stride := ev.Stride
		if stride < 1 {
			stride = 1
		}
		for i := ev.Session % n; i < n; i += stride {
			c.touched[i] = true
		}
	case FaultRackOutage:
		rack := ev.Rack % c.sc.Racks
		for i := range c.sessions {
			if i%c.sc.Racks == rack {
				c.touched[i] = true
			}
		}
	}
	switch ev.Kind {
	case FaultRST:
		c.resetLowestLive(fs)
	case FaultBlackhole:
		p := fs.paths[ev.Path%len(fs.paths)]
		p.SetDown(true)
		c.s.At(ev.At+ev.Dur, func() { p.SetDown(false) })
	case FaultStall:
		p := fs.paths[ev.Path%len(fs.paths)]
		// Kill only the data-carrying direction: ACKs keep flowing, so
		// nothing below the user timeout can notice.
		p.SetDownDir(fs.up, true)
		c.s.At(ev.At+ev.Dur, func() { p.SetDownDir(fs.up, false) })
	case FaultDegrade:
		p := fs.paths[ev.Path%len(fs.paths)]
		l := p.BtoA
		if fs.up {
			l = p.AtoB
		}
		l.SetRateBps(linkRateBps / 8)
		c.s.At(ev.At+ev.Dur, func() { l.SetRateBps(linkRateBps) })
	case FaultRSTStorm:
		stride := ev.Stride
		if stride < 1 {
			stride = 1
		}
		for i := ev.Session % n; i < n; i += stride {
			c.resetLowestLive(c.sessions[i])
		}
	case FaultRackOutage:
		rack := ev.Rack % c.sc.Racks
		c.topo.SetRackDown(rack, true)
		c.s.At(ev.At+ev.Dur, func() { c.topo.SetRackDown(rack, false) })
	case FaultRestart:
		c.restartSession(fs)
	}
}

// sessionPSK derives session i's deterministic resumption PSK (splitmix
// over seed and index — independent of the session workload rng).
func sessionPSK(seed int64, i int) []byte {
	psk := make([]byte, 32)
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i+1)*0xBF58476D1CE4E5B9
	for j := range psk {
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		psk[j] = byte(z >> 56)
	}
	return psk
}

// sealTicket (re)seals the session's PSK under the key store's current
// generation — ticket issuance at session start, reissue-on-rotation and
// full-handshake fallback thereafter.
func (fs *fleetSession) sealTicket() {
	t, err := fs.c.keys.Seal(fs.psk)
	if err != nil {
		fs.c.resumeVios = append(fs.c.resumeVios, Violation{
			Session: fs.idx, Kind: VResume, Detail: fmt.Sprintf("seal: %v", err),
		})
		return
	}
	fs.ticket, fs.ticketGen = t, fs.c.keys.Generation()
}

// restartSession is FaultRestart: the server process under the session
// dies and comes back holding only its persisted key file. The ticket
// resumption runs first (the reconnect's first flight), then every live
// connection dies at once; the path keeper rejoins and invariant #1
// proves the transfer survived byte-exact.
func (c *campaign) restartSession(fs *fleetSession) {
	if c.keys != nil && fs.ticket != nil {
		c.resumeTicket(fs)
	}
	for _, sl := range fs.slots {
		if !sl.live {
			continue
		}
		if tc := fs.cl.Conn(sl.connID); tc != nil && !tc.Failed() {
			tc.Reset()
		}
	}
}

// resumeTicket opens the session's ticket against the shared key store
// and checks every outcome against the generation-arithmetic oracle:
// tickets inside the accept window MUST open to the byte-exact PSK
// (reissuing under old-but-accepted generations), tickets past it MUST
// fail cleanly, and the 0-RTT strike register admits each ticket's
// nonce exactly once.
func (c *campaign) resumeTicket(fs *fleetSession) {
	vio := func(format string, args ...interface{}) {
		c.resumeVios = append(c.resumeVios, Violation{
			Session: fs.idx, Kind: VResume, Detail: fmt.Sprintf(format, args...),
		})
	}
	gen := c.keys.Generation()
	expectOK := gen-fs.ticketGen < uint32(resume.DefaultAcceptWindow)
	psk, _, reissue, err := c.keys.OpenTicket(fs.ticket)
	if err != nil {
		if expectOK {
			vio("ticket sealed at gen %d failed to open at gen %d: %v", fs.ticketGen, gen, err)
		}
		// Aged out: the clean fallback is a full handshake that mints a
		// fresh ticket under the current key.
		c.resume.AgedOut++
		fs.sealTicket()
		return
	}
	if !expectOK {
		vio("ticket sealed at gen %d opened at gen %d — past the accept window", fs.ticketGen, gen)
	}
	if !bytes.Equal(psk, fs.psk) {
		vio("recovered PSK differs from the sealed one (gen %d -> %d)", fs.ticketGen, gen)
	}
	c.resume.Accepted++
	if reissue != (gen != fs.ticketGen) {
		vio("reissue=%v for gen %d ticket at gen %d", reissue, fs.ticketGen, gen)
	}
	if nonce, ok := resume.TicketNonce(fs.ticket); ok {
		if c.replay.Observe(nonce, epoch.Add(c.s.Now())) {
			c.resume.ZeroRTT++
		} else {
			// Same ticket seen before (restarted twice between reissues):
			// the register refuses 0-RTT and the flight falls back to
			// 1-RTT — correct, counted, not a violation.
			c.resume.Replayed++
		}
		if e := c.replay.Entries(); e > c.resume.ReplayPeak {
			c.resume.ReplayPeak = e
		}
	} else {
		vio("sealed ticket too short for a nonce (%d bytes)", len(fs.ticket))
	}
	if reissue {
		c.resume.Reissued++
		fs.sealTicket()
	}
}

// resetLowestLive injects a RST on the session's lowest-numbered live
// connection (deterministic victim selection).
func (c *campaign) resetLowestLive(fs *fleetSession) {
	var victim *slot
	for _, sl := range fs.slots {
		if sl.live && (victim == nil || sl.connID < victim.connID) {
			victim = sl
		}
	}
	if victim == nil {
		return
	}
	if tc := fs.cl.Conn(victim.connID); tc != nil && !tc.Failed() {
		tc.Reset()
	}
}

// snapshot freezes per-session metrics and checks invariants 1, 2 and 4.
func (c *campaign) snapshot(res *Result) {
	for _, fs := range c.sessions {
		sr := SessionResult{
			Index:        fs.idx,
			Coupled:      fs.coupled,
			Up:           fs.up,
			Total:        fs.total,
			Written:      fs.written,
			Got:          fs.got,
			MismatchAt:   fs.mismatchAt,
			Quiesced:     fs.quiesced,
			ConnFailures: fs.connFailures,
			WriteErr:     fs.writeErr,
			ReorderPeak:  [2]int{fs.cl.Sess.ReorderPeakBytes(), fs.sv.Sess.ReorderPeakBytes()},
			RetxPeak:     [2]int{fs.cl.Sess.RetransmitPeakBytes(), fs.sv.Sess.RetransmitPeakBytes()},
			Flows:        [2]map[uint32]flowCount{{}, {}},
			Verdicts:     c.healthRaised[fs.idx],
		}
		if fs.quiesced {
			sr.DoneAtUS = int64(fs.doneAt / time.Microsecond)
		}
		for side := 0; side < 2; side++ {
			for id, fl := range fs.counts[side] {
				sr.Flows[side][id] = *fl
			}
		}
		res.Sessions = append(res.Sessions, sr)

		add := func(kind, format string, args ...interface{}) {
			res.Violations = append(res.Violations, Violation{
				Session: fs.idx, Kind: kind, Detail: fmt.Sprintf(format, args...),
			})
		}

		// Invariant 1: byte-exactness.
		if !fs.quiesced {
			add(VStuck, "transfer incomplete at hard cap: wrote %d/%d, delivered %d", fs.written, fs.total, fs.got)
		} else if fs.got != fs.total {
			add(VByteExact, "delivered %d bytes, wanted %d", fs.got, fs.total)
		}
		if fs.mismatchAt >= 0 {
			add(VByteExact, "first corrupt byte at offset %d", fs.mismatchAt)
		}
		if fs.writeErr != "" {
			add(VWriteError, "writer error: %s", fs.writeErr)
		}

		// Invariant 2: bounded memory.
		for side, sess := range []*core.Session{fs.cl.Sess, fs.sv.Sess} {
			if p := sess.ReorderPeakBytes(); p > reorderBudget {
				add(VMemReorder, "side %d reorder heap peaked at %d bytes (budget %d)", side, p, reorderBudget)
			}
			if p := sess.RetransmitPeakBytes(); p > retransmitBudget {
				add(VMemRetx, "side %d retransmit buffers peaked at %d bytes (budget %d)", side, p, retransmitBudget)
			}
		}

		// Invariant 4: telemetry count-closure. Only meaningful once the
		// fleet drained: with records still in flight "sent but not yet
		// received" is not loss.
		if res.Quiesced {
			c.checkClosure(fs, add)
		}

		// Invariant 5, non-transient leg: after the fleet drained and the
		// cooldown ran, every verdict must have cleared — a diagnosis that
		// outlives its cause is as wrong as one with no cause. (Without
		// quiesce the fleet is genuinely unhealthy and VStuck already
		// fired; active verdicts are then correct, not violations.)
		if res.Quiesced {
			sides := [2]string{"client", "server"}
			for side, m := range c.healthMons[2*fs.idx : 2*fs.idx+2] {
				for _, k := range m.ActiveVerdicts(nil) {
					add(VHealth, "%s still active on the %s side %v after quiesce+cooldown",
						k, sides[side], healthCooldown)
				}
			}
		}
	}

	// Resumption outcomes and oracle violations (FaultRestart), plus the
	// bounded-anti-replay leg of invariant 2: the strike register may
	// never hold more than its two windows' capacity, no matter how many
	// restarts the campaign threw at it.
	if c.replay != nil {
		if e := c.replay.Entries(); e > c.resume.ReplayPeak {
			c.resume.ReplayPeak = e
		}
		if bound := 2 * resume.DefaultReplayCap; c.resume.ReplayPeak > bound {
			c.resumeVios = append(c.resumeVios, Violation{
				Session: -1, Kind: VMemReplay,
				Detail: fmt.Sprintf("strike register peaked at %d entries (bound %d)", c.resume.ReplayPeak, bound),
			})
		}
	}
	res.Resume = c.resume
	res.Violations = append(res.Violations, c.resumeVios...)
	res.Violations = append(res.Violations, c.healthVios...)
}

// checkClosure verifies records sent == records delivered + records
// attributably dropped, per connection and direction, from the trace
// counters; and that the trace counters agree with the engine's own
// Stats (the telemetry channel tells the truth).
func (c *campaign) checkClosure(fs *fleetSession, add func(kind, format string, args ...interface{})) {
	sides := [2]*core.Session{fs.cl.Sess, fs.sv.Sess}
	for side := 0; side < 2; side++ {
		var traceSent uint64
		for _, fl := range fs.counts[side] {
			traceSent += fl.Sent
		}
		if got := sides[side].Stats().RecordsSent; traceSent != got {
			add(VClosure, "side %d trace counted %d records sent, engine stats say %d", side, traceSent, got)
		}
		if fd := sides[side].Stats().FailedDecrypts; fd != 0 {
			add(VClosure, "side %d saw %d failed decrypts (late bytes leaked past a failed conn?)", side, fd)
		}
	}
	// Directional closure: sender side s, receiver side 1-s.
	for s := 0; s < 2; s++ {
		r := 1 - s
		ids := map[uint32]bool{}
		for id := range fs.counts[s] {
			ids[id] = true
		}
		for id := range fs.counts[r] {
			ids[id] = true
		}
		sorted := make([]uint32, 0, len(ids))
		for id := range ids {
			sorted = append(sorted, id)
		}
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		for _, id := range sorted {
			var sent, recv uint64
			if fl := fs.counts[s][id]; fl != nil {
				sent = fl.Sent
			}
			if fl := fs.counts[r][id]; fl != nil {
				recv = fl.Recv
			}
			failed := fs.cl.Sess.ConnFailed(id) || fs.sv.Sess.ConnFailed(id)
			switch {
			case recv > sent:
				add(VClosure, "conn %d dir %d->%d: received %d records but only %d were sent", id, s, r, recv, sent)
			case recv < sent && !failed:
				add(VClosure, "conn %d dir %d->%d: %d records sent, %d delivered, and the conn never failed — %d records lost without attribution",
					id, s, r, sent, recv, sent-recv)
			}
			// recv < sent on a failed conn is the attributable drop:
			// sent == delivered + dropped(conn_failed) holds by
			// construction.
		}
	}
}
