// Package sim is a discrete-event network simulator: the substitute for
// the paper's Mininet testbed (Sec. 5.3–5.6). It provides a virtual
// clock with an event queue and duplex links with configurable rate,
// propagation delay and drop-tail queues, plus the failure injection the
// failover experiments need — blackholes and spurious RSTs.
//
// Determinism is the point: every run of an experiment produces the same
// packet schedule, so the figures regenerated from this simulator are
// exactly reproducible.
package sim

import (
	"container/heap"
	"sort"
	"time"
)

// Time is simulated time since the start of the run.
type Time = time.Duration

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tiebreaker: FIFO among same-time events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is one simulation run.
type Sim struct {
	now Time
	q   eventQueue
	seq uint64
}

// New returns an empty simulation at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.q, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after delay d.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event. It returns false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.q) == 0 {
		return false
	}
	e := heap.Pop(&s.q).(*event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil processes events up to and including time t.
func (s *Sim) RunUntil(t Time) {
	for len(s.q) > 0 && s.q[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Run drains the event queue completely (use with care: transports with
// keepalive timers never drain; prefer RunUntil).
func (s *Sim) Run() {
	for s.Step() {
	}
}

// Packet is an opaque unit crossing a link. Size drives serialization
// time; Data carries the transport's payload. Deliver, when set,
// overrides the link's Deliver — this is how several flows share one
// bottleneck link, each routing its packets to its own endpoint.
type Packet struct {
	Size    int
	Data    interface{}
	Deliver func(pkt Packet)
}

// Link is a unidirectional link: fixed rate, propagation delay, and a
// drop-tail queue measured in bytes. Mark Down to blackhole it (the
// Sec. 5.3 outage model: packets vanish, no error signal).
type Link struct {
	Sim *Sim
	// RateBps is the line rate in bits per second.
	RateBps int64
	// Delay is the one-way propagation delay.
	Delay Time
	// QueueBytes bounds the transmission backlog (drop-tail). Zero
	// means a default of one bandwidth-delay product (min 64 KiB).
	QueueBytes int
	// Deliver receives packets at the far end.
	Deliver func(pkt Packet)
	// Down blackholes the link.
	Down bool

	busyUntil Time

	// Counters.
	Delivered uint64
	Dropped   uint64
	BytesSent uint64
}

// queueLimit returns the effective queue bound.
func (l *Link) queueLimit() int {
	if l.QueueBytes > 0 {
		return l.QueueBytes
	}
	bdp := int(l.RateBps / 8 * int64(l.Delay) / int64(time.Second))
	if bdp < 64<<10 {
		bdp = 64 << 10
	}
	return bdp
}

// backlogBytes computes the bytes currently waiting to serialize.
func (l *Link) backlogBytes() int {
	if l.busyUntil <= l.Sim.now {
		return 0
	}
	return int(int64(l.busyUntil-l.Sim.now) * l.RateBps / 8 / int64(time.Second))
}

// Send enqueues a packet. It returns false if the packet was dropped
// (queue overflow or link down).
func (l *Link) Send(pkt Packet) bool {
	if l.Down {
		l.Dropped++
		return false
	}
	if l.backlogBytes()+pkt.Size > l.queueLimit() {
		l.Dropped++
		return false
	}
	start := l.busyUntil
	if start < l.Sim.now {
		start = l.Sim.now
	}
	txTime := Time(int64(pkt.Size) * 8 * int64(time.Second) / l.RateBps)
	l.busyUntil = start + txTime
	arrive := l.busyUntil + l.Delay
	l.BytesSent += uint64(pkt.Size)
	deliver := pkt.Deliver
	if deliver == nil {
		deliver = l.Deliver
	}
	l.Sim.At(arrive, func() {
		// A link taken down while packets are in flight still loses
		// them: check at delivery time too.
		if l.Down {
			l.Dropped++
			return
		}
		l.Delivered++
		if deliver != nil {
			deliver(pkt)
		}
	})
	return true
}

// SetRateBps changes the line rate mid-run — the netem "tc change"
// equivalent used for asymmetric-path degradation faults. The current
// serialization backlog is carried over: bytes already queued finish
// transmitting at the new rate, so a rate cut visibly stretches the
// queue instead of silently teleporting it.
func (l *Link) SetRateBps(bps int64) {
	if bps <= 0 || bps == l.RateBps {
		if bps > 0 {
			l.RateBps = bps
		}
		return
	}
	backlog := int64(l.backlogBytes())
	l.RateBps = bps
	if backlog > 0 {
		l.busyUntil = l.Sim.now + Time(backlog*8*int64(time.Second)/bps)
	}
}

// Path is a duplex link pair between two endpoints.
type Path struct {
	AtoB *Link
	BtoA *Link
}

// NewPath builds a symmetric duplex path.
func NewPath(s *Sim, rateBps int64, oneWayDelay Time) *Path {
	return &Path{
		AtoB: &Link{Sim: s, RateBps: rateBps, Delay: oneWayDelay},
		BtoA: &Link{Sim: s, RateBps: rateBps, Delay: oneWayDelay},
	}
}

// SetDown blackholes or restores both directions.
func (p *Path) SetDown(down bool) {
	p.AtoB.Down = down
	p.BtoA.Down = down
}

// SetDownDir blackholes or restores one direction only — the stall
// model: the forward direction keeps flowing while returning data and
// ACKs vanish (or vice versa), which only an application-layer timeout
// can detect.
func (p *Path) SetDownDir(aToB bool, down bool) {
	if aToB {
		p.AtoB.Down = down
	} else {
		p.BtoA.Down = down
	}
}

// SetRateBps degrades or restores both directions' line rate.
func (p *Path) SetRateBps(bps int64) {
	p.AtoB.SetRateBps(bps)
	p.BtoA.SetRateBps(bps)
}

// RTT returns the path's base round-trip time.
func (p *Path) RTT() Time { return p.AtoB.Delay + p.BtoA.Delay }

// Topology groups paths into failure domains ("racks") for correlated
// fault injection: a campaign that kills every path through one rack
// models the top-of-rack switch dying, the fleet-scale failure mode a
// single-session test can never exercise. Paths may belong to at most
// one rack; rack IDs are small dense integers chosen by the caller.
type Topology struct {
	s     *Sim
	racks map[int][]*Path
}

// NewTopology returns an empty topology on s.
func NewTopology(s *Sim) *Topology {
	return &Topology{s: s, racks: map[int][]*Path{}}
}

// Attach places a path in a rack.
func (t *Topology) Attach(rack int, p *Path) {
	t.racks[rack] = append(t.racks[rack], p)
}

// Rack returns the paths attached to rack (shared slice; do not mutate).
func (t *Topology) Rack(rack int) []*Path { return t.racks[rack] }

// Racks returns the rack IDs in ascending order.
func (t *Topology) Racks() []int {
	out := make([]int, 0, len(t.racks))
	for r := range t.racks {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// SetRackDown blackholes or restores every path in rack — the
// correlated multi-session outage. Paths are walked in attach order, so
// the fault is deterministic.
func (t *Topology) SetRackDown(rack int, down bool) {
	for _, p := range t.racks[rack] {
		p.SetDown(down)
	}
}
