package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.After(10*time.Millisecond, func() { order = append(order, 2) })
	s.After(5*time.Millisecond, func() { order = append(order, 1) })
	s.After(10*time.Millisecond, func() { order = append(order, 3) }) // FIFO at same time
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []Time
	s.After(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[1] != 2*time.Millisecond {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	s.RunUntil(20 * time.Second)
	if count != 10 || s.Now() != 20*time.Second {
		t.Fatalf("count=%d now=%v", count, s.Now())
	}
}

func TestLinkDelayAndSerialization(t *testing.T) {
	s := New()
	var arrived []Time
	l := &Link{Sim: s, RateBps: 8_000_000, Delay: 10 * time.Millisecond} // 1 MB/s
	l.Deliver = func(Packet) { arrived = append(arrived, s.Now()) }

	// 1000-byte packet: tx = 1ms, prop = 10ms -> arrives at 11ms.
	l.Send(Packet{Size: 1000})
	// Second packet queues behind the first: arrives at 12ms.
	l.Send(Packet{Size: 1000})
	s.Run()
	if len(arrived) != 2 {
		t.Fatalf("arrived %d packets", len(arrived))
	}
	if arrived[0] != 11*time.Millisecond {
		t.Errorf("first at %v, want 11ms", arrived[0])
	}
	if arrived[1] != 12*time.Millisecond {
		t.Errorf("second at %v, want 12ms", arrived[1])
	}
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	s := New()
	delivered := 0
	l := &Link{Sim: s, RateBps: 25_000_000, Delay: 10 * time.Millisecond, QueueBytes: 1 << 20}
	l.Deliver = func(p Packet) { delivered += p.Size }
	// Saturate for one simulated second.
	var feed func()
	sent := 0
	feed = func() {
		for l.backlogBytes() < 100_000 && s.Now() < time.Second {
			if !l.Send(Packet{Size: 1500}) {
				break
			}
			sent += 1500
		}
		if s.Now() < time.Second {
			s.After(time.Millisecond, feed)
		}
	}
	s.After(0, feed)
	s.RunUntil(time.Second + 200*time.Millisecond)
	// 25 Mbps ~ 3.125 MB/s; allow 5% modeling slack.
	want := 3_125_000
	if delivered < want*95/100 || delivered > want*105/100 {
		t.Fatalf("delivered %d bytes in 1s on a 25 Mbps link, want ~%d", delivered, want)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s := New()
	l := &Link{Sim: s, RateBps: 8_000, Delay: time.Millisecond, QueueBytes: 3000} // 1 KB/s
	l.Deliver = func(Packet) {}
	ok := 0
	for i := 0; i < 10; i++ {
		if l.Send(Packet{Size: 1000}) {
			ok++
		}
	}
	if ok >= 10 {
		t.Fatal("no drops despite tiny queue")
	}
	if l.Dropped == 0 {
		t.Fatal("drop counter not incremented")
	}
}

func TestBlackhole(t *testing.T) {
	s := New()
	delivered := 0
	l := &Link{Sim: s, RateBps: 1e9, Delay: time.Millisecond}
	l.Deliver = func(Packet) { delivered++ }
	l.Send(Packet{Size: 100})
	l.Down = true
	l.Send(Packet{Size: 100})
	s.Run()
	// The first was in flight when the link went down: the outage model
	// loses it too.
	if delivered != 0 {
		t.Fatalf("delivered %d packets through a blackhole", delivered)
	}
	if l.Dropped != 2 {
		t.Fatalf("dropped = %d", l.Dropped)
	}
}

func TestPathHelpers(t *testing.T) {
	s := New()
	p := NewPath(s, 25_000_000, 5*time.Millisecond)
	if p.RTT() != 10*time.Millisecond {
		t.Fatalf("rtt = %v", p.RTT())
	}
	p.SetDown(true)
	if !p.AtoB.Down || !p.BtoA.Down {
		t.Fatal("SetDown did not affect both directions")
	}
}
