package miniquic

import (
	"fmt"
	"testing"
)

func TestTransferMovesAllBytes(t *testing.T) {
	for _, cfg := range []Config{Quicly, MsQuic, Mvfst, Quicly.Jumbo()} {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 1<<20)
		moved, err := p.Transfer(data)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if moved != len(data) {
			t.Fatalf("%s: moved %d of %d", cfg.Name, moved, len(data))
		}
		if p.Packets == 0 || p.Acks == 0 {
			t.Fatalf("%s: packets=%d acks=%d", cfg.Name, p.Packets, p.Acks)
		}
	}
}

func TestPacketCountScalesWithMTU(t *testing.T) {
	small, _ := New(Quicly)
	big, _ := New(Quicly.Jumbo())
	data := make([]byte, 4<<20)
	small.Transfer(data)
	big.Transfer(data)
	if small.Packets <= big.Packets {
		t.Fatalf("1500-MTU packets (%d) should exceed 9000-MTU packets (%d)", small.Packets, big.Packets)
	}
}

func TestAckMapDrains(t *testing.T) {
	p, _ := New(Quicly)
	p.Transfer(make([]byte, 1<<20))
	// With an ack every 2 packets, the in-flight map stays bounded.
	if len(p.sentSizes) > 4 {
		t.Fatalf("sent map holds %d entries after transfer", len(p.sentSizes))
	}
}

func BenchmarkPipelines(b *testing.B) {
	for _, cfg := range []Config{Quicly, MsQuic, Mvfst} {
		b.Run(cfg.Name, func(b *testing.B) {
			p, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, 1<<20)
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Transfer(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.Packets)/float64(b.N), "pkts/op")
		})
	}
}

func ExampleNew() {
	p, _ := New(Quicly)
	moved, _ := p.Transfer(make([]byte, 10000))
	fmt.Println(moved)
	// Output: 10000
}
