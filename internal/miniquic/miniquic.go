// Package miniquic is a QUIC-shaped data-plane pipeline used as the
// baseline in the paper's Fig. 7 raw-performance comparison. It
// reproduces the cost structure that separates QUIC from TCPLS on the
// same hardware (paper §5.1's analysis, points i–v):
//
//   - encryption units are ~MTU-sized packets, not 16 KiB TLS records,
//     so the AEAD is invoked an order of magnitude more often per byte
//     and each invocation carries fixed setup cost;
//   - each packet carries its own header whose packet number is
//     protected (modeled as the extra per-packet header pass);
//   - acknowledgments are generated, encrypted, decrypted, and matched
//     against the sent-packet map in user space;
//   - implementations differ in batching (GSO) and internal copies —
//     the three Configs mirror quicly, msquic and mvfst's traits.
//
// The pipeline does real cryptographic work (AES-128-GCM via
// crypto/cipher); nothing is a sleep or a fudge factor. Absolute numbers
// are this machine's; the paper's claim under test is the *ratio* to the
// TCPLS record pipeline.
package miniquic

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"

	"tcpls/internal/wire"
)

// Config describes one QUIC implementation's data-plane traits.
type Config struct {
	Name string
	// MaxPacket is the UDP payload budget per packet.
	MaxPacket int
	// GSOBatch is how many packets are handed to the "kernel" per send
	// call; each call costs one extra batch copy (UDP sendmsg copies).
	GSOBatch int
	// ExtraCopies models internal buffer hand-offs per packet.
	ExtraCopies int
	// AckEvery generates one ack frame per this many packets.
	AckEvery int
}

// Implementations evaluated in Fig. 7. Packet budgets assume a 1500-byte
// MTU; Jumbo() adapts them to 9000.
var (
	// Quicly: GSO on, lean pipeline (fastest QUIC in Fig. 7).
	Quicly = Config{Name: "quicly", MaxPacket: 1252, GSOBatch: 64, ExtraCopies: 1, AckEvery: 2}
	// MsQuic: no GSO in the paper's configuration — every packet pays
	// its own send-call copy — plus internal buffer hand-offs.
	MsQuic = Config{Name: "msquic", MaxPacket: 1252, GSOBatch: 1, ExtraCopies: 3, AckEvery: 2}
	// Mvfst: per-packet sends, more internal copies, and per-packet ack
	// bookkeeping (slowest in Fig. 7 despite GSO support).
	Mvfst = Config{Name: "mvfst", MaxPacket: 1252, GSOBatch: 1, ExtraCopies: 5, AckEvery: 1}
)

// Jumbo returns the config adapted to a 9000-byte MTU. Mirroring the
// paper's observation, GSO batching loses its benefit with jumbo frames
// (the kernel GSO path is tuned for 1500-byte segments), so sends go
// per-packet and each jumbo packet pays extra segmentation copies.
func (c Config) Jumbo() Config {
	c.MaxPacket = 8952
	c.GSOBatch = 1
	c.ExtraCopies += 3
	c.Name += "-jumbo"
	return c
}

const (
	headerLen = 16 // short header + packet number + length
	tagLen    = 16
	ackFrame  = 32 // encoded ack frame bytes
)

// Pipeline is a sender+receiver pair moving bytes through the full
// QUIC-shaped data plane in memory.
type Pipeline struct {
	cfg  Config
	send cipher.AEAD
	recv cipher.AEAD

	sendPN uint64
	recvPN uint64

	// sentSizes is the sender's in-flight packet map acks are matched
	// against (userspace ack processing).
	sentSizes map[uint64]int

	packetBuf []byte
	batchBuf  []byte
	ackBuf    []byte

	// Stats.
	Packets uint64
	Acks    uint64
}

// New builds a pipeline with fresh keys.
func New(cfg Config) (*Pipeline, error) {
	mk := func(tag byte) (cipher.AEAD, error) {
		key := make([]byte, 16)
		for i := range key {
			key[i] = tag
		}
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		return cipher.NewGCM(block)
	}
	s, err := mk(1)
	if err != nil {
		return nil, err
	}
	r, err := mk(1)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		cfg:       cfg,
		send:      s,
		recv:      r,
		sentSizes: make(map[uint64]int),
		packetBuf: make([]byte, 0, cfg.MaxPacket+tagLen+headerLen),
		batchBuf:  make([]byte, 0, (cfg.MaxPacket+tagLen+headerLen)*cfg.GSOBatch),
	}, nil
}

func (p *Pipeline) nonce(pn uint64) [12]byte {
	var n [12]byte
	wire.PutUint64(n[4:], pn)
	return n
}

// Transfer pushes data through the full pipeline — packetize, seal,
// batch-copy ("sendmsg"), open, ack generation, ack processing — and
// returns the payload bytes moved. The work performed is the CPU cost
// Fig. 7 measures.
func (p *Pipeline) Transfer(data []byte) (int, error) {
	payload := p.cfg.MaxPacket - headerLen - tagLen
	moved := 0
	batch := 0
	sincAck := 0
	for off := 0; off < len(data); off += payload {
		end := off + payload
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]

		// --- sender ---
		pn := p.sendPN
		p.sendPN++
		var hdr [headerLen]byte
		hdr[0] = 0x40 // short header form
		wire.PutUint64(hdr[1:], pn)
		nonce := p.nonce(pn)
		pkt := append(p.packetBuf[:0], hdr[:]...)
		pkt = p.send.Seal(pkt, nonce[:], chunk, hdr[:])
		p.sentSizes[pn] = len(chunk)
		for i := 0; i < p.cfg.ExtraCopies; i++ {
			tmp := make([]byte, len(pkt))
			copy(tmp, pkt)
			pkt = tmp
		}
		// GSO batching: packets are copied into the batch buffer; the
		// batch flush stands in for the sendmsg boundary.
		p.batchBuf = append(p.batchBuf, pkt...)
		batch++
		if batch >= p.cfg.GSOBatch || end == len(data) {
			// "Kernel" copy of the batch.
			flush := make([]byte, len(p.batchBuf))
			copy(flush, p.batchBuf)
			p.batchBuf = p.batchBuf[:0]
			batch = 0
			_ = flush
		}

		// --- receiver ---
		rpn := p.recvPN
		p.recvPN++
		rnonce := p.nonce(rpn)
		plain, err := p.recv.Open(nil, rnonce[:], pkt[headerLen:], pkt[:headerLen])
		if err != nil {
			return moved, fmt.Errorf("miniquic: open pn %d: %w", rpn, err)
		}
		moved += len(plain)
		p.Packets++

		// --- acks, in userspace both ways ---
		sincAck++
		if sincAck >= p.cfg.AckEvery {
			sincAck = 0
			ack := p.makeAck(rpn)
			p.processAck(ack)
			p.Acks++
		}
	}
	return moved, nil
}

// makeAck builds and seals an ack packet (receiver side).
func (p *Pipeline) makeAck(largest uint64) []byte {
	var frame [ackFrame]byte
	frame[0] = 0x02 // ACK frame type
	wire.PutUint64(frame[1:], largest)
	var hdr [headerLen]byte
	hdr[0] = 0x40
	nonce := p.nonce(1<<63 | largest) // ack packet number space
	p.ackBuf = append(p.ackBuf[:0], hdr[:]...)
	p.ackBuf = p.recv.Seal(p.ackBuf, nonce[:], frame[:], hdr[:])
	return p.ackBuf
}

// processAck opens an ack packet and retires acknowledged packets from
// the sent map (sender side).
func (p *Pipeline) processAck(ack []byte) {
	nonce := p.nonce(1<<63 | (p.recvPN - 1))
	frame, err := p.send.Open(nil, nonce[:], ack[headerLen:], ack[:headerLen])
	if err != nil {
		return
	}
	largest := wire.Uint64(frame[1:9])
	// Cumulative retire walk through the sent-packet map.
	for pn := largest; ; pn-- {
		if _, ok := p.sentSizes[pn]; !ok {
			break
		}
		delete(p.sentSizes, pn)
		if pn == 0 {
			break
		}
	}
}
