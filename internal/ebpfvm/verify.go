package ebpfvm

import (
	"errors"
	"fmt"
)

// Verification errors.
var (
	ErrProgramTooLong = errors.New("ebpfvm: program too long")
	ErrEmptyProgram   = errors.New("ebpfvm: empty program")
	ErrNoExit         = errors.New("ebpfvm: program does not end with exit")
)

// Verify statically checks a program before attachment, standing in for
// the kernel eBPF verifier: opcode and register validity, jump targets
// in bounds, frame-pointer immutability, helper IDs known, and a
// terminating exit. Runtime complements this with memory bounds checks
// and an instruction budget.
func Verify(prog []Instruction) error {
	if len(prog) == 0 {
		return ErrEmptyProgram
	}
	if len(prog) > MaxProgramLen {
		return ErrProgramTooLong
	}
	if prog[len(prog)-1].Op != OpExit {
		return ErrNoExit
	}
	for pc, ins := range prog {
		if ins.Op == 0 || ins.Op >= opMax {
			return fmt.Errorf("ebpfvm: invalid opcode %d at %d", ins.Op, pc)
		}
		if int(ins.Dst) >= numRegs || int(ins.Src) >= numRegs {
			return fmt.Errorf("ebpfvm: invalid register at %d", pc)
		}
		if writesDst(ins.Op) && ins.Dst == R10 {
			return fmt.Errorf("ebpfvm: write to frame pointer at %d", pc)
		}
		if isJump(ins.Op) {
			target := pc + 1 + int(ins.Off)
			if target < 0 || target >= len(prog) {
				return fmt.Errorf("ebpfvm: jump target %d out of bounds at %d", target, pc)
			}
		}
		if ins.Op == OpCall {
			switch ins.Imm {
			case HelperCbrt, HelperMulDiv, HelperMax, HelperMin:
			default:
				return fmt.Errorf("ebpfvm: unknown helper %d at %d", ins.Imm, pc)
			}
		}
		if (ins.Op == OpDivImm || ins.Op == OpModImm) && ins.Imm == 0 {
			return fmt.Errorf("ebpfvm: divide by constant zero at %d", pc)
		}
		if ins.Op == OpLshImm || ins.Op == OpRshImm || ins.Op == OpArshImm {
			if ins.Imm < 0 || ins.Imm > 63 {
				return fmt.Errorf("ebpfvm: shift amount %d out of range at %d", ins.Imm, pc)
			}
		}
	}
	return nil
}

// writesDst reports whether op modifies its destination register.
func writesDst(op uint8) bool {
	switch op {
	case OpJa, OpJeqImm, OpJeqReg, OpJneImm, OpJneReg,
		OpJgtImm, OpJgtReg, OpJgeImm, OpJgeReg,
		OpJltImm, OpJltReg, OpJleImm, OpJleReg,
		OpJsgtImm, OpJsgtReg, OpJsltImm, OpJsltReg,
		OpStxDW, OpStDW, OpCall, OpExit:
		return false
	}
	return true
}

func isJump(op uint8) bool {
	switch op {
	case OpJa, OpJeqImm, OpJeqReg, OpJneImm, OpJneReg,
		OpJgtImm, OpJgtReg, OpJgeImm, OpJgeReg,
		OpJltImm, OpJltReg, OpJleImm, OpJleReg,
		OpJsgtImm, OpJsgtReg, OpJsltImm, OpJsltReg:
		return true
	}
	return false
}
