package ebpfvm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a small assembly dialect into a program. One
// instruction per line; ';' starts a comment; 'label:' defines a jump
// target. Registers are r0..r10. Examples:
//
//	mov   r0, 42          ; r0 = 42
//	add   r0, r1          ; r0 += r1
//	ldxdw r2, [r1+8]      ; r2 = *(u64*)(r1+8)
//	stxdw [r1+16], r2     ; *(u64*)(r1+16) = r2
//	jsgt  r2, 5, done     ; if (s64)r2 > 5 goto done
//	call  cbrt            ; r0 = cbrt(r1)
//	done: exit
//
// The congestion-control programs in programs.go are written in this
// dialect, so the bytecode that crosses the wire in the Fig. 12
// experiment is assembled from readable source.
func Assemble(src string) ([]Instruction, error) {
	type pending struct {
		insIdx int
		label  string
	}
	var (
		prog    []Instruction
		labels  = map[string]int{}
		fixups  []pending
		lineNum int
	)
	for _, raw := range strings.Split(src, "\n") {
		lineNum++
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if strings.ContainsAny(label, " \t,") {
				break // ':' belonged to something else
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("asm line %d: duplicate label %q", lineNum, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		ins, fix, err := parseInstruction(line)
		if err != nil {
			return nil, fmt.Errorf("asm line %d: %w", lineNum, err)
		}
		if fix != "" {
			fixups = append(fixups, pending{len(prog), fix})
		}
		prog = append(prog, ins)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		prog[f.insIdx].Off = int16(target - f.insIdx - 1)
	}
	return prog, nil
}

// MustAssemble panics on assembly errors; for the built-in programs.
func MustAssemble(src string) []Instruction {
	prog, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return prog
}

var helperNames = map[string]int32{
	"cbrt":    HelperCbrt,
	"mul_div": HelperMulDiv,
	"max":     HelperMax,
	"min":     HelperMin,
}

var jumpOps = map[string][2]uint8{ // name -> {imm form, reg form}
	"jeq":  {OpJeqImm, OpJeqReg},
	"jne":  {OpJneImm, OpJneReg},
	"jgt":  {OpJgtImm, OpJgtReg},
	"jge":  {OpJgeImm, OpJgeReg},
	"jlt":  {OpJltImm, OpJltReg},
	"jle":  {OpJleImm, OpJleReg},
	"jsgt": {OpJsgtImm, OpJsgtReg},
	"jslt": {OpJsltImm, OpJsltReg},
}

var aluOps = map[string][2]uint8{ // name -> {imm form, reg form}
	"mov": {OpMovImm, OpMovReg},
	"add": {OpAddImm, OpAddReg},
	"sub": {OpSubImm, OpSubReg},
	"mul": {OpMulImm, OpMulReg},
	"div": {OpDivImm, OpDivReg},
	"mod": {OpModImm, OpModReg},
	"and": {OpAndImm, OpAndReg},
	"or":  {OpOrImm, OpOrReg},
	"xor": {OpXorImm, OpXorReg},
}

func parseInstruction(line string) (Instruction, string, error) {
	fields := strings.Fields(line)
	op := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	args := splitArgs(rest)

	switch {
	case op == "exit":
		return Instruction{Op: OpExit}, "", nil
	case op == "call":
		if len(args) != 1 {
			return Instruction{}, "", fmt.Errorf("call needs one helper name")
		}
		id, ok := helperNames[args[0]]
		if !ok {
			return Instruction{}, "", fmt.Errorf("unknown helper %q", args[0])
		}
		return Instruction{Op: OpCall, Imm: id}, "", nil
	case op == "ja":
		if len(args) != 1 {
			return Instruction{}, "", fmt.Errorf("ja needs one label")
		}
		return Instruction{Op: OpJa}, args[0], nil
	case op == "neg":
		r, err := parseReg(args[0])
		return Instruction{Op: OpNeg, Dst: r}, "", err
	case op == "lsh" || op == "rsh" || op == "arsh":
		if len(args) != 2 {
			return Instruction{}, "", fmt.Errorf("%s needs reg, imm", op)
		}
		r, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		n, err := strconv.ParseInt(args[1], 0, 32)
		if err != nil {
			return Instruction{}, "", err
		}
		o := map[string]uint8{"lsh": OpLshImm, "rsh": OpRshImm, "arsh": OpArshImm}[op]
		return Instruction{Op: o, Dst: r, Imm: int32(n)}, "", nil
	case op == "ldxdw":
		// ldxdw rD, [rS+off]
		if len(args) != 2 {
			return Instruction{}, "", fmt.Errorf("ldxdw needs reg, [reg+off]")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		src, off, err := parseMem(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return Instruction{Op: OpLdxDW, Dst: dst, Src: src, Off: off}, "", nil
	case op == "stxdw":
		// stxdw [rD+off], rS
		if len(args) != 2 {
			return Instruction{}, "", fmt.Errorf("stxdw needs [reg+off], reg")
		}
		dst, off, err := parseMem(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		src, err := parseReg(args[1])
		if err != nil {
			return Instruction{}, "", err
		}
		return Instruction{Op: OpStxDW, Dst: dst, Src: src, Off: off}, "", nil
	case op == "stdw":
		// stdw [rD+off], imm
		if len(args) != 2 {
			return Instruction{}, "", fmt.Errorf("stdw needs [reg+off], imm")
		}
		dst, off, err := parseMem(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		n, err := strconv.ParseInt(args[1], 0, 32)
		if err != nil {
			return Instruction{}, "", err
		}
		return Instruction{Op: OpStDW, Dst: dst, Off: off, Imm: int32(n)}, "", nil
	}

	if forms, ok := jumpOps[op]; ok {
		// jXX rD, imm|rS, label
		if len(args) != 3 {
			return Instruction{}, "", fmt.Errorf("%s needs reg, operand, label", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		if src, err := parseReg(args[1]); err == nil {
			return Instruction{Op: forms[1], Dst: dst, Src: src}, args[2], nil
		}
		n, err := strconv.ParseInt(args[1], 0, 32)
		if err != nil {
			return Instruction{}, "", fmt.Errorf("bad operand %q", args[1])
		}
		return Instruction{Op: forms[0], Dst: dst, Imm: int32(n)}, args[2], nil
	}
	if forms, ok := aluOps[op]; ok {
		if len(args) != 2 {
			return Instruction{}, "", fmt.Errorf("%s needs reg, operand", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instruction{}, "", err
		}
		if src, err := parseReg(args[1]); err == nil {
			return Instruction{Op: forms[1], Dst: dst, Src: src}, "", nil
		}
		n, err := strconv.ParseInt(args[1], 0, 32)
		if err != nil {
			return Instruction{}, "", fmt.Errorf("bad operand %q", args[1])
		}
		return Instruction{Op: forms[0], Dst: dst, Imm: int32(n)}, "", nil
	}
	return Instruction{}, "", fmt.Errorf("unknown mnemonic %q", op)
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("not a register: %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= numRegs {
		return 0, fmt.Errorf("not a register: %q", s)
	}
	return uint8(n), nil
}

// parseMem parses "[rN+off]" or "[rN-off]" or "[rN]".
func parseMem(s string) (uint8, int16, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := strconv.ParseInt(inner[sep:], 0, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, int16(off), nil
}
