package ebpfvm

import (
	"testing"
	"testing/quick"
	"time"

	"tcpls/internal/cc"
	"tcpls/internal/wire"
)

func run(t *testing.T, src string, ctx []byte) uint64 {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBasicArithmetic(t *testing.T) {
	if got := run(t, "mov r0, 40\nadd r0, 2\nexit", nil); got != 42 {
		t.Fatalf("got %d", got)
	}
	if got := run(t, "mov r0, 7\nmul r0, 6\nexit", nil); got != 42 {
		t.Fatalf("got %d", got)
	}
	if got := run(t, "mov r0, -10\ndiv r0, 3\nexit", nil); int64(got) != -3 {
		t.Fatalf("signed div got %d", int64(got))
	}
	if got := run(t, "mov r0, 1\nlsh r0, 10\nexit", nil); got != 1024 {
		t.Fatalf("got %d", got)
	}
	if got := run(t, "mov r0, -8\narsh r0, 2\nexit", nil); int64(got) != -2 {
		t.Fatalf("arsh got %d", int64(got))
	}
}

func TestJumpsAndLabels(t *testing.T) {
	src := `
		mov r0, 0
		mov r1, 5
	loop:	add r0, r1
		sub r1, 1
		jsgt r1, 0, loop
		exit
	`
	if got := run(t, src, nil); got != 15 {
		t.Fatalf("sum 5..1 = %d, want 15", got)
	}
}

func TestContextLoadStore(t *testing.T) {
	ctx := make([]byte, 32)
	wire.PutUint64(ctx[8:], 100)
	src := `
		ldxdw r2, [r1+8]
		add   r2, 1
		stxdw [r1+16], r2
		mov   r0, r2
		exit
	`
	if got := run(t, src, ctx); got != 101 {
		t.Fatalf("got %d", got)
	}
	if wire.Uint64(ctx[16:]) != 101 {
		t.Fatal("store to ctx did not persist")
	}
}

func TestStackAccess(t *testing.T) {
	src := `
		mov   r2, 77
		stxdw [r10-8], r2
		ldxdw r0, [r10-8]
		exit
	`
	if got := run(t, src, nil); got != 77 {
		t.Fatalf("got %d", got)
	}
}

func TestHelpers(t *testing.T) {
	if got := run(t, "mov r1, 27\ncall cbrt\nexit", nil); got != 3 {
		t.Fatalf("cbrt(27) = %d", got)
	}
	if got := run(t, "mov r1, -27\ncall cbrt\nexit", nil); int64(got) != -3 {
		t.Fatalf("cbrt(-27) = %d", int64(got))
	}
	// mul_div with 128-bit intermediate: 1e12 * 1e7 / 1e9 = 1e10.
	src := `
		mov r1, 1000000000
		mul r1, 1000           ; 1e12
		mov r2, 10000000       ; 1e7
		mov r3, 1000000000     ; 1e9
		call mul_div
		exit
	`
	if got := run(t, src, nil); got != 10000000000 {
		t.Fatalf("mul_div got %d", got)
	}
	if got := run(t, "mov r1, -5\nmov r2, 3\ncall max\nexit", nil); got != 3 {
		t.Fatalf("max got %d", int64(got))
	}
	if got := run(t, "mov r1, -5\nmov r2, 3\ncall min\nexit", nil); int64(got) != -5 {
		t.Fatalf("min got %d", int64(got))
	}
}

func TestRuntimeTraps(t *testing.T) {
	prog := MustAssemble("mov r2, 0\nmov r0, 1\ndiv r0, r2\nexit")
	vm, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(nil); err != ErrDivideByZero {
		t.Fatalf("err=%v", err)
	}

	prog = MustAssemble("ldxdw r0, [r1+4096]\nexit")
	vm, _ = New(prog)
	if _, err := vm.Run(make([]byte, 16)); err != ErrOutOfBounds {
		t.Fatalf("err=%v", err)
	}

	prog = MustAssemble("loop: ja loop\nexit")
	vm, _ = New(prog)
	if _, err := vm.Run(nil); err != ErrBudgetExceeded {
		t.Fatalf("err=%v", err)
	}
}

func TestVerifierRejections(t *testing.T) {
	cases := []struct {
		name string
		prog []Instruction
	}{
		{"empty", nil},
		{"no exit", []Instruction{{Op: OpMovImm, Dst: R0}}},
		{"bad opcode", []Instruction{{Op: 200}, {Op: OpExit}}},
		{"bad register", []Instruction{{Op: OpMovImm, Dst: 12}, {Op: OpExit}}},
		{"write fp", []Instruction{{Op: OpMovImm, Dst: R10}, {Op: OpExit}}},
		{"jump oob", []Instruction{{Op: OpJa, Off: 100}, {Op: OpExit}}},
		{"bad helper", []Instruction{{Op: OpCall, Imm: 99}, {Op: OpExit}}},
		{"div zero imm", []Instruction{{Op: OpDivImm, Dst: R0, Imm: 0}, {Op: OpExit}}},
		{"bad shift", []Instruction{{Op: OpLshImm, Dst: R0, Imm: 64}, {Op: OpExit}}},
	}
	for _, tc := range cases {
		if err := Verify(tc.prog); err == nil {
			t.Errorf("%s: verifier accepted invalid program", tc.name)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := MustAssemble(NewRenoSrc)
	decoded, err := Decode(Encode(prog))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(prog) {
		t.Fatalf("length %d vs %d", len(decoded), len(prog))
	}
	for i := range prog {
		if decoded[i] != prog[i] {
			t.Fatalf("instruction %d: %+v vs %+v", i, decoded[i], prog[i])
		}
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("partial instruction accepted")
	}
}

func TestQuickCbrt(t *testing.T) {
	f := func(x int64) bool {
		if x < 0 {
			x = -x
		}
		x %= 1 << 60
		r := icbrt(x)
		return r*r*r <= x && (r+1)*(r+1)*(r+1) > x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulDiv(t *testing.T) {
	f := func(a, b uint32, c uint32) bool {
		if c == 0 {
			return true
		}
		got := mulDiv(int64(a), int64(b), int64(c))
		want := uint64(a) * uint64(b) / uint64(c)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- CC program behavioural tests: the bytecode controllers must track
// their native Go counterparts qualitatively. ---

func newCC(t *testing.T, name string) *CCProgram {
	t.Helper()
	p, err := NewCCProgram(name, Program(name), cc.DefaultMSS)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ackWindow(a cc.Algorithm, rtt, now time.Duration) time.Duration {
	w := a.Window()
	for got := 0; got < w; got += cc.DefaultMSS {
		a.OnAck(cc.DefaultMSS, rtt, now)
		now += time.Millisecond
	}
	return now
}

func TestBytecodeNewRenoMatchesNative(t *testing.T) {
	vm := newCC(t, "newreno")
	native := cc.NewNewReno(cc.DefaultMSS)
	now := time.Duration(0)
	step := func(n int, rtt time.Duration) {
		for i := 0; i < n; i++ {
			vm.OnAck(cc.DefaultMSS, rtt, now)
			native.OnAck(cc.DefaultMSS, rtt, now)
			now += time.Millisecond
		}
	}
	step(50, 20*time.Millisecond) // slow start
	if vm.Err() != nil {
		t.Fatal(vm.Err())
	}
	if vm.Window() != native.Window() {
		t.Fatalf("slow start diverged: vm=%d native=%d", vm.Window(), native.Window())
	}
	vm.OnLoss(now)
	native.OnLoss(now)
	if vm.Window() != native.Window() {
		t.Fatalf("post-loss diverged: vm=%d native=%d", vm.Window(), native.Window())
	}
	step(200, 20*time.Millisecond) // congestion avoidance
	if vm.Window() != native.Window() {
		t.Fatalf("CA diverged: vm=%d native=%d", vm.Window(), native.Window())
	}
	vm.OnRTO(now)
	if vm.Window() != cc.DefaultMSS {
		t.Fatalf("RTO window %d", vm.Window())
	}
}

func TestBytecodeCubicGrowsAndReduces(t *testing.T) {
	vm := newCC(t, "cubic")
	now := time.Duration(0)
	for i := 0; i < 100; i++ { // bounded slow start
		vm.OnAck(cc.DefaultMSS, 20*time.Millisecond, now)
		now += time.Millisecond
	}
	if vm.Err() != nil {
		t.Fatal(vm.Err())
	}
	w := vm.Window()
	vm.OnLoss(now)
	if vm.Err() != nil {
		t.Fatal(vm.Err())
	}
	reduced := vm.Window()
	// beta = 0.7 within fixed-point rounding.
	lo, hi := int(float64(w)*0.65), int(float64(w)*0.75)
	if reduced < lo || reduced > hi {
		t.Fatalf("loss reduction %d -> %d outside beta range [%d,%d]", w, reduced, lo, hi)
	}
	// Post-loss the window regrows toward wMax in congestion avoidance.
	for i := 0; i < 2000; i++ {
		vm.OnAck(cc.DefaultMSS, 20*time.Millisecond, now)
		now += time.Millisecond
	}
	if vm.Err() != nil {
		t.Fatal(vm.Err())
	}
	if vm.Window() <= reduced {
		t.Fatalf("cubic bytecode did not regrow: %d -> %d", reduced, vm.Window())
	}
}

func TestBytecodeVegasBacksOffUnderQueueing(t *testing.T) {
	vm := newCC(t, "vegas")
	base := 20 * time.Millisecond
	now := time.Duration(0)
	// Establish baseRTT, then leave slow start via queue growth.
	for i := 0; i < 200; i++ {
		rtt := base + time.Duration(i/4)*time.Millisecond
		vm.OnAck(cc.DefaultMSS, rtt, now)
		now += time.Millisecond
	}
	if vm.Err() != nil {
		t.Fatal(vm.Err())
	}
	w := vm.Window()
	for i := 0; i < 600; i++ { // heavy queueing: RTT 4x base
		vm.OnAck(cc.DefaultMSS, 4*base, now)
		now += time.Millisecond
	}
	if vm.Err() != nil {
		t.Fatal(vm.Err())
	}
	if vm.Window() > w {
		t.Fatalf("vegas bytecode grew under heavy queueing: %d -> %d", w, vm.Window())
	}
}

func TestBuggyProgramCannotStallConnection(t *testing.T) {
	// A program that zeroes cwnd must be floored to 1 MSS by the bridge.
	src := `
		mov r9, r1
		stdw [r9+8], 0
		exit
	`
	p, err := NewCCProgram("bad", Encode(MustAssemble(src)), cc.DefaultMSS)
	if err != nil {
		t.Fatal(err)
	}
	p.OnAck(1000, time.Millisecond, time.Millisecond)
	if p.Window() < cc.DefaultMSS {
		t.Fatalf("window %d below 1 MSS", p.Window())
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus r0, 1",
		"mov r11, 1",
		"jeq r0, 1",        // missing label
		"ja nowhere\nexit", // undefined label
		"dup: mov r0, 1\ndup: exit",
		"ldxdw r0, r1", // not a memory operand
		"call frobnicate",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func BenchmarkVMAckEvent(b *testing.B) {
	p, err := NewCCProgram("cubic", Program("cubic"), cc.DefaultMSS)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.OnAck(cc.DefaultMSS, 20*time.Millisecond, time.Duration(i)*time.Millisecond)
	}
	if p.Err() != nil {
		b.Fatal(p.Err())
	}
}
