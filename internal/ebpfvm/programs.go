package ebpfvm

// Built-in congestion-controller programs in the assembly dialect of
// asm.go. These are the payloads of the paper's §4.4 / Fig. 12
// experiment: a server assembles one, ships the Encode()d bytes over a
// TCPLS BPF_CC record, and the client verifies and attaches it.
//
// Register conventions inside the programs: r9 holds the context pointer
// (saved from r1 before any helper call clobbers the argument
// registers); helper arguments go in r1..r3 and results come back in r0.
//
// Context offsets match ccbridge.go:
//
//	+0 event  +8 cwnd  +16 ssthresh  +24 mss  +32 acked
//	+40 rtt_us  +48 now_us  +56.. scratch

// NewRenoSrc is RFC 5681 AIMD: slow start, 1-MSS-per-window congestion
// avoidance (scratch0 = byte accumulator), halving on loss, collapse on
// RTO.
const NewRenoSrc = `
        mov   r9, r1
        ldxdw r2, [r9+0]
        jeq   r2, 2, loss
        jeq   r2, 3, rto
; ---- ack ----
        ldxdw r3, [r9+8]        ; cwnd
        ldxdw r4, [r9+16]       ; ssthresh
        ldxdw r5, [r9+32]       ; acked bytes
        jge   r3, r4, ca
        add   r3, r5            ; slow start: cwnd += acked
        stxdw [r9+8], r3
        exit
ca:     ldxdw r6, [r9+56]       ; accumulator
        add   r6, r5
        jge   r6, r3, bump
        stxdw [r9+56], r6
        exit
bump:   sub   r6, r3
        stxdw [r9+56], r6
        ldxdw r7, [r9+24]       ; mss
        add   r3, r7
        stxdw [r9+8], r3
        exit
; ---- loss: ssthresh = cwnd = max(cwnd/2, 2*mss) ----
loss:   ldxdw r1, [r9+8]
        div   r1, 2
        ldxdw r2, [r9+24]
        mul   r2, 2
        call  max
        stxdw [r9+16], r0
        stxdw [r9+8], r0
        stdw  [r9+56], 0
        exit
; ---- rto: ssthresh = max(cwnd/2, 2*mss); cwnd = mss ----
rto:    ldxdw r1, [r9+8]
        div   r1, 2
        ldxdw r2, [r9+24]
        mul   r2, 2
        call  max
        stxdw [r9+16], r0
        ldxdw r7, [r9+24]
        stxdw [r9+8], r7
        stdw  [r9+56], 0
        exit
`

// CubicSrc is RFC 8312 CUBIC in 10-bit fixed point (windows in
// segments*1024, C = 410/1024 ≈ 0.4, beta = 717/1024 ≈ 0.7). Scratch:
//
//	s0 (+56) wMax, scaled segments
//	s1 (+64) epoch start, ms
//	s2 (+72) epoch-started flag
//	s3 (+80) K, ms
//
// This is the program the Fig. 12 server ships to repair Vegas-vs-CUBIC
// unfairness.
const CubicSrc = `
        mov   r9, r1
        ldxdw r2, [r9+0]
        jeq   r2, 2, loss
        jeq   r2, 3, rto
; ---- ack ----
        ldxdw r3, [r9+8]        ; cwnd
        ldxdw r4, [r9+16]       ; ssthresh
        ldxdw r5, [r9+32]       ; acked
        jge   r3, r4, ca
        add   r3, r5            ; slow start
        stxdw [r9+8], r3
        exit
ca:     ; curS = cwnd * 1024 / mss
        mov   r1, r3
        mov   r2, 1024
        ldxdw r3, [r9+24]
        call  mul_div
        mov   r6, r0            ; r6 = curS
        ldxdw r2, [r9+72]       ; epoch flag
        jne   r2, 0, epoch_ok
        ; start a new epoch
        ldxdw r2, [r9+48]       ; now_us
        div   r2, 1000
        stxdw [r9+64], r2       ; epoch start ms
        stdw  [r9+72], 1
        ldxdw r7, [r9+56]       ; wMaxS
        jsgt  r7, r6, compute_k
        stxdw [r9+56], r6       ; wMax = cur (we grew past it)
        stdw  [r9+80], 0        ; K = 0
        ja    epoch_ok
compute_k:
        mov   r1, r7
        sub   r1, r6            ; dW = wMaxS - curS
        mov   r2, 1000000000
        mov   r3, 410           ; C scaled
        call  mul_div           ; r0 = dW * 1e9 / CS
        mov   r1, r0
        call  cbrt              ; r0 = K in ms
        stxdw [r9+80], r0
epoch_ok:
        ; t = now_ms + rtt_ms - epoch_ms - K
        ldxdw r2, [r9+48]
        div   r2, 1000
        ldxdw r3, [r9+40]
        div   r3, 1000
        add   r2, r3
        ldxdw r3, [r9+64]
        sub   r2, r3
        ldxdw r3, [r9+80]
        sub   r2, r3            ; r2 = t - K (ms, signed)
        ; cube = (t-K)^3 (signed)
        mov   r7, r2
        mul   r7, r2
        mul   r7, r2            ; r7 = (t-K)^3
        mov   r1, r7
        mov   r2, 410
        mov   r3, 1000000000
        call  mul_div           ; r0 = C*(t-K)^3/1e9, scaled segments
        ldxdw r7, [r9+56]
        add   r0, r7            ; target = wMax + term
        ; if target > curS grow proportionally, else tiny growth
        jsgt  r0, r6, grow
        ; plateau: cwnd += acked * 1024 / (100 * curS)  (in bytes via mss)
        ldxdw r1, [r9+32]
        mov   r2, 10
        mov   r3, r6
        call  mul_div           ; acked*10/curS  (~acked/(100*seg))
        ldxdw r3, [r9+8]
        add   r3, r0
        stxdw [r9+8], r3
        exit
grow:   ; inc = (target - curS) * acked / curS   (bytes)
        mov   r1, r0
        sub   r1, r6
        ldxdw r2, [r9+32]
        mov   r3, r6
        call  mul_div
        ldxdw r3, [r9+8]
        add   r3, r0
        stxdw [r9+8], r3
        exit
; ---- loss ----
loss:   ldxdw r3, [r9+8]
        mov   r1, r3
        mov   r2, 1024
        ldxdw r3, [r9+24]
        call  mul_div
        mov   r6, r0            ; curS
        ldxdw r7, [r9+56]       ; wMaxS
        jsgt  r7, r6, fastconv
        stxdw [r9+56], r6       ; wMax = cur
        ja    reduce
fastconv:
        ; fast convergence: wMax = cur * (1+beta)/2 = cur * 870/1024
        mov   r1, r6
        mov   r2, 870
        mov   r3, 1024
        call  mul_div
        stxdw [r9+56], r0
reduce: ; cwnd = max(cwnd * 717/1024, 2*mss)
        ldxdw r1, [r9+8]
        mov   r2, 717
        mov   r3, 1024
        call  mul_div
        mov   r1, r0
        ldxdw r2, [r9+24]
        mul   r2, 2
        call  max
        stxdw [r9+8], r0
        stxdw [r9+16], r0
        stdw  [r9+72], 0        ; reset epoch
        exit
; ---- rto ----
rto:    ldxdw r3, [r9+8]
        mov   r1, r3
        mov   r2, 1024
        ldxdw r3, [r9+24]
        call  mul_div
        stxdw [r9+56], r0       ; wMax = cur
        ldxdw r1, [r9+8]
        div   r1, 2
        ldxdw r2, [r9+24]
        mul   r2, 2
        call  max
        stxdw [r9+16], r0
        ldxdw r7, [r9+24]
        stxdw [r9+8], r7
        stdw  [r9+72], 0
        exit
`

// VegasSrc is delay-based TCP Vegas. Scratch:
//
//	s0 (+56) baseRTT us (0 = none)
//	s1 (+64) minRTT us in current window (0 = none)
//	s2 (+72) acked-bytes accumulator
const VegasSrc = `
        mov   r9, r1
        ldxdw r2, [r9+0]
        jeq   r2, 2, loss
        jeq   r2, 3, rto
; ---- ack ----
        ldxdw r5, [r9+40]       ; rtt sample
        jeq   r5, 0, no_sample
        ldxdw r6, [r9+56]       ; baseRTT
        jeq   r6, 0, set_base
        jge   r5, r6, base_ok
set_base:
        stxdw [r9+56], r5
base_ok:
        ldxdw r6, [r9+64]       ; minRTT
        jeq   r6, 0, set_min
        jge   r5, r6, no_sample
set_min:
        stxdw [r9+64], r5
no_sample:
        ldxdw r6, [r9+72]       ; accumulator
        ldxdw r5, [r9+32]
        add   r6, r5
        ldxdw r3, [r9+8]        ; cwnd
        jge   r6, r3, estimate
        stxdw [r9+72], r6
        exit
estimate:
        sub   r6, r3
        stxdw [r9+72], r6
        ldxdw r6, [r9+64]       ; minRTT
        jeq   r6, 0, reno_grow
        ldxdw r7, [r9+56]       ; baseRTT
        jeq   r7, 0, reno_grow
        ; diffS = curSeg_scaled * (min - base) / min, scale 1024
        mov   r1, r3
        mov   r2, 1024
        ldxdw r3, [r9+24]
        call  mul_div           ; r0 = curS
        mov   r8, r0
        mov   r1, r6
        sub   r1, r7            ; min - base
        mov   r2, r8
        mov   r3, r6
        call  mul_div           ; r0 = diff scaled (segments*1024)
        stdw  [r9+64], 0        ; reset window minRTT
        ldxdw r3, [r9+8]        ; cwnd (reload)
        ldxdw r4, [r9+16]       ; ssthresh
        jge   r3, r4, vegas_ca
        ; slow start: exit when diff > gamma (1 seg = 1024)
        jsgt  r0, 1024, ss_exit
        ldxdw r5, [r9+32]
        add   r3, r5
        stxdw [r9+8], r3
        exit
ss_exit:
        stxdw [r9+16], r3       ; ssthresh = cwnd
        exit
vegas_ca:
        jslt  r0, 2048, inc_win ; diff < alpha (2 segs)
        jsgt  r0, 4096, dec_win ; diff > beta (4 segs)
        exit
inc_win:
        ldxdw r7, [r9+24]
        add   r3, r7
        stxdw [r9+8], r3
        exit
dec_win:
        ldxdw r7, [r9+24]
        sub   r3, r7
        mov   r1, r3
        mov   r2, r7
        mul   r2, 2
        call  max
        stxdw [r9+8], r0
        exit
reno_grow:
        ldxdw r7, [r9+24]
        add   r3, r7
        stxdw [r9+8], r3
        exit
; ---- loss ----
loss:   ldxdw r1, [r9+8]
        div   r1, 2
        ldxdw r2, [r9+24]
        mul   r2, 2
        call  max
        stxdw [r9+16], r0
        stxdw [r9+8], r0
        stdw  [r9+72], 0
        exit
; ---- rto ----
rto:    ldxdw r1, [r9+8]
        div   r1, 2
        ldxdw r2, [r9+24]
        mul   r2, 2
        call  max
        stxdw [r9+16], r0
        ldxdw r7, [r9+24]
        stxdw [r9+8], r7
        stdw  [r9+72], 0
        stdw  [r9+56], 0        ; path may have changed: forget baseRTT
        exit
`

// Program returns the encoded bytecode for a built-in program name.
func Program(name string) []byte {
	switch name {
	case "cubic":
		return Encode(MustAssemble(CubicSrc))
	case "vegas":
		return Encode(MustAssemble(VegasSrc))
	default:
		return Encode(MustAssemble(NewRenoSrc))
	}
}
