// Package ebpfvm implements the execution substrate for the paper's §4.4:
// congestion-control programs shipped as bytecode over the encrypted
// TCPLS session and attached to a live connection. Linux attaches real
// eBPF to the kernel TCP stack; this repository substitutes a
// self-contained register VM with the same shape — 8-byte fixed
// instructions, eleven 64-bit registers, a frame pointer, bounded stack,
// helper calls, and a static verifier run before attachment — so "code
// crosses the wire, is validated, and swaps the congestion controller
// mid-session" is exercised for real (see DESIGN.md).
//
// The VM is general-purpose; the congestion-control bridge (ccbridge.go)
// maps VM programs onto the cc.Algorithm interface used by the simulated
// TCP stack.
package ebpfvm

import (
	"errors"
	"fmt"

	"tcpls/internal/wire"
)

// Register file: r0 is the return/scratch register, r1-r5 are arguments
// and caller-saved scratch, r6-r9 callee scratch, r10 the read-only
// frame pointer.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	numRegs
)

// Opcodes. ALU operations are 64-bit; Div/Mod/Arsh and the Js* jumps are
// signed, everything else unsigned (matching how the CC programs use
// them). Imm forms carry a 32-bit immediate sign-extended to 64 bits.
const (
	OpMovImm uint8 = iota + 1
	OpMovReg
	OpAddImm
	OpAddReg
	OpSubImm
	OpSubReg
	OpMulImm
	OpMulReg
	OpDivImm // signed; divide-by-zero traps
	OpDivReg
	OpModImm
	OpModReg
	OpAndImm
	OpAndReg
	OpOrImm
	OpOrReg
	OpXorImm
	OpXorReg
	OpLshImm
	OpRshImm // logical
	OpArshImm
	OpNeg

	OpLdxDW // dst = *(u64*)(src + off)
	OpStxDW // *(u64*)(dst + off) = src
	OpStDW  // *(u64*)(dst + off) = imm

	OpJa
	OpJeqImm
	OpJeqReg
	OpJneImm
	OpJneReg
	OpJgtImm // unsigned
	OpJgtReg
	OpJgeImm
	OpJgeReg
	OpJltImm
	OpJltReg
	OpJleImm
	OpJleReg
	OpJsgtImm // signed
	OpJsgtReg
	OpJsltImm
	OpJsltReg

	OpCall
	OpExit

	opMax
)

// Instruction is one fixed-size VM instruction.
type Instruction struct {
	Op  uint8
	Dst uint8
	Src uint8
	Off int16
	Imm int32
}

// InstructionSize is the wire size of one encoded instruction.
const InstructionSize = 8

// Encode serializes a program to the byte string carried in TCPLS BPF_CC
// records.
func Encode(prog []Instruction) []byte {
	out := make([]byte, 0, len(prog)*InstructionSize)
	for _, ins := range prog {
		// dst and src share one byte, nibble-packed as in kernel eBPF.
		out = append(out, ins.Op, ins.Dst<<4|ins.Src&0x0f)
		out = append(out, byte(uint16(ins.Off)>>8), byte(uint16(ins.Off)))
		out = wire.AppendUint32(out, uint32(ins.Imm))
	}
	return out
}

// ErrBadProgram is the typed reject for malformed wire-format programs
// (test with errors.Is). Hostile input reaches Decode straight off the
// BPF_CC reassembly path, so rejects must be classifiable, never a
// panic.
var ErrBadProgram = errors.New("ebpfvm: bad program encoding")

// Decode parses an encoded program.
func Decode(b []byte) ([]Instruction, error) {
	if len(b)%InstructionSize != 0 {
		return nil, fmt.Errorf("%w: length %d not a multiple of %d", ErrBadProgram, len(b), InstructionSize)
	}
	prog := make([]Instruction, 0, len(b)/InstructionSize)
	for i := 0; i < len(b); i += InstructionSize {
		prog = append(prog, Instruction{
			Op:  b[i],
			Dst: b[i+1] >> 4,
			Src: b[i+1] & 0x0f,
			Off: int16(uint16(b[i+2])<<8 | uint16(b[i+3])),
			Imm: int32(wire.Uint32(b[i+4 : i+8])),
		})
	}
	return prog, nil
}

// Virtual address layout: the context region and the stack live at
// distinct high bases so runtime bounds checks can classify a pointer.
const (
	ctxBase   uint64 = 0x10000000
	stackBase uint64 = 0x20000000
	// StackSize matches the kernel eBPF stack budget.
	StackSize = 512
)

// Runtime limits.
const (
	// MaxInstructions bounds a single invocation, standing in for the
	// kernel verifier's complexity budget.
	MaxInstructions = 100000
	// MaxProgramLen bounds program size.
	MaxProgramLen = 4096
)

// Execution errors.
var (
	ErrDivideByZero   = errors.New("ebpfvm: divide by zero")
	ErrOutOfBounds    = errors.New("ebpfvm: memory access out of bounds")
	ErrBudgetExceeded = errors.New("ebpfvm: instruction budget exceeded")
	ErrBadHelper      = errors.New("ebpfvm: unknown helper")
)

// Helper IDs callable with OpCall, mirroring kernel helper functions.
// Arguments in r1..r3, result in r0.
const (
	// HelperCbrt: r0 = signed integer cube root of r1.
	HelperCbrt = 1
	// HelperMulDiv: r0 = r1 * r2 / r3 with a 128-bit intermediate
	// (fixed-point workhorse; traps on r3 == 0).
	HelperMulDiv = 2
	// HelperMax / HelperMin: signed comparisons of r1, r2.
	HelperMax = 3
	HelperMin = 4
)

// VM executes one verified program against a context buffer.
type VM struct {
	prog  []Instruction
	stack [StackSize]byte
}

// New verifies and loads a program.
func New(prog []Instruction) (*VM, error) {
	if err := Verify(prog); err != nil {
		return nil, err
	}
	return &VM{prog: prog}, nil
}

// NewFromBytes decodes, verifies, and loads a wire-format program.
func NewFromBytes(b []byte) (*VM, error) {
	prog, err := Decode(b)
	if err != nil {
		return nil, err
	}
	return New(prog)
}

// Run executes the program with r1 pointing at ctx. It returns r0.
// ctx is read-write: programs persist state by writing to it.
func (vm *VM) Run(ctx []byte) (uint64, error) {
	var r [numRegs]uint64
	r[R1] = ctxBase
	r[R10] = stackBase + StackSize

	load := func(addr uint64) (uint64, error) {
		switch {
		case addr >= ctxBase && addr+8 <= ctxBase+uint64(len(ctx)):
			return wire.Uint64(ctx[addr-ctxBase:]), nil
		case addr >= stackBase && addr+8 <= stackBase+StackSize:
			return wire.Uint64(vm.stack[addr-stackBase:]), nil
		}
		return 0, ErrOutOfBounds
	}
	store := func(addr, val uint64) error {
		switch {
		case addr >= ctxBase && addr+8 <= ctxBase+uint64(len(ctx)):
			wire.PutUint64(ctx[addr-ctxBase:], val)
			return nil
		case addr >= stackBase && addr+8 <= stackBase+StackSize:
			wire.PutUint64(vm.stack[addr-stackBase:], val)
			return nil
		}
		return ErrOutOfBounds
	}

	pc := 0
	for steps := 0; ; steps++ {
		if steps >= MaxInstructions {
			return 0, ErrBudgetExceeded
		}
		ins := vm.prog[pc]
		imm := uint64(int64(ins.Imm)) // sign-extended
		switch ins.Op {
		case OpMovImm:
			r[ins.Dst] = imm
		case OpMovReg:
			r[ins.Dst] = r[ins.Src]
		case OpAddImm:
			r[ins.Dst] += imm
		case OpAddReg:
			r[ins.Dst] += r[ins.Src]
		case OpSubImm:
			r[ins.Dst] -= imm
		case OpSubReg:
			r[ins.Dst] -= r[ins.Src]
		case OpMulImm:
			r[ins.Dst] *= imm
		case OpMulReg:
			r[ins.Dst] *= r[ins.Src]
		case OpDivImm, OpDivReg, OpModImm, OpModReg:
			d := int64(imm)
			if ins.Op == OpDivReg || ins.Op == OpModReg {
				d = int64(r[ins.Src])
			}
			if d == 0 {
				return 0, ErrDivideByZero
			}
			if ins.Op == OpDivImm || ins.Op == OpDivReg {
				r[ins.Dst] = uint64(int64(r[ins.Dst]) / d)
			} else {
				r[ins.Dst] = uint64(int64(r[ins.Dst]) % d)
			}
		case OpAndImm:
			r[ins.Dst] &= imm
		case OpAndReg:
			r[ins.Dst] &= r[ins.Src]
		case OpOrImm:
			r[ins.Dst] |= imm
		case OpOrReg:
			r[ins.Dst] |= r[ins.Src]
		case OpXorImm:
			r[ins.Dst] ^= imm
		case OpXorReg:
			r[ins.Dst] ^= r[ins.Src]
		case OpLshImm:
			r[ins.Dst] <<= uint(ins.Imm) & 63
		case OpRshImm:
			r[ins.Dst] >>= uint(ins.Imm) & 63
		case OpArshImm:
			r[ins.Dst] = uint64(int64(r[ins.Dst]) >> (uint(ins.Imm) & 63))
		case OpNeg:
			r[ins.Dst] = uint64(-int64(r[ins.Dst]))

		case OpLdxDW:
			v, err := load(r[ins.Src] + uint64(int64(ins.Off)))
			if err != nil {
				return 0, err
			}
			r[ins.Dst] = v
		case OpStxDW:
			if err := store(r[ins.Dst]+uint64(int64(ins.Off)), r[ins.Src]); err != nil {
				return 0, err
			}
		case OpStDW:
			if err := store(r[ins.Dst]+uint64(int64(ins.Off)), imm); err != nil {
				return 0, err
			}

		case OpJa:
			pc += int(ins.Off)
		case OpJeqImm, OpJeqReg, OpJneImm, OpJneReg,
			OpJgtImm, OpJgtReg, OpJgeImm, OpJgeReg,
			OpJltImm, OpJltReg, OpJleImm, OpJleReg,
			OpJsgtImm, OpJsgtReg, OpJsltImm, OpJsltReg:
			rhs := imm
			switch ins.Op {
			case OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg, OpJsgtReg, OpJsltReg:
				rhs = r[ins.Src]
			}
			lhs := r[ins.Dst]
			var taken bool
			switch ins.Op {
			case OpJeqImm, OpJeqReg:
				taken = lhs == rhs
			case OpJneImm, OpJneReg:
				taken = lhs != rhs
			case OpJgtImm, OpJgtReg:
				taken = lhs > rhs
			case OpJgeImm, OpJgeReg:
				taken = lhs >= rhs
			case OpJltImm, OpJltReg:
				taken = lhs < rhs
			case OpJleImm, OpJleReg:
				taken = lhs <= rhs
			case OpJsgtImm, OpJsgtReg:
				taken = int64(lhs) > int64(rhs)
			case OpJsltImm, OpJsltReg:
				taken = int64(lhs) < int64(rhs)
			}
			if taken {
				pc += int(ins.Off)
			}

		case OpCall:
			v, err := callHelper(ins.Imm, r[R1], r[R2], r[R3])
			if err != nil {
				return 0, err
			}
			r[R0] = v
		case OpExit:
			return r[R0], nil
		default:
			return 0, fmt.Errorf("ebpfvm: bad opcode %d at pc %d", ins.Op, pc)
		}
		pc++
	}
}

func callHelper(id int32, a, b, c uint64) (uint64, error) {
	switch id {
	case HelperCbrt:
		return uint64(icbrt(int64(a))), nil
	case HelperMulDiv:
		if c == 0 {
			return 0, ErrDivideByZero
		}
		return mulDiv(int64(a), int64(b), int64(c)), nil
	case HelperMax:
		if int64(a) > int64(b) {
			return a, nil
		}
		return b, nil
	case HelperMin:
		if int64(a) < int64(b) {
			return a, nil
		}
		return b, nil
	}
	return 0, fmt.Errorf("%w: %d", ErrBadHelper, id)
}

// icbrt computes the signed integer cube root.
func icbrt(x int64) int64 {
	neg := x < 0
	if neg {
		x = -x
	}
	// Binary search; x < 2^63 so root < 2^21.
	var lo, hi int64 = 0, 1 << 21
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid*mid*mid <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if neg {
		return -lo
	}
	return lo
}

// mulDiv computes a*b/c with a 128-bit intermediate, signed.
func mulDiv(a, b, c int64) uint64 {
	neg := false
	ua, ub, uc := a, b, c
	if ua < 0 {
		ua, neg = -ua, !neg
	}
	if ub < 0 {
		ub, neg = -ub, !neg
	}
	if uc < 0 {
		uc, neg = -uc, !neg
	}
	hi, lo := mul128(uint64(ua), uint64(ub))
	q := div128(hi, lo, uint64(uc))
	if neg {
		return uint64(-int64(q))
	}
	return q
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += t >> 32
	hi += aHi * bHi
	return hi, lo
}

func div128(hi, lo, d uint64) uint64 {
	if hi == 0 {
		return lo / d
	}
	// Long division, bit by bit (d fits in 64 bits; result truncated).
	var rem, q uint64
	for i := 127; i >= 0; i-- {
		var bit uint64
		if i >= 64 {
			bit = (hi >> (i - 64)) & 1
		} else {
			bit = (lo >> i) & 1
		}
		rem = rem<<1 | bit
		q <<= 1
		if rem >= d {
			rem -= d
			q |= 1
		}
	}
	return q
}
