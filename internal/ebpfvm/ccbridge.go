package ebpfvm

import (
	"time"

	"tcpls/internal/cc"
	"tcpls/internal/wire"
)

// Congestion-control context layout shared between the VM programs and
// the bridge. All fields are 8-byte little... network-order words
// accessed with ldxdw/stxdw. Scratch words persist across invocations,
// which is how programs keep algorithm state (like eBPF per-socket
// storage).
const (
	ctxEvent    = 0  // 1 = ack, 2 = loss, 3 = rto
	ctxCwnd     = 8  // bytes (read-write)
	ctxSsthresh = 16 // bytes (read-write)
	ctxMSS      = 24 // bytes
	ctxAcked    = 32 // bytes acked by this event
	ctxRTTus    = 40 // latest RTT sample, microseconds
	ctxNowUs    = 48 // current time, microseconds
	ctxScratch0 = 56 // 8 persistent scratch words: 56..112
	ctxLen      = 120
)

// CC event codes.
const (
	EventAck  = 1
	EventLoss = 2
	EventRTO  = 3
)

// CCProgram adapts a verified VM program to the cc.Algorithm interface,
// so a congestion controller received over a TCPLS session can be
// attached to a live (simulated) TCP connection — the paper's §4.4.
type CCProgram struct {
	name string
	vm   *VM
	ctx  [ctxLen]byte
	err  error // first execution error; controller freezes after
}

// NewCCProgram verifies bytecode and builds a controller with the given
// MSS and initial window.
func NewCCProgram(name string, bytecode []byte, mss int) (*CCProgram, error) {
	vm, err := NewFromBytes(bytecode)
	if err != nil {
		return nil, err
	}
	p := &CCProgram{name: name, vm: vm}
	p.put(ctxMSS, uint64(mss))
	p.put(ctxCwnd, uint64(cc.InitialWindowSegments*mss))
	p.put(ctxSsthresh, 1<<30)
	return p, nil
}

func (p *CCProgram) put(off int, v uint64) { wire.PutUint64(p.ctx[off:], v) }
func (p *CCProgram) get(off int) uint64    { return wire.Uint64(p.ctx[off:]) }

// Err returns the first runtime error, if any.
func (p *CCProgram) Err() error { return p.err }

func (p *CCProgram) run(event uint64, acked int, rtt, now time.Duration) {
	if p.err != nil {
		return
	}
	p.put(ctxEvent, event)
	p.put(ctxAcked, uint64(acked))
	p.put(ctxRTTus, uint64(rtt.Microseconds()))
	p.put(ctxNowUs, uint64(now.Microseconds()))
	if _, err := p.vm.Run(p.ctx[:]); err != nil {
		p.err = err
	}
	// Defensive floor: a buggy program cannot stall the connection.
	mss := p.get(ctxMSS)
	if p.get(ctxCwnd) < mss {
		p.put(ctxCwnd, mss)
	}
}

// Name implements cc.Algorithm.
func (p *CCProgram) Name() string { return p.name }

// OnAck implements cc.Algorithm.
func (p *CCProgram) OnAck(ackedBytes int, rtt time.Duration, now time.Duration) {
	p.run(EventAck, ackedBytes, rtt, now)
}

// OnLoss implements cc.Algorithm.
func (p *CCProgram) OnLoss(now time.Duration) { p.run(EventLoss, 0, 0, now) }

// OnRTO implements cc.Algorithm.
func (p *CCProgram) OnRTO(now time.Duration) { p.run(EventRTO, 0, 0, now) }

// Window implements cc.Algorithm.
func (p *CCProgram) Window() int { return int(p.get(ctxCwnd)) }

// SlowStart implements cc.Algorithm.
func (p *CCProgram) SlowStart() bool { return p.get(ctxCwnd) < p.get(ctxSsthresh) }

var _ cc.Algorithm = (*CCProgram)(nil)
