package ebpfvm

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedProgs returns small real programs as wire bytes for the seed
// corpus — the CC programs are the shapes actual traffic carries.
func fuzzSeedProgs() [][]byte {
	return [][]byte{
		Encode(nil),
		Encode([]Instruction{{Op: OpExit}}),
		Encode([]Instruction{{Op: OpMovImm, Dst: R0, Imm: 42}, {Op: OpExit}}),
		Encode([]Instruction{
			{Op: OpLdxDW, Dst: R2, Src: R1, Off: 0},
			{Op: OpAddImm, Dst: R2, Imm: 1},
			{Op: OpStxDW, Dst: R1, Src: R2, Off: 0},
			{Op: OpMovReg, Dst: R0, Src: R2},
			{Op: OpExit},
		}),
		Encode([]Instruction{
			{Op: OpMovImm, Dst: R1, Imm: 27},
			{Op: OpCall, Imm: HelperCbrt},
			{Op: OpExit},
		}),
	}
}

// FuzzDecode drives the wire-format program decoder — the parser
// sitting directly behind BPF_CC chunk reassembly, i.e. the first code
// that touches peer-controlled program bytes after the AEAD. Contract
// (PR-6 fuzzer pattern): never panic; rejects are the typed
// ErrBadProgram; every accepted program re-encodes byte-exactly through
// Encode; and the verifier plus a bounded Run must terminate without
// panicking whatever the decoded instructions say.
func FuzzDecode(f *testing.F) {
	for _, p := range fuzzSeedProgs() {
		f.Add(p)
	}
	f.Add([]byte{1, 2, 3})                // not a multiple of 8
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // garbage opcodes
	f.Add(bytes.Repeat([]byte{0x00}, 32)) // zero opcodes

	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := Decode(data)
		if err != nil {
			if prog != nil {
				t.Fatalf("Decode returned program AND error %v", err)
			}
			if !errors.Is(err, ErrBadProgram) {
				t.Fatalf("Decode error not ErrBadProgram: %v", err)
			}
			return
		}
		re := Encode(prog)
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in:  %x\n out: %x", data, re)
		}
		// Verify must classify without panicking; a program it accepts
		// must run to a clean termination (exit, trap, or budget) — the
		// attachment path executes exactly this sequence.
		vm, err := New(prog)
		if err != nil {
			return
		}
		ctx := make([]byte, 64)
		_, _ = vm.Run(ctx)
	})
}
