// Package wire provides byte-order helpers shared by the handshake and
// record layers: big-endian integer accessors, TLS-style length-prefixed
// vectors, and append-based writers that avoid intermediate allocations.
//
// All readers operate on a *Reader cursor so callers can parse a message
// with a single bounds-checked pass; all writers append to a caller-owned
// slice so serialization composes without copies.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a read runs past the end of the buffer.
var ErrTruncated = errors.New("wire: truncated input")

// ErrVectorTooLong is returned when a value exceeds its length prefix.
var ErrVectorTooLong = errors.New("wire: vector exceeds length prefix")

// AppendUint8 appends a single byte to b.
func AppendUint8(b []byte, v uint8) []byte { return append(b, v) }

// AppendUint16 appends v in network byte order.
func AppendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

// AppendUint24 appends the low 24 bits of v in network byte order.
// TLS handshake messages carry 24-bit lengths.
func AppendUint24(b []byte, v uint32) []byte {
	return append(b, byte(v>>16), byte(v>>8), byte(v))
}

// AppendUint32 appends v in network byte order.
func AppendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendUint64 appends v in network byte order.
func AppendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendVector8 appends data with a 1-byte length prefix.
func AppendVector8(b, data []byte) []byte {
	if len(data) > 0xff {
		panic(fmt.Sprintf("wire: vector8 too long: %d", len(data)))
	}
	b = AppendUint8(b, uint8(len(data)))
	return append(b, data...)
}

// AppendVector16 appends data with a 2-byte length prefix.
func AppendVector16(b, data []byte) []byte {
	if len(data) > 0xffff {
		panic(fmt.Sprintf("wire: vector16 too long: %d", len(data)))
	}
	b = AppendUint16(b, uint16(len(data)))
	return append(b, data...)
}

// AppendVector24 appends data with a 3-byte length prefix.
func AppendVector24(b, data []byte) []byte {
	if len(data) > 0xffffff {
		panic(fmt.Sprintf("wire: vector24 too long: %d", len(data)))
	}
	b = AppendUint24(b, uint32(len(data)))
	return append(b, data...)
}

// Uint16 reads a big-endian uint16 from the start of b.
// The caller must guarantee len(b) >= 2.
func Uint16(b []byte) uint16 { return binary.BigEndian.Uint16(b) }

// Uint24 reads a big-endian 24-bit value from the start of b.
// The caller must guarantee len(b) >= 3.
func Uint24(b []byte) uint32 {
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}

// Uint32 reads a big-endian uint32 from the start of b.
func Uint32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

// Uint64 reads a big-endian uint64 from the start of b.
func Uint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// PutUint32 writes v at the start of b in network byte order.
func PutUint32(b []byte, v uint32) { binary.BigEndian.PutUint32(b, v) }

// PutUint64 writes v at the start of b in network byte order.
func PutUint64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }

// Reader is a bounds-checked cursor over a byte slice. All methods return
// ErrTruncated instead of panicking when the input is short, so a parser
// can check a single error after a run of reads.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// Empty reports whether the reader has consumed all input without error.
func (r *Reader) Empty() bool { return r.err == nil && r.off == len(r.b) }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	if r.err != nil || r.Len() < 1 {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Uint16 reads a big-endian uint16.
func (r *Reader) Uint16() uint16 {
	if r.err != nil || r.Len() < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

// Uint24 reads a big-endian 24-bit length.
func (r *Reader) Uint24() uint32 {
	if r.err != nil || r.Len() < 3 {
		r.fail()
		return 0
	}
	v := Uint24(r.b[r.off:])
	r.off += 3
	return v
}

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.Len() < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.err != nil || r.Len() < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Bytes reads exactly n bytes and returns a subslice of the input
// (no copy). Returns nil after an error.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil || n < 0 || r.Len() < n {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// Rest consumes and returns all remaining bytes.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	v := r.b[r.off:]
	r.off = len(r.b)
	return v
}

// Vector8 reads a 1-byte length prefix followed by that many bytes.
func (r *Reader) Vector8() []byte { return r.Bytes(int(r.Uint8())) }

// Vector16 reads a 2-byte length prefix followed by that many bytes.
func (r *Reader) Vector16() []byte { return r.Bytes(int(r.Uint16())) }

// Vector24 reads a 3-byte length prefix followed by that many bytes.
func (r *Reader) Vector24() []byte { return r.Bytes(int(r.Uint24())) }

// Skip discards n bytes.
func (r *Reader) Skip(n int) {
	if r.err != nil || n < 0 || r.Len() < n {
		r.fail()
		return
	}
	r.off += n
}
