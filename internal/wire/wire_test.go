package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAppendIntegers(t *testing.T) {
	b := AppendUint8(nil, 0xab)
	b = AppendUint16(b, 0x0102)
	b = AppendUint24(b, 0x030405)
	b = AppendUint32(b, 0x06070809)
	b = AppendUint64(b, 0x0a0b0c0d0e0f1011)
	want := []byte{
		0xab,
		0x01, 0x02,
		0x03, 0x04, 0x05,
		0x06, 0x07, 0x08, 0x09,
		0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10, 0x11,
	}
	if !bytes.Equal(b, want) {
		t.Fatalf("append mismatch: got % x want % x", b, want)
	}
}

func TestReaderRoundTrip(t *testing.T) {
	b := AppendUint8(nil, 7)
	b = AppendUint16(b, 0xbeef)
	b = AppendUint24(b, 0x123456)
	b = AppendUint32(b, 0xdeadbeef)
	b = AppendUint64(b, 1<<60)
	b = AppendVector8(b, []byte("abc"))
	b = AppendVector16(b, []byte("defg"))
	b = AppendVector24(b, []byte("hij"))

	r := NewReader(b)
	if got := r.Uint8(); got != 7 {
		t.Errorf("Uint8 = %d", got)
	}
	if got := r.Uint16(); got != 0xbeef {
		t.Errorf("Uint16 = %x", got)
	}
	if got := r.Uint24(); got != 0x123456 {
		t.Errorf("Uint24 = %x", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %x", got)
	}
	if got := r.Uint64(); got != 1<<60 {
		t.Errorf("Uint64 = %x", got)
	}
	if got := r.Vector8(); string(got) != "abc" {
		t.Errorf("Vector8 = %q", got)
	}
	if got := r.Vector16(); string(got) != "defg" {
		t.Errorf("Vector16 = %q", got)
	}
	if got := r.Vector24(); string(got) != "hij" {
		t.Errorf("Vector24 = %q", got)
	}
	if !r.Empty() {
		t.Errorf("reader not empty: %d left, err=%v", r.Len(), r.Err())
	}
}

func TestReaderTruncation(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Reader)
		in   []byte
	}{
		{"uint16", func(r *Reader) { r.Uint16() }, []byte{1}},
		{"uint24", func(r *Reader) { r.Uint24() }, []byte{1, 2}},
		{"uint32", func(r *Reader) { r.Uint32() }, []byte{1, 2, 3}},
		{"uint64", func(r *Reader) { r.Uint64() }, []byte{1, 2, 3, 4, 5, 6, 7}},
		{"vector8", func(r *Reader) { r.Vector8() }, []byte{5, 1, 2}},
		{"vector16", func(r *Reader) { r.Vector16() }, []byte{0, 9, 1}},
		{"vector24", func(r *Reader) { r.Vector24() }, []byte{0, 0, 4, 1}},
		{"bytes", func(r *Reader) { r.Bytes(3) }, []byte{1, 2}},
		{"skip", func(r *Reader) { r.Skip(10) }, []byte{1}},
		{"empty-uint8", func(r *Reader) { r.Uint8() }, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(tc.in)
			tc.f(r)
			if r.Err() != ErrTruncated {
				t.Fatalf("err = %v, want ErrTruncated", r.Err())
			}
		})
	}
}

func TestReaderErrorSticks(t *testing.T) {
	r := NewReader([]byte{1})
	r.Uint32() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Further reads must return zero values without panicking.
	if v := r.Uint8(); v != 0 {
		t.Errorf("Uint8 after error = %d, want 0", v)
	}
	if v := r.Bytes(1); v != nil {
		t.Errorf("Bytes after error = %v, want nil", v)
	}
	if v := r.Rest(); v != nil {
		t.Errorf("Rest after error = %v, want nil", v)
	}
}

func TestBytesNoCopyAliasing(t *testing.T) {
	in := []byte{1, 2, 3, 4}
	r := NewReader(in)
	got := r.Bytes(2)
	in[0] = 9
	if got[0] != 9 {
		t.Error("Bytes should alias the input without copying")
	}
	// The returned slice must have capped capacity so appends don't clobber.
	got = append(got, 0xff)
	if in[2] == 0xff {
		t.Error("append to returned slice clobbered reader input")
	}
}

func TestRestAndOffset(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	r.Uint8()
	if r.Offset() != 1 {
		t.Fatalf("Offset = %d", r.Offset())
	}
	rest := r.Rest()
	if !bytes.Equal(rest, []byte{2, 3}) {
		t.Fatalf("Rest = %v", rest)
	}
	if !r.Empty() {
		t.Fatal("reader should be empty after Rest")
	}
}

func TestQuickUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendUint64(nil, v)
		return NewReader(b).Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVector16RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 0xffff {
			data = data[:0xffff]
		}
		b := AppendVector16(nil, data)
		r := NewReader(b)
		got := r.Vector16()
		return r.Err() == nil && bytes.Equal(got, data) && r.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUint24Bound(t *testing.T) {
	f := func(v uint32) bool {
		v &= 0xffffff
		b := AppendUint24(nil, v)
		return NewReader(b).Uint24() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendVectorPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized vector8")
		}
	}()
	AppendVector8(nil, make([]byte, 256))
}
