// Package reorder provides the efficient reordering heap TCPLS uses for
// coupled streams (paper §4.3): records arriving out of aggregation-
// sequence order are pushed on a min-heap and popped as the contiguous
// prefix fills in. In-sequence records bypass the heap entirely, which is
// what lets the receive path stay zero-copy when paths do not reorder.
package reorder

import "container/heap"

// Item is one out-of-order unit awaiting delivery.
type Item struct {
	Seq  uint64
	Data []byte
}

type itemHeap []Item

func (h itemHeap) Len() int            { return len(h) }
func (h itemHeap) Less(i, j int) bool  { return h[i].Seq < h[j].Seq }
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = Item{}
	*h = old[:n-1]
	return it
}

// Buffer reassembles a sequence of items into delivery order. Next is the
// sequence number of the item the consumer needs next.
type Buffer struct {
	next  uint64
	heap  itemHeap
	bytes int // buffered payload bytes, for accounting
}

// New returns a Buffer expecting firstSeq as its first item.
func New(firstSeq uint64) *Buffer { return &Buffer{next: firstSeq} }

// Next returns the next in-order sequence number the buffer expects.
func (b *Buffer) Next() uint64 { return b.next }

// Pending returns the number of items parked in the heap.
func (b *Buffer) Pending() int { return len(b.heap) }

// PendingBytes returns the payload bytes parked in the heap.
func (b *Buffer) PendingBytes() int { return b.bytes }

// Offer hands one item to the buffer. It returns the data that became
// deliverable, in order. The common case — item arrives in sequence and
// nothing is parked — returns the item's own slice without copying.
// Duplicates (seq < next, or already parked) are discarded; a duplicate
// of a parked item is detected at pop time, not push time, so Offer
// never scans the heap — under deep reorder the old per-Offer linear
// walk made the push path O(n²). The cost of lazy dedup is a transient
// double-count in Pending/PendingBytes while both copies sit parked.
func (b *Buffer) Offer(seq uint64, data []byte) [][]byte {
	if seq < b.next {
		return nil // duplicate of something already delivered
	}
	if seq == b.next && len(b.heap) == 0 {
		b.next++
		return [][]byte{data} // fast path: zero copy, no heap traffic
	}
	if seq > b.next {
		heap.Push(&b.heap, Item{Seq: seq, Data: data})
		b.bytes += len(data)
		return nil
	}
	// seq == next with parked items: deliver it plus the contiguous run,
	// discarding parked duplicates interleaved with the run as they
	// surface at the top of the heap.
	out := [][]byte{data}
	b.next++
	for len(b.heap) > 0 && b.heap[0].Seq <= b.next {
		it := heap.Pop(&b.heap).(Item)
		b.bytes -= len(it.Data)
		if it.Seq < b.next {
			continue // duplicate of something already delivered
		}
		out = append(out, it.Data)
		b.next++
	}
	return out
}

// Reset empties the buffer and restarts at firstSeq.
func (b *Buffer) Reset(firstSeq uint64) {
	b.next = firstSeq
	b.heap = b.heap[:0]
	b.bytes = 0
}
