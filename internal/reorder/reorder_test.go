package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func collect(b *Buffer, seq uint64, data []byte) [][]byte {
	return b.Offer(seq, data)
}

func TestInOrderFastPath(t *testing.T) {
	b := New(0)
	for i := uint64(0); i < 100; i++ {
		data := []byte{byte(i)}
		out := b.Offer(i, data)
		if len(out) != 1 || &out[0][0] != &data[0] {
			t.Fatalf("seq %d: in-order item not returned zero-copy", i)
		}
	}
	if b.Pending() != 0 {
		t.Fatal("heap grew on in-order delivery")
	}
}

func TestSimpleReorder(t *testing.T) {
	b := New(0)
	if out := b.Offer(1, []byte{1}); out != nil {
		t.Fatal("out-of-order item delivered early")
	}
	if b.Pending() != 1 || b.PendingBytes() != 1 {
		t.Fatalf("pending=%d bytes=%d", b.Pending(), b.PendingBytes())
	}
	out := b.Offer(0, []byte{0})
	if len(out) != 2 || out[0][0] != 0 || out[1][0] != 1 {
		t.Fatalf("got %v", out)
	}
	if b.Next() != 2 || b.Pending() != 0 || b.PendingBytes() != 0 {
		t.Fatalf("state after drain: next=%d pending=%d", b.Next(), b.Pending())
	}
}

func TestDuplicatesDiscarded(t *testing.T) {
	b := New(0)
	b.Offer(0, []byte{0})
	if out := b.Offer(0, []byte{0}); out != nil {
		t.Fatal("delivered duplicate")
	}
	b.Offer(2, []byte{2})
	if out := b.Offer(2, []byte{2}); out != nil {
		t.Fatal("parked duplicate accepted")
	}
	out := b.Offer(1, []byte{1})
	if len(out) != 2 {
		t.Fatalf("got %d items, want 2", len(out))
	}
}

func TestStaleParkedDuplicatesDropped(t *testing.T) {
	// Park 2 and 3, then deliver 1..3 via a retransmission burst that
	// also includes stale copies.
	b := New(1)
	b.Offer(3, []byte{3})
	b.Offer(2, []byte{2})
	out := b.Offer(1, []byte{1})
	if len(out) != 3 {
		t.Fatalf("got %d items", len(out))
	}
	for i, want := range []byte{1, 2, 3} {
		if out[i][0] != want {
			t.Fatalf("out[%d]=%d want %d", i, out[i][0], want)
		}
	}
}

func TestInterleavedDuplicatesInRun(t *testing.T) {
	// Parked duplicates (lazy dedup: Offer no longer scans the heap) must
	// not stall the contiguous run or corrupt the bytes accounting.
	b := New(1)
	b.Offer(2, []byte{2})
	b.Offer(2, []byte{2, 2}) // duplicate parks too, double-counting bytes
	b.Offer(4, []byte{4})
	b.Offer(3, []byte{3})
	b.Offer(3, []byte{3, 3})
	if b.Pending() != 5 || b.PendingBytes() != 7 {
		t.Fatalf("parked=%d bytes=%d, want 5/7 (duplicates double-count while parked)",
			b.Pending(), b.PendingBytes())
	}
	out := b.Offer(1, []byte{1})
	var got []byte
	for _, d := range out {
		got = append(got, d[0])
	}
	if string(got) != string([]byte{1, 2, 3, 4}) {
		t.Fatalf("delivered %v, want [1 2 3 4]", got)
	}
	if b.Pending() != 0 || b.PendingBytes() != 0 {
		t.Fatalf("after drain: parked=%d bytes=%d, want 0/0", b.Pending(), b.PendingBytes())
	}
}

func TestDuplicateOfDeliveredSeqDropsAtPop(t *testing.T) {
	// A duplicate parked behind a not-yet-delivered copy of the same seq
	// is discarded when it surfaces, never delivered twice.
	b := New(0)
	b.Offer(1, []byte{1})
	b.Offer(1, []byte{1})
	b.Offer(1, []byte{1})
	out := b.Offer(0, []byte{0})
	if len(out) != 2 || out[0][0] != 0 || out[1][0] != 1 {
		t.Fatalf("got %v, want [[0] [1]]", out)
	}
	if b.Pending() != 0 || b.PendingBytes() != 0 {
		t.Fatalf("dup copies leaked: parked=%d bytes=%d", b.Pending(), b.PendingBytes())
	}
}

func TestReset(t *testing.T) {
	b := New(0)
	b.Offer(5, []byte{5})
	b.Reset(10)
	if b.Next() != 10 || b.Pending() != 0 {
		t.Fatal("reset failed")
	}
	out := b.Offer(10, []byte{10})
	if len(out) != 1 {
		t.Fatal("offer after reset failed")
	}
}

func TestRandomPermutationsDeliverInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		perm := rng.Perm(n)
		b := New(0)
		var delivered []byte
		for _, p := range perm {
			for _, d := range b.Offer(uint64(p), []byte{byte(p)}) {
				delivered = append(delivered, d[0])
			}
		}
		if len(delivered) != n {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(delivered), n)
		}
		for i := 0; i < n; i++ {
			if delivered[i] != byte(i) {
				t.Fatalf("trial %d: delivered[%d]=%d", trial, i, delivered[i])
			}
		}
	}
}

func TestQuickNeverDeliversOutOfOrder(t *testing.T) {
	f := func(seqs []uint16) bool {
		b := New(0)
		last := -1
		for _, s := range seqs {
			seq := uint64(s % 64)
			for _, d := range b.Offer(seq, []byte{byte(seq)}) {
				if int(d[0]) <= last {
					return false
				}
				last = int(d[0])
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInOrder(b *testing.B) {
	buf := New(0)
	data := make([]byte, 16384)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		buf.Offer(uint64(i), data)
	}
}

func BenchmarkDeepReorder(b *testing.B) {
	// Worst-case reorder depth: each block of deepReorderD records
	// arrives fully reversed, so the heap deepens to D-1 before the gap
	// fills and the whole block drains. The old Offer-side duplicate
	// scan walked the heap on every push — O(D) per record, O(D²) per
	// block; without it each push is O(log D).
	const D = 4096
	buf := New(0)
	data := make([]byte, 256)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		block := uint64(i/D) * D
		buf.Offer(block+uint64(D-1-i%D), data)
	}
}

func BenchmarkTwoPathInterleave(b *testing.B) {
	// Two paths delivering alternating blocks out of order — the Fig. 11
	// aggregation pattern. Within each block of 8, the even sequence
	// numbers (fast path) land before the odd ones (slow path).
	buf := New(0)
	data := make([]byte, 16384)
	b.SetBytes(int64(len(data)))
	order := [8]uint64{0, 2, 4, 6, 1, 3, 5, 7}
	for i := 0; i < b.N; i++ {
		seq := uint64(i/8)*8 + order[i%8]
		buf.Offer(seq, data)
	}
}
