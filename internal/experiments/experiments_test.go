package experiments

import (
	"testing"
	"time"
)

// These tests assert the figure *shapes* the paper reports — who wins,
// by roughly what factor, where the crossovers are — not absolute
// numbers (EXPERIMENTS.md records both). They are the repository's
// top-level integration tests: every substrate participates.

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

func TestFig7Shape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("throughput ratios are meaningless under the race detector")
	}
	rows, err := Fig7(1500, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	byStack := map[string]Fig7Row{}
	for _, r := range rows {
		byStack[r.Stack] = r
	}
	tls := byStack["tls-tcp"].Gbps
	tcpls := byStack["tcpls"].Gbps
	failover := byStack["tcpls-failover"].Gbps
	multipath := byStack["tcpls-multipath"].Gbps
	quicly := byStack["quicly"].Gbps
	msquic := byStack["msquic"].Gbps
	mvfst := byStack["mvfst"].Gbps

	// These are wall-clock CPU measurements and the test binary may
	// share the machine with other packages' tests, so the margins are
	// generous; `go test -bench` and cmd/tcpls-experiments report the
	// precise ratios on an idle machine.
	//
	// Paper §5.1: TCPLS ≈ TLS/TCP (same record pipeline).
	if tcpls < tls*0.40 {
		t.Errorf("tcpls %.2f far below tls-tcp %.2f", tcpls, tls)
	}
	// Failover and multipath cost extra work below the base engine
	// (Fig. 7: 10.44 -> 9.66 -> 8.8 Gbps).
	if failover >= tcpls*1.05 {
		t.Errorf("failover %.2f not below base %.2f", failover, tcpls)
	}
	if multipath >= tcpls*1.05 {
		t.Errorf("multipath %.2f not below base %.2f", multipath, tcpls)
	}
	// "TCPLS with TSO is twice faster" than the fastest QUIC.
	if tcpls < 1.5*quicly {
		t.Errorf("tcpls %.2f not ~2x quicly %.2f", tcpls, quicly)
	}
	// QUIC implementation ordering.
	if !(quicly > msquic && msquic > mvfst) {
		t.Errorf("QUIC ordering wrong: quicly=%.2f msquic=%.2f mvfst=%.2f", quicly, msquic, mvfst)
	}
}

func TestFig7JumboShape(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("throughput ratios are meaningless under the race detector")
	}
	rows, err := Fig7(9000, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	var tcpls, quicly float64
	for _, r := range rows {
		switch r.Stack {
		case "tcpls":
			tcpls = r.Gbps
		case "quicly-jumbo":
			quicly = r.Gbps
		}
	}
	// At 9000 MTU TCPLS still leads quicly (the paper's jumbo bars).
	if tcpls <= quicly {
		t.Errorf("jumbo: tcpls %.2f not above quicly %.2f", tcpls, quicly)
	}
}

func TestFig8BlackholeShape(t *testing.T) {
	r, err := Fig8("blackhole")
	if err != nil {
		t.Fatal(err)
	}
	// TCPLS: UserTimeout + join + replay lands well under 2 s (paper:
	// ≈1 s); it must not be instant (the UTO must actually elapse).
	if r.TCPLSRecovery < 250*time.Millisecond || r.TCPLSRecovery > 2*time.Second {
		t.Errorf("TCPLS blackhole recovery %v outside [0.25s, 2s]", r.TCPLSRecovery)
	}
	// MPTCP needs backed-off RTOs: slower than TCPLS.
	if r.MPTCPRecovery <= r.TCPLSRecovery {
		t.Errorf("MPTCP recovery %v not slower than TCPLS %v", r.MPTCPRecovery, r.TCPLSRecovery)
	}
	// Both resume at full rate afterwards.
	if after := r.TCPLS.MeanBetween(sec(6), sec(15)); after < 10 {
		t.Errorf("TCPLS post-failover goodput %.1f Mbps", after)
	}
	if after := r.MPTCP.MeanBetween(sec(6), sec(15)); after < 10 {
		t.Errorf("MPTCP post-failover goodput %.1f Mbps", after)
	}
}

func TestFig8RSTShape(t *testing.T) {
	r, err := Fig8("rst")
	if err != nil {
		t.Fatal(err)
	}
	// "Upon reception of a TCP RST, both TCPLS and MPTCP react fast."
	if r.TCPLSRecovery > time.Second {
		t.Errorf("TCPLS RST recovery %v, want < 1s", r.TCPLSRecovery)
	}
	if r.MPTCPRecovery > time.Second {
		t.Errorf("MPTCP RST recovery %v, want < 1s", r.MPTCPRecovery)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if r.TCPLSDone == 0 {
		t.Fatal("TCPLS never completed the 60 MB download")
	}
	if r.MPTCPDone == 0 {
		t.Fatal("MPTCP never completed the 60 MB download")
	}
	// Fig. 9's claim: TCPLS completes the transfer substantially faster
	// under rotating outages.
	if float64(r.MPTCPDone) < 1.4*float64(r.TCPLSDone) {
		t.Errorf("MPTCP %v not substantially slower than TCPLS %v", r.MPTCPDone, r.TCPLSDone)
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if r.Done == 0 {
		t.Fatal("migration download never completed")
	}
	pre := r.Goodput.MeanBetween(sec(2), sec(6))
	mid := r.Goodput.MeanBetween(sec(9), sec(12))
	post := r.Goodput.MeanBetween(sec(15), sec(18))
	// Goodput is sustained through both migrations (no dead window).
	if mid < pre*0.5 || post < pre*0.5 {
		t.Errorf("goodput collapsed across migrations: pre=%.1f mid=%.1f post=%.1f", pre, mid, post)
	}
	// The migration window shows the temporary aggregation peak.
	peak := 0.0
	for _, p := range r.Goodput.Points {
		if p.T >= r.Migrations[0] && p.T < r.Migrations[0]+sec(3) && p.Mbps > peak {
			peak = p.Mbps
		}
	}
	if peak < pre*1.2 {
		t.Errorf("no aggregation peak in migration window: peak=%.1f pre=%.1f", peak, pre)
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(16368)
	if err != nil {
		t.Fatal(err)
	}
	tcplsPre := r.TCPLS.MeanBetween(sec(2), sec(5))
	tcplsPost := r.TCPLS.MeanBetween(sec(9), sec(16))
	mptcpPost := r.MPTCP.MeanBetween(sec(9), sec(16))
	// Aggregation: both stacks go well beyond a single 25 Mbps path.
	if tcplsPost < tcplsPre*1.5 {
		t.Errorf("TCPLS aggregation %.1f -> %.1f: no 1.5x gain", tcplsPre, tcplsPost)
	}
	if mptcpPost < 25 {
		t.Errorf("MPTCP aggregated only %.1f Mbps", mptcpPost)
	}
	// "TCPLS offers a bandwidth aggregation service similar to MPTCP":
	// within 25% of each other.
	if tcplsPost < mptcpPost*0.75 || mptcpPost < tcplsPost*0.75 {
		t.Errorf("aggregation mismatch: tcpls=%.1f mptcp=%.1f", tcplsPost, mptcpPost)
	}
	if r.TCPLSDone == 0 || r.MPTCPDone == 0 {
		t.Error("a transfer did not complete")
	}
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Swapped {
		t.Fatal("eBPF program never attached")
	}
	unfairV := r.Vegas.MeanBetween(sec(10), sec(15))
	unfairC := r.Cubic.MeanBetween(sec(10), sec(15))
	lateV := r.Vegas.MeanBetween(sec(40), sec(50))
	lateC := r.Cubic.MeanBetween(sec(40), sec(50))
	// Before the swap the CUBIC session dominates the Vegas session.
	if unfairC < 2*unfairV {
		t.Errorf("expected unfairness before swap: vegas=%.1f cubic=%.1f", unfairV, unfairC)
	}
	// After the swap the shares converge toward fair (the model
	// converges more slowly than the paper's plot; see EXPERIMENTS.md).
	if lateC > 2*lateV {
		t.Errorf("still unfair long after swap: s1=%.1f s2=%.1f", lateV, lateC)
	}
	if lateV < unfairV*1.3 {
		t.Errorf("swapped session share did not improve: %.1f -> %.1f", unfairV, lateV)
	}
}

func TestFig13SmallRecords(t *testing.T) {
	r, err := Fig11(1500)
	if err != nil {
		t.Fatal(err)
	}
	post := r.TCPLS.MeanBetween(sec(9), sec(16))
	if post < 25 {
		t.Errorf("1500-byte records aggregated only %.1f Mbps", post)
	}
	if r.TCPLSDone == 0 {
		t.Error("transfer did not complete with 1500-byte records")
	}
}

func TestTable1Completeness(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("Table 1 has %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		for _, v := range []string{r.TCP, r.MPTCP, r.TLSTCP, r.QUIC, r.TCPLS} {
			switch v {
			case "yes", "no", "partial":
			default:
				t.Errorf("row %q: invalid value %q", r.Service, v)
			}
		}
	}
	// TCPLS must claim every service except full HoL-blocking avoidance.
	for _, r := range rows {
		if r.Service == "HoL blocking avoidance" {
			if r.TCPLS != "partial" {
				t.Errorf("TCPLS HoL should be partial, got %q", r.TCPLS)
			}
		} else if r.TCPLS != "yes" {
			t.Errorf("TCPLS %q should be yes, got %q", r.Service, r.TCPLS)
		}
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Points: []Point{
		{T: sec(0.5), Mbps: 10},
		{T: sec(1.5), Mbps: 20},
		{T: sec(2.5), Mbps: 30},
	}}
	if got := s.Mean(); got != 20 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.MeanBetween(sec(1), sec(3)); got != 25 {
		t.Errorf("MeanBetween = %v", got)
	}
	if got := s.Max(); got != 30 {
		t.Errorf("Max = %v", got)
	}
	if got := recoveryAfter(s, sec(1), 25); got != sec(2.5) {
		t.Errorf("recoveryAfter = %v", got)
	}
	if got := Jitter(s, sec(0), sec(3)); got < 8 || got > 9 {
		t.Errorf("Jitter = %v, want ~8.16", got)
	}
	if out := FormatSeries(s); len(out) == 0 {
		t.Error("FormatSeries empty")
	}
}
