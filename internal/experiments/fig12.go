package experiments

import (
	"time"

	"tcpls/internal/cc"
	"tcpls/internal/core"
	"tcpls/internal/ebpfvm"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
	"tcpls/internal/simtcpls"
)

// Fig12Result is the eBPF congestion-controller exchange experiment
// (paper Fig. 12 / §5.6): a Vegas session saturates a 100 Mbps, 60 ms
// RTT link; a CUBIC session joins and starves it; the server then ships
// CUBIC bytecode over the first TCPLS session, the client verifies and
// attaches it, and the bandwidth share converges toward fairness. The
// convergence is slower than the paper's plot: the shipped bytecode has
// no HyStart, so its first slow start dies against the full queue and
// the share is rebuilt through CUBIC's cubic-function epochs
// (EXPERIMENTS.md discusses the deviation).
type Fig12Result struct {
	Vegas    Series // session 1 goodput (starts Vegas, becomes CUBIC)
	Cubic    Series // session 2 goodput
	SecondAt time.Duration
	SwapAt   time.Duration
	Swapped  bool // bytecode verified and attached
}

const (
	fig12Rate   = 100_000_000
	fig12Delay  = 30 * time.Millisecond // one-way: RTT 60ms
	fig12Queue  = 384 << 10
	fig12Second = 5 * time.Second
	fig12Swap   = 15 * time.Second
	fig12RunFor = 50 * time.Second
)

// Fig12 runs the congestion-controller exchange experiment.
func Fig12() (*Fig12Result, error) {
	s := sim.New()
	// One shared bottleneck link pair, both sessions' uploads traverse
	// the same queue.
	up := &sim.Link{Sim: s, RateBps: fig12Rate, Delay: fig12Delay, QueueBytes: fig12Queue}
	down := &sim.Link{Sim: s, RateBps: fig12Rate, Delay: fig12Delay, QueueBytes: fig12Queue}

	res := &Fig12Result{SecondAt: fig12Second, SwapAt: fig12Swap}

	type session struct {
		client, server *simtcpls.Endpoint
		received       uint64
		stream         uint32
		written        uint64
	}
	mkSession := func(ccName string, connID uint32, start time.Duration, sess *session) {
		s.At(start, func() {
			client, server := simtcpls.Pair(s, core.Config{})
			sess.client, sess.server = client, server
			server.OnEvent = func(ev core.Event) {
				if ev.Kind == core.EventStreamData {
					buf := make([]byte, 256<<10)
					for server.Sess.Readable(ev.Stream) > 0 {
						n, _ := server.Sess.Read(ev.Stream, buf)
						sess.received += uint64(n)
					}
				}
			}
			client.AddPathOn(up, down, 0, simtcp.Options{CC: ccName}, func() {
				sid, err := client.Sess.CreateStream(0)
				if err != nil {
					panic(err)
				}
				sess.stream = sid
				// Paced upload: stay ~2 MiB ahead of delivery.
				chunk := make([]byte, 256<<10)
				var pace func()
				pace = func() {
					for sess.written < sess.received+(2<<20) {
						client.Write(sid, chunk)
						sess.written += uint64(len(chunk))
					}
					s.After(10*time.Millisecond, pace)
				}
				pace()
			})
		})
	}

	var vegasSess, cubicSess session
	mkSession("vegas", 0, 0, &vegasSess)
	mkSession("cubic", 0, fig12Second, &cubicSess)

	// At the swap time the first session's server ships the CUBIC
	// program over the encrypted session; the client verifies it in the
	// VM and attaches it to the live connection (§4.4).
	s.At(fig12Swap, func() {
		prog := ebpfvm.Program("cubic")
		vegasSess.client.OnEvent = func(ev core.Event) {
			if ev.Kind == core.EventBPFCC {
				ccProg, err := ebpfvm.NewCCProgram("cubic-bpf", ev.Data, cc.DefaultMSS)
				if err != nil {
					panic("fig12: shipped program rejected: " + err.Error())
				}
				vegasSess.client.Conn(0).SetAlgorithm(ccProg)
				res.Swapped = true
			}
		}
		vegasSess.server.Sess.SendBPFCC(0, prog)
		vegasSess.server.Flush()
	})

	res.Vegas = Series{Label: "session1-vegas-then-cubic"}
	res.Cubic = Series{Label: "session2-cubic"}
	sample(s, &res.Vegas, sampleEvery, func() uint64 { return vegasSess.received })
	sample(s, &res.Cubic, sampleEvery, func() uint64 { return cubicSess.received })
	s.RunUntil(fig12RunFor)
	return res, nil
}
