package experiments

import (
	"time"

	"tcpls/internal/core"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
	"tcpls/internal/simtcpls"
)

// Fig10Result is the application-triggered connection-migration
// experiment (paper Fig. 10): a 60 MiB download that migrates from the
// IPv4 path to the IPv6 path and back, using coupled streams to bridge
// each migration window so goodput is sustained (and briefly peaks, as
// both paths carry data).
type Fig10Result struct {
	Goodput    Series
	Migrations [2]time.Duration // window start times
	Done       time.Duration
}

// Fig. 10 parameters (paper §5.4): 30 Mbps paths, 40 ms RTT on the IPv4
// path, 80 ms on the IPv6 path.
const (
	fig10Rate   = 30_000_000
	fig10DelayA = 20 * time.Millisecond // one-way, RTT 40ms
	fig10DelayB = 40 * time.Millisecond // one-way, RTT 80ms
	fig10File   = 60 << 20
	fig10Mig1   = 6 * time.Second
	fig10Mig2   = 12 * time.Second
	fig10RunFor = 40 * time.Second
)

// Fig10 runs the migration experiment.
func Fig10() (*Fig10Result, error) {
	s := sim.New()
	v4 := newPath(s, fig10Rate, fig10DelayA)
	v6 := newPath(s, fig10Rate, fig10DelayB)

	client, server := simtcpls.Pair(s, core.Config{})
	res := &Fig10Result{Migrations: [2]time.Duration{fig10Mig1, fig10Mig2}}

	var received uint64
	var done time.Duration
	client.OnEvent = func(ev core.Event) {
		if ev.Kind == core.EventCoupledData {
			buf := make([]byte, 256<<10)
			for client.Sess.CoupledReadable() > 0 {
				received += uint64(client.Sess.ReadCoupled(buf))
			}
			if received >= fig10File && done == 0 {
				done = s.Now()
			}
		}
	}

	var written uint64
	var curStream uint32
	chunk := make([]byte, 256<<10)
	// Application-paced sender: keep up to 1.5 MiB ahead of the
	// receiver so migration actually re-steers records rather than
	// finding everything already framed onto the old connection.
	var pace func()
	pace = func() {
		if done != 0 {
			return
		}
		for written < fig10File && written < received+(1500<<10) {
			n := uint64(len(chunk))
			if written+n > fig10File {
				n = fig10File - written
			}
			if err := server.WriteCoupled(chunk[:n]); err != nil {
				break
			}
			written += n
		}
		s.After(10*time.Millisecond, pace)
	}

	client.AddPath(v4, 0, simtcp.Options{CC: "cubic"}, func() {
		sid, err := server.Sess.CreateStream(0)
		if err != nil {
			panic(err)
		}
		server.Sess.SetCoupled(sid, true)
		curStream = sid
		pace()
	})

	// migrate moves the application traffic to a new connection on
	// path: join, attach a fresh coupled stream there, finish the old
	// stream. The old connection finishes transmitting its queued
	// records while the new one carries the rest (paper §3.3.2).
	migrate := func(path *sim.Path, connID uint32) {
		client.AddPath(path, connID, simtcp.Options{CC: "cubic"}, func() {
			old := curStream
			sid, err := server.Sess.CreateStream(connID)
			if err != nil {
				panic(err)
			}
			server.Sess.SetCoupled(sid, true)
			curStream = sid
			server.Sess.FinishStream(old)
			server.Flush()
		})
	}
	s.At(fig10Mig1, func() { migrate(v6, 1) })
	s.At(fig10Mig2, func() { migrate(v4, 2) })

	res.Goodput = Series{Label: "tcpls-migration"}
	sample(s, &res.Goodput, sampleEvery, func() uint64 { return received })
	s.RunUntil(fig10RunFor)
	res.Done = done
	return res, nil
}
