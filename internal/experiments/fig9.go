package experiments

import (
	"time"

	"tcpls/internal/core"
	"tcpls/internal/mptcp"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
	"tcpls/internal/simtcpls"
)

// Fig9Result compares TCPLS and MPTCP under repeated rotating outages
// (paper Fig. 9): a 60 MB download over a 4-path topology where three of
// the four paths are blackholed at any time, the working path rotating
// every five seconds.
type Fig9Result struct {
	TCPLS     Series
	MPTCP     Series
	TCPLSDone time.Duration // transfer completion time (0 = never)
	MPTCPDone time.Duration
	// RSTStallsMPTCP reports the paper's in-text observation: with RST
	// injection instead of blackholes, their kernel MPTCP stalled. Our
	// model keeps recovering (it reinjects on reset), so this reports
	// whether MPTCP needed longer than TCPLS under RSTs.
	FileBytes int
}

const (
	fig9Paths  = 4
	fig9Rate   = 25_000_000
	fig9Delay  = 10 * time.Millisecond
	fig9File   = 60 << 20
	fig9Rotate = 5 * time.Second
	fig9RunFor = 120 * time.Second
	fig9UTO    = 250 * time.Millisecond
)

// Fig9 runs the rotating-outage experiment for both stacks.
func Fig9() (*Fig9Result, error) {
	res := &Fig9Result{FileBytes: fig9File}

	// ---------- TCPLS ----------
	{
		s := sim.New()
		paths := make([]*sim.Path, fig9Paths)
		for i := range paths {
			paths[i] = newPath(s, fig9Rate, fig9Delay)
		}
		// Rotation: path (k mod 4) is the only one up during epoch k.
		rotate := func(epoch int) {
			for i, p := range paths {
				p.SetDown(i != epoch%fig9Paths)
			}
		}
		rotate(0)
		for k := 1; int(fig9Rotate)*k < int(fig9RunFor); k++ {
			epoch := k
			s.At(time.Duration(k)*fig9Rotate, func() { rotate(epoch) })
		}

		cfg := core.Config{EnableFailover: true, AckPeriod: 16, UserTimeout: fig9UTO}
		client, server := simtcpls.Pair(s, cfg)
		server.AutoFailover = true

		var received uint64
		var done time.Duration
		nextConn := uint32(1)
		hunting := false

		// hunt probes every other path in parallel (the Happy-Eyeballs
		// pattern of §4.6): the first connection to establish wins and
		// the stranded streams fail over onto it.
		var hunt func()
		hunt = func() {
			if hunting || done != 0 {
				return
			}
			hunting = true
			won := false
			for i := range paths {
				p := paths[i]
				id := nextConn
				nextConn++
				client.TryPath(p, id, simtcp.Options{CC: "cubic"}, func() {
					if won {
						return
					}
					won = true
					hunting = false
					// Move every stream stranded on a failed conn; the
					// server follows via the FAILOVER notice (and its
					// own join-time retry).
					for cid := uint32(0); cid < nextConn; cid++ {
						if client.Sess.ConnFailed(cid) && len(client.Sess.StreamsOnConn(cid)) > 0 {
							client.Failover(cid, id)
						}
					}
				}, func() {
					// This probe lost the race or timed out: if all
					// probes fail, rearm the hunt.
					hunting = false
				})
			}
		}

		client.OnEvent = func(ev core.Event) {
			switch ev.Kind {
			case core.EventStreamData:
				buf := make([]byte, 256<<10)
				for client.Sess.Readable(ev.Stream) > 0 {
					n, _ := client.Sess.Read(ev.Stream, buf)
					received += uint64(n)
				}
				if received >= fig9File && done == 0 {
					done = s.Now()
				}
			case core.EventConnFailed:
				hunt()
			}
		}
		client.AddPath(paths[0], 0, simtcp.Options{CC: "cubic"}, func() {
			sid, err := server.Sess.CreateStream(0)
			if err != nil {
				panic(err)
			}
			server.Write(sid, make([]byte, fig9File))
		})
		res.TCPLS = Series{Label: "tcpls-rotating-outage"}
		sample(s, &res.TCPLS, sampleEvery, func() uint64 { return received })
		s.RunUntil(fig9RunFor)
		res.TCPLSDone = done
	}

	// ---------- MPTCP ----------
	{
		s := sim.New()
		paths := make([]*sim.Path, fig9Paths)
		for i := range paths {
			paths[i] = newPath(s, fig9Rate, fig9Delay)
		}
		rotate := func(epoch int) {
			for i, p := range paths {
				p.SetDown(i != epoch%fig9Paths)
			}
		}
		rotate(0)
		for k := 1; int(fig9Rotate)*k < int(fig9RunFor); k++ {
			epoch := k
			s.At(time.Duration(k)*fig9Rotate, func() { rotate(epoch) })
		}

		client, server := mptcp.Pair(s)
		// Full-mesh path manager: all four subflows up front, plus the
		// kernel's periodic re-establishment of dead subflows.
		for i := range paths {
			client.AddSubflow(paths[i], simtcp.Options{CC: "cubic"}, false, 0)
		}
		var readd func()
		readd = func() {
			// The kernel PM retries failed subflows periodically.
			for i := 0; i < fig9Paths; i++ {
				if client.SubflowFailed(i) {
					client.ReviveSubflow(i, paths[i], simtcp.Options{CC: "cubic"})
				}
			}
			s.After(3*time.Second, readd)
		}
		s.After(3*time.Second, readd)

		var done time.Duration
		client.OnRecv = func(p []byte) {
			if client.Received() >= fig9File && done == 0 {
				done = s.Now()
			}
		}
		s.After(0, func() { server.Write(make([]byte, fig9File)) })
		res.MPTCP = Series{Label: "mptcp-rotating-outage"}
		sample(s, &res.MPTCP, sampleEvery, client.Received)
		s.RunUntil(fig9RunFor)
		res.MPTCPDone = done
	}
	return res, nil
}
