package experiments

import (
	"time"

	"tcpls/internal/core"
	"tcpls/internal/handshake"
	"tcpls/internal/miniquic"
	"tcpls/internal/record"
)

// Fig7Row is one bar of the paper's Fig. 7: a protocol stack's raw
// in-memory throughput at a given MTU.
type Fig7Row struct {
	Stack string
	MTU   int
	Gbps  float64
	KPPS  float64 // thousand wire packets per second
}

// Fig7 measures every stack of the paper's Fig. 7 moving totalBytes of
// bulk data through its full userspace data plane (encrypt, frame,
// deframe, decrypt, plus each stack's bookkeeping). Absolute numbers are
// this machine's, not the paper's 40 GbE testbed; DESIGN.md's claim
// under test is the ordering and rough ratios: TCPLS ≈ TLS/TCP,
// failover a few percent below, multipath coupling below that, and
// every QUIC configuration well under half of TCPLS.
func Fig7(mtu int, totalBytes int) ([]Fig7Row, error) {
	var rows []Fig7Row
	add := func(stack string, bytes int, seconds float64, packets uint64) {
		rows = append(rows, Fig7Row{
			Stack: stack,
			MTU:   mtu,
			Gbps:  float64(bytes) * 8 / seconds / 1e9,
			KPPS:  float64(packets) / seconds / 1e3,
		})
	}

	// --- TLS/TCP: plain 16 KiB record pipeline (seal → deframe → open).
	secs, err := tlsTCPPipeline(totalBytes, mtu)
	if err != nil {
		return nil, err
	}
	add("tls-tcp", totalBytes, secs, uint64(totalBytes/mtu))

	// --- TCPLS variants through the real engine.
	for _, v := range []struct {
		name string
		cfg  core.Config
		mp   bool
	}{
		{"tcpls", core.Config{}, false},
		{"tcpls-failover", core.Config{EnableFailover: true, AckPeriod: 16}, false},
		{"tcpls-multipath", core.Config{EnableFailover: true, AckPeriod: 16}, true},
	} {
		secs, err := tcplsPipeline(totalBytes, v.cfg, v.mp, pipelineOpts{})
		if err != nil {
			return nil, err
		}
		add(v.name, totalBytes, secs, uint64(totalBytes/mtu))
	}

	// --- QUIC implementations.
	for _, cfg := range []miniquic.Config{miniquic.Quicly, miniquic.MsQuic, miniquic.Mvfst} {
		if mtu >= 9000 {
			cfg = cfg.Jumbo()
		}
		p, err := miniquic.New(cfg)
		if err != nil {
			return nil, err
		}
		data := make([]byte, 1<<20)
		start := time.Now()
		moved := 0
		for moved < totalBytes {
			n, err := p.Transfer(data)
			if err != nil {
				return nil, err
			}
			moved += n
		}
		secs := time.Since(start).Seconds()
		add(cfg.Name, moved, secs, p.Packets)
	}
	return rows, nil
}

// tlsTCPPipeline is the TCP/TLS baseline: the picotls-equivalent loop of
// §5.1 — full 16 KiB records sealed by the sender, deframed and opened
// in place by the receiver. MTU does not change the crypto (TSO).
func tlsTCPPipeline(totalBytes, mtu int) (float64, error) {
	suite, err := record.SuiteByID(record.TLSAES128GCMSHA256)
	if err != nil {
		return 0, err
	}
	secret := make([]byte, 32)
	key, iv := record.DeriveTrafficKeys(suite, secret)
	send, err := record.NewStreamContext(suite, key, iv, 0)
	if err != nil {
		return 0, err
	}
	recv, err := record.NewStreamContext(suite, key, iv, 0)
	if err != nil {
		return 0, err
	}
	payload := make([]byte, record.MaxPlaintextLen)
	var deframer record.Deframer
	buf := make([]byte, 0, record.MaxRecordLen)

	start := time.Now()
	moved := 0
	for moved < totalBytes {
		buf, err = send.Seal(buf[:0], record.ContentTypeApplicationData, payload, 0)
		if err != nil {
			return 0, err
		}
		deframer.Feed(buf)
		rec, ok, err := deframer.Next()
		if err != nil || !ok {
			return 0, err
		}
		_, content, err := recv.Open(rec)
		if err != nil {
			return 0, err
		}
		moved += len(content)
	}
	return time.Since(start).Seconds(), nil
}

// TLSTCPPipeline exposes the TLS/TCP baseline for benches.
func TLSTCPPipeline(totalBytes, mtu int) (float64, error) {
	return tlsTCPPipeline(totalBytes, mtu)
}

// TCPLSPipeline exposes the engine pipeline for benches.
func TCPLSPipeline(totalBytes int, failover, multipath bool) (float64, error) {
	cfg := core.Config{}
	if failover {
		cfg.EnableFailover = true
		cfg.AckPeriod = 16
	}
	return tcplsPipeline(totalBytes, cfg, multipath, pipelineOpts{})
}

// TCPLSPipelineAck runs the failover pipeline with an explicit ack
// period (ablation X3).
func TCPLSPipelineAck(totalBytes, ackPeriod int) (float64, error) {
	return tcplsPipeline(totalBytes, core.Config{EnableFailover: true, AckPeriod: ackPeriod}, false, pipelineOpts{})
}

// TCPLSPipelineSched runs the multipath pipeline under a named coupled
// scheduler ("roundrobin" or "pinned").
func TCPLSPipelineSched(totalBytes int, sched string) (float64, error) {
	opts := pipelineOpts{}
	if sched == "pinned" {
		opts.scheduler = func(recordIdx uint64, streams []uint32) int { return 0 }
	}
	return tcplsPipeline(totalBytes, core.Config{}, true, opts)
}

// TCPLSPipelineDelivery compares the zero-copy delivery callback against
// the buffered Read path (the §4.1 ablation).
func TCPLSPipelineDelivery(totalBytes int, callback bool) (float64, error) {
	return tcplsPipeline(totalBytes, core.Config{}, false, pipelineOpts{bufferedRead: !callback})
}

// pipelineOpts tunes the engine pipeline variants.
type pipelineOpts struct {
	scheduler    core.Scheduler
	bufferedRead bool
}

// tcplsPipeline pushes bytes through a real engine pair in memory:
// framing, per-stream contexts, trial decryption, and — when enabled —
// acknowledgments and retransmission buffering, or multipath coupling
// with receiver reordering.
func tcplsPipeline(totalBytes int, cfg core.Config, multipath bool, opts pipelineOpts) (float64, error) {
	suite, _ := record.SuiteByID(record.TLSAES128GCMSHA256)
	mk := func(tag byte) []byte {
		b := make([]byte, 32)
		for i := range b {
			b[i] = tag
		}
		return b
	}
	sec := handshake.Secrets{Suite: suite, ClientApp: mk(1), ServerApp: mk(2)}
	now := time.Unix(0, 0)
	sender := core.NewSession(core.RoleServer, sec, cfg)
	receiver := core.NewSession(core.RoleClient, sec, cfg)

	conns := []uint32{0}
	if multipath {
		conns = []uint32{0, 1}
	}
	for _, id := range conns {
		if err := sender.AddConnection(id, now); err != nil {
			return 0, err
		}
		if err := receiver.AddConnection(id, now); err != nil {
			return 0, err
		}
	}
	var streams []uint32
	for _, id := range conns {
		sid, err := sender.CreateStream(id)
		if err != nil {
			return 0, err
		}
		streams = append(streams, sid)
	}
	if opts.scheduler != nil {
		sender.SetScheduler(opts.scheduler)
	}
	var moved int
	readBuf := make([]byte, 1<<20)
	if opts.bufferedRead {
		// Buffered mode: data accumulates in engine buffers and is
		// drained with Read/ReadCoupled (one extra copy each way).
		defer func() {}()
	} else {
		receiver.DeliverData = func(streamID uint32, payload []byte) { moved += len(payload) }
		receiver.DeliverCoupled = func(payload []byte) { moved += len(payload) }
	}
	pump := func() error {
		if err := sender.Flush(); err != nil && err != core.ErrNotCoupled {
			return err
		}
		for _, id := range conns {
			out, err := sender.Outgoing(id)
			if err != nil {
				return err
			}
			if len(out) == 0 {
				continue
			}
			if err := receiver.Receive(id, out, now); err != nil {
				return err
			}
			sender.RecycleOutgoing(out)
			// Acks flow back.
			back, err := receiver.Outgoing(id)
			if err != nil {
				return err
			}
			if len(back) > 0 {
				if err := sender.Receive(id, back, now); err != nil {
					return err
				}
			}
			receiver.RecycleOutgoing(back)
		}
		return nil
	}
	if multipath {
		for _, sid := range streams {
			sender.SetCoupled(sid, true)
		}
	}
	if err := pump(); err != nil { // deliver stream attaches
		return 0, err
	}
	receiver.Events()

	chunk := make([]byte, 1<<20)
	start := time.Now()
	for moved < totalBytes {
		if multipath {
			if _, err := sender.WriteCoupled(chunk); err != nil {
				return 0, err
			}
		} else {
			if _, err := sender.Write(streams[0], chunk); err != nil {
				return 0, err
			}
		}
		if err := pump(); err != nil {
			return 0, err
		}
		receiver.Events()
		if opts.bufferedRead {
			for {
				var n int
				if multipath {
					n = receiver.ReadCoupled(readBuf)
				} else {
					n, _ = receiver.Read(streams[0], readBuf)
				}
				if n == 0 {
					break
				}
				moved += n
			}
		}
	}
	return time.Since(start).Seconds(), nil
}
