package experiments

// ServiceRow is one row of the paper's Table 1: which transport services
// each stack provides. Values: "yes", "partial", "no".
type ServiceRow struct {
	Service string
	TCP     string
	MPTCP   string
	TLSTCP  string
	QUIC    string
	TCPLS   string
}

// Table1 reproduces the paper's Table 1 service matrix. The TCPLS column
// is backed by this repository: each "yes" corresponds to implemented,
// tested functionality (the test or experiment exercising it is listed
// in EXPERIMENTS.md).
func Table1() []ServiceRow {
	return []ServiceRow{
		{"Reliability & congestion control", "yes", "yes", "yes", "yes", "yes"},
		{"Message confidentiality & authentication", "no", "no", "yes", "yes", "yes"},
		{"Failover", "no", "yes", "no", "partial", "yes"},
		{"HoL blocking avoidance", "no", "no", "no", "yes", "partial"},
		{"Streams", "no", "no", "no", "yes", "yes"},
		{"Connection migration", "no", "partial", "no", "partial", "yes"},
		{"Concurrent paths", "no", "yes", "no", "no", "yes"},
	}
}
