//go:build race

package experiments

// raceDetectorEnabled gates wall-clock throughput assertions: the race
// detector slows the crypto and framing hot paths by an order of
// magnitude and unevenly across substrates, so figure-shape ratios
// measured under it are meaningless.
const raceDetectorEnabled = true
