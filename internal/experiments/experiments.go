// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5). Each Fig* function runs one experiment —
// deterministic simulations for the Mininet figures, real CPU pipelines
// for the raw-performance figure — and returns structured results that
// cmd/tcpls-experiments prints and bench_test.go asserts on.
//
// DESIGN.md's experiment index maps each function to the paper's table
// or figure and records the expected shape.
package experiments

import (
	"fmt"
	"time"

	"tcpls/internal/sim"
)

// Point is one goodput sample.
type Point struct {
	T    time.Duration
	Mbps float64
}

// Series is a labeled goodput-over-time curve.
type Series struct {
	Label  string
	Points []Point
}

// Mean returns the average goodput over the series.
func (s Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Mbps
	}
	return sum / float64(len(s.Points))
}

// MeanBetween averages goodput over [from, to).
func (s Series) MeanBetween(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.Mbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the series' peak goodput.
func (s Series) Max() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Mbps > max {
			max = p.Mbps
		}
	}
	return max
}

// sampler turns a monotone byte counter into a goodput series.
type sampler struct {
	s        *sim.Sim
	series   *Series
	counter  func() uint64
	interval time.Duration
	last     uint64
	stop     bool
}

// sample starts periodic goodput sampling of counter into series.
func sample(s *sim.Sim, series *Series, interval time.Duration, counter func() uint64) *sampler {
	sm := &sampler{s: s, series: series, counter: counter, interval: interval}
	var tick func()
	tick = func() {
		if sm.stop {
			return
		}
		cur := counter()
		delta := cur - sm.last
		sm.last = cur
		mbps := float64(delta) * 8 / interval.Seconds() / 1e6
		series.Points = append(series.Points, Point{T: s.Now(), Mbps: mbps})
		s.After(interval, tick)
	}
	s.After(interval, tick)
	return sm
}

// recoveryAfter returns the first time >= outage at which goodput
// exceeds threshold Mbps, or 0 if it never does.
func recoveryAfter(s Series, outage time.Duration, threshold float64) time.Duration {
	for _, p := range s.Points {
		if p.T > outage && p.Mbps >= threshold {
			return p.T
		}
	}
	return 0
}

// newPath builds an experiment path with Mininet-like buffering: a
// drop-tail queue of two bandwidth-delay products absorbs slow-start
// overshoot the way the paper's emulated links do.
func newPath(s *sim.Sim, rateBps int64, oneWay time.Duration) *sim.Path {
	p := sim.NewPath(s, rateBps, oneWay)
	bdp := int(rateBps / 8 * int64(2*oneWay) / int64(time.Second))
	q := 2 * bdp
	if q < 128<<10 {
		q = 128 << 10
	}
	p.AtoB.QueueBytes = q
	p.BtoA.QueueBytes = q
	return p
}

// FormatSeries renders a series as gnuplot-ready rows.
func FormatSeries(s Series) string {
	out := fmt.Sprintf("# %s\n# t(s)  goodput(Mbps)\n", s.Label)
	for _, p := range s.Points {
		out += fmt.Sprintf("%7.2f  %8.2f\n", p.T.Seconds(), p.Mbps)
	}
	return out
}
