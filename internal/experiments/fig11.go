package experiments

import (
	"time"

	"tcpls/internal/core"
	"tcpls/internal/mptcp"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
	"tcpls/internal/simtcpls"
)

// Fig11Result compares bandwidth aggregation (paper Fig. 11, and
// Appendix A's Fig. 13 when run with a 1500-byte record size): a 60 MiB
// transfer starts on one path; the second path is enabled at t = 5 s.
// Both stacks should converge to the ~50 Mbps aggregate; MPTCP ramps
// later (kernel interface-configuration delay) and TCPLS's goodput is
// jitterier at 16 KiB records than at 1500-byte records.
type Fig11Result struct {
	RecordSize int
	TCPLS      Series
	MPTCP      Series
	TCPLSDone  time.Duration
	MPTCPDone  time.Duration
}

const (
	fig11Rate       = 25_000_000
	fig11Delay      = 10 * time.Millisecond
	fig11File       = 60 << 20
	fig11SecondPath = 5 * time.Second
	fig11ConfDelay  = 1500 * time.Millisecond // MPTCP address-config lag [74]
	fig11RunFor     = 40 * time.Second
)

// Fig11 runs the aggregation experiment with the given TCPLS record
// payload size (16368 for Fig. 11, 1500 for Fig. 13).
func Fig11(recordSize int) (*Fig11Result, error) {
	res := &Fig11Result{RecordSize: recordSize}

	// ---------- TCPLS ----------
	{
		s := sim.New()
		p0 := newPath(s, fig11Rate, fig11Delay)
		p1 := newPath(s, fig11Rate, fig11Delay)
		client, server := simtcpls.Pair(s, core.Config{MaxRecordPayload: recordSize})

		var received uint64
		var done time.Duration
		client.OnEvent = func(ev core.Event) {
			if ev.Kind == core.EventCoupledData {
				buf := make([]byte, 256<<10)
				for client.Sess.CoupledReadable() > 0 {
					received += uint64(client.Sess.ReadCoupled(buf))
				}
				if received >= fig11File && done == 0 {
					done = s.Now()
				}
			}
		}
		var written uint64
		chunk := make([]byte, 256<<10)
		var pace func()
		pace = func() {
			if done != 0 {
				return
			}
			for written < fig11File && written < received+(1500<<10) {
				n := uint64(len(chunk))
				if written+n > fig11File {
					n = fig11File - written
				}
				if err := server.WriteCoupled(chunk[:n]); err != nil {
					break
				}
				written += n
			}
			s.After(10*time.Millisecond, pace)
		}
		client.AddPath(p0, 0, simtcp.Options{CC: "cubic"}, func() {
			sid, err := server.Sess.CreateStream(0)
			if err != nil {
				panic(err)
			}
			server.Sess.SetCoupled(sid, true)
			pace()
		})
		// The application enables the second path at t = 5 s: join, new
		// coupled stream, aggregated bandwidth from there on (§5.5).
		s.At(fig11SecondPath, func() {
			client.AddPath(p1, 1, simtcp.Options{CC: "cubic"}, func() {
				sid, err := server.Sess.CreateStream(1)
				if err != nil {
					panic(err)
				}
				server.Sess.SetCoupled(sid, true)
			})
		})
		res.TCPLS = Series{Label: "tcpls-aggregation"}
		sample(s, &res.TCPLS, sampleEvery, func() uint64 { return received })
		s.RunUntil(fig11RunFor)
		res.TCPLSDone = done
	}

	// ---------- MPTCP ----------
	{
		s := sim.New()
		p0 := newPath(s, fig11Rate, fig11Delay)
		p1 := newPath(s, fig11Rate, fig11Delay)
		client, server := mptcp.Pair(s)
		client.AddSubflow(p0, simtcp.Options{CC: "cubic"}, false, 0)

		var done time.Duration
		client.OnRecv = func(p []byte) {
			if client.Received() >= fig11File && done == 0 {
				done = s.Now()
			}
		}
		s.After(0, func() { server.Write(make([]byte, fig11File)) })
		// Interface comes up at 5 s; the kernel needs to configure the
		// address and routes before MPTCP can use it (Fig. 11's delayed
		// ramp, [74]).
		s.At(fig11SecondPath, func() {
			client.AddSubflow(p1, simtcp.Options{CC: "cubic"}, false, fig11ConfDelay)
		})
		res.MPTCP = Series{Label: "mptcp-aggregation"}
		sample(s, &res.MPTCP, sampleEvery, client.Received)
		s.RunUntil(fig11RunFor)
		res.MPTCPDone = done
	}
	return res, nil
}

// Jitter quantifies goodput irregularity over [from, to): the standard
// deviation of the per-sample goodput. Fig. 11 vs Fig. 13's claim is
// that 16 KiB records reorder in coarser chunks and so produce larger
// goodput irregularities than 1500-byte records.
func Jitter(s Series, from, to time.Duration) float64 {
	mean := s.MeanBetween(from, to)
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			d := p.Mbps - mean
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sqrt(sum / float64(n))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
