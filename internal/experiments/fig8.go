package experiments

import (
	"fmt"
	"time"

	"tcpls/internal/core"
	"tcpls/internal/mptcp"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
	"tcpls/internal/simtcpls"
)

// Fig8Result holds one outage type's recovery comparison (paper Fig. 8).
type Fig8Result struct {
	Outage        string // "blackhole" or "rst"
	TCPLS         Series
	MPTCP         Series
	TCPLSRecovery time.Duration // time from outage to restored goodput
	MPTCPRecovery time.Duration
}

// Fig. 8 topology: two disjoint paths, 25 Mbps, 10 ms one-way latency
// (the paper's Mininet defaults for Sec. 5.3), outage at t = 3 s,
// TCP User Timeout 250 ms.
const (
	fig8Rate    = 25_000_000
	fig8Delay   = 10 * time.Millisecond
	fig8Outage  = 3 * time.Second
	fig8UTO     = 250 * time.Millisecond
	fig8File    = 30 << 20
	fig8RunFor  = 20 * time.Second
	fig8Thresh  = 5.0 // Mbps counted as "transfer resumed"
	sampleEvery = 100 * time.Millisecond
)

// Fig8 reproduces the paper's Fig. 8: goodput over time for TCPLS and
// MPTCP during a single outage of the active path. outage is
// "blackhole" (middlebox discarding traffic; detection needs the
// 250 ms UserTimeout plus a fresh join, ≈1 s total for TCPLS) or "rst"
// (a spurious reset: an explicit signal both stacks react to quickly).
func Fig8(outage string) (*Fig8Result, error) {
	if outage != "blackhole" && outage != "rst" {
		return nil, fmt.Errorf("fig8: unknown outage type %q", outage)
	}
	res := &Fig8Result{Outage: outage}

	// ---------- TCPLS ----------
	{
		s := sim.New()
		p0 := newPath(s, fig8Rate, fig8Delay)
		p1 := newPath(s, fig8Rate, fig8Delay)
		cfg := core.Config{EnableFailover: true, AckPeriod: 16, UserTimeout: fig8UTO}
		client, server := simtcpls.Pair(s, cfg)
		server.AutoFailover = true

		var received uint64
		failedOnce := false
		client.OnEvent = func(ev core.Event) {
			switch ev.Kind {
			case core.EventStreamData:
				buf := make([]byte, 256<<10)
				for client.Sess.Readable(ev.Stream) > 0 {
					n, _ := client.Sess.Read(ev.Stream, buf)
					received += uint64(n)
				}
			case core.EventConnFailed:
				if failedOnce {
					return
				}
				failedOnce = true
				// Break-before-make: open and join a connection on the
				// other path, then resynchronize (Fig. 4).
				client.TryPath(p1, 1, simtcp.Options{CC: "cubic"}, func() {
					client.Failover(0, 1)
				}, nil)
			}
		}
		client.AddPath(p0, 0, simtcp.Options{CC: "cubic"}, func() {
			sid, err := server.Sess.CreateStream(0)
			if err != nil {
				panic(err)
			}
			server.Write(sid, make([]byte, fig8File))
		})
		res.TCPLS = Series{Label: "tcpls-" + outage}
		sample(s, &res.TCPLS, sampleEvery, func() uint64 { return received })

		s.After(fig8Outage, func() {
			if outage == "blackhole" {
				p0.SetDown(true)
			} else {
				client.Conn(0).Reset()
			}
		})
		s.RunUntil(fig8RunFor)
		if at := recoveryAfter(res.TCPLS, fig8Outage, fig8Thresh); at > 0 {
			res.TCPLSRecovery = at - fig8Outage
		}
	}

	// ---------- MPTCP (backup mode, as in the paper) ----------
	{
		s := sim.New()
		p0 := newPath(s, fig8Rate, fig8Delay)
		p1 := newPath(s, fig8Rate, fig8Delay)
		client, server := mptcp.Pair(s)
		client.BackupMode = true
		server.BackupMode = true
		client.AddSubflow(p0, simtcp.Options{CC: "cubic"}, false, 0)
		client.AddSubflow(p1, simtcp.Options{CC: "cubic"}, true, 0)

		// Server pushes the download (client receives).
		s.After(0, func() { server.Write(make([]byte, fig8File)) })

		res.MPTCP = Series{Label: "mptcp-" + outage}
		sample(s, &res.MPTCP, sampleEvery, client.Received)

		s.After(fig8Outage, func() {
			if outage == "blackhole" {
				p0.SetDown(true)
			} else {
				server.FailSubflow(0)
			}
		})
		s.RunUntil(fig8RunFor)
		if at := recoveryAfter(res.MPTCP, fig8Outage, fig8Thresh); at > 0 {
			res.MPTCPRecovery = at - fig8Outage
		}
	}
	return res, nil
}
