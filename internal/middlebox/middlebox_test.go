package middlebox_test

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"io"
	"testing"
	"time"

	"tcpls"
	"tcpls/internal/middlebox"
)

// startEchoServer runs a TCPLS echo server and returns its address and
// certificate.
func startEchoServer(t *testing.T) (string, *tcpls.Certificate) {
	t.Helper()
	cert, err := tcpls.NewCertificate("real.server")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{Certificate: cert})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			sess, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					st, err := sess.AcceptStream(context.Background())
					if err != nil {
						return
					}
					go func() {
						io.Copy(st, st)
						st.Close()
					}()
				}
			}()
		}
	}()
	return ln.Addr().String(), cert
}

// echoThrough dials via addr and verifies an echo round trip.
func echoThrough(t *testing.T, addr string, cfg *tcpls.Config) *tcpls.Session {
	t.Helper()
	sess, err := tcpls.Dial("tcp", addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("tcpls through a middlebox "), 2000)
	go st.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo corrupted")
	}
	return sess
}

func TestThroughNAT(t *testing.T) {
	addr, _ := startEchoServer(t)
	relay, err := middlebox.NewRelay(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	// Plain relay = NAT: payload untouched, addresses rewritten below
	// the byte-stream layer. TCPLS must work unchanged.
	echoThrough(t, relay.Addr(), &tcpls.Config{ServerName: "real.server"})
}

func TestThroughResegmenter(t *testing.T) {
	addr, _ := startEchoServer(t)
	relay, err := middlebox.NewRelay(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	relay.Tune(func(r *middlebox.Relay) {
		r.MangleC2S = middlebox.Resegmenter(3, 17, 1000, 1)
		r.MangleS2C = middlebox.Resegmenter(5000, 2, 80)
	})
	echoThrough(t, relay.Addr(), &tcpls.Config{ServerName: "real.server"})
}

func TestThroughDelayingProxy(t *testing.T) {
	addr, _ := startEchoServer(t)
	relay, err := middlebox.NewRelay(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	relay.Tune(func(r *middlebox.Relay) { r.Delay = 2 * time.Millisecond })
	sess := echoThrough(t, relay.Addr(), &tcpls.Config{ServerName: "real.server"})
	rtt, err := sess.Ping(0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 4*time.Millisecond {
		t.Errorf("rtt %v too low through a 2x2ms delaying proxy", rtt)
	}
}

func TestCorruptingALGIsDetected(t *testing.T) {
	addr, _ := startEchoServer(t)
	relay, err := middlebox.NewRelay(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	// Corrupt application-phase bytes. The AEAD must reject them: the
	// client either fails the handshake or the session dies — it must
	// never deliver corrupted data.
	relay.Tune(func(r *middlebox.Relay) { r.MangleS2C = middlebox.Corrupter(50_000) })

	sess, err := tcpls.Dial("tcp", relay.Addr(), &tcpls.Config{ServerName: "real.server"})
	if err != nil {
		return // corrupted handshake: failure is the correct outcome
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		return
	}
	msg := bytes.Repeat([]byte("integrity"), 30000)
	go st.Write(msg)

	type outcome struct {
		completed bool
		corrupted bool
	}
	res := make(chan outcome, 1)
	go func() {
		got := make([]byte, 0, len(msg))
		buf := make([]byte, 4096)
		for len(got) < len(msg) {
			n, err := st.Read(buf)
			got = append(got, buf[:n]...)
			if !bytes.Equal(got, msg[:len(got)]) {
				res <- outcome{corrupted: true}
				return
			}
			if err != nil {
				res <- outcome{} // session failed: correct
				return
			}
		}
		res <- outcome{completed: true}
	}()
	select {
	case o := <-res:
		if o.corrupted {
			t.Fatal("corrupted data delivered to the application")
		}
		if o.completed {
			t.Fatal("transfer succeeded despite corruption — mangler ineffective?")
		}
		// Session died cleanly: the AEAD rejected the corruption.
	case <-time.After(5 * time.Second):
		// Stalled: deframer desynchronized or records dropped — the
		// session is dead without delivering corrupt data. Correct.
	}
}

func TestExtensionFilteringFirewallForcesFallback(t *testing.T) {
	addr, _ := startEchoServer(t)
	relay, err := middlebox.NewRelay(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	relay.Tune(func(r *middlebox.Relay) { r.Inspect = middlebox.RejectTCPLSHello() })

	// Dial retries as plain TLS after the firewall kills the TCPLS
	// attempt (paper §5.2's explicit fallback).
	sess, err := tcpls.Dial("tcp", relay.Addr(), &tcpls.Config{ServerName: "real.server"})
	if err != nil {
		t.Fatalf("fallback dial failed: %v", err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", relay.Addr()); err != tcpls.ErrNotTCPLS {
		t.Errorf("JoinPath err=%v, want ErrNotTCPLS after fallback", err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("plain tls fallback data")
	go st.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("fallback echo corrupted")
	}
}

func TestTLSTerminatingProxyStripsTCPLS(t *testing.T) {
	addr, _ := startEchoServer(t)
	proxy, err := middlebox.NewTLSTerminator(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Client without pinning: handshake completes against the proxy,
	// TCPLS is silently unavailable (implicit fallback), data flows.
	sess, err := tcpls.Dial("tcp", proxy.Addr(), &tcpls.Config{})
	if err != nil {
		t.Fatalf("dial through terminator: %v", err)
	}
	defer sess.Close()
	if _, err := sess.JoinPath("tcp", proxy.Addr()); err != tcpls.ErrNotTCPLS {
		t.Errorf("JoinPath err=%v, want ErrNotTCPLS through terminator", err)
	}
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("terminated but relayed")
	go st.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(st, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("relay corrupted data")
	}
	if proxy.Sessions() == 0 {
		t.Error("proxy reports no terminated sessions")
	}
}

func TestTLSTerminatingProxyDetectedByPinning(t *testing.T) {
	addr, realCert := startEchoServer(t)
	proxy, err := middlebox.NewTLSTerminator(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// A client pinning the real server's key must reject the proxy.
	_, err = tcpls.Dial("tcp", proxy.Addr(), &tcpls.Config{
		RootKeys: []ed25519.PublicKey{realCert.Public},
	})
	if err == nil {
		t.Fatal("pinning client accepted the terminating proxy")
	}
}

func TestStallingProxyMidRecord(t *testing.T) {
	addr, _ := startEchoServer(t)
	relay, err := middlebox.NewRelay(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	// Freeze the server->client direction for 300ms once ~10 KB have
	// flowed — the stall lands mid-record. The deframer must resume
	// cleanly and the echo must still be byte-exact.
	relay.Tune(func(r *middlebox.Relay) {
		r.MangleS2C = middlebox.Staller(10_000, 300*time.Millisecond)
	})
	start := time.Now()
	echoThrough(t, relay.Addr(), &tcpls.Config{ServerName: "real.server"})
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Errorf("echo finished in %v; the 300ms stall never applied", elapsed)
	}
}

func TestAbortingProxyKillsMidTransfer(t *testing.T) {
	addr, _ := startEchoServer(t)
	relay, err := middlebox.NewRelay(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	// Cut the connection after ~4 KB of ciphertext toward the server —
	// well past the handshake, mid-transfer, typically mid-record.
	relay.Tune(func(r *middlebox.Relay) {
		r.MangleC2S = middlebox.Aborter(4096)
	})
	sess, err := tcpls.Dial("tcp", relay.Addr(), &tcpls.Config{ServerName: "real.server"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("doomed "), 4000) // ~28 KB, crosses the cut
	go st.Write(msg)
	got := make([]byte, len(msg))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(st, got)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("full echo crossed a connection aborted mid-transfer")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client never noticed the abort")
	}
}
