// Package middlebox implements the interference zoo of the paper's
// Sec. 2 and Sec. 5.2 as TCP relays: each middlebox accepts client
// connections and forwards bytes to the real server while applying its
// class of mangling. TCPLS's design claim — everything past the
// handshake is indistinguishable from TLS 1.3, so only extension-visible
// middleboxes can interfere, and then only to the point of fallback —
// is exercised against each class.
//
// Classes (paper Sec. 2's taxonomy):
//
//   - NAT / address rewriting: invisible at the byte-stream layer;
//     modeled by the plain relay (addresses change, payload untouched).
//   - Resegmentation (TSO/GRO-style splitting and coalescing): the relay
//     re-chunks the stream arbitrarily.
//   - Extension-dropping firewall: kills connections whose ClientHello
//     carries unknown (TCPLS) extensions — the explicit-fallback case.
//   - Payload-corrupting ALG: flips bytes in the stream; TCPLS must
//     detect (AEAD) and fail closed rather than deliver corrupt data.
//   - Delaying/shaping proxy: adds latency.
//   - TLS-terminating proxy: a real man-in-the-middle that terminates
//     the TLS session with its own certificate and re-originates it;
//     TCPLS must fall back to plain TLS (the proxy strips the TCPLS
//     echo) and the client must notice the changed identity if it pins
//     keys.
package middlebox

import (
	"io"
	"net"
	"sync"
	"time"

	"tcpls/internal/wire"
)

// Relay is a generic TCP forwarder with pluggable byte mangling in each
// direction. Zero mangling models a NAT: the TCP payload is untouched.
type Relay struct {
	ln     net.Listener
	target string
	// MangleC2S / MangleS2C transform each chunk before forwarding.
	// They may return multiple chunks (resegmentation) or signal
	// connection abort by returning an error.
	MangleC2S func(chunk []byte) ([][]byte, error)
	MangleS2C func(chunk []byte) ([][]byte, error)
	// Inspect sees the first client chunk (the ClientHello) before any
	// forwarding; returning an error aborts the connection (the
	// extension-filtering firewall).
	Inspect func(firstChunk []byte) error
	// Delay adds fixed latency to every forwarded chunk.
	Delay time.Duration

	mu     sync.Mutex
	closed bool
}

// NewRelay starts a relay listening on a random local port, forwarding
// to target.
func NewRelay(target string) (*Relay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &Relay{ln: ln, target: target}
	go r.acceptLoop()
	return r, nil
}

// Addr returns the relay's listening address (what clients dial).
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Tune mutates the mangling hooks race-free with respect to the accept
// loop, which snapshots them when a connection arrives. NewRelay starts
// accepting immediately, so setting the exported fields directly after
// it returns is a data race — go through Tune instead.
func (r *Relay) Tune(fn func(*Relay)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r)
}

// Close stops the relay.
func (r *Relay) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return r.ln.Close()
}

func (r *Relay) acceptLoop() {
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		go r.handle(c)
	}
}

func (r *Relay) handle(client net.Conn) {
	defer client.Close()
	server, err := net.Dial("tcp", r.target)
	if err != nil {
		return
	}
	defer server.Close()

	r.mu.Lock()
	c2s, s2c, inspect, delay := r.MangleC2S, r.MangleS2C, r.Inspect, r.Delay
	r.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		pump(client, server, c2s, inspect, delay)
		// Half-close towards the server so EOF propagates.
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	go func() {
		defer wg.Done()
		pump(server, client, s2c, nil, delay)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	wg.Wait()
}

// abort closes a connection abortively: SO_LINGER 0 turns the close
// into a TCP RST, the way real firewalls and ALGs kill flows.
func abort(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	nc.Close()
}

func pump(src, dst net.Conn, mangle func([]byte) ([][]byte, error), inspect func([]byte) error, delay time.Duration) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if inspect != nil {
				if inspect(chunk) != nil {
					// Simulate a firewall RST: abort both directions.
					abort(src)
					abort(dst)
					return
				}
			}
			inspect = nil // only the first chunk is inspected
			chunks := [][]byte{chunk}
			var merr error
			if mangle != nil {
				chunks, merr = mangle(chunk)
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			// Any chunks returned alongside an abort still go out first:
			// an Aborter cuts after exactly N forwarded bytes.
			for _, c := range chunks {
				if _, err := dst.Write(c); err != nil {
					return
				}
			}
			if merr != nil {
				abort(src)
				abort(dst)
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// Resegmenter returns a mangler that re-chunks the byte stream into
// sizes cycling through the given list (the paper's "high-speed network
// adapters that fragment large TCP packets" class). Record boundaries
// are destroyed; a correct deframer must not care.
func Resegmenter(sizes ...int) func([]byte) ([][]byte, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 7, 64, 512, 4096}
	}
	idx := 0
	return func(chunk []byte) ([][]byte, error) {
		var out [][]byte
		for len(chunk) > 0 {
			n := sizes[idx%len(sizes)]
			idx++
			if n > len(chunk) {
				n = len(chunk)
			}
			out = append(out, append([]byte(nil), chunk[:n]...))
			chunk = chunk[n:]
		}
		return out, nil
	}
}

// Corrupter returns a mangler that flips one bit every intervalBytes
// (the payload-rewriting ALG class). AEAD-protected records must reject
// the corruption.
func Corrupter(intervalBytes int) func([]byte) ([][]byte, error) {
	seen := 0
	return func(chunk []byte) ([][]byte, error) {
		out := append([]byte(nil), chunk...)
		for i := range out {
			seen++
			if seen%intervalBytes == 0 {
				out[i] ^= 0x01
			}
		}
		return [][]byte{out}, nil
	}
}

// Staller returns a mangler that forwards afterBytes normally and then
// freezes the direction for d — the buffering/stalling proxy class. The
// stall lands wherever the byte count says, typically mid-record, so a
// deframer must tolerate an arbitrarily long gap inside a record.
func Staller(afterBytes int, d time.Duration) func([]byte) ([][]byte, error) {
	seen := 0
	stalled := false
	return func(chunk []byte) ([][]byte, error) {
		seen += len(chunk)
		if !stalled && seen >= afterBytes {
			stalled = true
			time.Sleep(d)
		}
		return [][]byte{chunk}, nil
	}
}

// Aborter returns a mangler that kills the connection (both directions)
// after forwarding exactly afterBytes — the crash-mid-transfer fault.
// The cut can land inside a record: the receiver holds an undecryptable
// prefix and must recover via failover replay, not by reparsing.
func Aborter(afterBytes int) func([]byte) ([][]byte, error) {
	seen := 0
	return func(chunk []byte) ([][]byte, error) {
		if seen >= afterBytes {
			return nil, errBlocked
		}
		if rem := afterBytes - seen; len(chunk) > rem {
			seen = afterBytes
			return [][]byte{chunk[:rem]}, errBlocked
		}
		seen += len(chunk)
		return [][]byte{chunk}, nil
	}
}

// RejectTCPLSHello returns an Inspect hook that aborts connections whose
// ClientHello advertises the TCPLS Hello extension — the overly strict
// firewall of Sec. 5.2 that forces the client's explicit fallback.
func RejectTCPLSHello() func([]byte) error {
	return func(first []byte) error {
		if containsTCPLSHello(first) {
			return errBlocked
		}
		return nil
	}
}

var errBlocked = io.ErrClosedPipe

// containsTCPLSHello scans a raw first flight for the TCPLS Hello
// extension codepoint inside a TLS handshake record. The scan is the
// kind of shallow pattern match real DPI boxes perform.
func containsTCPLSHello(b []byte) bool {
	// Must look like a TLS handshake record carrying a ClientHello.
	if len(b) < 6 || b[0] != 22 || b[5] != 1 {
		return false
	}
	// Scan for the extension codepoint 0xfa00 followed by a plausible
	// length field.
	for i := 5; i+4 <= len(b); i++ {
		if b[i] == 0xfa && b[i+1] == 0x00 {
			elen := int(wire.Uint16(b[i+2:]))
			if i+4+elen <= len(b) {
				return true
			}
		}
	}
	return false
}
