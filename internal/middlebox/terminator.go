package middlebox

import (
	"context"
	"io"
	"sync"

	"tcpls"
)

// TLSTerminator is a transparent TLS-terminating proxy (the mitmproxy
// configuration of Sec. 5.2): it terminates the client's session with
// its own certificate, originates a fresh session to the real server,
// and relays stream data between the two. It does not speak TCPLS on
// either leg, so:
//
//   - a TCPLS client passing through it observes no TCPLS Hello echo
//     and falls back to plain TLS (the paper's implicit fallback);
//   - a client that pins the real server's key detects the proxy.
type TLSTerminator struct {
	ln       *tcpls.Listener
	target   string
	cert     *tcpls.Certificate
	wg       sync.WaitGroup
	sessions int
	mu       sync.Mutex
}

// NewTLSTerminator starts a terminating proxy toward target using its
// own fresh identity.
func NewTLSTerminator(target string) (*TLSTerminator, error) {
	cert, err := tcpls.NewCertificate("proxy.middlebox")
	if err != nil {
		return nil, err
	}
	ln, err := tcpls.Listen("tcp", "127.0.0.1:0", &tcpls.Config{
		Certificate:  cert,
		DisableTCPLS: true, // the proxy is a plain TLS device
	})
	if err != nil {
		return nil, err
	}
	t := &TLSTerminator{ln: ln, target: target, cert: cert}
	go t.acceptLoop()
	return t, nil
}

// Addr returns the proxy's listening address.
func (t *TLSTerminator) Addr() string { return t.ln.Addr().String() }

// Certificate returns the proxy's own identity (what pinning clients
// will see instead of the real server's).
func (t *TLSTerminator) Certificate() *tcpls.Certificate { return t.cert }

// Sessions returns how many client sessions the proxy terminated.
func (t *TLSTerminator) Sessions() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions
}

// Close stops the proxy.
func (t *TLSTerminator) Close() error { return t.ln.Close() }

func (t *TLSTerminator) acceptLoop() {
	for {
		clientSess, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		t.sessions++
		t.mu.Unlock()
		go t.relay(clientSess)
	}
}

// relay maps each client stream onto a fresh upstream stream.
func (t *TLSTerminator) relay(clientSess *tcpls.Session) {
	defer clientSess.Close()
	upstream, err := tcpls.Dial("tcp", t.target, &tcpls.Config{DisableTCPLS: true})
	if err != nil {
		return
	}
	defer upstream.Close()
	for {
		cs, err := clientSess.AcceptStream(context.Background())
		if err != nil {
			return
		}
		us, err := upstream.OpenStream()
		if err != nil {
			return
		}
		go proxyPair(cs, us)
	}
}

func proxyPair(a, b io.ReadWriteCloser) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); io.Copy(b, a); b.Close() }()
	go func() { defer wg.Done(); io.Copy(a, b); a.Close() }()
	wg.Wait()
}
