package resume

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSealOpenRoundTrip(t *testing.T) {
	ks, err := NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	psk := bytes.Repeat([]byte{0xab}, 32)
	ticket, err := ks.Seal(psk)
	if err != nil {
		t.Fatal(err)
	}
	got, issued, reissue, err := ks.OpenTicket(ticket)
	if err != nil {
		t.Fatal(err)
	}
	if reissue {
		t.Fatal("current-generation ticket flagged for reissue")
	}
	if !bytes.Equal(got, psk) {
		t.Fatalf("psk mismatch: %x != %x", got, psk)
	}
	if d := time.Since(issued); d < 0 || d > time.Minute {
		t.Fatalf("sealed issuance stamp %v not near now", issued)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	ks1, err := Open(path, []byte("hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	psk := bytes.Repeat([]byte{7}, 32)
	ticket, err := ks1.Seal(psk)
	if err != nil {
		t.Fatal(err)
	}

	// Simulated restart: a fresh store from the same file opens the
	// ticket the old process sealed.
	ks2, err := Open(path, []byte("hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := ks2.OpenTicket(ticket)
	if err != nil {
		t.Fatalf("ticket did not survive restart: %v", err)
	}
	if !bytes.Equal(got, psk) {
		t.Fatal("psk mismatch after restart")
	}

	// Wrong passphrase must fail with the typed error, not garbage keys.
	if _, err := Open(path, []byte("wrong")); !errors.Is(err, ErrBadKeyFile) {
		t.Fatalf("wrong passphrase: got %v, want ErrBadKeyFile", err)
	}
}

func TestRotationWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	ks, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	psk := bytes.Repeat([]byte{1}, 32)
	gen1, err := ks.Seal(psk)
	if err != nil {
		t.Fatal(err)
	}

	// One rotation: the old ticket still opens, but flags reissue.
	if err := ks.Rotate(); err != nil {
		t.Fatal(err)
	}
	if g := ks.Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
	got, _, reissue, err := ks.OpenTicket(gen1)
	if err != nil {
		t.Fatalf("N-1 ticket rejected: %v", err)
	}
	if !reissue {
		t.Fatal("N-1 ticket not flagged for reissue")
	}
	if !bytes.Equal(got, psk) {
		t.Fatal("psk mismatch")
	}

	// Second rotation ages generation 1 out entirely.
	if err := ks.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ks.OpenTicket(gen1); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("aged-out ticket: got %v, want ErrBadTicket", err)
	}
	if n := ks.Len(); n != DefaultAcceptWindow {
		t.Fatalf("accepted generations = %d, want %d", n, DefaultAcceptWindow)
	}

	// The rotated state persisted: a reopen accepts current-gen tickets
	// and still rejects the aged-out one.
	cur, err := ks.Seal(psk)
	if err != nil {
		t.Fatal(err)
	}
	ks2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ks2.OpenTicket(cur); err != nil {
		t.Fatalf("current ticket after reopen: %v", err)
	}
	if _, _, _, err := ks2.OpenTicket(gen1); !errors.Is(err, ErrBadTicket) {
		t.Fatal("aged-out ticket accepted after reopen")
	}
}

func TestOpenTicketRejectsForgery(t *testing.T) {
	ks, err := NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := ks.Seal(bytes.Repeat([]byte{2}, 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func([]byte){
		func(b []byte) { b[0] ^= 1 },            // generation tag
		func(b []byte) { b[5] ^= 1 },            // nonce
		func(b []byte) { b[len(b)-1] ^= 1 },     // tag
		func(b []byte) { b[genLen+13] ^= 0x80 }, // ciphertext
	} {
		forged := append([]byte(nil), ticket...)
		mutate(forged)
		if _, _, _, err := ks.OpenTicket(forged); !errors.Is(err, ErrBadTicket) {
			t.Fatalf("forged ticket accepted: %v", err)
		}
	}
	if _, _, _, err := ks.OpenTicket(nil); !errors.Is(err, ErrBadTicket) {
		t.Fatal("empty ticket accepted")
	}
}

func TestKeyFileRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	if _, err := Open(path, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(raw); i += 7 {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		badPath := path + ".bad"
		if err := os.WriteFile(badPath, bad, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(badPath, nil); !errors.Is(err, ErrBadKeyFile) {
			t.Fatalf("corrupt byte %d: got %v, want ErrBadKeyFile", i, err)
		}
	}
}

func TestReplayStrikes(t *testing.T) {
	now := time.Unix(1000, 0)
	r := NewReplay(time.Second, 8, now)
	var n1, n2 [ticketNonceLen]byte
	n1[0], n2[0] = 1, 2

	if !r.Observe(n1, now) {
		t.Fatal("first sighting rejected")
	}
	if r.Observe(n1, now) {
		t.Fatal("replay accepted")
	}
	if !r.Observe(n2, now.Add(500*time.Millisecond)) {
		t.Fatal("distinct nonce rejected")
	}
	// One window later: n1 moved to prev, still remembered.
	if r.Observe(n1, now.Add(1200*time.Millisecond)) {
		t.Fatal("replay accepted after one window rotation")
	}
	// More than two windows later: forgotten, accepted as new.
	if !r.Observe(n1, now.Add(5*time.Second)) {
		t.Fatal("nonce not forgotten after both windows aged out")
	}
}

func TestReplayBoundedAndFailSafe(t *testing.T) {
	now := time.Unix(2000, 0)
	r := NewReplay(time.Minute, 4, now)
	var n [ticketNonceLen]byte
	for i := 0; i < 4; i++ {
		n[0] = byte(i)
		if !r.Observe(n, now) {
			t.Fatalf("sighting %d rejected below capacity", i)
		}
	}
	// At capacity: fresh nonces are rejected (fail safe), not admitted.
	n[0] = 0xff
	if r.Observe(n, now) {
		t.Fatal("over-capacity sighting accepted")
	}
	if e := r.Entries(); e > 2*4 {
		t.Fatalf("entries = %d, exceeds 2x capacity bound", e)
	}
}

func TestObserveFreshGates(t *testing.T) {
	birth := time.Unix(3000, 0)
	r := NewReplay(time.Second, 8, birth)
	var n [ticketNonceLen]byte

	// Issued before the register existed: the flight could have been
	// recorded against a previous process. Rejected.
	n[0] = 1
	if r.ObserveFresh(n, birth.Add(-time.Millisecond), birth) {
		t.Fatal("pre-birth ticket accepted")
	}
	// Older than one window: the register may have forgotten it.
	n[0] = 2
	if r.ObserveFresh(n, birth.Add(time.Second), birth.Add(2*time.Second+time.Millisecond)) {
		t.Fatal("stale ticket accepted")
	}
	// Issued in the future (clock skew): could outlive register memory.
	n[0] = 3
	if r.ObserveFresh(n, birth.Add(2*time.Second), birth.Add(time.Second)) {
		t.Fatal("future-issued ticket accepted")
	}
	// Fresh first sighting accepted, replay struck — even right at the
	// freshness boundary, where the strike must still be remembered.
	n[0] = 4
	issued := birth.Add(time.Second)
	if !r.ObserveFresh(n, issued, issued) {
		t.Fatal("fresh first sighting rejected")
	}
	if r.ObserveFresh(n, issued, issued.Add(time.Second)) {
		t.Fatal("replay at the freshness boundary accepted")
	}
}

func TestObserveFreshSingleUseAcrossRotation(t *testing.T) {
	// The invariant the gates exist for: however the observation times
	// fall against window rotations, a nonce ObserveFresh accepted is
	// never accepted again.
	base := time.Unix(4000, 0)
	r := NewReplay(time.Second, 64, base)
	var n [ticketNonceLen]byte
	for i := 0; i < 40; i++ {
		n[0] = byte(i)
		issued := base.Add(time.Duration(i*37) * time.Millisecond)
		first := issued.Add(time.Duration(i%7) * 100 * time.Millisecond)
		if !r.ObserveFresh(n, issued, first) {
			continue // rejected outright is fine; it must stay rejected
		}
		for _, dt := range []time.Duration{0, 300 * time.Millisecond, 700 * time.Millisecond, time.Second} {
			at := first.Add(dt)
			if at.Sub(issued) > time.Second {
				break
			}
			if r.ObserveFresh(n, issued, at) {
				t.Fatalf("nonce %d re-accepted %v after first sighting", i, dt)
			}
		}
	}
}

func TestTicketNonceMatchesSeal(t *testing.T) {
	ks, err := NewMemory()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := ks.Seal(bytes.Repeat([]byte{3}, 32))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ks.Seal(bytes.Repeat([]byte{3}, 32))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := TicketNonce(t1)
	if !ok {
		t.Fatal("nonce extraction failed")
	}
	b, ok := TicketNonce(t2)
	if !ok {
		t.Fatal("nonce extraction failed")
	}
	if a == b {
		t.Fatal("two seals produced the same nonce")
	}
	if _, ok := TicketNonce([]byte{1, 2, 3}); ok {
		t.Fatal("short ticket yielded a nonce")
	}
}
