package resume

import (
	"sync"
	"time"
)

// Replay defaults: two rotating windows of DefaultReplayWindow each, so
// a strike is remembered between one and two windows — longer than any
// plausible 0-RTT flight reordering — with at most 2×DefaultReplayCap
// entries alive.
const (
	DefaultReplayWindow = 30 * time.Second
	DefaultReplayCap    = 4096
)

// Replay is the bounded anti-replay strike register gating 0-RTT early
// data (the ticket-nonce strike register of RFC 8446 §8's single-use
// model, bounded like QUIC server deployments bound theirs). It keys
// strikes on the ticket's unique nonce: replaying an early-data first
// flight necessarily replays the ticket, hence the nonce.
//
// Memory is bounded two ways: entries older than two windows are gone
// (the windows rotate wholesale, no per-entry timers), and a window that
// reaches its capacity fails safe — further first sightings are REJECTED
// (falling back to 1-RTT) rather than admitted untracked, so an attacker
// flooding the register cannot widen the replay window.
type Replay struct {
	mu       sync.Mutex
	window   time.Duration
	capacity int

	cur      map[[ticketNonceLen]byte]struct{}
	prev     map[[ticketNonceLen]byte]struct{}
	curStart time.Time

	accepted uint64
	rejected uint64
}

// NewReplay builds a strike register with the given rotation window and
// per-window capacity; zero or negative values select the defaults.
func NewReplay(window time.Duration, capacity int) *Replay {
	if window <= 0 {
		window = DefaultReplayWindow
	}
	if capacity <= 0 {
		capacity = DefaultReplayCap
	}
	return &Replay{
		window:   window,
		capacity: capacity,
		cur:      make(map[[ticketNonceLen]byte]struct{}),
		prev:     make(map[[ticketNonceLen]byte]struct{}),
	}
}

// Observe records the first sighting of nonce and returns true; a nonce
// already seen within the last one-to-two windows returns false, as does
// a first sighting when the current window is full (fail-safe: the
// caller falls back to 1-RTT, which is always correct).
func (r *Replay) Observe(nonce [ticketNonceLen]byte, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rotateLocked(now)
	if _, seen := r.cur[nonce]; seen {
		r.rejected++
		return false
	}
	if _, seen := r.prev[nonce]; seen {
		r.rejected++
		return false
	}
	if len(r.cur) >= r.capacity {
		r.rejected++
		return false
	}
	r.cur[nonce] = struct{}{}
	r.accepted++
	return true
}

// rotateLocked advances the two-window scheme: after one window the
// current set becomes the previous; after two both are empty.
func (r *Replay) rotateLocked(now time.Time) {
	if r.curStart.IsZero() {
		r.curStart = now
		return
	}
	elapsed := now.Sub(r.curStart)
	switch {
	case elapsed >= 2*r.window:
		r.cur = make(map[[ticketNonceLen]byte]struct{})
		r.prev = make(map[[ticketNonceLen]byte]struct{})
		r.curStart = now
	case elapsed >= r.window:
		r.prev = r.cur
		r.cur = make(map[[ticketNonceLen]byte]struct{})
		r.curStart = r.curStart.Add(r.window)
	}
}

// Entries reports how many strikes are currently held (both windows) —
// the number the bounded-memory invariant watches.
func (r *Replay) Entries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cur) + len(r.prev)
}

// Stats reports lifetime accept/reject counts.
func (r *Replay) Stats() (accepted, rejected uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.accepted, r.rejected
}
