package resume

import (
	"sync"
	"time"
)

// Replay defaults: two rotating windows of DefaultReplayWindow each, so
// a strike is remembered between one and two windows — longer than any
// plausible 0-RTT flight reordering — with at most 2×DefaultReplayCap
// entries alive.
const (
	DefaultReplayWindow = 30 * time.Second
	DefaultReplayCap    = 4096
)

// Replay is the bounded anti-replay strike register gating 0-RTT early
// data (the ticket-nonce strike register of RFC 8446 §8's single-use
// model, bounded like QUIC server deployments bound theirs). It keys
// strikes on the ticket's unique nonce: replaying an early-data first
// flight necessarily replays the ticket, hence the nonce.
//
// Memory is bounded two ways: entries older than two windows are gone
// (the windows rotate wholesale, no per-entry timers), and a window that
// reaches its capacity fails safe — further first sightings are REJECTED
// (falling back to 1-RTT) rather than admitted untracked, so an attacker
// flooding the register cannot widen the replay window.
//
// The register alone cannot make 0-RTT single-use: it forgets nonces
// after two windows, and it starts empty on every process restart while
// ticket keys persist. ObserveFresh closes both gaps with the sealed
// issuance stamp: flights whose ticket is older than one window, or was
// issued before this register existed, are rejected outright — so every
// flight the register ever accepts is still remembered whenever a
// replay of it could arrive.
type Replay struct {
	mu       sync.Mutex
	window   time.Duration
	capacity int
	birth    time.Time

	cur      map[[ticketNonceLen]byte]struct{}
	prev     map[[ticketNonceLen]byte]struct{}
	curStart time.Time

	accepted uint64
	rejected uint64
}

// NewReplay builds a strike register with the given rotation window and
// per-window capacity; zero or negative values select the defaults. now
// is the register's birth: ObserveFresh refuses tickets issued before
// it, which is what keeps a recorded 0-RTT flight from replaying into
// the empty register of a restarted process.
func NewReplay(window time.Duration, capacity int, now time.Time) *Replay {
	if window <= 0 {
		window = DefaultReplayWindow
	}
	if capacity <= 0 {
		capacity = DefaultReplayCap
	}
	return &Replay{
		window:   window,
		capacity: capacity,
		// Tickets stamp issuance at millisecond precision; truncate the
		// birth the same way so a ticket sealed by this process a moment
		// after creation never rounds down to "before birth".
		birth: now.Truncate(time.Millisecond),
		cur:   make(map[[ticketNonceLen]byte]struct{}),
		prev:  make(map[[ticketNonceLen]byte]struct{}),
	}
}

// Observe records the first sighting of nonce and returns true; a nonce
// already seen within the last one-to-two windows returns false, as does
// a first sighting when the current window is full (fail-safe: the
// caller falls back to 1-RTT, which is always correct). Observe applies
// no freshness policy — 0-RTT gating must go through ObserveFresh;
// Observe exists for callers that manage ticket lifetime themselves
// (the fleet harness's bounded-memory oracle).
func (r *Replay) Observe(nonce [ticketNonceLen]byte, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.observeLocked(nonce, now)
}

// ObserveFresh is the full 0-RTT acceptance check: the ticket's sealed
// issuance stamp must be fresh, and its nonce unseen. Rejections (all
// safe — the flight falls back to 1-RTT):
//
//   - issued before this register's birth: the flight could have been
//     recorded against a previous process whose strikes died with it;
//   - older than one window: the register may already have forgotten an
//     earlier acceptance of the same nonce;
//   - issued in the future: another fleet member's clock is ahead, and
//     a skewed stamp could otherwise outlive the register's memory;
//   - nonce seen, or window full (Observe's rules).
//
// A strike is remembered for at least one full window, so every flight
// ObserveFresh accepts is still remembered at any moment a replay of it
// would itself pass the freshness gate.
func (r *Replay) ObserveFresh(nonce [ticketNonceLen]byte, issued, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if issued.Before(r.birth) || issued.After(now) || now.Sub(issued) > r.window {
		r.rejected++
		return false
	}
	return r.observeLocked(nonce, now)
}

func (r *Replay) observeLocked(nonce [ticketNonceLen]byte, now time.Time) bool {
	r.rotateLocked(now)
	if _, seen := r.cur[nonce]; seen {
		r.rejected++
		return false
	}
	if _, seen := r.prev[nonce]; seen {
		r.rejected++
		return false
	}
	if len(r.cur) >= r.capacity {
		r.rejected++
		return false
	}
	r.cur[nonce] = struct{}{}
	r.accepted++
	return true
}

// rotateLocked advances the two-window scheme: after one window the
// current set becomes the previous; after two both are empty.
func (r *Replay) rotateLocked(now time.Time) {
	if r.curStart.IsZero() {
		r.curStart = now
		return
	}
	elapsed := now.Sub(r.curStart)
	switch {
	case elapsed >= 2*r.window:
		r.cur = make(map[[ticketNonceLen]byte]struct{})
		r.prev = make(map[[ticketNonceLen]byte]struct{})
		r.curStart = now
	case elapsed >= r.window:
		r.prev = r.cur
		r.cur = make(map[[ticketNonceLen]byte]struct{})
		r.curStart = r.curStart.Add(r.window)
	}
}

// Entries reports how many strikes are currently held (both windows) —
// the number the bounded-memory invariant watches.
func (r *Replay) Entries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cur) + len(r.prev)
}

// Stats reports lifetime accept/reject counts.
func (r *Replay) Stats() (accepted, rejected uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.accepted, r.rejected
}
