// Package resume implements the server-side state behind low-latency
// session establishment (paper §4.5): a persistent, generation-tagged
// ticket-key store so resumption tickets survive server restarts, and a
// bounded anti-replay strike register gating 0-RTT early data.
//
// The key store replaces the throwaway per-process sealer key: keys live
// in an encrypted file, new generations are minted by Rotate, the
// previous generations stay accepted for a grace window, and a ticket
// opened under an old generation is flagged for re-issue so clients
// migrate forward without ever falling back to a full handshake.
package resume

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"io"
	"os"
	"sync"
	"time"

	"crypto/sha256"
	"hash"

	"tcpls/internal/hkdf"
	"tcpls/internal/wire"
)

// Typed rejects: hostile ticket or key-file bytes must land here, never
// in a panic or an attacker-sized allocation.
var (
	// ErrBadTicket rejects a ticket that is malformed, forged, or sealed
	// under a generation no longer accepted.
	ErrBadTicket = errors.New("resume: bad ticket")
	// ErrBadKeyFile rejects a key file that is truncated, corrupt, or
	// encrypted under a different passphrase.
	ErrBadKeyFile = errors.New("resume: bad key file")
	// ErrNoKeys means the store holds no keys (never happens through the
	// constructors; guards a zero-value KeyStore).
	ErrNoKeys = errors.New("resume: key store is empty")
)

// Sizes of the pieces of the on-disk format and the ticket format.
const (
	keyLen         = 32 // AES-256-GCM ticket keys
	saltLen        = 16
	fileNonceLen   = 12
	ticketNonceLen = 12
	genLen         = 4
	issuedLen      = 8                   // issuance stamp sealed inside the ticket
	entryLen       = genLen + 8 + keyLen // gen | created unix secs | key

	// maxKeyFileEntries bounds parsing: the accept window is small, so a
	// file claiming thousands of keys is hostile, not operational.
	maxKeyFileEntries = 64
)

// fileMagic identifies version 1 of the encrypted key file.
var fileMagic = []byte("TCPLSTK1")

// DefaultAcceptWindow is how many generations (newest first) a store
// accepts by default: the current key and one predecessor, so a rotation
// never strands tickets minted moments before it.
const DefaultAcceptWindow = 2

// ticketKey is one generation of the sealing key.
type ticketKey struct {
	gen     uint32
	created time.Time
	raw     [keyLen]byte
	aead    cipher.AEAD
}

// KeyStore seals resumption PSKs into opaque tickets and recovers them,
// under generation-tagged keys that persist across process restarts.
// All methods are safe for concurrent use.
type KeyStore struct {
	mu         sync.Mutex
	path       string // "" = memory-only (no persistence)
	passphrase []byte
	window     int
	keys       []ticketKey // newest first
	now        func() time.Time
}

// NewMemory creates an ephemeral store with one fresh key and no backing
// file — the behaviour of the pre-keystore sealer, used when no key file
// is configured.
func NewMemory() (*KeyStore, error) {
	ks := &KeyStore{window: DefaultAcceptWindow, now: time.Now}
	if err := ks.addKeyLocked(1); err != nil {
		return nil, err
	}
	return ks, nil
}

// Open loads the key store at path, creating it with one fresh key if it
// does not exist. The file is encrypted and integrity-protected under a
// key derived from passphrase (empty passphrase is allowed: the file is
// then protected by its 0600 permissions and still tamper-evident).
func Open(path string, passphrase []byte) (*KeyStore, error) {
	ks := &KeyStore{
		path:       path,
		passphrase: append([]byte(nil), passphrase...),
		window:     DefaultAcceptWindow,
		now:        time.Now,
	}
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := ks.decodeLocked(raw); err != nil {
			return nil, err
		}
		return ks, nil
	case errors.Is(err, os.ErrNotExist):
		if err := ks.addKeyLocked(1); err != nil {
			return nil, err
		}
		if err := ks.persistLocked(); err != nil {
			return nil, err
		}
		return ks, nil
	default:
		return nil, err
	}
}

// SetAcceptWindow adjusts how many generations stay accepted (minimum 1).
func (ks *KeyStore) SetAcceptWindow(n int) {
	if n < 1 {
		n = 1
	}
	ks.mu.Lock()
	ks.window = n
	ks.mu.Unlock()
}

// setClock is a test hook.
func (ks *KeyStore) setClock(fn func() time.Time) {
	ks.mu.Lock()
	ks.now = fn
	ks.mu.Unlock()
}

// addKeyLocked mints a fresh key as generation gen and prepends it.
func (ks *KeyStore) addKeyLocked(gen uint32) error {
	var k ticketKey
	k.gen = gen
	if ks.now != nil {
		k.created = ks.now()
	} else {
		k.created = time.Now()
	}
	if _, err := io.ReadFull(rand.Reader, k.raw[:]); err != nil {
		return err
	}
	aead, err := newTicketAEAD(k.raw[:])
	if err != nil {
		return err
	}
	k.aead = aead
	ks.keys = append([]ticketKey{k}, ks.keys...)
	return nil
}

func newTicketAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Rotate mints a new key generation, keeps the previous window-1
// generations accepted, drops everything older, and persists the result
// when the store is file-backed. Tickets sealed under a dropped
// generation fail OpenTicket and fall back to a full handshake; tickets
// under a still-accepted old generation open with reissue=true.
func (ks *KeyStore) Rotate() error {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	next := uint32(1)
	if len(ks.keys) > 0 {
		next = ks.keys[0].gen + 1
	}
	if err := ks.addKeyLocked(next); err != nil {
		return err
	}
	if len(ks.keys) > ks.window {
		ks.keys = ks.keys[:ks.window]
	}
	return ks.persistLocked()
}

// Generation returns the current (sealing) key generation.
func (ks *KeyStore) Generation() uint32 {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if len(ks.keys) == 0 {
		return 0
	}
	return ks.keys[0].gen
}

// Len returns how many generations are currently accepted.
func (ks *KeyStore) Len() int {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return len(ks.keys)
}

// Seal encrypts psk into an opaque ticket under the newest key:
//
//	gen(4) | nonce(12) | AEAD(issued(8) | psk, aad=gen)
//
// The nonce doubles as the ticket's unique identity for the 0-RTT
// anti-replay register (TicketNonce). The issuance stamp (unix
// milliseconds, sealed so clients cannot forge it) bounds how old a
// ticket may be for 0-RTT: the strike register only remembers nonces
// for a window, so flights under older tickets must not be accepted
// (RFC 8446 §8 pairs the register with exactly this freshness check).
func (ks *KeyStore) Seal(psk []byte) ([]byte, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if len(ks.keys) == 0 {
		return nil, ErrNoKeys
	}
	k := &ks.keys[0]
	now := time.Now()
	if ks.now != nil {
		now = ks.now()
	}
	inner := make([]byte, 0, issuedLen+len(psk))
	inner = wire.AppendUint64(inner, uint64(now.UnixMilli()))
	inner = append(inner, psk...)
	out := make([]byte, 0, genLen+ticketNonceLen+len(inner)+k.aead.Overhead())
	out = wire.AppendUint32(out, k.gen)
	nonceStart := len(out)
	out = out[:nonceStart+ticketNonceLen]
	if _, err := io.ReadFull(rand.Reader, out[nonceStart:]); err != nil {
		return nil, err
	}
	return k.aead.Seal(out, out[nonceStart:], inner, out[:genLen]), nil
}

// OpenTicket recovers the PSK and the sealed issuance time from a
// ticket. reissue reports that the ticket was sealed under an
// old-but-accepted generation: the caller should mint the client a
// fresh ticket so it migrates to the current key before the old
// generation ages out.
func (ks *KeyStore) OpenTicket(ticket []byte) (psk []byte, issued time.Time, reissue bool, err error) {
	if len(ticket) < genLen+ticketNonceLen+1 {
		return nil, time.Time{}, false, ErrBadTicket
	}
	gen := wire.Uint32(ticket[:genLen])
	ks.mu.Lock()
	defer ks.mu.Unlock()
	for i := range ks.keys {
		k := &ks.keys[i]
		if k.gen != gen {
			continue
		}
		nonce := ticket[genLen : genLen+ticketNonceLen]
		inner, err := k.aead.Open(nil, nonce, ticket[genLen+ticketNonceLen:], ticket[:genLen])
		if err != nil || len(inner) < issuedLen {
			return nil, time.Time{}, false, ErrBadTicket
		}
		issued := time.UnixMilli(int64(wire.Uint64(inner[:issuedLen])))
		return inner[issuedLen:], issued, i > 0, nil
	}
	return nil, time.Time{}, false, ErrBadTicket
}

// TicketNonce extracts a ticket's unique identity — the AEAD nonce the
// sealing key used — without opening it. The 0-RTT anti-replay register
// keys its strike entries on this value: a replayed first flight
// necessarily replays the same ticket bytes, hence the same nonce.
func TicketNonce(ticket []byte) ([ticketNonceLen]byte, bool) {
	var n [ticketNonceLen]byte
	if len(ticket) < genLen+ticketNonceLen+1 {
		return n, false
	}
	copy(n[:], ticket[genLen:genLen+ticketNonceLen])
	return n, true
}

// fileKey derives the file-encryption key from the passphrase and salt.
func fileKey(passphrase, salt []byte) []byte {
	newHash := func() hash.Hash { return sha256.New() }
	prk := hkdf.Extract(newHash, passphrase, salt)
	return hkdf.ExpandLabel(newHash, prk, "ticket key file", nil, keyLen)
}

// persistLocked writes the encrypted key file atomically (tmp + rename).
func (ks *KeyStore) persistLocked() error {
	if ks.path == "" {
		return nil
	}
	payload := make([]byte, 0, 2+len(ks.keys)*entryLen)
	payload = wire.AppendUint16(payload, uint16(len(ks.keys)))
	for i := range ks.keys {
		k := &ks.keys[i]
		payload = wire.AppendUint32(payload, k.gen)
		payload = wire.AppendUint64(payload, uint64(k.created.Unix()))
		payload = append(payload, k.raw[:]...)
	}

	out := make([]byte, 0, len(fileMagic)+saltLen+fileNonceLen+len(payload)+16)
	out = append(out, fileMagic...)
	salt := make([]byte, saltLen)
	if _, err := io.ReadFull(rand.Reader, salt); err != nil {
		return err
	}
	out = append(out, salt...)
	nonce := make([]byte, fileNonceLen)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return err
	}
	out = append(out, nonce...)
	aead, err := newTicketAEAD(fileKey(ks.passphrase, salt))
	if err != nil {
		return err
	}
	out = aead.Seal(out, nonce, payload, out[:len(fileMagic)+saltLen])

	tmp := ks.path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, ks.path)
}

// decodeLocked parses and decrypts a key file into the store.
func (ks *KeyStore) decodeLocked(raw []byte) error {
	hdr := len(fileMagic) + saltLen + fileNonceLen
	if len(raw) < hdr+16 || string(raw[:len(fileMagic)]) != string(fileMagic) {
		return ErrBadKeyFile
	}
	salt := raw[len(fileMagic) : len(fileMagic)+saltLen]
	nonce := raw[len(fileMagic)+saltLen : hdr]
	aead, err := newTicketAEAD(fileKey(ks.passphrase, salt))
	if err != nil {
		return err
	}
	payload, err := aead.Open(nil, nonce, raw[hdr:], raw[:len(fileMagic)+saltLen])
	if err != nil {
		return ErrBadKeyFile
	}
	r := wire.NewReader(payload)
	count := int(r.Uint16())
	if r.Err() != nil || count == 0 || count > maxKeyFileEntries || r.Len() != count*entryLen {
		return ErrBadKeyFile
	}
	keys := make([]ticketKey, 0, count)
	for i := 0; i < count; i++ {
		var k ticketKey
		k.gen = r.Uint32()
		k.created = time.Unix(int64(r.Uint64()), 0)
		copy(k.raw[:], r.Bytes(keyLen))
		if r.Err() != nil {
			return ErrBadKeyFile
		}
		if k.aead, err = newTicketAEAD(k.raw[:]); err != nil {
			return err
		}
		keys = append(keys, k)
	}
	// Generations must be strictly descending (newest first): duplicate
	// or shuffled generations would make reissue decisions ambiguous.
	for i := 1; i < len(keys); i++ {
		if keys[i].gen >= keys[i-1].gen {
			return ErrBadKeyFile
		}
	}
	ks.keys = keys
	return nil
}
