package resume

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzTicket feeds hostile bytes to both parsers that accept
// attacker-controlled input: OpenTicket (tickets arrive in plaintext
// ClientHellos) and the key-file decoder (an operator may point the
// server at a tampered file). Rejects must be the typed errors — never a
// panic, and never an allocation sized by claimed lengths.
func FuzzTicket(f *testing.F) {
	ks, err := NewMemory()
	if err != nil {
		f.Fatal(err)
	}
	genuine, err := ks.Seal(bytes.Repeat([]byte{0x42}, 32))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(append([]byte(nil), fileMagic...))

	dir := f.TempDir()
	path := filepath.Join(dir, "seed-keys")
	if _, err := Open(path, nil); err != nil {
		f.Fatal(err)
	}
	if raw, err := os.ReadFile(path); err == nil {
		f.Add(raw)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Ticket path: any outcome but a genuine open must be ErrBadTicket.
		if psk, _, _, err := ks.OpenTicket(data); err != nil {
			if !errors.Is(err, ErrBadTicket) {
				t.Fatalf("untyped ticket reject: %v", err)
			}
			if psk != nil {
				t.Fatal("reject returned a psk")
			}
		}

		// Key-file path: decode through a fresh store so state never
		// leaks between inputs. Only ErrBadKeyFile may reject.
		tmp := &KeyStore{window: DefaultAcceptWindow}
		if err := tmp.decodeLocked(data); err != nil {
			if !errors.Is(err, ErrBadKeyFile) {
				t.Fatalf("untyped key-file reject: %v", err)
			}
		} else if len(tmp.keys) == 0 || len(tmp.keys) > maxKeyFileEntries {
			t.Fatalf("accepted key file with %d keys", len(tmp.keys))
		}
	})
}
