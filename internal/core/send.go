package core

import (
	"sort"
	"time"

	"tcpls/internal/record"
	"tcpls/internal/sched"
	"tcpls/internal/wire"
)

// Scheduler is the legacy closure form of the coupled-record scheduler:
// called once per record with the coupled streams' IDs and the running
// record index, it returns an index into streams. This is the paper's
// application-exposed sender-side record scheduler (§3.3.3). New code
// should implement sched.Scheduler and install it with
// SetPathScheduler; closures are adapted via sched.Func.
type Scheduler func(recordIdx uint64, streams []uint32) int

// RoundRobin is the default coupled-stream scheduler (§5.1 uses it).
func RoundRobin(recordIdx uint64, streams []uint32) int {
	return int(recordIdx % uint64(len(streams)))
}

// SetScheduler replaces the coupled-stream scheduler with a legacy
// closure (adapted onto the stateful scheduler interface).
//
// Contract: the closure must return an index in [0, len(streams)). An
// out-of-range index is NOT honoured — the engine emits a
// sched_invalid trace event and falls back to the first coupled
// stream, so a buggy scheduler degrades to pinned rather than
// crashing. nil restores the default round-robin.
func (s *Session) SetScheduler(fn Scheduler) {
	s.telPicks = nil
	if fn == nil {
		s.pathSched = nil
		return
	}
	s.pathSched = sched.Func(fn)
}

// SetPathScheduler installs a stateful path scheduler (§3.3.3). The
// engine serializes all scheduler calls; one scheduler instance must
// not be shared across sessions. nil restores the default round-robin.
func (s *Session) SetPathScheduler(ps sched.Scheduler) {
	s.pathSched = ps
	s.telPicks = nil // re-resolve the per-policy pick counter lazily
}

func (s *Session) scheduler() sched.Scheduler {
	if s.pathSched == nil {
		s.pathSched = sched.RoundRobin()
	}
	if s.tel != nil && s.telPicks == nil {
		s.telPicks = s.tel.SchedPicks(s.pathSched.Name())
	}
	return s.pathSched
}

// Flush frames all queued application data into encrypted records on
// their connections' output buffers. Call before draining Outgoing.
func (s *Session) Flush() error {
	if s.tracer != nil {
		// Send-path trace events happen now, not at the last receive.
		s.lastNow = s.now()
	}
	// Coupled group first: distribute records across coupled streams.
	if err := s.flushCoupled(); err != nil {
		return err
	}
	// Then per-stream queues, in stream-ID order for determinism.
	for _, id := range s.sortedStreamIDs() {
		st := s.streams[id]
		if err := s.flushStream(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *Session) sortedStreamIDs() []uint32 {
	ids := s.Streams()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// solicitAck sends one AckRequest for st on its connection (§4.2's ctl
// path): a sender whose retransmit buffer approaches its budget asks
// for a fresh cumulative ack instead of waiting out the receiver's
// batching policy (or a lost ack). At most one request is in flight per
// stream; handleAck re-arms it when an ack trims the buffer.
func (s *Session) solicitAck(st *stream) {
	if st.ackSolicited || !s.cfg.EnableFailover {
		return
	}
	c, ok := s.conns[st.conn]
	if !ok || c.failed || c.closed {
		return
	}
	if s.sendCtl(c, appendAckRequest(nil, st.id)) != nil {
		return
	}
	st.ackSolicited = true
	s.trace("ack_solicited", c.id, st.id, st.peerAcked, st.retransmitBytes)
	if s.tel != nil {
		s.tel.AckSolicits.Inc()
	}
}

// retransmitParked reports whether st's retransmit buffer is at its
// budget, so sealing must park until ACKs trim it. On the at-cap edge
// it emits one flowctl_limit trace per excursion and (re-)solicits an
// acknowledgment so the stall resolves itself when only an ack was
// lost.
func (s *Session) retransmitParked(st *stream, budget int) bool {
	if budget <= 0 || st.retransmitBytes < budget {
		return false
	}
	if !st.budgetTripped {
		st.budgetTripped = true
		s.trace("flowctl_limit", st.conn, st.id, flowctlRetransmit, st.retransmitBytes)
		if s.tel != nil {
			s.tel.FlowctlLimits.Inc()
		}
	}
	s.solicitAck(st)
	return true
}

// flushStream frames one stream's pending bytes. A stream whose
// connection has failed is parked, not an error: its pending bytes stay
// queued until failover or the recovery supervisor re-homes it. The
// same applies at the retransmit budget: remaining bytes park (with an
// ACK solicitation) until acknowledgments trim the buffer, rather than
// growing it without bound.
func (s *Session) flushStream(st *stream) error {
	if c, ok := s.conns[st.conn]; ok && (c.failed || c.closed) {
		return nil
	}
	max := s.cfg.maxPayload()
	budget := s.cfg.maxRetransmitBytes()
	for len(st.pending) > 0 {
		if s.retransmitParked(st, budget) {
			return nil
		}
		n := len(st.pending)
		if n > max {
			n = max
		}
		chunk := st.pending[:n]
		if err := s.sendStreamRecord(st, chunk, st.coupled); err != nil {
			return err
		}
		st.pending = st.pending[n:]
	}
	if len(st.pending) == 0 {
		st.pending = nil
	}
	// A coupled stream's unsealed bytes live in the shared
	// coupled.pendingData, not st.pending: its FIN must wait for the
	// whole group to drain. Sending it earlier marks the stream finSent,
	// which removes it from coupledStreams() and strands the group's
	// remaining bytes with no stream left to seal them onto.
	if st.coupled && len(s.coupled.pendingData) > 0 {
		return nil
	}
	if st.finQueued && !st.finSent {
		c, err := s.getConn(st.conn)
		if err != nil {
			return err
		}
		if err := s.sendCtl(c, appendStreamFin(nil, st.id, st.sendCtx.Seq())); err != nil {
			return err
		}
		st.finSent = true
	}
	return nil
}

// flushCoupled distributes the coupled group's pending bytes across the
// coupled streams, one record at a time, via the path scheduler. The
// scheduler sees one PathView per coupled stream, refreshed from the
// metrics store once per flush (metrics move on ack/kernel timescales,
// not per record).
func (s *Session) flushCoupled() error {
	if len(s.coupled.pendingData) == 0 {
		return nil
	}
	cs := s.coupledStreams()
	if len(cs) == 0 {
		return ErrNotCoupled
	}
	// Schedule only over streams whose connections are alive and whose
	// retransmit buffers have budget left; with no live path the group's
	// bytes park until recovery re-homes a stream (or ACKs trim a
	// budget-parked buffer).
	budget := s.cfg.maxRetransmitBytes()
	live := cs[:0]
	for _, st := range cs {
		if c, ok := s.conns[st.conn]; ok && !c.failed && !c.closed &&
			!s.retransmitParked(st, budget) {
			live = append(live, st)
		}
	}
	cs = live
	if len(cs) == 0 {
		return nil
	}
	views := make([]sched.PathView, len(cs))
	for i, st := range cs {
		views[i] = sched.PathView{Stream: st.id, Conn: st.conn}
		if s.metrics != nil {
			s.metrics.Fill(&views[i])
		}
	}
	max := s.cfg.maxPayload()
	ps := s.scheduler()
	for len(s.coupled.pendingData) > 0 {
		n := len(s.coupled.pendingData)
		if n > max {
			n = max
		}
		chunk := s.coupled.pendingData[:n]
		idx := ps.Pick(s.coupled.sendSeq, views)
		if idx == sched.PickAll {
			// Redundant scheduling: the same aggregation sequence goes
			// out on every path; the receiver's reorder buffer keeps
			// exactly one copy. Replicas that crossed their retransmit
			// budget mid-flush are skipped; with none open the rest of
			// the group's bytes park for a later flush. One shared
			// immutable copy backs every replica's retransmit entry —
			// copying per path multiplied memory by the path count.
			var open []*stream
			for _, st := range cs {
				if !s.retransmitParked(st, budget) {
					open = append(open, st)
				}
			}
			if len(open) == 0 {
				return nil
			}
			aggSeq := s.coupled.sendSeq
			s.coupled.sendSeq++
			shared := append([]byte(nil), chunk...)
			for _, st := range open {
				s.trace("sched_pick", st.conn, st.id, aggSeq, n)
				s.telPicks.Inc()
				if err := s.sealStreamRecord(st, chunk, true, aggSeq, s.coupled.pendingSince, shared); err != nil {
					return err
				}
			}
		} else {
			if idx < 0 || idx >= len(cs) {
				// Out-of-range pick: surface it (Bytes carries the bad
				// index) instead of clamping silently, then fall back
				// to the first coupled stream per the SetScheduler
				// contract.
				s.trace("sched_invalid", 0, 0, s.coupled.sendSeq, idx)
				if s.tel != nil {
					s.tel.SchedInvalid.Inc()
				}
				idx = 0
			}
			st := cs[idx]
			if s.retransmitParked(st, budget) {
				// The picked path crossed its retransmit budget mid-
				// flush: park the remaining group bytes; the next flush
				// re-filters the candidate set.
				return nil
			}
			aggSeq := s.coupled.sendSeq
			s.coupled.sendSeq++
			s.trace("sched_pick", st.conn, st.id, aggSeq, n)
			s.telPicks.Inc()
			if err := s.sealStreamRecord(st, chunk, true, aggSeq, s.coupled.pendingSince, nil); err != nil {
				return err
			}
		}
		s.coupled.pendingData = s.coupled.pendingData[n:]
	}
	s.coupled.pendingData = nil
	return nil
}

// sendStreamRecord seals one stream data record, allocating the next
// aggregation sequence when the record belongs to the coupled group.
func (s *Session) sendStreamRecord(st *stream, payload []byte, coupled bool) error {
	var aggSeq uint64
	if coupled {
		aggSeq = s.coupled.sendSeq
		s.coupled.sendSeq++
	}
	return s.sealStreamRecord(st, payload, coupled, aggSeq, st.pendingSince, nil)
}

// sealStreamRecord seals one stream data record onto the stream's
// connection and, when failover is enabled, retains it for replay.
// enqAt is the span's enqueue leg: when the bytes entered the stream's
// pending queue (or the coupled group's). retained, when non-nil, is a
// caller-owned immutable copy of payload to retain instead of copying —
// redundant (PickAll) scheduling shares one copy across all replicas.
func (s *Session) sealStreamRecord(st *stream, payload []byte, coupled bool, aggSeq uint64, enqAt time.Time, retained []byte) error {
	c, err := s.getConn(st.conn)
	if err != nil {
		return err
	}
	if c.failed {
		return ErrConnFailed
	}
	// Scatter-gather seal: payload plus the TCPLS trailer go straight
	// into the connection buffer — the zero-copy send path of §3.1.
	typ := typeStreamData
	var trailer [9]byte
	var tlen int
	if coupled {
		typ = typeStreamDataCoupled
		wire.PutUint64(trailer[:8], aggSeq)
		trailer[8] = byte(typeStreamDataCoupled)
		tlen = 9
	} else {
		trailer[0] = byte(typeStreamData)
		tlen = 1
	}
	seq := st.sendCtx.Seq()
	out, err := st.sendCtx.SealV(c.out, record.ContentTypeApplicationData, s.cfg.PadRecordsTo, payload, trailer[:tlen])
	if err != nil {
		return err
	}
	c.out = out
	s.stats.RecordsSent++
	s.stats.BytesSent += uint64(len(payload))
	s.trace("record_sent", c.id, st.id, seq, len(payload))
	if s.tel != nil {
		c.tel.RecordsSent.Inc()
		c.tel.BytesSent.Add(uint64(len(payload)))
		st.tel.BytesSent.Add(uint64(len(payload)))
		s.tel.RecordSize.Observe(float64(len(payload)))
	}
	if s.pathSched != nil {
		s.pathSched.OnSent(c.id, len(payload))
	}
	if s.cfg.EnableFailover {
		if retained == nil {
			retained = append([]byte(nil), payload...)
		}
		sr := sentRecord{
			seq:      seq,
			typ:      typ,
			payload:  retained,
			aggSeq:   aggSeq,
			sentAt:   s.now(), // seal leg + ACK-driven RTT sampling
			enqAt:    enqAt,
			origConn: c.id,
		}
		if s.metrics != nil {
			// Count the bytes into flight; handleAck reverses this.
			s.metrics.OnSent(c.id, len(payload))
		}
		st.retransmit = append(st.retransmit, sr)
		st.retransmitBytes += len(payload)
		s.noteRetransmitBytes(len(payload))
		if s.stampWrites {
			c.unwritten = append(c.unwritten, spanKey{stream: st.id, seq: seq})
		}
		// Soft watermark: at half the budget, ask the peer for a fresh
		// cumulative ack before the hard park at the budget.
		if budget := s.cfg.maxRetransmitBytes(); budget > 0 && st.retransmitBytes*2 >= budget {
			s.solicitAck(st)
		}
	}
	return nil
}

// SendTCPOption ships an encrypted TCP option on connID's control stream
// (§3.1): reliable, unconstrained by the 40-byte TCP option space, and
// invisible to middleboxes.
func (s *Session) SendTCPOption(connID uint32, kind uint8, value []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendTCPOption(nil, kind, value))
}

// SendAddAddr advertises a local address to the peer mid-session.
func (s *Session) SendAddAddr(connID uint32, addr []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendAddr(nil, typeAddAddr, addr))
}

// SendRemoveAddr withdraws a previously advertised address.
func (s *Session) SendRemoveAddr(connID uint32, addr []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendAddr(nil, typeRemoveAddr, addr))
}

// SendNewCookies replenishes the peer's join-cookie budget (server side).
func (s *Session) SendNewCookies(connID uint32, cookies [][16]byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendNewCookie(nil, cookies))
}

// SendEcho sends a path probe on connID; the peer echoes Token back
// (§3.3.3's active delay measurement).
func (s *Session) SendEcho(connID uint32, token uint64) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendEcho(nil, typeEchoRequest, token))
}

// SendBPFCC ships an eBPF congestion-controller program over connID,
// chunked across records when needed (§4.4).
func (s *Session) SendBPFCC(connID uint32, program []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	max := s.cfg.maxPayload()
	chunks := (len(program) + max - 1) / max
	if chunks == 0 {
		chunks = 1
	}
	for i := 0; i < chunks; i++ {
		lo, hi := i*max, (i+1)*max
		if hi > len(program) {
			hi = len(program)
		}
		content := appendBPFCC(nil, program[lo:hi], uint16(i), uint16(chunks), uint32(len(program)))
		if err := s.sendCtl(c, content); err != nil {
			return err
		}
	}
	return nil
}

// SendSessionTicket ships a resumption ticket to the peer (§4.5).
// maxEarly advertises the 0-RTT budget honoured when the ticket is
// presented (0 = no early data).
func (s *Session) SendSessionTicket(connID uint32, nonce [16]byte, ticket []byte, maxEarly uint32) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendSessionTicket(nil, nonce, ticket, maxEarly))
}

// CloseConnection sends an orderly connection close.
func (s *Session) CloseConnection(connID uint32) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	if err := s.sendCtl(c, appendConnClose(nil)); err != nil {
		return err
	}
	c.closed = true
	s.telSyncGauges()
	return nil
}
