package core

import (
	"sort"
	"time"

	"tcpls/internal/record"
	"tcpls/internal/sched"
	"tcpls/internal/wire"
)

// Scheduler is the legacy closure form of the coupled-record scheduler:
// called once per record with the coupled streams' IDs and the running
// record index, it returns an index into streams. This is the paper's
// application-exposed sender-side record scheduler (§3.3.3). New code
// should implement sched.Scheduler and install it with
// SetPathScheduler; closures are adapted via sched.Func.
type Scheduler func(recordIdx uint64, streams []uint32) int

// RoundRobin is the default coupled-stream scheduler (§5.1 uses it).
func RoundRobin(recordIdx uint64, streams []uint32) int {
	return int(recordIdx % uint64(len(streams)))
}

// SetScheduler replaces the coupled-stream scheduler with a legacy
// closure (adapted onto the stateful scheduler interface).
//
// Contract: the closure must return an index in [0, len(streams)). An
// out-of-range index is NOT honoured — the engine emits a
// sched_invalid trace event and falls back to the first coupled
// stream, so a buggy scheduler degrades to pinned rather than
// crashing. nil restores the default round-robin.
func (s *Session) SetScheduler(fn Scheduler) {
	s.telPicks = nil
	if fn == nil {
		s.pathSched = nil
		return
	}
	s.pathSched = sched.Func(fn)
}

// SetPathScheduler installs a stateful path scheduler (§3.3.3). The
// engine serializes all scheduler calls; one scheduler instance must
// not be shared across sessions. nil restores the default round-robin.
func (s *Session) SetPathScheduler(ps sched.Scheduler) {
	s.pathSched = ps
	s.telPicks = nil // re-resolve the per-policy pick counter lazily
}

func (s *Session) scheduler() sched.Scheduler {
	if s.pathSched == nil {
		s.pathSched = sched.RoundRobin()
	}
	if s.tel != nil && s.telPicks == nil {
		s.telPicks = s.tel.SchedPicks(s.pathSched.Name())
	}
	return s.pathSched
}

// Flush frames all queued application data into encrypted records on
// their connections' output buffers. Call before draining Outgoing.
//
// Flush is the two-phase datapath (DESIGN.md §16): a framing pass walks
// each queue and cuts it into sealJobs — record-sized views into the
// queue's backing array, no copies — then one sealBatch pass drives all
// of them through the AEAD back to back. Only after a job seals is its
// span of the queue consumed, so an error leaves unsealed bytes queued.
func (s *Session) Flush() error {
	if s.tracer != nil {
		// Send-path trace events happen now, not at the last receive.
		s.lastNow = s.now()
	}
	// Coupled group first: distribute records across coupled streams.
	if err := s.flushCoupled(); err != nil {
		return err
	}
	// Then per-stream queues, in stream-ID order for determinism.
	for _, id := range s.sortedStreamIDs() {
		st := s.streams[id]
		if err := s.flushStream(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *Session) sortedStreamIDs() []uint32 {
	if len(s.idCache) != len(s.streams) {
		s.idCache = s.idCache[:0]
		for id := range s.streams {
			s.idCache = append(s.idCache, id)
		}
		sort.Slice(s.idCache, func(i, j int) bool { return s.idCache[i] < s.idCache[j] })
	}
	return s.idCache
}

// sealJob is one framed-but-unsealed record. payload is a view into the
// owning queue's backing array (valid through the seal pass — nothing
// appends to the queue mid-flush); consume is how many queue bytes this
// job retires when sealed (0 for all but the last replica of a PickAll
// set, which share one queue span). shared, when non-nil, carries one
// pre-retained reference to the replica set's pooled retransmit copy.
type sealJob struct {
	st      *stream
	payload []byte
	consume int
	coupled bool
	aggSeq  uint64
	enqAt   time.Time
	shared  *record.Buf
}

// sealer drains a batch of framed records through the AEAD in one pass.
// The interface isolates the crypto loop from the framing logic: the
// serial implementation runs inline on the engine's goroutine, and this
// seam is where per-conn seal workers can parallelize the pass later.
//
// Contract: sealBatch returns how many leading jobs sealed; after it
// returns, no unsealed job may still hold a buffer reference (the
// implementation releases them on the error path).
type sealer interface {
	sealBatch(jobs []sealJob) (sealed int, err error)
}

// serialSealer seals the batch inline, in order.
type serialSealer struct{ s *Session }

func (w serialSealer) sealBatch(jobs []sealJob) (int, error) {
	for i := range jobs {
		if err := w.s.sealOne(&jobs[i]); err != nil {
			releaseJobs(jobs[i+1:])
			return i, err
		}
	}
	return len(jobs), nil
}

// releaseJobs drops the buffer references of jobs that will never seal.
func releaseJobs(jobs []sealJob) {
	for i := range jobs {
		jobs[i].shared.Release()
		jobs[i].shared = nil
	}
}

// sealOne seals one framed record onto its stream's connection and,
// when failover is enabled, retains the payload in a pooled buffer for
// replay. A job that fails releases its own shared reference.
func (s *Session) sealOne(j *sealJob) error {
	st := j.st
	c, err := s.getConn(st.conn)
	if err != nil {
		j.shared.Release()
		return err
	}
	if c.failed {
		j.shared.Release()
		return ErrConnFailed
	}
	// Scatter-gather seal: payload plus the TCPLS trailer go straight
	// into the connection buffer — the zero-copy send path of §3.1.
	typ := typeStreamData
	var trailer [9]byte
	tlen := 1
	if j.coupled {
		typ = typeStreamDataCoupled
		wire.PutUint64(trailer[:8], j.aggSeq)
		trailer[8] = byte(typeStreamDataCoupled)
		tlen = 9
	} else {
		trailer[0] = byte(typeStreamData)
	}
	seq := st.sendCtx.Seq()
	out, err := st.sendCtx.SealV(c.out, record.ContentTypeApplicationData, s.cfg.PadRecordsTo, j.payload, trailer[:tlen])
	if err != nil {
		j.shared.Release()
		return err
	}
	c.out = out
	s.stats.RecordsSent++
	s.stats.BytesSent += uint64(len(j.payload))
	s.trace("record_sent", c.id, st.id, seq, len(j.payload))
	if s.tel != nil {
		c.tel.RecordsSent.Inc()
		c.tel.BytesSent.Add(uint64(len(j.payload)))
		st.tel.BytesSent.Add(uint64(len(j.payload)))
		s.tel.RecordSize.Observe(float64(len(j.payload)))
	}
	if s.pathSched != nil {
		s.pathSched.OnSent(c.id, len(j.payload))
	}
	if !s.cfg.EnableFailover {
		j.shared.Release() // nil outside failover, but keep the contract total
		return nil
	}
	buf := j.shared
	if buf == nil {
		buf = s.bufs.Copy(j.payload)
	}
	sr := sentRecord{
		seq:      seq,
		typ:      typ,
		payload:  buf.Bytes(),
		buf:      buf,
		aggSeq:   j.aggSeq,
		sentAt:   s.now(), // seal leg + ACK-driven RTT sampling
		enqAt:    j.enqAt,
		origConn: c.id,
	}
	if s.metrics != nil {
		// Count the bytes into flight; handleAck reverses this.
		s.metrics.OnSent(c.id, len(j.payload))
	}
	st.retransmit = append(st.retransmit, sr)
	st.retransmitBytes += len(j.payload)
	s.noteRetransmitBytes(len(j.payload))
	if s.stampWrites {
		c.unwritten = append(c.unwritten, spanKey{stream: st.id, seq: seq})
	}
	// Soft watermark: at half the budget, ask the peer for a fresh
	// cumulative ack before the hard park at the budget.
	if budget := s.cfg.maxRetransmitBytes(); budget > 0 && st.retransmitBytes*2 >= budget {
		s.solicitAck(st)
	}
	return nil
}

// solicitAck sends one AckRequest for st on its connection (§4.2's ctl
// path): a sender whose retransmit buffer approaches its budget asks
// for a fresh cumulative ack instead of waiting out the receiver's
// batching policy (or a lost ack). At most one request is in flight per
// stream; handleAck re-arms it when an ack trims the buffer.
func (s *Session) solicitAck(st *stream) {
	if st.ackSolicited || !s.cfg.EnableFailover {
		return
	}
	c, ok := s.conns[st.conn]
	if !ok || c.failed || c.closed {
		return
	}
	s.ctlScratch = appendAckRequest(s.ctlScratch[:0], st.id)
	if s.sendCtl(c, s.ctlScratch) != nil {
		return
	}
	st.ackSolicited = true
	s.trace("ack_solicited", c.id, st.id, st.peerAcked, st.retransmitBytes)
	if s.tel != nil {
		s.tel.AckSolicits.Inc()
	}
}

// retransmitParked reports whether st's retransmit buffer is at its
// budget, so sealing must park until ACKs trim it. Bytes framed but not
// yet sealed in the current flush (framedBytes) count against the
// budget — the framing pass must stop exactly where the per-record seal
// loop used to. On the at-cap edge it emits one flowctl_limit trace per
// excursion.
//
// It does NOT solicit an acknowledgment: framing runs before the batch
// seals, and an AckRequest sealed mid-framing would precede this
// flush's data records on the wire — the peer would ack a stale
// high-water and never clear the solicitation. Callers solicit via
// solicitIfParked once the sealed records are on the connection buffer.
func (s *Session) retransmitParked(st *stream, budget int) bool {
	if budget <= 0 || st.retransmitBytes+st.framedBytes < budget {
		return false
	}
	if !st.budgetTripped {
		st.budgetTripped = true
		s.trace("flowctl_limit", st.conn, st.id, flowctlRetransmit, st.retransmitBytes+st.framedBytes)
		if s.tel != nil {
			s.tel.FlowctlLimits.Inc()
		}
	}
	return true
}

// solicitIfParked re-solicits an ack for a stream still at its budget.
// Safe only when every sealed record of the stream already precedes the
// request on the connection buffer (i.e. after sealBatch, or before any
// framing happened this flush).
func (s *Session) solicitIfParked(st *stream, budget int) {
	if budget > 0 && st.retransmitBytes >= budget {
		s.solicitAck(st)
	}
}

// flushStream frames one stream's pending bytes and seals them in one
// batch. A stream whose connection has failed is parked, not an error:
// its pending bytes stay queued until failover or the recovery
// supervisor re-homes it. The same applies at the retransmit budget:
// remaining bytes park (with an ACK solicitation) until acknowledgments
// trim the buffer, rather than growing it without bound.
func (s *Session) flushStream(st *stream) error {
	if c, ok := s.conns[st.conn]; ok && (c.failed || c.closed) {
		return nil
	}
	if st.pendingQ.Len() > 0 {
		max := s.cfg.maxPayload()
		budget := s.cfg.maxRetransmitBytes()
		q := st.pendingQ.Bytes()
		jobs := s.sealQ[:0]
		for off := 0; off < len(q); {
			if s.retransmitParked(st, budget) {
				break
			}
			n := len(q) - off
			if n > max {
				n = max
			}
			jobs = append(jobs, sealJob{
				st:      st,
				payload: q[off : off+n],
				consume: n,
				enqAt:   st.pendingSince,
			})
			st.framedBytes += n
			off += n
		}
		sealed, err := s.sealWorker.sealBatch(jobs)
		consumed := 0
		for i := 0; i < sealed; i++ {
			consumed += jobs[i].consume
		}
		st.pendingQ.Advance(consumed)
		st.framedBytes = 0
		s.sealQ = jobs[:0]
		if err != nil {
			return err
		}
		s.solicitIfParked(st, budget)
	}
	// A coupled stream's unsealed bytes live in the shared coupled
	// queue, not st.pendingQ: its FIN must wait for the whole group to
	// drain. Sending it earlier marks the stream finSent, which removes
	// it from coupledStreams() and strands the group's remaining bytes
	// with no stream left to seal them onto.
	if st.coupled && s.coupled.pendingQ.Len() > 0 {
		return nil
	}
	if st.finQueued && !st.finSent {
		c, err := s.getConn(st.conn)
		if err != nil {
			return err
		}
		s.ctlScratch = appendStreamFin(s.ctlScratch[:0], st.id, st.sendCtx.Seq())
		if err := s.sendCtl(c, s.ctlScratch); err != nil {
			return err
		}
		st.finSent = true
	}
	return nil
}

// flushCoupled distributes the coupled group's pending bytes across the
// coupled streams, one record at a time, via the path scheduler, then
// seals the whole schedule in one batch. The scheduler sees one
// PathView per coupled stream, refreshed from the metrics store once
// per flush (metrics move on ack/kernel timescales, not per record).
func (s *Session) flushCoupled() error {
	if s.coupled.pendingQ.Len() == 0 {
		return nil
	}
	cs := s.coupledStreams()
	if len(cs) == 0 {
		return ErrNotCoupled
	}
	// Schedule only over streams whose connections are alive and whose
	// retransmit buffers have budget left; with no live path the group's
	// bytes park until recovery re-homes a stream (or ACKs trim a
	// budget-parked buffer).
	budget := s.cfg.maxRetransmitBytes()
	live := cs[:0]
	for _, st := range cs {
		if c, ok := s.conns[st.conn]; ok && !c.failed && !c.closed {
			if s.retransmitParked(st, budget) {
				// Nothing framed yet this flush, so the solicitation
				// lands after all the stream's sealed records.
				s.solicitIfParked(st, budget)
				continue
			}
			live = append(live, st)
		}
	}
	cs = live
	if len(cs) == 0 {
		return nil
	}
	views := make([]sched.PathView, len(cs))
	for i, st := range cs {
		views[i] = sched.PathView{Stream: st.id, Conn: st.conn}
		if s.metrics != nil {
			s.metrics.Fill(&views[i])
		}
	}
	max := s.cfg.maxPayload()
	ps := s.scheduler()
	q := s.coupled.pendingQ.Bytes()
	jobs := s.sealQ[:0]
framing:
	for off := 0; off < len(q); {
		n := len(q) - off
		if n > max {
			n = max
		}
		chunk := q[off : off+n]
		idx := ps.Pick(s.coupled.sendSeq, views)
		if idx == sched.PickAll {
			// Redundant scheduling: the same aggregation sequence goes
			// out on every path; the receiver's reorder buffer keeps
			// exactly one copy. Replicas that crossed their retransmit
			// budget mid-flush are skipped; with none open the rest of
			// the group's bytes park for a later flush. One shared
			// pooled copy backs every replica's retransmit entry —
			// copying per path multiplied memory by the path count.
			var open []*stream
			for _, st := range cs {
				if !s.retransmitParked(st, budget) {
					open = append(open, st)
				}
			}
			if len(open) == 0 {
				break framing
			}
			aggSeq := s.coupled.sendSeq
			s.coupled.sendSeq++
			var shared *record.Buf
			if s.cfg.EnableFailover {
				shared = s.bufs.Copy(chunk)
				for i := 1; i < len(open); i++ {
					shared.Retain()
				}
			}
			for i, st := range open {
				s.trace("sched_pick", st.conn, st.id, aggSeq, n)
				s.telPicks.Inc()
				j := sealJob{
					st:      st,
					payload: chunk,
					coupled: true,
					aggSeq:  aggSeq,
					enqAt:   s.coupled.pendingSince,
					shared:  shared,
				}
				if i == len(open)-1 {
					j.consume = n // the replica set retires one queue span
				}
				jobs = append(jobs, j)
				st.framedBytes += n
			}
		} else {
			if idx < 0 || idx >= len(cs) {
				// Out-of-range pick: surface it (Bytes carries the bad
				// index) instead of clamping silently, then fall back
				// to the first coupled stream per the SetScheduler
				// contract.
				s.trace("sched_invalid", 0, 0, s.coupled.sendSeq, idx)
				if s.tel != nil {
					s.tel.SchedInvalid.Inc()
				}
				idx = 0
			}
			st := cs[idx]
			if s.retransmitParked(st, budget) {
				// The picked path crossed its retransmit budget mid-
				// flush: park the remaining group bytes; the next flush
				// re-filters the candidate set.
				break framing
			}
			aggSeq := s.coupled.sendSeq
			s.coupled.sendSeq++
			s.trace("sched_pick", st.conn, st.id, aggSeq, n)
			s.telPicks.Inc()
			jobs = append(jobs, sealJob{
				st:      st,
				payload: chunk,
				consume: n,
				coupled: true,
				aggSeq:  aggSeq,
				enqAt:   s.coupled.pendingSince,
			})
			st.framedBytes += n
		}
		off += n
	}
	sealed, err := s.sealWorker.sealBatch(jobs)
	consumed := 0
	for i := 0; i < sealed; i++ {
		consumed += jobs[i].consume
	}
	s.coupled.pendingQ.Advance(consumed)
	for _, st := range cs {
		st.framedBytes = 0
	}
	s.sealQ = jobs[:0]
	if err != nil {
		return err
	}
	for _, st := range cs {
		s.solicitIfParked(st, budget)
	}
	return nil
}

// SendTCPOption ships an encrypted TCP option on connID's control stream
// (§3.1): reliable, unconstrained by the 40-byte TCP option space, and
// invisible to middleboxes.
func (s *Session) SendTCPOption(connID uint32, kind uint8, value []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendTCPOption(nil, kind, value))
}

// SendAddAddr advertises a local address to the peer mid-session.
func (s *Session) SendAddAddr(connID uint32, addr []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendAddr(nil, typeAddAddr, addr))
}

// SendRemoveAddr withdraws a previously advertised address.
func (s *Session) SendRemoveAddr(connID uint32, addr []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendAddr(nil, typeRemoveAddr, addr))
}

// SendNewCookies replenishes the peer's join-cookie budget (server side).
func (s *Session) SendNewCookies(connID uint32, cookies [][16]byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendNewCookie(nil, cookies))
}

// SendEcho sends a path probe on connID; the peer echoes Token back
// (§3.3.3's active delay measurement).
func (s *Session) SendEcho(connID uint32, token uint64) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendEcho(nil, typeEchoRequest, token))
}

// SendBPFCC ships an eBPF congestion-controller program over connID,
// chunked across records when needed (§4.4).
func (s *Session) SendBPFCC(connID uint32, program []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	max := s.cfg.maxPayload()
	chunks := (len(program) + max - 1) / max
	if chunks == 0 {
		chunks = 1
	}
	for i := 0; i < chunks; i++ {
		lo, hi := i*max, (i+1)*max
		if hi > len(program) {
			hi = len(program)
		}
		content := appendBPFCC(nil, program[lo:hi], uint16(i), uint16(chunks), uint32(len(program)))
		if err := s.sendCtl(c, content); err != nil {
			return err
		}
	}
	return nil
}

// SendSessionTicket ships a resumption ticket to the peer (§4.5).
// maxEarly advertises the 0-RTT budget honoured when the ticket is
// presented (0 = no early data).
func (s *Session) SendSessionTicket(connID uint32, nonce [16]byte, ticket []byte, maxEarly uint32) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendSessionTicket(nil, nonce, ticket, maxEarly))
}

// CloseConnection sends an orderly connection close.
func (s *Session) CloseConnection(connID uint32) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	if err := s.sendCtl(c, appendConnClose(nil)); err != nil {
		return err
	}
	c.closed = true
	s.telSyncGauges()
	return nil
}
