package core

import (
	"tcpls/internal/record"
	"tcpls/internal/wire"
)

// Scheduler chooses which coupled stream carries the next record. The
// engine calls it once per record with the coupled streams' IDs and the
// running record index; it returns an index into streams. This is the
// paper's application-exposed sender-side record scheduler (§3.3.3):
// round-robin by default, replaceable by the application.
type Scheduler func(recordIdx uint64, streams []uint32) int

// RoundRobin is the default coupled-stream scheduler (§5.1 uses it).
func RoundRobin(recordIdx uint64, streams []uint32) int {
	return int(recordIdx % uint64(len(streams)))
}

// SetScheduler replaces the coupled-stream scheduler.
func (s *Session) SetScheduler(sched Scheduler) { s.sched = sched }

func (s *Session) scheduler() Scheduler {
	if s.sched != nil {
		return s.sched
	}
	return RoundRobin
}

// Flush frames all queued application data into encrypted records on
// their connections' output buffers. Call before draining Outgoing.
func (s *Session) Flush() error {
	// Coupled group first: distribute records across coupled streams.
	if err := s.flushCoupled(); err != nil {
		return err
	}
	// Then per-stream queues, in stream-ID order for determinism.
	for _, id := range s.sortedStreamIDs() {
		st := s.streams[id]
		if err := s.flushStream(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *Session) sortedStreamIDs() []uint32 {
	ids := s.Streams()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	return ids
}

// flushStream frames one stream's pending bytes.
func (s *Session) flushStream(st *stream) error {
	max := s.cfg.maxPayload()
	for len(st.pending) > 0 {
		n := len(st.pending)
		if n > max {
			n = max
		}
		chunk := st.pending[:n]
		if err := s.sendStreamRecord(st, chunk, st.coupled); err != nil {
			return err
		}
		st.pending = st.pending[n:]
	}
	if len(st.pending) == 0 {
		st.pending = nil
	}
	if st.finQueued && !st.finSent {
		c, err := s.getConn(st.conn)
		if err != nil {
			return err
		}
		if err := s.sendCtl(c, appendStreamFin(nil, st.id, st.sendCtx.Seq())); err != nil {
			return err
		}
		st.finSent = true
	}
	return nil
}

// flushCoupled distributes the coupled group's pending bytes across the
// coupled streams, one record at a time, via the scheduler.
func (s *Session) flushCoupled() error {
	if len(s.coupled.pendingData) == 0 {
		return nil
	}
	cs := s.coupledStreams()
	if len(cs) == 0 {
		return ErrNotCoupled
	}
	ids := make([]uint32, len(cs))
	for i, st := range cs {
		ids[i] = st.id
	}
	max := s.cfg.maxPayload()
	sched := s.scheduler()
	for len(s.coupled.pendingData) > 0 {
		n := len(s.coupled.pendingData)
		if n > max {
			n = max
		}
		chunk := s.coupled.pendingData[:n]
		idx := sched(s.coupled.sendSeq, ids)
		if idx < 0 || idx >= len(cs) {
			idx = 0
		}
		st := cs[idx]
		if err := s.sendStreamRecord(st, chunk, true); err != nil {
			return err
		}
		s.coupled.pendingData = s.coupled.pendingData[n:]
	}
	s.coupled.pendingData = nil
	return nil
}

// sendStreamRecord seals one stream data record onto the stream's
// connection and, when failover is enabled, retains it for replay.
func (s *Session) sendStreamRecord(st *stream, payload []byte, coupled bool) error {
	c, err := s.getConn(st.conn)
	if err != nil {
		return err
	}
	if c.failed {
		return ErrConnFailed
	}
	// Scatter-gather seal: payload plus the TCPLS trailer go straight
	// into the connection buffer — the zero-copy send path of §3.1.
	var aggSeq uint64
	typ := typeStreamData
	var trailer [9]byte
	var tlen int
	if coupled {
		typ = typeStreamDataCoupled
		aggSeq = s.coupled.sendSeq
		s.coupled.sendSeq++
		wire.PutUint64(trailer[:8], aggSeq)
		trailer[8] = byte(typeStreamDataCoupled)
		tlen = 9
	} else {
		trailer[0] = byte(typeStreamData)
		tlen = 1
	}
	seq := st.sendCtx.Seq()
	out, err := st.sendCtx.SealV(c.out, record.ContentTypeApplicationData, s.cfg.PadRecordsTo, payload, trailer[:tlen])
	if err != nil {
		return err
	}
	c.out = out
	s.stats.RecordsSent++
	s.stats.BytesSent += uint64(len(payload))
	s.trace("record_sent", c.id, st.id, seq, len(payload))
	if s.cfg.EnableFailover {
		st.retransmit = append(st.retransmit, sentRecord{
			seq:     seq,
			typ:     typ,
			payload: append([]byte(nil), payload...),
			aggSeq:  aggSeq,
		})
	}
	return nil
}

// SendTCPOption ships an encrypted TCP option on connID's control stream
// (§3.1): reliable, unconstrained by the 40-byte TCP option space, and
// invisible to middleboxes.
func (s *Session) SendTCPOption(connID uint32, kind uint8, value []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendTCPOption(nil, kind, value))
}

// SendAddAddr advertises a local address to the peer mid-session.
func (s *Session) SendAddAddr(connID uint32, addr []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendAddr(nil, typeAddAddr, addr))
}

// SendRemoveAddr withdraws a previously advertised address.
func (s *Session) SendRemoveAddr(connID uint32, addr []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendAddr(nil, typeRemoveAddr, addr))
}

// SendNewCookies replenishes the peer's join-cookie budget (server side).
func (s *Session) SendNewCookies(connID uint32, cookies [][16]byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendNewCookie(nil, cookies))
}

// SendEcho sends a path probe on connID; the peer echoes Token back
// (§3.3.3's active delay measurement).
func (s *Session) SendEcho(connID uint32, token uint64) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendEcho(nil, typeEchoRequest, token))
}

// SendBPFCC ships an eBPF congestion-controller program over connID,
// chunked across records when needed (§4.4).
func (s *Session) SendBPFCC(connID uint32, program []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	max := s.cfg.maxPayload()
	chunks := (len(program) + max - 1) / max
	if chunks == 0 {
		chunks = 1
	}
	for i := 0; i < chunks; i++ {
		lo, hi := i*max, (i+1)*max
		if hi > len(program) {
			hi = len(program)
		}
		content := appendBPFCC(nil, program[lo:hi], uint16(i), uint16(chunks), uint32(len(program)))
		if err := s.sendCtl(c, content); err != nil {
			return err
		}
	}
	return nil
}

// SendSessionTicket ships a resumption ticket to the peer (§4.5).
func (s *Session) SendSessionTicket(connID uint32, nonce [16]byte, ticket []byte) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	return s.sendCtl(c, appendSessionTicket(nil, nonce, ticket))
}

// CloseConnection sends an orderly connection close.
func (s *Session) CloseConnection(connID uint32) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	if err := s.sendCtl(c, appendConnClose(nil)); err != nil {
		return err
	}
	c.closed = true
	return nil
}
