package core

import (
	"bytes"
	"testing"
	"time"

	"tcpls/internal/handshake"
	"tcpls/internal/record"
)

// testSecrets builds deterministic handshake secrets for engine tests.
func testSecrets(t testing.TB) handshake.Secrets {
	t.Helper()
	suite, err := record.SuiteByID(record.TLSAES128GCMSHA256)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tag byte) []byte {
		b := make([]byte, 32)
		for i := range b {
			b[i] = tag
		}
		return b
	}
	return handshake.Secrets{Suite: suite, ClientApp: mk(1), ServerApp: mk(2)}
}

// pair wires a client and server engine together over in-memory
// "connections" identified by shared IDs.
type pair struct {
	t      *testing.T
	client *Session
	server *Session
	now    time.Time
}

func newPair(t *testing.T, cfg Config) *pair {
	sec := testSecrets(t)
	p := &pair{
		t:      t,
		client: NewSession(RoleClient, sec, cfg),
		server: NewSession(RoleServer, sec, cfg),
		now:    time.Unix(1000, 0),
	}
	p.addConn(0)
	return p
}

func (p *pair) addConn(id uint32) {
	if err := p.client.AddConnection(id, p.now); err != nil {
		p.t.Fatal(err)
	}
	if err := p.server.AddConnection(id, p.now); err != nil {
		p.t.Fatal(err)
	}
}

// pump moves all pending bytes in both directions until quiescent.
// Connections listed in dead are not delivered (simulating failure).
func (p *pair) pump(dead ...uint32) {
	p.t.Helper()
	isDead := func(id uint32) bool {
		for _, d := range dead {
			if d == id {
				return true
			}
		}
		return false
	}
	for moved := true; moved; {
		moved = false
		for _, dir := range []struct{ from, to *Session }{
			{p.client, p.server}, {p.server, p.client},
		} {
			if err := dir.from.Flush(); err != nil && err != ErrNotCoupled {
				p.t.Fatal(err)
			}
			for _, id := range allConnIDs(dir.from) {
				out, err := dir.from.Outgoing(id)
				if err != nil {
					p.t.Fatal(err)
				}
				if len(out) == 0 || isDead(id) {
					continue
				}
				moved = true
				if err := dir.to.Receive(id, out, p.now); err != nil {
					p.t.Fatalf("receive conn %d: %v", id, err)
				}
			}
		}
	}
}

func allConnIDs(s *Session) []uint32 {
	ids := s.Connections()
	// Include failed/closed conns so their queued bytes drain (and are
	// dropped by the pump when marked dead).
	for id := uint32(0); id < 8; id++ {
		listed := false
		for _, x := range ids {
			if x == id {
				listed = true
			}
		}
		if !listed && s.HasOutgoing(id) {
			ids = append(ids, id)
		}
	}
	return ids
}

func drainEvents(s *Session, kind EventKind) []Event {
	var out []Event
	for _, ev := range s.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func TestStreamDataRoundTrip(t *testing.T) {
	p := newPair(t, Config{})
	sid, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello from the client over tcpls")
	if _, err := p.client.Write(sid, msg); err != nil {
		t.Fatal(err)
	}
	p.pump()

	opens := drainEvents(p.server, EventStreamOpen)
	if len(opens) != 1 || opens[0].Stream != sid {
		t.Fatalf("server open events: %+v", opens)
	}
	buf := make([]byte, 100)
	n, err := p.server.Read(sid, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("server read %q", buf[:n])
	}

	// And the reverse direction on the same stream.
	reply := []byte("hello back from the server")
	if _, err := p.server.Write(sid, reply); err != nil {
		t.Fatal(err)
	}
	p.pump()
	n, err = p.client.Read(sid, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], reply) {
		t.Fatalf("client read %q", buf[:n])
	}
}

func TestLargeTransferChunksIntoRecords(t *testing.T) {
	p := newPair(t, Config{})
	sid, _ := p.client.CreateStream(0)
	big := bytes.Repeat([]byte("0123456789abcdef"), 8192) // 128 KiB
	p.client.Write(sid, big)
	p.pump()
	got := make([]byte, len(big))
	n, _ := p.server.Read(sid, got)
	if n != len(big) || !bytes.Equal(got, big) {
		t.Fatalf("read %d of %d bytes", n, len(big))
	}
	// 128 KiB at 16368-byte payloads needs at least 9 records (plus the
	// attach control record).
	if p.client.Stats().RecordsSent < 9 {
		t.Errorf("records sent = %d", p.client.Stats().RecordsSent)
	}
}

func TestMultiplexedStreamsKeepDataSeparate(t *testing.T) {
	p := newPair(t, Config{})
	s1, _ := p.client.CreateStream(0)
	s2, _ := p.client.CreateStream(0)
	s3, _ := p.client.CreateStream(0)
	p.client.Write(s1, []byte("stream one"))
	p.client.Write(s2, []byte("stream two"))
	p.client.Write(s3, []byte("stream three"))
	p.pump()
	for sid, want := range map[uint32]string{s1: "stream one", s2: "stream two", s3: "stream three"} {
		buf := make([]byte, 64)
		n, err := p.server.Read(sid, buf)
		if err != nil || string(buf[:n]) != want {
			t.Fatalf("stream %d: %q err=%v", sid, buf[:n], err)
		}
	}
}

func TestServerInitiatedStream(t *testing.T) {
	p := newPair(t, Config{})
	sid, err := p.server.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if sid%2 != 1 {
		t.Fatalf("server stream ID %d not odd", sid)
	}
	p.server.Write(sid, []byte("push"))
	p.pump()
	buf := make([]byte, 16)
	n, _ := p.client.Read(sid, buf)
	if string(buf[:n]) != "push" {
		t.Fatalf("got %q", buf[:n])
	}
}

func TestStreamFin(t *testing.T) {
	p := newPair(t, Config{})
	sid, _ := p.client.CreateStream(0)
	p.client.Write(sid, []byte("last words"))
	p.client.FinishStream(sid)
	p.pump()
	fins := drainEvents(p.server, EventStreamFin)
	if len(fins) != 1 {
		t.Fatalf("fin events: %d", len(fins))
	}
	buf := make([]byte, 32)
	n, _ := p.server.Read(sid, buf)
	if string(buf[:n]) != "last words" {
		t.Fatalf("got %q", buf[:n])
	}
	if !p.server.PeerFinished(sid) {
		t.Error("PeerFinished false after fin + drain")
	}
	if err := p.client.FinishStream(sid); err != ErrStreamFinished {
		t.Errorf("double fin err=%v", err)
	}
	if _, err := p.client.Write(sid, []byte("x")); err != ErrStreamFinished {
		t.Errorf("write after fin err=%v", err)
	}
}

func TestTCPOptionAndControlRecords(t *testing.T) {
	p := newPair(t, Config{})
	if err := p.client.SendTCPOption(0, OptUserTimeout, []byte{0, 0, 0, 250}); err != nil {
		t.Fatal(err)
	}
	p.client.SendAddAddr(0, []byte{192, 0, 2, 7})
	p.pump()
	var opts, adds []Event
	for _, ev := range p.server.Events() {
		switch ev.Kind {
		case EventTCPOption:
			opts = append(opts, ev)
		case EventAddAddr:
			adds = append(adds, ev)
		}
	}
	if len(opts) != 1 || opts[0].OptKind != OptUserTimeout || !bytes.Equal(opts[0].OptVal, []byte{0, 0, 0, 250}) {
		t.Fatalf("tcp option events: %+v", opts)
	}
	if len(adds) != 1 || !bytes.Equal(adds[0].Addr, []byte{192, 0, 2, 7}) {
		t.Fatalf("add addr: %+v", adds)
	}

	p.server.SendNewCookies(0, [][16]byte{{1}, {2}})
	p.server.SendRemoveAddr(0, bytes.Repeat([]byte{0xfe}, 16))
	p.pump()
	cEvents := p.client.Events()
	var sawCookies, sawRemove bool
	for _, ev := range cEvents {
		switch ev.Kind {
		case EventNewCookies:
			sawCookies = len(ev.Cookies) == 2
		case EventRemoveAddr:
			sawRemove = len(ev.Addr) == 16
		}
	}
	if !sawCookies || !sawRemove {
		t.Fatalf("client events: %+v", cEvents)
	}
}

func TestEchoProbe(t *testing.T) {
	p := newPair(t, Config{})
	p.client.SendEcho(0, 0xdeadbeef)
	p.pump()
	replies := drainEvents(p.client, EventEchoReply)
	if len(replies) != 1 || replies[0].Token != 0xdeadbeef {
		t.Fatalf("echo replies: %+v", replies)
	}
}

func TestBPFCCTransfer(t *testing.T) {
	p := newPair(t, Config{MaxRecordPayload: 100})
	prog := bytes.Repeat([]byte{0xbf}, 450) // forces 5 chunks
	if err := p.server.SendBPFCC(0, prog); err != nil {
		t.Fatal(err)
	}
	p.pump()
	evs := drainEvents(p.client, EventBPFCC)
	if len(evs) != 1 || !bytes.Equal(evs[0].Data, prog) {
		t.Fatalf("bpf events: %d", len(evs))
	}
}

func TestAcksTrimRetransmitBuffer(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, AckPeriod: 4, MaxRecordPayload: 1000})
	sid, _ := p.client.CreateStream(0)
	p.client.Write(sid, bytes.Repeat([]byte{7}, 8000)) // 8 records
	p.pump()
	if got := p.server.Stats().AcksSent; got < 2 {
		t.Errorf("server sent %d acks, want >= 2", got)
	}
	st := p.client.streams[sid]
	if len(st.retransmit) != 0 {
		t.Errorf("retransmit buffer holds %d records after full ack", len(st.retransmit))
	}
	if p.client.Stats().AcksReceived == 0 {
		t.Error("client saw no acks")
	}
}

func TestNoAcksWithoutFailover(t *testing.T) {
	p := newPair(t, Config{})
	sid, _ := p.client.CreateStream(0)
	p.client.Write(sid, bytes.Repeat([]byte{7}, 100000))
	p.pump()
	if got := p.server.Stats().AcksSent; got != 0 {
		t.Errorf("acks sent without failover: %d", got)
	}
	if st := p.client.streams[sid]; len(st.retransmit) != 0 {
		t.Errorf("retransmit buffering without failover: %d", len(st.retransmit))
	}
}

func TestFailoverReplaysLostRecords(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, AckPeriod: 2, MaxRecordPayload: 1000})
	p.addConn(1)
	sid, _ := p.client.CreateStream(0)

	// Phase 1: 4 KiB delivered and acked.
	phase1 := bytes.Repeat([]byte{1}, 4000)
	p.client.Write(sid, phase1)
	p.pump()

	// Phase 2: 4 KiB framed onto conn 0 but never delivered (outage).
	phase2 := bytes.Repeat([]byte{2}, 4000)
	p.client.Write(sid, phase2)
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	if out, _ := p.client.Outgoing(0); len(out) == 0 {
		t.Fatal("no bytes framed for conn 0")
	} // dropped on the floor: the connection died

	// Client fails over to conn 1 and replays.
	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	if p.client.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
	p.pump(0)

	got := make([]byte, 16000)
	n, _ := p.server.Read(sid, got)
	want := append(append([]byte(nil), phase1...), phase2...)
	if !bytes.Equal(got[:n], want) {
		t.Fatalf("server got %d bytes, want %d contiguous", n, len(want))
	}
	if evs := drainEvents(p.server, EventConnFailed); len(evs) == 0 {
		t.Error("server saw no failover notification")
	}
}

func TestFailoverDuplicateFilter(t *testing.T) {
	// Records delivered but whose ACK was lost must be replayed by the
	// sender and silently dropped by the receiver.
	p := newPair(t, Config{EnableFailover: true, AckPeriod: 100, MaxRecordPayload: 1000})
	p.addConn(1)
	sid, _ := p.client.CreateStream(0)
	data := bytes.Repeat([]byte{3}, 5000) // 5 records, under ack period
	p.client.Write(sid, data)
	p.pump() // delivered, but no acks sent (period 100)

	st := p.client.streams[sid]
	if len(st.retransmit) != 5 {
		t.Fatalf("retransmit buffer %d, want 5 (no acks)", len(st.retransmit))
	}
	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	p.pump(0)
	if dups := p.server.Stats().DupRecordsDropped; dups != 5 {
		t.Errorf("duplicate drops = %d, want 5", dups)
	}
	got := make([]byte, 20000)
	n, _ := p.server.Read(sid, got)
	if !bytes.Equal(got[:n], data) {
		t.Fatalf("server got %d bytes, want exactly %d (no duplication)", n, len(data))
	}
}

func TestUserTimeoutMarksConnFailed(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, UserTimeout: 250 * time.Millisecond})
	sid, _ := p.client.CreateStream(0)
	p.client.Write(sid, []byte("in flight"))
	p.pump()

	// Silence shorter than UTO: nothing fails.
	if failed := p.client.Advance(p.now.Add(200 * time.Millisecond)); failed != nil {
		t.Fatalf("early failure: %v", failed)
	}
	// Silence beyond UTO on an active conn: failure.
	failed := p.client.Advance(p.now.Add(300 * time.Millisecond))
	if len(failed) != 1 || failed[0] != 0 {
		t.Fatalf("failed conns: %v", failed)
	}
	if !p.client.ConnFailed(0) {
		t.Error("conn 0 not marked failed")
	}
	evs := drainEvents(p.client, EventConnFailed)
	if len(evs) != 1 {
		t.Errorf("conn failed events: %d", len(evs))
	}
}

func TestUserTimeoutIgnoresFinishedStreams(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, UserTimeout: 250 * time.Millisecond})
	sid, _ := p.client.CreateStream(0)
	p.client.Write(sid, []byte("bye"))
	p.client.FinishStream(sid)
	p.pump()
	p.server.FinishStream(sid)
	p.pump()
	if failed := p.client.Advance(p.now.Add(10 * time.Second)); failed != nil {
		t.Fatalf("idle finished conn failed: %v", failed)
	}
}

func TestCoupledStreamsAggregateInOrder(t *testing.T) {
	p := newPair(t, Config{MaxRecordPayload: 1000})
	p.addConn(1)
	s1, _ := p.client.CreateStream(0)
	s2, _ := p.client.CreateStream(1)
	p.pump() // deliver attaches
	p.client.SetCoupled(s1, true)
	p.client.SetCoupled(s2, true)

	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := p.client.WriteCoupled(data); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	// Deliver conn 1's bytes BEFORE conn 0's: records arrive out of
	// aggregation order and must be reordered by the heap.
	out1, _ := p.client.Outgoing(1)
	out0, _ := p.client.Outgoing(0)
	if len(out0) == 0 || len(out1) == 0 {
		t.Fatalf("round robin failed: %d / %d bytes", len(out0), len(out1))
	}
	if err := p.server.Receive(1, out1, p.now); err != nil {
		t.Fatal(err)
	}
	if err := p.server.Receive(0, out0, p.now); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n := p.server.ReadCoupled(got)
	if n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("coupled read %d bytes, in-order=%v", n, bytes.Equal(got[:n], data[:n]))
	}
}

func TestCustomScheduler(t *testing.T) {
	p := newPair(t, Config{MaxRecordPayload: 1000})
	p.addConn(1)
	s1, _ := p.client.CreateStream(0)
	s2, _ := p.client.CreateStream(1)
	p.pump()
	p.client.SetCoupled(s1, true)
	p.client.SetCoupled(s2, true)
	// Send everything on the second stream.
	p.client.SetScheduler(func(recordIdx uint64, streams []uint32) int { return 1 })
	p.client.WriteCoupled(make([]byte, 5000))
	p.client.Flush()
	out0, _ := p.client.Outgoing(0)
	out1, _ := p.client.Outgoing(1)
	if len(out0) != 0 {
		t.Errorf("conn 0 carried %d bytes despite pinned scheduler", len(out0))
	}
	if len(out1) == 0 {
		t.Error("conn 1 carried nothing")
	}
}

func TestWriteCoupledWithoutCoupledStreams(t *testing.T) {
	p := newPair(t, Config{})
	if _, err := p.client.WriteCoupled([]byte("x")); err != ErrNotCoupled {
		t.Fatalf("err=%v, want ErrNotCoupled", err)
	}
}

func TestConnClose(t *testing.T) {
	p := newPair(t, Config{})
	if err := p.client.CloseConnection(0); err != nil {
		t.Fatal(err)
	}
	p.pump()
	evs := drainEvents(p.server, EventConnClosed)
	if len(evs) != 1 {
		t.Fatalf("close events: %d", len(evs))
	}
	if ids := p.client.Connections(); len(ids) != 0 {
		t.Errorf("closed conn still listed: %v", ids)
	}
}

func TestUnknownConnAndStreamErrors(t *testing.T) {
	p := newPair(t, Config{})
	if _, err := p.client.CreateStream(42); err == nil {
		t.Error("CreateStream on unknown conn succeeded")
	}
	if _, err := p.client.Write(99, nil); err == nil {
		t.Error("Write on unknown stream succeeded")
	}
	if _, err := p.client.Outgoing(42); err == nil {
		t.Error("Outgoing on unknown conn succeeded")
	}
	if err := p.client.AddConnection(0, p.now); err != ErrDuplicateConn {
		t.Errorf("duplicate conn err=%v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := newPair(t, Config{})
	sid, _ := p.client.CreateStream(0)
	msg := bytes.Repeat([]byte{9}, 30000)
	p.client.Write(sid, msg)
	p.pump()
	cs, ss := p.client.Stats(), p.server.Stats()
	if cs.BytesSent != uint64(len(msg)) {
		t.Errorf("client BytesSent=%d", cs.BytesSent)
	}
	if ss.BytesReceived != uint64(len(msg)) {
		t.Errorf("server BytesReceived=%d", ss.BytesReceived)
	}
	if ss.RecordsReceived < 2 {
		t.Errorf("server RecordsReceived=%d", ss.RecordsReceived)
	}
}

func TestRecordPaddingUniformWireSize(t *testing.T) {
	// With PadRecordsTo set, every record on the wire has the same
	// size: tiny control records are indistinguishable from data.
	p := newPair(t, Config{PadRecordsTo: 1024, MaxRecordPayload: 1000})
	sid, _ := p.client.CreateStream(0)
	p.client.Write(sid, bytes.Repeat([]byte{1}, 3000))
	p.client.SendTCPOption(0, OptUserTimeout, []byte{1})
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	outAll, _ := p.client.Outgoing(0)
	// Walk the records: all identical wire length.
	sizes := map[int]int{}
	out := outAll
	for len(out) > 0 {
		ctLen := int(out[3])<<8 | int(out[4])
		sizes[5+ctLen]++
		out = out[5+ctLen:]
	}
	if len(sizes) != 1 {
		t.Fatalf("mixed record sizes on the wire: %v", sizes)
	}
	// And the peer still parses everything (re-fetch the drained bytes).
	out2, _ := p.client.Outgoing(0)
	_ = out2
	if err := p.server.Receive(0, outAll, p.now); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4000)
	n, _ := p.server.Read(sid, buf)
	if n != 3000 {
		t.Fatalf("read %d bytes", n)
	}
}

func TestFailoverReplaysCoupledRecords(t *testing.T) {
	// Coupled records carry aggregation sequence numbers; a failover
	// replay must reproduce them exactly or the receiver's reordering
	// heap would mis-sequence the aggregate.
	p := newPair(t, Config{EnableFailover: true, AckPeriod: 100, MaxRecordPayload: 1000})
	p.addConn(1)
	s1, _ := p.client.CreateStream(0)
	s2, _ := p.client.CreateStream(1)
	p.pump()
	p.client.SetCoupled(s1, true)
	p.client.SetCoupled(s2, true)

	data := make([]byte, 8000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	p.client.WriteCoupled(data)
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	// Conn 0's share is lost with the connection; conn 1 delivers.
	if out, _ := p.client.Outgoing(0); len(out) == 0 {
		t.Fatal("nothing framed on conn 0")
	}
	out1, _ := p.client.Outgoing(1)
	if err := p.server.Receive(1, out1, p.now); err != nil {
		t.Fatal(err)
	}
	// The aggregate cannot deliver past the first missing agg seq.
	if got := p.server.CoupledReadable(); got >= len(data) {
		t.Fatalf("aggregate complete despite lost records: %d", got)
	}

	// Fail over conn 0 onto conn 1 and replay.
	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	p.pump(0)
	got := make([]byte, len(data))
	n := p.server.ReadCoupled(got)
	if n != len(data) || !bytes.Equal(got[:n], data) {
		t.Fatalf("aggregate after coupled failover: %d bytes, intact=%v", n, bytes.Equal(got[:n], data[:n]))
	}
}

func TestDeliverDataCallbackZeroCopyContract(t *testing.T) {
	// With DeliverData installed, payloads must arrive via the callback
	// and nothing must accumulate in the engine's read buffers.
	p := newPair(t, Config{MaxRecordPayload: 1000})
	sid, _ := p.client.CreateStream(0)
	var got []byte
	p.server.DeliverData = func(streamID uint32, payload []byte) {
		if streamID != sid {
			t.Errorf("payload for stream %d, want %d", streamID, sid)
		}
		got = append(got, payload...)
	}
	msg := bytes.Repeat([]byte{0xab}, 5000)
	p.client.Write(sid, msg)
	p.pump()
	if !bytes.Equal(got, msg) {
		t.Fatalf("callback delivered %d bytes", len(got))
	}
	if p.server.Readable(sid) != 0 {
		t.Error("engine buffered data despite delivery callback")
	}
}
