//go:build race

package core

// raceEnabled reports whether the race detector is active. The
// zero-alloc gates skip under -race: the detector deliberately drops
// sync.Pool items (to widen race coverage), so pool hits are no longer
// deterministic and AllocsPerRun reports spurious allocations.
const raceEnabled = true
