package core

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzParseFrame drives the record-trailer parser with arbitrary
// decrypted-record contents. parseFrame sits directly behind record
// decryption, so every byte a peer can get past the AEAD reaches it;
// it must never panic, and every frame it accepts must re-encode
// byte-exactly through the appendX builders (the round-trip oracle
// that catches silent field truncation as well as crashes).
func FuzzParseFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(appendStreamData(nil, []byte("hello")))
	f.Add(appendStreamDataCoupled(nil, []byte("agg"), 1<<40))
	f.Add(appendAck(nil, 7, 1<<33))
	f.Add(appendSync(nil, 9, 3))
	f.Add(appendFailover(nil, 2))
	f.Add(appendStreamAttach(nil, 4))
	f.Add(appendStreamDetach(nil, 5))
	f.Add(appendStreamFin(nil, 6, 10))
	f.Add(appendAckRequest(nil, 8))
	f.Add(appendTCPOption(nil, OptUserTimeout, []byte{0x01, 0x02}))
	f.Add(appendAddr(nil, typeAddAddr, []byte{127, 0, 0, 1}))
	f.Add(appendAddr(nil, typeRemoveAddr, bytes.Repeat([]byte{0xfe}, 16)))
	f.Add(appendNewCookie(nil, [][16]byte{{1}, {2}}))
	f.Add(appendBPFCC(nil, []byte{0xb7, 0x00, 0x00, 0x00}, 0, 2, 8))
	f.Add(appendEcho(nil, typeEchoRequest, 5))
	f.Add(appendEcho(nil, typeEchoReply, 6))
	f.Add(appendConnClose(nil))
	f.Add(appendSessionTicket(nil, [16]byte{9, 9, 9}, []byte("ticket"), 16384))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr frame
		if err := parseFrame(&fr, data); err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("parseFrame error not ErrBadFrame: %v", err)
			}
			return
		}
		var re []byte
		switch fr.typ {
		case typeStreamData:
			re = appendStreamData(nil, fr.payload)
		case typeStreamDataCoupled:
			re = appendStreamDataCoupled(nil, fr.payload, fr.aggSeq)
		case typeAck:
			re = appendAck(nil, fr.id, fr.seq)
		case typeSync:
			re = appendSync(nil, fr.id, fr.seq)
		case typeStreamFin:
			re = appendStreamFin(nil, fr.id, fr.seq)
		case typeFailover:
			re = appendFailover(nil, fr.id)
		case typeStreamAttach:
			re = appendStreamAttach(nil, fr.id)
		case typeStreamDetach:
			re = appendStreamDetach(nil, fr.id)
		case typeAckRequest:
			re = appendAckRequest(nil, fr.id)
		case typeTCPOption:
			re = appendTCPOption(nil, fr.optKind, fr.optVal)
		case typeAddAddr, typeRemoveAddr:
			re = appendAddr(nil, fr.typ, fr.addr)
		case typeNewCookie:
			re = appendNewCookie(nil, fr.cookies)
		case typeBPFCC:
			re = appendBPFCC(nil, fr.chunk, fr.chunkIdx, fr.chunkCount, fr.progLen)
		case typeEchoRequest, typeEchoReply:
			re = appendEcho(nil, fr.typ, fr.token)
		case typeConnClose:
			re = appendConnClose(nil)
		case typeSessionTicket:
			re = appendSessionTicket(nil, fr.nonce, fr.chunk, fr.maxEarly)
		default:
			t.Fatalf("parseFrame accepted unknown type %#x", uint8(fr.typ))
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch for type %#x:\n in:  %x\n out: %x", uint8(fr.typ), data, re)
		}
	})
}
