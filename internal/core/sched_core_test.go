package core

import (
	"bytes"
	"testing"
	"time"

	"tcpls/internal/sched"
)

// coupledPair builds a two-connection pair with one coupled stream per
// connection on the client side.
func coupledPair(t *testing.T, cfg Config) (*pair, []uint32) {
	t.Helper()
	p := newPair(t, cfg)
	p.addConn(1)
	s1, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.client.CreateStream(1)
	if err != nil {
		t.Fatal(err)
	}
	p.pump()
	p.client.SetCoupled(s1, true)
	p.client.SetCoupled(s2, true)
	return p, []uint32{s1, s2}
}

func TestRedundantSchedulerDeliversExactlyOnce(t *testing.T) {
	p, _ := coupledPair(t, Config{MaxRecordPayload: 1000})
	p.client.SetPathScheduler(sched.Redundant())

	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := p.client.WriteCoupled(data); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every record must appear on both connections.
	out0, _ := p.client.Outgoing(0)
	out1, _ := p.client.Outgoing(1)
	if len(out0) == 0 || len(out1) == 0 {
		t.Fatalf("redundant records not duplicated: conn0=%d conn1=%d bytes", len(out0), len(out1))
	}
	if err := p.server.Receive(0, out0, p.now); err != nil {
		t.Fatal(err)
	}
	if err := p.server.Receive(1, out1, p.now); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data)+1000)
	n := p.server.ReadCoupled(got)
	if n != len(data) || !bytes.Equal(got[:n], data) {
		t.Fatalf("coupled read %d bytes, want %d exactly once", n, len(data))
	}
	// 5 records duplicated on 2 paths were received, 5 delivered.
	if rec := p.server.Stats().RecordsReceived; rec < 10 {
		t.Fatalf("RecordsReceived = %d, want >= 10 (duplicates on the wire)", rec)
	}
}

func TestSchedInvalidTraceAndFallback(t *testing.T) {
	p, streams := coupledPair(t, Config{MaxRecordPayload: 1000})
	var events []TraceEvent
	p.client.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	// Deliberately broken scheduler: out-of-range index every time.
	p.client.SetScheduler(func(recordIdx uint64, ids []uint32) int { return 99 })

	data := make([]byte, 3000)
	if _, err := p.client.WriteCoupled(data); err != nil {
		t.Fatal(err)
	}
	p.pump()

	var invalid, picks int
	for _, ev := range events {
		switch ev.Name {
		case "sched_invalid":
			invalid++
			if ev.Bytes != 99 {
				t.Fatalf("sched_invalid Bytes = %d, want the bad index 99", ev.Bytes)
			}
		case "sched_pick":
			picks++
			if ev.Stream != streams[0] {
				t.Fatalf("fallback picked stream %d, want first coupled stream %d", ev.Stream, streams[0])
			}
		}
	}
	if invalid != 3 || picks != 3 {
		t.Fatalf("events: %d sched_invalid, %d sched_pick; want 3 each", invalid, picks)
	}
	// Data still flows despite the broken scheduler.
	got := make([]byte, len(data))
	if n := p.server.ReadCoupled(got); n != len(data) {
		t.Fatalf("delivered %d bytes, want %d", n, len(data))
	}
}

func TestSchedPickTraceRoutesRecords(t *testing.T) {
	p, streams := coupledPair(t, Config{MaxRecordPayload: 1000})
	var picks []TraceEvent
	p.client.SetTracer(func(ev TraceEvent) {
		if ev.Name == "sched_pick" {
			picks = append(picks, ev)
		}
	})
	if _, err := p.client.WriteCoupled(make([]byte, 4000)); err != nil {
		t.Fatal(err)
	}
	p.pump()
	if len(picks) != 4 {
		t.Fatalf("sched_pick events = %d, want 4", len(picks))
	}
	// Default round-robin alternates the two coupled streams.
	for i, ev := range picks {
		if want := streams[i%2]; ev.Stream != want {
			t.Fatalf("pick %d on stream %d, want %d", i, ev.Stream, want)
		}
		if ev.Seq != uint64(i) {
			t.Fatalf("pick %d aggSeq = %d", i, ev.Seq)
		}
	}
}

func TestAckDrivenPathMetrics(t *testing.T) {
	cfg := Config{EnableFailover: true, AckPeriod: 1, MaxRecordPayload: 1000}
	p, _ := coupledPair(t, cfg)
	m := sched.NewMetrics()
	p.client.SetMetrics(m)
	base := p.now
	p.client.SetClock(func() time.Time { return base })

	if _, err := p.client.WriteCoupled(make([]byte, 4000)); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	// The peer's acks arrive 30ms after the records were sealed.
	p.now = base.Add(30 * time.Millisecond)
	p.pump()

	for _, conn := range []uint32{0, 1} {
		st, ok := m.Snapshot(conn)
		if !ok {
			t.Fatalf("no metrics for conn %d", conn)
		}
		if !st.HasRTT || st.SRTT != 30*time.Millisecond {
			t.Fatalf("conn %d SRTT = %v (has=%v), want 30ms", conn, st.SRTT, st.HasRTT)
		}
		if st.InFlight != 0 {
			t.Fatalf("conn %d InFlight = %d after full ack", conn, st.InFlight)
		}
	}
}

func TestFailoverFeedsLossMetrics(t *testing.T) {
	cfg := Config{EnableFailover: true, AckPeriod: 1, MaxRecordPayload: 1000}
	p, _ := coupledPair(t, cfg)
	m := sched.NewMetrics()
	p.client.SetMetrics(m)

	if _, err := p.client.WriteCoupled(make([]byte, 4000)); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	// Conn 0 dies with its records unacknowledged; they replay onto 1.
	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	st, ok := m.Snapshot(0)
	if !ok || st.Losses == 0 {
		t.Fatalf("failed conn losses = %+v, want > 0", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("failed conn still has %d bytes in flight", st.InFlight)
	}
	st1, _ := m.Snapshot(1)
	if st1.InFlight == 0 {
		t.Fatal("replayed bytes not in flight on target conn")
	}
	p.pump(0)
	// Acks from the server drain the target's flight.
	st1, _ = m.Snapshot(1)
	if st1.InFlight != 0 {
		t.Fatalf("target InFlight = %d after acks", st1.InFlight)
	}
}

func TestWeightedRateSchedulerRoutesByMeasuredRate(t *testing.T) {
	p, streams := coupledPair(t, Config{MaxRecordPayload: 1000})
	m := sched.NewMetrics()
	p.client.SetMetrics(m)
	p.client.SetPathScheduler(sched.WeightedRate())
	// Conn 1 measures 4x the delivery rate of conn 0.
	now := p.now
	m.OnAcked(0, 100_000, 0, now)
	m.OnAcked(0, 100_000, 0, now.Add(time.Second))
	m.OnAcked(1, 400_000, 0, now)
	m.OnAcked(1, 400_000, 0, now.Add(time.Second))

	counts := map[uint32]int{}
	p.client.SetTracer(func(ev TraceEvent) {
		if ev.Name == "sched_pick" {
			counts[ev.Stream]++
		}
	})
	if _, err := p.client.WriteCoupled(make([]byte, 50_000)); err != nil {
		t.Fatal(err)
	}
	p.pump()
	if counts[streams[1]] < 3*counts[streams[0]] {
		t.Fatalf("rate-weighted split off: %v (streams %v)", counts, streams)
	}
	got := make([]byte, 50_000)
	if n := p.server.ReadCoupled(got); n != 50_000 {
		t.Fatalf("delivered %d bytes", n)
	}
}
