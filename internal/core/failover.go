package core

import (
	"fmt"
	"sort"
	"time"

	"tcpls/internal/record"
	"tcpls/internal/wire"
)

// Advance drives the engine's timers. With a UserTimeout configured
// (§4.2), a connection that has been silent for longer than the timeout
// while it still has active streams is declared failed — the encrypted
// TCP User Timeout option's break-before-make trigger. It returns the
// IDs of connections that failed during this call.
func (s *Session) Advance(now time.Time) []uint32 {
	if s.cfg.UserTimeout <= 0 {
		return nil
	}
	var failed []uint32
	for id, c := range s.conns {
		if c.failed || c.closed {
			continue
		}
		if !s.connActive(id) {
			continue
		}
		if now.Sub(c.lastRecv) > s.cfg.UserTimeout {
			c.failed = true
			failed = append(failed, id)
			s.lastNow = now
			s.trace("conn_failed", id, 0, 0, 0)
			if s.tel != nil {
				s.tel.ConnFailures.Inc()
			}
			s.emit(Event{Kind: EventConnFailed, Conn: id})
		}
	}
	if len(failed) > 0 {
		s.telSyncGauges()
	}
	return failed
}

// connActive reports whether any unfinished stream is attached to conn,
// i.e. whether silence on it is meaningful.
func (s *Session) connActive(connID uint32) bool {
	for _, st := range s.streams {
		if st.conn != connID {
			continue
		}
		if !st.finSent || !st.peerFin || len(st.retransmit) > 0 {
			return true
		}
	}
	return false
}

// ReportConnFailed lets the I/O wrapper report an explicit TCP-level
// failure (RST, FIN, read error) — the fast failover trigger of Fig. 8.
func (s *Session) ReportConnFailed(connID uint32) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	if !c.failed {
		c.failed = true
		s.lastNow = s.now() // wrapper-reported failure happens in real time
		s.trace("conn_failed", connID, 0, 0, 0)
		if s.tel != nil {
			s.tel.ConnFailures.Inc()
		}
		s.telSyncGauges()
		s.emit(Event{Kind: EventConnFailed, Conn: connID})
	}
	return nil
}

// ConnFailed reports whether connID has been declared failed.
func (s *Session) ConnFailed(connID uint32) bool {
	c, ok := s.conns[connID]
	return ok && c.failed
}

// FailedConnsWithStreams returns the failed connections that still own
// streams — the parked state the recovery supervisor must drain by
// failing each of them over onto a freshly joined connection. IDs are
// sorted so the resume order is deterministic.
func (s *Session) FailedConnsWithStreams() []uint32 {
	var out []uint32
	for id, c := range s.conns {
		if c.failed && len(s.StreamsOnConn(id)) > 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NotifyConnFailed propagates a locally detected connection failure to
// the peer without re-homing any streams — Fig. 4 step 2, the server's
// half of failover. Target selection belongs to the client (only it can
// re-dial, and two sides choosing targets independently can cross their
// STREAM_ATTACHes and re-home the same stream onto different
// connections); a server that detects a dead path sends this notice on
// the lowest live connection and waits for the client's ATTACH + SYNC
// to move the parked streams (handleStreamAttach replays our send side
// when it arrives). No-op without failover or without a live path.
func (s *Session) NotifyConnFailed(failedID uint32) error {
	if !s.cfg.EnableFailover {
		return nil
	}
	var via *conn
	for id, c := range s.conns {
		if id == failedID || c.failed || c.closed {
			continue
		}
		if via == nil || id < via.id {
			via = c
		}
	}
	if via == nil {
		return ErrConnFailed
	}
	s.trace("failover_notified", via.id, 0, uint64(failedID), 0)
	return s.sendCtl(via, appendFailover(nil, failedID))
}

// FailoverTo resynchronizes and retransmits all streams of failedID onto
// targetID (Fig. 4): it notifies the peer, re-attaches each stream,
// sends a SYNC with the resume sequence, and replays every
// unacknowledged record — byte-identical ciphertext, since per-stream
// contexts make the sequence numbers deterministic.
//
// A connection can be failed over at most once: its streams move away
// and a second call has nothing to resynchronize, so it returns
// ErrConnFailed rather than re-notifying the peer with stale state.
// Failing over onto a target that is itself failed or closed also
// returns ErrConnFailed; the caller picks another target (the cascading
// case) or parks the streams for the recovery supervisor.
func (s *Session) FailoverTo(failedID, targetID uint32) error {
	if !s.cfg.EnableFailover {
		return fmt.Errorf("core: failover not enabled in config")
	}
	failedConn, err := s.getConn(failedID)
	if err != nil {
		return err
	}
	if failedConn.failedOver {
		return ErrConnFailed
	}
	target, err := s.getConn(targetID)
	if err != nil {
		return err
	}
	if target.failed || target.closed || targetID == failedID {
		return ErrConnFailed
	}
	failedConn.failed = true
	failedConn.failedOver = true
	if s.tracer != nil {
		s.lastNow = s.now() // sync/retransmit traces happen now
	}
	s.trace("failover_started", failedID, 0, 0, 0)
	if s.tel != nil {
		s.tel.Failovers.Inc()
	}
	s.telSyncGauges()

	if err := s.sendCtl(target, appendFailover(nil, failedID)); err != nil {
		return err
	}
	for _, id := range s.sortedStreamIDs() {
		st := s.streams[id]
		if st.conn != failedID {
			continue
		}
		// Move our receive context to the target's demux so the peer's
		// records for this stream (it fails over too) authenticate here.
		failedConn.demux.Detach(st.id)
		if target.demux.Context(st.id) == nil {
			target.demux.Attach(st.recvCtx)
		}
		// Re-home and replay the send side.
		if err := s.failoverStreamSend(st, failedID, target); err != nil {
			return err
		}
	}
	s.emit(Event{Kind: EventFailoverDone, Conn: targetID})
	return nil
}

// failoverStreamSend moves one stream's send side from fromID onto
// target: re-attach, SYNC with the resume sequence, replay every
// unacknowledged record, and re-announce a possibly-lost FIN. Shared by
// FailoverTo (we detected the failure) and handleStreamAttach (the peer
// failed over first and our send side follows).
func (s *Session) failoverStreamSend(st *stream, fromID uint32, target *conn) error {
	st.conn = target.id
	target.attached[st.id] = true
	if err := s.sendCtl(target, appendStreamAttach(nil, st.id)); err != nil {
		return err
	}
	resume := st.sendCtx.Seq()
	if len(st.retransmit) > 0 {
		resume = st.retransmit[0].seq
	}
	if err := s.sendCtl(target, appendSync(nil, st.id, resume)); err != nil {
		return err
	}
	s.trace("sync_sent", target.id, st.id, resume, 0)
	// Replay unacknowledged records in order.
	for ri := range st.retransmit {
		r := &st.retransmit[ri]
		var trailer [9]byte
		var tlen int
		if r.typ == typeStreamDataCoupled {
			wire.PutUint64(trailer[:8], r.aggSeq)
			trailer[8] = byte(typeStreamDataCoupled)
			tlen = 9
		} else {
			trailer[0] = byte(typeStreamData)
			tlen = 1
		}
		out, err := st.sendCtx.SealSeqV(target.out, r.seq, record.ContentTypeApplicationData, s.cfg.PadRecordsTo, r.payload, trailer[:tlen])
		if err != nil {
			return err
		}
		target.out = out
		s.stats.Retransmits++
		s.stats.RecordsSent++
		s.trace("retransmit", target.id, st.id, r.seq, len(r.payload))
		if s.tel != nil {
			target.tel.Retransmits.Inc()
			target.tel.RecordsSent.Inc()
		}
		// Path metrics: the bytes were lost on the failed path and
		// are in flight again on the target; the replayed copy is
		// barred from RTT sampling (Karn).
		r.retxCount++
		if s.stampWrites {
			// The replay travels on the target's next drained chunk; its
			// write stamp overwrites the failed original's.
			target.unwritten = append(target.unwritten, spanKey{stream: st.id, seq: r.seq})
		}
		if s.metrics != nil {
			s.metrics.OnLost(fromID, len(r.payload))
			s.metrics.OnSent(target.id, len(r.payload))
		}
		if s.pathSched != nil {
			s.pathSched.OnLost(fromID, len(r.payload))
			s.pathSched.OnSent(target.id, len(r.payload))
		}
	}
	// Re-send a FIN marker if it may have been lost with the
	// connection.
	if st.finSent {
		if err := s.sendCtl(target, appendStreamFin(nil, st.id, st.sendCtx.Seq())); err != nil {
			return err
		}
	}
	return nil
}

// handleSync resynchronizes a stream's receive context after the peer's
// failover: the next record of stream f.id on this connection carries
// sequence f.seq. Records below nextDeliverSeq will be decrypted and
// discarded by the duplicate filter.
func (s *Session) handleSync(c *conn, f *frame) error {
	st, err := s.getStream(f.id)
	if err != nil {
		return err
	}
	// The stream should already be attached here by the preceding
	// STREAM_ATTACH; tolerate reordering of control frames by attaching
	// now if needed.
	if c.demux.Context(f.id) == nil {
		if old, ok := s.conns[st.conn]; ok {
			old.demux.Detach(f.id)
		}
		c.demux.Attach(st.recvCtx)
		st.conn = c.id
	}
	st.recvCtx.SetSeq(f.seq)
	s.trace("sync_received", c.id, f.id, f.seq, 0)
	return nil
}

// handleFailoverNotice processes the peer's explicit failure
// notification for one of our connections (shortens reaction time,
// Fig. 4 step 2).
func (s *Session) handleFailoverNotice(c *conn, f *frame) error {
	failed, ok := s.conns[f.id]
	if !ok {
		return nil
	}
	if !failed.failed {
		failed.failed = true
		s.trace("conn_failed", f.id, 0, 0, 0)
		if s.tel != nil {
			s.tel.ConnFailures.Inc()
		}
		s.telSyncGauges()
		s.emit(Event{Kind: EventConnFailed, Conn: f.id})
	}
	return nil
}
