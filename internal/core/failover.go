package core

import (
	"fmt"
	"sort"
	"time"

	"tcpls/internal/record"
	"tcpls/internal/wire"
)

// Advance drives the engine's timers. With a UserTimeout configured
// (§4.2), a connection that has been silent for longer than the timeout
// while it still has active streams is declared failed — the encrypted
// TCP User Timeout option's break-before-make trigger. It returns the
// IDs of connections that failed during this call.
//
// Connections are examined in ascending ID order so that the failure
// events, traces, and any failover reaction they trigger replay
// identically run after run — the deterministic-replay contract the
// fleet harness (internal/fleet) builds its seed reproducibility on.
func (s *Session) Advance(now time.Time) []uint32 {
	if s.cfg.UserTimeout <= 0 {
		return nil
	}
	ids := make([]uint32, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var failed []uint32
	for _, id := range ids {
		c := s.conns[id]
		if c.failed || c.closed {
			continue
		}
		if !s.connActive(id) {
			continue
		}
		if now.Sub(c.lastRecv) > s.cfg.UserTimeout {
			c.failed = true
			failed = append(failed, id)
			s.lastNow = now
			s.trace("conn_failed", id, 0, 0, 0)
			if s.tel != nil {
				s.tel.ConnFailures.Inc()
			}
			s.emit(Event{Kind: EventConnFailed, Conn: id})
		}
	}
	if len(failed) > 0 {
		s.telSyncGauges()
	}
	return failed
}

// connActive reports whether any unfinished stream is attached to conn,
// i.e. whether silence on it is meaningful.
func (s *Session) connActive(connID uint32) bool {
	for _, st := range s.streams {
		if st.conn != connID {
			continue
		}
		if !st.finSent || !st.peerFin || len(st.retransmit) > 0 {
			return true
		}
	}
	return false
}

// ReportConnFailed lets the I/O wrapper report an explicit TCP-level
// failure (RST, FIN, read error) — the fast failover trigger of Fig. 8.
func (s *Session) ReportConnFailed(connID uint32) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	if !c.failed {
		c.failed = true
		s.lastNow = s.now() // wrapper-reported failure happens in real time
		s.trace("conn_failed", connID, 0, 0, 0)
		if s.tel != nil {
			s.tel.ConnFailures.Inc()
		}
		s.telSyncGauges()
		s.emit(Event{Kind: EventConnFailed, Conn: connID})
	}
	return nil
}

// ConnFailed reports whether connID has been declared failed.
func (s *Session) ConnFailed(connID uint32) bool {
	c, ok := s.conns[connID]
	return ok && c.failed
}

// FailedConnsWithStreams returns the failed connections that still own
// streams — the parked state the recovery supervisor must drain by
// failing each of them over onto a freshly joined connection. IDs are
// sorted so the resume order is deterministic.
func (s *Session) FailedConnsWithStreams() []uint32 {
	var out []uint32
	for id, c := range s.conns {
		if c.failed && len(s.StreamsOnConn(id)) > 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NotifyConnFailed propagates a locally detected connection failure to
// the peer without re-homing any streams — Fig. 4 step 2, the server's
// half of failover. Target selection belongs to the client (only it can
// re-dial, and two sides choosing targets independently can cross their
// STREAM_ATTACHes and re-home the same stream onto different
// connections); a server that detects a dead path sends this notice on
// the lowest live connection and waits for the client's ATTACH + SYNC
// to move the parked streams (handleStreamAttach replays our send side
// when it arrives). No-op without failover or without a live path.
func (s *Session) NotifyConnFailed(failedID uint32) error {
	if !s.cfg.EnableFailover {
		return nil
	}
	var via *conn
	for id, c := range s.conns {
		if id == failedID || c.failed || c.closed {
			continue
		}
		if via == nil || id < via.id {
			via = c
		}
	}
	if via == nil {
		return ErrConnFailed
	}
	s.trace("failover_notified", via.id, 0, uint64(failedID), 0)
	return s.sendCtl(via, appendFailover(nil, failedID))
}

// FailoverTo resynchronizes and retransmits all streams of failedID onto
// targetID (Fig. 4): it notifies the peer, re-attaches each stream,
// sends a SYNC with the resume sequence, and replays every
// unacknowledged record — byte-identical ciphertext, since per-stream
// contexts make the sequence numbers deterministic.
//
// A connection can be failed over at most once: its streams move away
// and a second call has nothing to resynchronize, so it returns
// ErrConnFailed rather than re-notifying the peer with stale state.
// Failing over onto a target that is itself failed or closed also
// returns ErrConnFailed; the caller picks another target (the cascading
// case) or parks the streams for the recovery supervisor.
func (s *Session) FailoverTo(failedID, targetID uint32) error {
	if !s.cfg.EnableFailover {
		return fmt.Errorf("core: failover not enabled in config")
	}
	failedConn, err := s.getConn(failedID)
	if err != nil {
		return err
	}
	if failedConn.failedOver {
		return ErrConnFailed
	}
	target, err := s.getConn(targetID)
	if err != nil {
		return err
	}
	if target.failed || target.closed || targetID == failedID {
		return ErrConnFailed
	}
	return s.failoverInto([]*conn{failedConn}, target)
}

// FailoverAllTo drains every failed connection that still owns streams
// onto targetID in ONE merged replay, and returns how many connections
// it drained. This is the correct resynchronization primitive when more
// than one connection died before a replacement joined (a rack outage,
// an RST storm): re-homing the conns one FailoverTo at a time replays
// each conn's retransmit buffer back to back, but coupled records'
// aggregation sequences interleave across the conns — so the receiver's
// reorder heap must park roughly half of the first conn's replay until
// the second conn's replay arrives, an O(transfer) spike the reorder cap
// cannot shed (with a single live conn there is no other conn to declare
// suspect). Merging the replays in aggregation-sequence order keeps the
// receiver's heap flat. The fleet harness (internal/fleet) caught this
// under correlated faults; see its bounded-memory invariant.
func (s *Session) FailoverAllTo(targetID uint32) (int, error) {
	if !s.cfg.EnableFailover {
		return 0, fmt.Errorf("core: failover not enabled in config")
	}
	target, err := s.getConn(targetID)
	if err != nil {
		return 0, err
	}
	if target.failed || target.closed {
		return 0, ErrConnFailed
	}
	var failed []*conn
	for _, id := range s.FailedConnsWithStreams() {
		if id == targetID {
			continue
		}
		if fc := s.conns[id]; !fc.failedOver {
			failed = append(failed, fc)
		}
	}
	if len(failed) == 0 {
		return 0, nil
	}
	return len(failed), s.failoverInto(failed, target)
}

// failoverInto re-homes the streams of all failed conns onto target:
// per conn a FAILOVER notice, per stream ATTACH + SYNC, then one merged
// replay of every unacknowledged record (replayMerged orders coupled
// records globally by aggregation sequence).
func (s *Session) failoverInto(failed []*conn, target *conn) error {
	if s.tracer != nil {
		s.lastNow = s.now() // sync/retransmit traces happen now
	}
	var moves []streamReplay
	for _, fc := range failed {
		fc.failed = true
		fc.failedOver = true
		s.trace("failover_started", fc.id, 0, 0, 0)
		if s.tel != nil {
			s.tel.Failovers.Inc()
		}
		if err := s.sendCtl(target, appendFailover(nil, fc.id)); err != nil {
			return err
		}
		for _, id := range s.sortedStreamIDs() {
			st := s.streams[id]
			if st.conn != fc.id {
				continue
			}
			// Move our receive context to the target's demux so the peer's
			// records for this stream (it fails over too) authenticate here.
			fc.demux.Detach(st.id)
			if target.demux.Context(st.id) == nil {
				target.demux.Attach(st.recvCtx)
			}
			if err := s.failoverStreamPrep(st, target); err != nil {
				return err
			}
			moves = append(moves, streamReplay{st: st, from: fc.id})
		}
	}
	s.telSyncGauges()
	if err := s.replayMerged(moves, target); err != nil {
		return err
	}
	s.emit(Event{Kind: EventFailoverDone, Conn: target.id})
	return nil
}

// streamReplay pairs a stream being re-homed with the connection it is
// leaving, for loss accounting during replay.
type streamReplay struct {
	st   *stream
	from uint32
}

// failoverStreamPrep moves one stream's send side onto target and tells
// the peer: re-attach, then SYNC with the resume sequence. The record
// replay itself is replayMerged's job.
func (s *Session) failoverStreamPrep(st *stream, target *conn) error {
	st.conn = target.id
	target.attached[st.id] = true
	if err := s.sendCtl(target, appendStreamAttach(nil, st.id)); err != nil {
		return err
	}
	resume := st.sendCtx.Seq()
	if len(st.retransmit) > 0 {
		resume = st.retransmit[0].seq
	}
	if err := s.sendCtl(target, appendSync(nil, st.id, resume)); err != nil {
		return err
	}
	s.trace("sync_sent", target.id, st.id, resume, 0)
	return nil
}

// replayMerged replays every unacknowledged record of the given streams
// onto target in one globally ordered pass: coupled records merge across
// streams in aggregation-sequence order (each stream's own sequence
// order is preserved, since aggSeq is monotonic within a stream), plain
// records keep per-stream order. Ordering the wire replay by aggSeq is
// what keeps the receiver's reorder heap flat when several streams —
// possibly stranded on several failed conns — resynchronize onto one
// target. Closes by re-announcing possibly-lost FINs.
func (s *Session) replayMerged(moves []streamReplay, target *conn) error {
	type ref struct{ mi, ri int }
	var refs []ref
	for mi := range moves {
		for ri := range moves[mi].st.retransmit {
			refs = append(refs, ref{mi, ri})
		}
	}
	sort.SliceStable(refs, func(a, b int) bool {
		ra := &moves[refs[a].mi].st.retransmit[refs[a].ri]
		rb := &moves[refs[b].mi].st.retransmit[refs[b].ri]
		ca := ra.typ == typeStreamDataCoupled
		cb := rb.typ == typeStreamDataCoupled
		if ca != cb {
			return !ca // plain records first, in their stable stream order
		}
		if ca {
			return ra.aggSeq < rb.aggSeq
		}
		return false
	})
	for _, rf := range refs {
		mv := &moves[rf.mi]
		if err := s.replayRecord(mv.st, &mv.st.retransmit[rf.ri], mv.from, target); err != nil {
			return err
		}
	}
	// Re-send FIN markers that may have been lost with the connections.
	for _, mv := range moves {
		if mv.st.finSent {
			if err := s.sendCtl(target, appendStreamFin(nil, mv.st.id, mv.st.sendCtx.Seq())); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayRecord re-seals one buffered record onto target — byte-identical
// ciphertext, since per-stream contexts make sequence numbers
// deterministic — and books the loss/resend against path metrics.
func (s *Session) replayRecord(st *stream, r *sentRecord, fromID uint32, target *conn) error {
	var trailer [9]byte
	var tlen int
	if r.typ == typeStreamDataCoupled {
		wire.PutUint64(trailer[:8], r.aggSeq)
		trailer[8] = byte(typeStreamDataCoupled)
		tlen = 9
	} else {
		trailer[0] = byte(typeStreamData)
		tlen = 1
	}
	out, err := st.sendCtx.SealSeqV(target.out, r.seq, record.ContentTypeApplicationData, s.cfg.PadRecordsTo, r.payload, trailer[:tlen])
	if err != nil {
		return err
	}
	target.out = out
	s.stats.Retransmits++
	s.stats.RecordsSent++
	s.trace("retransmit", target.id, st.id, r.seq, len(r.payload))
	if s.tel != nil {
		target.tel.Retransmits.Inc()
		target.tel.RecordsSent.Inc()
	}
	// Path metrics: the bytes were lost on the failed path and are in
	// flight again on the target; the replayed copy is barred from RTT
	// sampling (Karn).
	r.retxCount++
	if s.stampWrites {
		// The replay travels on the target's next drained chunk; its
		// write stamp overwrites the failed original's.
		target.unwritten = append(target.unwritten, spanKey{stream: st.id, seq: r.seq})
	}
	if s.metrics != nil {
		s.metrics.OnLost(fromID, len(r.payload))
		s.metrics.OnSent(target.id, len(r.payload))
	}
	if s.pathSched != nil {
		s.pathSched.OnLost(fromID, len(r.payload))
		s.pathSched.OnSent(target.id, len(r.payload))
	}
	return nil
}

// handleSync resynchronizes a stream's receive context after the peer's
// failover: the next record of stream f.id on this connection carries
// sequence f.seq. Records below nextDeliverSeq will be decrypted and
// discarded by the duplicate filter.
func (s *Session) handleSync(c *conn, f *frame) error {
	st, err := s.getStream(f.id)
	if err != nil {
		return err
	}
	// The stream should already be attached here by the preceding
	// STREAM_ATTACH; tolerate reordering of control frames by attaching
	// now if needed. As in handleStreamAttach, only detach from a dead
	// old conn — a live one may still carry records for this stream.
	if ctx := c.demux.Context(f.id); ctx == nil {
		if old, ok := s.conns[st.conn]; ok && (old.failed || old.closed) {
			old.demux.Detach(f.id)
		}
		// Clone, as in handleStreamAttach: a live old conn keeps its own
		// counter for late in-flight records; only this connection's
		// context resumes at the SYNC point.
		nc := st.recvCtx.Clone(f.seq)
		c.demux.Attach(nc)
		st.recvCtx = nc
		st.conn = c.id
	} else {
		// Normal ATTACH-then-SYNC order: the clone for this connection is
		// already attached — resynchronize it directly (it is not
		// necessarily st.recvCtx if yet another re-home crossed this one).
		ctx.SetSeq(f.seq)
	}
	s.trace("sync_received", c.id, f.id, f.seq, 0)
	return nil
}

// handleFailoverNotice processes the peer's explicit failure
// notification for one of our connections (shortens reaction time,
// Fig. 4 step 2).
func (s *Session) handleFailoverNotice(c *conn, f *frame) error {
	failed, ok := s.conns[f.id]
	if !ok {
		return nil
	}
	if !failed.failed {
		failed.failed = true
		s.trace("conn_failed", f.id, 0, 0, 0)
		if s.tel != nil {
			s.tel.ConnFailures.Inc()
		}
		s.telSyncGauges()
		s.emit(Event{Kind: EventConnFailed, Conn: f.id})
	}
	return nil
}
