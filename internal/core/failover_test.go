package core

import (
	"bytes"
	"testing"
	"time"
)

// readAll drains a stream's readable bytes on s.
func readAll(t *testing.T, s *Session, sid uint32) []byte {
	t.Helper()
	var out []byte
	buf := make([]byte, 4096)
	for s.Readable(sid) > 0 {
		n, err := s.Read(sid, buf)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, buf[:n]...)
	}
	return out
}

// TestHandleSyncBeforeStreamAttach covers the control-frame reordering
// tolerance in handleSync: a SYNC that lands before its STREAM_ATTACH
// must attach the stream's receive context to the new connection itself
// (and re-home the stream) instead of failing or resyncing the wrong
// demux.
func TestHandleSyncBeforeStreamAttach(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true})
	sid, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.client.Write(sid, []byte("before failover")); err != nil {
		t.Fatal(err)
	}
	p.pump()
	if got := readAll(t, p.server, sid); !bytes.Equal(got, []byte("before failover")) {
		t.Fatalf("pre-failover data mismatch: %q", got)
	}
	p.addConn(1)
	p.pump()

	sc := p.server.conns[1]
	if sc.demux.Context(sid) != nil {
		t.Fatal("precondition: stream must not be attached to conn 1 yet")
	}
	st := p.server.streams[sid]
	resume := st.recvCtx.Seq()
	if err := p.server.handleSync(sc, &frame{typ: typeSync, id: sid, seq: resume}); err != nil {
		t.Fatalf("handleSync before attach: %v", err)
	}
	if st.conn != 1 {
		t.Fatalf("stream not re-homed by early SYNC: on conn %d", st.conn)
	}
	if sc.demux.Context(sid) == nil {
		t.Fatal("receive context not attached to the SYNC's connection")
	}
	// The old connection is still live here, so the receive context
	// must STAY attached to it too: records already in flight on conn 0
	// arrive after the re-home and must still decrypt. Detach-on-re-home
	// only happens when the old connection has failed or closed.
	if p.server.conns[0].demux.Context(sid) == nil {
		t.Fatal("receive context detached from a live old connection with records possibly in flight")
	}
	if got := st.recvCtx.Seq(); got != resume {
		t.Fatalf("resume seq = %d, want %d", got, resume)
	}

	// The late STREAM_ATTACH for the same stream must now be a no-op
	// re-home, not an error or a duplicate attach.
	if err := p.server.handleStreamAttach(sc, &frame{typ: typeStreamAttach, id: sid}); err != nil {
		t.Fatalf("late STREAM_ATTACH after SYNC: %v", err)
	}
	if st.conn != 1 || sc.demux.Context(sid) == nil {
		t.Fatal("late STREAM_ATTACH corrupted the re-homed stream")
	}
}

// TestDoubleFailoverSameConn: failing the same connection over twice must
// return ErrConnFailed from the second call and leave the first
// failover's stream state intact.
func TestDoubleFailoverSameConn(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, AckPeriod: 1000})
	p.addConn(1)
	p.addConn(2)
	sid, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{0xAB}, 40000)
	if _, err := p.client.Write(sid, msg); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	// Records sealed onto conn 0 die with it.
	p.client.Outgoing(0)

	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.client.FailoverTo(0, 2); err != ErrConnFailed {
		t.Fatalf("second failover of conn 0 = %v, want ErrConnFailed", err)
	}
	if got, _ := p.client.StreamConn(sid); got != 1 {
		t.Fatalf("double failover moved the stream to conn %d, want 1", got)
	}
	p.pump(0)
	if got := readAll(t, p.server, sid); !bytes.Equal(got, msg) {
		t.Fatalf("replayed data corrupted: got %d bytes, want %d", len(got), len(msg))
	}
}

// TestFailoverOntoFailedTarget: choosing a target that already failed
// must return ErrConnFailed and leave the source untouched, so the
// caller can retry with another target.
func TestFailoverOntoFailedTarget(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, AckPeriod: 1000})
	p.addConn(1)
	p.addConn(2)
	sid, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("survives a bad target pick")
	if _, err := p.client.Write(sid, msg); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	p.client.Outgoing(0)

	if err := p.client.ReportConnFailed(1); err != nil {
		t.Fatal(err)
	}
	if err := p.client.FailoverTo(0, 1); err != ErrConnFailed {
		t.Fatalf("failover onto failed target = %v, want ErrConnFailed", err)
	}
	// Also: failover onto itself is never valid.
	if err := p.client.FailoverTo(0, 0); err != ErrConnFailed {
		t.Fatalf("failover onto itself = %v, want ErrConnFailed", err)
	}
	if got, _ := p.client.StreamConn(sid); got != 0 {
		t.Fatalf("failed failover moved the stream to conn %d, want 0", got)
	}
	// The rejected call must not have marked conn 0 as consumed: the
	// retry with a live target replays everything.
	if err := p.client.FailoverTo(0, 2); err != nil {
		t.Fatalf("retry with live target: %v", err)
	}
	p.pump(0, 1)
	if got := readAll(t, p.server, sid); !bytes.Equal(got, msg) {
		t.Fatalf("replay after retry mismatch: %q", got)
	}
}

// TestCascadingFailoverReplaysTwice: when the failover target dies before
// its replay is delivered, failing the target over again must re-replay
// the same records onto the next connection.
func TestCascadingFailoverReplaysTwice(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, AckPeriod: 1000})
	p.addConn(1)
	p.addConn(2)
	sid, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{0x5C}, 100000)
	if _, err := p.client.Write(sid, msg); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	p.client.Outgoing(0) // lost with conn 0

	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	// Conn 1 dies before any replayed byte is delivered.
	p.client.Outgoing(1)
	if err := p.client.FailoverTo(1, 2); err != nil {
		t.Fatalf("cascading failover: %v", err)
	}
	if got, _ := p.client.StreamConn(sid); got != 2 {
		t.Fatalf("stream on conn %d after cascade, want 2", got)
	}
	p.pump(0, 1)
	if got := readAll(t, p.server, sid); !bytes.Equal(got, msg) {
		t.Fatalf("cascaded replay corrupted: got %d bytes, want %d", len(got), len(msg))
	}
}

// TestPeerFailoverReplaysOurSendSide: when the peer fails a connection
// over first (its FAILOVER + STREAM_ATTACH arrive before we acted on the
// failure), our unacknowledged send-side records on the dead connection
// must follow the stream onto the new one — otherwise they are lost even
// though failover "succeeded".
func TestPeerFailoverReplaysOurSendSide(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, AckPeriod: 1000})
	p.addConn(1)
	sid, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	p.pump()

	// The server sends data on conn 0; the bytes die on the wire.
	lost := bytes.Repeat([]byte{0xE7}, 30000)
	if _, err := p.server.Write(sid, lost); err != nil {
		t.Fatal(err)
	}
	if err := p.server.Flush(); err != nil {
		t.Fatal(err)
	}
	p.server.Outgoing(0)

	// The client detects the failure first and fails over. The server
	// only learns via the notice; its own send side must still replay.
	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	p.pump(0)

	if got, _ := p.server.StreamConn(sid); got != 1 {
		t.Fatalf("server stream on conn %d, want 1", got)
	}
	if got := readAll(t, p.client, sid); !bytes.Equal(got, lost) {
		t.Fatalf("server's unacked records lost in peer-driven failover: got %d bytes, want %d", len(got), len(lost))
	}
}

// TestConnFailedTraceOnAllPaths: all three failure-declaration paths —
// Advance (timeout), ReportConnFailed (wrapper), and the peer's FAILOVER
// notice — must emit the conn_failed trace point alongside the event.
func TestConnFailedTraceOnAllPaths(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true, UserTimeout: time.Second})
	p.addConn(1)
	p.addConn(2)

	countTrace := func(evs []TraceEvent, name string, conn uint32) int {
		n := 0
		for _, ev := range evs {
			if ev.Name == name && ev.Conn == conn {
				n++
			}
		}
		return n
	}
	var clientTrace, serverTrace []TraceEvent
	p.client.SetTracer(func(ev TraceEvent) { clientTrace = append(clientTrace, ev) })
	p.server.SetTracer(func(ev TraceEvent) { serverTrace = append(serverTrace, ev) })

	// Path 1: explicit wrapper report.
	if err := p.client.ReportConnFailed(2); err != nil {
		t.Fatal(err)
	}
	if countTrace(clientTrace, "conn_failed", 2) != 1 {
		t.Fatal("ReportConnFailed did not emit the conn_failed trace")
	}
	// Idempotent: a duplicate report must not re-trace.
	p.client.ReportConnFailed(2)
	if countTrace(clientTrace, "conn_failed", 2) != 1 {
		t.Fatal("duplicate ReportConnFailed re-emitted conn_failed")
	}

	// Path 2: timeout-driven Advance. The stream keeps conn 0 active.
	sid, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.client.Write(sid, []byte("keepalive")); err != nil {
		t.Fatal(err)
	}
	p.pump()
	failed := p.client.Advance(p.now.Add(2 * time.Second))
	if len(failed) != 1 || failed[0] != 0 {
		t.Fatalf("Advance failed conns = %v, want [0]", failed)
	}
	if countTrace(clientTrace, "conn_failed", 0) != 1 {
		t.Fatal("Advance did not emit the conn_failed trace")
	}

	// Path 3: the peer's FAILOVER notice.
	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	p.pump(0, 2)
	if countTrace(serverTrace, "conn_failed", 0) != 1 {
		t.Fatal("handleFailoverNotice did not emit the conn_failed trace")
	}
	drainEvents(p.client, EventConnFailed)
	drainEvents(p.server, EventConnFailed)
}

// TestFlushParksStreamsOnFailedConns: Flush must not error (and must not
// poison session state) while a stream's connection is down — the bytes
// wait for failover or reconnection.
func TestFlushParksStreamsOnFailedConns(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true})
	sid, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	p.pump()
	if err := p.client.ReportConnFailed(0); err != nil {
		t.Fatal(err)
	}
	msg := []byte("written during total path loss")
	if _, err := p.client.Write(sid, msg); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatalf("Flush with parked stream errored: %v", err)
	}
	if err := p.client.FinishStream(sid); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatalf("Flush with parked FIN errored: %v", err)
	}

	// Recovery: a fresh connection joins and the stream fails over —
	// parked bytes and the FIN drain to the peer.
	p.addConn(1)
	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	p.pump(0)
	if got := readAll(t, p.server, sid); !bytes.Equal(got, msg) {
		t.Fatalf("parked bytes lost: %q", got)
	}
	if !p.server.PeerFinished(sid) {
		t.Fatal("parked FIN never delivered")
	}
}

// TestFailedConnsWithStreams reports parked connections in ID order and
// drops them once their streams move away.
func TestFailedConnsWithStreams(t *testing.T) {
	p := newPair(t, Config{EnableFailover: true})
	p.addConn(1)
	p.addConn(2)
	if _, err := p.client.CreateStream(2); err != nil {
		t.Fatal(err)
	}
	sid0, err := p.client.CreateStream(0)
	if err != nil {
		t.Fatal(err)
	}
	p.pump()
	p.client.ReportConnFailed(0)
	p.client.ReportConnFailed(2)
	got := p.client.FailedConnsWithStreams()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FailedConnsWithStreams = %v, want [0 2]", got)
	}
	if err := p.client.FailoverTo(0, 1); err != nil {
		t.Fatal(err)
	}
	got = p.client.FailedConnsWithStreams()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("after failover, FailedConnsWithStreams = %v, want [2]", got)
	}
	_ = sid0
}
