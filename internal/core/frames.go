// Package core implements the sans-IO TCPLS session engine: the protocol
// machine of the paper's §3.3 and §4 — stream multiplexing over per-stream
// cryptographic contexts, record-level acknowledgments, failover with SYNC
// resynchronization, application-triggered connection migration, coupled
// streams with receiver-side reordering, encrypted TCP options, and eBPF
// congestion-controller exchange.
//
// The engine performs no I/O and reads no clocks: callers feed it received
// bytes (Session.Receive), drain bytes to transmit (Session.Outgoing),
// and drive time explicitly (Session.Advance). This lets the same engine
// run over real TCP connections (package tcpls), the discrete-event
// simulator (internal/sim), and deterministic tests.
package core

import (
	"errors"
	"fmt"

	"tcpls/internal/wire"
)

// recordType identifies the TCPLS meaning of a record. Per the paper's
// zero-copy design (§3.1), all TCPLS framing lives at the *end* of the
// TLS inner plaintext: [payload][trailer fields][recordType], so a
// receiver that decrypted in place just truncates the control trailer.
// On the wire every record still carries TLS content type 23.
type recordType uint8

const (
	// typeStreamData: [payload][type]. Plain stream bytes.
	typeStreamData recordType = 0x00
	// typeStreamDataCoupled: [payload][aggSeq:8][type]. Stream bytes
	// carrying an aggregation sequence number for coupled streams.
	typeStreamDataCoupled recordType = 0x01
	// typeAck: [streamID:4][nextSeq:8][type]. Cumulative: all records of
	// streamID below nextSeq have been received (Fig. 4).
	typeAck recordType = 0x02
	// typeSync: [streamID:4][resumeSeq:8][type]. Failover resync: the
	// next record of streamID on this connection carries sequence
	// resumeSeq (Fig. 4's SYNC).
	typeSync recordType = 0x03
	// typeFailover: [connID:4][type]. Explicit notification that connID
	// failed and its streams move to the connection this arrived on.
	typeFailover recordType = 0x04
	// typeStreamAttach: [streamID:4][type]. The sender will transmit
	// records of streamID on this connection; the receiver attaches the
	// stream's context to this connection's demux.
	typeStreamAttach recordType = 0x05
	// typeStreamDetach: [streamID:4][type].
	typeStreamDetach recordType = 0x06
	// typeStreamFin: [streamID:4][finalSeq:8][type]. Graceful stream end
	// after finalSeq records.
	typeStreamFin recordType = 0x07
	// typeTCPOption: [value...][kind:1][len:2][type]. An encrypted TCP
	// option (paper §3.1, §4.2), reliably delivered.
	typeTCPOption recordType = 0x08
	// typeAddAddr / typeRemoveAddr: [addr...][len:1][type].
	typeAddAddr    recordType = 0x09
	typeRemoveAddr recordType = 0x0a
	// typeNewCookie: [cookies...][count:1][type]. Server replenishes the
	// client's join-cookie budget.
	typeNewCookie recordType = 0x0b
	// typeBPFCC: [bytecode chunk][chunkIdx:2][chunkCount:2][progLen:4]
	// [type]. Ships an eBPF congestion controller (§4.4).
	typeBPFCC recordType = 0x0c
	// typeEchoRequest / typeEchoReply: [token:8][type]. Application-
	// driven path probing (§3.3.3).
	typeEchoRequest recordType = 0x0d
	typeEchoReply   recordType = 0x0e
	// typeConnClose: [type]. Orderly session-level close of this
	// connection (distinct from stream FIN).
	typeConnClose recordType = 0x0f
	// typeSessionTicket: [ticket...][nonce:16][maxEarly:4][type]. A resumption
	// ticket (§4.5): the client derives the PSK from the session's
	// resumption secret and the nonce; the opaque ticket lets the
	// server recover the same PSK statelessly on a later connection.
	// maxEarly advertises the issuer's 0-RTT budget in plaintext bytes
	// (TLS 1.3's max_early_data_size): the client clamps its early-data
	// offer to it; 0 means no 0-RTT with this ticket.
	typeSessionTicket recordType = 0x10
	// typeAckRequest: [streamID:4][type]. Solicits an immediate
	// cumulative ACK for streamID: a sender whose retransmit buffer
	// approaches its budget re-requests acknowledgment instead of
	// growing without bound (lost-ACK recovery on the ctl path).
	typeAckRequest recordType = 0x11
)

// ErrBadFrame is returned for TCPLS records whose trailer is malformed.
var ErrBadFrame = errors.New("core: malformed TCPLS record trailer")

// TCP option kinds carried in typeTCPOption records.
const (
	// OptUserTimeout carries the TCP User Timeout (RFC 5482) in
	// milliseconds; it drives failover detection (§4.2).
	OptUserTimeout uint8 = 28
)

// appendStreamData builds the content of a stream data record.
func appendStreamData(dst, payload []byte) []byte {
	dst = append(dst, payload...)
	return append(dst, byte(typeStreamData))
}

// appendStreamDataCoupled builds a coupled-stream data record: the
// aggregation sequence number sits after the payload so zero-copy
// delivery just truncates it.
func appendStreamDataCoupled(dst, payload []byte, aggSeq uint64) []byte {
	dst = append(dst, payload...)
	dst = wire.AppendUint64(dst, aggSeq)
	return append(dst, byte(typeStreamDataCoupled))
}

func appendAck(dst []byte, streamID uint32, nextSeq uint64) []byte {
	dst = wire.AppendUint32(dst, streamID)
	dst = wire.AppendUint64(dst, nextSeq)
	return append(dst, byte(typeAck))
}

func appendSync(dst []byte, streamID uint32, resumeSeq uint64) []byte {
	dst = wire.AppendUint32(dst, streamID)
	dst = wire.AppendUint64(dst, resumeSeq)
	return append(dst, byte(typeSync))
}

func appendFailover(dst []byte, connID uint32) []byte {
	dst = wire.AppendUint32(dst, connID)
	return append(dst, byte(typeFailover))
}

func appendStreamAttach(dst []byte, streamID uint32) []byte {
	dst = wire.AppendUint32(dst, streamID)
	return append(dst, byte(typeStreamAttach))
}

func appendStreamDetach(dst []byte, streamID uint32) []byte {
	dst = wire.AppendUint32(dst, streamID)
	return append(dst, byte(typeStreamDetach))
}

func appendStreamFin(dst []byte, streamID uint32, finalSeq uint64) []byte {
	dst = wire.AppendUint32(dst, streamID)
	dst = wire.AppendUint64(dst, finalSeq)
	return append(dst, byte(typeStreamFin))
}

func appendAckRequest(dst []byte, streamID uint32) []byte {
	dst = wire.AppendUint32(dst, streamID)
	return append(dst, byte(typeAckRequest))
}

func appendTCPOption(dst []byte, kind uint8, value []byte) []byte {
	dst = append(dst, value...)
	dst = append(dst, kind)
	dst = wire.AppendUint16(dst, uint16(len(value)))
	return append(dst, byte(typeTCPOption))
}

func appendAddr(dst []byte, typ recordType, addr []byte) []byte {
	dst = append(dst, addr...)
	dst = append(dst, byte(len(addr)))
	return append(dst, byte(typ))
}

func appendNewCookie(dst []byte, cookies [][16]byte) []byte {
	for _, c := range cookies {
		dst = append(dst, c[:]...)
	}
	dst = append(dst, byte(len(cookies)))
	return append(dst, byte(typeNewCookie))
}

func appendBPFCC(dst, chunk []byte, chunkIdx, chunkCount uint16, progLen uint32) []byte {
	dst = append(dst, chunk...)
	dst = wire.AppendUint16(dst, chunkIdx)
	dst = wire.AppendUint16(dst, chunkCount)
	dst = wire.AppendUint32(dst, progLen)
	return append(dst, byte(typeBPFCC))
}

func appendEcho(dst []byte, typ recordType, token uint64) []byte {
	dst = wire.AppendUint64(dst, token)
	return append(dst, byte(typ))
}

func appendConnClose(dst []byte) []byte {
	return append(dst, byte(typeConnClose))
}

func appendSessionTicket(dst []byte, nonce [16]byte, ticket []byte, maxEarly uint32) []byte {
	dst = append(dst, ticket...)
	dst = append(dst, nonce[:]...)
	dst = wire.AppendUint32(dst, maxEarly)
	return append(dst, byte(typeSessionTicket))
}

// frame is one parsed TCPLS record.
type frame struct {
	typ                  recordType
	payload              []byte // stream data (aliases the decrypted record)
	aggSeq               uint64 // coupled data
	id                   uint32 // stream or connection ID
	seq                  uint64 // ack / sync / fin sequence
	optKind              uint8
	optVal               []byte
	addr                 []byte
	cookies              [][16]byte
	chunk                []byte // bpf bytecode chunk
	chunkIdx, chunkCount uint16
	progLen              uint32
	token                uint64
	nonce                [16]byte
	maxEarly             uint32
}

// parseFrame decodes the trailer of a decrypted TCPLS record into f
// (a reused scratch — the receive path parses one record per struct
// lifetime, so no per-record allocation). content is the TLS inner
// plaintext minus the TLS content type byte and padding.
func parseFrame(f *frame, content []byte) error {
	if len(content) == 0 {
		return ErrBadFrame
	}
	*f = frame{typ: recordType(content[len(content)-1])}
	body := content[:len(content)-1]
	switch f.typ {
	case typeStreamData:
		f.payload = body
	case typeStreamDataCoupled:
		if len(body) < 8 {
			return ErrBadFrame
		}
		f.aggSeq = wire.Uint64(body[len(body)-8:])
		f.payload = body[: len(body)-8 : len(body)-8]
	case typeAck, typeSync, typeStreamFin:
		if len(body) != 12 {
			return ErrBadFrame
		}
		f.id = wire.Uint32(body[:4])
		f.seq = wire.Uint64(body[4:])
	case typeFailover, typeStreamAttach, typeStreamDetach, typeAckRequest:
		if len(body) != 4 {
			return ErrBadFrame
		}
		f.id = wire.Uint32(body)
	case typeTCPOption:
		if len(body) < 3 {
			return ErrBadFrame
		}
		vlen := int(wire.Uint16(body[len(body)-2:]))
		f.optKind = body[len(body)-3]
		if len(body) != vlen+3 {
			return ErrBadFrame
		}
		f.optVal = body[:vlen:vlen]
	case typeAddAddr, typeRemoveAddr:
		if len(body) < 1 {
			return ErrBadFrame
		}
		alen := int(body[len(body)-1])
		if len(body) != alen+1 || (alen != 4 && alen != 16) {
			return ErrBadFrame
		}
		f.addr = body[:alen:alen]
	case typeNewCookie:
		if len(body) < 1 {
			return ErrBadFrame
		}
		count := int(body[len(body)-1])
		if len(body) != count*16+1 {
			return ErrBadFrame
		}
		for i := 0; i < count; i++ {
			var c [16]byte
			copy(c[:], body[i*16:])
			f.cookies = append(f.cookies, c)
		}
	case typeBPFCC:
		if len(body) < 8 {
			return ErrBadFrame
		}
		tail := body[len(body)-8:]
		f.chunkIdx = wire.Uint16(tail[0:2])
		f.chunkCount = wire.Uint16(tail[2:4])
		f.progLen = wire.Uint32(tail[4:8])
		f.chunk = body[: len(body)-8 : len(body)-8]
	case typeEchoRequest, typeEchoReply:
		if len(body) != 8 {
			return ErrBadFrame
		}
		f.token = wire.Uint64(body)
	case typeConnClose:
		if len(body) != 0 {
			return ErrBadFrame
		}
	case typeSessionTicket:
		if len(body) < 20 {
			return ErrBadFrame
		}
		f.maxEarly = wire.Uint32(body[len(body)-4:])
		copy(f.nonce[:], body[len(body)-20:len(body)-4])
		f.chunk = body[: len(body)-20 : len(body)-20]
	default:
		return fmt.Errorf("core: unknown TCPLS record type %#x: %w", uint8(f.typ), ErrBadFrame)
	}
	return nil
}
