package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrips(t *testing.T) {
	cases := []struct {
		name  string
		build func() []byte
		check func(t *testing.T, f *frame)
	}{
		{"stream-data", func() []byte { return appendStreamData(nil, []byte("payload")) },
			func(t *testing.T, f *frame) {
				if f.typ != typeStreamData || string(f.payload) != "payload" {
					t.Fatalf("%+v", f)
				}
			}},
		{"coupled", func() []byte { return appendStreamDataCoupled(nil, []byte("agg"), 42) },
			func(t *testing.T, f *frame) {
				if f.typ != typeStreamDataCoupled || f.aggSeq != 42 || string(f.payload) != "agg" {
					t.Fatalf("%+v", f)
				}
			}},
		{"ack", func() []byte { return appendAck(nil, 7, 1234) },
			func(t *testing.T, f *frame) {
				if f.typ != typeAck || f.id != 7 || f.seq != 1234 {
					t.Fatalf("%+v", f)
				}
			}},
		{"sync", func() []byte { return appendSync(nil, 9, 55) },
			func(t *testing.T, f *frame) {
				if f.typ != typeSync || f.id != 9 || f.seq != 55 {
					t.Fatalf("%+v", f)
				}
			}},
		{"failover", func() []byte { return appendFailover(nil, 3) },
			func(t *testing.T, f *frame) {
				if f.typ != typeFailover || f.id != 3 {
					t.Fatalf("%+v", f)
				}
			}},
		{"attach", func() []byte { return appendStreamAttach(nil, 8) },
			func(t *testing.T, f *frame) {
				if f.typ != typeStreamAttach || f.id != 8 {
					t.Fatalf("%+v", f)
				}
			}},
		{"detach", func() []byte { return appendStreamDetach(nil, 8) },
			func(t *testing.T, f *frame) {
				if f.typ != typeStreamDetach || f.id != 8 {
					t.Fatalf("%+v", f)
				}
			}},
		{"fin", func() []byte { return appendStreamFin(nil, 6, 99) },
			func(t *testing.T, f *frame) {
				if f.typ != typeStreamFin || f.id != 6 || f.seq != 99 {
					t.Fatalf("%+v", f)
				}
			}},
		{"tcp-option", func() []byte { return appendTCPOption(nil, OptUserTimeout, []byte{0, 250}) },
			func(t *testing.T, f *frame) {
				if f.typ != typeTCPOption || f.optKind != OptUserTimeout || !bytes.Equal(f.optVal, []byte{0, 250}) {
					t.Fatalf("%+v", f)
				}
			}},
		{"add-addr-v4", func() []byte { return appendAddr(nil, typeAddAddr, []byte{10, 0, 0, 1}) },
			func(t *testing.T, f *frame) {
				if f.typ != typeAddAddr || !bytes.Equal(f.addr, []byte{10, 0, 0, 1}) {
					t.Fatalf("%+v", f)
				}
			}},
		{"add-addr-v6", func() []byte { return appendAddr(nil, typeAddAddr, bytes.Repeat([]byte{1}, 16)) },
			func(t *testing.T, f *frame) {
				if f.typ != typeAddAddr || len(f.addr) != 16 {
					t.Fatalf("%+v", f)
				}
			}},
		{"cookies", func() []byte { return appendNewCookie(nil, [][16]byte{{1}, {2}, {3}}) },
			func(t *testing.T, f *frame) {
				if f.typ != typeNewCookie || len(f.cookies) != 3 || f.cookies[1][0] != 2 {
					t.Fatalf("%+v", f)
				}
			}},
		{"bpf", func() []byte { return appendBPFCC(nil, []byte{0xbf, 0x01}, 2, 5, 1000) },
			func(t *testing.T, f *frame) {
				if f.typ != typeBPFCC || f.chunkIdx != 2 || f.chunkCount != 5 || f.progLen != 1000 || len(f.chunk) != 2 {
					t.Fatalf("%+v", f)
				}
			}},
		{"echo-req", func() []byte { return appendEcho(nil, typeEchoRequest, 777) },
			func(t *testing.T, f *frame) {
				if f.typ != typeEchoRequest || f.token != 777 {
					t.Fatalf("%+v", f)
				}
			}},
		{"conn-close", func() []byte { return appendConnClose(nil) },
			func(t *testing.T, f *frame) {
				if f.typ != typeConnClose {
					t.Fatalf("%+v", f)
				}
			}},
		{"ticket", func() []byte {
			return appendSessionTicket(nil, [16]byte{9, 8, 7}, []byte("opaque"), 16384)
		},
			func(t *testing.T, f *frame) {
				if f.typ != typeSessionTicket || string(f.chunk) != "opaque" ||
					f.nonce[0] != 9 || f.maxEarly != 16384 {
					t.Fatalf("%+v", f)
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f frame
			if err := parseFrame(&f, tc.build()); err != nil {
				t.Fatal(err)
			}
			tc.check(t, &f)
		})
	}
}

func TestMalformedFramesRejected(t *testing.T) {
	bad := [][]byte{
		nil,                                // empty
		{byte(typeAck)},                    // ack with no body
		{1, 2, 3, byte(typeSync)},          // short sync
		{byte(typeFailover)},               // short failover
		{1, 2, byte(typeTCPOption)},        // short option
		{5, byte(typeAddAddr)},             // addr length lies
		{1, 2, 3, 1, byte(typeAddAddr)},    // 3-byte address (invalid family)
		{3, byte(typeNewCookie)},           // cookie count lies
		{1, 2, 3, byte(typeBPFCC)},         // short bpf trailer
		{1, byte(typeConnClose)},           // close with body
		{1, 2, 3, byte(typeSessionTicket)}, // short ticket
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
			byte(typeSessionTicket)}, // nonce but no budget
		{0xee}, // unknown type
	}
	for i, b := range bad {
		if err := parseFrame(new(frame), b); err == nil {
			t.Errorf("case %d: malformed frame %v accepted", i, b)
		}
	}
}

func TestQuickFrameParserNeverPanics(t *testing.T) {
	// Any byte string must either parse or return an error — no panics,
	// no out-of-range slices (the record layer feeds parseFrame with
	// authenticated but arbitrary content).
	f := func(content []byte) bool {
		_ = parseFrame(new(frame), content)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoupledRoundTrip(t *testing.T) {
	f := func(payload []byte, aggSeq uint64) bool {
		var fr frame
		err := parseFrame(&fr, appendStreamDataCoupled(nil, payload, aggSeq))
		return err == nil && fr.aggSeq == aggSeq && bytes.Equal(fr.payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTCPOptionRoundTrip(t *testing.T) {
	f := func(kind uint8, value []byte) bool {
		if len(value) > 60000 {
			value = value[:60000]
		}
		var fr frame
		err := parseFrame(&fr, appendTCPOption(nil, kind, value))
		return err == nil && fr.optKind == kind && bytes.Equal(fr.optVal, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
