package core

import "time"

// TraceEvent is one protocol-level occurrence for offline analysis — the
// moral equivalent of the paper artifact's QLOG/QVIS support: every
// record sent and received, every acknowledgment, and every failover
// action, with enough identifiers to reconstruct per-stream timelines.
type TraceEvent struct {
	Time time.Time
	Name string // record_sent, record_received, ack_sent, ack_received,
	// dup_dropped, stream_attached, stream_fin, conn_failed, conn_added,
	// failover_started, sync_sent, sync_received, retransmit, ctl_sent,
	// ctl_received (Seq = frame type; every decrypted record is exactly
	// one of record_received, dup_dropped, or ctl_received, so a trace
	// reconstructs per-conn records-received counters).
	// Scheduling events: sched_pick (Conn/Stream carried the record,
	// Seq = aggregation sequence, Bytes = payload), sched_invalid
	// (scheduler returned an out-of-range index; Seq = aggregation
	// sequence, Bytes = the bad index), path_metrics (Seq = fused SRTT
	// in microseconds, Bytes = delivery rate in bytes/s),
	// reorder_depth (Seq = out-of-order records held by the coupled
	// reorder heap, Bytes = records just delivered in order).
	// Flow-control events: flowctl_limit (a configured bound tripped;
	// Seq = which one, see the flowctl* codes, Bytes = bytes held at
	// the trip), ack_solicited (retransmit budget pressure sent an
	// AckRequest; Seq = peer-acked watermark, Bytes = retransmit-buffer
	// bytes), ack_requested (the peer's solicitation arrived; Seq =
	// next receive sequence).
	// Lifecycle events: record_span (below).
	Conn   uint32
	Stream uint32
	Seq    uint64
	Bytes  int

	// Record-lifecycle span fields, populated only for record_span
	// events (one per acknowledged data record when failover is
	// enabled): the four timestamps of the record's life — application
	// enqueue, AEAD seal, socket write, and acknowledgment receipt —
	// plus provenance across failover. Conn above is the connection the
	// record was last (successfully) carried on; OrigConn is where it
	// was first sealed; Retx counts failover replays of this record.
	EnqueuedAt time.Time
	SealedAt   time.Time
	WrittenAt  time.Time
	AckedAt    time.Time
	OrigConn   uint32
	Retx       int
}

// flowctl_limit trace codes (the event's Seq field): which configured
// bound tripped.
const (
	flowctlReorder    = 1 // reorder-heap byte/record cap (Config.MaxReorder*)
	flowctlRecvBuffer = 2 // receive-buffer cap (Config.MaxRecvBufferBytes)
	flowctlRetransmit = 3 // retransmit budget (Config.MaxRetransmitBytes)
)

// SetTracer installs a trace callback. The callback runs synchronously
// on the engine's path: keep it cheap (append to a buffer, write a
// line). nil disables tracing.
func (s *Session) SetTracer(fn func(TraceEvent)) { s.tracer = fn }

// NotePathMetrics emits a path_metrics trace event carrying connID's
// fused view from the metrics store: Seq is the smoothed RTT in
// microseconds, Bytes the delivery-rate estimate in bytes per second.
// The I/O wrapper calls this on each kernel TCP_INFO refresh tick.
func (s *Session) NotePathMetrics(connID uint32) {
	if s.tracer == nil || s.metrics == nil {
		return
	}
	ps, ok := s.metrics.Snapshot(connID)
	if !ok {
		return
	}
	s.trace("path_metrics", connID, 0, uint64(ps.SRTT/time.Microsecond), int(ps.DeliveryRate))
}

// Note lets the I/O wrapper stamp its own lifecycle marks (e.g.
// reconnect_attempt, reconnect_ok, failover_cascade, cookie_issued,
// join_accepted) into the same trace stream as the engine's protocol
// events, so one timeline covers both. Unlike the engine's internal
// emissions, a Note refreshes the trace clock: wrapper marks happen in
// real time, not at the last receive.
func (s *Session) Note(name string, conn, stream uint32, seq uint64, bytes int) {
	if s.tracer == nil {
		return
	}
	s.lastNow = s.now()
	s.trace(name, conn, stream, seq, bytes)
}

// trace emits one event when tracing is enabled.
func (s *Session) trace(name string, conn, stream uint32, seq uint64, bytes int) {
	if s.tracer == nil {
		return
	}
	s.tracer(TraceEvent{
		Time:   s.lastNow,
		Name:   name,
		Conn:   conn,
		Stream: stream,
		Seq:    seq,
		Bytes:  bytes,
	})
}

// traceSpan emits the span-complete event for one acknowledged record.
func (s *Session) traceSpan(conn, stream uint32, r *sentRecord) {
	if s.tracer == nil {
		return
	}
	s.tracer(TraceEvent{
		Time:       s.lastNow,
		Name:       "record_span",
		Conn:       conn,
		Stream:     stream,
		Seq:        r.seq,
		Bytes:      len(r.payload),
		EnqueuedAt: r.enqAt,
		SealedAt:   r.sentAt,
		WrittenAt:  r.writtenAt,
		AckedAt:    s.lastNow,
		OrigConn:   r.origConn,
		Retx:       int(r.retxCount),
	})
}
