package core

// byteQueueShrinkCap is the capacity above which an emptied queue
// considers releasing its backing array. Arrays at or below this are
// always kept (steady-state traffic then reuses them allocation-free).
const byteQueueShrinkCap = 1 << 20

// byteQueue is an offset-based byte FIFO for the datapath's pending and
// receive buffers. Unlike the old append/re-slice buffers it keeps its
// backing array across fill/drain cycles, so the steady-state send and
// receive paths allocate nothing.
//
// Aliasing contract: slices returned by Bytes remain valid across
// Advance (the backing array is untouched) but are invalidated by the
// next Append, which may compact the consumed prefix away. The engine
// only holds Bytes views inside a single Flush/Receive pass, never
// across an Append.
type byteQueue struct {
	buf []byte
	off int
	// peak tracks the largest live size since the queue last emptied.
	// It decides whether a large backing array is still earning its
	// keep: a busy queue that refills near capacity retains its array
	// (freeing it would make every fill/drain cycle realloc — this
	// dominated loopback profiles), while a queue whose traffic has
	// shrunk releases the stale burst-sized array back to the GC.
	peak int
}

// Len reports the number of unconsumed bytes.
func (q *byteQueue) Len() int { return len(q.buf) - q.off }

// Bytes returns a view of the unconsumed bytes.
func (q *byteQueue) Bytes() []byte { return q.buf[q.off:] }

// Append adds p to the tail, compacting the consumed prefix first when
// it is at least as large as the live tail (amortized O(1) per byte).
func (q *byteQueue) Append(p []byte) {
	if q.off == len(q.buf) {
		q.buf, q.off = q.buf[:0], 0
	} else if q.off > 0 && q.off >= len(q.buf)-q.off {
		n := copy(q.buf, q.buf[q.off:])
		q.buf, q.off = q.buf[:n], 0
	}
	q.buf = append(q.buf, p...)
	if l := q.Len(); l > q.peak {
		q.peak = l
	}
}

// Advance consumes n bytes from the front. When the queue empties, an
// oversized backing array is released only if recent traffic no longer
// justifies it (see peak).
func (q *byteQueue) Advance(n int) {
	q.off += n
	if q.off >= len(q.buf) {
		if q.off > len(q.buf) {
			panic("core: byteQueue advanced past its end")
		}
		if cap(q.buf) > byteQueueShrinkCap && q.peak < cap(q.buf)/2 {
			q.buf, q.off, q.peak = nil, 0, 0
			return
		}
		q.buf, q.off, q.peak = q.buf[:0], 0, 0
	}
}

// ReadInto copies up to len(p) bytes out of the queue and consumes them.
func (q *byteQueue) ReadInto(p []byte) int {
	n := copy(p, q.Bytes())
	q.Advance(n)
	return n
}
