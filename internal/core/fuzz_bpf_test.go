package core

import (
	"errors"
	"testing"
	"time"
)

// FuzzBPFChunkReassembly drives the BPF_CC reassembly state machine
// with attacker-chosen chunk sequences — the PR-5 forgery-validation
// work showed this is where hostile input lands once it clears the
// AEAD. Two frames per input exercise the cross-chunk state (restarts
// on mismatched headers, duplicate indices, completion). Invariants:
// never panic, rejects are ErrBadFrame, buffered reassembly bytes never
// exceed the claimed program length nor the global cap, and a completed
// program is exactly progLen bytes.
func FuzzBPFChunkReassembly(f *testing.F) {
	f.Add([]byte("prog"), uint16(0), uint16(2), uint32(8), []byte("ram!"), uint16(1))
	f.Add([]byte{0xb7, 0, 0, 0, 0, 0, 0, 0}, uint16(0), uint16(1), uint32(8), []byte{}, uint16(0))
	f.Add([]byte{}, uint16(0), uint16(4096), uint32(1<<20), []byte{1}, uint16(4095))
	f.Add([]byte{1, 2}, uint16(9), uint16(3), uint32(4), []byte{3}, uint16(0))    // idx out of range
	f.Add([]byte{1, 2, 3}, uint16(0), uint16(2), uint32(2), []byte{4}, uint16(1)) // overclaims progLen

	sec := testSecrets(f)

	f.Fuzz(func(t *testing.T, chunkA []byte, idxA, count uint16, progLen uint32,
		chunkB []byte, idxB uint16) {
		s := NewSession(RoleServer, sec, Config{})
		if err := s.AddConnection(0, time.Unix(1000, 0)); err != nil {
			t.Fatal(err)
		}
		c := s.conns[0]

		check := func(err error) {
			if err != nil && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("reassembly error not ErrBadFrame: %v", err)
			}
			if s.bpfBytes > maxBPFProgLen {
				t.Fatalf("buffered %d bytes past the %d cap", s.bpfBytes, maxBPFProgLen)
			}
			if s.bpfChunks != nil {
				if s.bpfBytes > int(s.bpfProgLen) {
					t.Fatalf("buffered %d bytes past claimed progLen %d", s.bpfBytes, s.bpfProgLen)
				}
				total := 0
				for _, ch := range s.bpfChunks {
					total += len(ch)
				}
				if total != s.bpfBytes {
					t.Fatalf("bpfBytes accounting drift: counted %d, held %d", s.bpfBytes, total)
				}
			}
		}

		for _, raw := range [][]byte{
			appendBPFCC(nil, chunkA, idxA, count, progLen),
			appendBPFCC(nil, chunkB, idxB, count, progLen),
		} {
			fr := new(frame)
			if err := parseFrame(fr, raw); err != nil {
				// The builder emits well-formed frames; a parse reject
				// here would mean builder/parser disagreement.
				t.Fatalf("parseFrame rejected builder output: %v", err)
			}
			check(s.handleBPFChunk(c, fr))
		}
		for _, ev := range s.Events() {
			if ev.Kind == EventBPFCC && len(ev.Data) != int(progLen) {
				t.Fatalf("completed program is %d bytes, claimed %d", len(ev.Data), progLen)
			}
		}
	})
}
