package core

import (
	"errors"
	"fmt"
	"time"

	"tcpls/internal/handshake"
	"tcpls/internal/record"
	"tcpls/internal/reorder"
	"tcpls/internal/sched"
	"tcpls/internal/telemetry"
)

// Role distinguishes the two endpoints of a session.
type Role int

// Session roles.
const (
	RoleClient Role = iota
	RoleServer
)

// Stream ID allocation. The ID space is split between client and server
// (paper §3.3.1); stream 0 is the handshake-derived context used for
// control records on the initial connection, and every joined connection
// gets its own control stream so control records never share a sequence
// space across connections.
const (
	// ctlStreamBase tags per-connection control streams: control stream
	// of connection k (k > 0) is ctlStreamBase | k.
	ctlStreamBase     uint32 = 0xc0000000
	firstClientStream uint32 = 2
	firstServerStream uint32 = 3
)

func ctlStreamID(connID uint32) uint32 {
	if connID == 0 {
		return 0
	}
	return ctlStreamBase | connID
}

// Config tunes a session.
type Config struct {
	// EnableFailover turns on record-level acknowledgments and
	// retransmission buffering (§4.2). Costs a few percent of raw
	// throughput (Fig. 7).
	EnableFailover bool
	// AckPeriod acknowledges every n received stream records
	// (default 16, the paper's default policy).
	AckPeriod int
	// AckBytes acknowledges after this many received bytes since the
	// last ack regardless of record count (default 256 KiB).
	AckBytes int
	// MaxRecordPayload bounds stream bytes per record. Default fills the
	// 16384-byte TLS record; Fig. 13 uses ~1400 to smooth aggregation.
	MaxRecordPayload int
	// UserTimeout is the encrypted TCP User Timeout option value: a
	// connection with no inbound traffic for this long while data is
	// outstanding is declared failed (§4.2). Zero disables the timer.
	UserTimeout time.Duration
	// PadRecordsTo pads every record's inner plaintext to this many
	// bytes (RFC 8446 record padding): all records — stream data and
	// control alike — become indistinguishable by size on the wire,
	// at a bandwidth cost. Zero disables padding.
	PadRecordsTo int

	// MaxReorderBytes caps the payload bytes the coupled reorder heap
	// may park (§4.3). When an out-of-order record would push the heap
	// past the cap and failover is enabled, the engine declares the
	// quietest other coupled path suspect and fails it — triggering the
	// existing failover/replay machinery — instead of allocating
	// forever against a stalled-but-alive path. 0 means the default
	// (16 MiB); negative disables the cap.
	MaxReorderBytes int
	// MaxReorderRecords caps the records the reorder heap may park,
	// independent of their size. 0 means the default (8192); negative
	// disables the cap.
	MaxReorderRecords int
	// MaxRecvBufferBytes caps each stream's (and the coupled group's)
	// receive buffer when no Deliver callback drains it. At the cap the
	// engine reports backpressure via RecvPaused so the I/O wrapper
	// stops reading the socket (TCP's own receive window then pushes
	// back on the peer); at twice the cap — only reachable by callers
	// that ignore the backpressure signal — Receive returns a typed
	// ErrRecvBufferFull instead of growing without bound. 0 means the
	// default (16 MiB); negative disables the cap.
	MaxRecvBufferBytes int
	// MaxRetransmitBytes budgets each stream's retransmit buffer when
	// failover is enabled. At half the budget the engine solicits a
	// fresh cumulative ACK on the ctl path (lost-ACK recovery); at the
	// budget it parks further sealing for that stream until ACKs trim
	// the buffer, and Write returns a typed ErrRetransmitBudget once a
	// further budget's worth of bytes queues behind the stall. 0 means
	// the default (16 MiB); negative disables the budget.
	MaxRetransmitBytes int
}

// Default flow-control bounds (see the Max* knobs on Config).
const (
	DefaultMaxReorderBytes    = 16 << 20
	DefaultMaxReorderRecords  = 8192
	DefaultMaxRecvBufferBytes = 16 << 20
	DefaultMaxRetransmitBytes = 16 << 20
)

// boundOrDefault resolves a flow-control knob: 0 means def, negative
// means unlimited (returned as 0 so callers test `> 0`).
func boundOrDefault(v, def int) int {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

func (c Config) maxReorderBytes() int {
	return boundOrDefault(c.MaxReorderBytes, DefaultMaxReorderBytes)
}
func (c Config) maxReorderRecords() int {
	return boundOrDefault(c.MaxReorderRecords, DefaultMaxReorderRecords)
}
func (c Config) maxRecvBytes() int {
	return boundOrDefault(c.MaxRecvBufferBytes, DefaultMaxRecvBufferBytes)
}
func (c Config) maxRetransmitBytes() int {
	return boundOrDefault(c.MaxRetransmitBytes, DefaultMaxRetransmitBytes)
}

func (c Config) ackPeriod() int {
	if c.AckPeriod > 0 {
		return c.AckPeriod
	}
	return 16
}

func (c Config) ackBytes() int {
	if c.AckBytes > 0 {
		return c.AckBytes
	}
	return 256 << 10
}

func (c Config) maxPayload() int {
	if c.MaxRecordPayload > 0 {
		return c.MaxRecordPayload
	}
	// Leave room for the largest trailer (coupled: 8-byte agg seq +
	// type byte) within the 16384-byte inner plaintext.
	return record.MaxPlaintextLen - 16
}

// EventKind enumerates session events.
type EventKind int

// Session events, drained by the I/O wrapper via Events.
const (
	// EventStreamOpen: the peer attached a new stream (Stream field).
	EventStreamOpen EventKind = iota
	// EventStreamData: a stream has new readable bytes.
	EventStreamData
	// EventCoupledData: the coupled group has new readable bytes.
	EventCoupledData
	// EventStreamFin: a stream finished cleanly.
	EventStreamFin
	// EventConnFailed: a connection was declared failed (UserTimeout
	// expiry, peer FAILOVER notification, or explicit report).
	EventConnFailed
	// EventFailoverDone: all streams of a failed connection were
	// resynchronized onto Conn.
	EventFailoverDone
	// EventAddAddr / EventRemoveAddr: the peer updated its address list.
	EventAddAddr
	EventRemoveAddr
	// EventNewCookies: the server replenished join cookies.
	EventNewCookies
	// EventTCPOption: an encrypted TCP option arrived (§4.2).
	EventTCPOption
	// EventBPFCC: a complete eBPF congestion-controller program arrived.
	EventBPFCC
	// EventEchoReply: a path probe returned; Token matches the request.
	EventEchoReply
	// EventConnClosed: the peer closed this connection gracefully.
	EventConnClosed
	// EventSessionTicket: a resumption ticket arrived (Data = opaque
	// ticket, Nonce = PSK-derivation nonce, MaxEarly = the issuer's
	// advertised 0-RTT budget).
	EventSessionTicket
)

// Event is one session-level occurrence.
type Event struct {
	Kind     EventKind
	Stream   uint32
	Conn     uint32
	Data     []byte
	Addr     []byte
	Cookies  [][16]byte
	OptKind  uint8
	OptVal   []byte
	Token    uint64
	Nonce    [16]byte
	MaxEarly uint32
}

// Session errors.
var (
	ErrUnknownConn    = errors.New("core: unknown connection")
	ErrUnknownStream  = errors.New("core: unknown stream")
	ErrConnFailed     = errors.New("core: connection already failed")
	ErrStreamFinished = errors.New("core: stream already finished")
	ErrNotCoupled     = errors.New("core: no coupled streams configured")
	ErrDuplicateConn  = errors.New("core: connection ID already exists")
	// ErrRecvBufferFull: a stream's receive buffer reached twice its
	// configured cap because the caller kept feeding Receive after the
	// RecvPaused backpressure signal tripped. The offending record is
	// still buffered (stream delivery is reliable; bytes cannot be
	// dropped once the sequence advanced) — the caller must drain Read
	// before feeding more.
	ErrRecvBufferFull = errors.New("core: receive buffer full")
	// ErrRetransmitBudget: a stream Write would queue more than a full
	// extra retransmit budget behind a stream whose retransmit buffer is
	// already at its cap waiting on ACKs.
	ErrRetransmitBudget = errors.New("core: retransmit buffer budget exhausted")
)

// Session is the sans-IO TCPLS protocol engine for one endpoint of one
// TCPLS session. It is not safe for concurrent use; wrappers serialize
// access.
type Session struct {
	role       Role
	cfg        Config
	suite      *record.Suite
	sendSecret []byte // this endpoint's application traffic secret
	recvSecret []byte // the peer's

	conns        map[uint32]*conn
	streams      map[uint32]*stream
	nextStreamID uint32

	events []Event

	// DeliverData, when set, receives stream payload directly from the
	// decrypted record buffer instead of the engine buffering it for
	// Read — the zero-copy delivery API of §4.1. The slice is only
	// valid during the call.
	DeliverData func(streamID uint32, payload []byte)
	// DeliverCoupled is the coupled-group equivalent: in-order chunks
	// straight from the reordering path.
	DeliverCoupled func(payload []byte)

	// pathSched picks the path for each coupled record; nil means the
	// default round-robin. metrics, when installed, is the path-metrics
	// store that builds the scheduler's PathView snapshots. clock
	// timestamps sent records for ACK-driven RTT sampling (nil =
	// time.Now; tests and simulations inject their own).
	pathSched sched.Scheduler
	metrics   *sched.Metrics
	clock     func() time.Time
	coupled   coupledState

	// pendingReplay collects streams the peer re-homed onto a new conn
	// during the current Receive batch; the send-side replay runs merged
	// at the end of the batch (flushPendingReplay) so coupled records
	// from sibling streams keep aggregation-sequence order on the wire.
	pendingReplay []streamReplay

	// bpf reassembly state (one program in flight at a time, §4.4).
	// bpfBytes counts stored chunk bytes so a forged chunk stream can
	// never outgrow the advertised program length.
	bpfChunks  [][]byte
	bpfGot     int
	bpfBytes   int
	bpfTotal   int
	bpfProgLen uint32

	// outPool recycles drained connection output buffers (see
	// RecycleOutgoing); chunkGets/chunkPuts count chunk ownership
	// transfers out of (Outgoing) and back into (RecycleOutgoing) the
	// engine so tests can assert the I/O wrapper returns every chunk.
	outPool   [][]byte
	chunkGets uint64
	chunkPuts uint64

	// bufs is the pooled-payload arena backing failover retransmit
	// copies (DESIGN.md §16); sealQ and ctlScratch are the reused
	// framing and control-record scratch buffers of the batched send
	// path; sealWorker drains framed batches through the AEAD.
	bufs       *record.BufferPool
	sealQ      []sealJob
	ctlScratch []byte
	sealWorker sealer

	// frameScratch is the receive path's reused frame struct; idCache
	// memoizes sortedStreamIDs (streams are only ever added, so a length
	// match means the cache is current).
	frameScratch frame
	idCache      []uint32

	// tracer and lastNow drive the QLOG-style event trace (trace.go).
	tracer  func(TraceEvent)
	lastNow time.Time

	// stampWrites arms record write-time tracking for lifecycle spans:
	// Outgoing snapshots the records drained into each chunk, and the
	// I/O wrapper reports the chunk's socket-write time back through
	// NoteWritten (or NoteWriteDropped when the chunk was discarded).
	// Off by default so sans-IO consumers (sims, tests) that never call
	// NoteWritten accumulate no batch state.
	stampWrites bool

	// lastReorderDepth deduplicates reorder_depth trace events: one per
	// depth change, not one per coupled record.
	lastReorderDepth int

	// tel is the aggregated-metrics surface (nil = telemetry disabled;
	// every emission point is a single nil-check away from free).
	// telPicks caches the per-policy scheduler pick counter, resolved
	// lazily when the active scheduler is first consulted.
	tel      *telemetry.SessionMetrics
	telPicks *telemetry.Counter

	// retransmitTotal sums payload bytes across every stream's retransmit
	// buffer (the per-stream values live on each stream); retransmitPeak
	// high-watermarks it.
	retransmitTotal int
	retransmitPeak  int

	// Stats counters.
	stats Stats
}

// Stats exposes engine counters for instrumentation and tests.
type Stats struct {
	RecordsSent       uint64
	RecordsReceived   uint64
	BytesSent         uint64
	BytesReceived     uint64
	AcksSent          uint64
	AcksReceived      uint64
	Retransmits       uint64
	DupRecordsDropped uint64
	FailedDecrypts    uint64
}

// coupledState is the session-wide coupled-stream group (§4.3; the
// prototype couples all coupled-flagged streams together).
type coupledState struct {
	sendSeq      uint64
	rr           int       // round-robin cursor over coupled streams
	pendingQ     byteQueue // group bytes not yet sealed
	pendingSince time.Time // enqueue stamp of the oldest unflushed bytes
	buf          *reorder.Buffer
	recvQ        byteQueue
	// recvBlocked: recvQ hit the receive-buffer cap; reported through
	// RecvPaused until ReadCoupled drains below half the cap.
	recvBlocked bool
	// capTripped arms hysteresis for the reorder-cap suspect declaration:
	// one failover per excursion above the cap, rearmed when the heap
	// drains below half.
	capTripped bool
	// peakBytes high-watermarks the reorder heap's payload bytes.
	peakBytes int
}

// NewSession builds an engine from completed handshake secrets.
func NewSession(role Role, secrets handshake.Secrets, cfg Config) *Session {
	s := &Session{
		role:    role,
		cfg:     cfg,
		suite:   secrets.Suite,
		conns:   make(map[uint32]*conn),
		streams: make(map[uint32]*stream),
	}
	if role == RoleClient {
		s.sendSecret = secrets.ClientApp
		s.recvSecret = secrets.ServerApp
		s.nextStreamID = firstClientStream
	} else {
		s.sendSecret = secrets.ServerApp
		s.recvSecret = secrets.ClientApp
		s.nextStreamID = firstServerStream
	}
	s.coupled.buf = reorder.New(0)
	s.bufs = record.NewBufferPool()
	s.sealWorker = serialSealer{s}
	return s
}

// Stats returns a copy of the engine counters.
func (s *Session) Stats() Stats { return s.stats }

// SetTelemetry installs the pre-resolved metric handle set the engine
// updates on its send/recv/failover paths. Handles for connections and
// streams that already exist are resolved immediately, so installation
// order does not matter. nil disables telemetry (the emission points
// reduce to one nil-check each).
func (s *Session) SetTelemetry(sm *telemetry.SessionMetrics) {
	s.tel = sm
	s.telPicks = nil
	if sm == nil {
		for _, c := range s.conns {
			c.tel = nil
		}
		for _, st := range s.streams {
			st.tel = nil
		}
		return
	}
	for id, c := range s.conns {
		c.tel = sm.Conn(id)
	}
	for id, st := range s.streams {
		st.tel = sm.Stream(id)
	}
	s.telSyncGauges()
}

// Telemetry returns the installed metric handle set (nil if none).
func (s *Session) Telemetry() *telemetry.SessionMetrics { return s.tel }

// telSyncGauges refreshes the live-connection and open-stream gauges.
// Called on topology changes only (add/fail/close), never per record.
func (s *Session) telSyncGauges() {
	if s.tel == nil {
		return
	}
	live := 0
	for _, c := range s.conns {
		if !c.failed && !c.closed {
			live++
		}
	}
	s.tel.ConnsOpen.Set(int64(live))
	s.tel.StreamsOpen.Set(int64(len(s.streams)))
}

// SetMetrics installs the path-metrics store the engine feeds with
// record-sent/acked/lost events and consults when building the
// scheduler's PathView snapshots. The store itself is safe for
// concurrent use, so an I/O wrapper may refresh it from kernel TCP_INFO
// on another goroutine.
func (s *Session) SetMetrics(m *sched.Metrics) { s.metrics = m }

// Metrics returns the installed path-metrics store (nil if none).
func (s *Session) Metrics() *sched.Metrics { return s.metrics }

// SetClock overrides the timestamp source used to stamp sent records
// for ACK-driven RTT sampling. nil restores time.Now. Simulations pass
// their virtual clock so metrics stay deterministic.
func (s *Session) SetClock(fn func() time.Time) { s.clock = fn }

// now returns the current send-side timestamp.
func (s *Session) now() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return time.Now()
}

// Events drains and returns pending events.
func (s *Session) Events() []Event {
	ev := s.events
	s.events = nil
	return ev
}

func (s *Session) emit(ev Event) { s.events = append(s.events, ev) }

// newContext derives a stream context in one direction.
func (s *Session) newContext(secret []byte, streamID uint32) (*record.StreamContext, error) {
	key, iv := record.DeriveTrafficKeys(s.suite, secret)
	return record.NewStreamContext(s.suite, key, iv, streamID)
}

// AddConnection registers a (just-established or just-joined) TCP
// connection under id and installs its control stream. now stamps
// last-activity for the UserTimeout machinery.
func (s *Session) AddConnection(id uint32, now time.Time) error {
	if _, ok := s.conns[id]; ok {
		return ErrDuplicateConn
	}
	c := &conn{id: id, lastRecv: now, attached: make(map[uint32]bool)}
	c.tel = s.tel.Conn(id) // nil-safe: nil SessionMetrics yields nil handles
	ctlID := ctlStreamID(id)
	var err error
	if c.ctlSend, err = s.newContext(s.sendSecret, ctlID); err != nil {
		return err
	}
	ctlRecv, err := s.newContext(s.recvSecret, ctlID)
	if err != nil {
		return err
	}
	c.demux.Attach(ctlRecv)
	s.conns[id] = c
	s.lastNow = now
	s.trace("conn_added", id, 0, 0, 0)
	s.telSyncGauges()
	return nil
}

// Connections returns the IDs of all live (non-failed) connections.
func (s *Session) Connections() []uint32 {
	var out []uint32
	for id, c := range s.conns {
		if !c.failed && !c.closed {
			out = append(out, id)
		}
	}
	return out
}

// ConnOutstanding reports whether any stream attached to conn has
// unacknowledged records (drives the UserTimeout failure heuristic).
func (s *Session) ConnOutstanding(connID uint32) bool {
	for _, st := range s.streams {
		if st.conn == connID && len(st.retransmit) > 0 {
			return true
		}
	}
	return false
}

// conn is per-TCP-connection state.
type conn struct {
	id       uint32
	demux    record.Demux
	deframer record.Deframer
	ctlSend  *record.StreamContext
	out      []byte
	attached map[uint32]bool // send-side data-stream attachment
	lastRecv time.Time
	failed   bool
	// failedOver marks that FailoverTo already moved this connection's
	// streams away; a second failover of the same connection has nothing
	// to resynchronize and is rejected.
	failedOver bool
	closed     bool
	// Write-time span tracking (session.stampWrites): unwritten collects
	// the data records sealed onto out since the last drain; Outgoing
	// moves it onto writeBatches (one entry per drained chunk, possibly
	// empty for control-only chunks) and NoteWritten / NoteWriteDropped
	// pops batches in the same FIFO order the writer goroutine consumes
	// chunks.
	unwritten    []spanKey
	writeBatches [][]spanKey
	// tel holds this connection's pre-resolved counters; non-nil exactly
	// when the session's telemetry is installed.
	tel *telemetry.ConnMetrics
}

// sendCtl seals a control record onto the connection immediately,
// preserving control/data ordering on the byte stream.
func (s *Session) sendCtl(c *conn, content []byte) error {
	seq := c.ctlSend.Seq()
	out, err := c.ctlSend.Seal(c.out, record.ContentTypeApplicationData, content, s.cfg.PadRecordsTo)
	if err != nil {
		return err
	}
	c.out = out
	s.stats.RecordsSent++
	s.trace("ctl_sent", c.id, ctlStreamID(c.id), seq, len(content))
	if s.tel != nil {
		c.tel.RecordsSent.Inc()
	}
	return nil
}

func (s *Session) getConn(id uint32) (*conn, error) {
	c, ok := s.conns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownConn, id)
	}
	return c, nil
}

func (s *Session) getStream(id uint32) (*stream, error) {
	st, ok := s.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownStream, id)
	}
	return st, nil
}

// Outgoing drains the bytes queued for transmission on conn. Ownership
// of the returned slice passes to the caller; returning it later with
// RecycleOutgoing avoids reallocating record buffers on every flush.
func (s *Session) Outgoing(connID uint32) ([]byte, error) {
	c, err := s.getConn(connID)
	if err != nil {
		return nil, err
	}
	if len(c.out) == 0 {
		// Nothing queued: keep the (possibly warm) buffer in place
		// instead of handing out an empty chunk the caller would strand.
		return nil, nil
	}
	out := c.out
	if n := len(s.outPool); n > 0 {
		c.out = s.outPool[n-1]
		s.outPool = s.outPool[:n-1]
	} else {
		c.out = nil
	}
	s.chunkGets++
	if s.stampWrites {
		// One batch per non-empty chunk, even when the chunk carried only
		// control records (nil batch): NoteWritten pops in chunk order.
		c.writeBatches = append(c.writeBatches, c.unwritten)
		c.unwritten = nil
	}
	return out, nil
}

// spanKey names one retained record for write-time stamping: the stream
// it lives on and its TLS sequence number within that stream's context.
type spanKey struct {
	stream uint32
	seq    uint64
}

// SetWriteStamping arms (or disarms) socket-write-time tracking for
// record-lifecycle spans. When armed, every non-empty Outgoing chunk
// must be matched by exactly one NoteWritten or NoteWriteDropped call,
// in drain order, or batch state accumulates.
func (s *Session) SetWriteStamping(on bool) {
	s.stampWrites = on
	if !on {
		for _, c := range s.conns {
			c.unwritten = nil
			c.writeBatches = nil
		}
	}
}

// NoteWritten reports that the oldest undrained Outgoing chunk of conn
// was written to the socket at now; the records it carried get their
// span's write leg stamped.
func (s *Session) NoteWritten(connID uint32, now time.Time) {
	c, ok := s.conns[connID]
	if !ok || len(c.writeBatches) == 0 {
		return
	}
	batch := c.writeBatches[0]
	c.writeBatches = c.writeBatches[1:]
	if len(c.writeBatches) == 0 {
		c.writeBatches = nil
	}
	for _, k := range batch {
		if st, ok := s.streams[k.stream]; ok {
			st.stampWritten(k.seq, now)
		}
	}
}

// NoteWriteDropped reports that the oldest undrained Outgoing chunk of
// conn was discarded without reaching the socket (failed-conn drain):
// its records keep a zero write stamp until a failover replay rewrites
// them on another connection.
func (s *Session) NoteWriteDropped(connID uint32) {
	c, ok := s.conns[connID]
	if !ok || len(c.writeBatches) == 0 {
		return
	}
	c.writeBatches = c.writeBatches[1:]
	if len(c.writeBatches) == 0 {
		c.writeBatches = nil
	}
}

// PendingWriteBatches counts Outgoing chunks handed out under write
// stamping that have not yet been resolved by NoteWritten or
// NoteWriteDropped. At session close this must be zero — every drained
// chunk's records end the session either stamped or explicitly dropped
// (span count-closure); a residue means an I/O path lost a chunk.
func (s *Session) PendingWriteBatches() int {
	n := 0
	for _, c := range s.conns {
		n += len(c.writeBatches)
	}
	return n
}

// RecycleOutgoing returns a buffer obtained from Outgoing once the
// caller has finished writing it to the transport. Every non-empty
// Outgoing chunk must come back exactly once — written, dropped, or
// discarded at close — or the chunk accounting (PoolStats) diverges.
func (s *Session) RecycleOutgoing(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	s.chunkPuts++
	if len(s.outPool) >= 8 {
		return
	}
	s.outPool = append(s.outPool, buf[:0])
}

// PoolStats is the datapath buffer accounting: payload counters from
// the pooled retransmit arena and chunk counters for the Outgoing /
// RecycleOutgoing ownership handoff. Both pairs balanced at session
// close (after ReleaseBuffers and the wrapper's final recycles) proves
// no pooled buffer leaked and none was returned twice.
type PoolStats struct {
	PayloadGets uint64
	PayloadPuts uint64
	ChunkGets   uint64
	ChunkPuts   uint64
}

// PoolStats snapshots the datapath buffer accounting.
func (s *Session) PoolStats() PoolStats {
	gets, puts := s.bufs.Stats()
	return PoolStats{
		PayloadGets: gets,
		PayloadPuts: puts,
		ChunkGets:   s.chunkGets,
		ChunkPuts:   s.chunkPuts,
	}
}

// ReleaseBuffers returns every pooled payload buffer the engine still
// holds — the failover retransmit copies — to the arena. Call exactly
// once, at session teardown; the engine must not seal or replay
// afterwards. Together with the wrapper recycling its drained chunks
// this makes PoolStats balance at close.
func (s *Session) ReleaseBuffers() {
	for _, st := range s.streams {
		for i := range st.retransmit {
			r := &st.retransmit[i]
			r.buf.Release()
			r.buf = nil
			r.payload = nil
		}
		st.retransmit = nil
	}
}

// HasOutgoing reports whether conn has bytes waiting without draining.
func (s *Session) HasOutgoing(connID uint32) bool {
	c, ok := s.conns[connID]
	return ok && len(c.out) > 0
}

// ConnInfo is a point-in-time snapshot of one connection's engine state
// for live introspection (/debug/tcpls).
type ConnInfo struct {
	ID           uint32
	Failed       bool
	Closed       bool
	Streams      []uint32 // data streams currently attached (send side)
	QueuedBytes  int      // sealed bytes not yet drained by Outgoing
	LastRecv     time.Time
	SRTT         time.Duration // zero when no path-metrics store or no sample
	RTTVar       time.Duration
	DeliveryRate float64 // bytes per second; zero when unsampled
	InFlight     uint64
	Losses       uint64
	RecvPaused   bool // receive backpressure wants socket reads paused
}

// StreamInfo is a point-in-time snapshot of one stream's engine state.
type StreamInfo struct {
	ID            uint32
	Conn          uint32
	Coupled       bool
	FinQueued     bool
	FinSent       bool
	PeerFin       bool
	PendingBytes  int // application bytes not yet sealed
	RetransmitQ   int // records buffered for failover replay
	UnackedBytes  int // payload bytes across the retransmit queue
	RecvBuffered  int
	NextSendSeq   uint64
	PeerAckedSeq  uint64
	BytesSent     uint64 // from telemetry when installed, else 0
	BytesReceived uint64
	RecvBlocked   bool // receive buffer at its cap (backpressure)
	AckSolicited  bool // an AckRequest is outstanding for this stream
}

// ConnInfos snapshots every connection, in ascending ID order.
func (s *Session) ConnInfos() []ConnInfo {
	ids := make([]uint32, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sortIDs(ids)
	out := make([]ConnInfo, 0, len(ids))
	for _, id := range ids {
		c := s.conns[id]
		ci := ConnInfo{
			ID:          id,
			Failed:      c.failed,
			Closed:      c.closed,
			QueuedBytes: len(c.out),
			LastRecv:    c.lastRecv,
			RecvPaused:  s.RecvPaused(id),
		}
		for stID, st := range s.streams {
			if st.conn == id {
				ci.Streams = append(ci.Streams, stID)
			}
		}
		sortIDs(ci.Streams)
		if s.metrics != nil {
			if ps, ok := s.metrics.Snapshot(id); ok {
				ci.SRTT, ci.RTTVar = ps.SRTT, ps.RTTVar
				ci.DeliveryRate = ps.DeliveryRate
				ci.InFlight, ci.Losses = ps.InFlight, ps.Losses
			}
		}
		out = append(out, ci)
	}
	return out
}

// StreamInfos snapshots every stream, in ascending ID order.
func (s *Session) StreamInfos() []StreamInfo {
	ids := s.Streams()
	sortIDs(ids)
	out := make([]StreamInfo, 0, len(ids))
	for _, id := range ids {
		st := s.streams[id]
		si := StreamInfo{
			ID:           id,
			Conn:         st.conn,
			Coupled:      st.coupled,
			FinQueued:    st.finQueued,
			FinSent:      st.finSent,
			PeerFin:      st.peerFin,
			PendingBytes: st.pendingQ.Len(),
			RetransmitQ:  len(st.retransmit),
			RecvBuffered: st.recvQ.Len(),
			NextSendSeq:  st.sendCtx.Seq(),
			PeerAckedSeq: st.peerAcked,
			UnackedBytes: st.retransmitBytes,
			RecvBlocked:  st.recvBlocked,
			AckSolicited: st.ackSolicited,
		}
		if st.tel != nil {
			si.BytesSent = st.tel.BytesSent.Load()
			si.BytesReceived = st.tel.BytesReceived.Load()
		}
		out = append(out, si)
	}
	return out
}

// SchedulerName reports the active coupled-path scheduler's name
// ("roundrobin" when none was installed).
func (s *Session) SchedulerName() string {
	if s.pathSched == nil {
		return "roundrobin"
	}
	return s.pathSched.Name()
}

// ReorderDepth reports how many out-of-order coupled records the
// receive-side reorder heap currently holds.
func (s *Session) ReorderDepth() int { return s.coupled.buf.Pending() }

// ReorderBytes reports the payload bytes currently parked in the
// coupled reorder heap; ReorderPeakBytes is its session high-watermark.
func (s *Session) ReorderBytes() int     { return s.coupled.buf.PendingBytes() }
func (s *Session) ReorderPeakBytes() int { return s.coupled.peakBytes }

// RetransmitBytes reports the payload bytes held across all streams'
// retransmit buffers; RetransmitPeakBytes is its session high-watermark.
func (s *Session) RetransmitBytes() int     { return s.retransmitTotal }
func (s *Session) RetransmitPeakBytes() int { return s.retransmitPeak }

// BufferedBytes sums every buffer the engine holds on behalf of the
// peer or the application: the coupled reorder heap, the failover
// retransmit buffers, and each stream's receive buffer and unsent
// pending data. This is the per-session figure the server runtime
// rolls up into its process-wide memory budget, so it walks the
// streams directly instead of allocating StreamInfo snapshots.
func (s *Session) BufferedBytes() int {
	total := s.coupled.buf.PendingBytes() + s.retransmitTotal
	for _, st := range s.streams {
		total += st.recvQ.Len() + st.pendingQ.Len()
	}
	return total
}

// ConnHealth is one connection's compact health sample: the per-path
// row the continuous-diagnosis sampler reads every tick. Counter
// fields come from the connection's pre-resolved telemetry handles and
// are zero when telemetry is not installed; scheduler fields are zero
// when no path-metrics engine runs.
type ConnHealth struct {
	ID            uint32
	Failed        bool
	BytesSent     uint64
	BytesReceived uint64
	Retransmits   uint64
	SRTTUS        int64
	DeliveryRate  float64
}

// HealthStats is the session-level half of a health sample.
type HealthStats struct {
	Stats Stats
	// OutstandingBytes is the unacknowledged send data across all
	// retransmit buffers (the stall rule's "data is waiting" signal).
	OutstandingBytes int
	// BufferedBytes is the session's total held memory (see
	// BufferedBytes).
	BufferedBytes int
	ReorderDepth  int
	ConnsLive     int
	StreamsOpen   int
}

// HealthSnapshot fills hs and appends one ConnHealth row per open
// connection to conns, returning the extended slice. Unlike ConnInfos
// it allocates nothing when conns has capacity — the health sampler
// calls it once per tick with a reused buffer. Caller must serialize
// with the session's other entry points, like every engine method.
func (s *Session) HealthSnapshot(hs *HealthStats, conns []ConnHealth) []ConnHealth {
	hs.Stats = s.stats
	hs.OutstandingBytes = s.retransmitTotal
	hs.BufferedBytes = s.BufferedBytes()
	hs.ReorderDepth = s.coupled.buf.Pending()
	hs.ConnsLive = 0
	hs.StreamsOpen = len(s.streams)
	for id, c := range s.conns {
		if c.closed {
			continue
		}
		if !c.failed {
			hs.ConnsLive++
		}
		ch := ConnHealth{ID: id, Failed: c.failed}
		if cm := c.tel; cm != nil {
			ch.BytesSent = cm.BytesSent.Load()
			ch.BytesReceived = cm.BytesReceived.Load()
			ch.Retransmits = cm.Retransmits.Load()
		}
		if s.metrics != nil {
			if ps, ok := s.metrics.Snapshot(id); ok {
				ch.SRTTUS = int64(ps.SRTT / time.Microsecond)
				ch.DeliveryRate = ps.DeliveryRate
			}
		}
		conns = append(conns, ch)
	}
	return conns
}

// RecvPaused reports whether the receive side wants the I/O wrapper to
// stop reading connID's socket: some stream whose records arrive on
// that connection (or the coupled group, whose records may arrive on
// any connection) has a full receive buffer. Pausing reads lets TCP's
// own receive window close and push back on the peer.
func (s *Session) RecvPaused(connID uint32) bool {
	c, ok := s.conns[connID]
	if !ok || c.failed || c.closed {
		return false
	}
	if s.coupled.recvBlocked {
		return true
	}
	for _, st := range s.streams {
		if st.recvBlocked && !st.coupled && st.conn == connID {
			return true
		}
	}
	return false
}

// noteRetransmitBytes adjusts the session-wide retransmit-buffer byte
// total by delta and refreshes the peak and telemetry gauge.
func (s *Session) noteRetransmitBytes(delta int) {
	s.retransmitTotal += delta
	if s.retransmitTotal > s.retransmitPeak {
		s.retransmitPeak = s.retransmitTotal
	}
	if s.tel != nil {
		s.tel.RetransmitBytes.Set(int64(s.retransmitTotal))
	}
}

// noteReorderBytes refreshes the reorder-heap peak and telemetry gauge
// after the heap's contents changed.
func (s *Session) noteReorderBytes() {
	n := s.coupled.buf.PendingBytes()
	if n > s.coupled.peakBytes {
		s.coupled.peakBytes = n
	}
	if s.tel != nil {
		s.tel.ReorderBytes.Set(int64(n))
	}
}

// sortIDs sorts a small ID slice in place (insertion sort; topology
// snapshots are tiny and this avoids an import).
func sortIDs(ids []uint32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
