package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"tcpls/internal/sched"
)

// collectTrace installs a tracer on s and returns the growing event log.
func collectTrace(s *Session) *[]TraceEvent {
	var events []TraceEvent
	s.SetTracer(func(ev TraceEvent) { events = append(events, ev) })
	return &events
}

func traceCount(events []TraceEvent, name string) int {
	n := 0
	for _, ev := range events {
		if ev.Name == name {
			n++
		}
	}
	return n
}

// TestReorderCapDeclaresSuspect stalls one of three coupled paths: the
// receiver's reorder heap grows past the configured cap, the quietest
// path is declared suspect, and the sender's failover replay fills the
// gap so the transfer completes with the heap drained.
func TestReorderCapDeclaresSuspect(t *testing.T) {
	cfg := Config{
		EnableFailover:   true,
		MaxRecordPayload: 512,
		MaxReorderBytes:  4096,
		AckPeriod:        4,
	}
	p := newPair(t, cfg)
	p.addConn(1)
	p.addConn(2)
	s0, _ := p.client.CreateStream(0)
	s1, _ := p.client.CreateStream(1)
	s2, _ := p.client.CreateStream(2)
	for _, id := range []uint32{s0, s1, s2} {
		if err := p.client.SetCoupled(id, true); err != nil {
			t.Fatal(err)
		}
	}
	p.pump() // propagate stream attaches while all paths are healthy
	serverTrace := collectTrace(p.server)

	// Conn 1 stalls: its bytes are produced but never delivered. Age the
	// stall across two batches so the server's lastRecv for conns 0 and 2
	// genuinely advances past conn 1's.
	data := bytes.Repeat([]byte{0xab}, 16384)
	if _, err := p.client.WriteCoupled(data); err != nil {
		t.Fatal(err)
	}
	var stalled [][]byte
	for batch := 0; batch < 2; batch++ {
		p.now = p.now.Add(100 * time.Millisecond)
		if err := p.client.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, id := range []uint32{0, 1, 2} {
			out, err := p.client.Outgoing(id)
			if err != nil {
				t.Fatal(err)
			}
			if id == 1 {
				stalled = append(stalled, out)
				continue
			}
			if len(out) > 0 {
				if err := p.server.Receive(id, out, p.now); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	if !p.server.ConnFailed(1) {
		t.Fatalf("stalled conn 1 not declared suspect (reorder bytes %d, cap %d)",
			p.server.ReorderBytes(), cfg.MaxReorderBytes)
	}
	if p.server.ConnFailed(0) || p.server.ConnFailed(2) {
		t.Fatal("a live path was declared suspect")
	}
	if traceCount(*serverTrace, "flowctl_limit") == 0 {
		t.Fatal("no flowctl_limit trace event at the cap")
	}
	found := false
	for _, ev := range p.server.Events() {
		if ev.Kind == EventConnFailed && ev.Conn == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no EventConnFailed for the suspect path")
	}
	if peak := p.server.ReorderPeakBytes(); peak < cfg.MaxReorderBytes {
		t.Fatalf("reorder peak %d never reached the cap %d", peak, cfg.MaxReorderBytes)
	}

	// Recovery: the sender fails the stalled path over and replays its
	// unacknowledged records; the gap fills and the heap drains.
	if err := p.client.FailoverTo(1, 0); err != nil {
		t.Fatal(err)
	}
	p.pump(1)
	got := make([]byte, len(data)+1)
	n := p.server.ReadCoupled(got)
	if n != len(data) || !bytes.Equal(got[:n], data) {
		t.Fatalf("delivered %d bytes after recovery, want %d byte-exact", n, len(data))
	}
	if p.server.ReorderBytes() != 0 || p.server.ReorderDepth() != 0 {
		t.Fatalf("reorder heap not drained: %d bytes / %d records",
			p.server.ReorderBytes(), p.server.ReorderDepth())
	}
}

// TestRecvBufferBackpressure fills an unread stream's receive buffer:
// at the cap the engine reports RecvPaused (the wrapper's signal to
// stop socket reads), at twice the cap Receive returns the typed
// error, and draining Read releases the backpressure.
func TestRecvBufferBackpressure(t *testing.T) {
	cfg := Config{MaxRecordPayload: 256, MaxRecvBufferBytes: 1024}
	p := newPair(t, cfg)
	trace := collectTrace(p.server)
	sid, _ := p.client.CreateStream(0)
	p.pump()

	send := func(n int) error {
		if _, err := p.client.Write(sid, bytes.Repeat([]byte{0x5a}, n)); err != nil {
			return err
		}
		if err := p.client.Flush(); err != nil {
			return err
		}
		out, err := p.client.Outgoing(0)
		if err != nil {
			return err
		}
		return p.server.Receive(0, out, p.now)
	}

	if err := send(1024); err != nil {
		t.Fatal(err)
	}
	if !p.server.RecvPaused(0) {
		t.Fatalf("RecvPaused(0) = false with %d bytes buffered at cap %d",
			p.server.Readable(sid), cfg.MaxRecvBufferBytes)
	}
	if traceCount(*trace, "flowctl_limit") != 1 {
		t.Fatalf("flowctl_limit events = %d, want 1", traceCount(*trace, "flowctl_limit"))
	}
	var blocked bool
	for _, si := range p.server.StreamInfos() {
		if si.ID == sid {
			blocked = si.RecvBlocked
		}
	}
	if !blocked {
		t.Fatal("StreamInfo.RecvBlocked not set at the cap")
	}

	// A caller that ignores the backpressure signal hits the hard error
	// at twice the cap; the bytes remain buffered (reliable delivery).
	if err := send(1024); !errors.Is(err, ErrRecvBufferFull) {
		t.Fatalf("Receive past 2x cap: err = %v, want ErrRecvBufferFull", err)
	}
	buffered := p.server.Readable(sid)
	if buffered < 2*cfg.MaxRecvBufferBytes {
		t.Fatalf("buffered %d after hard trip, want >= %d", buffered, 2*cfg.MaxRecvBufferBytes)
	}

	// Draining below half the cap releases the backpressure.
	got := make([]byte, 4096)
	for p.server.Readable(sid) > 0 {
		if _, err := p.server.Read(sid, got); err != nil {
			t.Fatal(err)
		}
	}
	if p.server.RecvPaused(0) {
		t.Fatal("RecvPaused still set after draining")
	}
	// The paused connection accepts records again.
	if err := send(256); err != nil {
		t.Fatal(err)
	}
}

// TestCoupledRecvBufferBackpressure exercises the same bound on the
// coupled group's aggregate buffer.
func TestCoupledRecvBufferBackpressure(t *testing.T) {
	cfg := Config{MaxRecordPayload: 256, MaxRecvBufferBytes: 1024}
	p := newPair(t, cfg)
	sid, _ := p.client.CreateStream(0)
	p.client.SetCoupled(sid, true)
	p.pump()

	if _, err := p.client.WriteCoupled(bytes.Repeat([]byte{0x11}, 1024)); err != nil {
		t.Fatal(err)
	}
	p.pump()
	if !p.server.RecvPaused(0) {
		t.Fatal("coupled group at cap but RecvPaused(0) = false")
	}
	got := make([]byte, 2048)
	n, _ := 0, 0
	for p.server.CoupledReadable() > 0 {
		n += p.server.ReadCoupled(got[n:])
	}
	if n != 1024 {
		t.Fatalf("drained %d coupled bytes, want 1024", n)
	}
	if p.server.RecvPaused(0) {
		t.Fatal("coupled backpressure not released after drain")
	}
}

// TestRetransmitBudgetParksAndErrors drops all acknowledgments: the
// stream seals until its retransmit budget fills, parks the rest, and
// Write surfaces the typed error once a further budget's worth queues.
func TestRetransmitBudgetParksAndErrors(t *testing.T) {
	cfg := Config{
		EnableFailover:     true,
		MaxRecordPayload:   256,
		MaxRetransmitBytes: 2048,
		AckPeriod:          1 << 20, // receiver never acks on its own
	}
	p := newPair(t, cfg)
	trace := collectTrace(p.client)
	sid, _ := p.client.CreateStream(0)
	p.pump()

	if _, err := p.client.Write(sid, bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	// Outgoing bytes are dropped: no acks ever come back.
	if _, err := p.client.Outgoing(0); err != nil {
		t.Fatal(err)
	}
	if got := p.client.RetransmitBytes(); got != cfg.MaxRetransmitBytes {
		t.Fatalf("retransmit buffer %d, want parked exactly at budget %d", got, cfg.MaxRetransmitBytes)
	}
	if traceCount(*trace, "flowctl_limit") != 1 {
		t.Fatalf("flowctl_limit events = %d, want 1", traceCount(*trace, "flowctl_limit"))
	}
	if traceCount(*trace, "ack_solicited") != 1 {
		t.Fatalf("ack_solicited events = %d, want 1 (deduplicated while outstanding)",
			traceCount(*trace, "ack_solicited"))
	}
	var si StreamInfo
	for _, s := range p.client.StreamInfos() {
		if s.ID == sid {
			si = s
		}
	}
	if !si.AckSolicited {
		t.Fatal("StreamInfo.AckSolicited not set under budget pressure")
	}
	if si.PendingBytes != 4096-cfg.MaxRetransmitBytes {
		t.Fatalf("pending %d, want %d parked", si.PendingBytes, 4096-cfg.MaxRetransmitBytes)
	}

	// Queueing up to one extra budget is allowed; past it Write errors.
	room := cfg.MaxRetransmitBytes - si.PendingBytes
	if _, err := p.client.Write(sid, make([]byte, room)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.client.Write(sid, []byte{0}); !errors.Is(err, ErrRetransmitBudget) {
		t.Fatalf("Write past pending cap: err = %v, want ErrRetransmitBudget", err)
	}
}

// TestAckSolicitationUnblocks wires both directions: the receiver's ack
// policy would never fire (huge AckPeriod), but the sender's AckRequest
// solicits immediate acknowledgments, so the transfer completes without
// the budget ever deadlocking.
func TestAckSolicitationUnblocks(t *testing.T) {
	cfg := Config{
		EnableFailover:     true,
		MaxRecordPayload:   256,
		MaxRetransmitBytes: 1024,
		AckPeriod:          1 << 20,
	}
	p := newPair(t, cfg)
	sid, _ := p.client.CreateStream(0)
	p.pump()

	data := bytes.Repeat([]byte{7}, 8192)
	if _, err := p.client.Write(sid, data); err != nil {
		t.Fatal(err)
	}
	p.pump()
	got := make([]byte, len(data)+1)
	n, err := p.server.Read(sid, got)
	if err != nil || n != len(data) || !bytes.Equal(got[:n], data) {
		t.Fatalf("read %d bytes (err %v), want %d byte-exact", n, err, len(data))
	}
	if p.client.Stats().AcksReceived == 0 {
		t.Fatal("no acks flowed back despite solicitation")
	}
	if p.client.RetransmitBytes() != 0 {
		t.Fatalf("retransmit buffer %d after full ack drain", p.client.RetransmitBytes())
	}
	if p.client.RetransmitPeakBytes() > cfg.MaxRetransmitBytes {
		t.Fatalf("retransmit peak %d exceeded budget %d",
			p.client.RetransmitPeakBytes(), cfg.MaxRetransmitBytes)
	}
}

// TestRedundantSchedulingSharesRetransmitCopy: a PickAll pick must
// retain ONE payload copy shared across every replica's retransmit
// entry, not one per path.
func TestRedundantSchedulingSharesRetransmitCopy(t *testing.T) {
	cfg := Config{EnableFailover: true, MaxRecordPayload: 1024}
	p := newPair(t, cfg)
	p.addConn(1)
	s1, _ := p.client.CreateStream(0)
	s2, _ := p.client.CreateStream(1)
	p.client.SetCoupled(s1, true)
	p.client.SetCoupled(s2, true)
	p.client.SetPathScheduler(sched.Redundant())
	p.pump()

	if _, err := p.client.WriteCoupled(bytes.Repeat([]byte{3}, 512)); err != nil {
		t.Fatal(err)
	}
	if err := p.client.Flush(); err != nil {
		t.Fatal(err)
	}
	r1 := p.client.streams[s1].retransmit
	r2 := p.client.streams[s2].retransmit
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatalf("retransmit queues %d/%d, want 1/1", len(r1), len(r2))
	}
	if &r1[0].payload[0] != &r2[0].payload[0] {
		t.Fatal("replicas hold separate payload copies; want one shared immutable copy")
	}
}

// TestFlushAcksDeterministic: acks flush in ascending stream-ID order
// regardless of map iteration.
func TestFlushAcksDeterministic(t *testing.T) {
	cfg := Config{EnableFailover: true, AckPeriod: 1 << 20}
	p := newPair(t, cfg)
	var sids []uint32
	for i := 0; i < 5; i++ {
		sid, _ := p.client.CreateStream(0)
		sids = append(sids, sid)
	}
	p.pump()
	// Write in reverse order so creation order cannot mask map order.
	for i := len(sids) - 1; i >= 0; i-- {
		if _, err := p.client.Write(sids[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.pump()
	trace := collectTrace(p.server)
	p.server.FlushAcks()
	var acked []uint32
	for _, ev := range *trace {
		if ev.Name == "ack_sent" {
			acked = append(acked, ev.Stream)
		}
	}
	if len(acked) != len(sids) {
		t.Fatalf("flushed %d acks, want %d", len(acked), len(sids))
	}
	for i := 1; i < len(acked); i++ {
		if acked[i] <= acked[i-1] {
			t.Fatalf("ack order not ascending: %v", acked)
		}
	}
}

// TestBPFChunkHeaderValidation feeds forged BPF reassembly headers: all
// must be rejected before any oversized allocation happens.
func TestBPFChunkHeaderValidation(t *testing.T) {
	p := newPair(t, Config{})
	s := p.server
	c := s.conns[0]
	cases := []struct {
		name string
		f    frame
	}{
		{"zero chunks", frame{chunkCount: 0, progLen: 8}},
		{"chunk count over limit", frame{chunkCount: 65535, progLen: 1 << 20}},
		{"program over limit", frame{chunkCount: 1, progLen: 1<<20 + 1}},
		{"more chunks than program bytes", frame{chunkCount: 100, progLen: 64}},
	}
	for _, tc := range cases {
		if err := s.handleBPFChunk(c, &tc.f); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("%s: err = %v, want ErrBadFrame", tc.name, err)
		}
	}

	// Chunks that together outgrow the advertised progLen abort the
	// whole reassembly.
	big := make([]byte, 600)
	if err := s.handleBPFChunk(c, &frame{chunkCount: 2, chunkIdx: 0, progLen: 1000, chunk: big}); err != nil {
		t.Fatal(err)
	}
	if err := s.handleBPFChunk(c, &frame{chunkCount: 2, chunkIdx: 1, progLen: 1000, chunk: big}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized chunk stream: err = %v, want ErrBadFrame", err)
	}
	if s.bpfChunks != nil {
		t.Fatal("aborted reassembly state not dropped")
	}

	// A legitimate program still reassembles end to end.
	prog := bytes.Repeat([]byte{0xc0}, 2000)
	if err := p.client.SendBPFCC(0, prog); err != nil {
		t.Fatal(err)
	}
	p.pump()
	var got []byte
	for _, ev := range p.server.Events() {
		if ev.Kind == EventBPFCC {
			got = ev.Data
		}
	}
	if !bytes.Equal(got, prog) {
		t.Fatalf("reassembled %d bytes, want %d byte-exact", len(got), len(prog))
	}
}
