package core

import (
	"errors"
	"fmt"
	"time"

	"tcpls/internal/record"
)

// Receive feeds raw bytes read from connID's TCP connection into the
// engine: records are deframed, trial-decrypted to their stream, and
// dispatched. now stamps connection activity for the UserTimeout timer.
func (s *Session) Receive(connID uint32, data []byte, now time.Time) error {
	c, err := s.getConn(connID)
	if err != nil {
		return err
	}
	c.lastRecv = now
	s.lastNow = now
	c.deframer.Feed(data)
	defer c.deframer.Compact() // data may be a reused read buffer
	for {
		rec, ok, err := c.deframer.Next()
		if err != nil {
			s.pendingReplay = nil
			return err
		}
		if !ok {
			// Peer-initiated failover: replay our send side for every
			// stream the peer re-homed in this batch, merged (see
			// handleStreamAttach). Batching matters — the peer's ATTACHes
			// for all its failed conns' streams usually land in one read,
			// and replaying them stream by stream would interleave coupled
			// aggregation sequences on the wire.
			return s.flushPendingReplay(c)
		}
		if err := s.handleRecord(c, rec); err != nil {
			s.pendingReplay = nil
			return err
		}
	}
}

// flushPendingReplay runs the merged send-side replay for streams the
// peer just re-homed onto c (collected by handleStreamAttach during the
// current Receive batch).
func (s *Session) flushPendingReplay(c *conn) error {
	if len(s.pendingReplay) == 0 {
		return nil
	}
	moves := s.pendingReplay
	s.pendingReplay = nil
	return s.replayMerged(moves, c)
}

// handleRecord demultiplexes and dispatches one full TLS record.
func (s *Session) handleRecord(c *conn, rec []byte) error {
	streamID, _, content, err := c.demux.Open(rec)
	if err != nil {
		if errors.Is(err, record.ErrNoStreamMatch) {
			// Forgery or desynchronized peer: the paper counts these
			// against the AEAD forgery budget and drops them. On a real
			// TCP connection this is unrecoverable (record boundaries
			// stay intact, so it is not a resync issue) — but dropping
			// keeps the engine alive for the sim's adversarial tests.
			s.stats.FailedDecrypts++
			if s.tel != nil {
				c.tel.FailedDecrypts.Inc()
			}
			return nil
		}
		return err
	}
	s.stats.RecordsReceived++
	if s.tel != nil {
		c.tel.RecordsReceived.Inc()
	}
	// One frame scratch per session: the record is fully handled before
	// the next parse, so nothing retains the struct (slices inside it
	// that outlive the call, like cookies, are freshly parsed anyway).
	f := &s.frameScratch
	if err := parseFrame(f, content); err != nil {
		return err
	}
	switch f.typ {
	case typeStreamData, typeStreamDataCoupled:
		return s.handleStreamData(c, streamID, f)
	default:
		// Record-level arrival mark for control frames, so a trace
		// reconstructs per-conn records-received exactly: every decrypted
		// record is either record_received, dup_dropped, or ctl_received.
		s.trace("ctl_received", c.id, streamID, uint64(f.typ), len(content))
		return s.handleControl(c, streamID, f)
	}
}

// handleStreamData delivers stream payload, filtering failover
// duplicates and running the ack policy.
func (s *Session) handleStreamData(c *conn, streamID uint32, f *frame) error {
	st, err := s.getStream(streamID)
	if err != nil {
		return err
	}
	// The record's sequence number is the one the context just consumed.
	// Ask the arrival connection's demux for it: after a re-home the old
	// and new connections carry independent context clones (the old one
	// keeps decrypting late in-flight records at its own sequence), so
	// st.recvCtx — the newest clone — is not necessarily the context
	// that opened this record.
	ctx := c.demux.Context(streamID)
	if ctx == nil {
		ctx = st.recvCtx
	}
	seq := ctx.Seq() - 1
	s.stats.BytesReceived += uint64(len(f.payload))
	if s.tel != nil {
		c.tel.BytesReceived.Add(uint64(len(f.payload)))
		st.tel.BytesReceived.Add(uint64(len(f.payload)))
	}

	if seq < st.nextDeliverSeq {
		// Failover replay of a record we already delivered (the peer's
		// ack state lagged): count and drop.
		s.stats.DupRecordsDropped++
		if s.tel != nil {
			c.tel.DupRecords.Inc()
		}
		s.trace("dup_dropped", c.id, streamID, seq, len(f.payload))
		// A duplicate proves the peer's ack state is stale: it replayed a
		// record we already delivered because the ack never reached it
		// (lost with a failed connection). Ack unconditionally — the
		// AckPeriod pacing in maybeAck counts only fresh records, so an
		// all-duplicate replay would otherwise never trigger an ack and
		// the peer would replay the same records on every failover until
		// its user timeout gave up.
		s.sendAck(c, st)
		return nil
	}
	st.nextDeliverSeq = seq + 1
	s.trace("record_received", c.id, streamID, seq, len(f.payload))

	if f.typ == typeStreamDataCoupled {
		st.coupled = true // receiver learns coupling from the records
		// Coupled delivery: order across the group by aggregation
		// sequence number through the reordering heap (§4.3). In the
		// in-order fast path the record buffer is delivered as is; only
		// out-of-order records are copied for the heap to hold.
		var delivered [][]byte
		if f.aggSeq == s.coupled.buf.Next() && s.coupled.buf.Pending() == 0 {
			delivered = s.coupled.buf.Offer(f.aggSeq, f.payload)
		} else {
			delivered = s.coupled.buf.Offer(f.aggSeq, append([]byte(nil), f.payload...))
		}
		s.noteReorderBytes()
		if s.tel != nil {
			s.tel.ReorderDepth.Set(int64(s.coupled.buf.Pending()))
		}
		if depth := s.coupled.buf.Pending(); depth != s.lastReorderDepth {
			s.trace("reorder_depth", c.id, streamID, uint64(depth), len(delivered))
			s.lastReorderDepth = depth
		}
		s.checkReorderCap(c, streamID)
		if s.DeliverCoupled != nil {
			for _, d := range delivered {
				s.DeliverCoupled(d)
			}
		} else {
			for _, d := range delivered {
				s.coupled.recvQ.Append(d)
			}
			if len(delivered) > 0 {
				s.emit(Event{Kind: EventCoupledData, Stream: streamID, Conn: c.id})
			}
			if err := s.checkRecvCap(c, streamID, s.coupled.recvQ.Len(), &s.coupled.recvBlocked); err != nil {
				return err
			}
		}
	} else if s.DeliverData != nil {
		s.DeliverData(streamID, f.payload)
	} else {
		st.recvQ.Append(f.payload)
		s.emit(Event{Kind: EventStreamData, Stream: streamID, Conn: c.id})
		if err := s.checkRecvCap(c, streamID, st.recvQ.Len(), &st.recvBlocked); err != nil {
			return err
		}
	}

	st.recvSinceAck++
	st.bytesSinceAck += len(f.payload)
	s.maybeAck(c, st)
	return nil
}

// checkRecvCap applies the receive-buffer bound after buffered bytes
// grew. At the cap it raises the stream's (or the coupled group's)
// backpressure flag — surfaced through RecvPaused so the I/O wrapper
// stops reading the socket and TCP's receive window closes. At twice
// the cap — only reachable by callers that keep feeding Receive past
// the backpressure signal — it returns ErrRecvBufferFull. The record
// is already buffered either way: delivery is reliable, so bytes are
// never dropped once their sequence advanced.
func (s *Session) checkRecvCap(c *conn, streamID uint32, buffered int, blocked *bool) error {
	cap := s.cfg.maxRecvBytes()
	if cap <= 0 {
		return nil
	}
	if buffered >= cap && !*blocked {
		*blocked = true
		s.trace("flowctl_limit", c.id, streamID, flowctlRecvBuffer, buffered)
		if s.tel != nil {
			s.tel.FlowctlLimits.Inc()
		}
	}
	if buffered >= 2*cap {
		return fmt.Errorf("stream %d: %d bytes buffered: %w", streamID, buffered, ErrRecvBufferFull)
	}
	return nil
}

// checkReorderCap bounds the coupled reorder heap (§4.3): a path that
// stalls while others keep delivering inflates the heap without bound.
// Past the configured byte or record cap the quietest *other* live
// coupled path is declared suspect and failed — handing the stall to
// the existing failover/replay machinery (the failed path's records
// replay on a live one, filling the gap) instead of allocating
// forever. Hysteresis: one declaration per excursion, re-armed when
// the heap drains below half the cap.
func (s *Session) checkReorderCap(arrival *conn, streamID uint32) {
	maxBytes, maxRecs := s.cfg.maxReorderBytes(), s.cfg.maxReorderRecords()
	bytes, recs := s.coupled.buf.PendingBytes(), s.coupled.buf.Pending()
	over := (maxBytes > 0 && bytes >= maxBytes) || (maxRecs > 0 && recs >= maxRecs)
	if !over {
		if s.coupled.capTripped &&
			(maxBytes <= 0 || bytes <= maxBytes/2) && (maxRecs <= 0 || recs <= maxRecs/2) {
			s.coupled.capTripped = false
		}
		return
	}
	if s.coupled.capTripped {
		return
	}
	s.coupled.capTripped = true
	s.trace("flowctl_limit", arrival.id, streamID, flowctlReorder, bytes)
	if s.tel != nil {
		s.tel.FlowctlLimits.Inc()
	}
	if !s.cfg.EnableFailover {
		return
	}
	// The suspect is the stream-carrying path that has been quiet
	// longest — the heap grows because the missing aggregation
	// sequences travel a path that stopped delivering, and the path
	// records arrive on is by definition alive. All attached streams
	// are considered, not just known-coupled ones: the stalled path's
	// records never arrived, so the receiver never learned its stream
	// was coupled. Ties break toward the lowest connection ID so the
	// declaration is deterministic.
	var suspect *conn
	for _, st := range s.streams {
		c, ok := s.conns[st.conn]
		if !ok || c == arrival || c.failed || c.closed {
			continue
		}
		if suspect == nil || c.lastRecv.Before(suspect.lastRecv) ||
			(c.lastRecv.Equal(suspect.lastRecv) && c.id < suspect.id) {
			suspect = c
		}
	}
	if suspect == nil {
		return
	}
	suspect.failed = true
	s.trace("conn_failed", suspect.id, 0, 0, 0)
	if s.tel != nil {
		s.tel.ConnFailures.Inc()
	}
	s.telSyncGauges()
	s.emit(Event{Kind: EventConnFailed, Conn: suspect.id})
}

// maybeAck applies the §4.2 acknowledgment policy: every AckPeriod
// records or AckBytes bytes, when failover is enabled.
func (s *Session) maybeAck(c *conn, st *stream) {
	if !s.cfg.EnableFailover {
		return
	}
	if st.recvSinceAck < s.cfg.ackPeriod() && st.bytesSinceAck < s.cfg.ackBytes() {
		return
	}
	s.sendAck(c, st)
}

func (s *Session) sendAck(c *conn, st *stream) {
	// Ack the cumulative delivery high-water, not the receive context's
	// counter: after a SYNC rollback the context replays below
	// nextDeliverSeq, and acking the rolled-back counter would tell the
	// peer less than we actually hold. The scratch buffer is safe to
	// reuse because sendCtl seals the content immediately.
	s.ctlScratch = appendAck(s.ctlScratch[:0], st.id, st.nextDeliverSeq)
	if err := s.sendCtl(c, s.ctlScratch); err != nil {
		return
	}
	s.trace("ack_sent", c.id, st.id, st.nextDeliverSeq, 0)
	s.stats.AcksSent++
	if s.tel != nil {
		c.tel.AcksSent.Inc()
	}
	st.recvSinceAck = 0
	st.bytesSinceAck = 0
}

// FlushAcks forces acknowledgments for all streams with unacked receipts
// (used at transfer end so the sender can drain retransmit buffers).
// Streams are walked in ID order so the emitted ack sequence — and any
// trace built from it — is deterministic.
func (s *Session) FlushAcks() {
	for _, id := range s.sortedStreamIDs() {
		st := s.streams[id]
		if st.recvSinceAck > 0 {
			if c, ok := s.conns[st.conn]; ok && !c.failed {
				s.sendAck(c, st)
			}
		}
	}
}

// handleControl dispatches a non-data frame.
func (s *Session) handleControl(c *conn, streamID uint32, f *frame) error {
	switch f.typ {
	case typeAck:
		return s.handleAck(f)
	case typeSync:
		return s.handleSync(c, f)
	case typeFailover:
		return s.handleFailoverNotice(c, f)
	case typeStreamAttach:
		return s.handleStreamAttach(c, f)
	case typeStreamDetach:
		return s.handleStreamDetach(c, f)
	case typeStreamFin:
		return s.handleStreamFin(c, f)
	case typeTCPOption:
		s.emit(Event{Kind: EventTCPOption, Conn: c.id, OptKind: f.optKind,
			OptVal: append([]byte(nil), f.optVal...)})
		return nil
	case typeAddAddr:
		s.emit(Event{Kind: EventAddAddr, Conn: c.id, Addr: append([]byte(nil), f.addr...)})
		return nil
	case typeRemoveAddr:
		s.emit(Event{Kind: EventRemoveAddr, Conn: c.id, Addr: append([]byte(nil), f.addr...)})
		return nil
	case typeNewCookie:
		s.emit(Event{Kind: EventNewCookies, Conn: c.id, Cookies: f.cookies})
		return nil
	case typeAckRequest:
		return s.handleAckRequest(c, f)
	case typeBPFCC:
		return s.handleBPFChunk(c, f)
	case typeEchoRequest:
		return s.sendCtl(c, appendEcho(nil, typeEchoReply, f.token))
	case typeEchoReply:
		s.emit(Event{Kind: EventEchoReply, Conn: c.id, Token: f.token})
		return nil
	case typeConnClose:
		c.closed = true
		s.telSyncGauges()
		s.emit(Event{Kind: EventConnClosed, Conn: c.id})
		return nil
	case typeSessionTicket:
		s.emit(Event{Kind: EventSessionTicket, Conn: c.id,
			Data: append([]byte(nil), f.chunk...), Nonce: f.nonce,
			MaxEarly: f.maxEarly})
		return nil
	default:
		return fmt.Errorf("core: unhandled control type %#x", uint8(f.typ))
	}
}

// handleAck advances the peer-acked watermark and trims the retransmit
// buffer (Fig. 4's sender-side bookkeeping). Trimmed records double as
// the path-metrics signal: their bytes leave flight, and the newest
// cleanly-acked record yields an RTT sample (retransmits are skipped —
// Karn's algorithm — since their ack could belong to either copy).
func (s *Session) handleAck(f *frame) error {
	st, err := s.getStream(f.id)
	if err != nil {
		// Acks may race stream teardown; ignore unknown streams.
		return nil
	}
	s.stats.AcksReceived++
	s.trace("ack_received", st.conn, f.id, f.seq, 0)
	if s.tel != nil {
		if hc, ok := s.conns[st.conn]; ok {
			hc.tel.AcksReceived.Inc()
		}
	}
	if f.seq > st.peerAcked {
		st.peerAcked = f.seq
	}
	i := 0
	ackedBytes := 0
	var rttSample time.Duration
	for i < len(st.retransmit) && st.retransmit[i].seq < st.peerAcked {
		r := &st.retransmit[i]
		ackedBytes += len(r.payload)
		if r.retxCount == 0 && !r.sentAt.IsZero() {
			if d := s.lastNow.Sub(r.sentAt); d > 0 {
				rttSample = d
			}
		}
		// The acknowledgment completes this record's lifecycle span, and
		// its pooled payload copy goes back to the arena.
		s.traceSpan(st.conn, st.id, r)
		r.buf.Release()
		r.buf = nil
		r.payload = nil
		i++
	}
	if i > 0 {
		st.retransmit = append(st.retransmit[:0], st.retransmit[i:]...)
		st.retransmitBytes -= ackedBytes
		s.noteRetransmitBytes(-ackedBytes)
		// Progress re-arms the budget machinery: a parked stream whose
		// buffer dropped back under budget seals again at the next
		// flush, and a fresh solicitation may go out if it fills again.
		st.ackSolicited = false
		if budget := s.cfg.maxRetransmitBytes(); budget <= 0 || st.retransmitBytes < budget {
			st.budgetTripped = false
		}
		if s.tel != nil && rttSample > 0 {
			s.tel.AckRTT.Observe(rttSample.Seconds())
		}
		if s.metrics != nil {
			s.metrics.OnAcked(st.conn, ackedBytes, rttSample, s.lastNow)
		}
		if s.pathSched != nil {
			s.pathSched.OnAcked(st.conn, ackedBytes, rttSample)
		}
	}
	return nil
}

// handleStreamAttach installs a peer-initiated stream, or re-homes an
// existing stream's receive context onto this connection (failover).
func (s *Session) handleStreamAttach(c *conn, f *frame) error {
	if st, ok := s.streams[f.id]; ok {
		// Existing stream moving here (failover path). Attach the recv
		// context to this conn's demux; detach from the old conn only if
		// that conn is dead. A live old conn can still have records for
		// this stream in flight (both sides failing over concurrently can
		// momentarily disagree on the target), and detaching under them
		// turns each one into a failed decrypt. Trial decryption is
		// per-conn, so a context attached to two live conns is harmless.
		old, hadOld := s.conns[st.conn]
		if hadOld && old != c && (old.failed || old.closed) {
			old.demux.Detach(f.id)
		}
		if c.demux.Context(f.id) == nil {
			// Attach an independent clone rather than the shared context:
			// the old connection (when live) keeps its own sequence
			// counter for late in-flight records, while the upcoming SYNC
			// resets only this connection's clone to the replay's resume
			// point. A single shared counter would make one side's
			// arrivals unauthenticatable.
			nc := st.recvCtx.Clone(st.recvCtx.Seq())
			c.demux.Attach(nc)
			st.recvCtx = nc
		}
		if hadOld && old != c && old.failed {
			// The peer moved this stream off a dead connection before we
			// acted on the failure ourselves (the FAILOVER notice in the
			// same batch marked it failed). Our send side must follow
			// with the same SYNC + replay, or our unacknowledged records
			// die with the old connection. ATTACH + SYNC go out now; the
			// record replay is deferred to the end of the Receive batch so
			// replays for sibling streams merge in aggregation-sequence
			// order (Receive flushes via flushPendingReplay).
			if err := s.failoverStreamPrep(st, c); err != nil {
				return err
			}
			s.pendingReplay = append(s.pendingReplay, streamReplay{st: st, from: old.id})
			return nil
		}
		st.conn = c.id
		return nil
	}
	st, err := s.installStream(f.id, c.id)
	if err != nil {
		return err
	}
	_ = st
	s.trace("stream_attached", c.id, f.id, 0, 0)
	s.emit(Event{Kind: EventStreamOpen, Stream: f.id, Conn: c.id})
	return nil
}

func (s *Session) handleStreamDetach(c *conn, f *frame) error {
	st, ok := s.streams[f.id]
	if !ok {
		return nil
	}
	c.demux.Detach(f.id)
	_ = st
	return nil
}

// handleStreamFin records the peer's final sequence for a stream.
func (s *Session) handleStreamFin(c *conn, f *frame) error {
	st, err := s.getStream(f.id)
	if err != nil {
		return nil
	}
	st.peerFin = true
	st.peerFinalSeq = f.seq
	s.trace("stream_fin", c.id, f.id, f.seq, 0)
	// Final ack so the peer can drain its retransmit buffer.
	if s.cfg.EnableFailover && st.recvSinceAck > 0 {
		s.sendAck(c, st)
	}
	s.emit(Event{Kind: EventStreamFin, Stream: f.id, Conn: c.id})
	return nil
}

// handleAckRequest answers a peer's ACK solicitation with an immediate
// cumulative acknowledgment (lost-ACK recovery: the peer's retransmit
// buffer is approaching its budget and cannot wait out our batching
// policy). Without failover no acks flow at all, so the request is
// ignored rather than answered inconsistently.
func (s *Session) handleAckRequest(c *conn, f *frame) error {
	st, err := s.getStream(f.id)
	if err != nil {
		return nil // requests may race stream teardown
	}
	s.trace("ack_requested", c.id, f.id, st.recvCtx.Seq(), 0)
	if s.cfg.EnableFailover {
		s.sendAck(c, st)
	}
	return nil
}

// Bounds on eBPF congestion-controller reassembly (§4.4): real CC
// bytecode is a few KiB, so a megabyte of program across a few
// thousand chunks is generous — and a forged header can no longer make
// a single record allocate unbounded reassembly state.
const (
	maxBPFProgLen = 1 << 20
	maxBPFChunks  = 4096
)

// handleBPFChunk reassembles an eBPF congestion-controller program.
// Header fields are validated against each other before any allocation:
// chunkCount and progLen come off the wire and sized buffers must never
// outrun what a legitimate sender could have produced.
func (s *Session) handleBPFChunk(c *conn, f *frame) error {
	count := int(f.chunkCount)
	switch {
	case count == 0 || count > maxBPFChunks:
		return ErrBadFrame
	case f.progLen > maxBPFProgLen:
		return ErrBadFrame
	case int(f.progLen) < count-1:
		// count chunks with all but the last non-empty need at least
		// count-1 bytes of program.
		return ErrBadFrame
	}
	if s.bpfChunks == nil || s.bpfTotal != count || s.bpfProgLen != f.progLen {
		s.bpfChunks = make([][]byte, count)
		s.bpfGot = 0
		s.bpfBytes = 0
		s.bpfTotal = count
		s.bpfProgLen = f.progLen
	}
	idx := int(f.chunkIdx)
	if idx >= s.bpfTotal {
		return ErrBadFrame
	}
	if s.bpfChunks[idx] == nil {
		if s.bpfBytes+len(f.chunk) > int(s.bpfProgLen) {
			// Chunks claim more bytes than the advertised program
			// length: drop the whole reassembly, not just this chunk.
			s.bpfChunks = nil
			return ErrBadFrame
		}
		s.bpfChunks[idx] = append([]byte(nil), f.chunk...)
		s.bpfGot++
		s.bpfBytes += len(f.chunk)
	}
	if s.bpfGot < s.bpfTotal {
		return nil
	}
	var prog []byte
	for _, ch := range s.bpfChunks {
		prog = append(prog, ch...)
	}
	s.bpfChunks = nil
	if len(prog) != int(s.bpfProgLen) {
		return ErrBadFrame
	}
	s.emit(Event{Kind: EventBPFCC, Conn: c.id, Data: prog})
	return nil
}
