package core

import (
	"fmt"
	"time"

	"tcpls/internal/record"
	"tcpls/internal/telemetry"
)

// stream is per-stream state. Streams are bidirectional and attached to
// exactly one TCP connection at a time (paper §3.3.1); only Failover
// moves an existing stream between connections.
type stream struct {
	id   uint32
	conn uint32

	// Send side.
	sendCtx    *record.StreamContext
	pendingQ   byteQueue    // application bytes not yet sealed
	retransmit []sentRecord // sealed but unacknowledged (failover only)
	peerAcked  uint64       // next seq the peer has NOT acknowledged
	coupled    bool
	finQueued  bool
	finSent    bool
	// framedBytes counts bytes cut into sealJobs during the current
	// flush's framing pass but not yet sealed; retransmitParked charges
	// them against the budget so framing stops exactly where the old
	// per-record seal loop did. Reset to zero after every sealBatch.
	framedBytes int
	// retransmitBytes sums payload bytes across retransmit — the
	// stream's charge against Config.MaxRetransmitBytes. budgetTripped
	// marks that sealing is parked at the budget (one flowctl_limit
	// trace per excursion); ackSolicited marks an AckRequest in flight,
	// cleared when an ack trims the buffer.
	retransmitBytes int
	budgetTripped   bool
	ackSolicited    bool
	// pendingSince stamps when the oldest unflushed bytes entered
	// pending — the enqueue leg of the record-lifecycle span. Re-stamped
	// whenever Write finds the queue empty.
	pendingSince time.Time

	// Receive side. The receive context lives in the owning conn's
	// demux; recvCtx duplicates the pointer for direct access.
	recvCtx *record.StreamContext
	recvQ   byteQueue
	// recvBlocked: recvQ hit Config.MaxRecvBufferBytes; reported
	// through RecvPaused until Read drains below half the cap.
	recvBlocked    bool
	nextDeliverSeq uint64 // duplicate filter across failover replays
	recvSinceAck   int
	bytesSinceAck  int
	peerFin        bool
	peerFinalSeq   uint64

	// tel holds the per-stream byte counters; non-nil exactly when the
	// session's telemetry is installed.
	tel *telemetry.StreamMetrics
}

// sentRecord is one record buffered for potential failover replay. It
// doubles as the record's lifecycle span: enqAt/sentAt/writtenAt are the
// enqueue, seal, and socket-write legs, and the acknowledgment that
// trims the record completes the span (trace.go traceSpan).
type sentRecord struct {
	seq uint64
	typ recordType
	// payload aliases buf's storage when buf is non-nil; buf is the
	// pooled, refcounted retransmit copy (shared across PickAll
	// replicas), released when an ack trims the record or the session
	// tears down (ReleaseBuffers).
	payload []byte
	buf     *record.Buf
	aggSeq  uint64
	// sentAt stamps the seal time for ACK-driven RTT sampling and the
	// span's seal leg; retxCount counts failover replays — a nonzero
	// count bars the record from RTT sampling (Karn's algorithm, either
	// copy could have produced the ack) and is the span's replay
	// provenance.
	sentAt    time.Time
	enqAt     time.Time
	writtenAt time.Time
	origConn  uint32
	retxCount uint16
}

// stampWritten records the socket-write time of the record with seq.
// retransmit is seq-sorted; the scan runs from the back because the
// just-written records are the newest. A replay's stamp overwrites the
// original — the span reports the final successful write.
func (st *stream) stampWritten(seq uint64, now time.Time) {
	for i := len(st.retransmit) - 1; i >= 0; i-- {
		r := &st.retransmit[i]
		if r.seq == seq {
			r.writtenAt = now
			return
		}
		if r.seq < seq {
			return
		}
	}
}

// CreateStream opens a new locally-initiated stream attached to connID
// and announces it to the peer. It returns the new stream ID.
func (s *Session) CreateStream(connID uint32) (uint32, error) {
	c, err := s.getConn(connID)
	if err != nil {
		return 0, err
	}
	if c.failed || c.closed {
		return 0, ErrConnFailed
	}
	id := s.nextStreamID
	s.nextStreamID += 2
	st, err := s.installStream(id, connID)
	if err != nil {
		return 0, err
	}
	if err := s.sendCtl(c, appendStreamAttach(nil, id)); err != nil {
		return 0, err
	}
	c.attached[id] = true
	_ = st
	return id, nil
}

// InjectEarlyData delivers a 0-RTT payload the handshake layer accepted
// (server side): the client's early flight becomes the first readable
// bytes of the client's first stream, before any engine record arrives.
// The stream is installed with fresh application-secret contexts at
// sequence zero, exactly where the client's post-handshake records for
// the same stream will start; the client's later STREAM_ATTACH finds
// the stream already present and re-homes it harmlessly.
func (s *Session) InjectEarlyData(data []byte) (uint32, error) {
	if s.role != RoleServer {
		return 0, fmt.Errorf("core: early data injection is server-side only")
	}
	id := firstClientStream
	st, err := s.installStream(id, 0)
	if err != nil {
		return 0, err
	}
	st.recvQ.Append(data)
	s.trace("early_data_accepted", 0, id, 0, len(data))
	s.emit(Event{Kind: EventStreamOpen, Stream: id, Conn: 0})
	if len(data) > 0 {
		s.emit(Event{Kind: EventStreamData, Stream: id, Conn: 0})
	}
	return id, nil
}

// installStream builds both directions' contexts for stream id and
// registers the receive side with connID's demux.
func (s *Session) installStream(id, connID uint32) (*stream, error) {
	if _, exists := s.streams[id]; exists {
		return nil, fmt.Errorf("core: stream %d already exists", id)
	}
	c, err := s.getConn(connID)
	if err != nil {
		return nil, err
	}
	st := &stream{id: id, conn: connID}
	st.tel = s.tel.Stream(id) // nil-safe: nil SessionMetrics yields nil handles
	if st.sendCtx, err = s.newContext(s.sendSecret, id); err != nil {
		return nil, err
	}
	if st.recvCtx, err = s.newContext(s.recvSecret, id); err != nil {
		return nil, err
	}
	c.demux.Attach(st.recvCtx)
	s.streams[id] = st
	s.telSyncGauges()
	return st, nil
}

// Streams returns the IDs of all open streams.
func (s *Session) Streams() []uint32 {
	out := make([]uint32, 0, len(s.streams))
	for id := range s.streams {
		out = append(out, id)
	}
	return out
}

// StreamsOnConn returns the IDs of streams attached to connID.
func (s *Session) StreamsOnConn(connID uint32) []uint32 {
	var out []uint32
	for id, st := range s.streams {
		if st.conn == connID {
			out = append(out, id)
		}
	}
	return out
}

// StreamConn returns the connection a stream is attached to.
func (s *Session) StreamConn(streamID uint32) (uint32, error) {
	st, err := s.getStream(streamID)
	if err != nil {
		return 0, err
	}
	return st.conn, nil
}

// Write queues application bytes on a stream. Bytes are framed into
// records and encrypted at the next Flush.
func (s *Session) Write(streamID uint32, data []byte) (int, error) {
	st, err := s.getStream(streamID)
	if err != nil {
		return 0, err
	}
	if st.finQueued {
		return 0, ErrStreamFinished
	}
	// Hard retransmit cap: a stream parked at its budget (waiting on
	// ACKs) still accepts up to one further budget's worth of pending
	// bytes, then Write errors instead of queueing without bound.
	if budget := s.cfg.maxRetransmitBytes(); budget > 0 &&
		st.retransmitBytes >= budget && st.pendingQ.Len()+len(data) > budget {
		return 0, fmt.Errorf("stream %d: %w", streamID, ErrRetransmitBudget)
	}
	if st.pendingQ.Len() == 0 {
		st.pendingSince = s.now()
	}
	st.pendingQ.Append(data)
	return len(data), nil
}

// Read drains buffered in-order bytes from a stream.
func (s *Session) Read(streamID uint32, p []byte) (int, error) {
	st, err := s.getStream(streamID)
	if err != nil {
		return 0, err
	}
	n := st.recvQ.ReadInto(p)
	// Backpressure hysteresis: resume socket reads once the buffer has
	// drained below half its cap, not on the first byte read.
	if st.recvBlocked && st.recvQ.Len() <= s.cfg.maxRecvBytes()/2 {
		st.recvBlocked = false
	}
	return n, nil
}

// Readable returns the number of buffered readable bytes on a stream.
func (s *Session) Readable(streamID uint32) int {
	st, ok := s.streams[streamID]
	if !ok {
		return 0
	}
	return st.recvQ.Len()
}

// PeerFinished reports whether the peer finished the stream and all its
// data has been read.
func (s *Session) PeerFinished(streamID uint32) bool {
	st, ok := s.streams[streamID]
	return ok && st.peerFin && st.recvQ.Len() == 0 &&
		st.recvCtx.Seq() >= st.peerFinalSeq
}

// FinishStream marks the local send side of a stream as done; the FIN
// control record goes out with the next Flush, after all queued data.
func (s *Session) FinishStream(streamID uint32) error {
	st, err := s.getStream(streamID)
	if err != nil {
		return err
	}
	if st.finQueued {
		return ErrStreamFinished
	}
	st.finQueued = true
	return nil
}

// SetCoupled flags a stream as part of the session's coupled group
// (§3.3.3): its records carry aggregation sequence numbers and the
// receiver delivers the coupled group's bytes in aggregate order.
func (s *Session) SetCoupled(streamID uint32, coupled bool) error {
	st, err := s.getStream(streamID)
	if err != nil {
		return err
	}
	st.coupled = coupled
	return nil
}

// coupledStreams lists coupled streams in deterministic (creation) order.
func (s *Session) coupledStreams() []*stream {
	var out []*stream
	for _, id := range s.sortedStreamIDs() {
		if st := s.streams[id]; st.coupled && !st.finSent {
			out = append(out, st)
		}
	}
	return out
}

// WriteCoupled queues bytes on the coupled group; records are spread
// across the coupled streams (and hence their connections) by the
// scheduler at Flush time.
func (s *Session) WriteCoupled(data []byte) (int, error) {
	cs := s.coupledStreams()
	if len(cs) == 0 {
		return 0, ErrNotCoupled
	}
	// Hard retransmit cap for the group: only when EVERY coupled stream
	// is parked at its budget does further queueing error — while any
	// path still has budget, Flush can drain onto it.
	if budget := s.cfg.maxRetransmitBytes(); budget > 0 &&
		s.coupled.pendingQ.Len()+len(data) > budget {
		allParked := true
		for _, st := range cs {
			if st.retransmitBytes < budget {
				allParked = false
				break
			}
		}
		if allParked {
			return 0, fmt.Errorf("coupled group: %w", ErrRetransmitBudget)
		}
	}
	// Queue on the group: stash bytes on the shared group queue; Flush
	// distributes per record.
	if s.coupled.pendingQ.Len() == 0 {
		s.coupled.pendingSince = s.now()
	}
	s.coupled.pendingQ.Append(data)
	return len(data), nil
}

// ReadCoupled drains in-order bytes delivered by the coupled group.
func (s *Session) ReadCoupled(p []byte) int {
	n := s.coupled.recvQ.ReadInto(p)
	if s.coupled.recvBlocked && s.coupled.recvQ.Len() <= s.cfg.maxRecvBytes()/2 {
		s.coupled.recvBlocked = false
	}
	return n
}

// CoupledReadable returns buffered coupled bytes.
func (s *Session) CoupledReadable() int { return s.coupled.recvQ.Len() }

// CoupledActive reports whether any stream is currently coupled (so a
// receiver knows to read the aggregate instead of individual streams).
func (s *Session) CoupledActive() bool {
	for _, st := range s.streams {
		if st.coupled {
			return true
		}
	}
	return false
}
