package core

import (
	"testing"
	"time"
)

// These tests are the datapath pool's acceptance gate (DESIGN.md §16):
// once the buffer arena, byte queues, and scratch fields are warm, a
// steady-state 64 KiB send or receive op must not allocate at all. CI
// runs them alongside the BenchmarkDatapath* smoke job; a regression
// here means a buffer escaped the pool or a hot-path struct started
// heap-escaping again.

func TestDatapathSendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are nondeterministic")
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"failover=off", Config{}},
		{"failover=on", Config{EnableFailover: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, id := newDatapathPair(t, tc.cfg)
			payload := make([]byte, datapathBenchBytes)
			op := func() {
				if _, err := p.sender.Write(id, payload); err != nil {
					t.Fatal(err)
				}
				p.shuttle(t)
			}
			// Warm the pools: first ops allocate arena buffers, queue
			// storage, and retransmit slices that are reused afterwards.
			for i := 0; i < 32; i++ {
				op()
			}
			if avg := testing.AllocsPerRun(100, op); avg != 0 {
				t.Fatalf("steady-state send: %.2f allocs/op, want 0", avg)
			}
		})
	}
}

func TestDatapathRecvZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items; alloc counts are nondeterministic")
	}
	p, id := newDatapathPair(t, Config{})
	now := time.Unix(1000, 0)
	payload := make([]byte, datapathBenchBytes)
	if _, err := p.sender.Write(id, payload); err != nil {
		t.Fatal(err)
	}
	if err := p.sender.Flush(); err != nil {
		t.Fatal(err)
	}
	batch, err := p.sender.Outgoing(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := p.receiver.streams[id].recvCtx
	startSeq := ctx.Seq()
	buf := make([]byte, len(batch))
	op := func() {
		// In-place decrypt destroys buf; replay from the pristine batch
		// and rewind the context plus the duplicate filter.
		copy(buf, batch)
		ctx.SetSeq(startSeq)
		p.receiver.streams[id].nextDeliverSeq = startSeq
		if err := p.receiver.Receive(0, buf, now); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		op()
	}
	if avg := testing.AllocsPerRun(100, op); avg != 0 {
		t.Fatalf("steady-state receive: %.2f allocs/op, want 0", avg)
	}
}

// TestDatapathPoolBalance asserts the arena's books close: after the
// session releases its retransmit buffers, every payload Buf the pool
// handed out has come back (gets == puts), and likewise for the chunk
// pool behind Outgoing/RecycleOutgoing. A leak here means a record
// escaped the refcount protocol.
func TestDatapathPoolBalance(t *testing.T) {
	p, id := newDatapathPair(t, Config{EnableFailover: true})
	payload := make([]byte, datapathBenchBytes)
	for i := 0; i < 64; i++ {
		if _, err := p.sender.Write(id, payload); err != nil {
			t.Fatal(err)
		}
		p.shuttle(t)
	}
	p.sender.ReleaseBuffers()
	p.receiver.ReleaseBuffers()
	for _, s := range []struct {
		name string
		sess *Session
	}{{"sender", p.sender}, {"receiver", p.receiver}} {
		st := s.sess.PoolStats()
		if st.PayloadGets != st.PayloadPuts {
			t.Errorf("%s payload pool unbalanced: %d gets, %d puts",
				s.name, st.PayloadGets, st.PayloadPuts)
		}
		if st.ChunkGets != st.ChunkPuts {
			t.Errorf("%s chunk pool unbalanced: %d gets, %d puts",
				s.name, st.ChunkGets, st.ChunkPuts)
		}
	}
}
