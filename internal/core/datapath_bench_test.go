// Datapath benchmarks (DESIGN.md §16): steady-state engine send and
// receive cost with the socket out of the picture — records framed,
// sealed, drained, opened, and acknowledged between two in-memory
// engines. The allocs/op figures here are the pool's acceptance gate
// (see also TestDatapathSendZeroAlloc / TestDatapathRecvZeroAlloc):
//
//	go test -bench=Datapath -benchmem ./internal/core/
package core

import (
	"testing"
	"time"
)

const datapathBenchBytes = 64 << 10 // one op = 64 KiB through the engine

// datapathPair is a minimal sender/receiver engine pair for benchmarks
// (no *testing.T plumbing, no per-op allocations of its own).
type datapathPair struct {
	sender   *Session
	receiver *Session
	now      time.Time
}

func newDatapathPair(b testing.TB, cfg Config) (*datapathPair, uint32) {
	sec := testSecrets(b)
	p := &datapathPair{
		sender:   NewSession(RoleClient, sec, cfg),
		receiver: NewSession(RoleServer, sec, cfg),
		now:      time.Unix(1000, 0),
	}
	if err := p.sender.AddConnection(0, p.now); err != nil {
		b.Fatal(err)
	}
	if err := p.receiver.AddConnection(0, p.now); err != nil {
		b.Fatal(err)
	}
	// Discard delivery: the zero-copy callback path (§4.1), so receive
	// cost is deframe + open, not buffer management.
	p.receiver.DeliverData = func(uint32, []byte) {}
	id, err := p.sender.CreateStream(0)
	if err != nil {
		b.Fatal(err)
	}
	p.shuttle(b)
	return p, id
}

// shuttle moves pending bytes both ways until quiescent, recycling every
// drained chunk.
func (p *datapathPair) shuttle(b testing.TB) {
	for moved := true; moved; {
		moved = false
		for _, dir := range []struct{ from, to *Session }{
			{p.sender, p.receiver}, {p.receiver, p.sender},
		} {
			if err := dir.from.Flush(); err != nil && err != ErrNotCoupled {
				b.Fatal(err)
			}
			out, err := dir.from.Outgoing(0)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 {
				continue
			}
			moved = true
			if err := dir.to.Receive(0, out, p.now); err != nil {
				b.Fatal(err)
			}
			dir.from.RecycleOutgoing(out)
		}
	}
}

// BenchmarkDatapathSend measures the steady-state send path: Write →
// Flush (frame + seal) → Outgoing → recycle, with the receiver opening
// records and acking (failover variant) so retransmit buffers trim and
// the loop reaches a true steady state.
func BenchmarkDatapathSend(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"failover=off", Config{}},
		{"failover=on", Config{EnableFailover: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p, id := newDatapathPair(b, tc.cfg)
			payload := make([]byte, datapathBenchBytes)
			b.SetBytes(datapathBenchBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.sender.Write(id, payload); err != nil {
					b.Fatal(err)
				}
				p.shuttle(b)
			}
		})
	}
}

// BenchmarkDatapathRecv isolates the receive path: records are sealed
// once outside the timed loop, then replayed into a fresh receiver demux
// per batch via cloned contexts — deframe + trial decrypt + dispatch,
// delivered through the zero-copy callback.
func BenchmarkDatapathRecv(b *testing.B) {
	cfg := Config{}
	sec := testSecrets(b)
	sender := NewSession(RoleClient, sec, cfg)
	receiver := NewSession(RoleServer, sec, cfg)
	now := time.Unix(1000, 0)
	if err := sender.AddConnection(0, now); err != nil {
		b.Fatal(err)
	}
	if err := receiver.AddConnection(0, now); err != nil {
		b.Fatal(err)
	}
	receiver.DeliverData = func(uint32, []byte) {}
	id, err := sender.CreateStream(0)
	if err != nil {
		b.Fatal(err)
	}
	out, err := sender.Outgoing(0)
	if err != nil {
		b.Fatal(err)
	}
	if err := receiver.Receive(0, out, now); err != nil {
		b.Fatal(err)
	}
	sender.RecycleOutgoing(out)

	// Pre-seal one 64 KiB batch; replaying it requires rewinding the
	// receive context each iteration.
	payload := make([]byte, datapathBenchBytes)
	if _, err := sender.Write(id, payload); err != nil {
		b.Fatal(err)
	}
	if err := sender.Flush(); err != nil {
		b.Fatal(err)
	}
	batch, err := sender.Outgoing(0)
	if err != nil {
		b.Fatal(err)
	}
	recs := int(sender.Stats().RecordsSent) - 1 // minus the ATTACH ctl record
	ctx := receiver.streams[id].recvCtx
	startSeq := ctx.Seq()
	buf := make([]byte, len(batch))
	b.SetBytes(datapathBenchBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The receiver decrypts in place; replay from a pristine copy and
		// rewind the context and duplicate filter.
		copy(buf, batch)
		ctx.SetSeq(startSeq)
		receiver.streams[id].nextDeliverSeq = startSeq
		if err := receiver.Receive(0, buf, now); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := int(receiver.Stats().RecordsReceived); got < recs*b.N {
		b.Fatalf("receiver opened %d records, want >= %d", got, recs*b.N)
	}
}
