package netem

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startSink runs a TCP server that echoes everything.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func TestForwardingIntact(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("shaped"), 10000)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("relay corrupted data")
	}
}

func TestDelayApplied(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{Delay: 20 * time.Millisecond}, Profile{Delay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Errorf("rtt %v, want >= 40ms", rtt)
	}
}

func TestRateLimitApplied(t *testing.T) {
	addr := startEcho(t)
	// 8 Mbps = 1 MB/s each way.
	r, err := NewRelay(addr, Profile{RateBps: 8_000_000}, Profile{RateBps: 8_000_000})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 1 MiB echo: the two directions pipeline, so the wall time is the
	// serialization time of the slower leg, ~1 s at 1 MB/s.
	size := 1 << 20
	go c.Write(make([]byte, size))
	start := time.Now()
	if _, err := io.ReadFull(c, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 900*time.Millisecond {
		t.Errorf("1 MiB echo at 8 Mbps took %v, want >= ~1s", elapsed)
	}
}

func TestBlackholeKillsConnections(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("x"))
	io.ReadFull(c, make([]byte, 1))
	r.Blackhole()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived blackhole")
	}
	// New connections die immediately too (accept loop closes them).
	c2, err := net.Dial("tcp", r.Addr())
	if err == nil {
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c2.Read(make([]byte, 1)); err == nil {
			t.Fatal("new connection worked through blackhole")
		}
		c2.Close()
	}
	r.Restore()
	c3, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	go c3.Write([]byte("back"))
	buf := make([]byte, 4)
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c3, buf); err != nil {
		t.Fatalf("restore did not work: %v", err)
	}
}
