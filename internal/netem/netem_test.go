package netem

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startSink runs a TCP server that echoes everything.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	return ln.Addr().String()
}

func TestForwardingIntact(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("shaped"), 10000)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("relay corrupted data")
	}
}

func TestDelayApplied(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{Delay: 20 * time.Millisecond}, Profile{Delay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Errorf("rtt %v, want >= 40ms", rtt)
	}
}

func TestRateLimitApplied(t *testing.T) {
	addr := startEcho(t)
	// 8 Mbps = 1 MB/s each way.
	r, err := NewRelay(addr, Profile{RateBps: 8_000_000}, Profile{RateBps: 8_000_000})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 1 MiB echo: the two directions pipeline, so the wall time is the
	// serialization time of the slower leg, ~1 s at 1 MB/s.
	size := 1 << 20
	go c.Write(make([]byte, size))
	start := time.Now()
	if _, err := io.ReadFull(c, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 900*time.Millisecond {
		t.Errorf("1 MiB echo at 8 Mbps took %v, want >= ~1s", elapsed)
	}
}

func TestBlackholeKillsConnections(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("x"))
	io.ReadFull(c, make([]byte, 1))
	r.Blackhole()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived blackhole")
	}
	// New connections die immediately too (accept loop closes them).
	c2, err := net.Dial("tcp", r.Addr())
	if err == nil {
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c2.Read(make([]byte, 1)); err == nil {
			t.Fatal("new connection worked through blackhole")
		}
		c2.Close()
	}
	r.Restore()
	c3, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	go c3.Write([]byte("back"))
	buf := make([]byte, 4)
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c3, buf); err != nil {
		t.Fatalf("restore did not work: %v", err)
	}
}

func TestRSTAbortsConnections(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("x"))
	io.ReadFull(c, make([]byte, 1))
	r.RST()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded after RST")
	}
	// The abort kills both directions (unlike a half-close): writes into
	// the reset socket must start failing too.
	writeDead := false
	for i := 0; i < 50 && !writeDead; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			writeDead = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !writeDead {
		t.Fatal("writes kept succeeding after RST")
	}
	// Unlike Blackhole, new connections still work after an RST.
	c2, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	go c2.Write([]byte("ok"))
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, make([]byte, 2)); err != nil {
		t.Fatalf("new connection after RST: %v", err)
	}
}

func TestStallFreezesAndUnstallResumes(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("a"))
	io.ReadFull(c, make([]byte, 1))

	r.Stall()
	c.Write([]byte("b"))
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("bytes flowed through a stalled relay")
	}
	// The socket is still open — a stall is not a close.
	r.Unstall()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatalf("unstall did not resume: %v", err)
	}
}

func TestKillAfterCutsAtExactByte(t *testing.T) {
	// A plain sink (no echo) so the byte budget is consumed by one
	// direction only and the cut point is deterministic.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan int, 1)
	go func() {
		s, err := ln.Accept()
		if err != nil {
			return
		}
		n, _ := io.Copy(io.Discard, s)
		s.Close()
		received <- int(n)
	}()

	r, err := NewRelay(ln.Addr().String(), Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Prime the relay's conn tracking, then arm the bomb.
	if _, err := c.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	r.KillAfter(2000)
	// Push well past the budget; the relay must forward exactly 2000 more
	// bytes and then RST everything.
	go func() {
		for i := 0; i < 100; i++ {
			if _, err := c.Write(make([]byte, 1000)); err != nil {
				return
			}
		}
	}()
	select {
	case n := <-received:
		if n != 3000 {
			t.Fatalf("server received %d bytes, want exactly 3000 (1000 + 2000 budget)", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("kill never fired")
	}
}

func TestHalfCloseIsDirectional(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvGot := make(chan []byte, 1)
	go func() {
		s, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		n, _ := s.Read(buf)
		srvGot <- buf[:n]
		// Keep the server->client direction quiet; the test only needs
		// the client to observe EOF while its writes still flow.
		time.Sleep(2 * time.Second)
		s.Close()
	}()

	r, err := NewRelay(ln.Addr().String(), Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	<-srvGot
	r.HalfClose()
	// Client sees EOF: the server "stopped sending".
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after half-close = %v, want io.EOF", err)
	}
	// But client->server still flows.
	go func() {
		s2, err := net.Dial("tcp", r.Addr()) // unrelated; keeps Accept loop sane
		if err == nil {
			s2.Close()
		}
	}()
	if _, err := c.Write([]byte("post")); err != nil {
		t.Fatalf("client->server direction died with the half-close: %v", err)
	}
}

func TestRunScheduleOrdersAndAborts(t *testing.T) {
	addr := startEcho(t)
	r, err := NewRelay(addr, Profile{}, Profile{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("x"))
	io.ReadFull(c, make([]byte, 1))

	// Faults given out of order: blackhole at 30ms, restore at 80ms.
	done := r.RunSchedule([]Fault{
		{At: 80 * time.Millisecond, Kind: FaultRestore},
		{At: 30 * time.Millisecond, Kind: FaultBlackhole},
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("schedule never finished")
	}
	// After the script, the relay must be restored: new dials work.
	c2, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	go c2.Write([]byte("ok"))
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c2, make([]byte, 2)); err != nil {
		t.Fatalf("relay not restored after schedule: %v", err)
	}
	// And the original conn died during the blackhole window.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("old connection survived the scheduled blackhole")
	}

	// A pending schedule aborts when the relay closes.
	done2 := r.RunSchedule([]Fault{{At: time.Hour, Kind: FaultRST}})
	r.Close()
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		t.Fatal("schedule did not abort on relay close")
	}
}
