// Package netem provides real-time link emulation over net.Conn — a
// lightweight tc-netem stand-in used by the runnable examples to shape
// loopback TCP into "a 25 Mbps path with 20 ms RTT" so multipath
// behaviour is observable on one machine.
//
// The shaping wraps a TCP relay: dial the relay instead of the server
// and every byte pays the configured rate and delay in each direction.
package netem

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes one direction's link behaviour.
type Profile struct {
	// RateBps limits throughput in bits per second (0 = unlimited).
	RateBps int64
	// Delay adds one-way latency.
	Delay time.Duration
	// QueueLen bounds the bottleneck queue in read chunks (up to 16 KiB
	// each); 0 means the default of 8. A shallow queue propagates TCP
	// backpressure to the sender sooner, like a shallow-buffered
	// bottleneck router.
	QueueLen int
}

// Relay is a shaping TCP forwarder.
type Relay struct {
	ln      net.Listener
	target  string
	c2s     Profile
	s2c     Profile
	dropped atomic.Bool // when set, new and existing conns are killed
	conns   sync.Map    // net.Conn -> struct{}
}

// NewRelay starts a shaping relay toward target.
func NewRelay(target string, c2s, s2c Profile) (*Relay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &Relay{ln: ln, target: target, c2s: c2s, s2c: s2c}
	go r.accept()
	return r, nil
}

// Addr returns the relay's dialable address.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Close stops the relay and closes all forwarded connections.
func (r *Relay) Close() error {
	err := r.ln.Close()
	r.conns.Range(func(k, _ interface{}) bool {
		k.(net.Conn).Close()
		return true
	})
	return err
}

// Blackhole kills all current connections and refuses new ones — the
// examples' outage switch.
func (r *Relay) Blackhole() {
	r.dropped.Store(true)
	r.conns.Range(func(k, _ interface{}) bool {
		k.(net.Conn).Close()
		return true
	})
}

// Restore re-enables forwarding for new connections.
func (r *Relay) Restore() { r.dropped.Store(false) }

func (r *Relay) accept() {
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		if r.dropped.Load() {
			c.Close()
			continue
		}
		go r.handle(c)
	}
}

func (r *Relay) handle(client net.Conn) {
	server, err := net.Dial("tcp", r.target)
	if err != nil {
		client.Close()
		return
	}
	r.conns.Store(client, struct{}{})
	r.conns.Store(server, struct{}{})
	defer func() {
		r.conns.Delete(client)
		r.conns.Delete(server)
		client.Close()
		server.Close()
	}()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); shapePump(client, server, r.c2s) }()
	go func() { defer wg.Done(); shapePump(server, client, r.s2c) }()
	wg.Wait()
}

// shapePump forwards src→dst applying rate and delay.
func shapePump(src, dst net.Conn, p Profile) {
	type chunk struct {
		data  []byte
		dueAt time.Time
	}
	// A small queue keeps the shaper from absorbing megabytes of the
	// sender's data: when the shaped rate falls behind, reads stall and
	// TCP backpressure propagates to the sender (as a real bottleneck
	// queue would).
	qlen := p.QueueLen
	if qlen <= 0 {
		qlen = 8
	}
	ch := make(chan chunk, qlen)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range ch {
			if d := time.Until(c.dueAt); d > 0 {
				time.Sleep(d)
			}
			if _, err := dst.Write(c.data); err != nil {
				return
			}
		}
	}()

	buf := make([]byte, 16<<10)
	// sendAt models serialization: the time the last byte finishes
	// transmitting at RateBps.
	sendAt := time.Now()
	for {
		n, err := src.Read(buf)
		if n > 0 {
			data := append([]byte(nil), buf[:n]...)
			now := time.Now()
			if sendAt.Before(now) {
				sendAt = now
			}
			if p.RateBps > 0 {
				sendAt = sendAt.Add(time.Duration(int64(n) * 8 * int64(time.Second) / p.RateBps))
			}
			select {
			case ch <- chunk{data: data, dueAt: sendAt.Add(p.Delay)}:
			case <-done:
				close(ch)
				return
			}
		}
		if err != nil {
			close(ch)
			<-done
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}
