// Package netem provides real-time link emulation over net.Conn — a
// lightweight tc-netem stand-in used by the runnable examples to shape
// loopback TCP into "a 25 Mbps path with 20 ms RTT" so multipath
// behaviour is observable on one machine.
//
// The shaping wraps a TCP relay: dial the relay instead of the server
// and every byte pays the configured rate and delay in each direction.
//
// Beyond shaping, the relay is a fault-injection harness for the
// robustness tests: RST injection (abortive close with SO_LINGER 0),
// mid-stream stalls, kill-after-N-bytes, half-close, and scripted fault
// schedules combining all of them (RunSchedule).
package netem

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes one direction's link behaviour.
type Profile struct {
	// RateBps limits throughput in bits per second (0 = unlimited).
	RateBps int64
	// Delay adds one-way latency.
	Delay time.Duration
	// QueueLen bounds the bottleneck queue in read chunks (up to 16 KiB
	// each); 0 means the default of 8. A shallow queue propagates TCP
	// backpressure to the sender sooner, like a shallow-buffered
	// bottleneck router.
	QueueLen int
}

// relayConn tracks one forwarded socket and which side of the relay it
// faces, so directional faults (half-close toward the client) can pick
// their victims.
type relayConn struct {
	nc           net.Conn
	clientFacing bool
}

// Relay is a shaping TCP forwarder with fault injection.
type Relay struct {
	ln      net.Listener
	target  string
	c2s     Profile
	s2c     Profile
	dropped atomic.Bool // when set, new and existing conns are killed
	done    chan struct{}
	conns   sync.Map // net.Conn -> *relayConn

	mu      sync.Mutex
	stallCh chan struct{} // non-nil while stalled; closed by Unstall
	// killBudget counts forwarded payload bytes still allowed before the
	// relay RSTs everything; negative means disarmed.
	killBudget int64
	killArmed  bool
}

// NewRelay starts a shaping relay toward target.
func NewRelay(target string, c2s, s2c Profile) (*Relay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &Relay{ln: ln, target: target, c2s: c2s, s2c: s2c, done: make(chan struct{})}
	go r.accept()
	return r, nil
}

// Addr returns the relay's dialable address.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Close stops the relay and closes all forwarded connections.
func (r *Relay) Close() error {
	err := r.ln.Close()
	select {
	case <-r.done:
	default:
		close(r.done)
	}
	r.Unstall() // release pumps blocked on a stall gate
	r.conns.Range(func(k, _ interface{}) bool {
		k.(net.Conn).Close()
		return true
	})
	return err
}

// Blackhole kills all current connections and refuses new ones — the
// silent mid-path outage (no FIN reaches anyone on a real blackhole, but
// over loopback the close is visible; pair with Stall for true silence).
func (r *Relay) Blackhole() {
	r.dropped.Store(true)
	r.conns.Range(func(k, _ interface{}) bool {
		k.(net.Conn).Close()
		return true
	})
}

// Restore re-enables forwarding for new connections.
func (r *Relay) Restore() { r.dropped.Store(false) }

// RST aborts every forwarded connection with SO_LINGER 0, so the kernel
// sends a TCP RST instead of a FIN — the middlebox-injected-reset and
// crashed-peer failure mode. New connections are still accepted.
func (r *Relay) RST() {
	r.conns.Range(func(k, _ interface{}) bool {
		abortConn(k.(net.Conn))
		return true
	})
}

func abortConn(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	nc.Close()
}

// Stall freezes forwarding in both directions, mid-record if bytes are
// in flight: sockets stay open, nothing moves — the classic stalled-path
// failure only a timeout can detect. Unstall resumes.
func (r *Relay) Stall() {
	r.mu.Lock()
	if r.stallCh == nil {
		r.stallCh = make(chan struct{})
	}
	r.mu.Unlock()
}

// Unstall resumes forwarding after Stall.
func (r *Relay) Unstall() {
	r.mu.Lock()
	if r.stallCh != nil {
		close(r.stallCh)
		r.stallCh = nil
	}
	r.mu.Unlock()
}

// waitStall blocks while the relay is stalled. It returns false if the
// relay shut down while waiting.
func (r *Relay) waitStall() bool {
	for {
		r.mu.Lock()
		ch := r.stallCh
		r.mu.Unlock()
		if ch == nil {
			return true
		}
		select {
		case <-ch:
		case <-r.done:
			return false
		}
	}
}

// KillAfter arms a byte bomb: after n more forwarded payload bytes
// (both directions combined), every connection is RST — the
// kill-after-N-bytes fault that lands mid-transfer, typically
// mid-record.
func (r *Relay) KillAfter(n int64) {
	r.mu.Lock()
	r.killBudget = n
	r.killArmed = true
	r.mu.Unlock()
}

// consumeKillBudget accounts n forwarded bytes against an armed byte
// bomb. It returns how many of those bytes may still be forwarded and
// whether the bomb just went off. The caller must forward the allowed
// prefix and then pull the trigger (RST) itself — firing here would race
// the RST ahead of the very bytes the budget permits.
func (r *Relay) consumeKillBudget(n int) (allowed int, killed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.killArmed {
		return n, false
	}
	allowed = n
	if int64(allowed) > r.killBudget {
		allowed = int(r.killBudget)
	}
	r.killBudget -= int64(allowed)
	killed = r.killBudget <= 0
	if killed {
		r.killArmed = false
	}
	return allowed, killed
}

// HalfClose sends a FIN toward every client (the server appears to stop
// sending) while the client→server direction keeps flowing — the
// asymmetric-path failure that breaks naive "EOF means done" readers.
func (r *Relay) HalfClose() {
	r.conns.Range(func(k, v interface{}) bool {
		rc := v.(*relayConn)
		if rc.clientFacing {
			if tc, ok := rc.nc.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}
		return true
	})
}

// FaultKind enumerates scripted fault actions.
type FaultKind int

const (
	FaultRST FaultKind = iota + 1
	FaultBlackhole
	FaultRestore
	FaultStall
	FaultUnstall
	FaultHalfClose
	FaultKillAfter // Bytes carries the budget
)

// Fault is one step of a scripted schedule: at offset At from the start
// of RunSchedule, apply Kind.
type Fault struct {
	At    time.Duration
	Kind  FaultKind
	Bytes int64 // for FaultKillAfter
}

// RunSchedule plays a fault script against the relay on its own
// goroutine and closes the returned channel when the script (sorted by
// offset) has run. Closing the relay aborts the script.
func (r *Relay) RunSchedule(faults []Fault) <-chan struct{} {
	script := append([]Fault(nil), faults...)
	sort.SliceStable(script, func(i, j int) bool { return script[i].At < script[j].At })
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		start := time.Now()
		for _, f := range script {
			if d := f.At - time.Since(start); d > 0 {
				select {
				case <-time.After(d):
				case <-r.done:
					return
				}
			}
			r.apply(f)
		}
	}()
	return doneCh
}

func (r *Relay) apply(f Fault) {
	switch f.Kind {
	case FaultRST:
		r.RST()
	case FaultBlackhole:
		r.Blackhole()
	case FaultRestore:
		r.Restore()
	case FaultStall:
		r.Stall()
	case FaultUnstall:
		r.Unstall()
	case FaultHalfClose:
		r.HalfClose()
	case FaultKillAfter:
		r.KillAfter(f.Bytes)
	}
}

func (r *Relay) accept() {
	for {
		c, err := r.ln.Accept()
		if err != nil {
			return
		}
		if r.dropped.Load() {
			c.Close()
			continue
		}
		go r.handle(c)
	}
}

func (r *Relay) handle(client net.Conn) {
	server, err := net.Dial("tcp", r.target)
	if err != nil {
		client.Close()
		return
	}
	r.conns.Store(client, &relayConn{nc: client, clientFacing: true})
	r.conns.Store(server, &relayConn{nc: server})
	defer func() {
		r.conns.Delete(client)
		r.conns.Delete(server)
		client.Close()
		server.Close()
	}()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r.shapePump(client, server, r.c2s) }()
	go func() { defer wg.Done(); r.shapePump(server, client, r.s2c) }()
	wg.Wait()
}

// shapePump forwards src→dst applying rate, delay, and injected faults.
func (r *Relay) shapePump(src, dst net.Conn, p Profile) {
	type chunk struct {
		data  []byte
		dueAt time.Time
	}
	// A small queue keeps the shaper from absorbing megabytes of the
	// sender's data: when the shaped rate falls behind, reads stall and
	// TCP backpressure propagates to the sender (as a real bottleneck
	// queue would).
	qlen := p.QueueLen
	if qlen <= 0 {
		qlen = 8
	}
	ch := make(chan chunk, qlen)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := range ch {
			if d := time.Until(c.dueAt); d > 0 {
				time.Sleep(d)
			}
			if !r.waitStall() {
				return
			}
			if _, err := dst.Write(c.data); err != nil {
				return
			}
		}
	}()

	buf := make([]byte, 16<<10)
	// sendAt models serialization: the time the last byte finishes
	// transmitting at RateBps.
	sendAt := time.Now()
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !r.waitStall() {
				close(ch)
				return
			}
			allowed, killed := r.consumeKillBudget(n)
			if allowed > 0 {
				data := append([]byte(nil), buf[:allowed]...)
				now := time.Now()
				if sendAt.Before(now) {
					sendAt = now
				}
				if p.RateBps > 0 {
					sendAt = sendAt.Add(time.Duration(int64(allowed) * 8 * int64(time.Second) / p.RateBps))
				}
				select {
				case ch <- chunk{data: data, dueAt: sendAt.Add(p.Delay)}:
				case <-done:
					close(ch)
					return
				}
			}
			if killed {
				// Drain the shaper so the allowed prefix reaches dst,
				// then abort everything.
				close(ch)
				<-done
				r.RST()
				return
			}
		}
		if err != nil {
			close(ch)
			<-done
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}
