// Package mptcp models Multipath TCP (RFC 8684) over the simulated TCP
// stack: the baseline TCPLS is compared against in the paper's Figs. 8,
// 9 and 11. The model reproduces the mechanisms those comparisons hinge
// on:
//
//   - subflows are independent simtcp connections with their own
//     congestion state;
//   - a data sequence space (DSS) maps the application byte stream onto
//     subflows; the receiver reassembles with a reordering buffer;
//   - the default scheduler prefers the lowest-RTT subflow with window
//     space (Linux's default);
//   - a backup path manager keeps standby subflows idle until the
//     primary fails;
//   - failure handling mirrors the kernel's weaknesses the paper
//     documents: chunks assigned to a subflow stay with it until that
//     subflow's exponentially backed-off RTO fires, so repeated outages
//     (Fig. 9) stall progress for seconds, and a fresh subflow after an
//     interface comes up pays the kernel's address-configuration delay
//     (Fig. 11, [74]).
package mptcp

import (
	"sort"
	"time"

	"tcpls/internal/reorder"
	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
	"tcpls/internal/wire"
)

// chunkSize is the DSS mapping granularity: one scheduling unit.
const chunkSize = 1460

// dssHeader carries the data sequence number in front of each chunk on
// the subflow byte stream.
const dssHeader = 8

// Conn is one endpoint of a multipath connection.
type Conn struct {
	s    *sim.Sim
	peer *Conn

	subflows []*subflow

	// Sender.
	nextDSS   uint64
	sendQ     [][]byte // chunks awaiting first assignment
	appQueued int

	// Receiver.
	buf      *reorder.Buffer
	OnRecv   func(p []byte)
	received uint64

	// BackupMode keeps subflows beyond the first idle until the active
	// one fails (the paper's Fig. 8 configuration).
	BackupMode bool
}

// subflow wraps one simtcp connection with DSS parsing state and its
// unacked chunk list for reinjection.
type subflow struct {
	conn   *simtcp.Conn
	parent *Conn
	// Receiver-side DSS parsing.
	rbuf []byte
	// Sender-side: chunks written to this subflow and not yet known
	// delivered (reinjected on subflow failure).
	inflight []dssChunk
	failed   bool
	backup   bool
}

type dssChunk struct {
	dss  uint64
	data []byte
}

// Pair creates connected multipath endpoints with no subflows; add paths
// with AddSubflow.
func Pair(s *sim.Sim) (client, server *Conn) {
	client = &Conn{s: s, buf: reorder.New(0)}
	server = &Conn{s: s, buf: reorder.New(0)}
	client.peer = server
	server.peer = client
	return client, server
}

// AddSubflow establishes a new subflow over path. backup subflows carry
// no data until every non-backup subflow has failed. extraDelay models
// the kernel's interface-configuration latency before MPTCP learns the
// new address (Fig. 11's slow ramp, [74]).
func (c *Conn) AddSubflow(path *sim.Path, opts simtcp.Options, backup bool, extraDelay time.Duration) {
	c.s.After(extraDelay, func() {
		cl, sv := simtcp.Connect(c.s, path, opts, opts)
		cSub := &subflow{conn: cl, parent: c, backup: backup}
		sSub := &subflow{conn: sv, parent: c.peer, backup: backup}
		cl.OnRecv = cSub.onBytes // bytes the client endpoint receives
		sv.OnRecv = sSub.onBytes // bytes the server endpoint receives
		cl.OnReset = func() { c.onSubflowFail(cSub) }
		sv.OnReset = func() { c.peer.onSubflowFail(sSub) }
		// The kernel declares a subflow dead after repeated backed-off
		// RTOs; chunks mapped to it stay stuck until then (Fig. 9).
		cl.OnRTO = func(n int) {
			if n >= 3 {
				c.onSubflowFail(cSub)
			}
		}
		sv.OnRTO = func(n int) {
			if n >= 3 {
				c.peer.onSubflowFail(sSub)
			}
		}
		cl.OnAcked = c.pump
		sv.OnAcked = c.peer.pump
		cl.OnEstablished = func() { c.pump() }
		sv.OnEstablished = func() { c.peer.pump() }
		c.subflows = append(c.subflows, cSub)
		c.peer.subflows = append(c.peer.subflows, sSub)
		c.pump()
		c.peer.pump()
	})
}

// Subflows returns the current subflow count (established or pending).
func (c *Conn) Subflows() int { return len(c.subflows) }

// Received returns total in-order bytes delivered to the application.
func (c *Conn) Received() uint64 { return c.received }

// Write queues application bytes; they are chunked, stamped with data
// sequence numbers at scheduling time, and spread over subflows.
func (c *Conn) Write(p []byte) {
	for len(p) > 0 {
		n := len(p)
		if n > chunkSize {
			n = chunkSize
		}
		c.sendQ = append(c.sendQ, append([]byte(nil), p[:n]...))
		p = p[n:]
	}
	c.pump()
}

// usable lists subflows eligible to carry new data, honouring backup
// semantics, sorted by smoothed RTT (the default Linux scheduler).
func (c *Conn) usable() []*subflow {
	var active, backups []*subflow
	anyPrimaryAlive := false
	for _, sf := range c.subflows {
		if sf.failed || !sf.conn.Established() {
			continue
		}
		if sf.backup {
			backups = append(backups, sf)
		} else {
			active = append(active, sf)
			anyPrimaryAlive = true
		}
	}
	out := active
	if c.BackupMode && !anyPrimaryAlive {
		out = backups
	} else if !c.BackupMode {
		out = append(out, backups...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].conn.SRTT() < out[j].conn.SRTT()
	})
	return out
}

// pump schedules queued chunks onto subflows with congestion window
// space. The kernel scheduler does not reassign a chunk once written to
// a subflow's send buffer — the behaviour behind Fig. 9's stalls.
func (c *Conn) pump() {
	subs := c.usable()
	if len(subs) == 0 {
		return
	}
	for len(c.sendQ) > 0 {
		var target *subflow
		for _, sf := range subs {
			if sf.conn.InFlight()+sf.conn.Buffered() < sf.conn.Cwnd() {
				target = sf
				break
			}
		}
		if target == nil {
			return // all windows full; OnAcked pumps again
		}
		chunk := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		dss := c.nextDSS
		c.nextDSS++
		target.writeChunk(dssChunk{dss: dss, data: chunk})
	}
}

// writeChunk frames one chunk with its DSS header onto the subflow.
func (sf *subflow) writeChunk(ch dssChunk) {
	sf.inflight = append(sf.inflight, ch)
	hdr := make([]byte, dssHeader)
	// High 40 bits: dss; low 24: length (chunks are small).
	wire.PutUint64(hdr, ch.dss<<24|uint64(len(ch.data)))
	sf.conn.Write(append(hdr, ch.data...))
}

// onBytes parses DSS-framed chunks from the subflow byte stream and
// offers them to the reordering buffer.
func (sf *subflow) onBytes(p []byte) {
	sf.rbuf = append(sf.rbuf, p...)
	for {
		if len(sf.rbuf) < dssHeader {
			return
		}
		v := wire.Uint64(sf.rbuf)
		dss := v >> 24
		n := int(v & 0xffffff)
		if len(sf.rbuf) < dssHeader+n {
			return
		}
		data := append([]byte(nil), sf.rbuf[dssHeader:dssHeader+n]...)
		sf.rbuf = sf.rbuf[dssHeader+n:]
		sf.parent.deliver(dss, data)
		// Inform the peer's sender bookkeeping: chunk dss delivered.
		sf.parent.peer.chunkDelivered(dss)
	}
}

func (c *Conn) deliver(dss uint64, data []byte) {
	for _, d := range c.buf.Offer(dss, data) {
		c.received += uint64(len(d))
		if c.OnRecv != nil {
			c.OnRecv(d)
		}
	}
}

// chunkDelivered trims subflow reinjection lists.
func (c *Conn) chunkDelivered(dss uint64) {
	for _, sf := range c.subflows {
		for i, ch := range sf.inflight {
			if ch.dss == dss {
				sf.inflight = append(sf.inflight[:i], sf.inflight[i+1:]...)
				break
			}
		}
	}
}

// onSubflowFail reinjects the failed subflow's undelivered chunks at the
// head of the send queue and re-pumps over the survivors.
func (c *Conn) onSubflowFail(sf *subflow) {
	if sf.failed {
		return
	}
	sf.failed = true
	if len(sf.inflight) > 0 {
		re := make([][]byte, 0, len(sf.inflight))
		for _, ch := range sf.inflight {
			re = append(re, ch.data)
		}
		// Reinjected chunks keep their original DSS ordering by being
		// rescheduled first (they have the lowest outstanding numbers).
		var dss []uint64
		for _, ch := range sf.inflight {
			dss = append(dss, ch.dss)
		}
		sf.inflight = nil
		for i := len(re) - 1; i >= 0; i-- {
			c.reinject(dss[i], re[i])
		}
	}
	c.pump()
}

// reinject reschedules a chunk with its existing DSS number.
func (c *Conn) reinject(dss uint64, data []byte) {
	subs := c.usable()
	if len(subs) == 0 {
		// No live subflow: park it until one appears.
		c.s.After(100*time.Millisecond, func() { c.reinject(dss, data) })
		return
	}
	subs[0].writeChunk(dssChunk{dss: dss, data: data})
}

// FailSubflow administratively fails a subflow (test hook mirroring a
// kernel route withdrawal).
func (c *Conn) FailSubflow(i int) {
	if i < len(c.subflows) {
		c.subflows[i].conn.Reset()
	}
}

// SubflowFailed reports whether subflow i is dead at either endpoint: a
// blackhole is detected by the data sender's RTOs, so the receiving side
// must consult its peer too.
func (c *Conn) SubflowFailed(i int) bool {
	if i >= len(c.subflows) {
		return false
	}
	a := c.subflows[i]
	if a.failed || a.conn.Failed() {
		return true
	}
	if i < len(c.peer.subflows) {
		b := c.peer.subflows[i]
		return b.failed || b.conn.Failed()
	}
	return false
}

// ReviveSubflow replaces a failed subflow with a fresh connection over
// path, modeling the kernel path manager's periodic re-establishment of
// subflows on addresses that came back.
func (c *Conn) ReviveSubflow(i int, path *sim.Path, opts simtcp.Options) {
	if i >= len(c.subflows) || !c.SubflowFailed(i) {
		return
	}
	cl, sv := simtcp.Connect(c.s, path, opts, opts)
	cSub := &subflow{conn: cl, parent: c, backup: c.subflows[i].backup}
	sSub := &subflow{conn: sv, parent: c.peer, backup: c.peer.subflows[i].backup}
	cl.OnRecv = cSub.onBytes
	sv.OnRecv = sSub.onBytes
	cl.OnReset = func() { c.onSubflowFail(cSub) }
	sv.OnReset = func() { c.peer.onSubflowFail(sSub) }
	cl.OnRTO = func(n int) {
		if n >= 3 {
			c.onSubflowFail(cSub)
		}
	}
	sv.OnRTO = func(n int) {
		if n >= 3 {
			c.peer.onSubflowFail(sSub)
		}
	}
	cl.OnAcked = c.pump
	sv.OnAcked = c.peer.pump
	cl.OnEstablished = func() { c.pump() }
	sv.OnEstablished = func() { c.peer.pump() }
	c.subflows[i] = cSub
	c.peer.subflows[i] = sSub
}
