package mptcp

import (
	"bytes"
	"testing"
	"time"

	"tcpls/internal/sim"
	"tcpls/internal/simtcp"
)

func mbps(n int64) int64 { return n * 1_000_000 }

func TestSingleSubflowTransfer(t *testing.T) {
	s := sim.New()
	client, server := Pair(s)
	path := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client.AddSubflow(path, simtcp.Options{CC: "cubic"}, false, 0)

	var got []byte
	server.OnRecv = func(p []byte) { got = append(got, p...) }
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 7)
	}
	client.Write(data)
	s.RunUntil(30 * time.Second)
	if !bytes.Equal(got, data) {
		t.Fatalf("received %d of %d bytes intact=%v", len(got), len(data), bytes.Equal(got, data[:len(got)]))
	}
}

func TestTwoSubflowsAggregateBandwidth(t *testing.T) {
	s := sim.New()
	client, server := Pair(s)
	p1 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	p2 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client.AddSubflow(p1, simtcp.Options{CC: "cubic"}, false, 0)
	client.AddSubflow(p2, simtcp.Options{CC: "cubic"}, false, 0)

	server.OnRecv = func(p []byte) {}
	size := 30 << 20
	client.Write(make([]byte, size))
	s.RunUntil(10 * time.Second)
	// 10s at a single 25 Mbps path is at most ~31 MB; with both paths
	// the 30 MiB should be done, and well beyond one path's capacity
	// at the halfway mark.
	s10 := server.Received()
	if s10 < uint64(size) {
		t.Fatalf("received %d of %d in 10s over 2x25 Mbps", s10, size)
	}
	// Verify both paths actually carried data.
	if p1.AtoB.BytesSent == 0 || p2.AtoB.BytesSent == 0 {
		t.Error("one path carried nothing")
	}
	minShare := p1.AtoB.BytesSent
	if p2.AtoB.BytesSent < minShare {
		minShare = p2.AtoB.BytesSent
	}
	if minShare < uint64(size)/4 {
		t.Errorf("unbalanced: p1=%d p2=%d", p1.AtoB.BytesSent, p2.AtoB.BytesSent)
	}
}

func TestBackupModeKeepsSecondPathIdle(t *testing.T) {
	s := sim.New()
	client, server := Pair(s)
	client.BackupMode = true
	server.BackupMode = true
	p1 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	p2 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client.AddSubflow(p1, simtcp.Options{}, false, 0)
	client.AddSubflow(p2, simtcp.Options{}, true, 0)
	server.OnRecv = func(p []byte) {}
	client.Write(make([]byte, 4<<20))
	s.RunUntil(3 * time.Second)
	if p2.AtoB.BytesSent > 10_000 {
		t.Errorf("backup path carried %d bytes while primary alive", p2.AtoB.BytesSent)
	}
	if server.Received() == 0 {
		t.Fatal("no data on primary")
	}
}

func TestFailoverToBackupOnRST(t *testing.T) {
	s := sim.New()
	client, server := Pair(s)
	client.BackupMode = true
	server.BackupMode = true
	p1 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	p2 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client.AddSubflow(p1, simtcp.Options{}, false, 0)
	client.AddSubflow(p2, simtcp.Options{}, true, 0)
	server.OnRecv = func(p []byte) {}
	size := 8 << 20
	client.Write(make([]byte, size))

	// RST the primary at 1s: both ends see it, chunks reinject onto the
	// backup quickly (the paper: "upon reception of a TCP RST, both
	// TCPLS and MPTCP react fast").
	s.After(time.Second, func() { client.FailSubflow(0) })
	s.RunUntil(30 * time.Second)
	if got := server.Received(); got != uint64(size) {
		t.Fatalf("received %d of %d after RST failover", got, size)
	}
	if p2.AtoB.BytesSent < 1<<20 {
		t.Errorf("backup path carried only %d bytes", p2.AtoB.BytesSent)
	}
}

func TestBlackholeFailoverTakesRTOBackoff(t *testing.T) {
	s := sim.New()
	client, server := Pair(s)
	client.BackupMode = true
	server.BackupMode = true
	p1 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	p2 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client.AddSubflow(p1, simtcp.Options{}, false, 0)
	client.AddSubflow(p2, simtcp.Options{}, true, 0)
	server.OnRecv = func(p []byte) {}
	size := 8 << 20
	client.Write(make([]byte, size))

	var recoveredAt sim.Time
	prev := uint64(0)
	// Sample server progress to find when data resumes post-outage.
	var sample func()
	sample = func() {
		if server.Received() > prev && s.Now() > 1100*time.Millisecond && recoveredAt == 0 {
			recoveredAt = s.Now()
		}
		prev = server.Received()
		s.After(50*time.Millisecond, sample)
	}
	s.After(0, sample)

	s.After(time.Second, func() { p1.SetDown(true) })
	s.RunUntil(40 * time.Second)

	if got := server.Received(); got != uint64(size) {
		t.Fatalf("received %d of %d after blackhole failover", got, size)
	}
	// Detection needs >= 3 backed-off RTOs: recovery must not be
	// instant, and must land within a few seconds (Fig. 8's ~1-2 s
	// MPTCP blackhole recovery).
	if recoveredAt < 1200*time.Millisecond {
		t.Errorf("recovered implausibly fast: %v", recoveredAt)
	}
	if recoveredAt > 6*time.Second {
		t.Errorf("recovery took %v, want a few seconds", recoveredAt)
	}
}

func TestInterfaceConfigDelayDefersSecondPath(t *testing.T) {
	s := sim.New()
	client, server := Pair(s)
	p1 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	p2 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client.AddSubflow(p1, simtcp.Options{}, false, 0)
	server.OnRecv = func(p []byte) {}
	client.Write(make([]byte, 60<<20))
	// Second path appears at t=5s with 1.5s kernel config delay
	// (Fig. 11's observed ramp).
	s.After(5*time.Second, func() {
		client.AddSubflow(p2, simtcp.Options{}, false, 1500*time.Millisecond)
	})
	s.RunUntil(6 * time.Second)
	if p2.AtoB.BytesSent > 0 {
		t.Error("second path carried data before the config delay elapsed")
	}
	s.RunUntil(9 * time.Second)
	if p2.AtoB.BytesSent == 0 {
		t.Error("second path still idle after config delay")
	}
}

func TestInOrderDeliveryAcrossSubflows(t *testing.T) {
	s := sim.New()
	client, server := Pair(s)
	// Asymmetric paths force reordering across subflows.
	p1 := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	p2 := sim.NewPath(s, mbps(25), 40*time.Millisecond)
	client.AddSubflow(p1, simtcp.Options{}, false, 0)
	client.AddSubflow(p2, simtcp.Options{}, false, 0)
	var got []byte
	server.OnRecv = func(p []byte) { got = append(got, p...) }
	data := make([]byte, 4<<20)
	for i := range data {
		data[i] = byte(i >> 8)
	}
	client.Write(data)
	s.RunUntil(30 * time.Second)
	if !bytes.Equal(got, data) {
		t.Fatalf("delivery not in order: %d bytes", len(got))
	}
}
