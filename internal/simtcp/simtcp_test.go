package simtcp

import (
	"bytes"
	"testing"
	"time"

	"tcpls/internal/cc"
	"tcpls/internal/sim"
)

func mbps(n int64) int64 { return n * 1_000_000 }

// transfer runs a one-way bulk transfer and returns received bytes and
// completion time.
func transfer(t *testing.T, rateMbps int64, delay time.Duration, size int, ccName string, until time.Duration) ([]byte, sim.Time) {
	t.Helper()
	s := sim.New()
	path := sim.NewPath(s, mbps(rateMbps), delay)
	client, server := Connect(s, path, Options{CC: ccName}, Options{CC: ccName})

	var got []byte
	var doneAt sim.Time
	server.OnRecv = func(p []byte) {
		got = append(got, p...)
		if len(got) >= size && doneAt == 0 {
			doneAt = s.Now()
		}
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	client.Write(data)
	s.RunUntil(until)
	if len(got) != size {
		t.Fatalf("received %d of %d bytes by %v", len(got), size, until)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload corrupted")
	}
	return got, doneAt
}

func TestBulkTransferCompletes(t *testing.T) {
	for _, ccName := range []string{"newreno", "cubic", "vegas"} {
		_, doneAt := transfer(t, 25, 5*time.Millisecond, 1<<20, ccName, 30*time.Second)
		// 1 MiB at 25 Mbps is ~0.34s on the wire; slow start adds RTTs.
		if doneAt > 3*time.Second {
			t.Errorf("%s: 1 MiB over 25 Mbps took %v", ccName, doneAt)
		}
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	// 60 MiB over 25 Mbps/10 ms: wire time alone is ~20.1s. A healthy
	// stack should finish within 15% of that.
	size := 60 << 20
	_, doneAt := transfer(t, 25, 5*time.Millisecond, size, "cubic", 60*time.Second)
	wire := time.Duration(float64(size*8) / 25e6 * float64(time.Second))
	// The model's CUBIC sawtooth with a 64 KiB drop-tail queue averages
	// ~80-85% utilization; budget accordingly (the paper's figures care
	// about relative shapes, not absolute testbed ceilings).
	if doneAt > wire*150/100 {
		t.Errorf("60 MiB took %v, wire time %v (+50%% budget exceeded)", doneAt, wire)
	}
}

func TestLossRecoveryViaFastRetransmit(t *testing.T) {
	// A tiny queue forces drops; the transfer must still complete and
	// the sender must record retransmissions.
	s := sim.New()
	path := sim.NewPath(s, mbps(10), 10*time.Millisecond)
	path.AtoB.QueueBytes = 10_000 // ~7 segments
	client, server := Connect(s, path, Options{CC: "newreno"}, Options{})
	var got int
	server.OnRecv = func(p []byte) { got += len(p) }
	size := 2 << 20
	client.Write(make([]byte, size))
	s.RunUntil(60 * time.Second)
	if got != size {
		t.Fatalf("received %d of %d", got, size)
	}
	if client.Retransmits == 0 {
		t.Error("no retransmissions despite forced drops")
	}
	if path.AtoB.Dropped == 0 {
		t.Error("queue never overflowed")
	}
}

func TestRTTEstimate(t *testing.T) {
	s := sim.New()
	path := sim.NewPath(s, mbps(100), 20*time.Millisecond) // RTT 40ms
	client, server := Connect(s, path, Options{}, Options{})
	server.OnRecv = func(p []byte) {}
	client.Write(make([]byte, 200_000))
	s.RunUntil(5 * time.Second)
	if client.SRTT() < 40*time.Millisecond || client.SRTT() > 80*time.Millisecond {
		t.Fatalf("srtt = %v, want ~40-80ms", client.SRTT())
	}
}

func TestBlackholeTriggersRTOAndRecovery(t *testing.T) {
	s := sim.New()
	path := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client, server := Connect(s, path, Options{}, Options{})
	var got int
	server.OnRecv = func(p []byte) { got += len(p) }
	size := 4 << 20
	client.Write(make([]byte, size))

	// Outage from 1s to 2s.
	s.After(time.Second, func() { path.SetDown(true) })
	s.After(2*time.Second, func() { path.SetDown(false) })
	s.RunUntil(60 * time.Second)
	if got != size {
		t.Fatalf("received %d of %d after outage", got, size)
	}
	if client.Retransmits == 0 {
		t.Error("outage caused no retransmissions")
	}
}

func TestResetSignalsBothEnds(t *testing.T) {
	s := sim.New()
	path := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client, server := Connect(s, path, Options{}, Options{})
	var clientReset, serverReset bool
	client.OnReset = func() { clientReset = true }
	server.OnReset = func() { serverReset = true }
	client.Write(make([]byte, 100_000))
	s.After(500*time.Millisecond, func() { server.Reset() })
	s.RunUntil(2 * time.Second)
	if !serverReset || !clientReset {
		t.Fatalf("reset flags: client=%v server=%v", clientReset, serverReset)
	}
	if !client.Failed() {
		t.Error("client not marked failed")
	}
}

func TestVegasYieldsToCubicOnSharedBottleneck(t *testing.T) {
	// Fig. 12's premise, at the transport level: two flows share one
	// bottleneck link; the loss-based CUBIC flow fills the queue and the
	// delay-based Vegas flow, seeing inflated RTTs, backs off and takes
	// the minority share.
	s := sim.New()
	path := sim.NewPath(s, mbps(100), 30*time.Millisecond)
	path.AtoB.QueueBytes = 512 << 10

	vc, vs := ConnectOn(s, path.AtoB, path.BtoA, Options{CC: "vegas"}, Options{})
	ccl, ccs := ConnectOn(s, path.AtoB, path.BtoA, Options{CC: "cubic"}, Options{})
	var vegasGot, cubicGot int
	vs.OnRecv = func(p []byte) { vegasGot += len(p) }
	ccs.OnRecv = func(p []byte) { cubicGot += len(p) }
	vc.Write(make([]byte, 100<<20))
	ccl.Write(make([]byte, 100<<20))
	s.RunUntil(20 * time.Second)
	if vegasGot*2 >= cubicGot {
		t.Errorf("vegas got %d bytes, cubic %d: expected cubic to dominate by > 2x",
			vegasGot, cubicGot)
	}
}

func TestHotSwapCongestionController(t *testing.T) {
	s := sim.New()
	path := sim.NewPath(s, mbps(25), 5*time.Millisecond)
	client, server := Connect(s, path, Options{CC: "vegas"}, Options{})
	server.OnRecv = func(p []byte) {}
	client.Write(make([]byte, 10<<20))
	swapped := false
	s.After(time.Second, func() {
		client.SetAlgorithm(cc.NewCubic(client.mss))
		swapped = true
	})
	s.RunUntil(3 * time.Second)
	if !swapped || client.Algorithm().Name() != "cubic" {
		t.Fatal("controller hot swap failed")
	}
	// The connection keeps making progress after the swap.
	if server.BytesDeliverd == 0 {
		t.Fatal("no progress after swap")
	}
}

func TestDataBeforeEstablishmentIsQueued(t *testing.T) {
	s := sim.New()
	path := sim.NewPath(s, mbps(25), 50*time.Millisecond) // RTT 100ms
	client, server := Connect(s, path, Options{}, Options{})
	var firstByte sim.Time
	server.OnRecv = func(p []byte) {
		if firstByte == 0 {
			firstByte = s.Now()
		}
	}
	client.Write([]byte("early data"))
	s.RunUntil(time.Second)
	// Handshake consumes ~1 RTT; first byte lands >= 1.5 RTT.
	if firstByte < 150*time.Millisecond {
		t.Fatalf("first byte at %v, before handshake could finish", firstByte)
	}
}
